#!/usr/bin/env python3
"""fleda-lint: the project's determinism & concurrency linter.

Walks C++ sources enforcing the invariants every PR so far has had to
defend by hand — results must be bit-identical across thread-pool
sizes and replays, so the library must never read wall clocks, draw
from unseeded generators, or depend on hash-table iteration order:

  raw-clock       std::chrono::steady_clock / high_resolution_clock
                  anywhere except src/obs/profiler.hpp (StopWatch is
                  the single sanctioned clock wrapper; simulated time
                  comes from sim/SimClock).
  raw-random      rand()/srand()/std::random_device — all randomness
                  flows through util/rng's seeded, forkable streams.
  unordered-iter  iteration over std::unordered_{map,set} in the
                  numeric paths (src/fl, src/sim, src/tensor), where
                  iteration order would leak pointer/hash nondeterminism
                  into results. Sort the keys (or use std::map) instead.
  stdout-io       std::cout / printf / puts / fprintf(stdout, ...) in
                  library code — benches own stdout (their JSON lines
                  are CI-parsed); the library talks through util/logging.
  pragma-once     every header carries #pragma once.
  mutex-guarded   every mutex member declaration (std::mutex,
                  std::shared_mutex, or the annotated fleda::Mutex /
                  SharedMutex wrappers) has at least one
                  FLEDA_GUARDED_BY(<that mutex>) protectee in the same
                  file — a mutex that guards nothing is either dead
                  weight or undocumented locking.

Per-line escape (with a justification comment next to it, please):

    std::mutex handshake_;  // fleda-lint: allow(mutex-guarded)

For pragma-once (a file-level rule) the allow comment may sit on any
line of the file.

Usage:
  ci/fleda_lint.py [path ...]          lint trees/files (default: src)
  ci/fleda_lint.py --self-test \
      [--fixtures tests/lint_fixtures] run the fixture self-tests

Stdlib-only by design; exits non-zero on findings (or self-test
failures) so CI and ctest can gate on it directly.
"""

import argparse
import os
import re
import sys

ALL_RULES = (
    "raw-clock",
    "raw-random",
    "unordered-iter",
    "stdout-io",
    "pragma-once",
    "mutex-guarded",
)

# Directories (relative to a src root) whose numeric code must not
# iterate unordered containers.
UNORDERED_ITER_DIRS = ("fl", "sim", "tensor")

# The one file allowed to touch the raw monotonic clocks.
RAW_CLOCK_EXEMPT_SUFFIX = os.path.join("src", "obs", "profiler.hpp")

ALLOW_RE = re.compile(r"//\s*fleda-lint:\s*allow\(([a-z\-,\s]+)\)")

RAW_CLOCK_RE = re.compile(r"\b(?:steady_clock|high_resolution_clock)\b")
RAW_RANDOM_RE = re.compile(r"\b(?:s?rand\s*\(|random_device\b)")
STDOUT_RE = re.compile(
    r"std\s*::\s*cout\b"
    r"|(?<![\w:])(?:std\s*::\s*)?(?:printf|puts)\s*\("
    r"|\bfprintf\s*\(\s*stdout\b"
)
PRAGMA_ONCE_RE = re.compile(r"^\s*#\s*pragma\s+once\b", re.MULTILINE)
MUTEX_DECL_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:fleda\s*::\s*)?"
    r"(?:std\s*::\s*(?:mutex|shared_mutex)|Mutex|SharedMutex)\s+"
    r"([A-Za-z_]\w*)\s*;"
)
UNORDERED_DECL_RE = re.compile(
    r"\b(?:std\s*::\s*)?unordered_(?:map|set|multimap|multiset)\s*<[^;{()]*?>"
    r"\s+([A-Za-z_]\w*)\s*[;{=(]"
)

HEADER_EXTS = (".hpp", ".h", ".hh", ".hxx")
SOURCE_EXTS = HEADER_EXTS + (".cpp", ".cc", ".cxx")


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line  # 1-based; 0 = file-level
        self.rule = rule
        self.message = message

    def __str__(self):
        where = f"{self.path}:{self.line}" if self.line else self.path
        return f"{where}: [{self.rule}] {self.message}"


def strip_code(text):
    """Blanks out comments and string/char literal contents (preserving
    newlines and the quote characters), so rule regexes never fire on
    documentation or log-message text."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append(c)
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(c)
                i += 1
                continue
            out.append(c)
            i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
            i += 1
        else:  # string or char literal
            quote = '"' if state == "string" else "'"
            if c == "\\" and nxt:
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(c)
            else:
                out.append(c if c == "\n" else " ")
            i += 1
    return "".join(out)


def allowed_rules_by_line(text):
    """Maps 1-based line number -> set of rule ids allowed on that line
    (parsed from the raw text, before comments are stripped)."""
    allows = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        m = ALLOW_RE.search(line)
        if m:
            rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
            allows[lineno] = rules
    return allows


def in_unordered_scope(path):
    """True when `path` sits in one of the determinism-critical numeric
    subtrees (src/fl, src/sim, src/tensor)."""
    parts = os.path.normpath(path).split(os.sep)
    for i, part in enumerate(parts[:-1]):
        if part == "src" and i + 1 < len(parts) and parts[i + 1] in UNORDERED_ITER_DIRS:
            return True
    return False


def lint_file(path, force_all_rules=False):
    try:
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            raw = f.read()
    except OSError as e:
        return [Finding(path, 0, "io", f"unreadable: {e}")]

    findings = []
    allows = allowed_rules_by_line(raw)
    stripped = strip_code(raw)
    lines = stripped.splitlines()
    norm = os.path.normpath(os.path.abspath(path))

    def report(lineno, rule, message):
        if rule in allows.get(lineno, ()):
            return
        findings.append(Finding(path, lineno, rule, message))

    # --- file-level: pragma-once -------------------------------------
    if path.endswith(HEADER_EXTS) and not PRAGMA_ONCE_RE.search(stripped):
        file_allows = set()
        for rules in allows.values():
            file_allows |= rules
        if "pragma-once" not in file_allows:
            findings.append(
                Finding(path, 0, "pragma-once", "header lacks #pragma once")
            )

    # --- declarations the line rules need ----------------------------
    unordered_names = set(UNORDERED_DECL_RE.findall(stripped))
    mutex_decls = []  # (lineno, name)
    for lineno, line in enumerate(lines, start=1):
        m = MUTEX_DECL_RE.match(line)
        if m:
            mutex_decls.append((lineno, m.group(1)))

    # --- line rules ---------------------------------------------------
    clock_exempt = norm.endswith(RAW_CLOCK_EXEMPT_SUFFIX)
    check_unordered = force_all_rules or in_unordered_scope(norm)
    range_for_res = [
        re.compile(r"for\s*\([^;)]*?:\s*" + re.escape(name) + r"\s*\)")
        for name in unordered_names
    ]
    begin_res = [
        re.compile(r"\b" + re.escape(name) + r"\s*\.\s*(?:c?begin|c?end)\s*\(")
        for name in unordered_names
    ]

    for lineno, line in enumerate(lines, start=1):
        if not clock_exempt and RAW_CLOCK_RE.search(line):
            report(
                lineno,
                "raw-clock",
                "raw monotonic clock outside obs/profiler.hpp — time flows "
                "through StopWatch (host) or SimClock (simulated)",
            )
        if RAW_RANDOM_RE.search(line):
            report(
                lineno,
                "raw-random",
                "unseeded randomness — use util/rng's deterministic streams",
            )
        if STDOUT_RE.search(line):
            report(
                lineno,
                "stdout-io",
                "stdout write in library code — benches own stdout; use "
                "util/logging (stderr) instead",
            )
        if check_unordered:
            for name, rf, bf in zip(unordered_names, range_for_res, begin_res):
                if rf.search(line) or bf.search(line):
                    report(
                        lineno,
                        "unordered-iter",
                        f"iteration over unordered container '{name}' in a "
                        "numeric path — hash order is nondeterministic; "
                        "sort keys or use std::map",
                    )

    # --- mutex-guarded ------------------------------------------------
    for lineno, name in mutex_decls:
        guarded = re.search(
            r"FLEDA_(?:PT_)?GUARDED_BY\(\s*" + re.escape(name) + r"\s*\)",
            stripped,
        )
        if not guarded:
            report(
                lineno,
                "mutex-guarded",
                f"mutex '{name}' has no FLEDA_GUARDED_BY({name}) protectee "
                "in this file — annotate what it locks (or allow with a "
                "justification)",
            )

    return findings


def iter_sources(paths):
    for p in paths:
        if os.path.isfile(p):
            if p.endswith(SOURCE_EXTS):
                yield p
            continue
        for dirpath, dirnames, filenames in os.walk(p):
            dirnames.sort()
            for fn in sorted(filenames):
                if fn.endswith(SOURCE_EXTS):
                    yield os.path.join(dirpath, fn)


def run_lint(paths):
    findings = []
    for path in iter_sources(paths):
        findings.extend(lint_file(path))
    for f in findings:
        print(f)
    if findings:
        print(f"fleda-lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


# ---------------------------------------------------------------- self-test

FIXTURE_HEADER_RE = re.compile(
    r"//\s*fleda-lint-fixture:\s*(clean|expect\s+([a-z\-,\s]+))"
)


def run_self_test(fixtures_dir):
    """Every fixture declares its expectation on its first line:
    `// fleda-lint-fixture: clean` or
    `// fleda-lint-fixture: expect rule-a,rule-b`.
    Fixtures run with every rule forced on (directory scoping is a
    production nicety, not something fixtures should depend on)."""
    failures = []
    fixture_count = 0
    for path in iter_sources([fixtures_dir]):
        with open(path, "r", encoding="utf-8") as f:
            first_line = f.readline()
        m = FIXTURE_HEADER_RE.search(first_line)
        if not m:
            failures.append(f"{path}: missing fleda-lint-fixture header line")
            continue
        fixture_count += 1
        expected = set()
        if m.group(2):
            expected = {r.strip() for r in m.group(2).split(",") if r.strip()}
        unknown = expected - set(ALL_RULES)
        if unknown:
            failures.append(f"{path}: unknown rule(s) in expectation: {unknown}")
            continue
        got = {f.rule for f in lint_file(path, force_all_rules=True)}
        if got != expected:
            failures.append(
                f"{path}: expected rules {sorted(expected) or '[]'}, "
                f"got {sorted(got) or '[]'}"
            )
    if fixture_count == 0:
        failures.append(f"{fixtures_dir}: no fixtures found")
    for msg in failures:
        print(f"self-test FAIL: {msg}", file=sys.stderr)
    if not failures:
        print(f"fleda-lint self-test: {fixture_count} fixtures ok")
    return 1 if failures else 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*", default=None,
                        help="files or directories to lint (default: src)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the fixture self-tests and exit")
    parser.add_argument("--fixtures", default="tests/lint_fixtures",
                        help="fixture directory for --self-test")
    args = parser.parse_args(argv)

    if args.self_test:
        return run_self_test(args.fixtures)
    return run_lint(args.paths or ["src"])


if __name__ == "__main__":
    sys.exit(main())
