#!/usr/bin/env python3
"""Perf-trajectory gate: diff this run's BENCH_*.json against the
previous successful main run's `bench-trajectory` artifact and fail on
a >20% regression in the headline numbers.

Gated metrics (current vs previous):
  - BENCH_sim.json     events_per_sec                  must be >= 0.8x
  - BENCH_sim.json     thousand_clients.round_host_ms  must be <= 1.2x
  - BENCH_sim.json     arms_race.{detector_precision,detector_recall,
                       multi_krum_auc,reputation_auc}  must be >= 0.8x
  - BENCH_sim.json     hundred_k.events_per_sec        must be >= 0.8x
  - BENCH_comm.json    codecs[*].encode_mb_per_s       must be >= 0.8x
  - BENCH_comm.json    codecs[*].decode_mb_per_s       must be >= 0.8x
  - BENCH_kernels.json shapes[*].auto_gflops           must be >= 0.8x
  - BENCH_kernels.json plan_cache.hit_rate             must be >= 0.8x

Stdlib only (urllib + zipfile against the GitHub REST API). The gate is
advisory-by-absence: no GITHUB_TOKEN, no previous artifact, or an API
error exits 0 with a skip message, so forks and the first run on a
fresh repo pass trivially. An actual regression exits 1.

Environment: GITHUB_TOKEN, GITHUB_REPOSITORY ("owner/repo"), and
optionally GITHUB_WORKFLOW_REF / PERF_GATE_WORKFLOW (workflow file name,
default ci.yml) and PERF_GATE_BRANCH (default main).
"""

import io
import json
import os
import sys
import urllib.error
import urllib.request
import zipfile

API = "https://api.github.com"
ARTIFACT_NAME = "bench-trajectory"
TOLERANCE = 0.20  # fail beyond +/-20%


def skip(message):
    print(f"perf_gate: SKIP - {message}")
    sys.exit(0)


def api_get(url, token, raw=False):
    request = urllib.request.Request(url)
    request.add_header("Authorization", f"Bearer {token}")
    request.add_header("X-GitHub-Api-Version", "2022-11-28")
    with urllib.request.urlopen(request, timeout=60) as response:
        body = response.read()
    return body if raw else json.loads(body)


def previous_artifact_files(token, repo, workflow, branch):
    """BENCH_*.json contents from the newest successful `branch` run of
    `workflow` that uploaded the trajectory artifact, or None."""
    runs = api_get(
        f"{API}/repos/{repo}/actions/workflows/{workflow}/runs"
        f"?branch={branch}&status=success&per_page=10",
        token,
    )
    for run in runs.get("workflow_runs", []):
        artifacts = api_get(run["artifacts_url"], token)
        for artifact in artifacts.get("artifacts", []):
            if artifact["name"] != ARTIFACT_NAME or artifact["expired"]:
                continue
            blob = api_get(artifact["archive_download_url"], token, raw=True)
            archive = zipfile.ZipFile(io.BytesIO(blob))
            files = {}
            for name in archive.namelist():
                if name.endswith(".json"):
                    files[os.path.basename(name)] = json.loads(
                        archive.read(name)
                    )
            if files:
                print(f"perf_gate: baseline = run {run['id']} "
                      f"({run.get('head_sha', '?')[:12]})")
                return files
    return None


def check(label, current, previous, lower_is_better=False):
    """Returns an error string on regression, None when within band."""
    if previous is None or current is None:
        return None  # metric absent on one side: schema drift, not perf
    if previous <= 0:
        return None
    ratio = current / previous
    direction = "<=" if lower_is_better else ">="
    bound = 1.0 + TOLERANCE if lower_is_better else 1.0 - TOLERANCE
    ok = ratio <= bound if lower_is_better else ratio >= bound
    status = "ok" if ok else "REGRESSION"
    print(f"perf_gate: {label}: {current:.1f} vs {previous:.1f} "
          f"(ratio {ratio:.3f}, need {direction} {bound:.2f}) {status}")
    if not ok:
        return (f"{label} regressed: {current:.1f} vs baseline "
                f"{previous:.1f} (ratio {ratio:.3f})")
    return None


def codec_rows(bench):
    return {row["name"]: row for row in (bench or {}).get("codecs", [])}


def shape_rows(bench):
    return {row["name"]: row for row in (bench or {}).get("shapes", [])}


def main():
    token = os.environ.get("GITHUB_TOKEN", "")
    repo = os.environ.get("GITHUB_REPOSITORY", "")
    workflow = os.environ.get("PERF_GATE_WORKFLOW", "ci.yml")
    branch = os.environ.get("PERF_GATE_BRANCH", "main")
    if not token or not repo:
        skip("GITHUB_TOKEN / GITHUB_REPOSITORY not set")

    try:
        with open("BENCH_sim.json") as f:
            sim_now = json.load(f)
        with open("BENCH_comm.json") as f:
            comm_now = json.load(f)
        with open("BENCH_kernels.json") as f:
            kernels_now = json.load(f)
    except OSError as e:
        print(f"perf_gate: FAIL - current bench output missing: {e}")
        sys.exit(1)

    try:
        baseline = previous_artifact_files(token, repo, workflow, branch)
    except (urllib.error.URLError, json.JSONDecodeError,
            zipfile.BadZipFile, KeyError) as e:
        skip(f"could not fetch previous artifact ({e})")
    if baseline is None:
        skip("no previous successful run with a bench-trajectory artifact")

    sim_prev = baseline.get("BENCH_sim.json", {})
    comm_prev = baseline.get("BENCH_comm.json", {})
    kernels_prev = baseline.get("BENCH_kernels.json", {})

    errors = []
    errors.append(check(
        "sim.events_per_sec",
        sim_now.get("events_per_sec"), sim_prev.get("events_per_sec")))
    errors.append(check(
        "sim.thousand_clients.round_host_ms",
        sim_now.get("thousand_clients", {}).get("round_host_ms"),
        sim_prev.get("thousand_clients", {}).get("round_host_ms"),
        lower_is_better=True))
    # Arms-race quality trajectory: detection and robust-rule AUC are
    # quality numbers, not timings, but a silent slide still reads as a
    # regression. check() skips cleanly when the baseline artifact
    # predates the arms_race block.
    ar_now = sim_now.get("arms_race", {})
    ar_prev = sim_prev.get("arms_race", {})
    for metric in ("detector_precision", "detector_recall",
                   "multi_krum_auc", "reputation_auc"):
        errors.append(check(
            f"sim.arms_race.{metric}",
            ar_now.get(metric), ar_prev.get(metric)))
    # K = 100k streaming-federation throughput (part 7); skips cleanly
    # when the baseline artifact predates the hundred_k block.
    errors.append(check(
        "sim.hundred_k.events_per_sec",
        sim_now.get("hundred_k", {}).get("events_per_sec"),
        sim_prev.get("hundred_k", {}).get("events_per_sec")))
    now_rows, prev_rows = codec_rows(comm_now), codec_rows(comm_prev)
    for name in sorted(set(now_rows) & set(prev_rows)):
        for metric in ("encode_mb_per_s", "decode_mb_per_s"):
            errors.append(check(
                f"comm.{name}.{metric}",
                now_rows[name].get(metric), prev_rows[name].get(metric)))
    now_shapes = shape_rows(kernels_now)
    prev_shapes = shape_rows(kernels_prev)
    for name in sorted(set(now_shapes) & set(prev_shapes)):
        errors.append(check(
            f"kernels.{name}.auto_gflops",
            now_shapes[name].get("auto_gflops"),
            prev_shapes[name].get("auto_gflops")))
    errors.append(check(
        "kernels.plan_cache.hit_rate",
        kernels_now.get("plan_cache", {}).get("hit_rate"),
        kernels_prev.get("plan_cache", {}).get("hit_rate")))

    errors = [e for e in errors if e is not None]
    if errors:
        for e in errors:
            print(f"perf_gate: FAIL - {e}")
        sys.exit(1)
    print("perf_gate: all metrics within the 20% band")


if __name__ == "__main__":
    main()
