// Tests for the FL extensions: model checkpointing round trips and the
// differential-privacy Gaussian mechanism (clip norm semantics, noise
// calibration, end-to-end compatibility with apply_to).
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <sstream>

#include "fl/checkpoint.hpp"
#include "fl/privacy.hpp"
#include "models/registry.hpp"
#include "tensor/ops.hpp"

namespace fleda {
namespace {

ModelParameters snapshot(ModelKind kind, std::uint64_t seed) {
  Rng rng(seed);
  RoutabilityModelPtr m = make_model(kind, 4, rng);
  return ModelParameters::from_model(*m);
}

TEST(Checkpoint, StreamRoundTripPreservesEverything) {
  ModelParameters original = snapshot(ModelKind::kPROS, 1);
  std::stringstream ss;
  write_checkpoint(ss, original);
  ModelParameters loaded = read_checkpoint(ss);
  ASSERT_TRUE(loaded.structurally_equal(original));
  for (std::size_t i = 0; i < original.entries().size(); ++i) {
    EXPECT_TRUE(loaded.entries()[i].value.equals(original.entries()[i].value))
        << original.entries()[i].name;
    EXPECT_EQ(loaded.entries()[i].is_buffer, original.entries()[i].is_buffer);
  }
}

TEST(Checkpoint, FileRoundTripAppliesToFreshModel) {
  ModelParameters original = snapshot(ModelKind::kFLNet, 2);
  const std::string path =
      (std::filesystem::temp_directory_path() / "fleda_ckpt_test.bin")
          .string();
  save_checkpoint(path, original);
  ModelParameters loaded = load_checkpoint(path);
  Rng rng(3);
  RoutabilityModelPtr fresh = make_model(ModelKind::kFLNet, 4, rng);
  loaded.apply_to(*fresh);  // must not throw: structure matches
  EXPECT_NEAR(ModelParameters::from_model(*fresh).squared_distance(original),
              0.0, 1e-12);
  std::filesystem::remove(path);
}

TEST(Checkpoint, BadMagicAndTruncationThrow) {
  std::stringstream bad("garbagegarbagegarbage");
  EXPECT_THROW(read_checkpoint(bad), std::runtime_error);

  ModelParameters original = snapshot(ModelKind::kFLNet, 4);
  std::stringstream ss;
  write_checkpoint(ss, original);
  std::string payload = ss.str();
  std::stringstream truncated(payload.substr(0, payload.size() / 3));
  EXPECT_THROW(read_checkpoint(truncated), std::runtime_error);
}

TEST(Privacy, UpdateNormMatchesSquaredDistance) {
  ModelParameters ref = snapshot(ModelKind::kFLNet, 5);
  ModelParameters update = ref;
  update.scale(1.5);  // delta = 0.5 * ref
  const double expected = std::sqrt(ref.squared_distance(update));
  EXPECT_NEAR(update_norm(update, ref), expected, 1e-9);
}

TEST(Privacy, ClipLeavesSmallUpdatesAlone) {
  ModelParameters ref = snapshot(ModelKind::kFLNet, 6);
  ModelParameters update = ref;
  ModelParameters before = update;
  const double norm = clip_update(update, ref, /*clip_norm=*/10.0);
  EXPECT_DOUBLE_EQ(norm, 0.0);  // update == ref
  EXPECT_NEAR(update.squared_distance(before), 0.0, 1e-12);
}

TEST(Privacy, ClipScalesLargeUpdatesToClipNorm) {
  ModelParameters ref = snapshot(ModelKind::kFLNet, 7);
  ModelParameters update = ref;
  update.scale(3.0);  // large delta
  const double pre_norm = update_norm(update, ref);
  ASSERT_GT(pre_norm, 0.5);
  const double reported = clip_update(update, ref, 0.5);
  EXPECT_NEAR(reported, pre_norm, 1e-6 * pre_norm);
  EXPECT_NEAR(update_norm(update, ref), 0.5, 1e-3);
  EXPECT_THROW(clip_update(update, ref, 0.0), std::invalid_argument);
}

TEST(Privacy, ClipPreservesDeltaDirection) {
  ModelParameters ref = snapshot(ModelKind::kFLNet, 8);
  ModelParameters update = ref;
  update.scale(2.0);  // delta = ref, direction known
  clip_update(update, ref, 0.1);
  // update = ref + 0.1 * ref/||ref||: entrywise proportional to ref.
  const Tensor& r0 = ref.entries()[0].value;
  const Tensor& u0 = update.entries()[0].value;
  // u0 - r0 should be a positive multiple of r0.
  const double k0 = (u0[0] - r0[0]) / r0[0];
  for (std::int64_t i = 1; i < std::min<std::int64_t>(r0.numel(), 64); ++i) {
    if (std::fabs(r0[i]) < 1e-4f) continue;
    EXPECT_NEAR((u0[i] - r0[i]) / r0[i], k0, 1e-3);
  }
}

TEST(Privacy, GaussianNoiseHasCalibratedMagnitude) {
  ModelParameters params = snapshot(ModelKind::kFLNet, 9);
  ModelParameters before = params;
  Rng rng(10);
  const double sigma = 0.05;
  add_gaussian_noise(params, sigma, rng);
  // Mean squared perturbation over ~36k parameters ~ sigma^2.
  const double msd =
      params.squared_distance(before) / static_cast<double>(params.numel());
  EXPECT_NEAR(std::sqrt(msd), sigma, 0.2 * sigma);
  EXPECT_THROW(add_gaussian_noise(params, -1.0, rng), std::invalid_argument);
}

TEST(Privacy, ZeroNoiseIsIdentity) {
  ModelParameters params = snapshot(ModelKind::kFLNet, 11);
  ModelParameters before = params;
  Rng rng(12);
  add_gaussian_noise(params, 0.0, rng);
  EXPECT_NEAR(params.squared_distance(before), 0.0, 1e-12);
}

TEST(Privacy, PrivatizeUpdateBoundsDeltaNorm) {
  ModelParameters ref = snapshot(ModelKind::kFLNet, 13);
  ModelParameters update = ref;
  update.scale(4.0);
  DpOptions opts;
  opts.clip_norm = 1.0;
  opts.noise_multiplier = 0.01;
  Rng rng(14);
  privatize_update(update, ref, opts, rng);
  // Post-mechanism norm ~ clip + small noise contribution.
  const double n = update_norm(update, ref);
  EXPECT_LT(n, 1.0 + 0.01 * std::sqrt(static_cast<double>(ref.numel())) * 3);
  EXPECT_GT(n, 0.5);
}

TEST(Privacy, NoisedUpdateStillAppliesToModel) {
  ModelParameters update = snapshot(ModelKind::kPROS, 15);
  ModelParameters ref = update;
  DpOptions opts;
  opts.clip_norm = 0.5;
  opts.noise_multiplier = 0.1;
  Rng rng(16);
  privatize_update(update, ref, opts, rng);
  Rng model_rng(17);
  RoutabilityModelPtr model = make_model(ModelKind::kPROS, 4, model_rng);
  EXPECT_NO_THROW(update.apply_to(*model));
}

}  // namespace
}  // namespace fleda
