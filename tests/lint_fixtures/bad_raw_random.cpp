// fleda-lint-fixture: expect raw-random
// Known-bad: unseeded / host-entropy randomness. Every stream in the
// library forks from util/rng so runs replay bit-identically.
#include <cstdlib>
#include <random>

namespace fixture {

int bad_c_random() {
  std::srand(42);
  return std::rand();
}

unsigned bad_entropy_seed() {
  std::random_device rd;
  return rd();
}

}  // namespace fixture
