// fleda-lint-fixture: expect unordered-iter
// Known-bad: iterates a hash container in what would be a numeric
// path — bucket order depends on pointer hashes, so any accumulation
// in this order is nondeterministic across runs and allocators.
#include <string>
#include <unordered_map>
#include <unordered_set>

namespace fixture {

double bad_sum(const std::unordered_map<int, double>& m) {
  std::unordered_map<int, double> weights = m;
  double total = 0.0;
  for (const auto& kv : weights) {
    total += kv.second;
  }
  return total;
}

int bad_first(std::unordered_set<int> ids) {
  auto it = ids.begin();
  return it == ids.end() ? -1 : *it;
}

}  // namespace fixture
