// fleda-lint-fixture: expect raw-clock
// Known-bad: reads the raw monotonic clocks directly. Library code
// must go through StopWatch (host time) or SimClock (simulated time)
// so profiling can be disabled and replays stay deterministic.
#include <chrono>

namespace fixture {

long bad_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

long bad_hires_ns() {
  auto t = std::chrono::high_resolution_clock::now();
  return t.time_since_epoch().count();
}

}  // namespace fixture
