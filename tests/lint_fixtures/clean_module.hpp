// fleda-lint-fixture: clean
// A header written to the house rules: #pragma once, annotated mutex
// with a FLEDA_GUARDED_BY protectee, no raw clocks/randomness/stdout,
// and strings/comments mentioning steady_clock or printf("...") that
// must NOT trip the stripper-backed rules.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "util/thread_safety.hpp"

namespace fixture {

// Documentation may say steady_clock and rand() freely — comments are
// stripped before the rules run.
class CleanRegistry {
 public:
  void put(const std::string& key, double value) {
    fleda::MutexLock lock(mutex_);
    values_[key] = value;
  }

  const char* describe() const {
    // String literals are stripped too:
    return "not a real printf(call) or steady_clock use";
  }

 private:
  mutable fleda::Mutex mutex_;
  std::map<std::string, double> values_ FLEDA_GUARDED_BY(mutex_);
};

}  // namespace fixture
