// fleda-lint-fixture: expect mutex-guarded
// Known-bad: mutex members with no FLEDA_GUARDED_BY protectee — the
// lock guards nothing the analysis (or a reader) can see.
#pragma once

#include <mutex>
#include <shared_mutex>
#include <vector>

namespace fixture {

class UnguardedCounter {
 public:
  void add(int v);

 private:
  std::mutex mutex_;
  mutable std::shared_mutex table_mutex_;
  std::vector<int> values_;  // should be FLEDA_GUARDED_BY(mutex_)
};

}  // namespace fixture
