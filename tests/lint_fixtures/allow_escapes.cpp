// fleda-lint-fixture: clean
// Every rule violated once, every violation carrying the per-line
// `// fleda-lint: allow(<rule>)` escape — the linter must report
// nothing. Real code pairs each escape with a justification.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <unordered_map>

namespace fixture {

long escaped_clock() {
  auto t = std::chrono::steady_clock::now();  // fleda-lint: allow(raw-clock)
  return t.time_since_epoch().count();
}

int escaped_random() {
  return std::rand();  // fleda-lint: allow(raw-random)
}

void escaped_stdout() {
  std::printf("fixture\n");  // fleda-lint: allow(stdout-io)
}

double escaped_unordered(const std::unordered_map<int, double>& m) {
  std::unordered_map<int, double> copy = m;
  double total = 0.0;
  // Order-independent reduction (sum), so iteration order is harmless.
  for (const auto& kv : copy) {  // fleda-lint: allow(unordered-iter)
    total += kv.second;
  }
  return total;
}

struct Handshake {
  std::mutex cv_mutex;  // fleda-lint: allow(mutex-guarded)
};

}  // namespace fixture
