// fleda-lint-fixture: expect stdout-io
// Known-bad: library code writing to stdout. Benches own stdout (CI
// parses their JSON lines); the library reports through util/logging.
#include <cstdio>
#include <iostream>

namespace fixture {

void bad_report(double auc) {
  std::cout << "auc=" << auc << "\n";
  std::printf("auc=%.3f\n", auc);
  std::fprintf(stdout, "auc=%.3f\n", auc);
  puts("done");
}

}  // namespace fixture
