// fleda-lint-fixture: expect pragma-once
// Known-bad: a header without #pragma once (double inclusion would be
// an ODR time bomb; include guards are not the project idiom).

namespace fixture {

inline int twice(int x) { return 2 * x; }

}  // namespace fixture
