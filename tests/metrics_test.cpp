// Tests for metrics: exact ROC AUC values on hand-computed cases,
// property tests (monotone-transform invariance, complement symmetry,
// tie handling), confusion-matrix math, and summary statistics.
#include <gtest/gtest.h>

#include <cmath>

#include "metrics/confusion.hpp"
#include "metrics/roc_auc.hpp"
#include "metrics/stats.hpp"
#include "util/rng.hpp"

namespace fleda {
namespace {

TEST(RocAuc, PerfectSeparation) {
  EXPECT_DOUBLE_EQ(roc_auc({0.1f, 0.2f, 0.8f, 0.9f}, {0, 0, 1, 1}), 1.0);
}

TEST(RocAuc, PerfectlyWrong) {
  EXPECT_DOUBLE_EQ(roc_auc({0.9f, 0.8f, 0.2f, 0.1f}, {0, 0, 1, 1}), 0.0);
}

TEST(RocAuc, HandComputedMixedCase) {
  // scores: pos {0.8, 0.3}, neg {0.5, 0.1}
  // pairs: (0.8>0.5)=1, (0.8>0.1)=1, (0.3<0.5)=0, (0.3>0.1)=1 -> 3/4.
  EXPECT_DOUBLE_EQ(roc_auc({0.8f, 0.3f, 0.5f, 0.1f}, {1, 1, 0, 0}), 0.75);
}

TEST(RocAuc, TiesCountHalf) {
  // One positive and one negative with identical scores -> 0.5.
  EXPECT_DOUBLE_EQ(roc_auc({0.5f, 0.5f}, {1, 0}), 0.5);
  // pos {0.7, 0.5}, neg {0.5, 0.2}: pairs 1, 1, 0.5, 1 -> 3.5/4.
  EXPECT_DOUBLE_EQ(roc_auc({0.7f, 0.5f, 0.5f, 0.2f}, {1, 1, 0, 0}), 0.875);
}

TEST(RocAuc, DegenerateClassesReturnHalf) {
  EXPECT_DOUBLE_EQ(roc_auc({0.1f, 0.9f}, {1, 1}), 0.5);
  EXPECT_DOUBLE_EQ(roc_auc({0.1f, 0.9f}, {0, 0}), 0.5);
  EXPECT_DOUBLE_EQ(roc_auc({}, {}), 0.5);
}

TEST(RocAuc, SizeMismatchThrows) {
  EXPECT_THROW(roc_auc({0.1f}, {0, 1}), std::invalid_argument);
}

TEST(RocAucProperty, InvariantUnderMonotoneTransform) {
  Rng rng(5);
  std::vector<float> scores, labels;
  for (int i = 0; i < 500; ++i) {
    scores.push_back(static_cast<float>(rng.uniform(-3.0, 3.0)));
    labels.push_back(rng.bernoulli(0.3) ? 1.0f : 0.0f);
  }
  const double base = roc_auc(scores, labels);
  std::vector<float> transformed;
  for (float s : scores) {
    transformed.push_back(std::tanh(0.5f * s) * 10.0f + 2.0f);
  }
  EXPECT_NEAR(roc_auc(transformed, labels), base, 1e-12);
}

TEST(RocAucProperty, ComplementSymmetry) {
  // AUC(-scores, labels) == 1 - AUC(scores, labels) without ties.
  Rng rng(7);
  std::vector<float> scores, labels, negated;
  for (int i = 0; i < 300; ++i) {
    scores.push_back(static_cast<float>(rng.uniform(0.0, 1.0)));
    negated.push_back(-scores.back());
    labels.push_back(rng.bernoulli(0.4) ? 1.0f : 0.0f);
  }
  EXPECT_NEAR(roc_auc(negated, labels), 1.0 - roc_auc(scores, labels), 1e-9);
}

TEST(RocAucProperty, RandomScoresNearHalf) {
  Rng rng(9);
  std::vector<float> scores, labels;
  for (int i = 0; i < 20000; ++i) {
    scores.push_back(static_cast<float>(rng.uniform()));
    labels.push_back(rng.bernoulli(0.2) ? 1.0f : 0.0f);
  }
  EXPECT_NEAR(roc_auc(scores, labels), 0.5, 0.02);
}

TEST(RocAucProperty, MatchesBruteForcePairCount) {
  Rng rng(11);
  std::vector<float> scores, labels;
  for (int i = 0; i < 120; ++i) {
    // Quantized scores force plenty of ties.
    scores.push_back(static_cast<float>(rng.uniform_int(8)) / 8.0f);
    labels.push_back(rng.bernoulli(0.5) ? 1.0f : 0.0f);
  }
  double wins = 0.0;
  std::int64_t pairs = 0;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    if (labels[i] < 0.5f) continue;
    for (std::size_t j = 0; j < scores.size(); ++j) {
      if (labels[j] > 0.5f) continue;
      ++pairs;
      if (scores[i] > scores[j]) {
        wins += 1.0;
      } else if (scores[i] == scores[j]) {
        wins += 0.5;
      }
    }
  }
  ASSERT_GT(pairs, 0);
  EXPECT_NEAR(roc_auc(scores, labels), wins / static_cast<double>(pairs),
              1e-9);
}

TEST(AucAccumulator, MatchesDirectComputation) {
  AucAccumulator acc;
  Tensor s1(Shape{4}, {0.9f, 0.1f, 0.6f, 0.4f});
  Tensor l1(Shape{4}, {1.0f, 0.0f, 1.0f, 0.0f});
  acc.add(s1, l1);
  acc.add(0.2f, 1.0f);
  EXPECT_EQ(acc.count(), 5u);
  EXPECT_DOUBLE_EQ(acc.auc(),
                   roc_auc({0.9f, 0.1f, 0.6f, 0.4f, 0.2f},
                           {1, 0, 1, 0, 1}));
  acc.reset();
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.auc(), 0.5);
}

TEST(Confusion, CountsAndDerivedMetrics) {
  Tensor scores(Shape{6}, {0.9f, 0.8f, 0.3f, 0.7f, 0.2f, 0.1f});
  Tensor labels(Shape{6}, {1.0f, 1.0f, 1.0f, 0.0f, 0.0f, 0.0f});
  ConfusionMatrix cm = confusion_at(scores, labels, 0.5f);
  EXPECT_EQ(cm.tp, 2);
  EXPECT_EQ(cm.fn, 1);
  EXPECT_EQ(cm.fp, 1);
  EXPECT_EQ(cm.tn, 2);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 4.0 / 6.0);
  EXPECT_DOUBLE_EQ(cm.precision(), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(cm.recall(), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(cm.f1(), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(cm.false_positive_rate(), 1.0 / 3.0);
}

TEST(Confusion, EmptyClassesGiveZeroNotNan) {
  Tensor scores(Shape{2}, {0.1f, 0.2f});
  Tensor labels(Shape{2}, {0.0f, 0.0f});
  ConfusionMatrix cm = confusion_at(scores, labels, 0.5f);
  EXPECT_DOUBLE_EQ(cm.precision(), 0.0);
  EXPECT_DOUBLE_EQ(cm.recall(), 0.0);
  EXPECT_DOUBLE_EQ(cm.f1(), 0.0);
}

TEST(Stats, SummaryOnKnownValues) {
  SummaryStats s = summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_NEAR(s.stddev, std::sqrt(5.0 / 3.0), 1e-12);
  EXPECT_EQ(s.count, 4u);
  EXPECT_EQ(summarize({}).count, 0u);
}

TEST(Stats, PearsonKnownCases) {
  EXPECT_NEAR(pearson({1, 2, 3}, {2, 4, 6}), 1.0, 1e-12);
  EXPECT_NEAR(pearson({1, 2, 3}, {6, 4, 2}), -1.0, 1e-12);
  EXPECT_DOUBLE_EQ(pearson({1, 1, 1}, {2, 4, 6}), 0.0);  // degenerate
  EXPECT_THROW(pearson({1.0}, {1.0, 2.0}), std::invalid_argument);
}

}  // namespace
}  // namespace fleda
