// Unit tests for the util substrate: RNG determinism and distribution
// sanity, thread pool / parallel_for correctness, ASCII tables, CLI
// parsing, and run-scale resolution.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <set>

#include "util/cli.hpp"
#include "util/config.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace fleda {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntInRangeAndCoversAll) {
  Rng rng(13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    std::uint64_t v = rng.uniform_int(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NormalMoments) {
  Rng rng(17);
  const int n = 100000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, BernoulliRate) {
  Rng rng(19);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ExponentialMean) {
  Rng rng(23);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, CategoricalFollowsWeights) {
  Rng rng(29);
  std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    ++counts[rng.categorical(weights)];
  }
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.02);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.02);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(31);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> orig = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, ForkYieldsIndependentStreams) {
  Rng parent(41);
  Rng a = parent.fork(1);
  Rng b = parent.fork(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(hits.size(), [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  bool called = false;
  parallel_for(0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, NestedParallelForCompletes) {
  std::atomic<int> total{0};
  parallel_for(8, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      parallel_for(10, [&](std::size_t bb, std::size_t ee) {
        total.fetch_add(static_cast<int>(ee - bb));
      });
    }
  });
  EXPECT_EQ(total.load(), 80);
}

TEST(ThreadPool, ParallelSumMatchesSerial) {
  std::vector<double> values(10000);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<double>(i % 17) * 0.25;
  }
  double serial = std::accumulate(values.begin(), values.end(), 0.0);
  std::atomic<long long> cents{0};
  parallel_for(values.size(), [&](std::size_t b, std::size_t e) {
    double local = 0.0;
    for (std::size_t i = b; i < e; ++i) local += values[i];
    cents.fetch_add(static_cast<long long>(local * 4.0));
  });
  EXPECT_EQ(static_cast<long long>(serial * 4.0), cents.load());
}

TEST(AsciiTable, RendersHeaderAndRows) {
  AsciiTable t("Title");
  t.set_header({"A", "BB"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  std::string s = t.to_string();
  EXPECT_NE(s.find("Title"), std::string::npos);
  EXPECT_NE(s.find("| A "), std::string::npos);
  EXPECT_NE(s.find("333"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.num_cols(), 2u);
}

TEST(AsciiTable, PadsShortRows) {
  AsciiTable t;
  t.set_header({"A", "B", "C"});
  t.add_row({"only"});
  EXPECT_NO_THROW(t.to_string());
  EXPECT_EQ(t.num_cols(), 3u);
}

TEST(AsciiTable, FmtPrecision) {
  EXPECT_EQ(AsciiTable::fmt(0.7812, 2), "0.78");
  EXPECT_EQ(AsciiTable::fmt(0.7812, 3), "0.781");
}

TEST(Cli, ParsesEqualsAndSpaceForms) {
  const char* argv[] = {"prog", "--rounds=12", "--model", "flnet", "--verbose"};
  CliParser cli(5, argv);
  EXPECT_EQ(cli.get_int("rounds", 0), 12);
  EXPECT_EQ(cli.get_string("model", ""), "flnet");
  EXPECT_TRUE(cli.get_bool("verbose", false));
  EXPECT_EQ(cli.get_int("missing", 42), 42);
}

TEST(Cli, PositionalArguments) {
  const char* argv[] = {"prog", "pos1", "--x=1", "pos2"};
  CliParser cli(4, argv);
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "pos1");
  EXPECT_EQ(cli.positional()[1], "pos2");
}

TEST(Cli, DoubleParsing) {
  const char* argv[] = {"prog", "--mu=0.0001"};
  CliParser cli(2, argv);
  EXPECT_DOUBLE_EQ(cli.get_double("mu", 0.0), 0.0001);
}

TEST(RunScale, KnownScales) {
  EXPECT_EQ(resolve_scale("smoke").name, "smoke");
  EXPECT_EQ(resolve_scale("quick").name, "quick");
  EXPECT_EQ(resolve_scale("full").name, "full");
  EXPECT_EQ(resolve_scale("bogus").name, "quick");
}

TEST(RunScale, ScalesAreOrdered) {
  RunScale smoke = resolve_scale("smoke");
  RunScale quick = resolve_scale("quick");
  RunScale full = resolve_scale("full");
  EXPECT_LT(smoke.rounds, quick.rounds);
  EXPECT_LT(quick.rounds, full.rounds);
  EXPECT_LE(smoke.grid, quick.grid);
  EXPECT_LE(quick.grid, full.grid);
  EXPECT_LT(smoke.placement_fraction, full.placement_fraction);
}

}  // namespace
}  // namespace fleda
