// Tests for the src/sim/ simulation engine and the algorithms running
// on it: event-queue ordering and clock monotonicity, client profiles
// (availability windows, stock scenarios), per-client link durations,
// sync rounds as schedules (straggler stretches the barrier),
// AsyncFedAvg (staleness discounts, buffered aggregation, dropout
// semantics, straggler speedup), server-side aggregation guards, and
// bit-exact determinism of trace + final parameters across thread-pool
// sizes.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "fl/async_fedavg.hpp"
#include "fl/fedavg.hpp"
#include "fl/server.hpp"
#include "fl/synthetic.hpp"
#include "models/registry.hpp"
#include "sim/engine.hpp"
#include "sim/event_queue.hpp"
#include "sim/federation.hpp"
#include "sim/profile.hpp"
#include "util/thread_pool.hpp"

namespace fleda {
namespace {

// --- event queue core ------------------------------------------------

TEST(EventQueue, RunsInTimeOrderWithInsertionTiebreak) {
  SimClock clock;
  EventQueue queue;
  std::vector<int> order;
  queue.schedule(2.0, [&] { order.push_back(2); });
  queue.schedule(1.0, [&] { order.push_back(1); });
  queue.schedule(1.0, [&] { order.push_back(10); });  // same time: FIFO
  queue.schedule(0.5, [&] { order.push_back(0); });
  queue.run_all(clock);
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 1);
  EXPECT_EQ(order[2], 10);
  EXPECT_EQ(order[3], 2);
  EXPECT_DOUBLE_EQ(clock.now(), 2.0);
  EXPECT_EQ(queue.processed(), 4u);
}

TEST(EventQueue, EventsMayScheduleFurtherEvents) {
  SimClock clock;
  EventQueue queue;
  int fired = 0;
  queue.schedule(1.0, [&] {
    ++fired;
    queue.schedule(3.0, [&] { ++fired; });
  });
  queue.run_all(clock);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(clock.now(), 3.0);
}

TEST(EventQueue, RejectsBadTimesAndBackwardClock) {
  SimClock clock;
  EventQueue queue;
  EXPECT_THROW(queue.schedule(-1.0, {}), std::invalid_argument);
  EXPECT_THROW(queue.schedule(std::numeric_limits<double>::infinity(), {}),
               std::invalid_argument);
  clock.advance_to(5.0);
  EXPECT_THROW(clock.advance_to(4.0), std::logic_error);
  queue.schedule(1.0, {});  // already in the clock's past
  EXPECT_THROW(queue.run_next(clock), std::logic_error);
}

TEST(EventQueue, RunAllBoundsRunawayLoops) {
  SimClock clock;
  EventQueue queue;
  std::function<void()> respawn = [&] { queue.schedule(clock.now(), respawn); };
  queue.schedule(0.0, respawn);
  EXPECT_THROW(queue.run_all(clock, /*max_events=*/1000), std::runtime_error);
}

// --- profiles --------------------------------------------------------

TEST(ClientProfile, AvailabilityWindows) {
  ClientProfile p;
  p.offline.push_back({2.0, 4.0});
  p.offline.push_back({3.5, 6.0});  // overlapping chain
  EXPECT_TRUE(p.is_online(1.0));
  EXPECT_FALSE(p.is_online(2.0));
  EXPECT_FALSE(p.is_online(5.0));
  EXPECT_TRUE(p.is_online(6.0));  // half-open
  EXPECT_DOUBLE_EQ(p.next_online(1.0), 1.0);
  EXPECT_DOUBLE_EQ(p.next_online(2.5), 6.0);  // chained through both
  EXPECT_DOUBLE_EQ(p.next_online(5.9), 6.0);
}

TEST(SimConfig, StockScenarios) {
  SimConfig straggler = SimConfig::with_straggler(4, 2, 10.0);
  ASSERT_EQ(straggler.profiles.size(), 4u);
  EXPECT_DOUBLE_EQ(straggler.profiles[2].compute_multiplier, 10.0);
  EXPECT_DOUBLE_EQ(straggler.profiles[0].compute_multiplier, 1.0);
  EXPECT_THROW(SimConfig::with_straggler(4, 9, 10.0), std::invalid_argument);

  SimConfig het = SimConfig::heterogeneous(16, 3, 8.0);
  for (const ClientProfile& p : het.profiles) {
    EXPECT_GE(p.compute_multiplier, 1.0);
    EXPECT_LE(p.compute_multiplier, 8.0);
    EXPECT_GT(p.link.uplink_bytes_per_sec, 0.0);
  }
  // Seeded: same seed, same profiles.
  SimConfig het2 = SimConfig::heterogeneous(16, 3, 8.0);
  EXPECT_DOUBLE_EQ(het.profiles[5].compute_multiplier,
                   het2.profiles[5].compute_multiplier);

  SimConfig drop = SimConfig::uniform(2);
  add_periodic_dropout(drop, 1, 1.0, 10.0, 2.0, 3);
  EXPECT_EQ(drop.profiles[1].offline.size(), 3u);
  EXPECT_FALSE(drop.profiles[1].is_online(11.5));
  EXPECT_TRUE(drop.profiles[1].is_online(13.5));
  EXPECT_THROW(add_periodic_dropout(drop, 7, 0.0, 1.0, 0.5, 1),
               std::invalid_argument);
}

// --- engine durations ------------------------------------------------

TEST(SimEngine, PerClientLinkFallbackAndOverride) {
  CommConfig comm;  // 12.5e6 up / 62.5e6 down / 0.05 s per message
  SimConfig config = SimConfig::uniform(2);
  config.step_time_s = 0.1;
  config.profiles[1].link.downlink_bytes_per_sec = 1e6;
  config.profiles[1].link.per_message_latency_s = 0.0;
  config.profiles[1].compute_multiplier = 4.0;
  SimEngine engine(config, comm, 2);

  EXPECT_NEAR(engine.download_duration(0, 1, 62.5e6), 0.05 + 1.0, 1e-12);
  EXPECT_NEAR(engine.download_duration(1, 1, 1e6), 1.0, 1e-12);  // override
  EXPECT_NEAR(engine.upload_duration(1, 2, 12.5e6), 1.0, 1e-12);  // inherit
  EXPECT_NEAR(engine.compute_duration(0, 5), 0.5, 1e-12);
  EXPECT_NEAR(engine.compute_duration(1, 5), 2.0, 1e-12);
}

// --- tiny federated world (shared fl/synthetic fixture) --------------

using TinyWorld = SyntheticWorld;

TinyWorld make_world(std::uint64_t seed, std::size_t num_clients = 3) {
  SyntheticWorldOptions options;
  options.num_clients = num_clients;
  return make_synthetic_world(seed, options);
}

FLRunOptions tiny_options(int rounds = 2) {
  FLRunOptions opts;
  opts.rounds = rounds;
  opts.client.steps = 3;
  opts.client.batch_size = 2;
  opts.client.learning_rate = 1e-3;
  opts.client.mu = 0.0;
  opts.seed = 99;
  return opts;
}

// --- sync rounds as schedules ---------------------------------------

TEST(SyncSchedule, ReportsEventsAndTime) {
  TinyWorld w = make_world(21);
  FLRunOptions opts = tiny_options(2);
  opts.trace = true;
  SimReport report;
  opts.sim_report = &report;
  FedAvg algo;
  algo.run(w.clients, w.factory, opts);
  // Per round: 3 per-client events + one barrier release.
  EXPECT_EQ(report.events_processed, 2u * (3u * 3u + 1u));
  EXPECT_EQ(report.trace.size(), report.events_processed);
  EXPECT_GT(report.total_time_s, 0.0);
  EXPECT_EQ(report.trace.back().kind, SimEventKind::kRoundEnd);
}

TEST(SyncSchedule, StragglerStretchesBarrier) {
  auto run_with = [&](const SimConfig& sim) {
    TinyWorld w = make_world(22);
    FLRunOptions opts = tiny_options(2);
    opts.sim = sim;
    opts.sim.step_time_s = 1.0;  // compute-dominated
    SimReport report;
    opts.sim_report = &report;
    FedAvg algo;
    algo.run(w.clients, w.factory, opts);
    return report.total_time_s;
  };
  const double uniform = run_with(SimConfig::uniform(3));
  const double straggler = run_with(SimConfig::with_straggler(3, 0, 10.0));
  // The barrier waits for the 10x straggler every round.
  EXPECT_GT(straggler, 5.0 * uniform);
  EXPECT_LT(straggler, 11.0 * uniform);
}

TEST(SyncSchedule, OfflineClientDelaysRound) {
  TinyWorld w = make_world(23);
  FLRunOptions opts = tiny_options(1);
  opts.sim = SimConfig::uniform(3);
  opts.sim.profiles[1].offline.push_back({0.0, 50.0});
  SimReport report;
  opts.sim_report = &report;
  FedAvg algo;
  algo.run(w.clients, w.factory, opts);
  EXPECT_GT(report.total_time_s, 50.0);  // waited for the rejoin
}

TEST(SyncSchedule, PermanentlyOfflineClientThrowsDescriptively) {
  // The barrier would never release; the engine must say so instead of
  // failing deep inside EventQueue with a non-finite timestamp.
  TinyWorld w = make_world(24);
  FLRunOptions opts = tiny_options(1);
  opts.sim = SimConfig::uniform(3);
  opts.sim.profiles[2].offline.push_back(
      {0.0, std::numeric_limits<double>::infinity()});
  FedAvg algo;
  EXPECT_THROW(algo.run(w.clients, w.factory, opts), std::invalid_argument);
}

// --- AsyncFedAvg -----------------------------------------------------

TEST(AsyncFedAvg, StalenessWeights) {
  AsyncConfig config;
  config.discount = StalenessDiscount::kPolynomial;
  config.poly_exponent = 0.5;
  EXPECT_DOUBLE_EQ(AsyncFedAvg::staleness_weight(config, 0), 1.0);
  EXPECT_NEAR(AsyncFedAvg::staleness_weight(config, 3), 0.5, 1e-12);
  config.discount = StalenessDiscount::kConstant;
  config.constant_factor = 0.25;
  EXPECT_DOUBLE_EQ(AsyncFedAvg::staleness_weight(config, 0), 1.0);
  EXPECT_DOUBLE_EQ(AsyncFedAvg::staleness_weight(config, 7), 0.25);
  EXPECT_THROW(AsyncFedAvg(AsyncConfig{0, 1.0}), std::invalid_argument);
}

TEST(AsyncFedAvg, AggregatesAndMetersRounds) {
  TinyWorld w = make_world(31);
  FLRunOptions opts = tiny_options(4);
  opts.trace = true;
  ChannelStats comm;
  SimReport report;
  opts.comm_stats = &comm;
  opts.sim_report = &report;
  AsyncConfig config;
  config.buffer_size = 2;
  AsyncFedAvg algo(config);
  std::vector<ModelParameters> finals = algo.run(w.clients, w.factory, opts);
  ASSERT_EQ(finals.size(), 3u);
  EXPECT_TRUE(finals[0].structurally_equal(finals[1]));
  // One channel round per aggregation.
  EXPECT_EQ(comm.rounds.size(), 4u);
  int aggregates = 0;
  for (const SimTraceEntry& e : report.trace) {
    if (e.kind == SimEventKind::kAggregate) ++aggregates;
  }
  EXPECT_EQ(aggregates, 4);
  EXPECT_GT(comm.uplink_messages, 0u);
  EXPECT_GT(report.total_time_s, 0.0);
}

TEST(AsyncFedAvg, BeatsSyncWallClockUnderStraggler) {
  const int rounds = 3;
  // Sync pays the 10x straggler every round...
  TinyWorld ws = make_world(32);
  FLRunOptions sync_opts = tiny_options(rounds);
  sync_opts.sim = SimConfig::with_straggler(3, 0, 10.0);
  sync_opts.sim.step_time_s = 1.0;
  SimReport sync_report;
  sync_opts.sim_report = &sync_report;
  FedAvg sync_algo;
  sync_algo.run(ws.clients, ws.factory, sync_opts);

  // ...async keeps aggregating from the two fast clients.
  TinyWorld wa = make_world(32);
  FLRunOptions async_opts = tiny_options(rounds);
  async_opts.sim = SimConfig::with_straggler(3, 0, 10.0);
  async_opts.sim.step_time_s = 1.0;
  SimReport async_report;
  async_opts.sim_report = &async_report;
  AsyncConfig config;
  config.buffer_size = 2;
  AsyncFedAvg async_algo(config);
  async_algo.run(wa.clients, wa.factory, async_opts);

  EXPECT_LT(async_report.total_time_s, 0.5 * sync_report.total_time_s);
}

TEST(AsyncFedAvg, DropoutLosesInFlightUpdateAndRecovers) {
  // First pass: find when client 0 first delivers.
  TinyWorld probe = make_world(33);
  FLRunOptions opts = tiny_options(3);
  opts.trace = true;
  SimReport report;
  opts.sim_report = &report;
  AsyncConfig config;
  config.buffer_size = 2;
  {
    AsyncFedAvg algo(config);
    algo.run(probe.clients, probe.factory, opts);
  }
  double first_delivery = -1.0;
  for (const SimTraceEntry& e : report.trace) {
    if (e.kind == SimEventKind::kUplinkDone && e.client == 0) {
      first_delivery = e.time;
      break;
    }
  }
  ASSERT_GT(first_delivery, 0.0);

  // Second pass: knock client 0 offline across that delivery moment —
  // the update must be dropped and retried after the window.
  TinyWorld w = make_world(33);
  opts.sim = SimConfig::uniform(3);
  opts.sim.profiles[0].offline.push_back(
      {first_delivery - 1e-9, first_delivery + 5.0});
  SimReport dropped_report;
  opts.sim_report = &dropped_report;
  AsyncFedAvg algo(config);
  std::vector<ModelParameters> finals = algo.run(w.clients, w.factory, opts);
  ASSERT_EQ(finals.size(), 3u);
  bool saw_drop = false;
  for (const SimTraceEntry& e : dropped_report.trace) {
    if (e.kind == SimEventKind::kDropped && e.client == 0) saw_drop = true;
  }
  EXPECT_TRUE(saw_drop);
}

TEST(AsyncFedAvg, ThrowsWhenEveryClientIsPermanentlyOffline) {
  TinyWorld w = make_world(34);
  FLRunOptions opts = tiny_options(2);
  opts.sim = SimConfig::uniform(3);
  const double forever = std::numeric_limits<double>::infinity();
  for (ClientProfile& p : opts.sim.profiles) p.offline.push_back({0.0,
                                                                  forever});
  AsyncFedAvg algo;
  EXPECT_THROW(algo.run(w.clients, w.factory, opts), std::runtime_error);
}

// --- aggregation guards (satellite) ----------------------------------

TEST(ServerGuards, DescriptiveErrorsInsteadOfNaNs) {
  Rng rng(4);
  RoutabilityModelPtr model = make_model(ModelKind::kFLNet, 2, rng);
  ModelParameters params = ModelParameters::from_model(*model);
  std::vector<ModelParameters> updates = {params, params};

  // Empty member set.
  EXPECT_THROW(Server::aggregate_subset(updates, {1.0, 1.0}, {}),
               std::invalid_argument);
  // Zero total weight would divide by zero -> NaN parameters.
  EXPECT_THROW(Server::aggregate(updates, {0.0, 0.0}), std::invalid_argument);
  // Non-finite weights must not slip through the sign check.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(Server::aggregate(updates, {nan, 1.0}), std::invalid_argument);
  EXPECT_THROW(
      Server::aggregate(updates,
                        {std::numeric_limits<double>::infinity(), 1.0}),
      std::invalid_argument);
  // Subset with all-zero weights.
  EXPECT_THROW(Server::aggregate_subset(updates, {0.0, 0.0}, {0, 1}),
               std::invalid_argument);
}

// --- determinism across thread-pool sizes (satellite) ----------------

struct RunArtifacts {
  std::vector<SimTraceEntry> trace;
  std::vector<ModelParameters> finals;
  double total_time_s = 0.0;
};

bool bit_identical(const ModelParameters& a, const ModelParameters& b) {
  if (!a.structurally_equal(b)) return false;
  for (std::size_t n = 0; n < a.entries().size(); ++n) {
    if (!a.entries()[n].value.equals(b.entries()[n].value)) return false;
  }
  return true;
}

template <typename AlgoFactory>
RunArtifacts run_traced(AlgoFactory make_algo, std::size_t pool_size,
                        const SimConfig& sim) {
  ThreadPool::reset_global(pool_size);
  TinyWorld w = make_world(55);
  FLRunOptions opts = tiny_options(3);
  opts.trace = true;
  opts.sim = sim;
  SimReport report;
  opts.sim_report = &report;
  auto algo = make_algo();
  RunArtifacts artifacts;
  artifacts.finals = algo->run(w.clients, w.factory, opts);
  artifacts.trace = std::move(report.trace);
  artifacts.total_time_s = report.total_time_s;
  return artifacts;
}

void expect_identical(const RunArtifacts& a, const RunArtifacts& b) {
  EXPECT_DOUBLE_EQ(a.total_time_s, b.total_time_s);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_TRUE(a.trace[i] == b.trace[i])
        << "trace diverges at event " << i << ": t=" << a.trace[i].time
        << " vs t=" << b.trace[i].time;
  }
  ASSERT_EQ(a.finals.size(), b.finals.size());
  for (std::size_t k = 0; k < a.finals.size(); ++k) {
    EXPECT_TRUE(bit_identical(a.finals[k], b.finals[k])) << "client " << k;
  }
}

TEST(Determinism, SyncTraceAndParametersInvariantToPoolSize) {
  const SimConfig sim = SimConfig::heterogeneous(3, 11);
  auto factory = [] { return std::make_unique<FedAvg>(); };
  RunArtifacts one = run_traced(factory, 1, sim);
  RunArtifacts four = run_traced(factory, 4, sim);
  expect_identical(one, four);
  ThreadPool::reset_global(0);
}

// --- participation policies on the engine (tentpole) -----------------

TEST(SyncSchedule, AvailabilityAwareSkipsOfflineClientInsteadOfWaiting) {
  // Same scenario as OfflineClientDelaysRound, but with the
  // availability-aware policy the barrier no longer stalls until the
  // offline client's window ends — the round closes on the two
  // reachable clients.
  TinyWorld w = make_world(25);
  FLRunOptions opts = tiny_options(1);
  opts.sim = SimConfig::uniform(3);
  opts.sim.profiles[1].offline.push_back({0.0, 50.0});
  opts.participation.kind = ParticipationKind::kAvailabilityAware;
  SimReport report;
  opts.sim_report = &report;
  FedAvg algo;
  std::vector<ModelParameters> finals = algo.run(w.clients, w.factory, opts);
  ASSERT_EQ(finals.size(), 3u);
  EXPECT_GT(report.total_time_s, 0.0);
  EXPECT_LT(report.total_time_s, 50.0);
}

TEST(SyncSchedule, SampledRoundBillsAndSchedulesOnlyTheCohort) {
  auto run_with = [&](int sample_size, ChannelStats* comm) {
    TinyWorld w = make_world(26, /*num_clients=*/6);
    FLRunOptions opts = tiny_options(2);
    if (sample_size > 0) {
      opts.participation.kind = ParticipationKind::kUniformSample;
      opts.participation.sample_size = sample_size;
    }
    opts.comm_stats = comm;
    SimReport report;
    opts.sim_report = &report;
    FedAvg algo;
    algo.run(w.clients, w.factory, opts);
    return report;
  };

  ChannelStats sampled;
  const SimReport sampled_report = run_with(2, &sampled);
  ASSERT_EQ(sampled.rounds.size(), 2u);
  for (const RoundCommStats& r : sampled.rounds) {
    EXPECT_EQ(r.downlink_messages, 2u);  // C, not K
    EXPECT_EQ(r.uplink_messages, 2u);
  }
  // Per round: 3 events per cohort member + the barrier release.
  EXPECT_EQ(sampled_report.events_processed, 2u * (2u * 3u + 1u));

  ChannelStats full;
  run_with(0, &full);
  // fp32 both ways: every exchange has the same wire size, so bytes
  // scale exactly with the cohort size (K = 6 vs C = 2).
  EXPECT_EQ(full.downlink_bytes, 3 * sampled.downlink_bytes);
  EXPECT_EQ(full.uplink_bytes, 3 * sampled.uplink_bytes);
}

TEST(Determinism, SampledCohortTraceAndParametersInvariantToPoolSize) {
  auto run_with_pool = [](std::size_t pool) {
    ThreadPool::reset_global(pool);
    TinyWorld w = make_world(77, /*num_clients=*/4);
    FLRunOptions opts = tiny_options(3);
    opts.trace = true;
    opts.sim = SimConfig::heterogeneous(4, 9);
    opts.participation.kind = ParticipationKind::kUniformSample;
    opts.participation.sample_size = 2;
    SimReport report;
    opts.sim_report = &report;
    FedAvg algo;
    RunArtifacts artifacts;
    artifacts.finals = algo.run(w.clients, w.factory, opts);
    artifacts.trace = std::move(report.trace);
    artifacts.total_time_s = report.total_time_s;
    return artifacts;
  };
  RunArtifacts one = run_with_pool(1);
  RunArtifacts four = run_with_pool(4);
  expect_identical(one, four);
  ThreadPool::reset_global(0);
}

TEST(Determinism, AsyncTraceAndParametersInvariantToPoolSize) {
  SimConfig sim = SimConfig::with_straggler(3, 0, 4.0);
  add_periodic_dropout(sim, 1, 0.5, 5.0, 1.0, 4);
  auto factory = [] {
    AsyncConfig config;
    config.buffer_size = 2;
    return std::make_unique<AsyncFedAvg>(config);
  };
  RunArtifacts one = run_traced(factory, 1, sim);
  RunArtifacts three = run_traced(factory, 3, sim);
  expect_identical(one, three);
  ThreadPool::reset_global(0);
}

// --- O(threads) model memory at K = 1000 (tentpole) ------------------

TEST(ModelPoolScale, ThousandClientsHoldOThreadsModelInstances) {
  // 1000 clients sharing 9 tiny datasets and ONE scratch-model pool:
  // over construction, training, and evaluation the peak live
  // RoutabilityModel count must stay within threads + 1.
  std::vector<ClientDataset> shared_data;
  for (int d = 0; d < 9; ++d) {
    shared_data.push_back(make_synthetic_client(
        d + 1, 0.35f + 0.04f * static_cast<float>(d), 2000 + d));
  }
  ModelFactory factory = make_model_factory(ModelKind::kFLNet, 2);
  auto pool = std::make_shared<ModelPool>(factory);

  RoutabilityModel::reset_peak_instances();
  const std::int64_t base = RoutabilityModel::live_instances();

  Rng rng(4242);
  std::vector<Client> clients;
  clients.reserve(1000);
  for (std::size_t k = 0; k < 1000; ++k) {
    clients.emplace_back(static_cast<int>(k) + 1, &shared_data[k % 9],
                         pool, rng.fork(k));
  }

  FLRunOptions opts = tiny_options(2);
  opts.client.steps = 1;
  opts.participation.kind = ParticipationKind::kUniformSample;
  opts.participation.sample_size = 10;
  opts.participation.seed = 31337;
  FedAvg algo;
  std::vector<ModelParameters> finals = algo.run(clients, factory, opts);
  ASSERT_EQ(finals.size(), 1000u);
  const double auc = clients[0].evaluate_test_auc(finals[0]);
  EXPECT_GE(auc, 0.0);
  EXPECT_LE(auc, 1.0);

  const std::int64_t budget =
      static_cast<std::int64_t>(ThreadPool::global().size()) + 1;
  EXPECT_LE(RoutabilityModel::peak_instances() - base, budget);
  EXPECT_LE(static_cast<std::int64_t>(pool->resident()), budget);
}

// --- AsyncFedAvg max_in_flight dispatch gate (satellite) --------------

// Counts the maximum number of simultaneously in-flight clients in a
// trace (kDispatch opens a client's chain; its kUplinkDone / kDropped
// closes it). Closes without a matching open — e.g. the kDropped a
// permanently-offline client gets at dispatch time — are ignored so
// they cannot mask cap violations by driving the count negative.
int max_concurrent_in_flight(const std::vector<SimTraceEntry>& trace) {
  std::set<int> open;
  std::size_t peak = 0;
  for (const SimTraceEntry& e : trace) {
    if (e.client < 0) continue;
    if (e.kind == SimEventKind::kDispatch) {
      open.insert(e.client);
      peak = std::max(peak, open.size());
    } else if (e.kind == SimEventKind::kUplinkDone ||
               e.kind == SimEventKind::kDropped) {
      open.erase(e.client);
    }
  }
  return static_cast<int>(peak);
}

TEST(AsyncFedAvg, MaxInFlightCapIsRespectedAndRotatesTheFleet) {
  TinyWorld w = make_world(44, /*num_clients=*/6);
  FLRunOptions opts = tiny_options(4);
  opts.trace = true;
  SimReport report;
  opts.sim_report = &report;
  AsyncConfig config;
  config.buffer_size = 2;
  config.max_in_flight = 2;
  AsyncFedAvg algo(config);
  std::vector<ModelParameters> finals = algo.run(w.clients, w.factory, opts);
  ASSERT_EQ(finals.size(), 6u);

  EXPECT_LE(max_concurrent_in_flight(report.trace), 2);
  // The freed slots rotate FIFO through the fleet: more distinct
  // clients than the cap get dispatched over the run.
  std::set<int> dispatched;
  for (const SimTraceEntry& e : report.trace) {
    if (e.kind == SimEventKind::kDispatch) dispatched.insert(e.client);
  }
  EXPECT_GT(dispatched.size(), 2u);
}

TEST(AsyncFedAvg, MaxInFlightIsDeterministic) {
  auto run_once = [] {
    TinyWorld w = make_world(45, /*num_clients=*/5);
    FLRunOptions opts = tiny_options(3);
    opts.trace = true;
    opts.sim = SimConfig::heterogeneous(5, 13);
    SimReport report;
    opts.sim_report = &report;
    AsyncConfig config;
    config.buffer_size = 2;
    config.max_in_flight = 2;
    AsyncFedAvg algo(config);
    RunArtifacts artifacts;
    artifacts.finals = algo.run(w.clients, w.factory, opts);
    artifacts.trace = std::move(report.trace);
    artifacts.total_time_s = report.total_time_s;
    return artifacts;
  };
  expect_identical(run_once(), run_once());
}

TEST(AsyncFedAvg, UngatedRunMatchesCapAtFleetSize) {
  // cap = 0 (unlimited) and cap = K admit the same schedule: the gate
  // only changes behavior when it actually binds.
  auto run_with_cap = [](int cap) {
    TinyWorld w = make_world(46, /*num_clients=*/4);
    FLRunOptions opts = tiny_options(3);
    opts.trace = true;
    SimReport report;
    opts.sim_report = &report;
    AsyncConfig config;
    config.buffer_size = 2;
    config.max_in_flight = cap;
    AsyncFedAvg algo(config);
    RunArtifacts artifacts;
    artifacts.finals = algo.run(w.clients, w.factory, opts);
    artifacts.trace = std::move(report.trace);
    artifacts.total_time_s = report.total_time_s;
    return artifacts;
  };
  expect_identical(run_with_cap(0), run_with_cap(4));
}

TEST(AsyncFedAvg, RejectsNegativeMaxInFlight) {
  AsyncConfig config;
  config.max_in_flight = -1;
  EXPECT_THROW(AsyncFedAvg{config}, std::invalid_argument);
}

}  // namespace
}  // namespace fleda
