// Tests for suite profiles and synthetic netlist generation:
// determinism, size/utilization contracts, net-degree statistics,
// suite-dependent structure (macros, locality), and invariants every
// netlist must satisfy.
#include <gtest/gtest.h>

#include <cmath>

#include "phys/netlist.hpp"
#include "phys/suite_profile.hpp"

namespace fleda {
namespace {

const BenchmarkSuite kAllSuites[] = {
    BenchmarkSuite::kIscas89,
    BenchmarkSuite::kItc99,
    BenchmarkSuite::kIwls05,
    BenchmarkSuite::kIspd15,
};

NetlistGenParams default_params(BenchmarkSuite suite) {
  NetlistGenParams p;
  p.profile = profile_for(suite);
  p.grid_w = 32;
  p.grid_h = 32;
  p.gcell_cell_capacity = 8.0;
  return p;
}

TEST(SuiteProfile, ParseRoundTrip) {
  for (BenchmarkSuite suite : kAllSuites) {
    EXPECT_EQ(parse_suite(to_string(suite)), suite);
  }
  EXPECT_EQ(parse_suite("iscas89"), BenchmarkSuite::kIscas89);
  EXPECT_THROW(parse_suite("mcnc"), std::invalid_argument);
}

TEST(SuiteProfile, ProfilesEncodeSuiteCharacter) {
  const SuiteProfile iscas = profile_for(BenchmarkSuite::kIscas89);
  const SuiteProfile ispd = profile_for(BenchmarkSuite::kIspd15);
  // ISCAS'89: no macros, most local connectivity.
  EXPECT_EQ(iscas.macro_count_mean, 0.0);
  // ISPD'15: macro-heavy, most global connectivity, highest density.
  EXPECT_GT(ispd.macro_count_mean, 1.0);
  EXPECT_GT(ispd.connectivity_locality, iscas.connectivity_locality);
  EXPECT_GT(ispd.min_utilization, iscas.min_utilization);
}

class NetlistPerSuite : public ::testing::TestWithParam<BenchmarkSuite> {};

TEST_P(NetlistPerSuite, DeterministicForSameSeed) {
  NetlistGenParams p = default_params(GetParam());
  Rng rng1(99), rng2(99);
  NetlistPtr a = generate_netlist(p, rng1);
  NetlistPtr b = generate_netlist(p, rng2);
  ASSERT_EQ(a->num_cells(), b->num_cells());
  ASSERT_EQ(a->num_nets(), b->num_nets());
  for (std::size_t i = 0; i < a->nets.size(); ++i) {
    EXPECT_EQ(a->nets[i].cells, b->nets[i].cells);
  }
}

TEST_P(NetlistPerSuite, CellCountMatchesUtilization) {
  NetlistGenParams p = default_params(GetParam());
  Rng rng(7);
  NetlistPtr nl = generate_netlist(p, rng);
  const double capacity = 32.0 * 32.0 * 8.0;
  // Total cell area within the utilization envelope (+macro slack).
  EXPECT_GT(nl->total_cell_area(),
            0.5 * p.profile.min_utilization * capacity * 0.5);
  EXPECT_LT(nl->total_cell_area(), p.profile.max_utilization * capacity * 1.4);
}

TEST_P(NetlistPerSuite, NetInvariants) {
  NetlistGenParams p = default_params(GetParam());
  Rng rng(11);
  NetlistPtr nl = generate_netlist(p, rng);
  ASSERT_GT(nl->num_nets(), 0);
  for (const Net& net : nl->nets) {
    // >= 2 distinct members, all valid cell indices, sorted unique.
    EXPECT_GE(net.degree(), 2);
    for (std::size_t i = 0; i < net.cells.size(); ++i) {
      EXPECT_GE(net.cells[i], 0);
      EXPECT_LT(net.cells[i], nl->num_cells());
      if (i > 0) EXPECT_LT(net.cells[i - 1], net.cells[i]);
    }
  }
}

TEST_P(NetlistPerSuite, MeanDegreeNearProfile) {
  NetlistGenParams p = default_params(GetParam());
  Rng rng(13);
  NetlistPtr nl = generate_netlist(p, rng);
  const double mean_degree = static_cast<double>(nl->num_pins()) /
                             static_cast<double>(nl->num_nets());
  // Degree shrinks slightly from dedup; allow a generous band.
  EXPECT_GT(mean_degree, 2.0);
  EXPECT_LT(mean_degree, p.profile.mean_net_degree + 2.0);
}

TEST_P(NetlistPerSuite, CellAreasAreDriveStrengthMix) {
  NetlistGenParams p = default_params(GetParam());
  Rng rng(17);
  NetlistPtr nl = generate_netlist(p, rng);
  for (const Cell& c : nl->cells) {
    EXPECT_TRUE(c.area == 1.0f || c.area == 2.0f || c.area == 4.0f);
    EXPECT_GT(c.pin_weight, 0.0f);
  }
}

INSTANTIATE_TEST_SUITE_P(Suites, NetlistPerSuite,
                         ::testing::ValuesIn(kAllSuites),
                         [](const auto& info) {
                           switch (info.param) {
                             case BenchmarkSuite::kIscas89:
                               return std::string("iscas89");
                             case BenchmarkSuite::kItc99:
                               return std::string("itc99");
                             case BenchmarkSuite::kIwls05:
                               return std::string("iwls05");
                             case BenchmarkSuite::kIspd15:
                               return std::string("ispd15");
                           }
                           return std::string("unknown");
                         });

TEST(Netlist, IspdHasMacrosIscasDoesNot) {
  Rng rng(23);
  NetlistGenParams ispd = default_params(BenchmarkSuite::kIspd15);
  NetlistGenParams iscas = default_params(BenchmarkSuite::kIscas89);
  int ispd_macros = 0;
  for (int trial = 0; trial < 8; ++trial) {
    ispd_macros += static_cast<int>(generate_netlist(ispd, rng)->macros.size());
    EXPECT_TRUE(generate_netlist(iscas, rng)->macros.empty());
  }
  EXPECT_GT(ispd_macros, 8);  // ~3 per design on average
}

TEST(Netlist, LocalityDiffersAcrossSuites) {
  // Index-distance of net members should be larger for the globally
  // connected ISPD'15 profile than for ISCAS'89.
  Rng rng(29);
  auto mean_span = [&](BenchmarkSuite suite) {
    NetlistPtr nl = generate_netlist(default_params(suite), rng);
    double total = 0.0;
    for (const Net& net : nl->nets) {
      total += static_cast<double>(net.cells.back() - net.cells.front()) /
               static_cast<double>(nl->num_cells());
    }
    return total / static_cast<double>(nl->num_nets());
  };
  EXPECT_GT(mean_span(BenchmarkSuite::kIspd15),
            1.5 * mean_span(BenchmarkSuite::kIscas89));
}

TEST(Netlist, DegenerateParamsThrow) {
  NetlistGenParams p = default_params(BenchmarkSuite::kItc99);
  p.grid_w = 0;
  Rng rng(1);
  EXPECT_THROW(generate_netlist(p, rng), std::invalid_argument);
  p = default_params(BenchmarkSuite::kItc99);
  p.gcell_cell_capacity = 0.0;
  EXPECT_THROW(generate_netlist(p, rng), std::invalid_argument);
}

}  // namespace
}  // namespace fleda
