// Tests for ModelParameters (the FL communication unit) and Server
// aggregation: snapshot/apply round trips, weighted-average math,
// proximal distance, the LG merge, and buffer handling (BatchNorm
// running statistics participate in aggregation).
#include <gtest/gtest.h>

#include "fl/parameters.hpp"
#include "fl/server.hpp"
#include "models/registry.hpp"
#include "tensor/ops.hpp"

namespace fleda {
namespace {

RoutabilityModelPtr fresh(ModelKind kind, std::uint64_t seed) {
  Rng rng(seed);
  return make_model(kind, 4, rng);
}

TEST(ModelParameters, SnapshotApplyRoundTrip) {
  RoutabilityModelPtr a = fresh(ModelKind::kFLNet, 1);
  RoutabilityModelPtr b = fresh(ModelKind::kFLNet, 2);
  ModelParameters snap = ModelParameters::from_model(*a);
  snap.apply_to(*b);
  for (std::size_t i = 0; i < a->parameters().size(); ++i) {
    EXPECT_TRUE(a->parameters()[i]->value.equals(b->parameters()[i]->value));
  }
}

TEST(ModelParameters, SnapshotIsDeepCopy) {
  RoutabilityModelPtr a = fresh(ModelKind::kFLNet, 3);
  ModelParameters snap = ModelParameters::from_model(*a);
  a->parameters()[0]->value.fill(0.0f);
  // Snapshot unaffected.
  EXPECT_GT(squared_norm(snap.entries()[0].value), 0.0);
}

TEST(ModelParameters, ApplyToMismatchedModelThrows) {
  RoutabilityModelPtr flnet = fresh(ModelKind::kFLNet, 4);
  RoutabilityModelPtr routenet = fresh(ModelKind::kRouteNet, 5);
  ModelParameters snap = ModelParameters::from_model(*flnet);
  EXPECT_THROW(snap.apply_to(*routenet), std::invalid_argument);
}

TEST(ModelParameters, BuffersIncludedForPROS) {
  RoutabilityModelPtr pros = fresh(ModelKind::kPROS, 6);
  ModelParameters snap = ModelParameters::from_model(*pros);
  int buffers = 0;
  for (const ParameterEntry& e : snap.entries()) {
    if (e.is_buffer) ++buffers;
  }
  // Every BatchNorm contributes running_mean + running_var.
  EXPECT_EQ(buffers, static_cast<int>(pros->buffers().size()));
  EXPECT_GT(buffers, 0);
}

TEST(ModelParameters, WeightedAverageExact) {
  RoutabilityModelPtr m = fresh(ModelKind::kFLNet, 7);
  // va = base * 1, vb = base * 4; weights 3:1 -> average = base * 1.75.
  ModelParameters base = ModelParameters::from_model(*m);
  ModelParameters va = base, vb = base;
  va.scale(1.0);
  vb.scale(4.0);
  ModelParameters avg = ModelParameters::weighted_average({&va, &vb}, {3, 1});
  // avg should equal base * (3*1 + 1*4)/4 = base * 1.75.
  ModelParameters expected = base;
  expected.scale(1.75);
  for (std::size_t i = 0; i < avg.entries().size(); ++i) {
    EXPECT_TRUE(allclose(avg.entries()[i].value,
                         expected.entries()[i].value, 1e-5f, 1e-6f));
  }
}

TEST(ModelParameters, WeightedAverageValidates) {
  RoutabilityModelPtr m = fresh(ModelKind::kFLNet, 8);
  ModelParameters a = ModelParameters::from_model(*m);
  EXPECT_THROW(ModelParameters::weighted_average({}, {}),
               std::invalid_argument);
  EXPECT_THROW(ModelParameters::weighted_average({&a}, {1.0, 2.0}),
               std::invalid_argument);
  EXPECT_THROW(ModelParameters::weighted_average({&a}, {-1.0}),
               std::invalid_argument);
  EXPECT_THROW(ModelParameters::weighted_average({&a}, {0.0}),
               std::invalid_argument);
}

TEST(ModelParameters, AverageOfIdenticalIsIdentity) {
  RoutabilityModelPtr m = fresh(ModelKind::kPROS, 9);
  ModelParameters a = ModelParameters::from_model(*m);
  ModelParameters avg =
      ModelParameters::weighted_average({&a, &a, &a}, {1, 5, 3});
  for (std::size_t i = 0; i < a.entries().size(); ++i) {
    EXPECT_TRUE(allclose(avg.entries()[i].value, a.entries()[i].value,
                         1e-6f, 1e-7f));
  }
}

TEST(ModelParameters, SquaredDistanceExcludesBuffers) {
  RoutabilityModelPtr m = fresh(ModelKind::kPROS, 10);
  ModelParameters a = ModelParameters::from_model(*m);
  ModelParameters b = a;
  EXPECT_DOUBLE_EQ(a.squared_distance(b), 0.0);
  // Mutate only buffers: distance must remain zero.
  bool mutated = false;
  for (NamedBuffer buf : m->buffers()) {
    buf.tensor->fill(123.0f);
    mutated = true;
  }
  ASSERT_TRUE(mutated);
  ModelParameters changed = ModelParameters::from_model(*m);
  EXPECT_DOUBLE_EQ(a.squared_distance(changed), 0.0);
  // Mutate a trainable parameter: distance positive.
  m->parameters()[0]->value.fill(9.0f);
  ModelParameters changed2 = ModelParameters::from_model(*m);
  EXPECT_GT(a.squared_distance(changed2), 0.0);
}

TEST(ModelParameters, MergedWithSplitsByPredicate) {
  RoutabilityModelPtr m = fresh(ModelKind::kFLNet, 11);
  ModelParameters base = ModelParameters::from_model(*m);
  ModelParameters other = base;
  other.scale(2.0);
  ModelParameters merged = base.merged_with(other, is_output_layer_param);
  for (std::size_t i = 0; i < merged.entries().size(); ++i) {
    const ParameterEntry& e = merged.entries()[i];
    const Tensor& expected = is_output_layer_param(e.name)
                                 ? other.entries()[i].value
                                 : base.entries()[i].value;
    EXPECT_TRUE(e.value.equals(expected)) << e.name;
  }
}

TEST(ModelParameters, OutputLayerPredicateMatchesAllModels) {
  for (ModelKind kind :
       {ModelKind::kFLNet, ModelKind::kRouteNet, ModelKind::kPROS}) {
    RoutabilityModelPtr m = fresh(kind, 12);
    ModelParameters snap = ModelParameters::from_model(*m);
    int local = 0, global = 0;
    for (const ParameterEntry& e : snap.entries()) {
      (is_output_layer_param(e.name) ? local : global)++;
    }
    EXPECT_EQ(local, 2) << to_string(kind);  // output weight + bias
    EXPECT_GT(global, 0) << to_string(kind);
  }
}

TEST(Server, AggregateSubsetUsesOnlyMembers) {
  RoutabilityModelPtr m = fresh(ModelKind::kFLNet, 13);
  ModelParameters base = ModelParameters::from_model(*m);
  ModelParameters x1 = base, x2 = base, x3 = base;
  x1.scale(1.0);
  x2.scale(2.0);
  x3.scale(100.0);  // must be ignored
  std::vector<ModelParameters> updates = {x1, x2, x3};
  std::vector<double> weights = {1.0, 1.0, 1.0};
  ModelParameters agg = Server::aggregate_subset(updates, weights, {0, 1});
  ModelParameters expected = base;
  expected.scale(1.5);
  for (std::size_t i = 0; i < agg.entries().size(); ++i) {
    EXPECT_TRUE(allclose(agg.entries()[i].value, expected.entries()[i].value,
                         1e-5f, 1e-6f));
  }
  EXPECT_THROW(Server::aggregate_subset(updates, weights, {}),
               std::invalid_argument);
}

TEST(ModelParameters, NumelMatchesModel) {
  RoutabilityModelPtr m = fresh(ModelKind::kRouteNet, 14);
  ModelParameters snap = ModelParameters::from_model(*m);
  EXPECT_EQ(snap.numel(), m->num_parameters());  // RouteNet: no buffers
  EXPECT_FALSE(snap.empty());
  EXPECT_TRUE(ModelParameters().empty());
}

}  // namespace
}  // namespace fleda
