// Unit tests for the tensor substrate: Shape, Tensor storage, element
// ops, matmul kernels (vs naive reference), im2col/col2im adjointness,
// and binary serialization round-trips.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <sstream>

#include "tensor/im2col.hpp"
#include "tensor/matmul.hpp"
#include "tensor/ops.hpp"
#include "tensor/serialize.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace fleda {
namespace {

Tensor random_tensor(const Shape& shape, Rng& rng, double scale = 1.0) {
  Tensor t(shape);
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(rng.uniform(-scale, scale));
  }
  return t;
}

TEST(Shape, BasicProperties) {
  Shape s{2, 3, 4};
  EXPECT_EQ(s.rank(), 3);
  EXPECT_EQ(s.dim(0), 2);
  EXPECT_EQ(s.dim(1), 3);
  EXPECT_EQ(s.dim(2), 4);
  EXPECT_EQ(s.numel(), 24);
  EXPECT_EQ(s.to_string(), "[2, 3, 4]");
}

TEST(Shape, EqualityAndRank0) {
  EXPECT_EQ(Shape{}.numel(), 1);
  EXPECT_EQ((Shape{2, 3}), (Shape{2, 3}));
  EXPECT_NE((Shape{2, 3}), (Shape{3, 2}));
  EXPECT_NE((Shape{2}), (Shape{2, 1}));
}

TEST(Shape, RejectsNegativeAndOverRank) {
  EXPECT_THROW((Shape{-1}), std::invalid_argument);
  EXPECT_THROW(Shape({1, 1, 1, 1, 1}), std::invalid_argument);
  EXPECT_THROW(Shape{2}.dim(1), std::out_of_range);
}

TEST(Tensor, ZeroInitialized) {
  Tensor t(Shape{3, 3});
  for (std::int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, FillAndFull) {
  Tensor t = Tensor::full(Shape{4}, 2.5f);
  for (std::int64_t i = 0; i < 4; ++i) EXPECT_EQ(t[i], 2.5f);
  t.fill(-1.0f);
  for (std::int64_t i = 0; i < 4; ++i) EXPECT_EQ(t[i], -1.0f);
}

TEST(Tensor, NchwAccessorMatchesFlatIndex) {
  Tensor t(Shape{2, 3, 4, 5});
  t.at(1, 2, 3, 4) = 7.0f;
  EXPECT_EQ(t[((1 * 3 + 2) * 4 + 3) * 5 + 4], 7.0f);
}

TEST(Tensor, ReshapedPreservesData) {
  Tensor t(Shape{2, 6});
  for (std::int64_t i = 0; i < 12; ++i) t[i] = static_cast<float>(i);
  Tensor r = t.reshaped(Shape{3, 4});
  EXPECT_EQ(r.shape(), (Shape{3, 4}));
  for (std::int64_t i = 0; i < 12; ++i) EXPECT_EQ(r[i], static_cast<float>(i));
  EXPECT_THROW(t.reshaped(Shape{5, 5}), std::invalid_argument);
}

TEST(Tensor, DataSizeMismatchThrows) {
  EXPECT_THROW(Tensor(Shape{3}, std::vector<float>{1.0f}),
               std::invalid_argument);
}

TEST(Ops, AddSubMul) {
  Tensor a(Shape{3}, {1, 2, 3});
  Tensor b(Shape{3}, {4, 5, 6});
  Tensor s = add(a, b);
  Tensor d = sub(b, a);
  Tensor m = mul(a, b);
  EXPECT_EQ(s[0], 5.0f);
  EXPECT_EQ(d[2], 3.0f);
  EXPECT_EQ(m[1], 10.0f);
}

TEST(Ops, ShapeMismatchThrows) {
  Tensor a(Shape{3});
  Tensor b(Shape{4});
  EXPECT_THROW(add(a, b), std::invalid_argument);
  EXPECT_THROW(dot(a, b), std::invalid_argument);
}

TEST(Ops, AxpyAndScale) {
  Tensor y(Shape{3}, {1, 1, 1});
  Tensor x(Shape{3}, {1, 2, 3});
  axpy(y, 2.0f, x);
  EXPECT_EQ(y[2], 7.0f);
  scale_inplace(y, 0.5f);
  EXPECT_EQ(y[0], 1.5f);
}

TEST(Ops, Reductions) {
  Tensor a(Shape{4}, {1, -2, 3, -4});
  EXPECT_FLOAT_EQ(sum(a), -2.0f);
  EXPECT_FLOAT_EQ(mean(a), -0.5f);
  EXPECT_FLOAT_EQ(min_value(a), -4.0f);
  EXPECT_FLOAT_EQ(max_value(a), 3.0f);
  EXPECT_DOUBLE_EQ(squared_norm(a), 30.0);
}

TEST(Ops, DotProduct) {
  Tensor a(Shape{3}, {1, 2, 3});
  Tensor b(Shape{3}, {4, 5, 6});
  EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
}

TEST(Ops, ReluSigmoidClamp) {
  Tensor a(Shape{3}, {-1.0f, 0.0f, 2.0f});
  Tensor r = relu(a);
  EXPECT_EQ(r[0], 0.0f);
  EXPECT_EQ(r[2], 2.0f);
  Tensor s = sigmoid(a);
  EXPECT_NEAR(s[1], 0.5f, 1e-6f);
  Tensor c = clamp(a, -0.5f, 1.0f);
  EXPECT_EQ(c[0], -0.5f);
  EXPECT_EQ(c[2], 1.0f);
}

TEST(Ops, Normalize01) {
  Tensor a(Shape{3}, {2.0f, 4.0f, 6.0f});
  Tensor n = normalize01(a);
  EXPECT_FLOAT_EQ(n[0], 0.0f);
  EXPECT_FLOAT_EQ(n[1], 0.5f);
  EXPECT_FLOAT_EQ(n[2], 1.0f);
  Tensor constant = Tensor::full(Shape{3}, 5.0f);
  Tensor z = normalize01(constant);
  EXPECT_FLOAT_EQ(max_value(z), 0.0f);
}

TEST(Ops, AllcloseAndMaxAbsDiff) {
  Tensor a(Shape{2}, {1.0f, 2.0f});
  Tensor b(Shape{2}, {1.0f, 2.0f + 1e-6f});
  EXPECT_TRUE(allclose(a, b, 1e-4f, 1e-5f));
  // 2.0f + 1e-6f rounds to the nearest representable float.
  EXPECT_NEAR(max_abs_diff(a, b), 1e-6f, 1e-7f);
  Tensor c(Shape{2}, {1.0f, 3.0f});
  EXPECT_FALSE(allclose(a, c));
}

// ---- matmul kernels vs naive reference ----

void naive_matmul(const Tensor& a, const Tensor& b, Tensor& c) {
  const std::int64_t m = a.shape().dim(0);
  const std::int64_t k = a.shape().dim(1);
  const std::int64_t n = b.shape().dim(1);
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t p = 0; p < k; ++p) {
        acc += static_cast<double>(a[i * k + p]) * b[p * n + j];
      }
      c[i * n + j] = static_cast<float>(acc);
    }
  }
}

class MatmulSizes
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MatmulSizes, MatchesNaive) {
  auto [m, k, n] = GetParam();
  Rng rng(1234);
  Tensor a = random_tensor(Shape::of(m, k), rng);
  Tensor b = random_tensor(Shape::of(k, n), rng);
  Tensor expected(Shape::of(m, n));
  naive_matmul(a, b, expected);
  Tensor c = matmul(a, b);
  EXPECT_TRUE(allclose(c, expected, 1e-4f, 1e-5f))
      << "m=" << m << " k=" << k << " n=" << n;
}

TEST_P(MatmulSizes, TransposedVariantsMatchNaive) {
  auto [m, k, n] = GetParam();
  Rng rng(99);
  Tensor a = random_tensor(Shape::of(m, k), rng);
  Tensor b = random_tensor(Shape::of(k, n), rng);
  Tensor expected(Shape::of(m, n));
  naive_matmul(a, b, expected);

  // matmul_at: A stored transposed [k, m].
  Tensor at(Shape::of(k, m));
  for (int i = 0; i < m; ++i) {
    for (int p = 0; p < k; ++p) at[p * m + i] = a[i * k + p];
  }
  Tensor c1(Shape::of(m, n));
  matmul_at(at.data(), b.data(), c1.data(), m, k, n);
  EXPECT_TRUE(allclose(c1, expected, 1e-4f, 1e-5f));

  // matmul_bt: B stored transposed [n, k].
  Tensor bt(Shape::of(n, k));
  for (int p = 0; p < k; ++p) {
    for (int j = 0; j < n; ++j) bt[j * k + p] = b[p * n + j];
  }
  Tensor c2(Shape::of(m, n));
  matmul_bt(a.data(), bt.data(), c2.data(), m, k, n);
  EXPECT_TRUE(allclose(c2, expected, 1e-4f, 1e-5f));
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, MatmulSizes,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(2, 3, 4),
                      std::make_tuple(7, 5, 3), std::make_tuple(16, 16, 16),
                      std::make_tuple(33, 17, 29),
                      std::make_tuple(64, 81, 100)));

TEST(Matmul, AccumulateAddsIntoOutput) {
  Rng rng(5);
  Tensor a = random_tensor(Shape::of(3, 4), rng);
  Tensor b = random_tensor(Shape::of(4, 5), rng);
  Tensor c0 = matmul(a, b);
  Tensor c = c0;
  matmul(a.data(), b.data(), c.data(), 3, 4, 5, /*accumulate=*/true);
  Tensor twice = scale(c0, 2.0f);
  EXPECT_TRUE(allclose(c, twice, 1e-4f, 1e-5f));
}

TEST(Matmul, InnerDimMismatchThrows) {
  Tensor a(Shape{2, 3});
  Tensor b(Shape{4, 2});
  EXPECT_THROW(matmul(a, b), std::invalid_argument);
}

TEST(Matmul, ZeroTimesNaNPropagates) {
  // IEEE: 0 * NaN = NaN. The kernels must not shortcut zero rows of A
  // — a poisoned B has to poison C, or a NaN client update could slip
  // through a zero-weighted mix unnoticed.
  const std::int64_t m = 3, k = 5, n = 4;  // k=5: axpy4 body + axpy1 tail
  Tensor a(Shape::of(m, k));               // all zeros
  Tensor b(Shape::of(k, n));
  b.fill(1.0f);
  b[4 * n + 2] = std::nanf("");  // in the k tail, column 2
  Tensor c = matmul(a, b);
  for (std::int64_t i = 0; i < m; ++i) {
    EXPECT_TRUE(std::isnan(c[i * n + 2])) << "row " << i;
    EXPECT_FLOAT_EQ(c[i * n + 0], 0.0f) << "row " << i;
  }
  // Same contract through the transposed-A variant (A stored [k, m]).
  Tensor at(Shape::of(k, m));  // all zeros
  Tensor c_at(Shape::of(m, n));
  matmul_at(at.data(), b.data(), c_at.data(), m, k, n);
  for (std::int64_t i = 0; i < m; ++i) {
    EXPECT_TRUE(std::isnan(c_at[i * n + 2])) << "row " << i;
  }
}

// ---- im2col / col2im ----

struct ConvGeomParam {
  int c, h, w, k, pad, stride, dilation;
};

class Im2colGeometry : public ::testing::TestWithParam<ConvGeomParam> {};

ConvGeometry make_geom(const ConvGeomParam& p) {
  ConvGeometry g;
  g.channels = p.c;
  g.height = p.h;
  g.width = p.w;
  g.kernel_h = g.kernel_w = p.k;
  g.pad_h = g.pad_w = p.pad;
  g.stride_h = g.stride_w = p.stride;
  g.dilation_h = g.dilation_w = p.dilation;
  return g;
}

TEST_P(Im2colGeometry, MatchesDirectGather) {
  ConvGeometry g = make_geom(GetParam());
  Rng rng(3);
  Tensor img = random_tensor(Shape::of(g.channels, g.height, g.width), rng);
  Tensor cols(Shape::of(g.col_rows(), g.col_cols()));
  im2col(img.data(), g, cols.data());

  const std::int64_t OH = g.out_height();
  const std::int64_t OW = g.out_width();
  for (std::int64_t c = 0; c < g.channels; ++c) {
    for (std::int64_t kh = 0; kh < g.kernel_h; ++kh) {
      for (std::int64_t kw = 0; kw < g.kernel_w; ++kw) {
        const std::int64_t row = (c * g.kernel_h + kh) * g.kernel_w + kw;
        for (std::int64_t oh = 0; oh < OH; ++oh) {
          for (std::int64_t ow = 0; ow < OW; ++ow) {
            const std::int64_t ih = oh * g.stride_h + kh * g.dilation_h - g.pad_h;
            const std::int64_t iw = ow * g.stride_w + kw * g.dilation_w - g.pad_w;
            float expected = 0.0f;
            if (ih >= 0 && ih < g.height && iw >= 0 && iw < g.width) {
              expected = img[(c * g.height + ih) * g.width + iw];
            }
            EXPECT_EQ(cols[row * OH * OW + oh * OW + ow], expected);
          }
        }
      }
    }
  }
}

// Adjointness: <im2col(x), y> == <x, col2im(y)> for all x, y — the
// property that makes conv backward exact.
TEST_P(Im2colGeometry, Col2imIsAdjointOfIm2col) {
  ConvGeometry g = make_geom(GetParam());
  Rng rng(7);
  Tensor x = random_tensor(Shape::of(g.channels, g.height, g.width), rng);
  Tensor y = random_tensor(Shape::of(g.col_rows(), g.col_cols()), rng);

  Tensor ix(Shape::of(g.col_rows(), g.col_cols()));
  im2col(x.data(), g, ix.data());
  Tensor cy(Shape::of(g.channels, g.height, g.width));
  col2im(y.data(), g, cy.data());

  EXPECT_NEAR(dot(ix, y), dot(x, cy), 1e-2);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, Im2colGeometry,
    ::testing::Values(ConvGeomParam{1, 5, 5, 3, 1, 1, 1},
                      ConvGeomParam{3, 8, 8, 3, 1, 1, 1},
                      ConvGeomParam{2, 9, 7, 5, 2, 1, 1},
                      ConvGeomParam{2, 8, 8, 3, 1, 2, 1},
                      ConvGeomParam{2, 12, 12, 3, 2, 1, 2},
                      ConvGeomParam{1, 16, 16, 9, 4, 1, 1},
                      ConvGeomParam{4, 10, 10, 4, 1, 2, 1}));

TEST(Serialize, TensorRoundTripStream) {
  Rng rng(21);
  Tensor t = random_tensor(Shape{2, 3, 4, 5}, rng);
  std::stringstream ss;
  write_tensor(ss, t);
  Tensor u = read_tensor(ss);
  EXPECT_TRUE(t.equals(u));
}

TEST(Serialize, TensorRoundTripFile) {
  Rng rng(22);
  Tensor t = random_tensor(Shape{7}, rng);
  const std::string path =
      (std::filesystem::temp_directory_path() / "fleda_tensor_test.bin")
          .string();
  save_tensor(path, t);
  Tensor u = load_tensor(path);
  EXPECT_TRUE(t.equals(u));
  std::filesystem::remove(path);
}

TEST(Serialize, BadMagicThrows) {
  std::stringstream ss;
  ss << "NOPExxxxxxxxxxxx";
  EXPECT_THROW(read_tensor(ss), std::runtime_error);
}

TEST(Serialize, TruncatedPayloadThrows) {
  Rng rng(23);
  Tensor t = random_tensor(Shape{100}, rng);
  std::stringstream ss;
  write_tensor(ss, t);
  std::string s = ss.str();
  std::stringstream truncated(s.substr(0, s.size() / 2));
  EXPECT_THROW(read_tensor(truncated), std::runtime_error);
}

}  // namespace
}  // namespace fleda
