// Tests for the three routability models: Table 1 conformance for
// FLNet, shape contracts, gradient flow, parameter-count ordering
// (FLNet << RouteNet < PROS per the paper's robustness argument), the
// registry, and shortcut gradient correctness in RouteNet.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "models/flnet.hpp"
#include "models/pros.hpp"
#include "models/registry.hpp"
#include "models/routenet.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace fleda {
namespace {

Tensor random_tensor(const Shape& shape, Rng& rng) {
  Tensor t(shape);
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  return t;
}

TEST(FLNetTable1, ArchitectureMatchesPaper) {
  Rng rng(1);
  FLNetOptions opts;
  opts.in_channels = 6;
  FLNet net(opts, rng);
  auto params = net.parameters();
  ASSERT_EQ(params.size(), 4u);  // 2 conv layers x (weight, bias)
  // input_conv: 9x9, 64 filters.
  EXPECT_EQ(params[0]->name, "input_conv.weight");
  EXPECT_EQ(params[0]->value.shape(), (Shape{64, 6 * 81}));
  EXPECT_EQ(params[1]->value.shape(), (Shape{64}));
  // output_conv: 9x9, 1 filter, no activation after it.
  EXPECT_EQ(params[2]->name, "output_conv.weight");
  EXPECT_EQ(params[2]->value.shape(), (Shape{1, 64 * 81}));
  // No BatchNorm -> no buffers.
  EXPECT_TRUE(net.buffers().empty());
}

TEST(FLNetTable1, OutputIsUnactivated) {
  // With a negative output bias, predictions must go negative — no
  // output activation (Table 1: Activation "None").
  Rng rng(2);
  FLNetOptions opts;
  opts.in_channels = 2;
  FLNet net(opts, rng);
  net.parameters()[3]->value.fill(-5.0f);  // output bias
  Tensor out = net.forward(Tensor(Shape{1, 2, 12, 12}), false);
  EXPECT_LT(min_value(out), 0.0f);
}

class AllModels : public ::testing::TestWithParam<ModelKind> {};

TEST_P(AllModels, PreservesSpatialShape) {
  Rng rng(3);
  RoutabilityModelPtr model = make_model(GetParam(), 6, rng);
  Tensor x = random_tensor(Shape::of(2, 6, 16, 16), rng);
  Tensor y = model->forward(x, true);
  EXPECT_EQ(y.shape(), (Shape{2, 1, 16, 16})) << model->model_name();
}

TEST_P(AllModels, BackwardReturnsInputShapedGradient) {
  Rng rng(4);
  RoutabilityModelPtr model = make_model(GetParam(), 6, rng);
  Tensor x = random_tensor(Shape::of(1, 6, 16, 16), rng);
  Tensor y = model->forward(x, true);
  Tensor dx = model->backward(Tensor::ones(y.shape()));
  EXPECT_EQ(dx.shape(), x.shape());
}

TEST_P(AllModels, AllParametersReceiveGradient) {
  Rng rng(5);
  RoutabilityModelPtr model = make_model(GetParam(), 6, rng);
  model->zero_grad();
  Tensor x = random_tensor(Shape::of(2, 6, 16, 16), rng);
  Tensor y = model->forward(x, true);
  Tensor g = random_tensor(y.shape(), rng);
  model->backward(g);
  for (Parameter* p : model->parameters()) {
    EXPECT_GT(squared_norm(p->grad), 0.0)
        << model->model_name() << ": dead parameter " << p->name;
  }
}

TEST_P(AllModels, ParameterNamesAreUnique) {
  Rng rng(6);
  RoutabilityModelPtr model = make_model(GetParam(), 6, rng);
  std::set<std::string> names;
  for (Parameter* p : model->parameters()) {
    EXPECT_TRUE(names.insert(p->name).second)
        << "duplicate parameter name " << p->name;
  }
  for (NamedBuffer b : model->buffers()) {
    EXPECT_TRUE(names.insert(b.name).second)
        << "duplicate buffer name " << b.name;
  }
}

TEST_P(AllModels, HasOutputConvForLGSplit) {
  Rng rng(7);
  RoutabilityModelPtr model = make_model(GetParam(), 6, rng);
  int output_params = 0;
  for (Parameter* p : model->parameters()) {
    if (p->name.rfind("output_conv", 0) == 0) ++output_params;
  }
  EXPECT_EQ(output_params, 2) << model->model_name();
}

TEST_P(AllModels, TrainingStepReducesLossOnFixedBatch) {
  Rng rng(8);
  RoutabilityModelPtr model = make_model(GetParam(), 6, rng);
  Tensor x = random_tensor(Shape::of(2, 6, 16, 16), rng);
  // Smooth learnable target: mean of two input channels.
  Tensor y(Shape{2, 1, 16, 16});
  for (std::int64_t n = 0; n < 2; ++n) {
    for (std::int64_t i = 0; i < 256; ++i) {
      y[n * 256 + i] = 0.5f * (x[(n * 6) * 256 + i] + x[(n * 6 + 1) * 256 + i]);
    }
  }
  AdamOptions aopts;
  aopts.lr = 1e-3;
  aopts.weight_decay = 0.0;
  Adam adam(model->parameters(), aopts);
  float first = -1, last = -1;
  for (int step = 0; step < 60; ++step) {
    adam.zero_grad();
    Tensor pred = model->forward(x, true);
    LossResult loss = mse_loss(pred, y);
    if (step == 0) first = loss.value;
    last = loss.value;
    model->backward(loss.grad);
    adam.step();
  }
  EXPECT_LT(last, first) << model->model_name();
}

INSTANTIATE_TEST_SUITE_P(Kinds, AllModels,
                         ::testing::Values(ModelKind::kFLNet,
                                           ModelKind::kRouteNet,
                                           ModelKind::kPROS),
                         [](const auto& info) {
                           return to_string(info.param);
                         });

TEST(ModelComplexity, FLNetIsSmallestRouteNetBiggerProsHasBN) {
  Rng rng(9);
  RoutabilityModelPtr flnet = make_model(ModelKind::kFLNet, 6, rng);
  RoutabilityModelPtr routenet = make_model(ModelKind::kRouteNet, 6, rng);
  RoutabilityModelPtr pros = make_model(ModelKind::kPROS, 6, rng);

  // The paper's §4.2 premise: FLNet has much fewer parameters.
  EXPECT_LT(flnet->num_parameters(), routenet->num_parameters() / 5);
  EXPECT_LT(flnet->num_parameters(), pros->num_parameters());

  // PROS is the only model with BatchNorm state.
  EXPECT_TRUE(flnet->buffers().empty());
  EXPECT_TRUE(routenet->buffers().empty());
  EXPECT_FALSE(pros->buffers().empty());
}

TEST(RouteNetShortcut, GradientMatchesFiniteDifference) {
  // Spot finite-difference check through the shortcut junction: pick a
  // few weights of conv1 (feeding both branches) and compare.
  Rng rng(10);
  RouteNetOptions opts;
  opts.in_channels = 2;
  opts.base_filters = 4;
  RouteNet net(opts, rng);

  Tensor x = random_tensor(Shape::of(1, 2, 8, 8), rng);
  Tensor g = random_tensor(Shape::of(1, 1, 8, 8), rng);

  auto loss = [&]() {
    Tensor out = net.forward(x, true);
    return dot(out, g);
  };
  net.zero_grad();
  net.forward(x, true);
  net.backward(g);
  Parameter* conv1_w = net.parameters()[0];
  ASSERT_EQ(conv1_w->name, "conv1.weight");
  Tensor analytic = conv1_w->grad;

  const double eps = 1e-2;
  double max_err = 0.0, max_ref = 1e-6;
  for (std::int64_t i = 0; i < std::min<std::int64_t>(20, conv1_w->value.numel());
       ++i) {
    const float orig = conv1_w->value[i];
    conv1_w->value[i] = orig + static_cast<float>(eps);
    const double lp = loss();
    conv1_w->value[i] = orig - static_cast<float>(eps);
    const double lm = loss();
    conv1_w->value[i] = orig;
    const double numeric = (lp - lm) / (2 * eps);
    max_err = std::max(max_err, std::fabs(numeric - analytic[i]));
    max_ref = std::max(max_ref, std::fabs(numeric));
  }
  EXPECT_LT(max_err / max_ref, 5e-2);
}

TEST(PROSStructure, UsesDilatedConvsAndPixelShuffle) {
  Rng rng(11);
  PROSOptions opts;
  opts.in_channels = 6;
  PROS net(opts, rng);
  const std::string desc = net.describe();
  EXPECT_NE(desc.find("dilated"), std::string::npos);
  EXPECT_NE(desc.find("sub-pixel"), std::string::npos);
  // Input must be divisible by 4 (two stride-2 encoders); 16 works.
  Tensor out = net.forward(Tensor(Shape{1, 6, 16, 16}), true);
  EXPECT_EQ(out.shape(), (Shape{1, 1, 16, 16}));
}

TEST(Registry, ParseAndToStringRoundTrip) {
  for (ModelKind kind :
       {ModelKind::kFLNet, ModelKind::kRouteNet, ModelKind::kPROS}) {
    EXPECT_EQ(parse_model_kind(to_string(kind)), kind);
  }
  EXPECT_THROW(parse_model_kind("resnet"), std::invalid_argument);
}

TEST(Registry, FactoryProducesIndependentInstances) {
  Rng rng(12);
  ModelFactory factory = make_model_factory(ModelKind::kFLNet, 6);
  RoutabilityModelPtr a = factory(rng);
  RoutabilityModelPtr b = factory(rng);
  // Different random init (rng advanced between calls).
  EXPECT_GT(max_abs_diff(a->parameters()[0]->value,
                         b->parameters()[0]->value),
            0.0f);
  // Mutating one must not affect the other.
  a->parameters()[0]->value.fill(0.0f);
  EXPECT_GT(squared_norm(b->parameters()[0]->value), 0.0);
}

}  // namespace
}  // namespace fleda
