// Tests for the scratch-model pool (models/pool.hpp): warm reuse and
// residency caps, lease RAII/move semantics, rng-stream compatibility
// with the per-client-model seed implementation, the RoutabilityModel
// instance counters, and the client-side Adam moment persistence that
// replaces client-owned optimizers when reset_optimizer == false.
#include <gtest/gtest.h>

#include <utility>

#include "fl/client.hpp"
#include "fl/parameters.hpp"
#include "fl/synthetic.hpp"
#include "models/pool.hpp"
#include "models/registry.hpp"
#include "util/thread_pool.hpp"

namespace fleda {
namespace {

ModelFactory tiny_factory() { return make_model_factory(ModelKind::kFLNet, 2); }

bool bit_identical(const ModelParameters& a, const ModelParameters& b) {
  if (!a.structurally_equal(b)) return false;
  for (std::size_t n = 0; n < a.entries().size(); ++n) {
    if (!a.entries()[n].value.equals(b.entries()[n].value)) return false;
  }
  return true;
}

TEST(ModelPool, WarmReuseAcrossSequentialLeases) {
  ModelPool pool(tiny_factory());
  EXPECT_EQ(pool.resident(), 0u);
  EXPECT_EQ(pool.created(), 0u);

  RoutabilityModel* first = nullptr;
  {
    ModelLease lease = pool.acquire();
    ASSERT_TRUE(static_cast<bool>(lease));
    first = &lease.model();
  }
  EXPECT_EQ(pool.resident(), 1u);
  EXPECT_EQ(pool.created(), 1u);

  {
    // Sequential reacquisition hands back the same warm instance; no
    // second construction.
    ModelLease lease = pool.acquire();
    EXPECT_EQ(&lease.model(), first);
  }
  EXPECT_EQ(pool.created(), 1u);

  {
    // Concurrent leases get distinct instances.
    ModelLease a = pool.acquire();
    ModelLease b = pool.acquire();
    EXPECT_NE(&a.model(), &b.model());
    EXPECT_EQ(pool.created(), 2u);
  }
  EXPECT_LE(pool.resident(), pool.capacity());

  pool.trim();
  EXPECT_EQ(pool.resident(), 0u);
}

TEST(ModelPool, ExplicitResidencyCapDropsExcessScratch) {
  ModelPool pool(tiny_factory(), /*max_resident=*/1);
  EXPECT_EQ(pool.capacity(), 1u);
  {
    ModelLease a = pool.acquire();
    ModelLease b = pool.acquire();
    ModelLease c = pool.acquire();
  }
  // Three concurrent leases existed, but only one instance is retained.
  EXPECT_EQ(pool.created(), 3u);
  EXPECT_EQ(pool.resident(), 1u);
}

TEST(ModelPool, DynamicCapacityTracksThreadPool) {
  ModelPool pool(tiny_factory());
  ThreadPool::reset_global(3);
  EXPECT_EQ(pool.capacity(), 4u);  // workers + participating caller
  ThreadPool::reset_global(0);
}

TEST(ModelPool, LeaseMoveTransfersOwnership) {
  ModelPool pool(tiny_factory());
  ModelLease a = pool.acquire();
  RoutabilityModel* instance = &a.model();
  ModelLease b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));
  EXPECT_EQ(&b.model(), instance);
  EXPECT_THROW(a.model(), std::logic_error);
  EXPECT_EQ(pool.resident(), 0u);  // still leased
  ModelLease c;
  c = std::move(b);
  EXPECT_EQ(&c.model(), instance);
}

TEST(ModelPool, AdamIsBoundOnceAndReconfigured) {
  ModelPool pool(tiny_factory());
  ModelLease lease = pool.acquire();
  AdamOptions opts;
  opts.lr = 1e-3;
  Adam& adam = lease.adam(opts);
  EXPECT_DOUBLE_EQ(adam.options().lr, 1e-3);
  opts.lr = 5e-4;
  Adam& again = lease.adam(opts);
  EXPECT_EQ(&again, &adam);  // same scratch optimizer, new options
  EXPECT_DOUBLE_EQ(adam.options().lr, 5e-4);
}

TEST(ModelPool, ConsumeInitStreamMatchesFactoryDraws) {
  // The whole point of consume_init_stream: a pooled client's rng must
  // advance exactly as if it had constructed (and kept) its own model.
  ModelFactory factory = tiny_factory();
  ModelPool pool(factory);
  Rng pooled(123);
  Rng owned(123);
  pool.consume_init_stream(pooled);
  { RoutabilityModelPtr model = factory(owned); }
  for (int i = 0; i < 4; ++i) EXPECT_EQ(pooled.next_u64(), owned.next_u64());
}

TEST(ModelPool, RejectsEmptyFactory) {
  EXPECT_THROW(ModelPool(ModelFactory{}), std::invalid_argument);
}

TEST(RoutabilityModelCounters, LiveAndPeakTrackConstructionAndDestruction) {
  const std::int64_t live0 = RoutabilityModel::live_instances();
  Rng rng(1);
  {
    RoutabilityModelPtr a = make_model(ModelKind::kFLNet, 2, rng);
    EXPECT_EQ(RoutabilityModel::live_instances(), live0 + 1);
    RoutabilityModel::reset_peak_instances();
    EXPECT_EQ(RoutabilityModel::peak_instances(), live0 + 1);
    {
      RoutabilityModelPtr b = make_model(ModelKind::kFLNet, 2, rng);
      EXPECT_EQ(RoutabilityModel::live_instances(), live0 + 2);
      EXPECT_EQ(RoutabilityModel::peak_instances(), live0 + 2);
    }
    // Peak is a high-water mark: destruction lowers live, not peak.
    EXPECT_EQ(RoutabilityModel::live_instances(), live0 + 1);
    EXPECT_EQ(RoutabilityModel::peak_instances(), live0 + 2);
  }
  EXPECT_EQ(RoutabilityModel::live_instances(), live0);
}

TEST(ModelPool, SharedPoolHoldsOThreadsInstancesForManyClients) {
  SyntheticWorldOptions options;
  options.num_clients = 40;
  RoutabilityModel::reset_peak_instances();
  const std::int64_t base = RoutabilityModel::live_instances();
  SyntheticWorld w = make_synthetic_world(7, options);
  Rng init_rng(5);
  const ModelParameters start =
      initial_model_parameters(w.factory, init_rng);
  ClientTrainConfig cfg;
  cfg.steps = 1;
  cfg.batch_size = 2;
  for (Client& c : w.clients) {
    ModelParameters ignored = c.local_update(start, cfg);
  }
  const std::int64_t budget =
      static_cast<std::int64_t>(ThreadPool::global().size()) + 1;
  EXPECT_LE(RoutabilityModel::peak_instances() - base, budget);
  EXPECT_LE(static_cast<std::int64_t>(w.pool->resident()), budget);
}

// reset_optimizer == false: the client carries its Adam moments between
// rounds as data, independent of which scratch instance it borrows.
TEST(ClientOptimizerState, PersistedMomentsAreSharedPoolInvariant) {
  const std::uint64_t seed = 7;
  SyntheticWorldOptions options;
  options.num_clients = 2;

  auto run_two_rounds = [&](bool shared, bool reset) {
    ClientTrainConfig cfg;
    cfg.steps = 3;
    cfg.batch_size = 2;
    cfg.learning_rate = 1e-3;
    cfg.mu = 0.0;
    cfg.reset_optimizer = reset;
    std::vector<ModelParameters> out;
    if (shared) {
      SyntheticWorld w = make_synthetic_world(seed, options);
      Rng r(5);
      ModelParameters start = initial_model_parameters(w.factory, r);
      for (Client& c : w.clients) {
        ModelParameters mid = c.local_update(start, cfg);
        out.push_back(c.local_update(mid, cfg));
      }
    } else {
      // The owned layout: per-client exclusive pools over the same
      // data and rng streams (the factory-ctor compatibility path).
      std::vector<ClientDataset> data;
      for (std::size_t k = 0; k < options.num_clients; ++k) {
        data.push_back(make_synthetic_client(
            static_cast<int>(k + 1),
            options.threshold_base +
                options.threshold_step * static_cast<float>(k),
            seed + k + 1, options.train_samples, options.test_samples));
      }
      ModelFactory factory = tiny_factory();
      Rng rng(seed);
      std::vector<Client> clients;
      for (std::size_t k = 0; k < data.size(); ++k) {
        clients.emplace_back(data[k].client_id, &data[k], factory,
                             rng.fork(k));
      }
      Rng r(5);
      ModelParameters start = initial_model_parameters(factory, r);
      for (Client& c : clients) {
        ModelParameters mid = c.local_update(start, cfg);
        out.push_back(c.local_update(mid, cfg));
      }
    }
    return out;
  };

  const auto shared_kept = run_two_rounds(/*shared=*/true, /*reset=*/false);
  const auto owned_kept = run_two_rounds(/*shared=*/false, /*reset=*/false);
  ASSERT_EQ(shared_kept.size(), owned_kept.size());
  for (std::size_t k = 0; k < shared_kept.size(); ++k) {
    EXPECT_TRUE(bit_identical(shared_kept[k], owned_kept[k])) << "client " << k;
  }

  // Carrying the moments must actually change the second round.
  const auto shared_reset = run_two_rounds(/*shared=*/true, /*reset=*/true);
  EXPECT_FALSE(bit_identical(shared_kept[0], shared_reset[0]));
}

}  // namespace
}  // namespace fleda
