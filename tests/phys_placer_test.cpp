// Tests for the grid placer: legality (bounds, blockage avoidance,
// occupancy), determinism, HPWL improvement by annealing, seed
// diversity of placement solutions, and locality of the result.
#include <gtest/gtest.h>

#include <cmath>

#include "phys/netlist.hpp"
#include "phys/placer.hpp"

namespace fleda {
namespace {

NetlistPtr make_netlist(BenchmarkSuite suite, std::uint64_t seed,
                        std::int64_t grid = 32) {
  NetlistGenParams p;
  p.profile = profile_for(suite);
  p.grid_w = grid;
  p.grid_h = grid;
  p.gcell_cell_capacity = 8.0;
  Rng rng(seed);
  return generate_netlist(p, rng);
}

Placement make_placement(NetlistPtr nl, std::uint64_t seed,
                         double moves_per_cell = 2.0) {
  PlacerOptions opts;
  opts.moves_per_cell = moves_per_cell;
  Rng rng(seed);
  return place(nl, opts, rng);
}

TEST(Placer, AllCellsInsideDie) {
  NetlistPtr nl = make_netlist(BenchmarkSuite::kItc99, 1);
  Placement pl = make_placement(nl, 2);
  ASSERT_EQ(pl.x.size(), static_cast<std::size_t>(nl->num_cells()));
  for (std::size_t i = 0; i < pl.x.size(); ++i) {
    EXPECT_GE(pl.x[i], 0.0f);
    EXPECT_LT(pl.x[i], 32.0f);
    EXPECT_GE(pl.y[i], 0.0f);
    EXPECT_LT(pl.y[i], 32.0f);
  }
}

TEST(Placer, DeterministicForSameSeed) {
  NetlistPtr nl = make_netlist(BenchmarkSuite::kIscas89, 3);
  Placement a = make_placement(nl, 4);
  Placement b = make_placement(nl, 4);
  EXPECT_EQ(a.x, b.x);
  EXPECT_EQ(a.y, b.y);
}

TEST(Placer, DifferentSeedsGiveDifferentSolutions) {
  NetlistPtr nl = make_netlist(BenchmarkSuite::kIscas89, 5);
  Placement a = make_placement(nl, 10);
  Placement b = make_placement(nl, 11);
  double moved = 0.0;
  for (std::size_t i = 0; i < a.x.size(); ++i) {
    moved += std::fabs(a.x[i] - b.x[i]) + std::fabs(a.y[i] - b.y[i]);
  }
  EXPECT_GT(moved / static_cast<double>(a.x.size()), 0.05);
}

TEST(Placer, AnnealingImprovesHpwlOverRandomPlacement) {
  NetlistPtr nl = make_netlist(BenchmarkSuite::kItc99, 7);
  // Reference: random scatter.
  Placement scatter;
  scatter.netlist = nl;
  scatter.grid_w = scatter.grid_h = 32;
  Rng rng(8);
  scatter.x.resize(static_cast<std::size_t>(nl->num_cells()));
  scatter.y.resize(scatter.x.size());
  for (std::size_t i = 0; i < scatter.x.size(); ++i) {
    scatter.x[i] = static_cast<float>(rng.uniform(0.0, 32.0));
    scatter.y[i] = static_cast<float>(rng.uniform(0.0, 32.0));
  }
  Placement placed = make_placement(nl, 9, /*moves_per_cell=*/3.0);
  EXPECT_LT(placed.hpwl(), 0.6 * scatter.hpwl());
}

TEST(Placer, MoreEffortDoesNotHurtHpwl) {
  NetlistPtr nl = make_netlist(BenchmarkSuite::kIscas89, 13);
  Placement low = make_placement(nl, 14, 0.5);
  Placement high = make_placement(nl, 14, 6.0);
  EXPECT_LE(high.hpwl(), low.hpwl() * 1.05);
}

TEST(Placer, MacrosStayDisjointAndInBounds) {
  NetlistPtr nl = make_netlist(BenchmarkSuite::kIspd15, 15);
  Placement pl = make_placement(nl, 16);
  for (std::size_t i = 0; i < pl.macro_rects.size(); ++i) {
    const Rect& r = pl.macro_rects[i];
    EXPECT_GE(r.x0, 0);
    EXPECT_GE(r.y0, 0);
    EXPECT_LE(r.x1, 32);
    EXPECT_LE(r.y1, 32);
    EXPECT_GT(r.area(), 0);
    for (std::size_t j = i + 1; j < pl.macro_rects.size(); ++j) {
      EXPECT_FALSE(r.overlaps(pl.macro_rects[j]));
    }
  }
}

TEST(Placer, CellsAvoidMacroArea) {
  NetlistPtr nl = make_netlist(BenchmarkSuite::kIspd15, 17);
  Placement pl = make_placement(nl, 18);
  if (pl.macro_rects.empty()) GTEST_SKIP() << "no macros drawn";
  std::int64_t inside = 0;
  for (std::size_t i = 0; i < pl.x.size(); ++i) {
    if (pl.blocked(static_cast<std::int64_t>(pl.x[i]),
                   static_cast<std::int64_t>(pl.y[i]))) {
      ++inside;
    }
  }
  // Blocked gcells keep ~5% capacity, so only a trickle may sit there.
  EXPECT_LT(static_cast<double>(inside) / static_cast<double>(pl.x.size()),
            0.05);
}

TEST(Placer, OccupancyRespectsCapacitySlack) {
  NetlistPtr nl = make_netlist(BenchmarkSuite::kItc99, 19);
  PlacerOptions opts;
  opts.moves_per_cell = 2.0;
  Rng rng(20);
  Placement pl = place(nl, opts, rng);
  std::vector<double> occupancy(32 * 32, 0.0);
  for (std::size_t i = 0; i < pl.x.size(); ++i) {
    const std::int64_t g = static_cast<std::int64_t>(pl.y[i]) * 32 +
                           static_cast<std::int64_t>(pl.x[i]);
    occupancy[static_cast<std::size_t>(g)] += nl->cells[i].area;
  }
  // The initial streaming respects proportional quotas and SA enforces
  // the slack bound; allow the initial +5% stream slack on top.
  const double limit =
      opts.tech.gcell_cell_capacity * opts.occupancy_slack * 1.4;
  for (double occ : occupancy) EXPECT_LE(occ, limit + 4.0);
}

TEST(Placer, LogicalLocalityBecomesSpatial) {
  // Cells adjacent in netlist order should end up spatially closer
  // than random cell pairs (the property that gives realistic nets).
  NetlistPtr nl = make_netlist(BenchmarkSuite::kIscas89, 21);
  Placement pl = make_placement(nl, 22);
  Rng rng(23);
  double adjacent = 0.0, random_pairs = 0.0;
  const std::size_t n = pl.x.size();
  const int trials = 2000;
  for (int t = 0; t < trials; ++t) {
    const std::size_t i = static_cast<std::size_t>(rng.uniform_int(n - 1));
    adjacent += std::fabs(pl.x[i] - pl.x[i + 1]) +
                std::fabs(pl.y[i] - pl.y[i + 1]);
    const std::size_t a = static_cast<std::size_t>(rng.uniform_int(n));
    const std::size_t b = static_cast<std::size_t>(rng.uniform_int(n));
    random_pairs += std::fabs(pl.x[a] - pl.x[b]) +
                    std::fabs(pl.y[a] - pl.y[b]);
  }
  EXPECT_LT(adjacent, 0.5 * random_pairs);
}

TEST(Placer, HpwlIsNonNegativeAndStable) {
  NetlistPtr nl = make_netlist(BenchmarkSuite::kIwls05, 25);
  Placement pl = make_placement(nl, 26);
  const double h1 = pl.hpwl();
  const double h2 = pl.hpwl();
  EXPECT_GE(h1, 0.0);
  EXPECT_DOUBLE_EQ(h1, h2);
}

TEST(Placer, RejectsNullAndTinyGrids) {
  Rng rng(1);
  PlacerOptions opts;
  EXPECT_THROW(place(nullptr, opts, rng), std::invalid_argument);
  NetlistPtr nl = make_netlist(BenchmarkSuite::kIscas89, 27);
  opts.grid_w = 1;
  EXPECT_THROW(place(nl, opts, rng), std::invalid_argument);
}

TEST(Rect, GeometryHelpers) {
  Rect a{0, 0, 4, 4};
  Rect b{3, 3, 6, 6};
  Rect c{4, 0, 6, 2};
  EXPECT_TRUE(a.overlaps(b));
  EXPECT_FALSE(a.overlaps(c));
  EXPECT_TRUE(a.contains(0, 0));
  EXPECT_FALSE(a.contains(4, 4));
  EXPECT_EQ(a.area(), 16);
}

}  // namespace
}  // namespace fleda
