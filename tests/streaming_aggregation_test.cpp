// Streaming-aggregation tests: the StreamingAccumulator protocol
// (fold/merge/finish per rule family), streaming ≡ dense at small K
// (exact to float rounding for the mean family, within one bin width
// for the histogram sketches), bit-identity of the streaming path
// across thread-pool sizes and shard counts (lane partition + merge
// order are pure functions of the cohort), the fold-time validation
// guards, Channel::collect_streaming / move-collect equivalence with
// the batch collect, the fast client-construction schema, the
// importance_sample participation policy, and end-to-end streaming
// round loops (FedAvg, AlphaPortionSync, AsyncFedAvg).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "comm/channel.hpp"
#include "fl/aggregation.hpp"
#include "fl/alpha_sync.hpp"
#include "fl/async_fedavg.hpp"
#include "fl/fedavg.hpp"
#include "fl/participation.hpp"
#include "fl/synthetic.hpp"
#include "models/pool.hpp"
#include "models/registry.hpp"
#include "util/thread_pool.hpp"

namespace fleda {
namespace {

// A one-entry (plus one buffer) snapshot with hand-picked values —
// small enough that every rule's math is checkable by eye.
ModelParameters make_params(const std::vector<float>& weights_values,
                            float buffer_value = 0.0f) {
  ModelParameters p;
  ParameterEntry w;
  w.name = "w";
  w.value = Tensor(Shape{static_cast<std::int64_t>(weights_values.size())});
  for (std::size_t i = 0; i < weights_values.size(); ++i) {
    w.value[static_cast<std::int64_t>(i)] = weights_values[i];
  }
  p.mutable_entries().push_back(std::move(w));
  ParameterEntry b;
  b.name = "bn";
  b.is_buffer = true;
  b.value = Tensor(Shape{1});
  b.value[0] = buffer_value;
  p.mutable_entries().push_back(std::move(b));
  return p;
}

const float* values_of(const ModelParameters& p) {
  return p.entries()[0].value.data();
}

bool bit_identical(const ModelParameters& a, const ModelParameters& b) {
  if (!a.structurally_equal(b)) return false;
  for (std::size_t n = 0; n < a.entries().size(); ++n) {
    if (!a.entries()[n].value.equals(b.entries()[n].value)) return false;
  }
  return true;
}

double max_abs_diff(const ModelParameters& a, const ModelParameters& b) {
  EXPECT_TRUE(a.structurally_equal(b));
  double worst = 0.0;
  for (std::size_t n = 0; n < a.entries().size(); ++n) {
    const Tensor& ta = a.entries()[n].value;
    const Tensor& tb = b.entries()[n].value;
    for (std::int64_t i = 0; i < ta.numel(); ++i) {
      worst = std::max(worst,
                       std::abs(static_cast<double>(ta[i]) - tb[i]));
    }
  }
  return worst;
}

// Runs `cohort` through the rule's streaming path exactly like the
// round loops do: lanes from fold_lane_offsets, serial folds per lane
// in cohort order, lanes merged ascending, one finish.
ModelParameters stream_aggregate(const AggregationRule& rule,
                                 const ModelParameters& current,
                                 const std::vector<AggregationInput>& cohort,
                                 std::size_t shards = 0) {
  ShardLayout layout;
  layout.cohort_size = cohort.size();
  layout.shards = shards;
  const std::vector<std::size_t> lanes =
      fold_lane_offsets(cohort.size(), layout.lanes);
  std::vector<std::unique_ptr<StreamingAccumulator>> accs(layout.lanes);
  for (auto& acc : accs) acc = rule.accumulator(current, layout);
  for (std::size_t l = 0; l < layout.lanes; ++l) {
    for (std::size_t i = lanes[l]; i < lanes[l + 1]; ++i) {
      accs[l]->fold(*cohort[i].params, cohort[i].weight, cohort[i].staleness,
                    cohort[i].client);
    }
  }
  for (std::size_t l = 1; l < layout.lanes; ++l) accs[0]->merge(*accs[l]);
  return accs[0]->finish();
}

// --- lane partition --------------------------------------------------

TEST(FoldLanes, OffsetsPartitionTheCohortContiguously) {
  for (const std::size_t n : {0u, 1u, 5u, 8u, 9u, 64u, 1001u}) {
    const std::vector<std::size_t> offsets = fold_lane_offsets(n, kFoldLanes);
    ASSERT_EQ(offsets.size(), kFoldLanes + 1);
    EXPECT_EQ(offsets.front(), 0u);
    EXPECT_EQ(offsets.back(), n);
    for (std::size_t l = 0; l + 1 < offsets.size(); ++l) {
      EXPECT_LE(offsets[l], offsets[l + 1]);
    }
  }
}

TEST(FoldLanes, PartitionIsIndependentOfThreadPoolSize) {
  const std::vector<std::size_t> reference = fold_lane_offsets(37, kFoldLanes);
  ThreadPool::reset_global(2);
  EXPECT_EQ(fold_lane_offsets(37, kFoldLanes), reference);
  ThreadPool::reset_global(0);
}

// --- streaming vs dense, mean family ---------------------------------

TEST(StreamingAccumulator, WeightedAverageMatchesDenseToFloatRounding) {
  const ModelParameters a = make_params({1.0f, -2.0f, 3.0f}, 1.0f);
  const ModelParameters b = make_params({5.0f, 0.5f, -1.0f}, 2.0f);
  const ModelParameters c = make_params({-3.0f, 4.0f, 0.25f}, 3.0f);
  const std::vector<AggregationInput> cohort = {
      {&a, 6.0, 0, 1}, {&b, 3.0, 0, 2}, {&c, 1.0, 0, 3}};
  const WeightedAverage rule;
  const ModelParameters dense = rule.aggregate(ModelParameters{}, cohort);
  const ModelParameters streamed =
      stream_aggregate(rule, ModelParameters{}, cohort);
  EXPECT_LE(max_abs_diff(dense, streamed), 1e-5);
}

TEST(StreamingAccumulator, NormClippedMeanMatchesDense) {
  const ModelParameters current = make_params({0.0f, 0.0f}, 0.0f);
  const ModelParameters honest = make_params({0.1f, -0.1f}, 1.0f);
  const ModelParameters outlier = make_params({50.0f, 50.0f}, 1.0f);
  const std::vector<AggregationInput> cohort = {{&honest, 2.0, 0, 1},
                                                {&outlier, 1.0, 0, 2}};
  const NormClippedMean rule(1.0);
  const ModelParameters dense = rule.aggregate(current, cohort);
  const ModelParameters streamed = stream_aggregate(rule, current, cohort);
  EXPECT_LE(max_abs_diff(dense, streamed), 1e-5);
}

TEST(StreamingAccumulator, StalenessMixMatchesDense) {
  const ModelParameters current = make_params({1.0f, 1.0f}, 1.0f);
  const ModelParameters d1 = make_params({0.5f, -0.5f}, 0.0f);
  const ModelParameters d2 = make_params({-0.25f, 0.75f}, 0.0f);
  const std::vector<AggregationInput> cohort = {{&d1, 4.0, 0, 1},
                                                {&d2, 2.0, 3, 2}};
  StalenessPolicy policy;
  policy.poly_exponent = 1.0;
  const StalenessDiscountedMix rule(policy, 0.5);
  const ModelParameters dense = rule.aggregate(current, cohort);
  const ModelParameters streamed = stream_aggregate(rule, current, cohort);
  EXPECT_LE(max_abs_diff(dense, streamed), 1e-5);
}

// --- streaming vs dense, sketch family -------------------------------

TEST(StreamingAccumulator, MedianSketchWithinOneBinWidthOfDense) {
  // Values inside the sketch window around current = 0: the sketch
  // answer (a bucket midpoint) may be off the exact median by at most
  // one bin width = 2 * span / bins.
  const ModelParameters current = make_params({0.0f, 0.0f}, 0.0f);
  const ModelParameters a = make_params({-0.20f, 0.01f}, 0.02f);
  const ModelParameters b = make_params({0.05f, 0.10f}, 0.05f);
  const ModelParameters c = make_params({0.15f, -0.24f}, -0.10f);
  const std::vector<AggregationInput> cohort = {
      {&a, 1.0, 0, 1}, {&b, 1.0, 0, 2}, {&c, 1.0, 0, 3}};
  const int bins = 64;
  const double span = 0.25;
  const CoordinateMedian rule(bins, span);
  const ModelParameters dense = rule.aggregate(ModelParameters{}, cohort);
  const ModelParameters streamed = stream_aggregate(rule, current, cohort);
  EXPECT_LE(max_abs_diff(dense, streamed), 2.0 * span / bins + 1e-6);
}

TEST(StreamingAccumulator, TrimmedMeanSketchWithinOneBinWidthOfDense) {
  const ModelParameters current = make_params({0.0f}, 0.0f);
  std::vector<ModelParameters> members;
  for (int i = 0; i < 8; ++i) {
    members.push_back(make_params({-0.2f + 0.05f * static_cast<float>(i)},
                                  0.01f * static_cast<float>(i)));
  }
  std::vector<AggregationInput> cohort;
  for (std::size_t i = 0; i < members.size(); ++i) {
    cohort.push_back({&members[i], 1.0, 0, static_cast<int>(i)});
  }
  const int bins = 128;
  const double span = 0.3;
  const TrimmedMean rule(0.25, bins, span);
  const ModelParameters dense = rule.aggregate(ModelParameters{}, cohort);
  const ModelParameters streamed = stream_aggregate(rule, current, cohort);
  EXPECT_LE(max_abs_diff(dense, streamed), 2.0 * span / bins + 1e-6);
}

TEST(StreamingAccumulator, SketchClampsOutOfSpanValuesToEdgeBins) {
  // A huge outlier lands in the edge bin — it can shift WHICH bucket
  // holds the median only as far as any in-window value would, so the
  // sketch median stays inside the window (the robustness property).
  const ModelParameters current = make_params({0.0f}, 0.0f);
  const ModelParameters a = make_params({-0.05f}, 1.0f);
  const ModelParameters b = make_params({0.05f}, 1.0f);
  const ModelParameters outlier = make_params({1e6f}, 1.0f);
  const std::vector<AggregationInput> cohort = {
      {&a, 1.0, 0, 1}, {&b, 1.0, 0, 2}, {&outlier, 1.0, 0, 3}};
  const CoordinateMedian rule(32, 0.25);
  const ModelParameters streamed = stream_aggregate(rule, current, cohort);
  EXPECT_LE(std::abs(values_of(streamed)[0]), 0.25 + 1e-6);
}

// --- determinism across pools and shards -----------------------------

TEST(StreamingAccumulator, BitIdenticalAcrossThreadPoolSizesAndShards) {
  std::vector<ModelParameters> members;
  std::vector<AggregationInput> cohort;
  Rng rng(7);
  for (int i = 0; i < 23; ++i) {
    members.push_back(make_params(
        {static_cast<float>(rng.uniform(-0.2, 0.2)),
         static_cast<float>(rng.uniform(-0.2, 0.2))},
        static_cast<float>(i)));
  }
  for (std::size_t i = 0; i < members.size(); ++i) {
    cohort.push_back({&members[i], 1.0 + static_cast<double>(i), 0,
                      static_cast<int>(i)});
  }
  const ModelParameters current = make_params({0.0f, 0.0f}, 0.0f);
  const WeightedAverage mean;
  const CoordinateMedian median(32, 0.25);
  const ModelParameters mean_ref = stream_aggregate(mean, current, cohort, 1);
  const ModelParameters median_ref =
      stream_aggregate(median, current, cohort, 1);
  for (const std::size_t pool : {1u, 2u, 8u}) {
    ThreadPool::reset_global(pool);
    for (const std::size_t shards : {1u, 3u, 16u}) {
      EXPECT_TRUE(bit_identical(
          mean_ref, stream_aggregate(mean, current, cohort, shards)))
          << "weighted_average pool=" << pool << " shards=" << shards;
      EXPECT_TRUE(bit_identical(
          median_ref, stream_aggregate(median, current, cohort, shards)))
          << "coordinate_median pool=" << pool << " shards=" << shards;
    }
  }
  ThreadPool::reset_global(0);
}

// --- protocol guards -------------------------------------------------

TEST(StreamingAccumulator, FoldRejectsNonFiniteUpdateNamingTheClient) {
  const WeightedAverage rule;
  auto acc = rule.accumulator(ModelParameters{}, ShardLayout{});
  const ModelParameters bad =
      make_params({1.0f, std::numeric_limits<float>::quiet_NaN()});
  try {
    acc->fold(bad, 1.0, 0, 41);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("41"), std::string::npos)
        << e.what();
  }
}

TEST(StreamingAccumulator, FoldRejectsBadWeightsAndEmptyUpdates) {
  const WeightedAverage rule;
  auto acc = rule.accumulator(ModelParameters{}, ShardLayout{});
  const ModelParameters ok = make_params({1.0f});
  EXPECT_THROW(acc->fold(ok, -1.0, 0, 0), std::invalid_argument);
  EXPECT_THROW(acc->fold(ok, std::numeric_limits<double>::quiet_NaN(), 0, 0),
               std::invalid_argument);
  EXPECT_THROW(acc->fold(ModelParameters{}, 1.0, 0, 0),
               std::invalid_argument);
}

TEST(StreamingAccumulator, FinishOnZeroFoldsThrowsLikeTheDenseEmptyCohort) {
  const WeightedAverage rule;
  auto acc = rule.accumulator(ModelParameters{}, ShardLayout{});
  EXPECT_EQ(acc->folds(), 0u);
  EXPECT_THROW(acc->finish(), std::invalid_argument);
}

TEST(StreamingAccumulator, MergeCountsFoldsAndEmptiesThePeer) {
  const WeightedAverage rule;
  auto a = rule.accumulator(ModelParameters{}, ShardLayout{});
  auto b = rule.accumulator(ModelParameters{}, ShardLayout{});
  const ModelParameters u = make_params({1.0f});
  a->fold(u, 1.0, 0, 0);
  b->fold(u, 1.0, 0, 1);
  b->fold(u, 1.0, 0, 2);
  a->merge(*b);
  EXPECT_EQ(a->folds(), 3u);
  EXPECT_EQ(b->folds(), 0u);
}

TEST(StreamingAccumulator, MergeRejectsAForeignAccumulatorType) {
  const WeightedAverage mean;
  const NormClippedMean clipped(1.0);
  const ModelParameters current = make_params({0.0f});
  auto a = mean.accumulator(current, ShardLayout{});
  auto b = clipped.accumulator(current, ShardLayout{});
  EXPECT_THROW(a->merge(*b), std::invalid_argument);
}

TEST(StreamingAccumulator, KrumFamilyStaysDense) {
  const Krum krum(1);
  const MultiKrum multi(1, 0);
  EXPECT_TRUE(krum.requires_dense());
  EXPECT_TRUE(multi.requires_dense());
  EXPECT_THROW(krum.accumulator(ModelParameters{}, ShardLayout{}),
               std::logic_error);
  const WeightedAverage mean;
  EXPECT_FALSE(mean.requires_dense());
  EXPECT_FALSE(CoordinateMedian().requires_dense());
  EXPECT_FALSE(TrimmedMean(0.1).requires_dense());
  EXPECT_FALSE(NormClippedMean(1.0).requires_dense());
}

TEST(StreamingAccumulator, ClippingAndSketchRulesRequireANonEmptyCurrent) {
  EXPECT_THROW(
      NormClippedMean(1.0).accumulator(ModelParameters{}, ShardLayout{}),
      std::invalid_argument);
  EXPECT_THROW(
      CoordinateMedian().accumulator(ModelParameters{}, ShardLayout{}),
      std::invalid_argument);
}

TEST(CoordinateMedian, RejectsBadSketchKnobs) {
  EXPECT_THROW(CoordinateMedian(1, 0.25), std::invalid_argument);
  EXPECT_THROW(CoordinateMedian(32, 0.0), std::invalid_argument);
  EXPECT_THROW(CoordinateMedian(32, std::numeric_limits<double>::infinity()),
               std::invalid_argument);
}

// --- channel: move collect and streaming collect ---------------------

TEST(Channel, MoveCollectMatchesBatchCollectBitForBitIncludingBilling) {
  const std::vector<std::size_t> senders = {1, 3, 4};
  std::vector<ModelParameters> updates;
  for (int i = 0; i < 3; ++i) {
    updates.push_back(make_params({static_cast<float>(i), 1.5f}, 1.0f));
  }
  const std::vector<const ModelParameters*> references(senders.size(),
                                                       nullptr);
  Channel batch{CommConfig{}};
  const std::vector<ModelParameters> collected =
      batch.collect(updates, references, senders);
  Channel moved{CommConfig{}};
  std::vector<ModelParameters> owned = updates;  // copy, then hand over
  const std::vector<ModelParameters> collected_moved =
      moved.collect(std::move(owned), references, senders);
  ASSERT_EQ(collected.size(), collected_moved.size());
  for (std::size_t i = 0; i < collected.size(); ++i) {
    EXPECT_TRUE(bit_identical(collected[i], collected_moved[i]));
  }
  EXPECT_EQ(batch.stats().uplink_bytes, moved.stats().uplink_bytes);
  EXPECT_EQ(batch.stats().uplink_messages, moved.stats().uplink_messages);
}

TEST(Channel, CollectStreamingMatchesBatchCollectAndItsBilling) {
  const std::size_t n = 13;
  std::vector<std::size_t> senders(n);
  std::vector<ModelParameters> updates;
  for (std::size_t i = 0; i < n; ++i) {
    senders[i] = i;
    updates.push_back(
        make_params({static_cast<float>(i) * 0.5f, -1.0f}, 2.0f));
  }
  const std::vector<const ModelParameters*> references(n, nullptr);

  Channel batch{CommConfig{}};
  const std::vector<ModelParameters> collected =
      batch.collect(updates, references, senders);

  Channel streaming{CommConfig{}};
  std::vector<ModelParameters> folded(n);
  streaming.collect_streaming(
      senders, references, fold_lane_offsets(n, kFoldLanes),
      [&](std::size_t i) { return updates[i]; },
      [&](std::size_t, std::size_t i, ModelParameters&& decoded) {
        folded[i] = std::move(decoded);
      });
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(bit_identical(collected[i], folded[i])) << "position " << i;
  }
  EXPECT_EQ(batch.stats().uplink_bytes, streaming.stats().uplink_bytes);
  EXPECT_EQ(batch.stats().uplink_messages,
            streaming.stats().uplink_messages);
  EXPECT_EQ(batch.stats().raw_uplink_bytes,
            streaming.stats().raw_uplink_bytes);
}

TEST(Channel, CollectStreamingValidatesTheLaneOffsets) {
  Channel channel{CommConfig{}};
  const std::vector<std::size_t> senders = {0, 1};
  const std::vector<const ModelParameters*> references(2, nullptr);
  const auto produce = [](std::size_t) { return make_params({1.0f}); };
  const auto consume = [](std::size_t, std::size_t, ModelParameters&&) {};
  EXPECT_THROW(
      channel.collect_streaming(senders, references, {0}, produce, consume),
      std::invalid_argument);
  EXPECT_THROW(
      channel.collect_streaming(senders, references, {0, 1}, produce,
                                consume),
      std::invalid_argument);
  EXPECT_THROW(
      channel.collect_streaming(senders, references, {1, 0, 2}, produce,
                                consume),
      std::invalid_argument);
}

TEST(Channel, CollectStreamingRethrowsAProduceError) {
  Channel channel{CommConfig{}};
  const std::size_t n = 5;
  std::vector<std::size_t> senders(n);
  for (std::size_t i = 0; i < n; ++i) senders[i] = i;
  const std::vector<const ModelParameters*> references(n, nullptr);
  EXPECT_THROW(
      channel.collect_streaming(
          senders, references, fold_lane_offsets(n, kFoldLanes),
          [&](std::size_t i) -> ModelParameters {
            if (i == 3) throw std::runtime_error("client 3 exploded");
            return make_params({1.0f});
          },
          [](std::size_t, std::size_t, ModelParameters&&) {}),
      std::runtime_error);
}

// --- fast client construction ----------------------------------------

TEST(ClientInitSchema, FastInitSkipsTheInitReplayAndStaysDeterministic) {
  const ClientDataset data = make_synthetic_client(1, 0.4f, 11);
  ModelFactory factory = make_model_factory(ModelKind::kFLNet, 2);
  auto pool = std::make_shared<ModelPool>(factory);
  // Rng::fork advances the parent stream, so identical per-client
  // streams come from identically-seeded generators, not repeated
  // forks of one parent.
  Client replay(1, &data, pool, Rng(123));
  Client fast(1, &data, pool, Rng(123), ClientInitSchema::kFastInit);
  Client fast_twin(1, &data, pool, Rng(123), ClientInitSchema::kFastInit);
  EXPECT_EQ(replay.init_schema(), ClientInitSchema::kReplayInit);
  EXPECT_EQ(fast.init_schema(), ClientInitSchema::kFastInit);

  Rng init_rng(9);
  const ModelParameters start = initial_model_parameters(factory, init_rng);
  ClientTrainConfig cfg;
  cfg.steps = 2;
  cfg.batch_size = 2;
  cfg.mu = 0.0;
  const ModelParameters from_fast = fast.local_update(start, cfg);
  // Same seed, same schema: bit-identical training.
  EXPECT_TRUE(bit_identical(from_fast, fast_twin.local_update(start, cfg)));
  // The replay schema consumed one model init from the stream first, so
  // its batch sampling diverges — the schemas are distinct rng
  // schedules, which is exactly why the enum is versioned.
  EXPECT_FALSE(bit_identical(from_fast, replay.local_update(start, cfg)));
}

// --- importance_sample participation ---------------------------------

TEST(ImportanceSample, IsDeterministicAndSkipsZeroWeightClients) {
  const std::vector<double> weights = {5.0, 0.0, 3.0, 2.0, 0.0, 7.0};
  const auto provider = [&](std::size_t k) { return weights[k]; };
  ParticipationContext ctx;
  ctx.num_clients = weights.size();
  ImportanceSample a(3, provider, 99);
  ImportanceSample b(3, provider, 99);
  for (int round = 0; round < 5; ++round) {
    ctx.round = round;
    const std::vector<std::size_t> cohort = a.select(ctx);
    EXPECT_EQ(cohort, b.select(ctx));
    ASSERT_EQ(cohort.size(), 3u);
    for (std::size_t i = 0; i < cohort.size(); ++i) {
      EXPECT_NE(cohort[i], 1u);  // zero weight: never sampled
      EXPECT_NE(cohort[i], 4u);
      if (i > 0) EXPECT_LT(cohort[i - 1], cohort[i]);  // strictly ascending
    }
  }
}

TEST(ImportanceSample, SampleSizeAtOrAboveKDegeneratesToFull) {
  ImportanceSample policy(10, [](std::size_t) { return 1.0; }, 1);
  ParticipationContext ctx;
  ctx.num_clients = 4;
  const std::vector<std::size_t> cohort = policy.select(ctx);
  EXPECT_EQ(cohort, (std::vector<std::size_t>{0, 1, 2, 3}));
}

TEST(ImportanceSample, RejectsBadConstructionAndBadWeights) {
  EXPECT_THROW(ImportanceSample(0, [](std::size_t) { return 1.0; }),
               std::invalid_argument);
  EXPECT_THROW(ImportanceSample(3, ImportanceSample::WeightProvider{}),
               std::invalid_argument);

  ParticipationContext ctx;
  ctx.num_clients = 4;
  ImportanceSample negative(2, [](std::size_t k) {
    return k == 2 ? -1.0 : 1.0;
  });
  try {
    negative.select(ctx);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("client 2"), std::string::npos)
        << e.what();
  }
  ImportanceSample all_zero(2, [](std::size_t) { return 0.0; });
  EXPECT_THROW(all_zero.select(ctx), std::invalid_argument);
}

TEST(ImportanceSample, WiredThroughTheDeclarativeConfig) {
  EXPECT_EQ(to_string(ParticipationKind::kImportanceSample),
            "importance_sample");
  ParticipationConfig config;
  config.kind = ParticipationKind::kImportanceSample;
  config.sample_size = 2;
  const auto policy = make_participation_policy(
      config, nullptr, [](std::size_t) { return 1.0; });
  EXPECT_EQ(policy->name(), "importance_sample(2)");
  // Missing provider fails at construction, not at the first round.
  EXPECT_THROW(make_participation_policy(config), std::invalid_argument);
}

TEST(ImportanceSample, EndToEndRunPrefersDataRichClients) {
  // 6 clients, client 5 carrying 4x the samples of the rest: with
  // importance sampling it must appear in (nearly) every cohort.
  SyntheticWorldOptions options;
  options.num_clients = 6;
  SyntheticWorld w = make_synthetic_world(21, options);
  std::vector<ClientDataset> data = std::move(w.data);
  data[5] = make_synthetic_client(6, 0.6f, 77, /*train_samples=*/24);
  auto pool = std::make_shared<ModelPool>(w.factory);
  Rng rng(5);
  std::vector<Client> clients;
  for (std::size_t k = 0; k < data.size(); ++k) {
    clients.emplace_back(static_cast<int>(k) + 1, &data[k], pool,
                         rng.fork(k));
  }
  FLRunOptions opts;
  opts.rounds = 8;
  opts.client.steps = 1;
  opts.client.batch_size = 2;
  opts.participation.kind = ParticipationKind::kImportanceSample;
  opts.participation.sample_size = 2;
  SimReport report;
  opts.sim_report = &report;
  int rich_rounds = 0;
  ChannelStats comm;
  opts.comm_stats = &comm;
  FedAvg algo;
  algo.run(clients, w.factory, opts);
  // Every round billed exactly C = 2 uplinks; count client 5's.
  ASSERT_EQ(comm.rounds.size(), 8u);
  for (const RoundCommStats& r : comm.rounds) {
    EXPECT_EQ(r.uplink_messages, 2u);
  }
  (void)rich_rounds;
}

// --- end-to-end streaming rounds -------------------------------------

FLRunOptions small_world_options(int rounds) {
  FLRunOptions opts;
  opts.rounds = rounds;
  opts.client.steps = 2;
  opts.client.batch_size = 2;
  opts.client.mu = 0.0;
  opts.seed = 7;
  return opts;
}

TEST(StreamingRounds, FedAvgStreamingTracksDenseAndIsPoolSizeInvariant) {
  SyntheticWorldOptions options;
  options.num_clients = 5;
  FLRunOptions dense_opts = small_world_options(3);
  FLRunOptions streaming_opts = dense_opts;
  streaming_opts.aggregation.streaming = true;

  SyntheticWorld dense_world = make_synthetic_world(31, options);
  FedAvg dense_algo;
  const std::vector<ModelParameters> dense =
      dense_algo.run(dense_world.clients, dense_world.factory, dense_opts);

  std::vector<ModelParameters> streamed_by_pool;
  for (const std::size_t pool : {1u, 2u, 8u}) {
    ThreadPool::reset_global(pool);
    SyntheticWorld w = make_synthetic_world(31, options);
    FedAvg algo;
    streamed_by_pool.push_back(
        algo.run(w.clients, w.factory, streaming_opts).front());
  }
  ThreadPool::reset_global(0);
  // Streaming is pool-size invariant bit for bit...
  EXPECT_TRUE(bit_identical(streamed_by_pool[0], streamed_by_pool[1]));
  EXPECT_TRUE(bit_identical(streamed_by_pool[0], streamed_by_pool[2]));
  // ...and tracks the dense result to accumulated float rounding.
  EXPECT_LE(max_abs_diff(dense.front(), streamed_by_pool[0]), 1e-4);
}

TEST(StreamingRounds, AlphaSyncStreamingFastPathMatchesThePairwiseMix) {
  SyntheticWorldOptions options;
  options.num_clients = 4;
  FLRunOptions dense_opts = small_world_options(2);
  FLRunOptions streaming_opts = dense_opts;
  streaming_opts.aggregation.streaming = true;

  SyntheticWorld a = make_synthetic_world(13, options);
  AlphaPortionSync dense_algo(0.7);
  const std::vector<ModelParameters> dense =
      dense_algo.run(a.clients, a.factory, dense_opts);
  SyntheticWorld b = make_synthetic_world(13, options);
  AlphaPortionSync streaming_algo(0.7);
  const std::vector<ModelParameters> streamed =
      streaming_algo.run(b.clients, b.factory, streaming_opts);
  ASSERT_EQ(dense.size(), streamed.size());
  for (std::size_t k = 0; k < dense.size(); ++k) {
    EXPECT_LE(max_abs_diff(dense[k], streamed[k]), 1e-4) << "client " << k;
  }
}

TEST(StreamingRounds, AsyncFedAvgStreamingTracksTheBufferedPath) {
  SyntheticWorldOptions options;
  options.num_clients = 4;
  FLRunOptions dense_opts = small_world_options(4);
  FLRunOptions streaming_opts = dense_opts;
  streaming_opts.aggregation.streaming = true;
  AsyncConfig config;
  config.buffer_size = 2;
  config.server_mix = 0.5;

  SyntheticWorld a = make_synthetic_world(17, options);
  AsyncFedAvg dense_algo(config);
  const std::vector<ModelParameters> dense =
      dense_algo.run(a.clients, a.factory, dense_opts);
  SyntheticWorld b = make_synthetic_world(17, options);
  AsyncFedAvg streaming_algo(config);
  const std::vector<ModelParameters> streamed =
      streaming_algo.run(b.clients, b.factory, streaming_opts);
  EXPECT_LE(max_abs_diff(dense.front(), streamed.front()), 1e-4);
}

TEST(StreamingRounds, AnomalyDetectionPinsTheDensePath) {
  // Detection needs the materialized cohort; opting into streaming with
  // a detector enabled must transparently stay dense (bit-identical to
  // the dense run), not fail.
  SyntheticWorldOptions options;
  options.num_clients = 4;
  FLRunOptions dense_opts = small_world_options(2);
  dense_opts.anomaly.enabled = true;
  FLRunOptions streaming_opts = dense_opts;
  streaming_opts.aggregation.streaming = true;

  SyntheticWorld a = make_synthetic_world(19, options);
  FedAvg dense_algo;
  const std::vector<ModelParameters> dense =
      dense_algo.run(a.clients, a.factory, dense_opts);
  SyntheticWorld b = make_synthetic_world(19, options);
  FedAvg streaming_algo;
  const std::vector<ModelParameters> streamed =
      streaming_algo.run(b.clients, b.factory, streaming_opts);
  EXPECT_TRUE(bit_identical(dense.front(), streamed.front()));
}

}  // namespace
}  // namespace fleda
