// Tests for the federated learning algorithms on a small synthetic
// 3-client setup: round-loop semantics, aggregation correctness,
// personalization invariants (LG local parts stay private, alpha-sync
// produces per-client models, clustering keeps cluster models
// separate), proximal-term behaviour, and baseline trainers.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <map>

#include "fl/aggregation.hpp"
#include "fl/alpha_sync.hpp"
#include "fl/assigned_clustering.hpp"
#include "fl/baselines.hpp"
#include "fl/fedavg.hpp"
#include "fl/fedprox.hpp"
#include "fl/fedprox_lg.hpp"
#include "fl/finetune.hpp"
#include "fl/ifca.hpp"
#include "fl/registry.hpp"
#include "models/pool.hpp"
#include "tensor/ops.hpp"
#include "util/thread_pool.hpp"

namespace fleda {
namespace {

// A tiny linearly-learnable client dataset: label = 1 where channel 0
// exceeds a client-specific threshold (heterogeneity across clients).
ClientDataset make_tiny_client(int id, float threshold, std::uint64_t seed,
                               int train_samples = 6, int test_samples = 3) {
  Rng rng(seed);
  ClientDataset ds;
  ds.client_id = id;
  auto make_sample = [&]() {
    Sample s;
    s.features = Tensor(Shape{2, 8, 8});
    s.label = Tensor(Shape{1, 8, 8});
    for (std::int64_t i = 0; i < 64; ++i) {
      const float v = static_cast<float>(rng.uniform());
      s.features[i] = v;
      s.features[64 + i] = static_cast<float>(rng.uniform());
      s.label[i] = v > threshold ? 1.0f : 0.0f;
    }
    return s;
  };
  for (int i = 0; i < train_samples; ++i) ds.train.push_back(make_sample());
  for (int i = 0; i < test_samples; ++i) ds.test.push_back(make_sample());
  return ds;
}

struct TinyWorld {
  std::vector<ClientDataset> data;
  std::vector<Client> clients;
  ModelFactory factory;
  std::shared_ptr<ModelPool> pool;  // set only by make_pooled_world
};

// One fixture, two memory layouts. "Owned" (shared_pool = false):
// every client gets a private scratch pool — the seed implementation's
// one-model-per-client behavior. "Pooled": all clients borrow from one
// shared scratch pool (w.pool).
TinyWorld make_world(std::uint64_t seed = 1, bool shared_pool = false) {
  TinyWorld w;
  w.data.push_back(make_tiny_client(1, 0.4f, seed + 1));
  w.data.push_back(make_tiny_client(2, 0.5f, seed + 2));
  w.data.push_back(make_tiny_client(3, 0.6f, seed + 3, /*train=*/9));
  w.factory = make_model_factory(ModelKind::kFLNet, 2);
  if (shared_pool) w.pool = std::make_shared<ModelPool>(w.factory);
  Rng rng(seed);
  for (std::size_t k = 0; k < w.data.size(); ++k) {
    if (shared_pool) {
      w.clients.emplace_back(w.data[k].client_id, &w.data[k], w.pool,
                             rng.fork(k));
    } else {
      w.clients.emplace_back(w.data[k].client_id, &w.data[k], w.factory,
                             rng.fork(k));
    }
  }
  return w;
}

TinyWorld make_pooled_world(std::uint64_t seed = 1) {
  return make_world(seed, /*shared_pool=*/true);
}

FLRunOptions tiny_options(int rounds = 2) {
  FLRunOptions opts;
  opts.rounds = rounds;
  opts.client.steps = 3;
  opts.client.batch_size = 2;
  opts.client.learning_rate = 1e-3;
  opts.client.mu = 1e-4;
  opts.seed = 99;
  return opts;
}

TEST(Client, LocalUpdateChangesParametersAndReportsLoss) {
  TinyWorld w = make_world(11);
  Rng rng(5);
  RoutabilityModelPtr init = w.factory(rng);
  ModelParameters start = ModelParameters::from_model(*init);
  ModelParameters result = w.clients[0].local_update(start, tiny_options().client);
  EXPECT_GT(start.squared_distance(result), 0.0);
  EXPECT_GT(w.clients[0].last_train_loss(), 0.0f);
}

TEST(Client, LargeMuKeepsLocalModelNearAnchor) {
  TinyWorld small = make_world(13);
  TinyWorld big = make_world(13);
  Rng rng(5);
  RoutabilityModelPtr init = small.factory(rng);
  ModelParameters start = ModelParameters::from_model(*init);

  ClientTrainConfig weak = tiny_options().client;
  weak.mu = 0.0;
  ClientTrainConfig strong = weak;
  strong.mu = 50.0;  // huge proximal pull
  ModelParameters free_run = small.clients[0].local_update(start, weak);
  ModelParameters anchored = big.clients[0].local_update(start, strong);
  EXPECT_LT(start.squared_distance(anchored),
            start.squared_distance(free_run));
}

TEST(Client, EvaluateTestAucInRange) {
  TinyWorld w = make_world(17);
  Rng rng(5);
  RoutabilityModelPtr init = w.factory(rng);
  double auc =
      w.clients[1].evaluate_test_auc(ModelParameters::from_model(*init));
  EXPECT_GE(auc, 0.0);
  EXPECT_LE(auc, 1.0);
}

TEST(FedAvg, AllClientsReceiveSameFinalModel) {
  TinyWorld w = make_world(19);
  FedAvg algo;
  std::vector<ModelParameters> finals =
      algo.run(w.clients, w.factory, tiny_options());
  ASSERT_EQ(finals.size(), 3u);
  EXPECT_DOUBLE_EQ(finals[0].squared_distance(finals[1]), 0.0);
  EXPECT_DOUBLE_EQ(finals[0].squared_distance(finals[2]), 0.0);
}

TEST(FedAvg, SingleClientEqualsItsOwnUpdate) {
  // With K = 1 the aggregate is exactly the client's local update.
  TinyWorld w = make_world(23);
  std::vector<Client> one;
  one.push_back(std::move(w.clients[0]));

  FLRunOptions opts = tiny_options(/*rounds=*/1);
  opts.client.mu = 0.0;
  FedAvg algo;
  std::vector<ModelParameters> finals = algo.run(one, w.factory, opts);

  // Re-run the same local computation manually.
  TinyWorld w2 = make_world(23);
  Rng rng(opts.seed);
  RoutabilityModelPtr init = w2.factory(rng);
  ClientTrainConfig cfg = opts.client;
  cfg.mu = 0.0;
  ModelParameters manual =
      w2.clients[0].local_update(ModelParameters::from_model(*init), cfg);
  EXPECT_NEAR(finals[0].squared_distance(manual), 0.0, 1e-9);
}

TEST(FedProx, RoundCallbackFiresEachRound) {
  TinyWorld w = make_world(29);
  FLRunOptions opts = tiny_options(3);
  int calls = 0;
  opts.on_round = [&](int round, const std::vector<ModelParameters>& models) {
    EXPECT_EQ(round, calls);
    EXPECT_EQ(models.size(), 3u);
    ++calls;
  };
  FedProx algo;
  algo.run(w.clients, w.factory, opts);
  EXPECT_EQ(calls, 3);
  EXPECT_FALSE(algo.global_model().empty());
}

TEST(FedProx, DeterministicAcrossRuns) {
  TinyWorld w1 = make_world(31);
  TinyWorld w2 = make_world(31);
  FedProx a1, a2;
  std::vector<ModelParameters> f1 = a1.run(w1.clients, w1.factory, tiny_options());
  std::vector<ModelParameters> f2 = a2.run(w2.clients, w2.factory, tiny_options());
  EXPECT_NEAR(f1[0].squared_distance(f2[0]), 0.0, 1e-12);
}

TEST(FedProxLG, LocalPartsStayPrivate) {
  TinyWorld w = make_world(37);
  FedProxLG algo;
  std::vector<ModelParameters> finals =
      algo.run(w.clients, w.factory, tiny_options());
  ASSERT_EQ(finals.size(), 3u);
  // Global parts identical across clients, local parts different.
  double global_diff = 0.0, local_diff = 0.0;
  for (std::size_t e = 0; e < finals[0].entries().size(); ++e) {
    const auto& e0 = finals[0].entries()[e];
    const auto& e1 = finals[1].entries()[e];
    const float d = max_abs_diff(e0.value, e1.value);
    if (is_output_layer_param(e0.name)) {
      local_diff += d;
    } else {
      global_diff += d;
    }
  }
  EXPECT_DOUBLE_EQ(global_diff, 0.0);
  EXPECT_GT(local_diff, 0.0);
}

TEST(IFCA, AssignsEveryClientAValidCluster) {
  TinyWorld w = make_world(41);
  IFCA algo(/*num_clusters=*/2, /*selection_batches=*/2);
  std::vector<ModelParameters> finals =
      algo.run(w.clients, w.factory, tiny_options());
  ASSERT_EQ(finals.size(), 3u);
  ASSERT_EQ(algo.final_assignment().size(), 3u);
  for (int c : algo.final_assignment()) {
    EXPECT_GE(c, 0);
    EXPECT_LT(c, 2);
  }
  // Clients in the same cluster share a model.
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = i + 1; j < 3; ++j) {
      if (algo.final_assignment()[i] == algo.final_assignment()[j]) {
        EXPECT_DOUBLE_EQ(finals[i].squared_distance(finals[j]), 0.0);
      }
    }
  }
  EXPECT_THROW(IFCA(0).run(w.clients, w.factory, tiny_options()),
               std::invalid_argument);
}

TEST(AssignedClustering, ClusterMembersShareModelsOthersDiffer) {
  TinyWorld w = make_world(43);
  AssignedClustering algo({0, 0, 1});
  std::vector<ModelParameters> finals =
      algo.run(w.clients, w.factory, tiny_options());
  EXPECT_DOUBLE_EQ(finals[0].squared_distance(finals[1]), 0.0);
  EXPECT_GT(finals[0].squared_distance(finals[2]), 0.0);
}

TEST(AssignedClustering, PaperAssignmentShape) {
  TinyWorld w = make_world(47);
  AssignedClustering algo = AssignedClustering::paper_assignment();
  // Paper assignment is for 9 clients; running on 3 must throw.
  EXPECT_THROW(algo.run(w.clients, w.factory, tiny_options()),
               std::invalid_argument);
}

TEST(AlphaPortionSync, ProducesPerClientModels) {
  TinyWorld w = make_world(53);
  AlphaPortionSync algo(0.5);
  std::vector<ModelParameters> finals =
      algo.run(w.clients, w.factory, tiny_options());
  EXPECT_GT(finals[0].squared_distance(finals[1]), 0.0);
  EXPECT_GT(finals[1].squared_distance(finals[2]), 0.0);
}

TEST(AlphaPortionSync, AlphaOneIsFullyLocalAfterAggregation) {
  // alpha = 1: each client's deployed model is exactly its own update
  // (no cross-client mixing).
  TinyWorld wa = make_world(59);
  AlphaPortionSync mix0(1.0);
  FLRunOptions opts = tiny_options(1);
  std::vector<ModelParameters> finals =
      mix0.run(wa.clients, wa.factory, opts);

  TinyWorld wb = make_world(59);
  Rng rng(opts.seed);
  RoutabilityModelPtr init = wb.factory(rng);
  ModelParameters manual = wb.clients[0].local_update(
      ModelParameters::from_model(*init), opts.client);
  EXPECT_NEAR(finals[0].squared_distance(manual), 0.0, 1e-9);

  EXPECT_THROW(AlphaPortionSync(1.5).run(wa.clients, wa.factory, opts),
               std::invalid_argument);
}

TEST(AlphaPortionSync, SingleMemberCohortKeepsItsOwnUpdateUnscaled) {
  // Under client sampling a cohort of one is normal; the sole member
  // must keep its full update (nobody to split (1 - alpha) with), not
  // alpha * update — which would silently shrink the model each round.
  TinyWorld w = make_world(97);
  AlphaPortionSync algo(0.5);
  FLRunOptions opts = tiny_options(1);
  opts.client.mu = 0.0;
  opts.participation.kind = ParticipationKind::kUniformSample;
  opts.participation.sample_size = 1;
  std::vector<ModelParameters> finals = algo.run(w.clients, w.factory, opts);

  TinyWorld ref = make_world(97);
  Rng rng(opts.seed);
  RoutabilityModelPtr init = ref.factory(rng);
  const ModelParameters initial = ModelParameters::from_model(*init);
  int changed = -1;
  for (std::size_t k = 0; k < finals.size(); ++k) {
    if (finals[k].squared_distance(initial) > 0.0) {
      EXPECT_EQ(changed, -1) << "more than one client trained";
      changed = static_cast<int>(k);
    }
  }
  ASSERT_NE(changed, -1);
  const ModelParameters manual =
      ref.clients[static_cast<std::size_t>(changed)].local_update(initial,
                                                                  opts.client);
  EXPECT_NEAR(finals[static_cast<std::size_t>(changed)]
                  .squared_distance(manual),
              0.0, 1e-12);
}

TEST(FineTune, RunsBaseThenImprovesLocalFit) {
  TinyWorld w = make_world(61);
  FLRunOptions opts = tiny_options(2);
  FineTune algo(std::make_unique<FedProx>(), /*finetune_steps=*/10);
  EXPECT_EQ(algo.name(), "FedProx + Fine-tuning");
  std::vector<ModelParameters> finals = algo.run(w.clients, w.factory, opts);
  // Fine-tuned models are personalized (differ across clients).
  EXPECT_GT(finals[0].squared_distance(finals[1]), 0.0);
}

TEST(Baselines, LocalModelsArePerClientAndDifferent) {
  TinyWorld w = make_world(67);
  BaselineOptions opts;
  opts.total_steps = 6;
  opts.client = tiny_options().client;
  std::vector<ModelParameters> locals =
      train_local_baselines(w.clients, w.factory, opts);
  ASSERT_EQ(locals.size(), 3u);
  EXPECT_GT(locals[0].squared_distance(locals[1]), 0.0);
}

TEST(Baselines, CentralizedTrainsOnPooledData) {
  TinyWorld w = make_world(71);
  BaselineOptions opts;
  opts.total_steps = 6;
  opts.client = tiny_options().client;
  ModelParameters central = train_centralized(w.data, w.factory, opts);
  Rng rng(opts.seed);
  RoutabilityModelPtr init = w.factory(rng);
  EXPECT_GT(ModelParameters::from_model(*init).squared_distance(central), 0.0);
}

bool bit_identical(const ModelParameters& a, const ModelParameters& b) {
  if (!a.structurally_equal(b)) return false;
  for (std::size_t n = 0; n < a.entries().size(); ++n) {
    if (!a.entries()[n].value.equals(b.entries()[n].value)) return false;
  }
  return true;
}

// --- algorithm registry (tentpole) -----------------------------------

TEST(Registry, NamesListingAndErrorHandling) {
  AlgorithmRegistry& registry = AlgorithmRegistry::global();
  const std::vector<std::string> names = registry.names();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  for (const char* builtin :
       {"fedavg", "fedprox", "fedprox_lg", "ifca", "fedprox_finetune",
        "assigned_clustering", "alpha_sync", "async_fedavg"}) {
    EXPECT_TRUE(registry.contains(builtin)) << builtin;
  }
  EXPECT_FALSE(registry.contains("no_such_algorithm"));
  try {
    registry.create("no_such_algorithm");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    // The error lists what IS registered, for discoverability.
    EXPECT_NE(std::string(e.what()).find("fedprox"), std::string::npos);
  }
  EXPECT_THROW(registry.add("", [](const AlgorithmOptions&) {
                 return std::unique_ptr<FederatedAlgorithm>();
               }),
               std::invalid_argument);
  EXPECT_THROW(registry.add("fedavg",
                            [](const AlgorithmOptions&) {
                              return std::unique_ptr<FederatedAlgorithm>(
                                  new FedAvg());
                            }),
               std::invalid_argument);
}

TEST(Registry, EveryNameRunsAndMatchesDirectDispatchBitIdentically) {
  // Under FullParticipation and the default lossless channel, an
  // algorithm created through the registry must reproduce the directly
  // constructed (pre-registry, enum-dispatch) result bit for bit.
  AlgorithmOptions options;
  options.cluster_assignment = {0, 0, 1};  // the tiny world has 3 clients
  options.finetune_steps = 4;
  options.async.buffer_size = 2;

  using Direct = std::function<std::unique_ptr<FederatedAlgorithm>()>;
  std::map<std::string, Direct> direct;
  direct["fedavg"] = [] { return std::make_unique<FedAvg>(); };
  direct["fedprox"] = [] { return std::make_unique<FedProx>(); };
  direct["fedprox_lg"] = [] { return std::make_unique<FedProxLG>(); };
  direct["ifca"] = [&] {
    return std::make_unique<IFCA>(options.num_clusters,
                                  options.selection_batches);
  };
  direct["fedprox_finetune"] = [&] {
    return std::make_unique<FineTune>(std::make_unique<FedProx>(),
                                      options.finetune_steps);
  };
  direct["assigned_clustering"] = [&] {
    return std::make_unique<AssignedClustering>(options.cluster_assignment);
  };
  direct["alpha_sync"] = [&] {
    return std::make_unique<AlphaPortionSync>(options.alpha_portion);
  };
  direct["async_fedavg"] = [&] {
    return std::make_unique<AsyncFedAvg>(options.async);
  };

  for (const std::string& name : AlgorithmRegistry::global().names()) {
    SCOPED_TRACE(name);
    const FLRunOptions opts = tiny_options(2);
    TinyWorld w1 = make_world(81);
    std::unique_ptr<FederatedAlgorithm> from_registry =
        AlgorithmRegistry::global().create(name, options);
    std::vector<ModelParameters> finals =
        from_registry->run(w1.clients, w1.factory, opts);
    ASSERT_EQ(finals.size(), 3u);

    auto it = direct.find(name);
    ASSERT_NE(it, direct.end()) << "no direct-dispatch reference for " << name;
    TinyWorld w2 = make_world(81);
    std::vector<ModelParameters> reference =
        it->second()->run(w2.clients, w2.factory, opts);
    ASSERT_EQ(reference.size(), finals.size());
    for (std::size_t k = 0; k < finals.size(); ++k) {
      EXPECT_TRUE(bit_identical(finals[k], reference[k])) << "client " << k;
    }
  }
}

// --- scratch-model pool (tentpole) -----------------------------------

TEST(ModelPoolIdentity, PooledMatchesOwnedForEveryAlgorithmAndPoolSize) {
  // A federation whose clients borrow from one shared scratch pool
  // must reproduce the per-client-model ("owned") layout bit for bit —
  // for every registered algorithm, at several thread-pool sizes. Any
  // state leaking through a scratch model (weights, BatchNorm buffers,
  // Adam moments) between two clients' leases would break this.
  AlgorithmOptions options;
  options.cluster_assignment = {0, 0, 1};  // the tiny world has 3 clients
  options.finetune_steps = 4;
  options.async.buffer_size = 2;

  for (std::size_t threads : {std::size_t{1}, std::size_t{2},
                              std::size_t{8}}) {
    ThreadPool::reset_global(threads);
    for (const std::string& name : AlgorithmRegistry::global().names()) {
      SCOPED_TRACE(name + " @ threads=" + std::to_string(threads));
      const FLRunOptions opts = tiny_options(2);

      std::vector<ModelParameters> reference;
      {
        TinyWorld owned = make_world(91);
        reference = AlgorithmRegistry::global().create(name, options)->run(
            owned.clients, owned.factory, opts);
      }  // destroy the owned world's models before counting the pooled run

      RoutabilityModel::reset_peak_instances();
      const std::int64_t base = RoutabilityModel::live_instances();
      TinyWorld pooled = make_pooled_world(91);
      std::vector<ModelParameters> finals =
          AlgorithmRegistry::global().create(name, options)->run(
              pooled.clients, pooled.factory, opts);

      ASSERT_EQ(finals.size(), reference.size());
      for (std::size_t k = 0; k < finals.size(); ++k) {
        EXPECT_TRUE(bit_identical(finals[k], reference[k])) << "client " << k;
      }
      // The pooled run never held more live models than the budget.
      EXPECT_LE(RoutabilityModel::peak_instances() - base,
                static_cast<std::int64_t>(threads) + 1);
    }
  }
  ThreadPool::reset_global(0);
}

// --- participation policies (tentpole) -------------------------------

TEST(Participation, FullCohortIsEveryClient) {
  FullParticipation full;
  ParticipationContext ctx;
  ctx.num_clients = 4;
  EXPECT_EQ(full.select(ctx), (std::vector<std::size_t>{0, 1, 2, 3}));
  EXPECT_EQ(full.name(), "full");
}

TEST(Participation, UniformSampleIsSeededSortedAndSized) {
  ParticipationContext ctx;
  ctx.num_clients = 6;
  UniformSample a(2, 42), b(2, 42);
  bool varied = false;
  std::vector<std::size_t> first;
  for (int r = 0; r < 6; ++r) {
    ctx.round = r;
    const std::vector<std::size_t> cohort = a.select(ctx);
    EXPECT_EQ(cohort, b.select(ctx));  // same seed => same sequence
    ASSERT_EQ(cohort.size(), 2u);
    EXPECT_TRUE(std::is_sorted(cohort.begin(), cohort.end()));
    EXPECT_LT(cohort.back(), 6u);
    if (r == 0) first = cohort;
    if (cohort != first) varied = true;
  }
  EXPECT_TRUE(varied);  // it actually resamples across rounds
  // C >= K degenerates to full participation; non-positive C is a
  // config error rejected at construction (a typo must not silently
  // run full-cost rounds).
  EXPECT_EQ(UniformSample(99).select(ctx).size(), 6u);
  EXPECT_THROW(UniformSample(0), std::invalid_argument);
}

TEST(Participation, AvailabilityAwareFiltersOfflineClients) {
  SimConfig sim = SimConfig::uniform(3);
  sim.profiles[1].offline.push_back({0.0, 10.0});
  ParticipationContext ctx;
  ctx.num_clients = 3;
  ctx.sim = &sim;
  ctx.now = 5.0;
  AvailabilityAware policy;
  EXPECT_EQ(policy.select(ctx), (std::vector<std::size_t>{0, 2}));
  ctx.now = 10.0;  // offline windows are half-open
  EXPECT_EQ(policy.select(ctx), (std::vector<std::size_t>{0, 1, 2}));

  // Composed with a sampler via the config factory: the filter applies
  // to the sampled cohort, and the offline client never appears.
  ParticipationConfig config;
  config.kind = ParticipationKind::kAvailabilityAware;
  config.sample_size = 2;
  auto sampled = make_participation_policy(config);
  ctx.now = 5.0;
  for (int r = 0; r < 8; ++r) {
    ctx.round = r;
    for (std::size_t k : sampled->select(ctx)) EXPECT_NE(k, 1u);
  }
}

TEST(Participation, SampledFedProxIsDeterministicAndPersonalizesCohortOnly) {
  auto run_once = [] {
    TinyWorld w = make_world(83);
    FLRunOptions opts = tiny_options(3);
    opts.participation.kind = ParticipationKind::kUniformSample;
    opts.participation.sample_size = 2;
    FedProx algo;
    return algo.run(w.clients, w.factory, opts);
  };
  const std::vector<ModelParameters> f1 = run_once();
  const std::vector<ModelParameters> f2 = run_once();
  ASSERT_EQ(f1.size(), 3u);
  for (std::size_t k = 0; k < f1.size(); ++k) {
    EXPECT_TRUE(bit_identical(f1[k], f2[k])) << "client " << k;
  }
}

TEST(Participation, AllOfflineCohortFailsWithDescriptiveError) {
  TinyWorld w = make_world(84);
  FLRunOptions opts = tiny_options(1);
  opts.participation.kind = ParticipationKind::kAvailabilityAware;
  opts.sim = SimConfig::uniform(3);
  for (ClientProfile& p : opts.sim.profiles) p.offline.push_back({0.0, 100.0});
  FedAvg algo;
  try {
    algo.run(w.clients, w.factory, opts);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("empty cohort"), std::string::npos)
        << e.what();
  }
}

// --- aggregation rules (tentpole + guard satellite) ------------------

TEST(AggregationRules, WeightedAverageMatchesServerFacade) {
  TinyWorld w = make_world(85);
  Rng rng(5);
  ModelParameters u1 = ModelParameters::from_model(*w.factory(rng));
  ModelParameters u2 = ModelParameters::from_model(*w.factory(rng));
  const std::vector<ModelParameters> updates = {u1, u2};
  const std::vector<double> weights = {1.0, 3.0};

  const ModelParameters via_server = Server::aggregate(updates, weights);
  const ModelParameters via_rule = WeightedAverage().aggregate(
      ModelParameters{}, {{&u1, 1.0, 0}, {&u2, 3.0, 0}});
  EXPECT_TRUE(bit_identical(via_server, via_rule));
}

TEST(AggregationRules, EmptyCohortAndZeroWeightThrowDescriptively) {
  const WeightedAverage avg;
  const StalenessDiscountedMix mix(StalenessPolicy{}, 0.5);
  for (const AggregationRule* rule :
       std::vector<const AggregationRule*>{&avg, &mix}) {
    try {
      rule->aggregate(ModelParameters{}, {});
      FAIL() << rule->name() << ": expected invalid_argument";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("empty cohort"), std::string::npos)
          << e.what();
    }
  }
  TinyWorld w = make_world(86);
  Rng rng(5);
  ModelParameters u = ModelParameters::from_model(*w.factory(rng));
  EXPECT_THROW(
      avg.aggregate(ModelParameters{}, {{&u, 0.0, 0}, {&u, 0.0, 0}}),
      std::invalid_argument);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(avg.aggregate(ModelParameters{}, {{&u, nan, 0}}),
               std::invalid_argument);
}

TEST(AggregationRules, StalenessDiscountedMixFoldsDeltasIntoCurrent) {
  TinyWorld w = make_world(87);
  Rng rng(5);
  const ModelParameters current = ModelParameters::from_model(*w.factory(rng));
  const ModelParameters delta = ModelParameters::from_model(*w.factory(rng));

  // Single input: normalization cancels the discount entirely, so the
  // result is current + server_mix * delta whatever the staleness.
  StalenessPolicy policy;
  policy.poly_exponent = 1.0;
  const StalenessDiscountedMix rule(policy, 0.5);
  const ModelParameters one =
      rule.aggregate(current, {{&delta, 2.0, /*staleness=*/3}});
  ModelParameters expected = current;
  expected.add_scaled(delta, 0.5);
  EXPECT_NEAR(one.squared_distance(expected), 0.0, 1e-12);

  // Two inputs, same delta but staleness 0 vs 1: the weighted average
  // of identical deltas is that delta, so staleness must not change
  // the outcome — while the internal weights differ (s(1) = 0.5).
  const ModelParameters two = rule.aggregate(
      current, {{&delta, 1.0, 0}, {&delta, 1.0, 1}});
  EXPECT_NEAR(two.squared_distance(expected), 0.0, 1e-10);
  EXPECT_DOUBLE_EQ(policy.weight(0), 1.0);
  EXPECT_DOUBLE_EQ(policy.weight(1), 0.5);

  EXPECT_THROW(StalenessDiscountedMix(policy, 0.0), std::invalid_argument);
}

TEST(TrainingEffectiveness, FedAvgLearnsTheSharedConcept) {
  // With enough rounds, the aggregated model must beat a random model
  // on every client (the shared threshold concept is learnable).
  TinyWorld w = make_world(73);
  FLRunOptions opts = tiny_options(6);
  opts.client.steps = 8;
  opts.client.learning_rate = 5e-3;
  FedProx algo;
  std::vector<ModelParameters> finals = algo.run(w.clients, w.factory, opts);
  for (std::size_t k = 0; k < w.clients.size(); ++k) {
    EXPECT_GT(w.clients[k].evaluate_test_auc(finals[k]), 0.75)
        << "client " << k;
  }
}

}  // namespace
}  // namespace fleda
