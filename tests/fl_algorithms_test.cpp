// Tests for the federated learning algorithms on a small synthetic
// 3-client setup: round-loop semantics, aggregation correctness,
// personalization invariants (LG local parts stay private, alpha-sync
// produces per-client models, clustering keeps cluster models
// separate), proximal-term behaviour, and baseline trainers.
#include <gtest/gtest.h>

#include <cmath>

#include "fl/alpha_sync.hpp"
#include "fl/assigned_clustering.hpp"
#include "fl/baselines.hpp"
#include "fl/fedavg.hpp"
#include "fl/fedprox.hpp"
#include "fl/fedprox_lg.hpp"
#include "fl/finetune.hpp"
#include "fl/ifca.hpp"
#include "tensor/ops.hpp"

namespace fleda {
namespace {

// A tiny linearly-learnable client dataset: label = 1 where channel 0
// exceeds a client-specific threshold (heterogeneity across clients).
ClientDataset make_tiny_client(int id, float threshold, std::uint64_t seed,
                               int train_samples = 6, int test_samples = 3) {
  Rng rng(seed);
  ClientDataset ds;
  ds.client_id = id;
  auto make_sample = [&]() {
    Sample s;
    s.features = Tensor(Shape{2, 8, 8});
    s.label = Tensor(Shape{1, 8, 8});
    for (std::int64_t i = 0; i < 64; ++i) {
      const float v = static_cast<float>(rng.uniform());
      s.features[i] = v;
      s.features[64 + i] = static_cast<float>(rng.uniform());
      s.label[i] = v > threshold ? 1.0f : 0.0f;
    }
    return s;
  };
  for (int i = 0; i < train_samples; ++i) ds.train.push_back(make_sample());
  for (int i = 0; i < test_samples; ++i) ds.test.push_back(make_sample());
  return ds;
}

struct TinyWorld {
  std::vector<ClientDataset> data;
  std::vector<Client> clients;
  ModelFactory factory;
};

TinyWorld make_world(std::uint64_t seed = 1) {
  TinyWorld w;
  w.data.push_back(make_tiny_client(1, 0.4f, seed + 1));
  w.data.push_back(make_tiny_client(2, 0.5f, seed + 2));
  w.data.push_back(make_tiny_client(3, 0.6f, seed + 3, /*train=*/9));
  w.factory = make_model_factory(ModelKind::kFLNet, 2);
  Rng rng(seed);
  for (std::size_t k = 0; k < w.data.size(); ++k) {
    w.clients.emplace_back(w.data[k].client_id, &w.data[k], w.factory,
                           rng.fork(k));
  }
  return w;
}

FLRunOptions tiny_options(int rounds = 2) {
  FLRunOptions opts;
  opts.rounds = rounds;
  opts.client.steps = 3;
  opts.client.batch_size = 2;
  opts.client.learning_rate = 1e-3;
  opts.client.mu = 1e-4;
  opts.seed = 99;
  return opts;
}

TEST(Client, LocalUpdateChangesParametersAndReportsLoss) {
  TinyWorld w = make_world(11);
  Rng rng(5);
  RoutabilityModelPtr init = w.factory(rng);
  ModelParameters start = ModelParameters::from_model(*init);
  ModelParameters result = w.clients[0].local_update(start, tiny_options().client);
  EXPECT_GT(start.squared_distance(result), 0.0);
  EXPECT_GT(w.clients[0].last_train_loss(), 0.0f);
}

TEST(Client, LargeMuKeepsLocalModelNearAnchor) {
  TinyWorld small = make_world(13);
  TinyWorld big = make_world(13);
  Rng rng(5);
  RoutabilityModelPtr init = small.factory(rng);
  ModelParameters start = ModelParameters::from_model(*init);

  ClientTrainConfig weak = tiny_options().client;
  weak.mu = 0.0;
  ClientTrainConfig strong = weak;
  strong.mu = 50.0;  // huge proximal pull
  ModelParameters free_run = small.clients[0].local_update(start, weak);
  ModelParameters anchored = big.clients[0].local_update(start, strong);
  EXPECT_LT(start.squared_distance(anchored),
            start.squared_distance(free_run));
}

TEST(Client, EvaluateTestAucInRange) {
  TinyWorld w = make_world(17);
  Rng rng(5);
  RoutabilityModelPtr init = w.factory(rng);
  double auc =
      w.clients[1].evaluate_test_auc(ModelParameters::from_model(*init));
  EXPECT_GE(auc, 0.0);
  EXPECT_LE(auc, 1.0);
}

TEST(FedAvg, AllClientsReceiveSameFinalModel) {
  TinyWorld w = make_world(19);
  FedAvg algo;
  std::vector<ModelParameters> finals =
      algo.run(w.clients, w.factory, tiny_options());
  ASSERT_EQ(finals.size(), 3u);
  EXPECT_DOUBLE_EQ(finals[0].squared_distance(finals[1]), 0.0);
  EXPECT_DOUBLE_EQ(finals[0].squared_distance(finals[2]), 0.0);
}

TEST(FedAvg, SingleClientEqualsItsOwnUpdate) {
  // With K = 1 the aggregate is exactly the client's local update.
  TinyWorld w = make_world(23);
  std::vector<Client> one;
  one.push_back(std::move(w.clients[0]));

  FLRunOptions opts = tiny_options(/*rounds=*/1);
  opts.client.mu = 0.0;
  FedAvg algo;
  std::vector<ModelParameters> finals = algo.run(one, w.factory, opts);

  // Re-run the same local computation manually.
  TinyWorld w2 = make_world(23);
  Rng rng(opts.seed);
  RoutabilityModelPtr init = w2.factory(rng);
  ClientTrainConfig cfg = opts.client;
  cfg.mu = 0.0;
  ModelParameters manual =
      w2.clients[0].local_update(ModelParameters::from_model(*init), cfg);
  EXPECT_NEAR(finals[0].squared_distance(manual), 0.0, 1e-9);
}

TEST(FedProx, RoundCallbackFiresEachRound) {
  TinyWorld w = make_world(29);
  FLRunOptions opts = tiny_options(3);
  int calls = 0;
  opts.on_round = [&](int round, const std::vector<ModelParameters>& models) {
    EXPECT_EQ(round, calls);
    EXPECT_EQ(models.size(), 3u);
    ++calls;
  };
  FedProx algo;
  algo.run(w.clients, w.factory, opts);
  EXPECT_EQ(calls, 3);
  EXPECT_FALSE(algo.global_model().empty());
}

TEST(FedProx, DeterministicAcrossRuns) {
  TinyWorld w1 = make_world(31);
  TinyWorld w2 = make_world(31);
  FedProx a1, a2;
  std::vector<ModelParameters> f1 = a1.run(w1.clients, w1.factory, tiny_options());
  std::vector<ModelParameters> f2 = a2.run(w2.clients, w2.factory, tiny_options());
  EXPECT_NEAR(f1[0].squared_distance(f2[0]), 0.0, 1e-12);
}

TEST(FedProxLG, LocalPartsStayPrivate) {
  TinyWorld w = make_world(37);
  FedProxLG algo;
  std::vector<ModelParameters> finals =
      algo.run(w.clients, w.factory, tiny_options());
  ASSERT_EQ(finals.size(), 3u);
  // Global parts identical across clients, local parts different.
  double global_diff = 0.0, local_diff = 0.0;
  for (std::size_t e = 0; e < finals[0].entries().size(); ++e) {
    const auto& e0 = finals[0].entries()[e];
    const auto& e1 = finals[1].entries()[e];
    const float d = max_abs_diff(e0.value, e1.value);
    if (is_output_layer_param(e0.name)) {
      local_diff += d;
    } else {
      global_diff += d;
    }
  }
  EXPECT_DOUBLE_EQ(global_diff, 0.0);
  EXPECT_GT(local_diff, 0.0);
}

TEST(IFCA, AssignsEveryClientAValidCluster) {
  TinyWorld w = make_world(41);
  IFCA algo(/*num_clusters=*/2, /*selection_batches=*/2);
  std::vector<ModelParameters> finals =
      algo.run(w.clients, w.factory, tiny_options());
  ASSERT_EQ(finals.size(), 3u);
  ASSERT_EQ(algo.final_assignment().size(), 3u);
  for (int c : algo.final_assignment()) {
    EXPECT_GE(c, 0);
    EXPECT_LT(c, 2);
  }
  // Clients in the same cluster share a model.
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = i + 1; j < 3; ++j) {
      if (algo.final_assignment()[i] == algo.final_assignment()[j]) {
        EXPECT_DOUBLE_EQ(finals[i].squared_distance(finals[j]), 0.0);
      }
    }
  }
  EXPECT_THROW(IFCA(0).run(w.clients, w.factory, tiny_options()),
               std::invalid_argument);
}

TEST(AssignedClustering, ClusterMembersShareModelsOthersDiffer) {
  TinyWorld w = make_world(43);
  AssignedClustering algo({0, 0, 1});
  std::vector<ModelParameters> finals =
      algo.run(w.clients, w.factory, tiny_options());
  EXPECT_DOUBLE_EQ(finals[0].squared_distance(finals[1]), 0.0);
  EXPECT_GT(finals[0].squared_distance(finals[2]), 0.0);
}

TEST(AssignedClustering, PaperAssignmentShape) {
  TinyWorld w = make_world(47);
  AssignedClustering algo = AssignedClustering::paper_assignment();
  // Paper assignment is for 9 clients; running on 3 must throw.
  EXPECT_THROW(algo.run(w.clients, w.factory, tiny_options()),
               std::invalid_argument);
}

TEST(AlphaPortionSync, ProducesPerClientModels) {
  TinyWorld w = make_world(53);
  AlphaPortionSync algo(0.5);
  std::vector<ModelParameters> finals =
      algo.run(w.clients, w.factory, tiny_options());
  EXPECT_GT(finals[0].squared_distance(finals[1]), 0.0);
  EXPECT_GT(finals[1].squared_distance(finals[2]), 0.0);
}

TEST(AlphaPortionSync, AlphaOneIsFullyLocalAfterAggregation) {
  // alpha = 1: each client's deployed model is exactly its own update
  // (no cross-client mixing).
  TinyWorld wa = make_world(59);
  AlphaPortionSync mix0(1.0);
  FLRunOptions opts = tiny_options(1);
  std::vector<ModelParameters> finals =
      mix0.run(wa.clients, wa.factory, opts);

  TinyWorld wb = make_world(59);
  Rng rng(opts.seed);
  RoutabilityModelPtr init = wb.factory(rng);
  ModelParameters manual = wb.clients[0].local_update(
      ModelParameters::from_model(*init), opts.client);
  EXPECT_NEAR(finals[0].squared_distance(manual), 0.0, 1e-9);

  EXPECT_THROW(AlphaPortionSync(1.5).run(wa.clients, wa.factory, opts),
               std::invalid_argument);
}

TEST(FineTune, RunsBaseThenImprovesLocalFit) {
  TinyWorld w = make_world(61);
  FLRunOptions opts = tiny_options(2);
  FineTune algo(std::make_unique<FedProx>(), /*finetune_steps=*/10);
  EXPECT_EQ(algo.name(), "FedProx + Fine-tuning");
  std::vector<ModelParameters> finals = algo.run(w.clients, w.factory, opts);
  // Fine-tuned models are personalized (differ across clients).
  EXPECT_GT(finals[0].squared_distance(finals[1]), 0.0);
}

TEST(Baselines, LocalModelsArePerClientAndDifferent) {
  TinyWorld w = make_world(67);
  BaselineOptions opts;
  opts.total_steps = 6;
  opts.client = tiny_options().client;
  std::vector<ModelParameters> locals =
      train_local_baselines(w.clients, w.factory, opts);
  ASSERT_EQ(locals.size(), 3u);
  EXPECT_GT(locals[0].squared_distance(locals[1]), 0.0);
}

TEST(Baselines, CentralizedTrainsOnPooledData) {
  TinyWorld w = make_world(71);
  BaselineOptions opts;
  opts.total_steps = 6;
  opts.client = tiny_options().client;
  ModelParameters central = train_centralized(w.data, w.factory, opts);
  Rng rng(opts.seed);
  RoutabilityModelPtr init = w.factory(rng);
  EXPECT_GT(ModelParameters::from_model(*init).squared_distance(central), 0.0);
}

TEST(TrainingEffectiveness, FedAvgLearnsTheSharedConcept) {
  // With enough rounds, the aggregated model must beat a random model
  // on every client (the shared threshold concept is learnable).
  TinyWorld w = make_world(73);
  FLRunOptions opts = tiny_options(6);
  opts.client.steps = 8;
  opts.client.learning_rate = 5e-3;
  FedProx algo;
  std::vector<ModelParameters> finals = algo.run(w.clients, w.factory, opts);
  for (std::size_t k = 0; k < w.clients.size(); ++k) {
    EXPECT_GT(w.clients[k].evaluate_test_auc(finals[k]), 0.75)
        << "client " << k;
  }
}

}  // namespace
}  // namespace fleda
