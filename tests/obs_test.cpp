// Tests for the src/obs/ observability layer: scoped-profiler span
// accounting (nesting, self-time, min/max, disabled-mode cost),
// metrics-registry semantics (sharded counters under contention,
// histogram bucketing, name collisions, snapshot stability), per-round
// telemetry (bucket mapping, JSONL round-trip through a real file),
// the SimTrace HTML renderer (byte-stable against a golden file), and
// the mid-run trace-enable bugfix (the gap is declared, not silent).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <new>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace_html.hpp"
#include "sim/engine.hpp"
#include "sim/profile.hpp"
#include "util/thread_pool.hpp"

// Global allocation counter for the disabled-mode cost test: the
// replacement operators count every heap allocation in the process, so
// a window with zero delta proves a code path allocation-free.
static std::atomic<std::uint64_t> g_allocations{0};

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace fleda {
namespace {

// Spins the current thread for roughly `ms` of wall time — sleep-free
// so the span duration is always positive and roughly as requested.
void busy_wait_ms(double ms) {
  StopWatch watch;
  while (watch.millis() < ms) {
  }
}

// --- profiler --------------------------------------------------------

TEST(Profiler, CountsTotalsAndMinMax) {
  Profiler::set_enabled(true);
  Profiler::reset();
  static const char* kPhase = "test/three_spans";
  for (int i = 1; i <= 3; ++i) {
    ProfileScope scope(kPhase);
    busy_wait_ms(0.2 * i);
  }
  const ProfileReport report = Profiler::report();
  const PhaseReport* p = report.find(kPhase);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->count, 3u);
  EXPECT_GT(p->min_ms, 0.0);
  EXPECT_LE(p->min_ms, p->max_ms);
  EXPECT_GE(p->total_ms, p->min_ms + p->max_ms);
  EXPECT_LE(p->total_ms, 3.0 * p->max_ms + 1e-9);
  // No nesting: self time is total time.
  EXPECT_DOUBLE_EQ(p->self_ms, p->total_ms);
}

TEST(Profiler, SelfTimeExcludesNestedSpansExactly) {
  Profiler::set_enabled(true);
  Profiler::reset();
  static const char* kOuter = "test/outer";
  static const char* kInner = "test/inner";
  {
    ProfileScope outer(kOuter);
    busy_wait_ms(1.0);
    for (int i = 0; i < 2; ++i) {
      ProfileScope inner(kInner);
      busy_wait_ms(1.0);
    }
  }
  const ProfileReport report = Profiler::report();
  const PhaseReport* outer = report.find(kOuter);
  const PhaseReport* inner = report.find(kInner);
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->count, 2u);
  // The parent's child-time accumulator is the same integer
  // nanoseconds the children recorded, so the identity
  // self = total - sum(children) holds to formatting precision.
  EXPECT_NEAR(outer->self_ms, outer->total_ms - inner->total_ms, 1e-6);
  EXPECT_GE(outer->self_ms, 0.9);   // the explicit 1 ms of own work
  EXPECT_GE(inner->total_ms, 1.8);  // two spans of ~1 ms each
}

TEST(Profiler, DisabledScopesRecordNothingAndNeverAllocate) {
  Profiler::set_enabled(true);
  Profiler::reset();
  static const char* kPhase = "test/disabled";
  {
    // Warm path once while enabled so the thread's slab exists.
    ProfileScope warm(kPhase);
  }
  Profiler::reset();
  Profiler::set_enabled(false);
  const std::uint64_t before = g_allocations.load();
  for (int i = 0; i < 1000; ++i) {
    ProfileScope scope(kPhase);
    EXPECT_DOUBLE_EQ(scope.seconds(), 0.0);  // no clock was read
  }
  const std::uint64_t after = g_allocations.load();
  EXPECT_EQ(after, before);  // the disabled path is allocation-free
  Profiler::set_enabled(true);
  const ProfileReport report = Profiler::report();
  EXPECT_EQ(report.find(kPhase), nullptr);  // and recorded nothing
}

TEST(Profiler, ReportMergesSpansAcrossThreads) {
  Profiler::set_enabled(true);
  Profiler::reset();
  static const char* kPhase = "test/threads";
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < 5; ++i) {
        ProfileScope scope(kPhase);
        busy_wait_ms(0.05);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const ProfileReport report = Profiler::report();
  const PhaseReport* p = report.find(kPhase);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->count, 20u);  // slabs survive thread exit and merge
}

TEST(Profiler, ReportJsonHasFixedShape) {
  Profiler::set_enabled(true);
  Profiler::reset();
  static const char* kPhase = "test/json";
  {
    ProfileScope scope(kPhase);
    busy_wait_ms(0.1);
  }
  const std::string json = Profiler::report().to_json();
  EXPECT_NE(json.find("{\"phases\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"test/json\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
  EXPECT_NE(json.find("\"total_ms\":"), std::string::npos);
  EXPECT_NE(json.find("\"self_ms\":"), std::string::npos);
}

// --- metrics registry ------------------------------------------------

TEST(Metrics, CounterIsExactUnderContention) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("test.contended");
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kPerThread = 10000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter.add(1);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
}

TEST(Metrics, RegistryReturnsStableReferences) {
  MetricsRegistry registry;
  Counter& a = registry.counter("test.same");
  Counter& b = registry.counter("test.same");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
  // reset() zeroes values but never invalidates cached references.
  registry.reset();
  EXPECT_EQ(a.value(), 0u);
  a.add(1);
  EXPECT_EQ(b.value(), 1u);
}

TEST(Metrics, NameCollisionAcrossKindsThrows) {
  MetricsRegistry registry;
  registry.counter("test.collide");
  EXPECT_THROW(registry.gauge("test.collide"), std::invalid_argument);
  EXPECT_THROW(registry.histogram("test.collide", {1.0}),
               std::invalid_argument);
}

TEST(Metrics, HistogramBucketsAndOverflow) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("test.hist", {1.0, 2.0, 5.0});
  for (double v : {0.5, 1.0, 1.5, 3.0, 10.0}) h.observe(v);
  const Histogram::Snapshot snap = h.snapshot();
  ASSERT_EQ(snap.bounds.size(), 3u);
  ASSERT_EQ(snap.counts.size(), 4u);  // three bounds + overflow
  EXPECT_EQ(snap.counts[0], 2u);      // 0.5, 1.0 (bounds are inclusive)
  EXPECT_EQ(snap.counts[1], 1u);      // 1.5
  EXPECT_EQ(snap.counts[2], 1u);      // 3.0
  EXPECT_EQ(snap.counts[3], 1u);      // 10.0 overflows
  EXPECT_EQ(snap.count, 5u);
  EXPECT_DOUBLE_EQ(snap.sum, 16.0);
}

TEST(Metrics, SnapshotJsonListsEveryInstrument) {
  MetricsRegistry registry;
  registry.counter("test.c").add(2);
  registry.gauge("test.g").set(1.5);
  registry.histogram("test.h", {1.0}).observe(0.5);
  const std::string json = registry.snapshot_json();
  EXPECT_NE(json.find("\"test.c\":2"), std::string::npos);
  EXPECT_NE(json.find("\"test.g\":1.5"), std::string::npos);
  EXPECT_NE(json.find("\"test.h\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

// --- telemetry -------------------------------------------------------

TEST(Telemetry, StalenessBucketMapping) {
  StalenessHistogram h;
  for (int s : {0, 1, 2, 3, 4, 5, 8, 9, 100}) h.observe(s);
  EXPECT_EQ(h.counts[0], 1u);  // 0
  EXPECT_EQ(h.counts[1], 1u);  // 1
  EXPECT_EQ(h.counts[2], 1u);  // 2
  EXPECT_EQ(h.counts[3], 2u);  // 3, 4
  EXPECT_EQ(h.counts[4], 2u);  // 5, 8
  EXPECT_EQ(h.counts[5], 2u);  // 9, 100
  EXPECT_EQ(h.total(), 9u);
  EXPECT_STREQ(StalenessHistogram::bucket_label(0), "0");
  EXPECT_STREQ(StalenessHistogram::bucket_label(3), "3-4");
  EXPECT_STREQ(StalenessHistogram::bucket_label(5), "9+");
}

TEST(Telemetry, SinkAccumulatesAndStreamsJsonl) {
  const std::string path = ::testing::TempDir() + "fleda_telemetry_test.jsonl";
  std::remove(path.c_str());
  {
    TelemetrySink sink(path);
    sink.record_cohort(20, 2);
    sink.record_detected(3);
    sink.record_staleness(0);
    sink.record_staleness(3);
    sink.close_round(0, 1.5, 1000, 2000);
    sink.record_cohort(18, 0);
    sink.close_round(1, 3.25, 900, 1800);

    ASSERT_EQ(sink.rounds().size(), 2u);
    const RoundTelemetry& r0 = sink.rounds()[0];
    EXPECT_EQ(r0.round, 0);
    EXPECT_DOUBLE_EQ(r0.sim_time_s, 1.5);
    EXPECT_EQ(r0.cohort_size, 20);
    EXPECT_EQ(r0.attackers_true, 2);
    EXPECT_EQ(r0.attackers_detected, 3);
    EXPECT_EQ(r0.uplink_bytes, 1000u);
    EXPECT_EQ(r0.downlink_bytes, 2000u);
    EXPECT_EQ(r0.staleness.counts[0], 1u);
    EXPECT_EQ(r0.staleness.counts[3], 1u);
    // close_round starts a fresh record: nothing leaks into round 1.
    EXPECT_EQ(sink.rounds()[1].cohort_size, 18);
    EXPECT_EQ(sink.rounds()[1].staleness.total(), 0u);
  }
  // One JSON object per line, in closing order, parseable fields.
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string line0, line1, extra;
  ASSERT_TRUE(static_cast<bool>(std::getline(in, line0)));
  ASSERT_TRUE(static_cast<bool>(std::getline(in, line1)));
  EXPECT_FALSE(static_cast<bool>(std::getline(in, extra)));
  EXPECT_NE(line0.find("\"round\":0"), std::string::npos);
  EXPECT_NE(line0.find("\"cohort_size\":20"), std::string::npos);
  EXPECT_NE(line0.find("\"attackers_true\":2"), std::string::npos);
  EXPECT_NE(line0.find("\"attackers_detected\":3"), std::string::npos);
  EXPECT_NE(line0.find("\"uplink_bytes\":1000"), std::string::npos);
  EXPECT_NE(line0.find("\"3-4\":1"), std::string::npos);
  EXPECT_NE(line1.find("\"round\":1"), std::string::npos);
  EXPECT_NE(line1.find("\"sim_time_s\":3.250000"), std::string::npos);
  // The in-memory record and the streamed line agree byte-for-byte.
  TelemetrySink replay;
  replay.record_cohort(20, 2);
  replay.record_detected(3);
  replay.record_staleness(0);
  replay.record_staleness(3);
  replay.close_round(0, 1.5, 1000, 2000);
  EXPECT_EQ(replay.rounds()[0].to_json(), line0);
  std::remove(path.c_str());
}

// --- trace renderer --------------------------------------------------

// Three clients, hand-scheduled round: client 0 completes, client 1's
// upload is dropped inside its offline window, client 2 is a sign-flip
// attacker. Small, fully deterministic, and exercises every marker the
// renderer can draw.
SimReport tiny_trace(SimConfig* config_out) {
  SimConfig config = SimConfig::uniform(3);
  config.profiles[1].offline.push_back({1.6, 2.6});
  AttackSpec attack;
  attack.kind = AttackKind::kSignFlip;
  attack.scale = 10.0;
  config.profiles[2].attack = attack;

  SimEngine engine(config, CommConfig{}, 3);
  engine.set_trace_enabled(true);
  for (int k = 0; k < 3; ++k) {
    engine.schedule(0.0, SimEventKind::kDispatch, k, 0);
    engine.schedule(0.2 + 0.05 * k, SimEventKind::kDownlinkDone, k, 0);
  }
  engine.schedule(1.0, SimEventKind::kComputeDone, 0, 0);
  engine.schedule(1.3, SimEventKind::kUplinkDone, 0, 0);
  engine.schedule(1.5, SimEventKind::kComputeDone, 1, 0);
  engine.schedule(1.8, SimEventKind::kDropped, 1, 0);
  engine.schedule(2.0, SimEventKind::kComputeDone, 2, 0);
  engine.schedule(2.4, SimEventKind::kUplinkDone, 2, 0);
  engine.schedule(2.5, SimEventKind::kAggregate, -1, 0);
  engine.schedule(2.5, SimEventKind::kRoundEnd, -1, 0);
  engine.run_all();

  if (config_out != nullptr) *config_out = config;
  return engine.report();
}

std::string golden_path() {
  std::string path = __FILE__;
  path.resize(path.find_last_of('/') + 1);
  return path + "golden/tiny_trace.html";
}

TEST(TraceHtml, MatchesGoldenByteForByte) {
  SimConfig config;
  const SimReport report = tiny_trace(&config);
  TraceVizOptions viz;
  viz.title = "tiny trace golden";
  viz.width_px = 800;
  viz.lane_height_px = 12;
  viz.collapse_idle = false;
  const std::string html = render_trace_html(report, config, 3, viz);

  // The markers the scenario exists to produce.
  EXPECT_NE(html.find("class=\"compute\""), std::string::npos);
  EXPECT_NE(html.find("class=\"up\""), std::string::npos);
  EXPECT_NE(html.find("class=\"offline\""), std::string::npos);
  EXPECT_NE(html.find("class=\"drop\""), std::string::npos);
  EXPECT_NE(html.find("class=\"attacker-bg\""), std::string::npos);
  EXPECT_NE(html.find("class=\"agg\""), std::string::npos);

  const std::string path = golden_path();
  if (std::getenv("FLEDA_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.is_open()) << "cannot write " << path;
    out << html;
    GTEST_SKIP() << "golden regenerated at " << path;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.is_open())
      << path << " missing - run with FLEDA_UPDATE_GOLDEN=1 to create it";
  std::ostringstream golden;
  golden << in.rdbuf();
  // Byte equality is the whole point: the renderer's fixed snprintf
  // formats make the artifact diffable across machines, so any drift
  // here is a real rendering change, not noise.
  EXPECT_EQ(html, golden.str())
      << "trace HTML drifted from the golden; if the change is "
         "intentional, regenerate with FLEDA_UPDATE_GOLDEN=1";
}

TEST(TraceHtml, RenderIsDeterministicAcrossCalls) {
  SimConfig config;
  const SimReport report = tiny_trace(&config);
  const std::string a = render_trace_html(report, config, 3);
  const std::string b = render_trace_html(report, config, 3);
  EXPECT_EQ(a, b);
}

// --- mid-run trace enable (the bugfix) -------------------------------

TEST(SimEngine, MidRunTraceEnableDeclaresTheGap) {
  SimConfig config = SimConfig::uniform(2);
  SimEngine engine(config, CommConfig{}, 2);
  // Tracing off: the first round leaves no record.
  engine.schedule(1.0, SimEventKind::kDispatch, 0, 0);
  engine.schedule(2.0, SimEventKind::kUplinkDone, 0, 0);
  engine.run_all();
  EXPECT_TRUE(engine.trace().empty());

  // Flip tracing on mid-run: the enable time is stamped, and only
  // later events are recorded.
  engine.set_trace_enabled(true);
  engine.schedule(3.0, SimEventKind::kDispatch, 1, 1);
  engine.schedule(4.0, SimEventKind::kUplinkDone, 1, 1);
  engine.run_all();

  const SimReport report = engine.report();
  EXPECT_DOUBLE_EQ(report.trace_start_s, 2.0);  // the clock at enable
  ASSERT_EQ(report.trace.size(), 2u);
  EXPECT_EQ(report.trace[0].client, 1);
  EXPECT_EQ(report.trace[0].round, 1);

  // The renderer surfaces the gap instead of silently drawing a
  // partial timeline as if it were complete.
  const std::string html = render_trace_html(report, config, 2);
  EXPECT_NE(html.find("tracing enabled at"), std::string::npos);

  // Re-enabling while already on must not move the stamp.
  engine.set_trace_enabled(true);
  EXPECT_DOUBLE_EQ(engine.report().trace_start_s, 2.0);
}

TEST(SimEngine, TraceEnabledFromStartReportsZeroStart) {
  SimConfig config = SimConfig::uniform(1);
  SimEngine engine(config, CommConfig{}, 1);
  engine.set_trace_enabled(true);
  engine.schedule(1.0, SimEventKind::kDispatch, 0, 0);
  engine.run_all();
  const SimReport report = engine.report();
  EXPECT_DOUBLE_EQ(report.trace_start_s, 0.0);
  const std::string html = render_trace_html(report, config, 1);
  EXPECT_EQ(html.find("tracing enabled at"), std::string::npos);
}

}  // namespace
}  // namespace fleda
