// Property-based gradient verification: every layer's backward pass is
// checked against central finite differences of its forward pass, for
// both parameter gradients and input gradients, across a parameterized
// sweep of layer geometries. This is the load-bearing correctness
// suite for the NN substrate — if these pass, training dynamics are
// trustworthy.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>

#include "nn/activations.hpp"
#include "nn/batchnorm2d.hpp"
#include "nn/conv2d.hpp"
#include "nn/conv_transpose2d.hpp"
#include "nn/pixel_shuffle.hpp"
#include "nn/pooling.hpp"
#include "nn/sequential.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace fleda {
namespace {

Tensor random_tensor(const Shape& shape, Rng& rng, double scale = 1.0) {
  Tensor t(shape);
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(rng.uniform(-scale, scale));
  }
  return t;
}

// Scalar objective L = <forward(x), G> with fixed random G, so that
// dL/d(output) = G and backward(G) yields analytic gradients.
struct GradCheck {
  Module& layer;
  Tensor input;
  Tensor g;  // dL/d(output)
  bool training = true;

  double loss() {
    Tensor out = layer.forward(input, training);
    return dot(out, g);
  }

  // Runs backward once and returns dL/d(input); parameter grads are
  // accumulated into the layer's Parameter::grad.
  Tensor analytic_input_grad() {
    layer.zero_grad();
    layer.forward(input, training);
    return layer.backward(g);
  }

  static constexpr double kEps = 1e-3;
  static constexpr double kTol = 2e-2;  // relative, float32 forward

  void check_input_grad() {
    Tensor analytic = analytic_input_grad();
    double max_err = 0.0, max_ref = 1e-8;
    for (std::int64_t i = 0; i < input.numel(); ++i) {
      const float orig = input[i];
      input[i] = orig + static_cast<float>(kEps);
      const double lp = loss();
      input[i] = orig - static_cast<float>(kEps);
      const double lm = loss();
      input[i] = orig;
      const double numeric = (lp - lm) / (2.0 * kEps);
      max_err = std::max(max_err, std::fabs(numeric - analytic[i]));
      max_ref = std::max(max_ref, std::fabs(numeric));
    }
    EXPECT_LT(max_err / max_ref, kTol) << "input gradient mismatch";
  }

  void check_param_grads() {
    analytic_input_grad();  // fills Parameter::grad
    for (Parameter* p : layer.parameters()) {
      // Copy since backward reruns will overwrite.
      Tensor analytic = p->grad;
      double max_err = 0.0, max_ref = 1e-8;
      for (std::int64_t i = 0; i < p->value.numel(); ++i) {
        const float orig = p->value[i];
        p->value[i] = orig + static_cast<float>(kEps);
        const double lp = loss();
        p->value[i] = orig - static_cast<float>(kEps);
        const double lm = loss();
        p->value[i] = orig;
        const double numeric = (lp - lm) / (2.0 * kEps);
        max_err = std::max(max_err, std::fabs(numeric - analytic[i]));
        max_ref = std::max(max_ref, std::fabs(numeric));
      }
      EXPECT_LT(max_err / max_ref, kTol)
          << "parameter gradient mismatch in " << p->name;
    }
  }
};

// ---- Conv2d over geometry sweep ----

struct ConvCase {
  int cin, cout, k, stride, pad, dilation, h, w, n;
  bool bias;
};

class Conv2dGrad : public ::testing::TestWithParam<ConvCase> {};

TEST_P(Conv2dGrad, InputAndParamGradients) {
  const ConvCase& cc = GetParam();
  Rng rng(42);
  Conv2dOptions opts;
  opts.in_channels = cc.cin;
  opts.out_channels = cc.cout;
  opts.kernel = cc.k;
  opts.stride = cc.stride;
  opts.padding = cc.pad;
  opts.dilation = cc.dilation;
  opts.bias = cc.bias;
  Conv2d conv("conv", opts, rng);

  Tensor input = random_tensor(Shape::of(cc.n, cc.cin, cc.h, cc.w), rng);
  auto [oh, ow] = conv.output_hw(cc.h, cc.w);
  Tensor g = random_tensor(Shape::of(cc.n, cc.cout, oh, ow), rng);

  GradCheck check{conv, input, g};
  check.check_input_grad();
  check.check_param_grads();
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, Conv2dGrad,
    ::testing::Values(ConvCase{1, 1, 3, 1, 1, 1, 6, 6, 1, true},
                      ConvCase{2, 3, 3, 1, 1, 1, 5, 7, 2, true},
                      ConvCase{3, 2, 5, 1, 2, 1, 8, 8, 1, true},
                      ConvCase{2, 2, 3, 2, 1, 1, 8, 8, 2, true},
                      ConvCase{2, 2, 3, 1, 2, 2, 9, 9, 1, true},
                      ConvCase{1, 4, 9, 1, 4, 1, 12, 12, 1, true},
                      ConvCase{2, 3, 3, 1, 1, 1, 6, 6, 1, false}));

// ---- ConvTranspose2d ----

struct DeconvCase {
  int cin, cout, k, stride, pad, h, w, n;
};

class ConvTranspose2dGrad : public ::testing::TestWithParam<DeconvCase> {};

TEST_P(ConvTranspose2dGrad, InputAndParamGradients) {
  const DeconvCase& dc = GetParam();
  Rng rng(43);
  ConvTranspose2dOptions opts;
  opts.in_channels = dc.cin;
  opts.out_channels = dc.cout;
  opts.kernel = dc.k;
  opts.stride = dc.stride;
  opts.padding = dc.pad;
  ConvTranspose2d deconv("deconv", opts, rng);

  Tensor input = random_tensor(Shape::of(dc.n, dc.cin, dc.h, dc.w), rng);
  const std::int64_t oh = opts.out_size(dc.h);
  const std::int64_t ow = opts.out_size(dc.w);
  Tensor g = random_tensor(Shape::of(dc.n, dc.cout, oh, ow), rng);

  GradCheck check{deconv, input, g};
  check.check_input_grad();
  check.check_param_grads();
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ConvTranspose2dGrad,
    ::testing::Values(DeconvCase{1, 1, 2, 2, 0, 4, 4, 1},
                      DeconvCase{2, 3, 4, 2, 1, 4, 4, 2},
                      DeconvCase{3, 2, 3, 1, 1, 5, 5, 1},
                      DeconvCase{2, 2, 4, 2, 1, 5, 6, 1}));

// ---- BatchNorm2d (train and eval modes) ----

class BatchNorm2dGrad : public ::testing::TestWithParam<bool> {};

TEST_P(BatchNorm2dGrad, InputAndParamGradients) {
  const bool training = GetParam();
  Rng rng(44);
  BatchNorm2d bn("bn", BatchNorm2dOptions{3});
  Tensor input = random_tensor(Shape::of(2, 3, 4, 4), rng, 2.0);
  Tensor g = random_tensor(Shape::of(2, 3, 4, 4), rng);
  if (!training) {
    // Populate running stats with something non-trivial first.
    bn.forward(input, /*training=*/true);
  }
  GradCheck check{bn, input, g, training};
  check.check_input_grad();
  check.check_param_grads();
}

INSTANTIATE_TEST_SUITE_P(Modes, BatchNorm2dGrad, ::testing::Bool());

// ---- activations / pooling / pixel shuffle ----

TEST(ActivationGrad, ReLU) {
  Rng rng(45);
  ReLU relu;
  // Keep inputs away from the kink at 0 for finite differences.
  Tensor input = random_tensor(Shape::of(2, 3, 4, 4), rng);
  for (std::int64_t i = 0; i < input.numel(); ++i) {
    if (std::fabs(input[i]) < 0.05f) input[i] = 0.1f;
  }
  Tensor g = random_tensor(input.shape(), rng);
  GradCheck check{relu, input, g};
  check.check_input_grad();
}

TEST(ActivationGrad, LeakyReLU) {
  Rng rng(46);
  LeakyReLU lrelu("l", 0.1f);
  Tensor input = random_tensor(Shape::of(1, 2, 5, 5), rng);
  for (std::int64_t i = 0; i < input.numel(); ++i) {
    if (std::fabs(input[i]) < 0.05f) input[i] = -0.1f;
  }
  Tensor g = random_tensor(input.shape(), rng);
  GradCheck check{lrelu, input, g};
  check.check_input_grad();
}

TEST(ActivationGrad, Sigmoid) {
  Rng rng(47);
  Sigmoid sig;
  Tensor input = random_tensor(Shape::of(1, 2, 4, 4), rng, 2.0);
  Tensor g = random_tensor(input.shape(), rng);
  GradCheck check{sig, input, g};
  check.check_input_grad();
}

TEST(ActivationGrad, Tanh) {
  Rng rng(48);
  Tanh tanh_layer;
  Tensor input = random_tensor(Shape::of(1, 2, 4, 4), rng, 2.0);
  Tensor g = random_tensor(input.shape(), rng);
  GradCheck check{tanh_layer, input, g};
  check.check_input_grad();
}

TEST(PoolingGrad, MaxPool2x2) {
  Rng rng(49);
  MaxPool2d pool("pool", MaxPool2dOptions{2, 2});
  // Well-separated values so argmax does not flip under perturbation.
  Tensor input(Shape::of(1, 2, 6, 6));
  for (std::int64_t i = 0; i < input.numel(); ++i) {
    input[i] = static_cast<float>(rng.uniform(-4.0, 4.0));
  }
  Tensor g = random_tensor(Shape::of(1, 2, 3, 3), rng);
  GradCheck check{pool, input, g};
  check.check_input_grad();
}

TEST(PixelShuffleGrad, Factor2) {
  Rng rng(50);
  PixelShuffle ps("ps", 2);
  Tensor input = random_tensor(Shape::of(2, 8, 3, 3), rng);
  Tensor g = random_tensor(Shape::of(2, 2, 6, 6), rng);
  GradCheck check{ps, input, g};
  check.check_input_grad();
}

TEST(SequentialGrad, ConvBnReluStack) {
  Rng rng(51);
  Sequential seq("stack");
  Conv2dOptions copts;
  copts.in_channels = 2;
  copts.out_channels = 3;
  copts.kernel = 3;
  copts.same_padding();
  // No conv bias before BatchNorm: BN cancels any channel-wise shift,
  // so a bias there has exactly zero gradient (and FD would be noise).
  copts.bias = false;
  seq.emplace<Conv2d>("c1", copts, rng);
  seq.emplace<BatchNorm2d>("b1", BatchNorm2dOptions{3});
  seq.emplace<Sigmoid>("s1");  // smooth activation for clean numerics
  Conv2dOptions copts2;
  copts2.in_channels = 3;
  copts2.out_channels = 1;
  copts2.kernel = 3;
  copts2.same_padding();
  seq.emplace<Conv2d>("c2", copts2, rng);

  Tensor input = random_tensor(Shape::of(2, 2, 5, 5), rng);
  Tensor g = random_tensor(Shape::of(2, 1, 5, 5), rng);
  GradCheck check{seq, input, g};
  check.check_input_grad();
  check.check_param_grads();
}

}  // namespace
}  // namespace fleda
