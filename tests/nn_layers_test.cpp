// Unit tests for layer forward semantics: shapes, known-value outputs,
// BatchNorm statistics, pooling selection, pixel-shuffle permutation,
// parameter registration and naming.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/activations.hpp"
#include "nn/batchnorm2d.hpp"
#include "nn/conv2d.hpp"
#include "nn/conv_transpose2d.hpp"
#include "nn/init.hpp"
#include "nn/pixel_shuffle.hpp"
#include "nn/pooling.hpp"
#include "nn/sequential.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace fleda {
namespace {

Tensor random_tensor(const Shape& shape, Rng& rng) {
  Tensor t(shape);
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  return t;
}

TEST(Conv2d, SamePaddingPreservesSpatialDims) {
  Rng rng(1);
  for (int k : {3, 5, 7, 9}) {
    Conv2dOptions opts;
    opts.in_channels = 2;
    opts.out_channels = 4;
    opts.kernel = k;
    opts.same_padding();
    Conv2d conv("c", opts, rng);
    Tensor out = conv.forward(random_tensor(Shape::of(1, 2, 16, 16), rng), true);
    EXPECT_EQ(out.shape(), (Shape{1, 4, 16, 16})) << "k=" << k;
  }
}

TEST(Conv2d, StrideHalvesOutput) {
  Rng rng(2);
  Conv2dOptions opts;
  opts.in_channels = 1;
  opts.out_channels = 1;
  opts.kernel = 3;
  opts.stride = 2;
  opts.padding = 1;
  Conv2d conv("c", opts, rng);
  Tensor out = conv.forward(Tensor(Shape{1, 1, 8, 8}), true);
  EXPECT_EQ(out.shape(), (Shape{1, 1, 4, 4}));
}

TEST(Conv2d, IdentityKernelReproducesInput) {
  Rng rng(3);
  Conv2dOptions opts;
  opts.in_channels = 1;
  opts.out_channels = 1;
  opts.kernel = 3;
  opts.same_padding();
  Conv2d conv("c", opts, rng);
  // Set kernel to the delta at center, bias 0.
  conv.weight().value.fill(0.0f);
  conv.weight().value[4] = 1.0f;  // center of 3x3
  conv.bias().value.fill(0.0f);
  Tensor input = random_tensor(Shape::of(1, 1, 6, 6), rng);
  Tensor out = conv.forward(input, true);
  EXPECT_TRUE(allclose(out, input, 1e-5f, 1e-6f));
}

TEST(Conv2d, BiasShiftsOutputUniformly) {
  Rng rng(4);
  Conv2dOptions opts;
  opts.in_channels = 1;
  opts.out_channels = 2;
  opts.kernel = 1;
  Conv2d conv("c", opts, rng);
  conv.weight().value.fill(0.0f);
  conv.bias().value[0] = 1.5f;
  conv.bias().value[1] = -2.0f;
  Tensor out = conv.forward(Tensor(Shape{1, 1, 3, 3}), true);
  for (int i = 0; i < 9; ++i) {
    EXPECT_FLOAT_EQ(out[i], 1.5f);
    EXPECT_FLOAT_EQ(out[9 + i], -2.0f);
  }
}

TEST(Conv2d, RejectsBadInputShape) {
  Rng rng(5);
  Conv2dOptions opts;
  opts.in_channels = 3;
  opts.out_channels = 1;
  opts.kernel = 3;
  opts.same_padding();
  Conv2d conv("c", opts, rng);
  EXPECT_THROW(conv.forward(Tensor(Shape{1, 2, 8, 8}), true),
               std::invalid_argument);
  EXPECT_THROW(conv.forward(Tensor(Shape{8, 8}), true), std::invalid_argument);
}

TEST(Conv2d, BackwardBeforeForwardThrows) {
  Rng rng(6);
  Conv2dOptions opts;
  opts.in_channels = 1;
  opts.out_channels = 1;
  opts.kernel = 3;
  Conv2d conv("c", opts, rng);
  EXPECT_THROW(conv.backward(Tensor(Shape{1, 1, 3, 3})), std::logic_error);
}

TEST(Conv2d, EvalForwardDoesNotRetainActivation) {
  // An evaluation pass must not pin the batch-sized input on the layer
  // (at K = 1000 every client evaluates each round): after an eval
  // forward there is nothing cached, so backward refuses to run — and
  // an eval pass wipes whatever an earlier training pass cached.
  Rng rng(31);
  Conv2dOptions opts;
  opts.in_channels = 1;
  opts.out_channels = 2;
  opts.kernel = 3;
  opts.same_padding();
  Conv2d conv("c", opts, rng);
  Tensor x = random_tensor(Shape::of(1, 1, 6, 6), rng);
  conv.forward(x, /*training=*/false);
  EXPECT_THROW(conv.backward(Tensor(Shape{1, 2, 6, 6})), std::logic_error);
  conv.forward(x, /*training=*/true);
  conv.forward(x, /*training=*/false);
  EXPECT_THROW(conv.backward(Tensor(Shape{1, 2, 6, 6})), std::logic_error);
  // A training forward restores the invariant.
  Tensor y = conv.forward(x, /*training=*/true);
  EXPECT_NO_THROW(conv.backward(y));
}

TEST(ConvTranspose2d, EvalForwardDoesNotRetainActivation) {
  Rng rng(32);
  ConvTranspose2dOptions opts;
  opts.in_channels = 2;
  opts.out_channels = 1;
  opts.kernel = 4;
  opts.stride = 2;
  opts.padding = 1;
  ConvTranspose2d deconv("d", opts, rng);
  Tensor x = random_tensor(Shape::of(1, 2, 4, 4), rng);
  deconv.forward(x, /*training=*/false);
  EXPECT_THROW(deconv.backward(Tensor(Shape{1, 1, 8, 8})), std::logic_error);
  Tensor y = deconv.forward(x, /*training=*/true);
  EXPECT_NO_THROW(deconv.backward(y));
}

TEST(Conv2d, ParameterNamesAndShapes) {
  Rng rng(7);
  Conv2dOptions opts;
  opts.in_channels = 3;
  opts.out_channels = 8;
  opts.kernel = 5;
  Conv2d conv("input_conv", opts, rng);
  auto params = conv.parameters();
  ASSERT_EQ(params.size(), 2u);
  EXPECT_EQ(params[0]->name, "input_conv.weight");
  EXPECT_EQ(params[1]->name, "input_conv.bias");
  EXPECT_EQ(params[0]->value.shape(), (Shape{8, 3 * 25}));
  EXPECT_EQ(params[1]->value.shape(), (Shape{8}));
  EXPECT_EQ(conv.num_parameters(), 8 * 75 + 8);
}

TEST(ConvTranspose2d, DoublesSpatialDims) {
  Rng rng(8);
  ConvTranspose2dOptions opts;
  opts.in_channels = 4;
  opts.out_channels = 2;
  opts.kernel = 4;
  opts.stride = 2;
  opts.padding = 1;
  ConvTranspose2d deconv("d", opts, rng);
  Tensor out = deconv.forward(Tensor(Shape{2, 4, 8, 8}), true);
  EXPECT_EQ(out.shape(), (Shape{2, 2, 16, 16}));
}

TEST(ConvTranspose2d, IsAdjointOfConv) {
  // <conv(x), y> == <x, deconv(y)> when deconv's weight equals conv's
  // weight (transposed layout) and biases are zero.
  Rng rng(9);
  const int cin = 2, cout = 3, k = 3, stride = 2, pad = 1;
  Conv2dOptions copts;
  copts.in_channels = cin;
  copts.out_channels = cout;
  copts.kernel = k;
  copts.stride = stride;
  copts.padding = pad;
  copts.bias = false;
  Conv2d conv("c", copts, rng);

  ConvTranspose2dOptions dopts;
  dopts.in_channels = cout;
  dopts.out_channels = cin;
  dopts.kernel = k;
  dopts.stride = stride;
  dopts.padding = pad;
  dopts.bias = false;
  ConvTranspose2d deconv("d", dopts, rng);
  // deconv.weight [cout, cin*k*k] must equal conv.weight [cout, cin*k*k].
  for (Parameter* p : deconv.parameters()) {
    p->value = conv.parameters()[0]->value;
  }

  Tensor x = random_tensor(Shape::of(1, cin, 9, 9), rng);
  Tensor cx = conv.forward(x, true);
  Tensor y = random_tensor(cx.shape(), rng);
  Tensor dy = deconv.forward(y, true);
  ASSERT_EQ(dy.shape(), x.shape());
  EXPECT_NEAR(dot(cx, y), dot(x, dy), 1e-2);
}

TEST(BatchNorm2d, NormalizesBatchStatistics) {
  Rng rng(10);
  BatchNorm2d bn("bn", BatchNorm2dOptions{2});
  Tensor input = random_tensor(Shape::of(4, 2, 8, 8), rng);
  // Shift channel 1 to mean 5.
  for (std::int64_t n = 0; n < 4; ++n) {
    for (std::int64_t i = 0; i < 64; ++i) {
      input.at(n, 1, i / 8, i % 8) += 5.0f;
    }
  }
  Tensor out = bn.forward(input, /*training=*/true);
  // Per-channel output mean ~0, var ~1.
  for (int c = 0; c < 2; ++c) {
    double mean = 0.0, var = 0.0;
    for (std::int64_t n = 0; n < 4; ++n) {
      for (std::int64_t i = 0; i < 64; ++i) {
        mean += out.at(n, c, i / 8, i % 8);
      }
    }
    mean /= 4 * 64;
    for (std::int64_t n = 0; n < 4; ++n) {
      for (std::int64_t i = 0; i < 64; ++i) {
        const double d = out.at(n, c, i / 8, i % 8) - mean;
        var += d * d;
      }
    }
    var /= 4 * 64;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(BatchNorm2d, RunningStatsConvergeToDataStats) {
  Rng rng(11);
  BatchNorm2d bn("bn", BatchNorm2dOptions{1});
  // Feed the same distribution many times: running mean -> 3, var -> 4.
  for (int it = 0; it < 200; ++it) {
    Tensor input(Shape{8, 1, 4, 4});
    for (std::int64_t i = 0; i < input.numel(); ++i) {
      input[i] = static_cast<float>(rng.normal(3.0, 2.0));
    }
    bn.forward(input, /*training=*/true);
  }
  EXPECT_NEAR(bn.running_mean()[0], 3.0f, 0.2f);
  EXPECT_NEAR(bn.running_var()[0], 4.0f, 0.6f);
}

TEST(BatchNorm2d, EvalModeUsesRunningStats) {
  BatchNorm2d bn("bn", BatchNorm2dOptions{1});
  // Fresh BN: running mean 0, var 1 -> eval is near-identity.
  Tensor input(Shape{1, 1, 2, 2}, {1.0f, -1.0f, 0.5f, 2.0f});
  Tensor out = bn.forward(input, /*training=*/false);
  EXPECT_TRUE(allclose(out, input, 1e-3f, 1e-4f));
}

TEST(BatchNorm2d, ExposesBuffers) {
  BatchNorm2d bn("stage1_bn", BatchNorm2dOptions{4});
  auto buffers = bn.buffers();
  ASSERT_EQ(buffers.size(), 2u);
  EXPECT_EQ(buffers[0].name, "stage1_bn.running_mean");
  EXPECT_EQ(buffers[1].name, "stage1_bn.running_var");
  EXPECT_EQ(buffers[0].tensor->shape(), (Shape{4}));
}

TEST(ReLUForward, ClampsNegatives) {
  ReLU relu;
  Tensor input(Shape{1, 1, 1, 4}, {-2.0f, -0.1f, 0.0f, 3.0f});
  Tensor out = relu.forward(input, true);
  EXPECT_FLOAT_EQ(out[0], 0.0f);
  EXPECT_FLOAT_EQ(out[1], 0.0f);
  EXPECT_FLOAT_EQ(out[2], 0.0f);
  EXPECT_FLOAT_EQ(out[3], 3.0f);
}

TEST(SigmoidForward, KnownValues) {
  Sigmoid sig;
  Tensor input(Shape{3}, {0.0f, 100.0f, -100.0f});
  Tensor out = sig.forward(input, true);
  EXPECT_NEAR(out[0], 0.5f, 1e-6f);
  EXPECT_NEAR(out[1], 1.0f, 1e-6f);
  EXPECT_NEAR(out[2], 0.0f, 1e-6f);
}

TEST(MaxPool2d, SelectsWindowMaxima) {
  MaxPool2d pool("p", MaxPool2dOptions{2, 2});
  Tensor input(Shape{1, 1, 2, 4}, {1.0f, 5.0f, 2.0f, 0.0f,  //
                                   3.0f, -1.0f, 8.0f, 4.0f});
  Tensor out = pool.forward(input, true);
  ASSERT_EQ(out.shape(), (Shape{1, 1, 1, 2}));
  EXPECT_FLOAT_EQ(out[0], 5.0f);
  EXPECT_FLOAT_EQ(out[1], 8.0f);
}

TEST(MaxPool2d, BackwardRoutesToArgmax) {
  MaxPool2d pool("p", MaxPool2dOptions{2, 2});
  Tensor input(Shape{1, 1, 2, 2}, {1.0f, 9.0f, 2.0f, 3.0f});
  pool.forward(input, true);
  Tensor g(Shape{1, 1, 1, 1}, {7.0f});
  Tensor dx = pool.backward(g);
  EXPECT_FLOAT_EQ(dx[0], 0.0f);
  EXPECT_FLOAT_EQ(dx[1], 7.0f);
  EXPECT_FLOAT_EQ(dx[2], 0.0f);
  EXPECT_FLOAT_EQ(dx[3], 0.0f);
}

TEST(PixelShuffle, PermutationIsExact) {
  PixelShuffle ps("ps", 2);
  // C_in = 4 -> C_out = 1, H,W = 1 -> 2x2 output laid out from the 4
  // input channels in (dy, dx) order.
  Tensor input(Shape{1, 4, 1, 1}, {10.0f, 11.0f, 12.0f, 13.0f});
  Tensor out = ps.forward(input, true);
  ASSERT_EQ(out.shape(), (Shape{1, 1, 2, 2}));
  EXPECT_FLOAT_EQ(out.at(0, 0, 0, 0), 10.0f);
  EXPECT_FLOAT_EQ(out.at(0, 0, 0, 1), 11.0f);
  EXPECT_FLOAT_EQ(out.at(0, 0, 1, 0), 12.0f);
  EXPECT_FLOAT_EQ(out.at(0, 0, 1, 1), 13.0f);
}

TEST(PixelShuffle, BackwardInvertsForward) {
  Rng rng(12);
  PixelShuffle ps("ps", 2);
  Tensor input = random_tensor(Shape::of(2, 8, 3, 3), rng);
  Tensor out = ps.forward(input, true);
  Tensor back = ps.backward(out);
  EXPECT_TRUE(input.equals(back));
}

TEST(PixelShuffle, RejectsIndivisibleChannels) {
  PixelShuffle ps("ps", 2);
  EXPECT_THROW(ps.forward(Tensor(Shape{1, 3, 2, 2}), true),
               std::invalid_argument);
}

TEST(Sequential, ChainsAndCollectsParameters) {
  Rng rng(13);
  Sequential seq("s");
  Conv2dOptions c1;
  c1.in_channels = 1;
  c1.out_channels = 2;
  c1.kernel = 3;
  c1.same_padding();
  seq.emplace<Conv2d>("a", c1, rng);
  seq.emplace<ReLU>("r");
  Conv2dOptions c2;
  c2.in_channels = 2;
  c2.out_channels = 1;
  c2.kernel = 3;
  c2.same_padding();
  seq.emplace<Conv2d>("b", c2, rng);

  EXPECT_EQ(seq.size(), 3u);
  auto params = seq.parameters();
  ASSERT_EQ(params.size(), 4u);
  EXPECT_EQ(params[0]->name, "a.weight");
  EXPECT_EQ(params[2]->name, "b.weight");

  Tensor out = seq.forward(Tensor(Shape{1, 1, 5, 5}), true);
  EXPECT_EQ(out.shape(), (Shape{1, 1, 5, 5}));
}

TEST(Init, KaimingBoundsRespected) {
  Rng rng(14);
  Tensor w(Shape{1000});
  kaiming_uniform(w, 50, rng);
  const float bound = std::sqrt(6.0f / 50.0f);
  EXPECT_LE(max_value(w), bound);
  EXPECT_GE(min_value(w), -bound);
  // Should actually use the range.
  EXPECT_GT(max_value(w), 0.5f * bound);
}

TEST(Init, XavierAndNormal) {
  Rng rng(15);
  Tensor w(Shape{2000});
  xavier_uniform(w, 30, 70, rng);
  const float bound = std::sqrt(6.0f / 100.0f);
  EXPECT_LE(max_value(w), bound);
  EXPECT_GE(min_value(w), -bound);
  normal_init(w, 0.5f, rng);
  double var = 0.0;
  for (std::int64_t i = 0; i < w.numel(); ++i) var += w[i] * w[i];
  EXPECT_NEAR(var / w.numel(), 0.25, 0.03);
}

TEST(ModuleBase, ZeroGradClearsAccumulation) {
  Rng rng(16);
  Conv2dOptions opts;
  opts.in_channels = 1;
  opts.out_channels = 1;
  opts.kernel = 3;
  opts.same_padding();
  Conv2d conv("c", opts, rng);
  Tensor x = random_tensor(Shape::of(1, 1, 5, 5), rng);
  conv.forward(x, true);
  conv.backward(Tensor::ones(Shape{1, 1, 5, 5}));
  EXPECT_GT(squared_norm(conv.weight().grad), 0.0);
  conv.zero_grad();
  EXPECT_EQ(squared_norm(conv.weight().grad), 0.0);
}

}  // namespace
}  // namespace fleda
