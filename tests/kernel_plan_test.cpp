// Tests for the shape-keyed kernel planner: the packed cache-blocked
// GEMM must agree with the reference kernels to float tolerance over a
// shape sweep (including the degenerate and tail shapes the packing
// zero-pads), the auto plan must be bit-identical across thread-pool
// sizes, the plan cache must count hits/misses/evictions correctly
// under concurrent lookups, and FLEDA_PLAN=reference must make a full
// training step use the historical kernels.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "models/flnet.hpp"
#include "nn/conv2d.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "tensor/matmul.hpp"
#include "tensor/plan.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace fleda {
namespace {

// Restores auto mode even when a test body throws.
struct PlanModeGuard {
  explicit PlanModeGuard(PlanMode mode) { set_plan_mode(mode); }
  ~PlanModeGuard() { set_plan_mode(PlanMode::kAuto); }
};

std::vector<float> random_vec(std::size_t n, Rng& rng) {
  std::vector<float> v(n);
  for (float& x : v) x = static_cast<float>(rng.uniform(-1.0, 1.0));
  return v;
}

// The reference kernels double as the oracle: their agreement with a
// naive triple loop is already covered by tensor_test.
void run_reference(GemmOp op, const float* a, const float* b, float* c,
                   std::int64_t m, std::int64_t k, std::int64_t n,
                   bool accumulate) {
  switch (op) {
    case GemmOp::kNN:
      matmul_reference(a, b, c, m, k, n, accumulate);
      return;
    case GemmOp::kAT:
      matmul_at_reference(a, b, c, m, k, n, accumulate);
      return;
    case GemmOp::kBT:
      matmul_bt_reference(a, b, c, m, k, n, accumulate);
      return;
  }
}

// A packed plan for any shape, bypassing the cost model so the sweep
// can push degenerate shapes (m=1, n=1, k<4 tails) through the packed
// path that the planner would normally route to reference.
GemmPlan forced_packed_plan(GemmOp op, std::int64_t m, std::int64_t k,
                            std::int64_t n) {
  GemmPlan plan = make_gemm_plan(op, m, k, n);
  if (plan.strategy == GemmStrategy::kPacked) return plan;
  plan.strategy = GemmStrategy::kPacked;
  plan.kc = std::min<std::int64_t>(k, 64);
  plan.nc = std::min<std::int64_t>((n + kGemmNR - 1) / kGemmNR * kGemmNR,
                                   8 * kGemmNR);
  plan.mc = std::min<std::int64_t>((m + kGemmMR - 1) / kGemmMR * kGemmMR, 96);
  return plan;
}

float max_abs_diff(const std::vector<float>& a, const std::vector<float>& b) {
  float worst = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::fabs(a[i] - b[i]));
  }
  return worst;
}

TEST(GemmPacked, MatchesReferenceOverShapeSweep) {
  // Odd sizes, k<4 tails, single-row/column degenerates, and fat
  // shapes the cost model itself would pack.
  const struct {
    std::int64_t m, k, n;
  } shapes[] = {{1, 7, 33},   {5, 3, 17},  {4, 16, 16},  {7, 81, 19},
                {64, 162, 64}, {33, 65, 47}, {13, 2, 130}, {96, 100, 1},
                {1, 5184, 64}, {50, 486, 256}};
  Rng rng(7);
  for (GemmOp op : {GemmOp::kNN, GemmOp::kAT, GemmOp::kBT}) {
    for (const auto& s : shapes) {
      for (bool accumulate : {false, true}) {
        std::vector<float> a =
            random_vec(static_cast<std::size_t>(s.m * s.k), rng);
        std::vector<float> b =
            random_vec(static_cast<std::size_t>(s.k * s.n), rng);
        std::vector<float> seed =
            random_vec(static_cast<std::size_t>(s.m * s.n), rng);
        std::vector<float> want = seed;
        std::vector<float> got = seed;
        run_reference(op, a.data(), b.data(), want.data(), s.m, s.k, s.n,
                      accumulate);
        const GemmPlan plan = forced_packed_plan(op, s.m, s.k, s.n);
        gemm_packed(plan, a.data(), b.data(), got.data(), accumulate);
        // Summation-order error grows ~sqrt(k) for fp32 dot products of
        // unit-scale values; 1e-5 is the per-accumulation budget.
        const float tolerance =
            1e-5f * std::max(1.0f, std::sqrt(static_cast<float>(s.k)));
        EXPECT_LE(max_abs_diff(want, got), tolerance)
            << plan.to_string() << " accumulate=" << accumulate;
      }
    }
  }
}

TEST(GemmPacked, PrepackedAMatchesOnTheFlyPacking) {
  Rng rng(11);
  for (GemmOp op : {GemmOp::kNN, GemmOp::kAT}) {
    const std::int64_t m = 37, k = 120, n = 50;
    const GemmPlan plan = forced_packed_plan(op, m, k, n);
    std::vector<float> a = random_vec(static_cast<std::size_t>(m * k), rng);
    std::vector<float> b = random_vec(static_cast<std::size_t>(k * n), rng);
    std::vector<float> direct(static_cast<std::size_t>(m * n), 0.0f);
    std::vector<float> pre(static_cast<std::size_t>(m * n), 0.0f);
    gemm_packed(plan, a.data(), b.data(), direct.data(), false);
    std::vector<float> apack(packed_a_elems(plan));
    pack_a(plan, a.data(), apack.data());
    gemm_packed_prepacked_a(plan, apack.data(), b.data(), pre.data(), false);
    // Same plan, same packing layout: identical summation order, so the
    // two paths must agree bit for bit.
    EXPECT_EQ(0, std::memcmp(direct.data(), pre.data(),
                             pre.size() * sizeof(float)))
        << plan.to_string();
  }
}

TEST(GemmPacked, BitIdenticalAcrossThreadPoolSizes) {
  Rng rng(13);
  const std::int64_t m = 64, k = 162, n = 256;  // cost model picks packed
  std::vector<float> a = random_vec(static_cast<std::size_t>(m * k), rng);
  std::vector<float> b = random_vec(static_cast<std::size_t>(k * n), rng);
  ASSERT_EQ(make_gemm_plan(GemmOp::kNN, m, k, n).strategy,
            GemmStrategy::kPacked);
  std::vector<std::vector<float>> results;
  for (std::size_t threads : {1u, 2u, 8u}) {
    ThreadPool::reset_global(threads);
    std::vector<float> c(static_cast<std::size_t>(m * n), 0.0f);
    matmul(a.data(), b.data(), c.data(), m, k, n);
    results.push_back(std::move(c));
  }
  ThreadPool::reset_global(0);
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(0, std::memcmp(results[0].data(), results[i].data(),
                             results[0].size() * sizeof(float)))
        << "pool size index " << i;
  }
}

TEST(GemmPacked, ConvForwardBackwardBitIdenticalAcrossPoolSizes) {
  // End to end through Conv2d: the planner picks packed for this shape
  // and the fixed MR row partition + fixed dW slices must keep both
  // directions bit-identical whatever the pool size.
  Conv2dOptions opts;
  opts.in_channels = 2;
  opts.out_channels = 64;
  opts.kernel = 9;
  opts.same_padding();
  std::vector<Tensor> weights, grads;
  for (std::size_t threads : {1u, 2u, 8u}) {
    ThreadPool::reset_global(threads);
    Rng rng(21);
    Conv2d conv("c", opts, rng);
    Tensor x(Shape::of(2, 2, 16, 16));
    for (std::int64_t i = 0; i < x.numel(); ++i) {
      x[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
    }
    Tensor y = conv.forward(x, true);
    conv.backward(y);  // any upstream grad works; y is deterministic
    weights.push_back(y);
    grads.push_back(conv.weight().grad);
  }
  ThreadPool::reset_global(0);
  for (std::size_t i = 1; i < weights.size(); ++i) {
    EXPECT_EQ(0, std::memcmp(weights[0].data(), weights[i].data(),
                             static_cast<std::size_t>(weights[0].numel()) *
                                 sizeof(float)));
    EXPECT_EQ(0, std::memcmp(grads[0].data(), grads[i].data(),
                             static_cast<std::size_t>(grads[0].numel()) *
                                 sizeof(float)));
  }
}

TEST(CostModel, SkinnyShapesStayOnReference) {
  // Vector-matrix products, tiny tails, and single-output-channel
  // convs (FLNet's output conv has m=1) must not pay for packing.
  EXPECT_EQ(make_gemm_plan(GemmOp::kNN, 1, 5184, 4096).strategy,
            GemmStrategy::kReference);
  EXPECT_EQ(make_gemm_plan(GemmOp::kNN, 4, 3, 4).strategy,
            GemmStrategy::kReference);
  EXPECT_EQ(make_gemm_plan(GemmOp::kBT, 64, 8, 64).strategy,
            GemmStrategy::kReference);
}

TEST(CostModel, FatShapesPackWithSaneBlocking) {
  for (const GemmPlan& plan :
       {make_gemm_plan(GemmOp::kNN, 64, 486, 1024),
        make_gemm_plan(GemmOp::kAT, 486, 64, 1024),
        make_gemm_plan(GemmOp::kBT, 64, 1024, 486)}) {
    EXPECT_EQ(plan.strategy, GemmStrategy::kPacked) << plan.to_string();
    EXPECT_GE(plan.kc, 8) << plan.to_string();
    EXPECT_LE(plan.kc, plan.shape.k) << plan.to_string();
    EXPECT_EQ(plan.nc % kGemmNR, 0) << plan.to_string();
    EXPECT_EQ(plan.mc % kGemmMR, 0) << plan.to_string();
  }
}

TEST(KernelPlanCache, CountsHitsMissesAndEntries) {
  KernelPlanCache cache(/*capacity_per_shard=*/4);
  const GemmPlan first = cache.plan_for(GemmOp::kNN, 64, 486, 1024);
  EXPECT_EQ(first.strategy, GemmStrategy::kPacked);
  PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.entries, 1u);
  for (int i = 0; i < 5; ++i) {
    const GemmPlan again = cache.plan_for(GemmOp::kNN, 64, 486, 1024);
    EXPECT_EQ(again.strategy, first.strategy);
    EXPECT_EQ(again.kc, first.kc);
  }
  stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 5u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(KernelPlanCache, EvictsOldestBeyondCapacity) {
  KernelPlanCache cache(/*capacity_per_shard=*/1);
  // 32 distinct shapes over 8 shards of capacity 1: at most 8 survive.
  for (std::int64_t i = 0; i < 32; ++i) {
    cache.plan_for(GemmOp::kNN, 8 + i, 64, 64);
  }
  const PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 32u);
  EXPECT_LE(stats.entries, 8u);
  EXPECT_EQ(stats.evictions, 32u - stats.entries);
  // An evicted shape replans: still correct, counted as a fresh miss.
  const GemmPlan replanned = cache.plan_for(GemmOp::kNN, 8, 64, 64);
  EXPECT_EQ(replanned.shape.m, 8);
}

TEST(KernelPlanCache, ClearInvalidatesThreadLocalMemo) {
  KernelPlanCache cache;
  cache.plan_for(GemmOp::kNN, 64, 486, 1024);
  cache.plan_for(GemmOp::kNN, 64, 486, 1024);  // memo hit
  EXPECT_EQ(cache.stats().hits, 1u);
  cache.clear();
  PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.entries, 0u);
  // The stale memo entry must not satisfy this lookup.
  cache.plan_for(GemmOp::kNN, 64, 486, 1024);
  stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 0u);
}

TEST(KernelPlanCache, ConcurrentLookupsAgreeAndCountEveryCall) {
  ThreadPool::reset_global(8);
  KernelPlanCache cache;
  const std::size_t iterations = 2048;
  std::atomic<int> bad{0};
  parallel_for(iterations, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      // Four shapes cycling per index: every thread hammers the same
      // shard entries it shares with the others.
      const std::int64_t m = 16 << (i % 4);
      const GemmPlan plan = cache.plan_for(GemmOp::kNN, m, 486, 1024);
      const GemmPlan want = make_gemm_plan(GemmOp::kNN, m, 486, 1024);
      if (plan.strategy != want.strategy || plan.kc != want.kc ||
          plan.nc != want.nc || plan.mc != want.mc) {
        bad.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  ThreadPool::reset_global(0);
  EXPECT_EQ(bad.load(), 0);
  const PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, iterations);
  EXPECT_EQ(stats.entries, 4u);
  // Racing first lookups may each count a miss; the cache still holds
  // one entry per shape.
  EXPECT_GE(stats.misses, 4u);
}

TEST(PlanMode, ReferenceModeBypassesCacheAndMatchesReferenceBits) {
  PlanModeGuard guard(PlanMode::kReference);
  const PlanCacheStats before = KernelPlanCache::global().stats();
  Rng rng(31);
  const std::int64_t m = 64, k = 486, n = 256;
  std::vector<float> a = random_vec(static_cast<std::size_t>(m * k), rng);
  std::vector<float> b = random_vec(static_cast<std::size_t>(k * n), rng);
  std::vector<float> via_dispatch(static_cast<std::size_t>(m * n), 0.0f);
  std::vector<float> direct(static_cast<std::size_t>(m * n), 0.0f);
  matmul(a.data(), b.data(), via_dispatch.data(), m, k, n);
  matmul_reference(a.data(), b.data(), direct.data(), m, k, n, false);
  EXPECT_EQ(0, std::memcmp(via_dispatch.data(), direct.data(),
                           direct.size() * sizeof(float)));
  const PlanCacheStats after = KernelPlanCache::global().stats();
  EXPECT_EQ(before.hits + before.misses, after.hits + after.misses);
}

// One optimizer step on FLNet under both plan modes: the packed and
// reference kernels follow different summation orders, so the updated
// parameters agree to float tolerance, not bitwise.
TEST(PlanMode, TrainingStepEquivalentUnderBothModes) {
  auto step = [](PlanMode mode) {
    PlanModeGuard guard(mode);
    Rng rng(41);
    FLNetOptions opts;
    opts.in_channels = 2;
    FLNet model(opts, rng);
    Tensor x(Shape::of(2, 2, 16, 16));
    Tensor target(Shape::of(2, 1, 16, 16));
    for (std::int64_t i = 0; i < x.numel(); ++i) {
      x[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
    }
    for (std::int64_t i = 0; i < target.numel(); ++i) {
      target[i] = static_cast<float>(rng.uniform(0.0, 1.0));
    }
    Adam adam(model.parameters(), AdamOptions{});
    adam.zero_grad();
    LossResult loss = mse_loss(model.forward(x, true), target);
    model.backward(loss.grad);
    adam.step();
    std::vector<float> flat;
    for (Parameter* p : model.parameters()) {
      for (std::int64_t i = 0; i < p->value.numel(); ++i) {
        flat.push_back(p->value[i]);
      }
    }
    return flat;
  };
  const std::vector<float> with_auto = step(PlanMode::kAuto);
  const std::vector<float> with_reference = step(PlanMode::kReference);
  ASSERT_EQ(with_auto.size(), with_reference.size());
  EXPECT_LE(max_abs_diff(with_auto, with_reference), 1e-4f);
}

TEST(GemmPacked, PropagatesNonFiniteValues) {
  // 0 * NaN = NaN in both strategies: a poisoned B must poison C even
  // when the matching A entries are zero (the old axpy1 shortcut
  // skipped the whole row).
  const std::int64_t m = 8, k = 5, n = 33;  // k=5 exercises the k<4 tail
  std::vector<float> a(static_cast<std::size_t>(m * k), 0.0f);
  std::vector<float> b(static_cast<std::size_t>(k * n), 1.0f);
  b[static_cast<std::size_t>(4 * n) + 7] = std::nanf("");  // tail row
  std::vector<float> c_ref(static_cast<std::size_t>(m * n), 0.0f);
  matmul_reference(a.data(), b.data(), c_ref.data(), m, k, n, false);
  std::vector<float> c_packed(static_cast<std::size_t>(m * n), 0.0f);
  gemm_packed(forced_packed_plan(GemmOp::kNN, m, k, n), a.data(), b.data(),
              c_packed.data(), false);
  for (std::int64_t i = 0; i < m; ++i) {
    EXPECT_TRUE(std::isnan(c_ref[static_cast<std::size_t>(i * n) + 7]))
        << "reference row " << i;
    EXPECT_TRUE(std::isnan(c_packed[static_cast<std::size_t>(i * n) + 7]))
        << "packed row " << i;
  }
}

}  // namespace
}  // namespace fleda
