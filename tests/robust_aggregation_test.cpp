// Robustness-layer tests: the robust AggregationRule family
// (coordinate median, trimmed mean, norm-clipped mean), the
// AggregationRegistry name round-trips, the per-update finiteness
// guard (a NaN update must fail loudly, naming its sender), the
// Byzantine client behaviors (sign-flip / scaled / Gaussian-noise
// attackers break weighted_average but not the rank-based rules at
// f < 50%), attack-free determinism across thread-pool sizes, and the
// UniformSample non-positive-size rejection.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "fl/aggregation.hpp"
#include "fl/alpha_sync.hpp"
#include "fl/async_fedavg.hpp"
#include "fl/fedavg.hpp"
#include "fl/participation.hpp"
#include "fl/server.hpp"
#include "fl/synthetic.hpp"
#include "sim/profile.hpp"
#include "util/thread_pool.hpp"

namespace fleda {
namespace {

// A one-entry (plus one buffer) snapshot with hand-picked values —
// small enough that every rule's math is checkable by eye.
ModelParameters make_params(const std::vector<float>& weights_values,
                            float buffer_value = 0.0f) {
  ModelParameters p;
  ParameterEntry w;
  w.name = "w";
  w.value = Tensor(Shape{static_cast<std::int64_t>(weights_values.size())});
  for (std::size_t i = 0; i < weights_values.size(); ++i) {
    w.value[static_cast<std::int64_t>(i)] = weights_values[i];
  }
  p.mutable_entries().push_back(std::move(w));
  ParameterEntry b;
  b.name = "bn";
  b.is_buffer = true;
  b.value = Tensor(Shape{1});
  b.value[0] = buffer_value;
  p.mutable_entries().push_back(std::move(b));
  return p;
}

const float* values_of(const ModelParameters& p) {
  return p.entries()[0].value.data();
}

bool bit_identical(const ModelParameters& a, const ModelParameters& b) {
  if (!a.structurally_equal(b)) return false;
  for (std::size_t n = 0; n < a.entries().size(); ++n) {
    if (!a.entries()[n].value.equals(b.entries()[n].value)) return false;
  }
  return true;
}

// --- rule math -------------------------------------------------------

TEST(CoordinateMedian, OddCohortPicksTheMiddleValuePerCoordinate) {
  const ModelParameters a = make_params({1.0f, 10.0f, -5.0f}, 1.0f);
  const ModelParameters b = make_params({2.0f, 20.0f, 0.0f}, 2.0f);
  const ModelParameters c = make_params({3.0f, 30.0f, 1e6f}, 3.0f);
  const ModelParameters m = CoordinateMedian().aggregate(
      ModelParameters{}, {{&a, 1.0, 0}, {&b, 1.0, 0}, {&c, 1.0, 0}});
  EXPECT_FLOAT_EQ(values_of(m)[0], 2.0f);
  EXPECT_FLOAT_EQ(values_of(m)[1], 20.0f);
  EXPECT_FLOAT_EQ(values_of(m)[2], 0.0f);  // the 1e6 outlier is ignored
  EXPECT_FLOAT_EQ(m.entries()[1].value[0], 2.0f);  // buffers too
}

TEST(CoordinateMedian, EvenCohortAveragesTheTwoMiddleValues) {
  const ModelParameters a = make_params({1.0f});
  const ModelParameters b = make_params({2.0f});
  const ModelParameters c = make_params({4.0f});
  const ModelParameters d = make_params({100.0f});
  const ModelParameters m = CoordinateMedian().aggregate(
      ModelParameters{},
      {{&a, 1.0, 0}, {&b, 1.0, 0}, {&c, 1.0, 0}, {&d, 1.0, 0}});
  EXPECT_FLOAT_EQ(values_of(m)[0], 3.0f);
}

TEST(CoordinateMedian, IsUnweightedAndOrderIndependent) {
  const ModelParameters a = make_params({1.0f});
  const ModelParameters b = make_params({2.0f});
  const ModelParameters c = make_params({50.0f});
  // A huge sample count on the outlier must not move the median.
  const ModelParameters m1 = CoordinateMedian().aggregate(
      ModelParameters{}, {{&a, 1.0, 0}, {&b, 1.0, 0}, {&c, 1e9, 0}});
  const ModelParameters m2 = CoordinateMedian().aggregate(
      ModelParameters{}, {{&c, 1e9, 0}, {&b, 1.0, 0}, {&a, 1.0, 0}});
  EXPECT_FLOAT_EQ(values_of(m1)[0], 2.0f);
  EXPECT_TRUE(bit_identical(m1, m2));
}

TEST(TrimmedMean, DropsTheTailsAndAveragesTheRest) {
  const ModelParameters a = make_params({-1000.0f});
  const ModelParameters b = make_params({1.0f});
  const ModelParameters c = make_params({2.0f});
  const ModelParameters d = make_params({3.0f});
  const ModelParameters e = make_params({1000.0f});
  // n = 5, trim 0.2 -> g = 1: both poisoned extremes are dropped.
  const ModelParameters m = TrimmedMean(0.2).aggregate(
      ModelParameters{}, {{&a, 1.0, 0},
                          {&b, 1.0, 0},
                          {&c, 1.0, 0},
                          {&d, 1.0, 0},
                          {&e, 1.0, 0}});
  EXPECT_FLOAT_EQ(values_of(m)[0], 2.0f);
}

TEST(TrimmedMean, ZeroFractionIsThePlainUnweightedMean) {
  const ModelParameters a = make_params({1.0f});
  const ModelParameters b = make_params({5.0f});
  const ModelParameters m = TrimmedMean(0.0).aggregate(
      ModelParameters{}, {{&a, 1.0, 0}, {&b, 1.0, 0}});
  EXPECT_FLOAT_EQ(values_of(m)[0], 3.0f);
}

TEST(TrimmedMean, ConstructorRejectsBadFractions) {
  EXPECT_THROW(TrimmedMean(-0.1), std::invalid_argument);
  EXPECT_THROW(TrimmedMean(0.5), std::invalid_argument);
  EXPECT_THROW(TrimmedMean(std::numeric_limits<double>::quiet_NaN()),
               std::invalid_argument);
  EXPECT_NO_THROW(TrimmedMean(0.49));
}

TEST(NormClippedMean, ClipsEachDeltaToTheNormBudget) {
  const ModelParameters current = make_params({0.0f, 0.0f});
  // Honest delta of norm 1, poisoned delta of norm 100.
  const ModelParameters honest = make_params({1.0f, 0.0f});
  const ModelParameters poisoned = make_params({0.0f, 100.0f});
  const ModelParameters m = NormClippedMean(1.0).aggregate(
      current, {{&honest, 1.0, 0}, {&poisoned, 1.0, 0}});
  // Both deltas end up with norm <= 1; equal weights halve them.
  EXPECT_NEAR(values_of(m)[0], 0.5f, 1e-6);
  EXPECT_NEAR(values_of(m)[1], 0.5f, 1e-6);  // 100 clipped down to 1
}

TEST(NormClippedMean, ConstructorAndEmptyCurrentAreRejected) {
  EXPECT_THROW(NormClippedMean(0.0), std::invalid_argument);
  EXPECT_THROW(NormClippedMean(-1.0), std::invalid_argument);
  EXPECT_THROW(NormClippedMean(std::numeric_limits<double>::infinity()),
               std::invalid_argument);
  const ModelParameters u = make_params({1.0f});
  try {
    NormClippedMean(1.0).aggregate(ModelParameters{}, {{&u, 1.0, 0}});
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("current"), std::string::npos)
        << e.what();
  }
}

// --- guards ----------------------------------------------------------

TEST(AggregationGuards, EveryRuleRefusesAnEmptyCohort) {
  for (const std::string& name : AggregationRegistry::global().names()) {
    const auto rule = AggregationRegistry::global().create(name);
    try {
      rule->aggregate(make_params({1.0f}), {});
      FAIL() << name << ": expected invalid_argument";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("empty cohort"), std::string::npos)
          << name << ": " << e.what();
    }
  }
}

TEST(AggregationGuards, NaNUpdateFailsLoudlyNamingTheClient) {
  const ModelParameters good = make_params({1.0f});
  const ModelParameters bad =
      make_params({std::numeric_limits<float>::quiet_NaN()});
  for (const std::string& name : AggregationRegistry::global().names()) {
    const auto rule = AggregationRegistry::global().create(name);
    try {
      rule->aggregate(make_params({0.0f}),
                      {{&good, 1.0, 0, 3}, {&bad, 1.0, 0, 7}});
      FAIL() << name << ": expected invalid_argument";
    } catch (const std::invalid_argument& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("client 7"), std::string::npos)
          << name << ": " << what;
      EXPECT_NE(what.find("non-finite"), std::string::npos)
          << name << ": " << what;
    }
  }
}

TEST(AggregationGuards, InfUpdateAndUnlabeledInputsAlsoFail) {
  const ModelParameters inf =
      make_params({std::numeric_limits<float>::infinity()});
  try {
    WeightedAverage().aggregate(ModelParameters{}, {{&inf, 1.0, 0}});
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    // Unlabeled input: the error names the cohort position instead.
    EXPECT_NE(std::string(e.what()).find("cohort update #0"),
              std::string::npos)
        << e.what();
  }
}

TEST(AggregationGuards, ServerFacadeLabelsClientsFromTheCohort) {
  const std::vector<ModelParameters> updates = {
      make_params({1.0f}),
      make_params({std::numeric_limits<float>::quiet_NaN()})};
  const std::vector<double> weights = {1.0, 1.0};
  const WeightedAverage rule;
  try {
    Server::aggregate(rule, ModelParameters{}, updates, weights, {4, 42});
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("client 42"), std::string::npos)
        << e.what();
  }
}

// --- registry --------------------------------------------------------

TEST(AggregationRegistryTest, BuiltinsRoundTripByName) {
  auto& registry = AggregationRegistry::global();
  const std::vector<std::string> expected = {
      "coordinate_median", "krum", "multi_krum", "norm_clipped_mean",
      "staleness_mix", "trimmed_mean", "weighted_average"};
  EXPECT_EQ(registry.names(), expected);  // names() is sorted

  AggregationConfig config;
  for (const std::string& name : expected) {
    EXPECT_TRUE(registry.contains(name));
    config.rule = name;
    const auto rule = make_aggregation_rule(config);
    ASSERT_NE(rule, nullptr);
    EXPECT_EQ(rule->name(), name);
    EXPECT_EQ(rule->folds_into_current(), name == "staleness_mix");
  }
}

TEST(AggregationRegistryTest, ConfigKnobsReachTheFactories) {
  AggregationConfig config;
  config.rule = "trimmed_mean";
  config.trim_fraction = 0.25;
  const auto trimmed = make_aggregation_rule(config);
  EXPECT_DOUBLE_EQ(
      static_cast<const TrimmedMean&>(*trimmed).trim_fraction(), 0.25);
  config.rule = "norm_clipped_mean";
  config.clip_norm = 3.5;
  const auto clipped = make_aggregation_rule(config);
  EXPECT_DOUBLE_EQ(
      static_cast<const NormClippedMean&>(*clipped).clip_norm(), 3.5);
}

TEST(AggregationRegistryTest, UnknownNameListsWhatIsRegistered) {
  try {
    AggregationRegistry::global().create("bulyan");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown rule 'bulyan'"), std::string::npos) << what;
    EXPECT_NE(what.find("coordinate_median"), std::string::npos) << what;
  }
  EXPECT_THROW(make_aggregation_rule(AggregationConfig{}),
               std::invalid_argument);  // empty name
}

TEST(AggregationRegistryTest, DuplicateAndEmptyRegistrationsAreRejected) {
  auto& registry = AggregationRegistry::global();
  EXPECT_THROW(registry.add("weighted_average",
                            [](const AggregationConfig&) {
                              return std::make_unique<WeightedAverage>();
                            }),
               std::invalid_argument);
  EXPECT_THROW(registry.add("", [](const AggregationConfig&) {
                 return std::make_unique<WeightedAverage>();
               }),
               std::invalid_argument);
  EXPECT_THROW(registry.add("null_rule", AggregationRegistry::Factory{}),
               std::invalid_argument);
}

// --- Byzantine behaviors --------------------------------------------

TEST(Attacks, SignFlipAndScaledTransformTheDeltaExactly) {
  const ModelParameters reference = make_params({1.0f, 2.0f});
  const ModelParameters update = make_params({2.0f, 4.0f});  // delta {1, 2}

  AttackSpec flip;
  flip.kind = AttackKind::kSignFlip;
  flip.scale = 3.0;
  const ModelParameters flipped =
      apply_attack(flip, update, reference, /*client=*/0, /*nonce=*/0);
  EXPECT_FLOAT_EQ(values_of(flipped)[0], -2.0f);  // 1 - 3*1
  EXPECT_FLOAT_EQ(values_of(flipped)[1], -4.0f);  // 2 - 3*2

  AttackSpec scaled;
  scaled.kind = AttackKind::kScaled;
  scaled.scale = 5.0;
  const ModelParameters magnified =
      apply_attack(scaled, update, reference, 0, 0);
  EXPECT_FLOAT_EQ(values_of(magnified)[0], 6.0f);   // 1 + 5*1
  EXPECT_FLOAT_EQ(values_of(magnified)[1], 12.0f);  // 2 + 5*2
}

TEST(Attacks, GaussianNoiseIsDeterministicPerClientAndNonce) {
  const ModelParameters reference = make_params({0.0f, 0.0f});
  const ModelParameters update = make_params({1.0f, 1.0f});
  AttackSpec noise;
  noise.kind = AttackKind::kGaussianNoise;
  noise.noise_stddev = 0.5;

  const ModelParameters a = apply_attack(noise, update, reference, 1, 2);
  const ModelParameters replay = apply_attack(noise, update, reference, 1, 2);
  const ModelParameters other_client =
      apply_attack(noise, update, reference, 2, 2);
  const ModelParameters other_nonce =
      apply_attack(noise, update, reference, 1, 3);
  EXPECT_TRUE(bit_identical(a, replay));
  EXPECT_FALSE(bit_identical(a, other_client));
  EXPECT_FALSE(bit_identical(a, other_nonce));
  EXPECT_FALSE(bit_identical(a, update));
}

TEST(Attacks, NoneIsIdentityAndBadSpecsAreRejected) {
  const ModelParameters reference = make_params({0.0f});
  const ModelParameters update = make_params({1.0f});
  EXPECT_TRUE(bit_identical(
      apply_attack(AttackSpec{}, update, reference, 0, 0), update));

  AttackSpec bad;
  bad.kind = AttackKind::kScaled;
  bad.scale = std::numeric_limits<double>::infinity();
  EXPECT_THROW(apply_attack(bad, update, reference, 0, 0),
               std::invalid_argument);
  bad.kind = AttackKind::kGaussianNoise;
  bad.scale = 1.0;
  bad.noise_stddev = -1.0;
  EXPECT_THROW(apply_attack(bad, update, reference, 0, 0),
               std::invalid_argument);
}

TEST(Attacks, AttackerScenarioSpreadsEvenlyAndValidates) {
  AttackSpec spec;
  spec.kind = AttackKind::kSignFlip;
  const SimConfig config = SimConfig::with_attackers(10, 2, spec);
  int count = 0;
  for (const ClientProfile& p : config.profiles) {
    if (p.attack.kind != AttackKind::kNone) ++count;
  }
  EXPECT_EQ(count, 2);
  EXPECT_EQ(config.profiles[0].attack.kind, AttackKind::kSignFlip);
  EXPECT_EQ(config.profiles[5].attack.kind, AttackKind::kSignFlip);
  SimConfig small = SimConfig::uniform(3);
  EXPECT_THROW(add_attackers(small, 4, spec), std::invalid_argument);
}

// --- end-to-end robustness ------------------------------------------

FLRunOptions tiny_options(int rounds) {
  FLRunOptions opts;
  opts.rounds = rounds;
  opts.client.steps = 4;
  opts.client.batch_size = 2;
  opts.client.learning_rate = 5e-3;
  opts.client.mu = 0.0;
  opts.seed = 7;
  return opts;
}

SyntheticWorldOptions nine_clients() {
  SyntheticWorldOptions options;
  options.num_clients = 9;
  return options;
}

// Final global model of a FedAvg run over 9 synthetic clients with
// `attackers` Byzantine members (f = attackers/9) under `rule`.
ModelParameters run_nine(const std::string& rule, std::size_t attackers,
                         const AttackSpec& attack) {
  SyntheticWorld w = make_synthetic_world(61, nine_clients());
  FLRunOptions opts = tiny_options(4);
  opts.aggregation.rule = rule;
  opts.aggregation.trim_fraction = 0.34;  // g = 3 of 9: covers f = 1/3
  opts.aggregation.clip_norm = 0.05;
  opts.sim = SimConfig::uniform(9);
  if (attackers > 0) add_attackers(opts.sim, attackers, attack);
  FedAvg algo;
  return algo.run(w.clients, w.factory, opts).front();
}

void expect_robust_rules_track_clean(const AttackSpec& attack) {
  const ModelParameters clean = run_nine("", 0, {});
  const double wa = run_nine("", 3, attack).squared_distance(clean);
  const double median =
      run_nine("coordinate_median", 3, attack).squared_distance(clean);
  const double trimmed =
      run_nine("trimmed_mean", 3, attack).squared_distance(clean);
  // 3 of 9 attackers: the rank-based rules stay near the attack-free
  // trajectory, the plain average is dragged far off it.
  EXPECT_LT(median, wa / 4.0) << to_string(attack.kind);
  EXPECT_LT(trimmed, wa / 4.0) << to_string(attack.kind);
}

TEST(ByzantineRuns, SignFlipBreaksWeightedAverageButNotRobustRules) {
  AttackSpec attack;
  attack.kind = AttackKind::kSignFlip;
  attack.scale = 10.0;
  expect_robust_rules_track_clean(attack);
}

TEST(ByzantineRuns, ScaledAttackBreaksWeightedAverageButNotRobustRules) {
  AttackSpec attack;
  attack.kind = AttackKind::kScaled;
  attack.scale = 50.0;
  expect_robust_rules_track_clean(attack);
}

TEST(ByzantineRuns, NoiseAttackBreaksWeightedAverageButNotRobustRules) {
  AttackSpec attack;
  attack.kind = AttackKind::kGaussianNoise;
  attack.noise_stddev = 5.0;
  expect_robust_rules_track_clean(attack);
}

TEST(ByzantineRuns, NormClippedMeanBoundsAScaledAttackersPull) {
  AttackSpec attack;
  attack.kind = AttackKind::kScaled;
  attack.scale = 50.0;
  const ModelParameters clean = run_nine("", 0, {});
  const double wa = run_nine("", 3, attack).squared_distance(clean);
  const double clipped =
      run_nine("norm_clipped_mean", 3, attack).squared_distance(clean);
  EXPECT_LT(clipped, wa / 4.0);
}

TEST(ByzantineRuns, AttackFreeRobustRulesAreDeterministicAcrossPools) {
  for (const std::string& rule :
       {std::string("coordinate_median"), std::string("trimmed_mean"),
        std::string("norm_clipped_mean")}) {
    std::vector<ModelParameters> finals;
    for (std::size_t threads : {std::size_t{1}, std::size_t{2},
                                std::size_t{8}}) {
      ThreadPool::reset_global(threads);
      finals.push_back(run_nine(rule, 0, {}));
    }
    ThreadPool::reset_global(0);
    EXPECT_TRUE(bit_identical(finals[0], finals[1])) << rule;
    EXPECT_TRUE(bit_identical(finals[0], finals[2])) << rule;
  }
}

TEST(ByzantineRuns, AttackedRunsAreDeterministicAcrossPools) {
  // The noise attack forks its own per-(client, nonce) streams, so
  // even a poisoned run replays bit-identically at any pool size.
  AttackSpec attack;
  attack.kind = AttackKind::kGaussianNoise;
  attack.noise_stddev = 1.0;
  std::vector<ModelParameters> finals;
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    ThreadPool::reset_global(threads);
    finals.push_back(run_nine("coordinate_median", 3, attack));
  }
  ThreadPool::reset_global(0);
  EXPECT_TRUE(bit_identical(finals[0], finals[1]));
}

TEST(ByzantineRuns, AsyncFedAvgSwapsItsRuleByName) {
  AttackSpec attack;
  attack.kind = AttackKind::kSignFlip;
  attack.scale = 10.0;
  auto run_async = [&](const std::string& rule, std::size_t attackers) {
    SyntheticWorld w = make_synthetic_world(62, nine_clients());
    FLRunOptions opts = tiny_options(6);
    opts.aggregation.rule = rule;
    opts.sim = SimConfig::uniform(9);
    if (attackers > 0) add_attackers(opts.sim, attackers, attack);
    AsyncConfig config;
    config.buffer_size = 3;
    AsyncFedAvg algo(config);
    return algo.run(w.clients, w.factory, opts).front();
  };
  const ModelParameters clean = run_async("", 0);
  const ModelParameters clean_median = run_async("coordinate_median", 0);
  const double wa = run_async("", 3).squared_distance(clean);
  const double median =
      run_async("coordinate_median", 3).squared_distance(clean);
  // The robust rule stays closer to the attack-free trajectory than
  // the default staleness mix under the same attack, and attack-free
  // runs under it stay finite and deterministic.
  EXPECT_LT(median, wa);
  EXPECT_TRUE(std::isfinite(clean_median.squared_l2_norm()));
  EXPECT_TRUE(bit_identical(clean_median, run_async("coordinate_median", 0)));
}

TEST(ByzantineRuns, SyncLoopsRejectDeltaMixingRules) {
  // staleness_mix treats its cohort as deltas; fed a sync barrier's
  // full-parameter updates it would compound the model geometrically,
  // so the sync path must refuse it up front.
  SyntheticWorld w = make_synthetic_world(63, nine_clients());
  FLRunOptions opts = tiny_options(1);
  opts.aggregation.rule = "staleness_mix";
  FedAvg algo;
  try {
    algo.run(w.clients, w.factory, opts);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("staleness_mix"), std::string::npos) << what;
    EXPECT_NE(what.find("AsyncFedAvg"), std::string::npos) << what;
  }
}

TEST(ByzantineRuns, AlphaSyncUsesTheRuleForItsPeerConsensus) {
  AttackSpec attack;
  attack.kind = AttackKind::kSignFlip;
  attack.scale = 10.0;
  auto run_alpha = [&](const std::string& rule, std::size_t attackers) {
    SyntheticWorld w = make_synthetic_world(64, nine_clients());
    FLRunOptions opts = tiny_options(3);
    opts.aggregation.rule = rule;
    opts.sim = SimConfig::uniform(9);
    if (attackers > 0) add_attackers(opts.sim, attackers, attack);
    AlphaPortionSync algo(0.5);
    return algo.run(w.clients, w.factory, opts);
  };
  const std::vector<ModelParameters> clean = run_alpha("", 0);
  const std::vector<ModelParameters> wa = run_alpha("", 3);
  const std::vector<ModelParameters> median = run_alpha("coordinate_median", 3);
  // The rule robustifies the (1 - alpha) PEER share, so the meaningful
  // metric is the honest members' personalized models (an attacker's
  // own model keeps its alpha share of poison under any rule).
  // Attackers sit at 0/3/6 (evenly spread over 9).
  double wa_dist = 0.0, median_dist = 0.0;
  for (std::size_t k = 0; k < clean.size(); ++k) {
    if (k % 3 == 0) continue;
    wa_dist += wa[k].squared_distance(clean[k]);
    median_dist += median[k].squared_distance(clean[k]);
  }
  EXPECT_LT(median_dist, wa_dist / 4.0);

  // A poisoned update hits alpha-sync's own finiteness guard too: an
  // attacker scaled to overflow float must fail loudly, not mix in.
  AttackSpec overflow;
  overflow.kind = AttackKind::kScaled;
  overflow.scale = 1e38;  // drives float parameters to Inf/NaN
  SyntheticWorld w = make_synthetic_world(64, nine_clients());
  FLRunOptions opts = tiny_options(2);
  opts.sim = SimConfig::with_attackers(9, 1, overflow);
  AlphaPortionSync algo(0.5);
  try {
    algo.run(w.clients, w.factory, opts);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("non-finite"), std::string::npos)
        << e.what();
  }
}

// --- participation guard (satellite) --------------------------------

TEST(UniformSampleGuard, NonPositiveSampleSizesAreRejected) {
  EXPECT_THROW(UniformSample(0), std::invalid_argument);
  EXPECT_THROW(UniformSample(-3), std::invalid_argument);
  ParticipationConfig config;
  config.kind = ParticipationKind::kUniformSample;
  config.sample_size = 0;
  EXPECT_THROW(make_participation_policy(config), std::invalid_argument);
  // >= num_clients still degenerates to documented full participation.
  UniformSample policy(10);
  ParticipationContext ctx;
  ctx.num_clients = 4;
  EXPECT_EQ(policy.select(ctx).size(), 4u);
}

}  // namespace
}  // namespace fleda
