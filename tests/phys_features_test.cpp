// Tests for the heuristic feature maps (RUDY, pin density, fly lines,
// cell density, blockage) and the assembled FeatureSample: shape and
// range contracts, conservation properties, and the key learnability
// property that RUDY correlates with actual routed demand while being
// computed without the router.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "metrics/stats.hpp"
#include "phys/features.hpp"
#include "phys/global_router.hpp"
#include "phys/netlist.hpp"
#include "phys/placer.hpp"
#include "phys/rudy.hpp"
#include "tensor/ops.hpp"

namespace fleda {
namespace {

struct World {
  NetlistPtr netlist;
  Placement placement;
  RoutingResult routing;
};

World make_world(BenchmarkSuite suite, std::uint64_t seed) {
  NetlistGenParams p;
  p.profile = profile_for(suite);
  p.grid_w = 32;
  p.grid_h = 32;
  p.gcell_cell_capacity = 8.0;
  Rng rng(seed);
  World w;
  w.netlist = generate_netlist(p, rng);
  PlacerOptions popts;
  popts.moves_per_cell = 1.0;
  w.placement = place(w.netlist, popts, rng);
  RouterOptions ropts;
  ropts.capacity_scale = p.profile.capacity_scale;
  w.routing = route(w.placement, ropts, rng);
  return w;
}

TEST(Rudy, MapIsNonNegativeWithExpectedShape) {
  World w = make_world(BenchmarkSuite::kItc99, 61);
  Tensor rudy = rudy_map(w.placement);
  EXPECT_EQ(rudy.shape(), (Shape{32, 32}));
  for (std::int64_t i = 0; i < rudy.numel(); ++i) EXPECT_GE(rudy[i], 0.0f);
  EXPECT_GT(max_value(rudy), 0.0f);
}

TEST(Rudy, SingleNetSpreadsOverBoundingBox) {
  // Hand-built placement: one 2-pin net spanning a 4x2 box.
  auto nl = std::make_shared<Netlist>();
  nl->cells = {Cell{1.0f, 1.0f}, Cell{1.0f, 1.0f}};
  nl->nets = {Net{{0, 1}}};
  Placement pl;
  pl.netlist = nl;
  pl.grid_w = pl.grid_h = 8;
  pl.x = {1.5f, 4.5f};
  pl.y = {2.5f, 3.5f};
  Tensor rudy = rudy_map(pl);
  // Inside bbox: positive and constant; outside: zero.
  const float inside = rudy.at(2, 2);
  EXPECT_GT(inside, 0.0f);
  EXPECT_FLOAT_EQ(rudy.at(3, 3), inside);
  EXPECT_FLOAT_EQ(rudy.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(rudy.at(7, 7), 0.0f);
  // Density formula (w+h)/(w*h) with w=3, h=1.
  EXPECT_NEAR(inside, (3.0f + 1.0f) / 3.0f, 1e-4f);
}

TEST(PinDensity, TotalEqualsPinWeightSum) {
  World w = make_world(BenchmarkSuite::kIscas89, 63);
  Tensor pins = pin_density_map(w.placement);
  double expected = 0.0;
  for (const Net& net : w.netlist->nets) {
    for (std::int32_t c : net.cells) {
      expected += w.netlist->cells[static_cast<std::size_t>(c)].pin_weight;
    }
  }
  EXPECT_NEAR(sum(pins), expected, expected * 1e-4);
}

TEST(FlyLines, EachPinContributesUnitMass) {
  // Every pin->centroid segment deposits total weight ~1 (1/(steps+1)
  // per visited gcell across steps+1 samples).
  World w = make_world(BenchmarkSuite::kItc99, 65);
  Tensor fly = fly_line_map(w.placement);
  EXPECT_NEAR(sum(fly), static_cast<double>(w.netlist->num_pins()),
              0.05 * static_cast<double>(w.netlist->num_pins()));
}

TEST(CellDensity, TotalMatchesCellArea) {
  World w = make_world(BenchmarkSuite::kIwls05, 67);
  Tensor density = cell_density_map(w.placement, 8.0);
  EXPECT_NEAR(sum(density) * 8.0, w.netlist->total_cell_area(),
              w.netlist->total_cell_area() * 1e-3);
}

TEST(BlockageMap, MatchesMacroRects) {
  World w = make_world(BenchmarkSuite::kIspd15, 69);
  Tensor blockage = blockage_map(w.placement);
  std::int64_t area = 0;
  for (const Rect& r : w.placement.macro_rects) area += r.area();
  EXPECT_FLOAT_EQ(sum(blockage), static_cast<float>(area));
}

TEST(Features, ShapesAndRanges) {
  World w = make_world(BenchmarkSuite::kItc99, 71);
  DrcOptions dopts;
  FeatureSample s = extract_features(w.placement, w.routing,
                                     default_technology(), dopts);
  EXPECT_EQ(s.features.shape(), (Shape{kNumFeatureChannels, 32, 32}));
  EXPECT_EQ(s.label.shape(), (Shape{1, 32, 32}));
  for (std::int64_t i = 0; i < s.features.numel(); ++i) {
    EXPECT_GE(s.features[i], 0.0f);
    EXPECT_LE(s.features[i], 1.0f);
  }
  for (std::int64_t i = 0; i < s.label.numel(); ++i) {
    EXPECT_TRUE(s.label[i] == 0.0f || s.label[i] == 1.0f);
  }
}

TEST(Features, ChannelsAreNotDegenerate) {
  // Every channel except the blockage mask must vary spatially
  // (otherwise the models learn nothing from it).
  World w = make_world(BenchmarkSuite::kIspd15, 73);
  DrcOptions dopts;
  FeatureSample s = extract_features(w.placement, w.routing,
                                     default_technology(), dopts);
  const std::int64_t hw = 32 * 32;
  for (std::int64_t c = 0; c < kNumFeatureChannels; ++c) {
    if (c == 1) continue;  // blockage may be empty for some designs
    double mn = 1e9, mx = -1e9;
    for (std::int64_t i = 0; i < hw; ++i) {
      mn = std::min(mn, static_cast<double>(s.features[c * hw + i]));
      mx = std::max(mx, static_cast<double>(s.features[c * hw + i]));
    }
    EXPECT_GT(mx - mn, 1e-3) << "degenerate feature channel " << c;
  }
}

TEST(Features, RudyCorrelatesWithRoutedDemand) {
  // The learnability premise: the placement-time RUDY heuristic must
  // correlate with the router's actual demand (but not perfectly — the
  // gap is what the CNN learns to close).
  World w = make_world(BenchmarkSuite::kItc99, 75);
  Tensor rudy = rudy_map(w.placement);
  std::vector<double> heuristic, actual;
  for (std::int64_t i = 0; i < rudy.numel(); ++i) {
    heuristic.push_back(rudy[i]);
    actual.push_back(static_cast<double>(w.routing.demand_h[i]) +
                     w.routing.demand_v[i]);
  }
  const double corr = pearson(heuristic, actual);
  EXPECT_GT(corr, 0.5);
  EXPECT_LT(corr, 0.999);
}

TEST(Features, LabelsVaryAcrossPlacementsOfSameDesign) {
  // Different placement solutions of one netlist must give different
  // hotspot maps (otherwise "multiple placements per design" is
  // meaningless data augmentation).
  NetlistGenParams p;
  p.profile = profile_for(BenchmarkSuite::kItc99);
  p.grid_w = p.grid_h = 32;
  p.gcell_cell_capacity = 8.0;
  Rng rng(77);
  NetlistPtr nl = generate_netlist(p, rng);
  DrcOptions dopts;
  RouterOptions ropts;
  ropts.capacity_scale = p.profile.capacity_scale;

  PlacerOptions popts;
  popts.moves_per_cell = 1.0;
  Rng r1(100), r2(200);
  Placement pl1 = place(nl, popts, r1);
  Placement pl2 = place(nl, popts, r2);
  RoutingResult rr1 = route(pl1, ropts, r1);
  RoutingResult rr2 = route(pl2, ropts, r2);
  FeatureSample s1 = extract_features(pl1, rr1, default_technology(), dopts);
  FeatureSample s2 = extract_features(pl2, rr2, default_technology(), dopts);
  EXPECT_GT(max_abs_diff(s1.features, s2.features), 0.0f);
}

TEST(Features, CapacityChannelReflectsBlockage) {
  World w = make_world(BenchmarkSuite::kIspd15, 79);
  if (w.placement.macro_rects.empty()) GTEST_SKIP() << "no macros drawn";
  DrcOptions dopts;
  FeatureSample s = extract_features(w.placement, w.routing,
                                     default_technology(), dopts);
  const std::int64_t hw = 32 * 32;
  const Rect& r = w.placement.macro_rects.front();
  const std::int64_t inside = r.y0 * 32 + r.x0;
  // Find any free gcell for comparison.
  for (std::int64_t gy = 0; gy < 32; ++gy) {
    for (std::int64_t gx = 0; gx < 32; ++gx) {
      if (!w.placement.blocked(gx, gy)) {
        EXPECT_LT(s.features[5 * hw + inside],
                  s.features[5 * hw + gy * 32 + gx]);
        return;
      }
    }
  }
}

}  // namespace
}  // namespace fleda
