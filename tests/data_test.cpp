// Tests for client datasets: Table 2 spec conformance, batching,
// epoch sampling, the generator's privacy-relevant invariants (no
// design overlap between train/test or between clients), and dataset
// serialization round-trips.
#include <gtest/gtest.h>

#include <filesystem>
#include <set>

#include "data/generator.hpp"
#include "data/serialization.hpp"
#include "phys/features.hpp"
#include "tensor/ops.hpp"

namespace fleda {
namespace {

DatasetGenOptions tiny_options() {
  DatasetGenOptions opts;
  opts.grid = 16;
  opts.placement_fraction = 0.01;  // minimum: one placement per design
  opts.seed = 4242;
  return opts;
}

TEST(Table2Spec, MatchesPaperExactly) {
  std::vector<ClientSpec> specs = paper_client_specs();
  ASSERT_EQ(specs.size(), 9u);

  // Suite assignment: 3x ITC'99, 3x ISCAS'89, 2x IWLS'05, 1x ISPD'15.
  EXPECT_EQ(specs[0].suite, BenchmarkSuite::kItc99);
  EXPECT_EQ(specs[1].suite, BenchmarkSuite::kItc99);
  EXPECT_EQ(specs[2].suite, BenchmarkSuite::kItc99);
  EXPECT_EQ(specs[3].suite, BenchmarkSuite::kIscas89);
  EXPECT_EQ(specs[4].suite, BenchmarkSuite::kIscas89);
  EXPECT_EQ(specs[5].suite, BenchmarkSuite::kIscas89);
  EXPECT_EQ(specs[6].suite, BenchmarkSuite::kIwls05);
  EXPECT_EQ(specs[7].suite, BenchmarkSuite::kIwls05);
  EXPECT_EQ(specs[8].suite, BenchmarkSuite::kIspd15);

  // Totals from the paper: 74 designs, 7131 placements.
  int designs = 0, placements = 0;
  for (const ClientSpec& s : specs) {
    designs += s.train_designs + s.test_designs;
    placements += s.train_placements + s.test_placements;
  }
  EXPECT_EQ(designs, 74);
  EXPECT_EQ(placements, 7131);

  // Spot-check the paper's row values.
  EXPECT_EQ(specs[0].train_placements, 462);
  EXPECT_EQ(specs[0].test_placements, 230);
  EXPECT_EQ(specs[3].train_placements, 812);
  EXPECT_EQ(specs[8].train_designs, 9);
  EXPECT_EQ(specs[8].test_placements, 84);
}

TEST(MakeBatch, StacksSelectedSamples) {
  std::vector<Sample> samples(3);
  for (int i = 0; i < 3; ++i) {
    samples[static_cast<std::size_t>(i)].features =
        Tensor::full(Shape{2, 4, 4}, static_cast<float>(i));
    samples[static_cast<std::size_t>(i)].label =
        Tensor::full(Shape{1, 4, 4}, static_cast<float>(10 + i));
  }
  Batch b = make_batch(samples, {2, 0});
  EXPECT_EQ(b.x.shape(), (Shape{2, 2, 4, 4}));
  EXPECT_EQ(b.y.shape(), (Shape{2, 1, 4, 4}));
  EXPECT_FLOAT_EQ(b.x[0], 2.0f);
  EXPECT_FLOAT_EQ(b.x[32], 0.0f);
  EXPECT_FLOAT_EQ(b.y[0], 12.0f);
  EXPECT_EQ(b.size(), 2);
}

TEST(MakeBatch, RejectsEmptyAndInhomogeneous) {
  std::vector<Sample> samples(2);
  samples[0].features = Tensor(Shape{2, 4, 4});
  samples[0].label = Tensor(Shape{1, 4, 4});
  samples[1].features = Tensor(Shape{2, 8, 8});
  samples[1].label = Tensor(Shape{1, 8, 8});
  EXPECT_THROW(make_batch(samples, {}), std::invalid_argument);
  EXPECT_THROW(make_batch(samples, {0, 1}), std::invalid_argument);
}

TEST(BatchSampler, CoversEpochWithoutRepeats) {
  BatchSampler sampler(10, 3, Rng(1));
  std::multiset<std::size_t> seen;
  // 4 batches: 3+3+3+1 completes the epoch exactly once.
  std::size_t drawn = 0;
  while (drawn < 10) {
    for (std::size_t i : sampler.next()) {
      seen.insert(i);
      ++drawn;
    }
  }
  EXPECT_EQ(seen.size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(seen.count(i), 1u);
}

TEST(BatchSampler, DoesNotMixEpochsInOneBatch) {
  BatchSampler sampler(5, 4, Rng(2));
  std::vector<std::size_t> b1 = sampler.next();  // 4 of epoch 1
  std::vector<std::size_t> b2 = sampler.next();  // remaining 1
  EXPECT_EQ(b1.size(), 4u);
  EXPECT_EQ(b2.size(), 1u);
}

TEST(BatchSampler, RejectsZeroBatch) {
  EXPECT_THROW(BatchSampler(4, 0, Rng(3)), std::invalid_argument);
}

TEST(Generator, ProducesRequestedStructure) {
  ClientSpec spec = paper_client_specs()[1];  // client 2: small ITC'99
  ClientDataset ds = generate_client_dataset(spec, tiny_options());
  EXPECT_EQ(ds.client_id, 2);
  EXPECT_EQ(ds.suite, BenchmarkSuite::kItc99);
  EXPECT_EQ(static_cast<int>(ds.train_designs.size()), spec.train_designs);
  EXPECT_EQ(static_cast<int>(ds.test_designs.size()), spec.test_designs);
  // At least one placement per design even at tiny fraction.
  EXPECT_GE(ds.num_train(), spec.train_designs);
  EXPECT_GE(ds.num_test(), spec.test_designs);
  for (const Sample& s : ds.train) {
    EXPECT_EQ(s.features.shape(), (Shape{kNumFeatureChannels, 16, 16}));
    EXPECT_EQ(s.label.shape(), (Shape{1, 16, 16}));
  }
}

TEST(Generator, DeterministicForSameSeed) {
  ClientSpec spec = paper_client_specs()[2];
  ClientDataset a = generate_client_dataset(spec, tiny_options());
  ClientDataset b = generate_client_dataset(spec, tiny_options());
  ASSERT_EQ(a.num_train(), b.num_train());
  for (std::int64_t i = 0; i < a.num_train(); ++i) {
    EXPECT_TRUE(a.train[static_cast<std::size_t>(i)].features.equals(
        b.train[static_cast<std::size_t>(i)].features));
    EXPECT_TRUE(a.train[static_cast<std::size_t>(i)].label.equals(
        b.train[static_cast<std::size_t>(i)].label));
  }
}

TEST(Generator, SeedChangesData) {
  ClientSpec spec = paper_client_specs()[2];
  DatasetGenOptions o1 = tiny_options();
  DatasetGenOptions o2 = tiny_options();
  o2.seed = 999;
  ClientDataset a = generate_client_dataset(spec, o1);
  ClientDataset b = generate_client_dataset(spec, o2);
  EXPECT_GT(max_abs_diff(a.train[0].features, b.train[0].features), 0.0f);
}

TEST(Generator, NoDesignNameOverlapAnywhere) {
  // The paper's privacy setup: no design is shared between clients,
  // and no design is both training and testing.
  DatasetGenOptions opts = tiny_options();
  std::set<std::string> names;
  for (const ClientSpec& spec : paper_client_specs()) {
    ClientDataset ds = generate_client_dataset(spec, opts);
    for (const DesignInfo& d : ds.train_designs) {
      EXPECT_TRUE(names.insert(d.name).second) << "duplicate " << d.name;
    }
    for (const DesignInfo& d : ds.test_designs) {
      EXPECT_TRUE(names.insert(d.name).second) << "duplicate " << d.name;
    }
  }
  EXPECT_EQ(names.size(), 74u);
}

TEST(Generator, ClientsOfSameSuiteDifferInData) {
  // Clients 4 and 5 are both ISCAS'89 but hold different designs.
  DatasetGenOptions opts = tiny_options();
  ClientDataset c4 = generate_client_dataset(paper_client_specs()[3], opts);
  ClientDataset c5 = generate_client_dataset(paper_client_specs()[4], opts);
  EXPECT_GT(max_abs_diff(c4.train[0].features, c5.train[0].features), 0.0f);
}

TEST(Serialization, ClientDatasetRoundTrip) {
  ClientSpec spec = paper_client_specs()[1];
  ClientDataset ds = generate_client_dataset(spec, tiny_options());
  const std::string path =
      (std::filesystem::temp_directory_path() / "fleda_ds_test.bin").string();
  save_client_dataset(path, ds);
  ClientDataset loaded = load_client_dataset(path);
  EXPECT_EQ(loaded.client_id, ds.client_id);
  EXPECT_EQ(loaded.suite, ds.suite);
  ASSERT_EQ(loaded.num_train(), ds.num_train());
  ASSERT_EQ(loaded.num_test(), ds.num_test());
  ASSERT_EQ(loaded.train_designs.size(), ds.train_designs.size());
  EXPECT_EQ(loaded.train_designs[0].name, ds.train_designs[0].name);
  for (std::int64_t i = 0; i < ds.num_train(); ++i) {
    EXPECT_TRUE(loaded.train[static_cast<std::size_t>(i)].features.equals(
        ds.train[static_cast<std::size_t>(i)].features));
  }
  std::filesystem::remove(path);
}

TEST(Serialization, AllClientsRoundTripAndMissingDirReturnsEmpty) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "fleda_ds_dir").string();
  std::filesystem::remove_all(dir);
  EXPECT_TRUE(try_load_all_clients(dir, 2).empty());

  std::vector<ClientDataset> clients;
  clients.push_back(
      generate_client_dataset(paper_client_specs()[1], tiny_options()));
  clients.push_back(
      generate_client_dataset(paper_client_specs()[2], tiny_options()));
  clients[0].client_id = 1;
  clients[1].client_id = 2;
  save_all_clients(dir, clients);
  std::vector<ClientDataset> loaded = try_load_all_clients(dir, 2);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].client_id, 1);
  EXPECT_EQ(loaded[1].client_id, 2);
  std::filesystem::remove_all(dir);
}

TEST(HotspotRate, ComputedOverAllSamples) {
  std::vector<Sample> samples(2);
  samples[0].label = Tensor::full(Shape{1, 2, 2}, 1.0f);
  samples[0].features = Tensor(Shape{1, 2, 2});
  samples[1].label = Tensor(Shape{1, 2, 2});
  samples[1].features = Tensor(Shape{1, 2, 2});
  EXPECT_DOUBLE_EQ(dataset_hotspot_rate(samples), 0.5);
  EXPECT_DOUBLE_EQ(dataset_hotspot_rate({}), 0.0);
}

}  // namespace
}  // namespace fleda
