// End-to-end integration tests through the public fleda::Experiment
// API at smoke scale: dataset generation -> FL training -> evaluation
// for every paper method, table rendering, convergence tracking, and
// dataset caching.
#include <gtest/gtest.h>

#include <filesystem>

#include "core/experiment.hpp"
#include "core/paper_tables.hpp"

namespace fleda {
namespace {

ExperimentConfig smoke_config(ModelKind model = ModelKind::kFLNet) {
  ExperimentConfig cfg;
  cfg.model = model;
  cfg.scale = resolve_scale("smoke");
  // Keep the integration tests fast: 2 rounds x 3 steps.
  cfg.scale.rounds = 2;
  cfg.scale.steps_per_round = 3;
  cfg.scale.finetune_steps = 4;
  cfg.data_seed = 777;
  return cfg;
}

TEST(ExperimentIntegration, PreparesNineClientTable2Dataset) {
  Experiment exp(smoke_config());
  exp.prepare_data();
  ASSERT_EQ(exp.data().size(), 9u);
  for (std::size_t k = 0; k < 9; ++k) {
    EXPECT_EQ(exp.data()[k].client_id, static_cast<int>(k) + 1);
    EXPECT_GT(exp.data()[k].num_train(), 0);
    EXPECT_GT(exp.data()[k].num_test(), 0);
  }
  // Suite assignment per Table 2.
  EXPECT_EQ(exp.data()[0].suite, BenchmarkSuite::kItc99);
  EXPECT_EQ(exp.data()[3].suite, BenchmarkSuite::kIscas89);
  EXPECT_EQ(exp.data()[6].suite, BenchmarkSuite::kIwls05);
  EXPECT_EQ(exp.data()[8].suite, BenchmarkSuite::kIspd15);
}

TEST(ExperimentIntegration, RunMethodRequiresData) {
  Experiment exp(smoke_config());
  EXPECT_THROW(exp.run_method(TrainingMethod::kFedProx), std::logic_error);
}

class AllMethods : public ::testing::TestWithParam<TrainingMethod> {};

TEST_P(AllMethods, ProducesValidRow) {
  Experiment exp(smoke_config());
  exp.prepare_data();
  MethodResult row = exp.run_method(GetParam());
  EXPECT_EQ(row.method, to_string(GetParam()));
  ASSERT_EQ(row.client_auc.size(), 9u);
  for (double auc : row.client_auc) {
    EXPECT_GE(auc, 0.0);
    EXPECT_LE(auc, 1.0);
  }
  EXPECT_GT(row.average, 0.3);  // better than anti-learning
}

INSTANTIATE_TEST_SUITE_P(
    Methods, AllMethods,
    ::testing::Values(TrainingMethod::kLocal, TrainingMethod::kCentral,
                      TrainingMethod::kFedAvg, TrainingMethod::kFedProx,
                      TrainingMethod::kFedProxLG, TrainingMethod::kIFCA,
                      TrainingMethod::kFedProxFineTune,
                      TrainingMethod::kAssignedClustering,
                      TrainingMethod::kAlphaPortionSync),
    [](const auto& info) {
      std::string name = to_string(info.param);
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(ExperimentIntegration, EnumShimMapsOntoRegistryNames) {
  // The deprecated TrainingMethod enum is a thin shim over registry
  // names: every federated value resolves to a registered algorithm,
  // and the display labels the tables rely on are preserved.
  for (TrainingMethod m :
       {TrainingMethod::kFedAvg, TrainingMethod::kFedProx,
        TrainingMethod::kFedProxLG, TrainingMethod::kIFCA,
        TrainingMethod::kFedProxFineTune, TrainingMethod::kAssignedClustering,
        TrainingMethod::kAlphaPortionSync, TrainingMethod::kAsyncFedAvg}) {
    const std::string name = registry_name(m);
    EXPECT_TRUE(AlgorithmRegistry::global().contains(name)) << name;
    EXPECT_EQ(display_name(name), to_string(m));
  }
  EXPECT_EQ(registry_name(TrainingMethod::kLocal), "local");
  EXPECT_EQ(registry_name(TrainingMethod::kCentral), "central");
  EXPECT_EQ(to_string(TrainingMethod::kFedProx), "FedProx");
  EXPECT_EQ(to_string(TrainingMethod::kLocal), "Local Average (b1 to b9)");
  // Unregistered names display as themselves.
  EXPECT_EQ(display_name("dp_fedprox"), "dp_fedprox");
}

TEST(ExperimentIntegration, RunMethodByNameAndUnknownNameThrows) {
  ExperimentConfig cfg = smoke_config();
  cfg.scale.rounds = 1;
  cfg.scale.steps_per_round = 2;
  // Exercise the fluent name-keyed API together with client sampling:
  // 4 of the 9 clients participate per round.
  cfg.participation.kind = ParticipationKind::kUniformSample;
  cfg.participation.sample_size = 4;
  Experiment exp(cfg);
  exp.prepare_data();
  MethodResult row = exp.run_method("fedavg");
  EXPECT_EQ(row.method, "FedAvg");
  EXPECT_EQ(row.participation, "uniform_sample");
  ASSERT_EQ(row.client_auc.size(), 9u);
  // Sampled round: 4 deployments down, 4 updates up.
  EXPECT_EQ(row.comm.downlink_messages, 4u);
  EXPECT_EQ(row.comm.uplink_messages, 4u);
  try {
    exp.run_method("no_such_method");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("registered"), std::string::npos);
  }
}

TEST(ExperimentIntegration, PaperMethodListMatchesTableRows) {
  std::vector<TrainingMethod> methods = paper_table_methods();
  ASSERT_EQ(methods.size(), 8u);
  EXPECT_EQ(methods.front(), TrainingMethod::kLocal);
  EXPECT_EQ(methods[1], TrainingMethod::kCentral);
  EXPECT_EQ(methods[5], TrainingMethod::kFedProxFineTune);
}

TEST(ExperimentIntegration, ConvergenceSeriesHasOnePointPerRound) {
  Experiment exp(smoke_config());
  exp.prepare_data();
  auto series = exp.run_convergence(TrainingMethod::kFedProx);
  ASSERT_EQ(series.size(), 2u);
  EXPECT_EQ(series[0].round, 0);
  EXPECT_EQ(series[1].round, 1);
  for (const auto& pt : series) {
    EXPECT_GE(pt.average_auc, 0.0);
    EXPECT_LE(pt.average_auc, 1.0);
  }
  EXPECT_THROW(exp.run_convergence(TrainingMethod::kLocal),
               std::invalid_argument);
}

TEST(ExperimentIntegration, DatasetCacheRoundTrips) {
  ExperimentConfig cfg = smoke_config();
  cfg.cache_dir =
      (std::filesystem::temp_directory_path() / "fleda_cache_test").string();
  std::filesystem::remove_all(cfg.cache_dir);

  Experiment first(cfg);
  first.prepare_data();
  Experiment second(cfg);
  second.prepare_data();  // must load from cache
  ASSERT_EQ(second.data().size(), 9u);
  EXPECT_EQ(second.data()[0].num_train(), first.data()[0].num_train());
  EXPECT_TRUE(second.data()[0].train[0].features.equals(
      first.data()[0].train[0].features));
  std::filesystem::remove_all(cfg.cache_dir);
}

TEST(PaperTables, Table2RendersAllClients) {
  Experiment exp(smoke_config());
  exp.prepare_data();
  AsciiTable t = render_table2(paper_client_specs(), exp.data());
  EXPECT_EQ(t.num_rows(), 9u);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("ITC'99"), std::string::npos);
  EXPECT_NE(s.find("ISPD'15"), std::string::npos);
  EXPECT_NE(s.find("812"), std::string::npos);  // paper placement count
}

TEST(PaperTables, AccuracyTableLayoutMatchesPaper) {
  MethodResult r1{"Local Average (b1 to b9)",
                  {0.76, 0.75, 0.71, 0.72, 0.67, 0.70, 0.76, 0.64, 0.82},
                  0.72};
  MethodResult r2{"FedProx",
                  {0.82, 0.78, 0.73, 0.75, 0.72, 0.74, 0.82, 0.69, 0.96},
                  0.78};
  AsciiTable t = render_accuracy_table("Table 3", {r1, r2});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("Client 9"), std::string::npos);
  EXPECT_NE(s.find("Average"), std::string::npos);
  EXPECT_NE(s.find("0.78"), std::string::npos);
  EXPECT_THROW(render_accuracy_table("empty", {}), std::invalid_argument);
}

TEST(PaperTables, HeadlineSummaryComputesDeltas) {
  MethodResult local{"Local Average (b1 to b9)", {0.72}, 0.72};
  MethodResult central{"Training Centrally on All Data", {0.81}, 0.81};
  MethodResult fedprox{"FedProx", {0.78}, 0.78};
  MethodResult ft{"FedProx + Fine-tuning", {0.80}, 0.80};
  AsciiTable t = render_headline_summary({local, central, fedprox, ft});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("+0.06"), std::string::npos);   // paper claim column
  EXPECT_NE(s.find("0.060"), std::string::npos);   // measured delta
  EXPECT_NE(s.find("11"), std::string::npos);      // relative percent
}

}  // namespace
}  // namespace fleda
