// Tests for the src/comm/ parameter-exchange subsystem: codec round
// trips (exact for fp32, tolerance-bounded for fp16/int8, sparsity
// semantics for top-k deltas), wire-format validation, channel
// byte/latency accounting, and end-to-end equivalence of FedAvg run
// through a lossless channel vs. the direct path.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "comm/channel.hpp"
#include "comm/codec.hpp"
#include "fl/fedavg.hpp"
#include "fl/server.hpp"
#include "models/registry.hpp"

namespace fleda {
namespace {

ModelParameters snapshot(ModelKind kind, std::uint64_t seed) {
  Rng rng(seed);
  RoutabilityModelPtr model = make_model(kind, 4, rng);
  return ModelParameters::from_model(*model);
}

double max_abs_error(const ModelParameters& a, const ModelParameters& b) {
  EXPECT_TRUE(a.structurally_equal(b));
  double worst = 0.0;
  for (std::size_t n = 0; n < a.entries().size(); ++n) {
    const Tensor& x = a.entries()[n].value;
    const Tensor& y = b.entries()[n].value;
    for (std::int64_t i = 0; i < x.numel(); ++i) {
      worst = std::max(worst, std::fabs(static_cast<double>(x[i]) - y[i]));
    }
  }
  return worst;
}

TEST(HalfFloat, ExactValuesRoundTrip) {
  // 2^-14 is the smallest normal half; all values here are exactly
  // representable in binary16.
  for (float v : {0.0f, 1.0f, -1.0f, 0.5f, -2.25f, 1024.0f, 6.103515625e-5f}) {
    EXPECT_EQ(half_to_float(float_to_half(v)), v) << v;
  }
  // Overflow saturates to inf; halves survive a second conversion.
  EXPECT_TRUE(std::isinf(half_to_float(float_to_half(1.0e6f))));
  EXPECT_TRUE(std::isnan(half_to_float(float_to_half(NAN))));
}

TEST(HalfFloat, RelativeErrorBounded) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const float v = static_cast<float>(rng.uniform(-10.0, 10.0));
    const float back = half_to_float(float_to_half(v));
    // binary16 has a 10-bit mantissa: eps = 2^-11 after rounding.
    EXPECT_NEAR(back, v, std::fabs(v) * 4.9e-4 + 1e-7);
  }
}

TEST(Fp32Codec, RoundTripIsBitExact) {
  const ModelParameters params = snapshot(ModelKind::kPROS, 1);
  Fp32Codec codec;
  const ByteBuffer blob = codec.encode(params, nullptr);
  EXPECT_EQ(blob.size(), raw_wire_bytes(params));
  const ModelParameters back = codec.decode(blob, nullptr);
  ASSERT_TRUE(back.structurally_equal(params));
  for (std::size_t n = 0; n < params.entries().size(); ++n) {
    EXPECT_TRUE(back.entries()[n].value.equals(params.entries()[n].value));
    EXPECT_EQ(back.entries()[n].is_buffer, params.entries()[n].is_buffer);
  }
}

TEST(Fp16Codec, RoundTripWithinTolerance) {
  const ModelParameters params = snapshot(ModelKind::kFLNet, 2);
  Fp16Codec codec;
  const ByteBuffer blob = codec.encode(params, nullptr);
  EXPECT_LT(blob.size(), raw_wire_bytes(params));
  const ModelParameters back = codec.decode(blob, nullptr);
  // Initialized weights are O(1); half precision keeps ~3 decimal digits.
  EXPECT_LT(max_abs_error(params, back), 1e-2);
}

TEST(Int8QuantCodec, RoundTripWithinQuantStep) {
  const ModelParameters params = snapshot(ModelKind::kFLNet, 4);
  Int8QuantCodec codec;
  const ByteBuffer blob = codec.encode(params, nullptr);
  const ModelParameters back = codec.decode(blob, nullptr);
  ASSERT_TRUE(back.structurally_equal(params));
  for (std::size_t n = 0; n < params.entries().size(); ++n) {
    const Tensor& x = params.entries()[n].value;
    float lo = x[0], hi = x[0];
    for (std::int64_t i = 1; i < x.numel(); ++i) {
      lo = std::min(lo, x[i]);
      hi = std::max(hi, x[i]);
    }
    const float step = (hi - lo) / 255.0f;
    const Tensor& y = back.entries()[n].value;
    for (std::int64_t i = 0; i < x.numel(); ++i) {
      EXPECT_NEAR(y[i], x[i], step * 0.51f + 1e-6f);
    }
  }
}

TEST(Codec, NonFiniteValuesAreRejectedByLossyCodecs) {
  // A diverged client must fail loudly at encode time, not poison the
  // aggregate: every lossy codec refuses non-finite (or, for fp16,
  // half-overflowing) values.
  ModelParameters params;
  Tensor t(Shape::of(4));
  t[0] = 1.0f;
  t[1] = std::numeric_limits<float>::infinity();
  params.mutable_entries().push_back({"w", false, t});
  EXPECT_THROW(Int8QuantCodec().encode(params, nullptr),
               std::invalid_argument);
  EXPECT_THROW(Fp16Codec().encode(params, nullptr), std::invalid_argument);
  EXPECT_THROW(TopKDeltaCodec(0.5).encode(params, nullptr),
               std::invalid_argument);

  ModelParameters overflow;
  overflow.mutable_entries().push_back(
      {"w", false, Tensor::full(Shape::of(2), 1.0e6f)});  // > 65504
  EXPECT_THROW(Fp16Codec().encode(overflow, nullptr), std::invalid_argument);
}

TEST(Int8QuantCodec, ConstantTensorDecodesExactly) {
  ModelParameters params;
  params.mutable_entries().push_back(
      {"w", false, Tensor::full(Shape::of(7, 3), 0.125f)});
  Int8QuantCodec codec;
  const ModelParameters back = codec.decode(codec.encode(params, nullptr),
                                            nullptr);
  EXPECT_TRUE(back.entries()[0].value.equals(params.entries()[0].value));
}

TEST(Int8QuantCodec, CompressesAtLeast3_5x) {
  const ModelParameters params = snapshot(ModelKind::kFLNet, 5);
  Int8QuantCodec codec;
  const ByteBuffer blob = codec.encode(params, nullptr);
  const double ratio = static_cast<double>(raw_wire_bytes(params)) /
                       static_cast<double>(blob.size());
  EXPECT_GE(ratio, 3.5);
}

TEST(TopKDeltaCodec, EncodedSizeShrinksMonotonicallyWithK) {
  const ModelParameters reference = snapshot(ModelKind::kFLNet, 6);
  ModelParameters update = snapshot(ModelKind::kFLNet, 7);
  std::size_t previous = 0;
  for (double fraction : {0.01, 0.05, 0.2, 0.5, 1.0}) {
    TopKDeltaCodec codec(fraction);
    const std::size_t size = codec.encode(update, &reference).size();
    EXPECT_GT(size, previous) << "fraction " << fraction;
    previous = size;
  }
  EXPECT_THROW(TopKDeltaCodec(0.0), std::invalid_argument);
  EXPECT_THROW(TopKDeltaCodec(1.5), std::invalid_argument);
}

TEST(TopKDeltaCodec, FullFractionReconstructsExactly) {
  const ModelParameters reference = snapshot(ModelKind::kFLNet, 8);
  const ModelParameters update = snapshot(ModelKind::kFLNet, 9);
  TopKDeltaCodec codec(1.0);
  const ModelParameters back =
      codec.decode(codec.encode(update, &reference), &reference);
  // reference + (update - reference): one float rounding per element.
  EXPECT_LT(max_abs_error(update, back), 1e-6);
}

TEST(TopKDeltaCodec, UnkeptEntriesEqualReference) {
  const ModelParameters reference = snapshot(ModelKind::kFLNet, 10);
  const ModelParameters update = snapshot(ModelKind::kFLNet, 11);
  TopKDeltaCodec codec(0.05);
  const ModelParameters back =
      codec.decode(codec.encode(update, &reference), &reference);
  // Every decoded value matches either the update (kept, up to one
  // float rounding) or the reference (dropped, exact).
  for (std::size_t n = 0; n < back.entries().size(); ++n) {
    const Tensor& b = back.entries()[n].value;
    const Tensor& u = update.entries()[n].value;
    const Tensor& r = reference.entries()[n].value;
    for (std::int64_t i = 0; i < b.numel(); ++i) {
      EXPECT_TRUE(b[i] == r[i] || std::fabs(b[i] - u[i]) < 1e-6f);
    }
  }
}

TEST(Codec, MismatchedCodecIsRejected) {
  const ModelParameters params = snapshot(ModelKind::kRouteNet, 12);
  Fp32Codec fp32;
  Int8QuantCodec int8;
  const ByteBuffer blob = fp32.encode(params, nullptr);
  EXPECT_THROW(int8.decode(blob, nullptr), std::runtime_error);
  ByteBuffer truncated(blob.begin(), blob.begin() + blob.size() / 2);
  EXPECT_THROW(fp32.decode(truncated, nullptr), std::runtime_error);
}

TEST(Codec, FactoryCoversAllKinds) {
  for (CodecKind kind : {CodecKind::kFp32, CodecKind::kFp16,
                         CodecKind::kInt8Quant, CodecKind::kTopKDelta}) {
    std::unique_ptr<ParameterCodec> codec = make_codec(kind, 0.1);
    EXPECT_EQ(codec->kind(), kind);
    EXPECT_FALSE(codec->name().empty());
    EXPECT_FALSE(to_string(kind).empty());
  }
}

TEST(Channel, BroadcastBillsPerRecipientButEncodesOnce) {
  const ModelParameters global = snapshot(ModelKind::kFLNet, 13);
  Channel channel{CommConfig{}};
  std::vector<const ModelParameters*> deployed(3, &global);
  std::vector<std::shared_ptr<const ModelParameters>> received =
      channel.broadcast(deployed);
  ASSERT_EQ(received.size(), 3u);
  const ChannelStats& stats = channel.stats();
  EXPECT_EQ(stats.downlink_messages, 3u);
  EXPECT_EQ(stats.downlink_bytes, 3 * raw_wire_bytes(global));
  EXPECT_EQ(stats.uplink_messages, 0u);
  // One decode, shared by every recipient of the same snapshot.
  EXPECT_EQ(received[0].get(), received[1].get());
  for (const auto& r : received) {
    EXPECT_EQ(max_abs_error(global, *r), 0.0);  // fp32 downlink: lossless
  }
}

TEST(Channel, TopKDeltaDownlinkTracksPerClientReference) {
  // A delta downlink needs a reference both sides hold. The channel
  // tracks, per client, the snapshot that client last decoded, so the
  // second broadcast encodes deltas against it instead of nullptr
  // (which used to silently zero ~(1-k/n) of the deployed weights —
  // the channel rejected the codec outright before the fix).
  const ModelParameters g1 = snapshot(ModelKind::kFLNet, 61);
  ModelParameters g2 = g1;
  // Nudge a single entry by far more than any weight or round-1
  // residual: the round-2 delta at that index is certain to be kept.
  g2.mutable_entries()[0].value[0] += 10.0f;

  CommConfig config;
  config.downlink = CodecKind::kTopKDelta;
  config.topk_fraction = 0.01;
  Channel channel(config);

  std::vector<const ModelParameters*> wave(2, &g1);
  const auto r1 = channel.broadcast(wave);
  // First contact: delta against zeros keeps only the top 1% of g1.
  EXPECT_GT(max_abs_error(g1, *r1[0]), 0.0);

  wave.assign(2, &g2);
  const auto r2 = channel.broadcast(wave);
  // Round 2 encodes against what each client decoded in round 1; the
  // dominant delta entry is kept, so decode = reference + delta
  // reconstructs the changed entry exactly.
  for (const auto& r : r2) {
    EXPECT_FLOAT_EQ(r->entries()[0].value[0], g2.entries()[0].value[0]);
  }
}

TEST(Channel, TopKDeltaDownlinkReferencesAreIndependentPerClient) {
  // Clients sampled in different rounds hold different references; the
  // server must encode against each client's own last decode. Client 0
  // sees g1 then g2; client 1 first hears from the server at g2 and
  // must still reconstruct (its delta encodes against zeros).
  const ModelParameters g1 = snapshot(ModelKind::kFLNet, 62);
  ModelParameters g2 = g1;
  g2.mutable_entries()[0].value[0] += 10.0f;

  CommConfig config;
  config.downlink = CodecKind::kTopKDelta;
  config.topk_fraction = 0.01;
  Channel channel(config);

  std::vector<const ModelParameters*> only_zero = {&g1};
  const auto r1 = channel.broadcast(only_zero, {0});

  std::vector<const ModelParameters*> both = {&g2, &g2};
  const auto r2 = channel.broadcast(both, {0, 1});
  // Same snapshot, different references -> distinct payloads/decodes.
  EXPECT_NE(r2[0].get(), r2[1].get());
  // Client 0's decode builds on its round-1 state; the dominant delta
  // entry is kept, so the changed entry reconstructs exactly.
  EXPECT_FLOAT_EQ(r2[0]->entries()[0].value[0], g2.entries()[0].value[0]);
  // Client 1's decode is a fresh top-k of g2 (sparse, but consistent:
  // no crosstalk from client 0's reference).
  EXPECT_GT(max_abs_error(g2, *r2[1]), 0.0);
  const ChannelStats& stats = channel.stats();
  EXPECT_EQ(stats.downlink_messages, 3u);
}

TEST(Channel, CohortBroadcastAndCollectBillOnlySampledClients) {
  const ModelParameters global = snapshot(ModelKind::kFLNet, 63);
  Channel channel{CommConfig{}};
  // 5-client federation, cohort = {1, 3}.
  std::vector<const ModelParameters*> deployed(2, &global);
  const auto received = channel.broadcast(deployed, {1, 3});
  ASSERT_EQ(received.size(), 2u);
  std::vector<ModelParameters> updates = {*received[0], *received[1]};
  std::vector<const ModelParameters*> refs = {received[0].get(),
                                              received[1].get()};
  channel.collect(updates, refs, {1, 3});
  const auto& traffic = channel.round_traffic();
  ASSERT_GE(traffic.size(), 4u);
  EXPECT_EQ(traffic[1].downlink_messages, 1u);
  EXPECT_EQ(traffic[1].uplink_messages, 1u);
  EXPECT_EQ(traffic[3].downlink_messages, 1u);
  EXPECT_EQ(traffic[3].uplink_messages, 1u);
  EXPECT_EQ(traffic[0].downlink_messages, 0u);
  EXPECT_EQ(traffic[2].downlink_messages, 0u);
  EXPECT_EQ(channel.stats().downlink_bytes, 2 * raw_wire_bytes(global));
  EXPECT_THROW(channel.broadcast(deployed, {1}), std::invalid_argument);
  EXPECT_THROW(channel.collect(updates, refs, {1}), std::invalid_argument);
}

TEST(Channel, SerialBroadcastWavesAccumulateLatency) {
  // Two broadcast waves per round (e.g. IFCA shipping 2 cluster
  // models) must cost about twice the downlink transfer time of one.
  const ModelParameters a = snapshot(ModelKind::kFLNet, 20);
  const ModelParameters b = snapshot(ModelKind::kFLNet, 21);
  CommConfig config;
  config.per_message_latency_s = 0.0;
  Channel one_wave(config), two_waves(config);
  std::vector<const ModelParameters*> wave(3, &a);

  one_wave.broadcast(wave);
  one_wave.end_round();

  two_waves.broadcast(wave);
  wave.assign(3, &b);
  two_waves.broadcast(wave);
  two_waves.end_round();

  EXPECT_NEAR(two_waves.stats().simulated_latency_s,
              2.0 * one_wave.stats().simulated_latency_s, 1e-9);
}

TEST(Channel, CollectMetersUplinkAndRoundsAccumulate) {
  const ModelParameters reference = snapshot(ModelKind::kFLNet, 14);
  CommConfig config;
  config.uplink = CodecKind::kInt8Quant;
  Channel channel(config);

  std::vector<ModelParameters> updates(2, snapshot(ModelKind::kFLNet, 15));
  std::vector<const ModelParameters*> refs(2, &reference);
  std::vector<ModelParameters> received = channel.collect(updates, refs);
  channel.end_round();

  const ChannelStats& stats = channel.stats();
  EXPECT_EQ(stats.uplink_messages, 2u);
  EXPECT_EQ(stats.raw_uplink_bytes, 2 * raw_wire_bytes(updates[0]));
  EXPECT_GE(stats.uplink_compression(), 3.5);
  ASSERT_EQ(stats.rounds.size(), 1u);
  EXPECT_EQ(stats.rounds[0].uplink_bytes, stats.uplink_bytes);
  EXPECT_GT(stats.rounds[0].simulated_latency_s, 0.0);
  EXPECT_EQ(stats.simulated_latency_s, stats.rounds[0].simulated_latency_s);

  EXPECT_THROW(channel.collect(updates, {&reference}), std::invalid_argument);
}

TEST(Server, AggregateValidatesSizes) {
  const ModelParameters a = snapshot(ModelKind::kFLNet, 16);
  std::vector<ModelParameters> updates = {a, a};
  EXPECT_THROW(Server::aggregate(updates, {1.0}), std::invalid_argument);
  EXPECT_THROW(Server::aggregate_subset(updates, {1.0}, {0}),
               std::invalid_argument);
}

// --- end-to-end: FedAvg through a lossless channel is bit-identical
// to the direct exchange (see fl_algorithms_test.cpp for the world
// helper idiom).

ClientDataset make_tiny_client(int id, float threshold, std::uint64_t seed) {
  Rng rng(seed);
  ClientDataset ds;
  ds.client_id = id;
  auto make_sample = [&]() {
    Sample s;
    s.features = Tensor(Shape{2, 8, 8});
    s.label = Tensor(Shape{1, 8, 8});
    for (std::int64_t i = 0; i < 64; ++i) {
      const float v = static_cast<float>(rng.uniform());
      s.features[i] = v;
      s.features[64 + i] = static_cast<float>(rng.uniform());
      s.label[i] = v > threshold ? 1.0f : 0.0f;
    }
    return s;
  };
  for (int i = 0; i < 6; ++i) ds.train.push_back(make_sample());
  for (int i = 0; i < 3; ++i) ds.test.push_back(make_sample());
  return ds;
}

struct TinyWorld {
  std::vector<ClientDataset> data;
  std::vector<Client> clients;
  ModelFactory factory;
};

TinyWorld make_world(std::uint64_t seed) {
  TinyWorld w;
  w.data.push_back(make_tiny_client(1, 0.4f, seed + 1));
  w.data.push_back(make_tiny_client(2, 0.6f, seed + 2));
  w.factory = make_model_factory(ModelKind::kFLNet, 2);
  Rng rng(seed);
  for (std::size_t k = 0; k < w.data.size(); ++k) {
    w.clients.emplace_back(w.data[k].client_id, &w.data[k], w.factory,
                           rng.fork(k));
  }
  return w;
}

TEST(Channel, EndToEndLosslessFedAvgMatchesDirectPath) {
  FLRunOptions opts;
  opts.rounds = 2;
  opts.client.steps = 3;
  opts.client.batch_size = 2;
  opts.client.learning_rate = 1e-3;
  opts.client.mu = 0.0;
  opts.seed = 99;

  // Channel path (default CommConfig: fp32 up and down).
  TinyWorld w1 = make_world(77);
  ChannelStats stats;
  opts.comm_stats = &stats;
  FedAvg algo;
  std::vector<ModelParameters> channel_finals =
      algo.run(w1.clients, w1.factory, opts);

  // Direct path, re-implemented against the raw Client/Server API.
  TinyWorld w2 = make_world(77);
  Rng rng(opts.seed);
  RoutabilityModelPtr init = w2.factory(rng);
  ModelParameters global = ModelParameters::from_model(*init);
  const std::vector<double> weights = Server::client_weights(w2.clients);
  for (int r = 0; r < opts.rounds; ++r) {
    std::vector<ModelParameters> updates;
    for (Client& c : w2.clients) {
      updates.push_back(c.local_update(global, opts.client));
    }
    global = Server::aggregate(updates, weights);
  }

  ASSERT_EQ(channel_finals.size(), 2u);
  ASSERT_TRUE(channel_finals[0].structurally_equal(global));
  for (std::size_t n = 0; n < global.entries().size(); ++n) {
    EXPECT_TRUE(
        channel_finals[0].entries()[n].value.equals(global.entries()[n].value))
        << global.entries()[n].name;
  }

  // And the exchange was fully metered: per round, K downloads + K
  // uploads of the fp32-sized snapshot.
  EXPECT_EQ(stats.rounds.size(), 2u);
  EXPECT_EQ(stats.downlink_messages, 4u);
  EXPECT_EQ(stats.uplink_messages, 4u);
  EXPECT_EQ(stats.uplink_bytes, stats.raw_uplink_bytes);
  EXPECT_GT(stats.simulated_latency_s, 0.0);
}

TEST(Channel, EndToEndInt8ShrinksUploadsAndStillLearns) {
  FLRunOptions opts;
  opts.rounds = 2;
  opts.client.steps = 3;
  opts.client.batch_size = 2;
  opts.client.learning_rate = 1e-3;
  opts.client.mu = 0.0;
  opts.seed = 99;
  opts.comm.uplink = CodecKind::kInt8Quant;

  TinyWorld w = make_world(81);
  ChannelStats stats;
  opts.comm_stats = &stats;
  FedAvg algo;
  std::vector<ModelParameters> finals = algo.run(w.clients, w.factory, opts);

  EXPECT_GE(stats.uplink_compression(), 3.5);
  // The quantized run still produces a usable model (scores in range,
  // structure intact).
  ASSERT_EQ(finals.size(), 2u);
  const double auc = w.clients[0].evaluate_test_auc(finals[0]);
  EXPECT_GE(auc, 0.0);
  EXPECT_LE(auc, 1.0);
}

// --- error feedback (client-side residual accumulators) --------------

TEST(ErrorFeedback, ResidualEventuallyTransmitsSmallCoordinates) {
  // TopK keeps 1 of 4 coordinates per send. Without error feedback the
  // small coordinates are dropped every round, forever; with it the
  // residual accumulates until they win a slot.
  ModelParameters update;
  Tensor t(Shape::of(4));
  t[0] = 4.0f;
  t[1] = 3.0f;
  t[2] = 2.0f;
  t[3] = 1.0f;
  update.mutable_entries().push_back({"w", false, t});

  auto accumulate_decoded = [&](bool feedback) {
    CommConfig config;
    config.uplink = CodecKind::kTopKDelta;
    config.topk_fraction = 0.25;
    config.error_feedback = feedback;
    Channel channel(config);
    Tensor sum(Shape::of(4));
    for (int r = 0; r < 8; ++r) {
      const ModelParameters decoded = channel.send_up(0, update, nullptr);
      for (std::int64_t i = 0; i < 4; ++i) {
        sum[i] += decoded.entries()[0].value[i];
      }
      channel.end_round();
    }
    return sum;
  };

  const Tensor with = accumulate_decoded(true);
  const Tensor without = accumulate_decoded(false);
  // Without feedback, only one of the large coordinates ever moves.
  int moved = 0;
  for (std::int64_t i = 0; i < 4; ++i) {
    if (without[i] != 0.0f) ++moved;
  }
  EXPECT_EQ(moved, 1);
  // With feedback every coordinate gets through, and more total mass
  // is delivered (only the final residual is still in flight).
  float with_total = 0.0f, without_total = 0.0f;
  for (std::int64_t i = 0; i < 4; ++i) {
    EXPECT_GT(with[i], 0.0f) << "coordinate " << i;
    with_total += with[i];
    without_total += without[i];
  }
  EXPECT_GT(with_total, without_total);
}

TEST(ErrorFeedback, ClosesGapToLosslessUnderHighCompression) {
  // FedAvg under an aggressive TopK uplink, with and without error
  // feedback, against the lossless fp32 reference. Error feedback must
  // recover most of the parameter-space gap.
  auto run_with = [&](CodecKind uplink, bool feedback, double* avg_auc) {
    FLRunOptions opts;
    opts.rounds = 12;
    opts.client.steps = 3;
    opts.client.batch_size = 2;
    opts.client.learning_rate = 1e-3;
    opts.client.mu = 0.0;
    opts.seed = 99;
    opts.comm.uplink = uplink;
    opts.comm.topk_fraction = 0.1;
    opts.comm.error_feedback = feedback;
    TinyWorld w = make_world(91);
    FedAvg algo;
    std::vector<ModelParameters> finals = algo.run(w.clients, w.factory, opts);
    *avg_auc = 0.5 * (w.clients[0].evaluate_test_auc(finals[0]) +
                      w.clients[1].evaluate_test_auc(finals[1]));
    return finals[0];
  };

  double auc_fp32 = 0.0, auc_lossy = 0.0, auc_corrected = 0.0;
  const ModelParameters fp32 = run_with(CodecKind::kFp32, false, &auc_fp32);
  const ModelParameters lossy =
      run_with(CodecKind::kTopKDelta, false, &auc_lossy);
  const ModelParameters corrected =
      run_with(CodecKind::kTopKDelta, true, &auc_corrected);

  // "Closes most of the gap": at least half the parameter-space error
  // and at least half the AUC deficit vs. the lossless run disappear.
  const double dist_lossy = lossy.squared_distance(fp32);
  const double dist_corrected = corrected.squared_distance(fp32);
  EXPECT_GT(dist_lossy, 0.0);
  EXPECT_LT(dist_corrected, 0.5 * dist_lossy);

  const double auc_gap_lossy = auc_fp32 - auc_lossy;
  const double auc_gap_corrected = auc_fp32 - auc_corrected;
  EXPECT_GT(auc_gap_lossy, 0.05);  // compression visibly hurt accuracy
  EXPECT_LT(auc_gap_corrected, 0.5 * auc_gap_lossy);
}

}  // namespace
}  // namespace fleda
