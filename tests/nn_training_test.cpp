// Tests for losses and optimizers, including end-to-end "can it learn"
// checks: a small conv net fit on a synthetic target must drive the
// loss down, Adam must beat its starting loss on a quadratic, L2 decay
// must shrink weights.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "nn/sequential.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace fleda {
namespace {

Tensor random_tensor(const Shape& shape, Rng& rng) {
  Tensor t(shape);
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  return t;
}

TEST(MseLoss, ZeroWhenEqual) {
  Tensor a(Shape{4}, {1, 2, 3, 4});
  LossResult r = mse_loss(a, a);
  EXPECT_FLOAT_EQ(r.value, 0.0f);
  EXPECT_FLOAT_EQ(sum(r.grad), 0.0f);
}

TEST(MseLoss, KnownValueAndGradient) {
  Tensor pred(Shape{2}, {1.0f, 3.0f});
  Tensor target(Shape{2}, {0.0f, 0.0f});
  LossResult r = mse_loss(pred, target);
  EXPECT_FLOAT_EQ(r.value, 5.0f);  // (1 + 9) / 2
  EXPECT_FLOAT_EQ(r.grad[0], 1.0f);   // 2*1/2
  EXPECT_FLOAT_EQ(r.grad[1], 3.0f);   // 2*3/2
}

TEST(MseLoss, GradMatchesFiniteDifference) {
  Rng rng(1);
  Tensor pred = random_tensor(Shape::of(3, 4), rng);
  Tensor target = random_tensor(Shape::of(3, 4), rng);
  LossResult r = mse_loss(pred, target);
  const double eps = 1e-3;
  for (std::int64_t i = 0; i < pred.numel(); ++i) {
    const float orig = pred[i];
    pred[i] = orig + static_cast<float>(eps);
    const double lp = mse_loss(pred, target).value;
    pred[i] = orig - static_cast<float>(eps);
    const double lm = mse_loss(pred, target).value;
    pred[i] = orig;
    EXPECT_NEAR((lp - lm) / (2 * eps), r.grad[i], 1e-3);
  }
}

TEST(BceWithLogits, MatchesClosedForm) {
  Tensor logits(Shape{2}, {0.0f, 2.0f});
  Tensor target(Shape{2}, {1.0f, 0.0f});
  LossResult r = bce_with_logits_loss(logits, target);
  const double l0 = std::log(2.0);                 // -log(sigmoid(0))
  const double l1 = 2.0 + std::log1p(std::exp(-2.0));  // -log(1-sigmoid(2))
  EXPECT_NEAR(r.value, (l0 + l1) / 2.0, 1e-5);
  EXPECT_NEAR(r.grad[0], (0.5 - 1.0) / 2.0, 1e-5);
}

TEST(BceWithLogits, StableAtExtremeLogits) {
  Tensor logits(Shape{2}, {80.0f, -80.0f});
  Tensor target(Shape{2}, {1.0f, 0.0f});
  LossResult r = bce_with_logits_loss(logits, target);
  EXPECT_TRUE(std::isfinite(r.value));
  EXPECT_NEAR(r.value, 0.0, 1e-5);
}

TEST(WeightedMse, UpweightsPositives) {
  Tensor pred(Shape{2}, {0.0f, 0.0f});
  Tensor target(Shape{2}, {0.5f, 1.0f});  // second is "positive"
  LossResult plain = mse_loss(pred, target);
  LossResult weighted = weighted_mse_loss(pred, target, 4.0f);
  EXPECT_GT(weighted.value, plain.value);
  // Positive-pixel grad scaled 4x.
  EXPECT_NEAR(weighted.grad[1] / plain.grad[1], 4.0f, 1e-5f);
  EXPECT_NEAR(weighted.grad[0] / plain.grad[0], 1.0f, 1e-5f);
  EXPECT_THROW(weighted_mse_loss(pred, target, 0.0f), std::invalid_argument);
}

TEST(Losses, ShapeMismatchThrows) {
  Tensor a(Shape{2});
  Tensor b(Shape{3});
  EXPECT_THROW(mse_loss(a, b), std::invalid_argument);
  EXPECT_THROW(bce_with_logits_loss(a, b), std::invalid_argument);
}

// Minimizing f(w) = sum (w - c)^2 directly through Parameter plumbing.
class QuadraticProblem {
 public:
  explicit QuadraticProblem(std::vector<float> target)
      : target_(std::move(target)), param_("w", Shape::of(static_cast<std::int64_t>(target_.size()))) {}

  double loss_and_grad() {
    double l = 0.0;
    for (std::int64_t i = 0; i < param_.value.numel(); ++i) {
      const float d = param_.value[i] - target_[static_cast<std::size_t>(i)];
      l += static_cast<double>(d) * d;
      param_.grad[i] = 2.0f * d;
    }
    return l;
  }

  Parameter& param() { return param_; }

 private:
  std::vector<float> target_;
  Parameter param_;
};

TEST(SGDOptimizer, ConvergesOnQuadratic) {
  QuadraticProblem problem({1.0f, -2.0f, 3.0f});
  SGDOptions opts;
  opts.lr = 0.1;
  SGD sgd({&problem.param()}, opts);
  for (int i = 0; i < 200; ++i) {
    sgd.zero_grad();
    problem.loss_and_grad();
    sgd.step();
  }
  EXPECT_LT(problem.loss_and_grad(), 1e-8);
}

TEST(SGDOptimizer, MomentumAcceleratesDescent) {
  QuadraticProblem slow({5.0f});
  QuadraticProblem fast({5.0f});
  SGDOptions base;
  base.lr = 0.01;
  SGD plain({&slow.param()}, base);
  SGDOptions mom = base;
  mom.momentum = 0.9;
  SGD with_momentum({&fast.param()}, mom);
  for (int i = 0; i < 30; ++i) {
    plain.zero_grad();
    slow.loss_and_grad();
    plain.step();
    with_momentum.zero_grad();
    fast.loss_and_grad();
    with_momentum.step();
  }
  EXPECT_LT(fast.loss_and_grad(), slow.loss_and_grad());
}

TEST(AdamOptimizer, ConvergesOnQuadratic) {
  QuadraticProblem problem({-1.0f, 0.5f});
  AdamOptions opts;
  opts.lr = 0.05;
  opts.weight_decay = 0.0;
  Adam adam({&problem.param()}, opts);
  for (int i = 0; i < 400; ++i) {
    adam.zero_grad();
    problem.loss_and_grad();
    adam.step();
  }
  EXPECT_LT(problem.loss_and_grad(), 1e-6);
}

TEST(AdamOptimizer, WeightDecayShrinksWeights) {
  Parameter p("w", Shape{1});
  p.value[0] = 1.0f;
  AdamOptions opts;
  opts.lr = 0.01;
  opts.weight_decay = 0.5;
  Adam adam({&p}, opts);
  for (int i = 0; i < 100; ++i) {
    adam.zero_grad();  // zero task gradient: only decay acts
    adam.step();
  }
  EXPECT_LT(std::fabs(p.value[0]), 0.5f);
}

TEST(AdamOptimizer, ResetStateRestartsMoments) {
  QuadraticProblem problem({2.0f});
  AdamOptions opts;
  opts.lr = 0.1;
  opts.weight_decay = 0.0;
  Adam adam({&problem.param()}, opts);
  for (int i = 0; i < 5; ++i) {
    adam.zero_grad();
    problem.loss_and_grad();
    adam.step();
  }
  adam.reset_state();
  // After reset the next step has the bias-corrected first-step size,
  // i.e. approximately lr in the gradient direction.
  adam.zero_grad();
  problem.loss_and_grad();
  const float before = problem.param().value[0];
  adam.step();
  const float after = problem.param().value[0];
  EXPECT_NEAR(std::fabs(after - before), 0.1f, 0.02f);
}

TEST(EndToEnd, TinyConvNetFitsLinearTarget) {
  // Target function: y = 2*x smoothed by a known 3x3 mean filter; a
  // 1-layer conv should fit it almost exactly.
  Rng rng(77);
  Conv2dOptions opts;
  opts.in_channels = 1;
  opts.out_channels = 1;
  opts.kernel = 3;
  opts.same_padding();
  Conv2d conv("c", opts, rng);

  Conv2d target_conv("t", opts, rng);
  target_conv.weight().value.fill(2.0f / 9.0f);
  target_conv.bias().value.fill(0.3f);

  AdamOptions aopts;
  aopts.lr = 0.02;
  aopts.weight_decay = 0.0;
  Adam adam(conv.parameters(), aopts);

  float final_loss = 1e9f;
  for (int step = 0; step < 300; ++step) {
    Tensor x = random_tensor(Shape::of(4, 1, 8, 8), rng);
    Tensor y = target_conv.forward(x, false);
    adam.zero_grad();
    Tensor pred = conv.forward(x, true);
    LossResult loss = mse_loss(pred, y);
    conv.backward(loss.grad);
    adam.step();
    final_loss = loss.value;
  }
  EXPECT_LT(final_loss, 1e-3f);
}

TEST(EndToEnd, DeeperNetReducesLossOnFixedBatch) {
  Rng rng(88);
  Sequential net("net");
  Conv2dOptions c1;
  c1.in_channels = 2;
  c1.out_channels = 8;
  c1.kernel = 3;
  c1.same_padding();
  net.emplace<Conv2d>("c1", c1, rng);
  net.emplace<ReLU>("r1");
  Conv2dOptions c2;
  c2.in_channels = 8;
  c2.out_channels = 1;
  c2.kernel = 3;
  c2.same_padding();
  net.emplace<Conv2d>("c2", c2, rng);

  Tensor x = random_tensor(Shape::of(4, 2, 8, 8), rng);
  Tensor y = random_tensor(Shape::of(4, 1, 8, 8), rng);

  AdamOptions aopts;
  aopts.lr = 0.01;
  aopts.weight_decay = 0.0;
  Adam adam(net.parameters(), aopts);
  float first = -1.0f, last = -1.0f;
  for (int step = 0; step < 200; ++step) {
    adam.zero_grad();
    Tensor pred = net.forward(x, true);
    LossResult loss = mse_loss(pred, y);
    if (step == 0) first = loss.value;
    last = loss.value;
    net.backward(loss.grad);
    adam.step();
  }
  EXPECT_LT(last, 0.25f * first);
}

}  // namespace
}  // namespace fleda
