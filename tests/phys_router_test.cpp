// Tests for the global router and DRC extraction: conservation
// (demand equals committed path volume), capacity semantics under
// blockage, rip-up reducing overflow, determinism, and hotspot-map
// invariants.
#include <gtest/gtest.h>

#include <cmath>

#include "phys/drc.hpp"
#include "phys/global_router.hpp"
#include "phys/netlist.hpp"
#include "phys/placer.hpp"
#include "tensor/ops.hpp"

namespace fleda {
namespace {

NetlistPtr make_netlist(BenchmarkSuite suite, std::uint64_t seed) {
  NetlistGenParams p;
  p.profile = profile_for(suite);
  p.grid_w = 32;
  p.grid_h = 32;
  p.gcell_cell_capacity = 8.0;
  Rng rng(seed);
  return generate_netlist(p, rng);
}

Placement make_placement(BenchmarkSuite suite, std::uint64_t seed) {
  NetlistPtr nl = make_netlist(suite, seed);
  PlacerOptions opts;
  opts.moves_per_cell = 1.0;
  Rng rng(seed + 1);
  return place(nl, opts, rng);
}

TEST(Router, DeterministicForSameSeed) {
  Placement pl = make_placement(BenchmarkSuite::kItc99, 31);
  RouterOptions opts;
  Rng r1(5), r2(5);
  RoutingResult a = route(pl, opts, r1);
  RoutingResult b = route(pl, opts, r2);
  EXPECT_TRUE(a.demand_h.equals(b.demand_h));
  EXPECT_TRUE(a.demand_v.equals(b.demand_v));
  EXPECT_DOUBLE_EQ(a.total_wirelength, b.total_wirelength);
}

TEST(Router, DemandAccountsForWirelengthAndPins) {
  Placement pl = make_placement(BenchmarkSuite::kIscas89, 33);
  RouterOptions opts;
  Rng rng(7);
  RoutingResult rr = route(pl, opts, rng);
  // Total wire demand = wirelength * unit demand; plus pin via demand
  // on both direction maps.
  const double pin_demand =
      static_cast<double>(opts.tech.pin_via_demand) *
      [&] {
        double w = 0.0;
        for (const Net& net : pl.netlist->nets) {
          for (std::int32_t c : net.cells) {
            w += pl.netlist->cells[static_cast<std::size_t>(c)].pin_weight;
          }
        }
        return w;
      }();
  const double total_demand =
      static_cast<double>(sum(rr.demand_h)) + sum(rr.demand_v);
  EXPECT_NEAR(total_demand,
              rr.total_wirelength * opts.tech.wire_unit_demand +
                  2.0 * pin_demand,
              0.01 * total_demand);
}

TEST(Router, ConnectionsMatchStarDecomposition) {
  Placement pl = make_placement(BenchmarkSuite::kIscas89, 35);
  RouterOptions opts;
  Rng rng(9);
  RoutingResult rr = route(pl, opts, rng);
  std::int64_t expected = 0;
  for (const Net& net : pl.netlist->nets) expected += net.degree() - 1;
  EXPECT_EQ(rr.num_connections, expected);
}

TEST(Router, CapacityReducedUnderMacros) {
  Placement pl = make_placement(BenchmarkSuite::kIspd15, 37);
  if (pl.macro_rects.empty()) GTEST_SKIP() << "no macros drawn";
  RouterOptions opts;
  Rng rng(11);
  RoutingResult rr = route(pl, opts, rng);
  const Rect& r = pl.macro_rects.front();
  const float free_cap = static_cast<float>(
      opts.tech.horizontal_tracks * opts.capacity_scale);
  EXPECT_LT(rr.capacity_h.at(r.y0, r.x0), 0.5f * free_cap);
  // And full capacity somewhere outside all macros.
  bool found_free = false;
  for (std::int64_t gy = 0; gy < 32 && !found_free; ++gy) {
    for (std::int64_t gx = 0; gx < 32 && !found_free; ++gx) {
      if (!pl.blocked(gx, gy)) {
        EXPECT_NEAR(rr.capacity_h.at(gy, gx), free_cap, 1e-3f);
        found_free = true;
      }
    }
  }
  EXPECT_TRUE(found_free);
}

TEST(Router, RipUpReducesOrMaintainsOverflow) {
  Placement pl = make_placement(BenchmarkSuite::kIwls05, 39);
  RouterOptions no_rrr;
  no_rrr.rrr_iterations = 0;
  RouterOptions with_rrr;
  with_rrr.rrr_iterations = 3;
  Rng r1(13), r2(13);
  RoutingResult before = route(pl, no_rrr, r1);
  RoutingResult after = route(pl, with_rrr, r2);
  EXPECT_LE(sum(after.overflow()), sum(before.overflow()) * 1.02f);
}

TEST(Router, OverflowIsNonNegativeAndConsistent) {
  Placement pl = make_placement(BenchmarkSuite::kItc99, 41);
  RouterOptions opts;
  Rng rng(15);
  RoutingResult rr = route(pl, opts, rng);
  Tensor of = rr.overflow();
  for (std::int64_t i = 0; i < of.numel(); ++i) {
    EXPECT_GE(of[i], 0.0f);
  }
  EXPECT_EQ(rr.overflowed_gcells() == 0, max_value(of) == 0.0f);
}

TEST(Router, HigherCapacityScaleLowersCongestion) {
  Placement pl = make_placement(BenchmarkSuite::kItc99, 43);
  RouterOptions tight;
  tight.capacity_scale = 0.8;
  RouterOptions loose;
  loose.capacity_scale = 2.0;
  Rng r1(17), r2(17);
  RoutingResult a = route(pl, tight, r1);
  RoutingResult b = route(pl, loose, r2);
  EXPECT_GT(sum(a.overflow()), sum(b.overflow()));
  EXPECT_GE(a.overflowed_gcells(), b.overflowed_gcells());
}

TEST(Router, CongestionRatioHandlesBlockedCells) {
  Placement pl = make_placement(BenchmarkSuite::kIspd15, 45);
  RouterOptions opts;
  Rng rng(19);
  RoutingResult rr = route(pl, opts, rng);
  Tensor ratio = rr.congestion_ratio();
  for (std::int64_t i = 0; i < ratio.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(ratio[i]));
    EXPECT_GE(ratio[i], 0.0f);
  }
}

TEST(Drc, HotspotMapIsBinary) {
  Placement pl = make_placement(BenchmarkSuite::kIwls05, 47);
  RouterOptions opts;
  Rng rng(21);
  RoutingResult rr = route(pl, opts, rng);
  DrcOptions dopts;
  Tensor hot = drc_hotspot_map(rr, dopts);
  for (std::int64_t i = 0; i < hot.numel(); ++i) {
    EXPECT_TRUE(hot[i] == 0.0f || hot[i] == 1.0f);
  }
}

TEST(Drc, LowerThresholdFindsMoreHotspots) {
  Placement pl = make_placement(BenchmarkSuite::kIspd15, 49);
  RouterOptions opts;
  Rng rng(23);
  RoutingResult rr = route(pl, opts, rng);
  DrcOptions strict;
  strict.threshold = 0.7;
  DrcOptions lax;
  lax.threshold = 1.5;
  EXPECT_GE(hotspot_rate(drc_hotspot_map(rr, strict)),
            hotspot_rate(drc_hotspot_map(rr, lax)));
}

TEST(Drc, DilationOnlyAddsHotspots) {
  Placement pl = make_placement(BenchmarkSuite::kItc99, 51);
  RouterOptions opts;
  Rng rng(25);
  RoutingResult rr = route(pl, opts, rng);
  DrcOptions no_dilation;
  no_dilation.dilation_support = 0;
  DrcOptions dilated;
  dilated.dilation_support = 2;
  Tensor base = drc_hotspot_map(rr, no_dilation);
  Tensor grown = drc_hotspot_map(rr, dilated);
  for (std::int64_t i = 0; i < base.numel(); ++i) {
    EXPECT_GE(grown[i], base[i]);
  }
}

TEST(Drc, HotspotRateSanityAcrossSuites) {
  // Labels must be neither empty nor saturated for learnability: check
  // pooled rate over a few designs per suite.
  for (BenchmarkSuite suite :
       {BenchmarkSuite::kIscas89, BenchmarkSuite::kItc99,
        BenchmarkSuite::kIwls05, BenchmarkSuite::kIspd15}) {
    double pooled = 0.0;
    const int designs = 3;
    for (int d = 0; d < designs; ++d) {
      Placement pl = make_placement(suite, 100 + static_cast<std::uint64_t>(d));
      RouterOptions opts;
      opts.capacity_scale = profile_for(suite).capacity_scale;
      Rng rng(200 + static_cast<std::uint64_t>(d));
      RoutingResult rr = route(pl, opts, rng);
      DrcOptions dopts;
      dopts.threshold = opts.tech.drc_overflow_ratio;
      pooled += hotspot_rate(drc_hotspot_map(rr, dopts));
    }
    pooled /= designs;
    EXPECT_GT(pooled, 0.001) << to_string(suite);
    EXPECT_LT(pooled, 0.75) << to_string(suite);
  }
}

TEST(Drc, EmptyLabelThrows) {
  EXPECT_THROW(hotspot_rate(Tensor()), std::invalid_argument);
}

}  // namespace
}  // namespace fleda
