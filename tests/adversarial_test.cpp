// Adversarial arms-race tests: the Krum / MultiKrum selection math and
// cohort-size guards, the AnomalyDetector's norm + cosine flagging and
// its precision/recall on the stock sign-flip scenario, the
// ReputationBook weight dynamics and the ReputationWeighted sampler
// they drive (including determinism across thread-pool sizes), the
// adaptive (tolerance-probing) and colluding attacker behaviors, the
// diurnal availability scenario, the AttackSpec / periodic-dropout
// input validation, and AsyncFedAvg's staleness-aware dispatch gate.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "fl/aggregation.hpp"
#include "fl/anomaly.hpp"
#include "fl/async_fedavg.hpp"
#include "fl/fedavg.hpp"
#include "fl/participation.hpp"
#include "fl/synthetic.hpp"
#include "obs/telemetry.hpp"
#include "sim/profile.hpp"
#include "util/thread_pool.hpp"

namespace fleda {
namespace {

ModelParameters make_params(const std::vector<float>& weights_values) {
  ModelParameters p;
  ParameterEntry w;
  w.name = "w";
  w.value = Tensor(Shape{static_cast<std::int64_t>(weights_values.size())});
  for (std::size_t i = 0; i < weights_values.size(); ++i) {
    w.value[static_cast<std::int64_t>(i)] = weights_values[i];
  }
  p.mutable_entries().push_back(std::move(w));
  return p;
}

const float* values_of(const ModelParameters& p) {
  return p.entries()[0].value.data();
}

bool bit_identical(const ModelParameters& a, const ModelParameters& b) {
  if (!a.structurally_equal(b)) return false;
  for (std::size_t n = 0; n < a.entries().size(); ++n) {
    if (!a.entries()[n].value.equals(b.entries()[n].value)) return false;
  }
  return true;
}

// --- Krum / MultiKrum ------------------------------------------------

// Five 1-d updates {0, 1, 2, 10, 100}, f = 1: each member is scored by
// its squared distances to its n - f - 2 = 2 nearest neighbors.
//   0 -> 1 + 4 = 5;  1 -> 1 + 1 = 2;  2 -> 1 + 4 = 5;
//   10 -> 64 + 81 = 145;  100 -> 8100 + 9604 = 17704.
std::vector<ModelParameters> krum_fixture() {
  std::vector<ModelParameters> cohort;
  for (float v : {0.0f, 1.0f, 2.0f, 10.0f, 100.0f}) {
    cohort.push_back(make_params({v}));
  }
  return cohort;
}

std::vector<AggregationInput> as_inputs(
    const std::vector<ModelParameters>& cohort) {
  std::vector<AggregationInput> inputs;
  for (const ModelParameters& p : cohort) inputs.push_back({&p, 1.0, 0});
  return inputs;
}

TEST(KrumRule, PicksTheUpdateDeepestInTheHonestCluster) {
  const std::vector<ModelParameters> cohort = krum_fixture();
  const ModelParameters m =
      Krum(1).aggregate(ModelParameters{}, as_inputs(cohort));
  // Score 2 is the minimum: the winner is the update "1", verbatim.
  EXPECT_FLOAT_EQ(values_of(m)[0], 1.0f);
}

TEST(KrumRule, SelectionIgnoresSampleCountWeights) {
  const std::vector<ModelParameters> cohort = krum_fixture();
  std::vector<AggregationInput> inputs = as_inputs(cohort);
  inputs[4].weight = 1e9;  // the far outlier must still lose
  const ModelParameters m = Krum(1).aggregate(ModelParameters{}, inputs);
  EXPECT_FLOAT_EQ(values_of(m)[0], 1.0f);
}

TEST(KrumRule, RefusesCohortsBelowTwoFPlusThree) {
  const std::vector<ModelParameters> cohort = krum_fixture();
  std::vector<AggregationInput> inputs = as_inputs(cohort);
  inputs.pop_back();  // n = 4 < 2f + 3 = 5
  try {
    Krum(1).aggregate(ModelParameters{}, inputs);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("2f + 3"), std::string::npos)
        << e.what();
  }
  EXPECT_THROW(Krum(-1), std::invalid_argument);
}

TEST(MultiKrumRule, AveragesTheMLowestScoredUpdates) {
  const std::vector<ModelParameters> cohort = krum_fixture();
  // Scores {5, 2, 5, 145, 17704}: the two lowest are "1" (score 2) and
  // "0" (score 5, the tie at 5 breaks by cohort index).
  const ModelParameters m =
      MultiKrum(1, 2).aggregate(ModelParameters{}, as_inputs(cohort));
  EXPECT_FLOAT_EQ(values_of(m)[0], 0.5f);
  // m = 0 selects n - f - 2 = 2 automatically: the same result.
  const ModelParameters auto_m =
      MultiKrum(1, 0).aggregate(ModelParameters{}, as_inputs(cohort));
  EXPECT_TRUE(bit_identical(m, auto_m));
}

TEST(MultiKrumRule, ValidatesM) {
  EXPECT_THROW(MultiKrum(1, -1), std::invalid_argument);
  const std::vector<ModelParameters> cohort = krum_fixture();
  try {
    MultiKrum(1, 3).aggregate(ModelParameters{}, as_inputs(cohort));
    FAIL() << "expected invalid_argument";  // m = 3 > n - f - 2 = 2
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("n - f - 2"), std::string::npos)
        << e.what();
  }
}

// --- AnomalyDetector -------------------------------------------------

TEST(AnomalyDetectorTest, FlagsInflatedNormsAndReversedDeltas) {
  AnomalyConfig config;
  config.enabled = true;
  AnomalyDetector detector(config);

  // Eight honest deltas near {1, 0}, one inflated to norm 30 (> 3x the
  // median), one reversed at an honest-looking norm (cosine -1).
  std::vector<ModelParameters> deltas;
  std::vector<std::size_t> clients;
  for (std::size_t k = 0; k < 8; ++k) {
    deltas.push_back(
        make_params({1.0f, 0.1f * static_cast<float>(k % 3)}));
    clients.push_back(k);
  }
  deltas.push_back(make_params({30.0f, 0.0f}));
  clients.push_back(8);
  deltas.push_back(make_params({-1.0f, 0.0f}));
  clients.push_back(9);

  std::vector<const ModelParameters*> ptrs;
  for (const ModelParameters& d : deltas) ptrs.push_back(&d);
  const std::vector<UpdateVerdict> verdicts =
      detector.score_cohort(clients, ptrs);

  ASSERT_EQ(verdicts.size(), 10u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_FALSE(verdicts[i].flagged) << "honest client " << i;
  }
  EXPECT_TRUE(verdicts[8].flagged);  // norm outlier
  EXPECT_TRUE(verdicts[9].flagged);  // reversed direction
  EXPECT_LT(verdicts[9].cosine, -0.2);
  EXPECT_NEAR(verdicts[8].norm, 30.0, 1e-6);
  // Tallies accumulate per client; the baseline is the cohort median.
  EXPECT_EQ(detector.scored(8), 1u);
  EXPECT_EQ(detector.flagged(8), 1u);
  EXPECT_EQ(detector.flagged(0), 0u);
  EXPECT_EQ(detector.total_scored(), 10u);
  EXPECT_EQ(detector.total_flagged(), 2u);
  EXPECT_GT(detector.baseline_norm(), 0.0);
}

TEST(AnomalyDetectorTest, TinyCohortsAreNotScored) {
  AnomalyDetector detector;  // min_cohort defaults to 4
  const ModelParameters a = make_params({100.0f});
  const ModelParameters b = make_params({1.0f});
  const std::vector<UpdateVerdict> verdicts =
      detector.score_cohort({0, 1}, {&a, &b});
  EXPECT_FALSE(verdicts[0].flagged);
  EXPECT_FALSE(verdicts[1].flagged);
  EXPECT_EQ(detector.total_scored(), 0u);
}

TEST(AnomalyDetectorTest, ConfigAndInputsAreValidated) {
  AnomalyConfig bad;
  bad.norm_factor = 1.0;
  EXPECT_THROW(AnomalyDetector{bad}, std::invalid_argument);
  bad = AnomalyConfig{};
  bad.cosine_threshold = 1.0;
  EXPECT_THROW(AnomalyDetector{bad}, std::invalid_argument);
  bad = AnomalyConfig{};
  bad.baseline_decay = 1.0;
  EXPECT_THROW(AnomalyDetector{bad}, std::invalid_argument);
  bad = AnomalyConfig{};
  bad.min_cohort = 1;
  EXPECT_THROW(AnomalyDetector{bad}, std::invalid_argument);

  AnomalyDetector detector;
  const ModelParameters a = make_params({1.0f});
  EXPECT_THROW(detector.score_cohort({0, 1}, {&a}), std::invalid_argument);
}

// --- ReputationBook --------------------------------------------------

TEST(ReputationBookTest, PenaltyRecoveryAndFloor) {
  ReputationBook book;  // penalty 0.25, reward 0.05, floor 0.02
  EXPECT_DOUBLE_EQ(book.weight(3), 1.0);  // unobserved clients weigh 1
  book.observe(3, /*flagged=*/true);
  EXPECT_DOUBLE_EQ(book.weight(3), 0.25);
  book.observe(3, true);
  EXPECT_DOUBLE_EQ(book.weight(3), 0.0625);
  for (int i = 0; i < 10; ++i) book.observe(3, true);
  EXPECT_DOUBLE_EQ(book.weight(3), 0.02);  // clamped at the floor
  EXPECT_EQ(book.flags(3), 12u);
  // Clean observations recover a fraction of the remaining gap to 1.
  book.observe(3, false);
  EXPECT_DOUBLE_EQ(book.weight(3), 0.02 + 0.05 * (1.0 - 0.02));
  for (int i = 0; i < 500; ++i) book.observe(3, false);
  EXPECT_NEAR(book.weight(3), 1.0, 1e-9);
  EXPECT_EQ(book.known_clients(), 4u);
}

TEST(ReputationBookTest, ConfigIsValidated) {
  ReputationConfig bad;
  bad.flag_penalty = 0.0;
  EXPECT_THROW(ReputationBook{bad}, std::invalid_argument);
  bad = ReputationConfig{};
  bad.flag_penalty = 1.0;
  EXPECT_THROW(ReputationBook{bad}, std::invalid_argument);
  bad = ReputationConfig{};
  bad.clean_reward = 1.5;
  EXPECT_THROW(ReputationBook{bad}, std::invalid_argument);
  bad = ReputationConfig{};
  bad.floor = 0.0;
  EXPECT_THROW(ReputationBook{bad}, std::invalid_argument);
  ReputationConfig ok;
  ok.floor = 1.0;
  EXPECT_NO_THROW(ReputationBook{ok});
}

// --- ReputationWeighted sampling ------------------------------------

TEST(ReputationWeightedTest, DownsamplesFlaggedClients) {
  ReputationConfig config;
  config.flag_penalty = 0.02;  // one flag -> straight to the floor
  ReputationBook book(config);
  book.observe(0, true);

  ReputationWeighted policy(/*sample_size=*/3, &book);
  ParticipationContext ctx;
  ctx.num_clients = 6;
  int picked_flagged = 0, picked_honest = 0;
  for (int round = 0; round < 200; ++round) {
    ctx.round = round;
    const std::vector<std::size_t> cohort = policy.select(ctx);
    EXPECT_EQ(cohort.size(), 3u);
    for (std::size_t i = 1; i < cohort.size(); ++i) {
      EXPECT_LT(cohort[i - 1], cohort[i]);  // strictly ascending
    }
    for (std::size_t k : cohort) {
      if (k == 0) ++picked_flagged;
      if (k == 1) ++picked_honest;
    }
  }
  // Client 0 weighs 0.02 against five clients at 1.0: it should be
  // sampled far more rarely than any honest client (3 of 6 per round
  // would be ~100 appearances uniformly).
  EXPECT_GT(picked_honest, 80);
  EXPECT_LT(picked_flagged, picked_honest / 4);

  EXPECT_THROW(ReputationWeighted(0, &book), std::invalid_argument);
  EXPECT_THROW(ReputationWeighted(3, nullptr), std::invalid_argument);
}

// --- end-to-end defense wiring --------------------------------------

FLRunOptions tiny_options(int rounds) {
  FLRunOptions opts;
  opts.rounds = rounds;
  opts.client.steps = 4;
  opts.client.batch_size = 2;
  opts.client.learning_rate = 5e-3;
  opts.client.mu = 0.0;
  opts.seed = 7;
  return opts;
}

SyntheticWorldOptions nine_clients() {
  SyntheticWorldOptions options;
  options.num_clients = 9;
  return options;
}

TEST(DefenseWiring, DetectorCatchesTheStockSignFlipRun) {
  AttackSpec attack;
  attack.kind = AttackKind::kSignFlip;
  attack.scale = 10.0;

  AnomalyConfig config;
  config.enabled = true;
  AnomalyDetector detector(config);
  TelemetrySink sink;

  SyntheticWorld w = make_synthetic_world(71, nine_clients());
  FLRunOptions opts = tiny_options(4);
  opts.sim = SimConfig::uniform(9);
  add_attackers(opts.sim, 3, attack);  // attackers at 0, 3, 6
  opts.anomaly = config;
  opts.detector = &detector;
  opts.telemetry = &sink;
  FedAvg algo;
  algo.run(w.clients, w.factory, opts);

  // Event-level precision/recall against the oracle attacker set: the
  // 10x sign-flip is caught by norm and direction alike, so the stock
  // scenario must clear the >= 0.8 / >= 0.8 bar with room.
  double tp = 0.0, fp = 0.0, fn = 0.0;
  for (std::size_t k = 0; k < 9; ++k) {
    const bool is_attacker = k % 3 == 0;
    const double flags = static_cast<double>(detector.flagged(k));
    const double scored = static_cast<double>(detector.scored(k));
    if (is_attacker) {
      tp += flags;
      fn += scored - flags;
    } else {
      fp += flags;
    }
  }
  EXPECT_GE(tp / std::max(tp + fp, 1.0), 0.8);
  EXPECT_GE(tp / std::max(tp + fn, 1.0), 0.8);

  // Telemetry keeps oracle truth and server inference side by side.
  ASSERT_EQ(sink.rounds().size(), 4u);
  for (const RoundTelemetry& r : sink.rounds()) {
    EXPECT_EQ(r.attackers_true, 3);
    EXPECT_EQ(r.attackers_detected, 3);
  }
}

TEST(DefenseWiring, ReputationWeightedNeedsVerdictsToWeightBy) {
  SyntheticWorld w = make_synthetic_world(72, nine_clients());
  FLRunOptions opts = tiny_options(1);
  opts.participation.kind = ParticipationKind::kReputationWeighted;
  opts.participation.sample_size = 5;
  FedAvg algo;
  try {
    algo.run(w.clients, w.factory, opts);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("needs verdicts"),
              std::string::npos)
        << e.what();
  }
}

TEST(DefenseWiring, ReputationRunsAreDeterministicAcrossPools) {
  AttackSpec attack;
  attack.kind = AttackKind::kSignFlip;
  attack.scale = 10.0;
  auto run_rep = [&] {
    SyntheticWorld w = make_synthetic_world(73, nine_clients());
    FLRunOptions opts = tiny_options(4);
    opts.sim = SimConfig::uniform(9);
    add_attackers(opts.sim, 3, attack);
    opts.anomaly.enabled = true;
    opts.participation.kind = ParticipationKind::kReputationWeighted;
    opts.participation.sample_size = 5;
    opts.aggregation.rule = "trimmed_mean";
    opts.aggregation.trim_fraction = 0.34;
    FedAvg algo;
    return algo.run(w.clients, w.factory, opts).front();
  };
  std::vector<ModelParameters> finals;
  for (std::size_t threads : {std::size_t{1}, std::size_t{2},
                              std::size_t{8}}) {
    ThreadPool::reset_global(threads);
    finals.push_back(run_rep());
  }
  ThreadPool::reset_global(0);
  EXPECT_TRUE(bit_identical(finals[0], finals[1]));
  EXPECT_TRUE(bit_identical(finals[0], finals[2]));
}

// --- adaptive and colluding attackers -------------------------------

TEST(AdaptiveAttack, FallsBackToHonestNormThenTracksTheTrajectory) {
  AttackSpec spec;
  spec.kind = AttackKind::kAdaptiveScaled;
  spec.scale = 2.0;
  AttackState state;

  // First send: no trajectory yet — tolerance falls back to the honest
  // delta's own norm (1), so the reversed delta has norm 2.
  const ModelParameters ref0 = make_params({0.0f, 0.0f});
  const ModelParameters a0 = apply_attack(
      spec, make_params({1.0f, 0.0f}), ref0, /*client=*/0, /*nonce=*/0,
      &state);
  EXPECT_FLOAT_EQ(values_of(a0)[0], -2.0f);
  EXPECT_EQ(state.observations, 0u);

  // Second send: the reference moved by 0.5 — the EMA seeds at that
  // step, and the attack magnitude becomes scale * 0.5 = 1.
  const ModelParameters ref1 = make_params({0.5f, 0.0f});
  const ModelParameters a1 = apply_attack(
      spec, make_params({1.5f, 0.0f}), ref1, 0, 1, &state);
  EXPECT_EQ(state.observations, 1u);
  EXPECT_DOUBLE_EQ(state.step_norm_ema, 0.5);
  EXPECT_FLOAT_EQ(values_of(a1)[0], -0.5f);  // 0.5 - 1.0

  // Stateless application degrades to the honest-norm fallback.
  const ModelParameters stateless = apply_attack(
      spec, make_params({1.5f, 0.0f}), ref1, 0, 1, nullptr);
  EXPECT_FLOAT_EQ(values_of(stateless)[0], -1.5f);  // 0.5 - 2*1
}

TEST(AdaptiveAttack, EvadesTheNormClipThatStopsTheObliviousAttacker) {
  auto run_nine = [&](std::size_t attackers, const AttackSpec& attack) {
    SyntheticWorld w = make_synthetic_world(74, nine_clients());
    FLRunOptions opts = tiny_options(4);
    opts.aggregation.rule = "norm_clipped_mean";
    opts.aggregation.clip_norm = 0.05;
    opts.sim = SimConfig::uniform(9);
    if (attackers > 0) add_attackers(opts.sim, attackers, attack);
    FedAvg algo;
    return algo.run(w.clients, w.factory, opts).front();
  };
  const ModelParameters clean = run_nine(0, {});
  AttackSpec oblivious;
  oblivious.kind = AttackKind::kScaled;
  oblivious.scale = 50.0;
  AttackSpec adaptive;
  adaptive.kind = AttackKind::kAdaptiveScaled;
  adaptive.scale = 3.0;
  const double oblivious_dist =
      run_nine(3, oblivious).squared_distance(clean);
  const double adaptive_dist = run_nine(3, adaptive).squared_distance(clean);
  // The 50x oversized update is clipped back to an honest-sized step;
  // the tolerance-probing reversal stays inside the clip and drags the
  // model measurably further from the attack-free trajectory.
  EXPECT_GT(adaptive_dist, oblivious_dist);
}

TEST(CollusionAttack, SharesOneDirectionPerSeedAcrossClients) {
  AttackSpec spec;
  spec.kind = AttackKind::kCollusion;
  spec.scale = 2.0;
  const ModelParameters reference = make_params({0.0f, 0.0f, 0.0f});
  const ModelParameters update = make_params({1.0f, 0.0f, 0.0f});

  // Different clients, different nonces — the SAME poison, bit for bit
  // (the direction is drawn from the spec seed alone).
  const ModelParameters a = apply_attack(spec, update, reference, 1, 0);
  const ModelParameters b = apply_attack(spec, update, reference, 2, 5);
  EXPECT_TRUE(bit_identical(a, b));
  EXPECT_FALSE(bit_identical(a, update));

  // The magnitude scales with the honest delta norm along the same
  // direction: doubling the honest norm doubles the poison.
  const ModelParameters big = apply_attack(
      spec, make_params({2.0f, 0.0f, 0.0f}), reference, 3, 0);
  const double cos = a.dot(big) / std::sqrt(a.squared_l2_norm() *
                                            big.squared_l2_norm());
  EXPECT_NEAR(cos, 1.0, 1e-6);
  EXPECT_NEAR(std::sqrt(big.squared_l2_norm() / a.squared_l2_norm()), 2.0,
              1e-5);

  // A different seed is a different conspiracy.
  AttackSpec other = spec;
  other.seed = 1234;
  EXPECT_FALSE(
      bit_identical(apply_attack(other, update, reference, 1, 0), a));
}

// --- scenarios and validation ---------------------------------------

TEST(DiurnalScenario, PhasesNightWindowsAcrossZones) {
  // 6 clients over 3 zones, 100 s days, 25% night, 2 days: zone z goes
  // dark at z/3 of a day, so exactly one zone sleeps at any instant.
  const SimConfig config = SimConfig::diurnal(6, 100.0, 3, 0.25, 2);
  ASSERT_EQ(config.profiles.size(), 6u);
  // Zone 0 (clients 0 and 3): offline [0, 25) and [100, 125).
  EXPECT_FALSE(config.profile(0).is_online(10.0));
  EXPECT_FALSE(config.profile(3).is_online(10.0));
  EXPECT_TRUE(config.profile(0).is_online(30.0));
  EXPECT_FALSE(config.profile(0).is_online(110.0));
  EXPECT_TRUE(config.profile(0).is_online(130.0));  // only `days` repeats
  EXPECT_DOUBLE_EQ(config.profile(0).next_online(10.0), 25.0);
  // Zone 1 (client 1): phased a third of a day later.
  EXPECT_TRUE(config.profile(1).is_online(10.0));
  EXPECT_FALSE(config.profile(1).is_online(40.0));
  // At t = 10 only zone 0's two clients are dark — the availability
  // wave keeps ~night_fraction of the fleet offline, never everyone.
  int offline = 0;
  for (std::size_t k = 0; k < 6; ++k) {
    if (!config.profile(k).is_online(10.0)) ++offline;
  }
  EXPECT_EQ(offline, 2);
}

TEST(DiurnalScenario, ValidatesItsShape) {
  EXPECT_THROW(SimConfig::diurnal(6, 0.0, 3, 0.25, 2),
               std::invalid_argument);
  EXPECT_THROW(SimConfig::diurnal(
                   6, std::numeric_limits<double>::infinity(), 3, 0.25, 2),
               std::invalid_argument);
  EXPECT_THROW(SimConfig::diurnal(6, 100.0, 0, 0.25, 2),
               std::invalid_argument);
  EXPECT_THROW(SimConfig::diurnal(6, 100.0, 3, 1.0, 2),
               std::invalid_argument);
  EXPECT_THROW(SimConfig::diurnal(6, 100.0, 3, -0.1, 2),
               std::invalid_argument);
  EXPECT_THROW(SimConfig::diurnal(6, 100.0, 3, 0.25, -1),
               std::invalid_argument);
  // Zero night (or zero days) is a valid always-on fleet.
  const SimConfig always_on = SimConfig::diurnal(6, 100.0, 3, 0.0, 2);
  EXPECT_TRUE(always_on.profile(0).offline.empty());
}

TEST(PeriodicDropout, ValidatesInputs) {
  SimConfig config = SimConfig::uniform(3);
  EXPECT_THROW(add_periodic_dropout(config, 0, -1.0, 10.0, 1.0, 2),
               std::invalid_argument);
  EXPECT_THROW(add_periodic_dropout(config, 0, 0.0, 10.0, 0.0, 2),
               std::invalid_argument);
  EXPECT_THROW(add_periodic_dropout(config, 0, 0.0, 10.0, 11.0, 2),
               std::invalid_argument);
  EXPECT_THROW(add_periodic_dropout(config, 0, 0.0, 10.0, 1.0, -1),
               std::invalid_argument);
  EXPECT_THROW(add_periodic_dropout(
                   config, 0, std::numeric_limits<double>::quiet_NaN(), 10.0,
                   1.0, 2),
               std::invalid_argument);
  add_periodic_dropout(config, 1, 5.0, 10.0, 2.0, 2);
  ASSERT_EQ(config.profiles[1].offline.size(), 2u);
  EXPECT_DOUBLE_EQ(config.profiles[1].offline[1].begin, 15.0);
  EXPECT_DOUBLE_EQ(config.profiles[1].offline[1].end, 17.0);
}

TEST(AttackSpecValidation, NegativeScaleAndBadNoiseAreRejected) {
  const ModelParameters reference = make_params({0.0f});
  const ModelParameters update = make_params({1.0f});
  AttackSpec bad;
  bad.kind = AttackKind::kScaled;
  bad.scale = -1.0;  // a negative scale silently inverted the attack
  EXPECT_THROW(apply_attack(bad, update, reference, 0, 0),
               std::invalid_argument);
  bad.scale = 1.0;
  bad.noise_stddev = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(apply_attack(bad, update, reference, 0, 0),
               std::invalid_argument);
  // add_attackers validates the spec before touching any profile.
  SimConfig config = SimConfig::uniform(4);
  AttackSpec negative;
  negative.kind = AttackKind::kSignFlip;
  negative.scale = -2.0;
  EXPECT_THROW(add_attackers(config, 1, negative), std::invalid_argument);
  for (const ClientProfile& p : config.profiles) {
    EXPECT_EQ(p.attack.kind, AttackKind::kNone);
  }
}

// --- AsyncFedAvg staleness gate -------------------------------------

TEST(AsyncStalenessGate, NegativeAgeIsRejected) {
  AsyncConfig config;
  config.staleness_gate_age = -1;
  EXPECT_THROW(AsyncFedAvg{config}, std::invalid_argument);
}

TEST(AsyncStalenessGate, EngagesOnlyBehindAFiniteInFlightCap) {
  auto run_async = [&](int max_in_flight, int gate_age,
                       StalenessHistogram* staleness) {
    SyntheticWorld w = make_synthetic_world(75, nine_clients());
    // 40 aggregations with one 10x straggler: slow enough that its
    // uploads arrive many versions behind, fast enough that they keep
    // arriving (and being scored for staleness) throughout the run.
    FLRunOptions opts = tiny_options(40);
    opts.sim = SimConfig::with_straggler(9, 0, 10.0);
    TelemetrySink sink;
    opts.telemetry = &sink;
    AsyncConfig config;
    config.buffer_size = 4;
    config.max_in_flight = max_in_flight;
    config.staleness_gate_age = gate_age;
    AsyncFedAvg algo(config);
    const ModelParameters final =
        algo.run(w.clients, w.factory, opts).front();
    EXPECT_EQ(sink.rounds().size(), 40u);  // the gate never deadlocks
    if (staleness != nullptr) {
      for (const RoundTelemetry& r : sink.rounds()) {
        for (int b = 0; b < StalenessHistogram::kBuckets; ++b) {
          staleness->counts[static_cast<std::size_t>(b)] +=
              r.staleness.counts[static_cast<std::size_t>(b)];
        }
      }
    }
    return final;
  };

  // With an unlimited cap the gate has nothing to tighten: any
  // gate_age replays the uncapped run bit for bit.
  EXPECT_TRUE(bit_identical(run_async(0, 0, nullptr),
                            run_async(0, 5, nullptr)));

  // Behind a finite cap the gate engages: the scenario does produce
  // deeply stale buffered updates (buckets 3-4 / 5-8 / 9+), so a
  // gate_age of 1 throttles dispatch and changes the event schedule —
  // deterministically (a replay is bit-identical).
  StalenessHistogram ungated;
  const ModelParameters f_ungated = run_async(8, 0, &ungated);
  const ModelParameters f_gated = run_async(8, 1, nullptr);
  EXPECT_GT(ungated.counts[3] + ungated.counts[4] + ungated.counts[5], 0u);
  EXPECT_FALSE(bit_identical(f_ungated, f_gated));
  EXPECT_TRUE(bit_identical(f_gated, run_async(8, 1, nullptr)));
}

}  // namespace
}  // namespace fleda
