// Heterogeneity study: quantifies the client-level non-IID-ness that
// motivates the whole paper. Trains one local model per client, then
// evaluates every model on every client's test data — the resulting
// transfer matrix shows strong diagonal (own-suite) performance and
// degraded cross-suite transfer, plus per-suite feature statistics.
//
// Usage: heterogeneity_study [--scale smoke|quick|full] [--model flnet]
#include <cstdio>

#include "core/experiment.hpp"
#include "fl/baselines.hpp"
#include "metrics/stats.hpp"
#include "phys/features.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

using namespace fleda;

int main(int argc, char** argv) {
  CliParser cli(argc, argv);
  ExperimentConfig cfg;
  cfg.model = parse_model_kind(cli.get_string("model", "flnet"));
  cfg.scale = resolve_scale(cli.get_string("scale", "quick"));
  cfg.cache_dir = ".fleda-cache";

  Experiment exp(cfg);
  std::printf("Preparing the 9-client dataset...\n");
  exp.prepare_data();
  const auto& data = exp.data();

  // Per-suite feature statistics: the raw heterogeneity.
  AsciiTable stats("Per-client feature statistics (channel means)");
  stats.set_header({"Client", "Suite", "Cell density", "RUDY", "Pins",
                    "Capacity", "Hotspot rate"});
  const std::int64_t hw = cfg.scale.grid * cfg.scale.grid;
  for (const ClientDataset& ds : data) {
    double means[kNumFeatureChannels] = {0};
    for (const Sample& s : ds.train) {
      for (std::int64_t c = 0; c < kNumFeatureChannels; ++c) {
        for (std::int64_t i = 0; i < hw; ++i) {
          means[c] += s.features[c * hw + i];
        }
      }
    }
    const double denom = static_cast<double>(ds.num_train()) * hw;
    for (double& m : means) m /= denom;
    stats.add_row({"Client " + std::to_string(ds.client_id),
                   to_string(ds.suite), AsciiTable::fmt(means[0], 3),
                   AsciiTable::fmt(means[2], 3), AsciiTable::fmt(means[3], 3),
                   AsciiTable::fmt(means[5], 3),
                   AsciiTable::fmt(dataset_hotspot_rate(ds.train), 3)});
  }
  stats.print();

  // Train the 9 local models.
  std::printf("Training 9 local models...\n");
  ModelFactory factory =
      make_model_factory(cfg.model, kNumFeatureChannels);
  // All nine clients borrow scratch models from one pool.
  auto pool = std::make_shared<ModelPool>(factory);
  Rng rng(7);
  std::vector<Client> clients;
  clients.reserve(data.size());
  for (const ClientDataset& ds : data) {
    clients.emplace_back(ds.client_id, &ds, pool,
                         rng.fork(static_cast<std::uint64_t>(ds.client_id)));
  }
  BaselineOptions bopts;
  bopts.total_steps = cfg.scale.rounds * cfg.scale.steps_per_round;
  PaperHyperParams hp;
  bopts.client.batch_size = cfg.scale.batch_size;
  bopts.client.learning_rate = hp.learning_rate;
  bopts.client.l2_regularization = hp.l2_regularization;
  std::vector<ModelParameters> locals =
      train_local_baselines(clients, factory, bopts);

  // Cross-client transfer matrix.
  std::printf("Evaluating the 9x9 transfer matrix...\n");
  const std::size_t K = clients.size();
  std::vector<std::vector<double>> matrix(K, std::vector<double>(K, 0.0));
  for (std::size_t model_k = 0; model_k < K; ++model_k) {
    parallel_for(K, [&](std::size_t begin, std::size_t end) {
      for (std::size_t test_k = begin; test_k < end; ++test_k) {
        matrix[model_k][test_k] =
            clients[test_k].evaluate_test_auc(locals[model_k]);
      }
    });
  }

  AsciiTable t("Transfer matrix: model of row-client tested on column-client");
  std::vector<std::string> header = {"Model \\ Test"};
  for (std::size_t k = 1; k <= K; ++k) header.push_back("C" + std::to_string(k));
  t.set_header(std::move(header));
  double diag = 0.0, off = 0.0;
  for (std::size_t i = 0; i < K; ++i) {
    std::vector<std::string> row = {"b" + std::to_string(i + 1)};
    for (std::size_t j = 0; j < K; ++j) {
      row.push_back(AsciiTable::fmt(matrix[i][j]));
      (i == j ? diag : off) += matrix[i][j];
    }
    t.add_row(std::move(row));
  }
  t.print();
  std::printf("Mean own-client AUC: %.3f | mean cross-client AUC: %.3f\n",
              diag / static_cast<double>(K),
              off / static_cast<double>(K * (K - 1)));
  std::printf("The gap is the data heterogeneity that FedProx + FLNet "
              "must overcome.\n");
  return 0;
}
