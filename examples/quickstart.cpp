// Quickstart: the fleda pipeline end to end on one client.
//
//   1. Generate a small private dataset (synthetic netlists -> placer
//      -> global router -> DRC hotspot labels).
//   2. Train FLNet (Table 1 architecture) on the client's data.
//   3. Evaluate ROC AUC on held-out designs and visualize a prediction.
//
// Usage: quickstart [--steps N] [--model flnet|routenet|pros]
#include <cstdio>

#include "core/experiment.hpp"
#include "metrics/roc_auc.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "phys/features.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

using namespace fleda;

namespace {

// Renders an 8-level ASCII heatmap of a [1,H,W] or [H,W] map.
void print_heatmap(const char* title, const Tensor& map, std::int64_t h,
                   std::int64_t w) {
  static const char* kShades = " .:-=+*#%";
  float lo = map[0], hi = map[0];
  for (std::int64_t i = 0; i < map.numel(); ++i) {
    lo = std::min(lo, map[i]);
    hi = std::max(hi, map[i]);
  }
  std::printf("%s (min %.2f max %.2f)\n", title, lo, hi);
  const float range = hi - lo > 1e-9f ? hi - lo : 1.0f;
  for (std::int64_t y = 0; y < h; ++y) {
    for (std::int64_t x = 0; x < w; ++x) {
      const int level = static_cast<int>((map[y * w + x] - lo) / range * 8.0f);
      std::putchar(kShades[std::min(level, 8)]);
    }
    std::putchar('\n');
  }
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli(argc, argv);
  const int steps = cli.get_int("steps", 120);
  const ModelKind kind = parse_model_kind(cli.get_string("model", "flnet"));

  // 1. One client's private data: client 2 (a small ITC'99 owner).
  std::printf("Generating client data (synthetic ITC'99 designs)...\n");
  Timer timer;
  DatasetGenOptions gen;
  gen.grid = 32;
  gen.placement_fraction = 0.05;
  ClientDataset data = generate_client_dataset(paper_client_specs()[1], gen);
  std::printf("  %lld train / %lld test placements in %.1fs\n",
              static_cast<long long>(data.num_train()),
              static_cast<long long>(data.num_test()), timer.seconds());

  // 2. Train the model with the paper's hyper-parameters.
  Rng rng(1);
  RoutabilityModelPtr model = make_model(kind, kNumFeatureChannels, rng);
  std::printf("Training %s (%lld parameters) for %d steps...\n",
              model->model_name().c_str(),
              static_cast<long long>(model->num_parameters()), steps);
  PaperHyperParams hp;
  AdamOptions aopts;
  aopts.lr = hp.learning_rate;
  aopts.weight_decay = hp.l2_regularization;
  Adam adam(model->parameters(), aopts);
  BatchSampler sampler(data.train.size(), 8, rng.fork(1));
  timer.reset();
  for (int s = 0; s < steps; ++s) {
    Batch batch = make_batch(data.train, sampler.next());
    adam.zero_grad();
    Tensor pred = model->forward(batch.x, true);
    LossResult loss = mse_loss(pred, batch.y);
    model->backward(loss.grad);
    adam.step();
    if ((s + 1) % 40 == 0) {
      std::printf("  step %d: train MSE %.4f\n", s + 1, loss.value);
    }
  }
  std::printf("  trained in %.1fs\n", timer.seconds());

  // 3. Evaluate on the held-out designs.
  AucAccumulator auc;
  for (const Sample& s : data.test) {
    Tensor pred = model->forward(
        s.features.reshaped(Shape::of(1, kNumFeatureChannels, 32, 32)), false);
    auc.add(pred, s.label.reshaped(Shape::of(1, 1, 32, 32)));
  }
  std::printf("Test ROC AUC: %.3f over %zu pixels\n", auc.auc(), auc.count());

  const Sample& show = data.test.front();
  Tensor pred = model->forward(
      show.features.reshaped(Shape::of(1, kNumFeatureChannels, 32, 32)), false);
  print_heatmap("\nPredicted congestion score", pred, 32, 32);
  print_heatmap("\nGround-truth DRC hotspots", show.label, 32, 32);
  return 0;
}
