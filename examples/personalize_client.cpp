// Personalization walkthrough for one design company (client): compare
//   - its locally-trained model (the traditional baseline b_k),
//   - the generalized FedProx model trained across all 9 clients,
//   - the FedProx model fine-tuned on the client's own data
// on that client's private test designs — the paper's §5.2 story from
// a single client's perspective.
//
// Usage: personalize_client [--client 1..9] [--model flnet] [--scale smoke|quick|full]
#include <cstdio>

#include "core/experiment.hpp"
#include "fl/baselines.hpp"
#include "fl/fedprox.hpp"
#include "fl/finetune.hpp"
#include "phys/features.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace fleda;

int main(int argc, char** argv) {
  CliParser cli(argc, argv);
  const int client_id = cli.get_int("client", 2);
  if (client_id < 1 || client_id > 9) {
    std::fprintf(stderr, "client must be 1..9\n");
    return 1;
  }
  ExperimentConfig cfg;
  cfg.model = parse_model_kind(cli.get_string("model", "flnet"));
  cfg.scale = resolve_scale(cli.get_string("scale", "quick"));
  cfg.cache_dir = ".fleda-cache";

  Experiment exp(cfg);
  std::printf("Preparing the 9-client dataset (Table 2 replica)...\n");
  exp.prepare_data();
  const std::size_t k = static_cast<std::size_t>(client_id - 1);
  std::printf("Client %d owns %s designs: %lld train / %lld test samples\n",
              client_id, to_string(exp.data()[k].suite).c_str(),
              static_cast<long long>(exp.data()[k].num_train()),
              static_cast<long long>(exp.data()[k].num_test()));

  std::printf("Training local baseline b_%d...\n", client_id);
  MethodResult local = exp.run_method(TrainingMethod::kLocal);
  std::printf("Running FedProx across all clients...\n");
  MethodResult fedprox = exp.run_method(TrainingMethod::kFedProx);
  std::printf("Running FedProx + local fine-tuning...\n");
  MethodResult finetuned = exp.run_method(TrainingMethod::kFedProxFineTune);

  AsciiTable t("Client " + std::to_string(client_id) + " test ROC AUC");
  t.set_header({"Model", "AUC (this client)", "AUC (9-client average)"});
  t.add_row({"Local only (b_k)", AsciiTable::fmt(local.client_auc[k], 3),
             AsciiTable::fmt(local.average, 3)});
  t.add_row({"FedProx generalized", AsciiTable::fmt(fedprox.client_auc[k], 3),
             AsciiTable::fmt(fedprox.average, 3)});
  t.add_row({"FedProx + fine-tuning",
             AsciiTable::fmt(finetuned.client_auc[k], 3),
             AsciiTable::fmt(finetuned.average, 3)});
  t.print();

  const double gain = finetuned.client_auc[k] - local.client_auc[k];
  std::printf("Personalization gain over local training: %+.3f AUC\n", gain);
  return 0;
}
