// Dataset inspector: generates one synthetic design end to end and
// prints every stage — netlist statistics, placement quality, routing
// demand, and ASCII heatmaps of all six feature channels plus the DRC
// hotspot label. Useful for understanding what the models actually see.
//
// Usage: dataset_inspect [--suite iscas89|itc99|iwls05|ispd15] [--seed N]
#include <algorithm>
#include <cstdio>

#include "phys/drc.hpp"
#include "phys/features.hpp"
#include "phys/global_router.hpp"
#include "phys/netlist.hpp"
#include "phys/placer.hpp"
#include "tensor/ops.hpp"
#include "util/cli.hpp"

using namespace fleda;

namespace {

void print_heatmap(const std::string& title, const float* map, std::int64_t h,
                   std::int64_t w) {
  static const char* kShades = " .:-=+*#%";
  float lo = map[0], hi = map[0];
  for (std::int64_t i = 0; i < h * w; ++i) {
    lo = std::min(lo, map[i]);
    hi = std::max(hi, map[i]);
  }
  std::printf("--- %s (min %.2f max %.2f) ---\n", title.c_str(), lo, hi);
  const float range = hi - lo > 1e-9f ? hi - lo : 1.0f;
  for (std::int64_t y = 0; y < h; ++y) {
    for (std::int64_t x = 0; x < w; ++x) {
      const int level =
          static_cast<int>((map[y * w + x] - lo) / range * 8.0f);
      std::putchar(kShades[std::min(level, 8)]);
    }
    std::putchar('\n');
  }
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli(argc, argv);
  const BenchmarkSuite suite = parse_suite(cli.get_string("suite", "ispd15"));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(cli.get_int("seed", 42));
  const std::int64_t grid = 32;

  NetlistGenParams params;
  params.profile = profile_for(suite);
  params.grid_w = params.grid_h = grid;
  params.gcell_cell_capacity = default_technology().gcell_cell_capacity;
  params.name = "inspect/" + to_string(suite);
  Rng rng(seed);
  NetlistPtr netlist = generate_netlist(params, rng);
  std::printf("Design %s: %lld cells (area %.0f), %lld nets, %lld pins, "
              "%zu macros\n",
              netlist->name.c_str(),
              static_cast<long long>(netlist->num_cells()),
              netlist->total_cell_area(),
              static_cast<long long>(netlist->num_nets()),
              static_cast<long long>(netlist->num_pins()),
              netlist->macros.size());

  PlacerOptions popts;
  Placement pl = place(netlist, popts, rng);
  std::printf("Placement: HPWL %.0f, %zu macro rects\n", pl.hpwl(),
              pl.macro_rects.size());

  RouterOptions ropts;
  ropts.capacity_scale = params.profile.capacity_scale;
  RoutingResult rr = route(pl, ropts, rng);
  std::printf("Routing: %lld connections, wirelength %.0f, "
              "%lld overflowed gcells\n",
              static_cast<long long>(rr.num_connections), rr.total_wirelength,
              static_cast<long long>(rr.overflowed_gcells()));

  DrcOptions dopts;
  dopts.threshold = ropts.tech.drc_overflow_ratio;
  FeatureSample sample =
      extract_features(pl, rr, default_technology(), dopts);
  std::printf("Hotspot rate: %.3f\n\n", hotspot_rate(sample.label));

  const char* kChannelNames[kNumFeatureChannels] = {
      "cell density", "macro blockage", "RUDY wire density",
      "pin density", "fly lines", "routing capacity"};
  const std::int64_t hw = grid * grid;
  for (std::int64_t c = 0; c < kNumFeatureChannels; ++c) {
    print_heatmap(std::string("feature ") + std::to_string(c) + ": " +
                      kChannelNames[c],
                  sample.features.data() + c * hw, grid, grid);
  }
  print_heatmap("LABEL: DRC hotspots", sample.label.data(), grid, grid);
  return 0;
}
