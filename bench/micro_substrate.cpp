// google-benchmark microbenchmarks for the substrates: matmul kernels,
// im2col, convolution layers, the placer/router data pipeline, and the
// ROC AUC metric. These guard the CPU budget of the table benches.
#include <benchmark/benchmark.h>

#include "metrics/roc_auc.hpp"
#include "models/registry.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "phys/drc.hpp"
#include "phys/features.hpp"
#include "phys/global_router.hpp"
#include "phys/netlist.hpp"
#include "phys/placer.hpp"
#include "tensor/im2col.hpp"
#include "tensor/matmul.hpp"

namespace fleda {
namespace {

Tensor random_tensor(const Shape& shape, Rng& rng) {
  Tensor t(shape);
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  return t;
}

void BM_Matmul(benchmark::State& state) {
  const std::int64_t m = state.range(0), k = state.range(1), n = state.range(2);
  Rng rng(1);
  Tensor a = random_tensor(Shape::of(m, k), rng);
  Tensor b = random_tensor(Shape::of(k, n), rng);
  Tensor c(Shape::of(m, n));
  for (auto _ : state) {
    matmul(a.data(), b.data(), c.data(), m, k, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * m * k * n);
}
BENCHMARK(BM_Matmul)->Args({64, 486, 1024})->Args({32, 1568, 1024});

void BM_Im2col(benchmark::State& state) {
  ConvGeometry g;
  g.channels = state.range(0);
  g.height = g.width = 32;
  g.kernel_h = g.kernel_w = 9;
  g.pad_h = g.pad_w = 4;
  Rng rng(2);
  Tensor img = random_tensor(Shape::of(g.channels, 32, 32), rng);
  Tensor cols(Shape::of(g.col_rows(), g.col_cols()));
  for (auto _ : state) {
    im2col(img.data(), g, cols.data());
    benchmark::DoNotOptimize(cols.data());
  }
}
BENCHMARK(BM_Im2col)->Arg(6)->Arg(64);

void BM_ModelTrainStep(benchmark::State& state) {
  const ModelKind kind = static_cast<ModelKind>(state.range(0));
  Rng rng(3);
  RoutabilityModelPtr model = make_model(kind, kNumFeatureChannels, rng);
  Tensor x = random_tensor(Shape::of(8, kNumFeatureChannels, 32, 32), rng);
  Tensor y(Shape{8, 1, 32, 32});
  Adam adam(model->parameters(), AdamOptions{});
  for (auto _ : state) {
    adam.zero_grad();
    Tensor pred = model->forward(x, true);
    LossResult loss = mse_loss(pred, y);
    model->backward(loss.grad);
    adam.step();
  }
  state.SetLabel(to_string(kind));
}
BENCHMARK(BM_ModelTrainStep)
    ->Arg(static_cast<int>(ModelKind::kFLNet))
    ->Arg(static_cast<int>(ModelKind::kRouteNet))
    ->Arg(static_cast<int>(ModelKind::kPROS));

void BM_PlaceAndRoute(benchmark::State& state) {
  NetlistGenParams p;
  p.profile = profile_for(BenchmarkSuite::kItc99);
  p.grid_w = p.grid_h = 32;
  p.gcell_cell_capacity = 8.0;
  Rng gen_rng(4);
  NetlistPtr nl = generate_netlist(p, gen_rng);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    Rng rng(++seed);
    PlacerOptions popts;
    popts.moves_per_cell = 3.0;
    Placement pl = place(nl, popts, rng);
    RouterOptions ropts;
    ropts.capacity_scale = p.profile.capacity_scale;
    RoutingResult rr = route(pl, ropts, rng);
    benchmark::DoNotOptimize(rr.total_wirelength);
  }
}
BENCHMARK(BM_PlaceAndRoute);

void BM_FeatureExtraction(benchmark::State& state) {
  NetlistGenParams p;
  p.profile = profile_for(BenchmarkSuite::kIwls05);
  p.grid_w = p.grid_h = 32;
  p.gcell_cell_capacity = 8.0;
  Rng rng(5);
  NetlistPtr nl = generate_netlist(p, rng);
  PlacerOptions popts;
  Placement pl = place(nl, popts, rng);
  RouterOptions ropts;
  RoutingResult rr = route(pl, ropts, rng);
  DrcOptions dopts;
  for (auto _ : state) {
    FeatureSample s = extract_features(pl, rr, default_technology(), dopts);
    benchmark::DoNotOptimize(s.features.data());
  }
}
BENCHMARK(BM_FeatureExtraction);

void BM_RocAuc(benchmark::State& state) {
  Rng rng(6);
  std::vector<float> scores, labels;
  for (int i = 0; i < state.range(0); ++i) {
    scores.push_back(static_cast<float>(rng.uniform()));
    labels.push_back(rng.bernoulli(0.2) ? 1.0f : 0.0f);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(roc_auc(scores, labels));
  }
}
BENCHMARK(BM_RocAuc)->Arg(1 << 14)->Arg(1 << 18);

}  // namespace
}  // namespace fleda

BENCHMARK_MAIN();
