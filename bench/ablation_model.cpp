// Ablation bench for the paper's §4.2 model co-design argument: why a
// 2-layer, no-BatchNorm, large-kernel model. Compares FedProx accuracy
// (the decentralized setting) across FLNet variants:
//   - kernel size 3 / 5 / 9 (receptive field matters for routability)
//   - FLNet vs FLNet + BatchNorm (aggregated BN statistics destabilize)
// Reported next to the central-training accuracy of the same variant
// so the decentralization *gap* is visible per variant.
#include "bench_common.hpp"
#include "fl/baselines.hpp"
#include "fl/fedprox.hpp"
#include "models/flnet.hpp"
#include "nn/batchnorm2d.hpp"
#include "nn/conv2d.hpp"
#include "nn/sequential.hpp"
#include "phys/features.hpp"

namespace fleda {
namespace {

// FLNet with a BatchNorm inserted between the two convolutions — the
// "what if FLNet had BN" ablation.
class FLNetBN : public RoutabilityModel {
 public:
  FLNetBN(std::int64_t in_channels, std::int64_t kernel, Rng& rng)
      : in_channels_(in_channels), net_("flnet_bn") {
    Conv2dOptions c1;
    c1.in_channels = in_channels;
    c1.out_channels = 64;
    c1.kernel = kernel;
    c1.same_padding();
    c1.bias = false;  // BN follows
    net_.emplace<Conv2d>("input_conv", c1, rng);
    net_.emplace<BatchNorm2d>("bn", BatchNorm2dOptions{64});
    net_.emplace<ReLU>("relu");
    Conv2dOptions c2;
    c2.in_channels = 64;
    c2.out_channels = 1;
    c2.kernel = kernel;
    c2.same_padding();
    net_.emplace<Conv2d>("output_conv", c2, rng);
  }
  Tensor forward(const Tensor& x, bool training) override {
    return net_.forward(x, training);
  }
  Tensor backward(const Tensor& g) override { return net_.backward(g); }
  std::vector<Parameter*> parameters() override { return net_.parameters(); }
  std::vector<NamedBuffer> buffers() override { return net_.buffers(); }
  std::string describe() const override { return "FLNet+BN"; }
  std::string model_name() const override { return "flnet_bn"; }
  std::int64_t in_channels() const override { return in_channels_; }

 private:
  std::int64_t in_channels_;
  Sequential net_;
};

MethodResult run_variant(const std::string& label, const ModelFactory& factory,
                         const std::vector<ClientDataset>& data,
                         const ExperimentConfig& cfg, TrainingMethod method) {
  const RunScale& scale = cfg.scale;
  PaperHyperParams hp;
  // Each variant has its own architecture, so each gets its own pool;
  // within the variant all clients share its scratch models.
  auto pool = std::make_shared<ModelPool>(factory);
  Rng rng(7);
  std::vector<Client> clients;
  clients.reserve(data.size());
  for (const ClientDataset& ds : data) {
    clients.emplace_back(ds.client_id, &ds, pool,
                         rng.fork(static_cast<std::uint64_t>(ds.client_id)));
  }
  ClientTrainConfig ccfg;
  ccfg.steps = scale.steps_per_round;
  ccfg.batch_size = scale.batch_size;
  ccfg.learning_rate = hp.learning_rate;
  ccfg.l2_regularization = hp.l2_regularization;
  ccfg.mu = hp.fedprox_mu;
  ccfg.reset_optimizer = cfg.reset_optimizer;

  if (method == TrainingMethod::kCentral) {
    BaselineOptions bopts;
    bopts.total_steps = scale.rounds * scale.steps_per_round;
    bopts.client = ccfg;
    ModelParameters central = train_centralized(data, factory, bopts);
    return evaluate_shared(label, clients, central);
  }
  FedProx algo;
  FLRunOptions opts;
  opts.rounds = scale.rounds;
  opts.client = ccfg;
  opts.aggregation = cfg.aggregation;
  std::vector<ModelParameters> finals = algo.run(clients, factory, opts);
  return evaluate_per_client(label, clients, finals);
}

}  // namespace
}  // namespace fleda

int main() {
  using namespace fleda;
  ExperimentConfig cfg = bench::make_config(ModelKind::kFLNet);
  std::printf("== Ablation: FLNet co-design choices under FedProx ==\n");
  Timer total;
  Experiment exp(cfg);
  exp.prepare_data();
  const auto& data = exp.data();

  AsciiTable t("FLNet variants: FedProx vs central (avg ROC AUC)");
  t.set_header({"Variant", "FedProx", "Central", "Degradation"});

  auto add_row = [&](const std::string& label, const ModelFactory& factory) {
    MethodResult fed =
        run_variant(label, factory, data, cfg, TrainingMethod::kFedProx);
    MethodResult central =
        run_variant(label, factory, data, cfg, TrainingMethod::kCentral);
    t.add_row({label, AsciiTable::fmt(fed.average, 3),
               AsciiTable::fmt(central.average, 3),
               AsciiTable::fmt(central.average - fed.average, 3)});
  };

  for (std::int64_t kernel : {3, 5, 9}) {
    FLNetOptions o;
    o.in_channels = kNumFeatureChannels;
    o.kernel = kernel;
    add_row("FLNet k=" + std::to_string(kernel), [o](Rng& rng) {
      return std::make_unique<FLNet>(o, rng);
    });
  }
  add_row("FLNet k=9 + BatchNorm", [](Rng& rng) -> RoutabilityModelPtr {
    return std::make_unique<FLNetBN>(kNumFeatureChannels, 9, rng);
  });

  t.print();
  std::printf("total time %.1fs\n\n", total.seconds());
  return 0;
}
