// Table 3 reproduction: ROC AUC on routability prediction with FLNet
// across all eight training methods (local, central, FedProx and five
// personalization variants), nine clients plus the average.
#include "bench_common.hpp"

int main() {
  return fleda::bench::run_accuracy_table(
      fleda::ModelKind::kFLNet,
      "Table 3: Testing Accuracy (ROC AUC) with FLNet");
}
