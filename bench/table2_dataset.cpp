// Table 2 reproduction: the experiment data setup for each client —
// the paper's design/placement counts side by side with the realized
// (scaled) synthetic dataset, plus per-client hotspot statistics.
#include "bench_common.hpp"
#include "phys/drc.hpp"

int main() {
  using namespace fleda;
  ExperimentConfig cfg = bench::make_config(ModelKind::kFLNet);
  std::printf("== Table 2: Experiment Data Setup (scale=%s) ==\n",
              cfg.scale.name.c_str());
  Timer total;
  Experiment exp(cfg);
  exp.prepare_data();
  render_table2(paper_client_specs(), exp.data()).print();

  AsciiTable stats("Per-client label statistics (not in paper; sanity)");
  stats.set_header({"Client", "Suite", "Train hotspot rate",
                    "Test hotspot rate"});
  for (const ClientDataset& ds : exp.data()) {
    stats.add_row({"Client " + std::to_string(ds.client_id),
                   to_string(ds.suite),
                   AsciiTable::fmt(dataset_hotspot_rate(ds.train), 3),
                   AsciiTable::fmt(dataset_hotspot_rate(ds.test), 3)});
  }
  stats.print();
  std::printf("total time %.1fs\n\n", total.seconds());
  return 0;
}
