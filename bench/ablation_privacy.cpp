// Extension ablation: differential-privacy Gaussian mechanism on top
// of FedProx (the privacy layer the paper cites as [19]/[21] but
// scopes out). Each client's update delta is clipped to a fixed L2
// norm and noised before aggregation; the sweep shows the
// privacy/utility trade-off on routability AUC with FLNet.
#include "bench_common.hpp"
#include "fl/fedprox.hpp"
#include "fl/privacy.hpp"
#include "phys/features.hpp"

namespace fleda {
namespace {

// FedProx with the DP mechanism applied to every client update.
class DpFedProx : public FederatedAlgorithm {
 public:
  explicit DpFedProx(const DpOptions& dp) : dp_(dp) {}
  std::string name() const override { return "DP-FedProx"; }

 protected:
  std::vector<ModelParameters> run_rounds(
      std::vector<Client>& clients, const ModelFactory& factory,
      const FLRunOptions& opts, FederationSim& sim,
      ParticipationPolicy& participation) override {
    Rng init_rng(opts.seed);
    RoutabilityModelPtr init = factory(init_rng);
    ModelParameters global = ModelParameters::from_model(*init);
    Rng noise_rng(opts.seed ^ 0xD9E5ull);

    const std::vector<double> weights = Server::client_weights(clients);
    const std::unique_ptr<AggregationRule> rule = sync_aggregation_rule(opts);
    for (int r = 0; r < opts.rounds; ++r) {
      const std::vector<std::size_t> cohort =
          select_cohort(participation, r, clients.size(), opts, sim);
      std::vector<const ModelParameters*> deployed(cohort.size(), &global);
      std::vector<ModelParameters> updates =
          cohort_local_updates(clients, cohort, deployed, opts.client, sim);
      for (ModelParameters& update : updates) {
        privatize_update(update, global, dp_, noise_rng);
      }
      global = Server::aggregate(*rule, global, updates,
                                 Server::cohort_weights(weights, cohort),
                                 cohort);
    }
    return std::vector<ModelParameters>(clients.size(), global);
  }

 private:
  DpOptions dp_;
};

}  // namespace
}  // namespace fleda

int main() {
  using namespace fleda;
  ExperimentConfig cfg = bench::make_config(ModelKind::kFLNet);
  std::printf("== Ablation (extension): DP Gaussian mechanism on FedProx ==\n");
  Timer total;
  Experiment exp(cfg);
  exp.prepare_data();
  ModelFactory factory =
      make_model_factory(ModelKind::kFLNet, kNumFeatureChannels);
  // Shared scratch models across all noise settings.
  auto pool = std::make_shared<ModelPool>(factory);

  FLRunOptions opts;
  opts.rounds = cfg.scale.rounds;
  opts.aggregation = cfg.aggregation;
  PaperHyperParams hp;
  opts.client.steps = cfg.scale.steps_per_round;
  opts.client.batch_size = cfg.scale.batch_size;
  opts.client.reset_optimizer = cfg.reset_optimizer;
  opts.client.learning_rate = hp.learning_rate;
  opts.client.l2_regularization = hp.l2_regularization;
  opts.client.mu = hp.fedprox_mu;

  AsciiTable t("DP-FedProx with FLNet (clip = 1.0)");
  t.set_header({"Noise multiplier", "Avg ROC AUC"});
  for (double noise : {0.0, 1e-4, 1e-3, 1e-2}) {
    Rng rng(7);
    std::vector<Client> clients;
    clients.reserve(exp.data().size());
    for (const ClientDataset& ds : exp.data()) {
      clients.emplace_back(ds.client_id, &ds, pool,
                           rng.fork(static_cast<std::uint64_t>(ds.client_id)));
    }
    DpOptions dp;
    dp.clip_norm = 1.0;
    dp.noise_multiplier = noise;
    DpFedProx algo(dp);
    std::vector<ModelParameters> finals = algo.run(clients, factory, opts);
    MethodResult r = evaluate_per_client("dp", clients, finals);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", noise);
    t.add_row({buf, AsciiTable::fmt(r.average, 3)});
  }
  t.print();
  std::printf("total time %.1fs\n\n", total.seconds());
  return 0;
}
