// Shared setup for the paper-table bench binaries: scale resolution
// (FLEDA_SCALE), dataset caching (FLEDA_CACHE_DIR, default
// .fleda-cache), run knobs that used to be programmatic-only
// (FLEDA_AGG_RULE — aggregation rule by registry name,
// FLEDA_MAX_IN_FLIGHT — the AsyncFedAvg dispatch gate,
// FLEDA_RESET_OPTIMIZER — 0 carries Adam moments across rounds), and
// the per-table run/report driver.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/paper_tables.hpp"
#include "obs/profiler.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"  // Timer alias for the standalone benches

namespace fleda::bench {

inline ExperimentConfig make_config(ModelKind model) {
  ExperimentConfig cfg;
  cfg.model = model;
  cfg.scale = scale_from_env();
  const char* cache = std::getenv("FLEDA_CACHE_DIR");
  cfg.cache_dir = cache != nullptr ? cache : ".fleda-cache";
  // Knobs that were programmatic-only before: every make_config-based
  // bench (tables, figures, ablations) can exercise the
  // robust-aggregation rules, the async dispatch gate, and persistent
  // optimizer moments straight from the environment. micro_sim builds
  // its own adversarial configurations and ignores these.
  if (const char* rule = std::getenv("FLEDA_AGG_RULE")) {
    cfg.aggregation.rule = rule;
  }
  if (const char* gate = std::getenv("FLEDA_MAX_IN_FLIGHT")) {
    cfg.async.max_in_flight = std::atoi(gate);
  }
  if (const char* reset = std::getenv("FLEDA_RESET_OPTIMIZER")) {
    cfg.reset_optimizer = std::atoi(reset) != 0;
  }
  // FLEDA_STREAMING=1 — opt into the streaming sharded aggregation
  // path (fold each decoded upload into per-lane accumulators instead
  // of materializing the cohort; see README "Scaling"). Same result up
  // to float reassociation, NOT bit-identical to the dense path.
  if (const char* streaming = std::getenv("FLEDA_STREAMING")) {
    cfg.aggregation.streaming = std::atoi(streaming) != 0;
  }
  // FLEDA_AGG_SHARDS — shard count for the streaming merge/finish
  // elementwise passes (0 = one shard per pool thread).
  if (const char* shards = std::getenv("FLEDA_AGG_SHARDS")) {
    cfg.aggregation.shards = static_cast<std::size_t>(std::atoi(shards));
  }
  // FLEDA_PARTICIPATION=kind[:C] — cohort policy by name ("full",
  // "uniform" / "uniform_sample", "availability" / "availability_aware",
  // "reputation" / "reputation_weighted", "importance" /
  // "importance_sample" / "importance_loss"), with an optional sample
  // size after a colon (e.g. "uniform:20"). The reputation policy
  // needs detector verdicts, so picking it also enables anomaly
  // detection (a pure observer — it changes no model math).
  // "importance_loss" scales each client's sample-count weight by its
  // last training loss (ParticipationConfig::loss_weighted).
  if (const char* participation = std::getenv("FLEDA_PARTICIPATION")) {
    std::string spec(participation);
    const std::size_t colon = spec.find(':');
    if (colon != std::string::npos) {
      cfg.participation.sample_size = std::atoi(spec.c_str() + colon + 1);
      spec.resize(colon);
    }
    if (spec == "full") {
      cfg.participation.kind = ParticipationKind::kFull;
    } else if (spec == "uniform" || spec == "uniform_sample") {
      cfg.participation.kind = ParticipationKind::kUniformSample;
    } else if (spec == "availability" || spec == "availability_aware") {
      cfg.participation.kind = ParticipationKind::kAvailabilityAware;
    } else if (spec == "reputation" || spec == "reputation_weighted") {
      cfg.participation.kind = ParticipationKind::kReputationWeighted;
      cfg.anomaly.enabled = true;
    } else if (spec == "importance" || spec == "importance_sample" ||
               spec == "importance_loss") {
      cfg.participation.kind = ParticipationKind::kImportanceSample;
      cfg.participation.loss_weighted = spec == "importance_loss";
    } else {
      FLEDA_LOG_ERROR("FLEDA_PARTICIPATION: unknown policy '%s' (expected "
                      "full|uniform|availability|reputation|importance[:C])",
                      spec.c_str());
      std::exit(2);
    }
  }
  // FLEDA_KRUM_F — assumed Byzantine count for the krum / multi_krum
  // rules (pair with FLEDA_AGG_RULE=krum or multi_krum).
  if (const char* krum_f = std::getenv("FLEDA_KRUM_F")) {
    cfg.aggregation.krum_f = std::atoi(krum_f);
  }
  return cfg;
}

// Where the run's time went, phase by phase (empty line-up when the
// profiler is off — FLEDA_PROFILE=0 skips the table entirely).
inline void print_profile_breakdown() {
  const ProfileReport report = Profiler::report();
  if (report.phases.empty()) return;
  std::printf("%-18s %10s %12s %12s\n", "phase", "count", "total_ms",
              "self_ms");
  for (const PhaseReport& p : report.phases) {
    std::printf("%-18s %10llu %12.1f %12.1f\n", p.name.c_str(),
                static_cast<unsigned long long>(p.count), p.total_ms,
                p.self_ms);
  }
}

// Runs all eight table rows for one model and prints the table in the
// paper layout, the headline-claims summary, and the per-phase time
// breakdown from the scoped profiler.
inline int run_accuracy_table(ModelKind model, const std::string& title) {
  ExperimentConfig cfg = make_config(model);
  std::printf("== %s ==\n", title.c_str());
  std::printf("scale=%s grid=%d rounds=%d steps=%d finetune=%d fraction=%.3f\n",
              cfg.scale.name.c_str(), cfg.scale.grid, cfg.scale.rounds,
              cfg.scale.steps_per_round, cfg.scale.finetune_steps,
              cfg.scale.placement_fraction);
  Profiler::reset();
  StopWatch total;
  std::vector<MethodResult> rows;
  {
    ProfileScope bench(phase::kBenchTotal);
    Experiment exp(cfg);
    exp.prepare_data();
    rows = exp.run_paper_table();
  }
  render_accuracy_table(title, rows).print();
  render_headline_summary(rows).print();
  render_comm_table(rows).print();
  print_profile_breakdown();
  std::printf("total time %.1fs\n\n", total.seconds());
  return 0;
}

}  // namespace fleda::bench
