// Table 4 reproduction: ROC AUC with the RouteNet (ICCAD'18) baseline
// estimator — the paper's evidence that deep estimators degrade under
// decentralized training.
#include "bench_common.hpp"

int main() {
  return fleda::bench::run_accuracy_table(
      fleda::ModelKind::kRouteNet,
      "Table 4: Testing Accuracy (ROC AUC) with RouteNet");
}
