// Kernel-planner microbenchmark: GFLOP/s of the reference axpy kernels
// vs the planner's auto choice (packed cache-blocked GEMM on fat
// shapes) for the GEMM shapes the RouteNet / FLNet conv layers actually
// run, plus the plan-cache hit rate over the sweep.
//
// Emits BENCH_kernels.json for the CI bench-trajectory artifact;
// ci/perf_gate.py diffs the per-shape auto GFLOP/s against the previous
// main run with a +/-20% band. The bench gates itself on correctness
// (auto result within summation-order tolerance of reference for every
// shape), on the cost model picking packed for the fat conv shapes, and
// on the plan cache absorbing the repeat lookups.
//
// Shape naming: <model>_<layer>[_dw|_dx]. Forward conv GEMMs are kNN
// (weight x im2col columns), backward dW is kBT (dy x cols^T), backward
// dcols is kAT (W^T x dy). Grid 32 is the "quick" bench scale; the
// sim_* rows are micro_sim's synthetic FLNet world (grid 8, 2 input
// channels), so the K = 1000 federation numbers trace back to these.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "tensor/matmul.hpp"
#include "tensor/plan.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace fleda {
namespace {

struct ShapeCase {
  const char* name;
  GemmOp op;
  std::int64_t m, k, n;
};

// The conv GEMM shapes of the two paper models at the quick bench
// scale (grid 32; pooled stages at 16), and micro_sim's tiny world.
const ShapeCase kShapes[] = {
    {"flnet_conv1", GemmOp::kNN, 64, 486, 1024},
    {"flnet_conv1_dw", GemmOp::kBT, 64, 1024, 486},
    {"flnet_conv1_dx", GemmOp::kAT, 486, 64, 1024},
    {"flnet_output", GemmOp::kNN, 1, 5184, 1024},
    {"routenet_conv2", GemmOp::kNN, 64, 1568, 1024},
    {"routenet_conv3", GemmOp::kNN, 32, 5184, 256},
    {"routenet_deconv", GemmOp::kAT, 512, 32, 256},
    {"sim_flnet_conv1", GemmOp::kNN, 64, 162, 64},
};

struct ShapeResult {
  const ShapeCase* shape = nullptr;
  GemmStrategy strategy = GemmStrategy::kReference;
  double reference_gflops = 0.0;
  double auto_gflops = 0.0;
  double speedup = 0.0;
  float max_abs_diff = 0.0f;
  bool equivalent = false;
};

std::vector<float> random_vec(std::size_t elems, Rng& rng) {
  std::vector<float> v(elems);
  for (float& x : v) x = static_cast<float>(rng.uniform(-1.0, 1.0));
  return v;
}

void run_reference(const ShapeCase& s, const float* a, const float* b,
                   float* c) {
  switch (s.op) {
    case GemmOp::kNN:
      matmul_reference(a, b, c, s.m, s.k, s.n, false);
      return;
    case GemmOp::kAT:
      matmul_at_reference(a, b, c, s.m, s.k, s.n, false);
      return;
    case GemmOp::kBT:
      matmul_bt_reference(a, b, c, s.m, s.k, s.n, false);
      return;
  }
}

void run_auto(const ShapeCase& s, const float* a, const float* b, float* c) {
  switch (s.op) {
    case GemmOp::kNN:
      matmul(a, b, c, s.m, s.k, s.n, false);
      return;
    case GemmOp::kAT:
      matmul_at(a, b, c, s.m, s.k, s.n, false);
      return;
    case GemmOp::kBT:
      matmul_bt(a, b, c, s.m, s.k, s.n, false);
      return;
  }
}

// Median-of-3 timed runs; each run repeats the GEMM until ~0.15s has
// accumulated so tiny shapes are not measuring clock overhead.
template <typename Fn>
double measure_gflops(double flops_per_call, Fn&& call) {
  // Calibrate the repetition count off one warm call.
  Timer warm;
  call();
  const double once = std::max(warm.seconds(), 1e-6);
  const int reps =
      static_cast<int>(std::clamp(0.15 / once, 1.0, 2000.0));
  double best_rate = 0.0;
  std::vector<double> rates;
  for (int run = 0; run < 3; ++run) {
    Timer timer;
    for (int i = 0; i < reps; ++i) call();
    const double rate =
        flops_per_call * reps / std::max(timer.seconds(), 1e-9) * 1e-9;
    rates.push_back(rate);
    best_rate = std::max(best_rate, rate);
  }
  std::sort(rates.begin(), rates.end());
  return rates[1];  // median
}

ShapeResult bench_shape(const ShapeCase& s, Rng& rng) {
  ShapeResult result;
  result.shape = &s;
  const std::vector<float> a =
      random_vec(static_cast<std::size_t>(s.m * s.k), rng);
  const std::vector<float> b =
      random_vec(static_cast<std::size_t>(s.k * s.n), rng);
  std::vector<float> c_ref(static_cast<std::size_t>(s.m * s.n), 0.0f);
  std::vector<float> c_auto(static_cast<std::size_t>(s.m * s.n), 0.0f);

  const GemmPlan plan =
      KernelPlanCache::global().plan_for(s.op, s.m, s.k, s.n);
  result.strategy = plan.strategy;

  result.reference_gflops = measure_gflops(
      plan.flops, [&] { run_reference(s, a.data(), b.data(), c_ref.data()); });
  result.auto_gflops = measure_gflops(
      plan.flops, [&] { run_auto(s, a.data(), b.data(), c_auto.data()); });
  result.speedup = result.auto_gflops / result.reference_gflops;

  float worst = 0.0f;
  for (std::size_t i = 0; i < c_ref.size(); ++i) {
    worst = std::max(worst, std::fabs(c_ref[i] - c_auto[i]));
  }
  result.max_abs_diff = worst;
  // Summation-order tolerance, same budget as kernel_plan_test.
  const float tolerance =
      1e-5f * std::max(1.0f, std::sqrt(static_cast<float>(s.k)));
  result.equivalent = worst <= tolerance;
  return result;
}

void write_bench_json(const std::vector<ShapeResult>& results,
                      const PlanCacheStats& stats, double hit_rate,
                      bool pass) {
  std::FILE* f = std::fopen("BENCH_kernels.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "micro_kernels: cannot write BENCH_kernels.json\n");
    return;
  }
  std::fprintf(f, "{\"bench\":\"micro_kernels\",\"threads\":%zu,\"shapes\":[",
               ThreadPool::global().size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ShapeResult& r = results[i];
    std::fprintf(
        f,
        "%s{\"name\":\"%s\",\"op\":\"%s\",\"m\":%lld,\"k\":%lld,"
        "\"n\":%lld,\"strategy\":\"%s\",\"reference_gflops\":%.3f,"
        "\"auto_gflops\":%.3f,\"speedup\":%.3f,\"max_abs_diff\":%.2e}",
        i == 0 ? "" : ",", r.shape->name, to_string(r.shape->op),
        static_cast<long long>(r.shape->m),
        static_cast<long long>(r.shape->k),
        static_cast<long long>(r.shape->n), to_string(r.strategy),
        r.reference_gflops, r.auto_gflops, r.speedup,
        static_cast<double>(r.max_abs_diff));
  }
  std::fprintf(f,
               "],\"plan_cache\":{\"hits\":%llu,\"misses\":%llu,"
               "\"evictions\":%llu,\"entries\":%zu,\"hit_rate\":%.4f},"
               "\"pass\":%s}\n",
               static_cast<unsigned long long>(stats.hits),
               static_cast<unsigned long long>(stats.misses),
               static_cast<unsigned long long>(stats.evictions),
               stats.entries, hit_rate, pass ? "true" : "false");
  std::fclose(f);
}

int main_impl() {
  std::printf("== micro_kernels: planner strategies on model GEMM shapes ==\n");
  std::printf("threads=%zu plan_mode=%s MR=%lld NR=%lld\n",
              ThreadPool::global().size(),
              plan_mode() == PlanMode::kReference ? "reference" : "auto",
              static_cast<long long>(kGemmMR),
              static_cast<long long>(kGemmNR));

  // Start the cache cold so the hit rate below reflects this sweep.
  KernelPlanCache::global().clear();

  Rng rng(1234);
  std::vector<ShapeResult> results;
  for (const ShapeCase& s : kShapes) {
    results.push_back(bench_shape(s, rng));
  }

  std::printf("%-18s %-3s %5s %5s %5s  %-9s %9s %9s %8s %9s\n", "shape",
              "op", "m", "k", "n", "strategy", "ref GF/s", "auto GF/s",
              "speedup", "max|diff|");
  for (const ShapeResult& r : results) {
    std::printf(
        "%-18s %-3s %5lld %5lld %5lld  %-9s %9.2f %9.2f %7.2fx %9.1e\n",
        r.shape->name, to_string(r.shape->op),
        static_cast<long long>(r.shape->m),
        static_cast<long long>(r.shape->k),
        static_cast<long long>(r.shape->n), to_string(r.strategy),
        r.reference_gflops, r.auto_gflops, r.speedup,
        static_cast<double>(r.max_abs_diff));
  }

  const PlanCacheStats stats = KernelPlanCache::global().stats();
  const double lookups = static_cast<double>(stats.hits + stats.misses);
  const double hit_rate =
      lookups > 0 ? static_cast<double>(stats.hits) / lookups : 0.0;
  std::printf(
      "plan cache: %llu hits / %llu misses (hit rate %.3f), "
      "%zu entries\n",
      static_cast<unsigned long long>(stats.hits),
      static_cast<unsigned long long>(stats.misses), hit_rate,
      stats.entries);

  // Gates. (1) Every shape's auto result is numerically equivalent to
  // reference. (2) The cost model packs the fat conv shapes and leaves
  // the m=1 output conv on reference. (3) Repeat lookups hit the cache
  // (the sweep runs each shape hundreds of times against ~8 misses).
  bool pass = true;
  for (const ShapeResult& r : results) {
    if (!r.equivalent) {
      std::printf("FAIL: %s auto diverged from reference (%.2e)\n",
                  r.shape->name, static_cast<double>(r.max_abs_diff));
      pass = false;
    }
  }
  auto strategy_of = [&](const std::string& name) {
    for (const ShapeResult& r : results) {
      if (name == r.shape->name) return r.strategy;
    }
    return GemmStrategy::kReference;
  };
  if (plan_mode() == PlanMode::kAuto) {
    for (const char* fat :
         {"flnet_conv1", "routenet_conv2", "routenet_conv3",
          "sim_flnet_conv1"}) {
      if (strategy_of(fat) != GemmStrategy::kPacked) {
        std::printf("FAIL: cost model left fat shape %s on reference\n", fat);
        pass = false;
      }
    }
    if (strategy_of("flnet_output") != GemmStrategy::kReference) {
      std::printf("FAIL: cost model packed the m=1 output conv\n");
      pass = false;
    }
    if (hit_rate < 0.9) {
      std::printf("FAIL: plan cache hit rate %.3f < 0.9\n", hit_rate);
      pass = false;
    }
  }

  write_bench_json(results, stats, hit_rate, pass);
  std::printf("{\"bench\":\"micro_kernels\",\"pass\":%s}\n",
              pass ? "true" : "false");
  return pass ? 0 : 1;
}

}  // namespace
}  // namespace fleda

int main() { return fleda::main_impl(); }
