// Table 5 reproduction: ROC AUC with the PROS (ICCAD'20) baseline
// estimator — dilated convolutions, sub-pixel upsampling, and
// BatchNorm make it the most fragile model under FL aggregation.
#include "bench_common.hpp"

int main() {
  return fleda::bench::run_accuracy_table(
      fleda::ModelKind::kPROS,
      "Table 5: Testing Accuracy (ROC AUC) with PROS");
}
