// Hyper-parameter ablations called out in DESIGN.md: the FedProx
// proximal strength mu (convergence under heterogeneity) and the
// alpha-portion sync mixing weight (personalization/generality
// trade-off), both with FLNet at the current FLEDA_SCALE.
#include "bench_common.hpp"
#include "fl/alpha_sync.hpp"
#include "fl/fedprox.hpp"
#include "phys/features.hpp"

namespace fleda {
namespace {

std::vector<Client> make_clients(const std::vector<ClientDataset>& data,
                                 const std::shared_ptr<ModelPool>& pool) {
  Rng rng(7);
  std::vector<Client> clients;
  clients.reserve(data.size());
  for (const ClientDataset& ds : data) {
    clients.emplace_back(ds.client_id, &ds, pool,
                         rng.fork(static_cast<std::uint64_t>(ds.client_id)));
  }
  return clients;
}

}  // namespace
}  // namespace fleda

int main() {
  using namespace fleda;
  ExperimentConfig cfg = bench::make_config(ModelKind::kFLNet);
  std::printf("== Ablation: FedProx mu and alpha-portion sync ==\n");
  Timer total;
  Experiment exp(cfg);
  exp.prepare_data();
  ModelFactory factory =
      make_model_factory(ModelKind::kFLNet, kNumFeatureChannels);
  // One scratch-model pool across every ablation variant: client
  // vectors are rebuilt per setting, models are not.
  auto pool = std::make_shared<ModelPool>(factory);

  FLRunOptions opts;
  opts.rounds = cfg.scale.rounds;
  opts.client.steps = cfg.scale.steps_per_round;
  opts.client.batch_size = cfg.scale.batch_size;
  opts.client.reset_optimizer = cfg.reset_optimizer;
  opts.aggregation = cfg.aggregation;
  PaperHyperParams hp;
  opts.client.learning_rate = hp.learning_rate;
  opts.client.l2_regularization = hp.l2_regularization;

  AsciiTable mu_table("FedProx proximal strength mu (paper: 1e-4)");
  mu_table.set_header({"mu", "Avg ROC AUC"});
  for (double mu : {0.0, 1e-4, 1e-2, 1.0}) {
    std::vector<Client> clients = make_clients(exp.data(), pool);
    opts.client.mu = mu;
    FedProx algo;
    std::vector<ModelParameters> finals = algo.run(clients, factory, opts);
    MethodResult r = evaluate_per_client("mu", clients, finals);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", mu);
    mu_table.add_row({buf, AsciiTable::fmt(r.average, 3)});
  }
  mu_table.print();

  opts.client.mu = hp.fedprox_mu;
  AsciiTable alpha_table("alpha-portion sync mixing weight (paper: 0.5)");
  alpha_table.set_header({"alpha", "Avg ROC AUC"});
  for (double alpha : {0.1, 0.5, 0.9}) {
    std::vector<Client> clients = make_clients(exp.data(), pool);
    AlphaPortionSync algo(alpha);
    std::vector<ModelParameters> finals = algo.run(clients, factory, opts);
    MethodResult r = evaluate_per_client("alpha", clients, finals);
    alpha_table.add_row({AsciiTable::fmt(alpha, 1),
                         AsciiTable::fmt(r.average, 3)});
  }
  alpha_table.print();
  std::printf("total time %.1fs\n\n", total.seconds());
  return 0;
}
