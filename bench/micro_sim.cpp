// Microbenchmark for the src/sim/ event engine.
//
// Part 1 measures raw event-loop throughput: a million timestamped
// no-op events pushed through EventQueue/SimClock, reported as
// events/sec of host time.
//
// Part 2 is the straggler demonstration from the ISSUE acceptance
// criteria: 9 synthetic clients, one of them computing 10x slower.
// Synchronous FedAvg pays the straggler every round; AsyncFedAvg
// (FedBuff-style buffer, polynomial staleness discount) keeps
// aggregating from the fast eight. The bench reports the simulated
// wall-clock each method needs to reach the sync run's final average
// AUC minus 0.01, and exits non-zero unless async gets there in at
// most half the sync run's simulated time.
//
// Output is one JSON object per line, easy to diff/collect in CI.
#include <cstdio>
#include <vector>

#include "fl/async_fedavg.hpp"
#include "fl/fedavg.hpp"
#include "fl/synthetic.hpp"
#include "models/registry.hpp"
#include "sim/event_queue.hpp"
#include "sim/profile.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace fleda {
namespace {

// --- part 1: event-loop throughput -----------------------------------

double bench_event_loop(std::uint64_t num_events) {
  SimClock clock;
  EventQueue queue;
  Rng rng(7);
  std::uint64_t fired = 0;
  Timer timer;
  // Two waves of scheduling (half up front, half from inside events)
  // exercises both the bulk-push and the reentrant path.
  const std::uint64_t half = num_events / 2;
  for (std::uint64_t i = 0; i < half; ++i) {
    const double t = rng.uniform(0.0, 1e3);
    queue.schedule(t, [&fired, t, &queue, &clock] {
      ++fired;
      queue.schedule(t + 1e3, [&fired] { ++fired; });
      (void)clock;
    });
  }
  queue.run_all(clock, /*max_events=*/4 * num_events);
  const double seconds = timer.seconds();
  std::printf(
      "{\"bench\":\"event_loop\",\"events\":%llu,\"events_per_sec\":%.0f}\n",
      static_cast<unsigned long long>(queue.processed()),
      static_cast<double>(queue.processed()) / seconds);
  return static_cast<double>(fired) / seconds;
}

// --- part 2: sync vs async under a 10x straggler ---------------------

constexpr std::size_t kClients = 9;

SyntheticWorld make_world(std::uint64_t seed) {
  SyntheticWorldOptions options;
  options.num_clients = kClients;
  options.threshold_base = 0.35f;
  options.threshold_step = 0.04f;
  return make_synthetic_world(seed, options);
}

double average_auc(std::vector<Client>& clients,
                   const std::vector<ModelParameters>& models) {
  double acc = 0.0;
  for (std::size_t k = 0; k < clients.size(); ++k) {
    acc += clients[k].evaluate_test_auc(models[k]);
  }
  return acc / static_cast<double>(clients.size());
}

struct Series {
  std::vector<double> time_s;  // cumulative simulated time per round
  std::vector<double> auc;     // average AUC after that round
  double total_time_s = 0.0;
};

// First simulated instant the series reaches `target` AUC; -1 if never.
double time_to_target(const Series& series, double target) {
  for (std::size_t i = 0; i < series.auc.size(); ++i) {
    if (series.auc[i] >= target) return series.time_s[i];
  }
  return -1.0;
}

FLRunOptions base_options(int rounds) {
  FLRunOptions opts;
  opts.rounds = rounds;
  opts.client.steps = 4;
  opts.client.batch_size = 2;
  opts.client.learning_rate = 1e-3;
  opts.client.mu = 0.0;
  opts.seed = 99;
  // One 10x straggler among 9 clients; compute dominates the round.
  opts.sim = SimConfig::with_straggler(kClients, 0, 10.0);
  opts.sim.step_time_s = 0.5;
  return opts;
}

Series run_series(FederatedAlgorithm& algo, int rounds) {
  SyntheticWorld w = make_world(4242);
  FLRunOptions opts = base_options(rounds);
  ChannelStats comm;
  SimReport report;
  opts.comm_stats = &comm;
  opts.sim_report = &report;
  Series series;
  opts.on_round = [&](int, const std::vector<ModelParameters>& models) {
    series.auc.push_back(average_auc(w.clients, models));
  };
  algo.run(w.clients, w.factory, opts);
  double elapsed = 0.0;
  for (std::size_t i = 0; i < series.auc.size(); ++i) {
    if (i < comm.rounds.size()) elapsed += comm.rounds[i].simulated_latency_s;
    series.time_s.push_back(elapsed);
  }
  series.total_time_s = report.total_time_s;
  return series;
}

int bench_straggler() {
  const int sync_rounds = 10;
  FedAvg sync_algo;
  const Series sync = run_series(sync_algo, sync_rounds);
  const double final_auc = sync.auc.back();
  const double target = final_auc - 0.01;

  AsyncConfig config;
  config.buffer_size = 4;
  config.server_mix = 0.5;
  config.poly_exponent = 1.0;
  AsyncFedAvg async_algo(config);
  // Aggregation budget: enough buffered rounds to pass the target well
  // before the sync run's horizon.
  const Series async = run_series(async_algo, 5 * sync_rounds);

  const double t_sync = time_to_target(sync, target);
  const double t_async = time_to_target(async, target);
  const bool pass = t_async >= 0.0 && t_async <= 0.5 * sync.total_time_s;

  std::printf(
      "{\"bench\":\"straggler\",\"method\":\"sync\",\"final_auc\":%.4f,"
      "\"sim_time_s\":%.1f,\"time_to_target_s\":%.1f}\n",
      final_auc, sync.total_time_s, t_sync);
  std::printf(
      "{\"bench\":\"straggler\",\"method\":\"async\",\"final_auc\":%.4f,"
      "\"sim_time_s\":%.1f,\"time_to_target_s\":%.1f,"
      "\"target_auc\":%.4f,\"speedup_vs_sync_total\":%.2f,\"pass\":%s}\n",
      async.auc.back(), async.total_time_s, t_async, target,
      t_async > 0.0 ? sync.total_time_s / t_async : 0.0,
      pass ? "true" : "false");
  return pass ? 0 : 1;
}

int main_impl() {
  bench_event_loop(1'000'000);
  return bench_straggler();
}

}  // namespace
}  // namespace fleda

int main() { return fleda::main_impl(); }
