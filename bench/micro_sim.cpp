// Microbenchmark for the src/sim/ event engine.
//
// Part 1 measures raw event-loop throughput: a million timestamped
// no-op events pushed through EventQueue/SimClock, reported as
// events/sec of host time.
//
// Part 2 is the straggler demonstration from the ISSUE acceptance
// criteria: 9 synthetic clients, one of them computing 10x slower.
// Synchronous FedAvg pays the straggler every round; AsyncFedAvg
// (FedBuff-style buffer, polynomial staleness discount) keeps
// aggregating from the fast eight. The bench reports the simulated
// wall-clock each method needs to reach the sync run's final average
// AUC minus 0.01, and exits non-zero unless async gets there in at
// most half the sync run's simulated time.
//
// Part 3 is the thousand-client demonstration from the participation
// redesign: K = 1000 ClientProfiles sharing the 9 synthetic datasets,
// FedAvg with UniformSample{C = 20}. The gates check (a) the per-round
// cost is O(C), not O(K) — exactly 2C messages and 2C model-snapshots
// of bytes per round; (b) the sampled run replays bit-identically; and
// (c) memory is O(threads), not O(K) — the scratch-model pool must
// keep the peak live RoutabilityModel count at threads + 1 or below
// for the whole thousand-client run.
//
// Part 4 is the Byzantine robustness demonstration: the same K = 1000
// federation with 10% sign-flip attackers in the fleet. Plain
// weighted_average lets the flipped deltas drag the global model away
// from (or explode past) the attack-free trajectory, while
// coordinate_median and trimmed_mean must finish within 0.02 AUC of
// the attack-free baseline. A poisoned run that trips the aggregation
// layer's NaN guard counts as diverged — loudly, which is the point of
// the guard.
//
// Part 6 is the adversarial arms race on the same fleet: multi_krum
// must track the clean trajectory under sign-flip, the server-side
// AnomalyDetector must reach 0.8 precision/recall against the oracle
// attacker set, reputation-weighted participation must win back at
// least half of the AUC plain weighted_average loses to uniform
// sampling, and the adaptive (tolerance-estimating) attacker must
// cost norm_clipped_mean at least 0.05 AUC more than the oblivious
// scaled attacker it out-smarts.
//
// Part 5 is the observability overhead gate: the same K = 1000
// federation run three times with the scoped profiler enabled and
// three times disabled (median of each). The instrumented run must
// sustain at least 95% of the uninstrumented events/sec, and both
// modes must produce bit-identical finals — profiling is time-only,
// never part of the simulation state.
//
// Part 7 is the K = 100k streaming-federation demonstration: a fleet
// built with ClientInitSchema::kFastInit (no per-client model-init
// replay) running streaming sharded FedAvg rounds. The gate runs a
// C = 128 round then a C = 2048 round in the same process and requires
// the peak-RSS delta between them to stay flat — the server never
// materializes the cohort, so 16x the cohort must not cost 16x the
// update memory.
//
// Output is one JSON object per line, easy to diff/collect in CI, and
// the headline numbers are also written to BENCH_sim.json so future
// PRs can gate on perf regressions (the machine-readable trajectory).
// BENCH_sim.json also embeds the merged per-phase profile of the whole
// run (train/codec/aggregate/dispatch/pool breakdowns).
#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>
#include <vector>

#include "comm/codec.hpp"
#include "fl/anomaly.hpp"
#include "fl/async_fedavg.hpp"
#include "fl/fedavg.hpp"
#include "fl/participation.hpp"
#include "fl/synthetic.hpp"
#include "models/pool.hpp"
#include "models/registry.hpp"
#include "obs/profiler.hpp"
#include "sim/event_queue.hpp"
#include "sim/profile.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace fleda {
namespace {

// Peak resident set (VmHWM) in MB, or -1 where /proc is unavailable.
double peak_rss_mb() {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return -1.0;
  char line[256];
  double mb = -1.0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    long kb = 0;
    if (std::sscanf(line, "VmHWM: %ld kB", &kb) == 1) {
      mb = static_cast<double>(kb) / 1024.0;
      break;
    }
  }
  std::fclose(f);
  return mb;
#else
  return -1.0;
#endif
}

// FNV-1a over every tensor byte of the finals — a cheap cross-version
// fingerprint (the pooled implementation must reproduce the pre-pool
// traces bit-for-bit, and this makes that checkable from CI artifacts).
std::uint64_t finals_checksum(const std::vector<ModelParameters>& finals) {
  std::uint64_t h = 1469598103934665603ull;
  for (const ModelParameters& p : finals) {
    for (const ParameterEntry& e : p.entries()) {
      const unsigned char* bytes =
          reinterpret_cast<const unsigned char*>(e.value.data());
      const std::int64_t n = e.value.numel() *
                             static_cast<std::int64_t>(sizeof(float));
      for (std::int64_t i = 0; i < n; ++i) {
        h ^= bytes[i];
        h *= 1099511628211ull;
      }
    }
  }
  return h;
}

// --- part 1: event-loop throughput -----------------------------------

// `profiled` only labels the JSON line; the caller flips the profiler.
// No-op callbacks are the profiler's worst case (the sim/dispatch span
// is the entire event body), so the pair of lines bounds its cost.
double bench_event_loop(std::uint64_t num_events, bool profiled) {
  SimClock clock;
  EventQueue queue;
  Rng rng(7);
  std::uint64_t fired = 0;
  Timer timer;
  // Two waves of scheduling (half up front, half from inside events)
  // exercises both the bulk-push and the reentrant path.
  const std::uint64_t half = num_events / 2;
  for (std::uint64_t i = 0; i < half; ++i) {
    const double t = rng.uniform(0.0, 1e3);
    queue.schedule(t, [&fired, t, &queue, &clock] {
      ++fired;
      queue.schedule(t + 1e3, [&fired] { ++fired; });
      (void)clock;
    });
  }
  queue.run_all(clock, /*max_events=*/4 * num_events);
  const double seconds = timer.seconds();
  const double events_per_sec =
      static_cast<double>(queue.processed()) / seconds;
  std::printf(
      "{\"bench\":\"event_loop\",\"profiler\":%s,\"events\":%llu,"
      "\"events_per_sec\":%.0f}\n",
      profiled ? "true" : "false",
      static_cast<unsigned long long>(queue.processed()), events_per_sec);
  (void)fired;
  return events_per_sec;
}

// --- part 2: sync vs async under a 10x straggler ---------------------

constexpr std::size_t kClients = 9;

SyntheticWorld make_world(std::uint64_t seed) {
  SyntheticWorldOptions options;
  options.num_clients = kClients;
  options.threshold_base = 0.35f;
  options.threshold_step = 0.04f;
  return make_synthetic_world(seed, options);
}

double average_auc(std::vector<Client>& clients,
                   const std::vector<ModelParameters>& models) {
  double acc = 0.0;
  for (std::size_t k = 0; k < clients.size(); ++k) {
    acc += clients[k].evaluate_test_auc(models[k]);
  }
  return acc / static_cast<double>(clients.size());
}

struct Series {
  std::vector<double> time_s;  // cumulative simulated time per round
  std::vector<double> auc;     // average AUC after that round
  double total_time_s = 0.0;
};

// First simulated instant the series reaches `target` AUC; -1 if never.
double time_to_target(const Series& series, double target) {
  for (std::size_t i = 0; i < series.auc.size(); ++i) {
    if (series.auc[i] >= target) return series.time_s[i];
  }
  return -1.0;
}

FLRunOptions base_options(int rounds) {
  FLRunOptions opts;
  opts.rounds = rounds;
  opts.client.steps = 4;
  opts.client.batch_size = 2;
  opts.client.learning_rate = 1e-3;
  opts.client.mu = 0.0;
  opts.seed = 99;
  // One 10x straggler among 9 clients; compute dominates the round.
  opts.sim = SimConfig::with_straggler(kClients, 0, 10.0);
  opts.sim.step_time_s = 0.5;
  return opts;
}

Series run_series(FederatedAlgorithm& algo, int rounds) {
  SyntheticWorld w = make_world(4242);
  FLRunOptions opts = base_options(rounds);
  ChannelStats comm;
  SimReport report;
  opts.comm_stats = &comm;
  opts.sim_report = &report;
  Series series;
  opts.on_round = [&](int, const std::vector<ModelParameters>& models) {
    series.auc.push_back(average_auc(w.clients, models));
  };
  algo.run(w.clients, w.factory, opts);
  double elapsed = 0.0;
  for (std::size_t i = 0; i < series.auc.size(); ++i) {
    if (i < comm.rounds.size()) elapsed += comm.rounds[i].simulated_latency_s;
    series.time_s.push_back(elapsed);
  }
  series.total_time_s = report.total_time_s;
  return series;
}

int bench_straggler() {
  const int sync_rounds = 10;
  FedAvg sync_algo;
  const Series sync = run_series(sync_algo, sync_rounds);
  const double final_auc = sync.auc.back();
  const double target = final_auc - 0.01;

  AsyncConfig config;
  config.buffer_size = 4;
  config.server_mix = 0.5;
  config.poly_exponent = 1.0;
  AsyncFedAvg async_algo(config);
  // Aggregation budget: enough buffered rounds to pass the target well
  // before the sync run's horizon.
  const Series async = run_series(async_algo, 5 * sync_rounds);

  const double t_sync = time_to_target(sync, target);
  const double t_async = time_to_target(async, target);
  const bool pass = t_async >= 0.0 && t_async <= 0.5 * sync.total_time_s;

  std::printf(
      "{\"bench\":\"straggler\",\"method\":\"sync\",\"final_auc\":%.4f,"
      "\"sim_time_s\":%.1f,\"time_to_target_s\":%.1f}\n",
      final_auc, sync.total_time_s, t_sync);
  std::printf(
      "{\"bench\":\"straggler\",\"method\":\"async\",\"final_auc\":%.4f,"
      "\"sim_time_s\":%.1f,\"time_to_target_s\":%.1f,"
      "\"target_auc\":%.4f,\"speedup_vs_sync_total\":%.2f,\"pass\":%s}\n",
      async.auc.back(), async.total_time_s, t_async, target,
      t_async > 0.0 ? sync.total_time_s / t_async : 0.0,
      pass ? "true" : "false");
  return pass ? 0 : 1;
}

// --- part 3: K = 1000 clients, C = 20 sampled per round --------------

struct ThousandOptions {
  std::size_t num_clients = 1000;
  int cohort = 20;
  int rounds = 3;
  int steps = 2;
  // Aggregation rule by registry name; empty = weighted_average.
  std::string rule;
  double trim_fraction = 0.2;
  int krum_f = 1;           // "krum" / "multi_krum"
  int krum_m = 0;           // "multi_krum"; 0 = auto (n - f - 2)
  double clip_norm = 0.0;   // > 0 overrides the "norm_clipped_mean" knob
  // Cohort selection (uniform by default; kReputationWeighted needs
  // `anomaly` so run() can build the detect->react loop).
  ParticipationKind participation = ParticipationKind::kUniformSample;
  // Server-side anomaly detection; `detector` optionally passes a
  // caller-owned instance so tallies survive the run, `reputation` a
  // caller-owned book (e.g. with a harsher penalty than the default).
  bool anomaly = false;
  AnomalyDetector* detector = nullptr;
  ReputationBook* reputation = nullptr;
  // Byzantine fraction of the fleet (attackers spread evenly).
  std::size_t attackers = 0;
  AttackSpec attack;
};

struct ThousandRun {
  std::vector<ModelParameters> finals;
  ChannelStats comm;
  SimReport report;
  // Average test AUC of the final global model over the 9 distinct
  // datasets (clients 0..8 cover each exactly once).
  double final_auc = 0.0;
  // A poisoned run may trip the aggregation layer's non-finite guard;
  // that is the loud failure mode the bench demonstrates.
  bool failed = false;
  std::string error;
};

// 9 shared synthetic datasets; client k trains on dataset k % 9 (the
// paper's data heterogeneity, scaled to thousands of participants).
const std::vector<ClientDataset>& nine_shared_datasets() {
  static const std::vector<ClientDataset> data = [] {
    std::vector<ClientDataset> d;
    for (int i = 0; i < 9; ++i) {
      d.push_back(make_synthetic_client(
          i + 1, 0.35f + 0.04f * static_cast<float>(i), 1000 + i));
    }
    return d;
  }();
  return data;
}

ThousandRun run_thousand(const ThousandOptions& t) {
  const std::vector<ClientDataset>& shared_data = nine_shared_datasets();

  ModelFactory factory = make_model_factory(ModelKind::kFLNet, 2);
  // One shared scratch pool for all thousand clients: the run holds
  // O(threads) live model instances, not O(K).
  auto pool = std::make_shared<ModelPool>(factory);
  Rng rng(4242);
  std::vector<Client> clients;
  clients.reserve(t.num_clients);
  for (std::size_t k = 0; k < t.num_clients; ++k) {
    clients.emplace_back(static_cast<int>(k) + 1, &shared_data[k % 9],
                         pool, rng.fork(k));
  }

  FLRunOptions opts;
  opts.rounds = t.rounds;
  opts.client.steps = t.steps;
  opts.client.batch_size = 2;
  opts.client.learning_rate = 1e-3;
  opts.client.mu = 0.0;
  opts.seed = 99;
  opts.participation.kind = t.participation;
  opts.participation.sample_size = t.cohort;
  opts.participation.seed = 31337;
  opts.aggregation.rule = t.rule;
  opts.aggregation.trim_fraction = t.trim_fraction;
  opts.aggregation.krum_f = t.krum_f;
  opts.aggregation.krum_m = t.krum_m;
  if (t.clip_norm > 0.0) opts.aggregation.clip_norm = t.clip_norm;
  opts.anomaly.enabled = t.anomaly;
  opts.detector = t.detector;
  opts.reputation = t.reputation;
  opts.sim = SimConfig::heterogeneous(t.num_clients, /*seed=*/5);
  if (t.attackers > 0) add_attackers(opts.sim, t.attackers, t.attack);

  ThousandRun run;
  opts.comm_stats = &run.comm;
  opts.sim_report = &run.report;
  FedAvg algo;
  try {
    run.finals = algo.run(clients, factory, opts);
  } catch (const std::exception& e) {
    run.failed = true;
    run.error = e.what();
    return run;
  }
  double auc = 0.0;
  for (std::size_t k = 0; k < 9; ++k) {
    auc += clients[k].evaluate_test_auc(run.finals[k]);
  }
  run.final_auc = auc / 9.0;
  if (!std::isfinite(run.final_auc)) {
    // A blown-up global model can score NaN; report it as a failure
    // with auc 0 so the JSON stays parseable and the gate sees
    // "diverged".
    run.failed = true;
    run.error = "non-finite final AUC (global model diverged)";
    run.final_auc = 0.0;
  }
  return run;
}

bool bit_identical_params(const ModelParameters& a, const ModelParameters& b) {
  if (!a.structurally_equal(b)) return false;
  for (std::size_t n = 0; n < a.entries().size(); ++n) {
    if (!a.entries()[n].value.equals(b.entries()[n].value)) return false;
  }
  return true;
}

// Headline numbers collected across the parts for BENCH_sim.json.
struct SimBenchSummary {
  // Raw-loop throughput with the profiler off — the engine itself,
  // comparable against pre-profiler trajectory artifacts — and with it
  // on (every event body wrapped in a sim/dispatch span).
  double events_per_sec = 0.0;
  double events_per_sec_profiled = 0.0;
  double thousand_host_s = 0.0;
  double thousand_round_host_ms = 0.0;
  double thousand_sim_time_s = 0.0;
  std::uint64_t thousand_bytes_per_round = 0;
  std::int64_t peak_model_instances = 0;
  std::int64_t model_instance_budget = 0;
  std::uint64_t finals_fingerprint = 0;
  double rss_mb = -1.0;
  // Part 4: Byzantine robustness trajectory.
  std::size_t byz_clients = 0;
  int byz_cohort = 0;
  const char* byz_attack = "none";
  std::size_t byz_attackers = 0;
  double byz_tolerance = 0.0;
  double byz_clean_auc = 0.0;
  double byz_weighted_average_auc = 0.0;
  bool byz_weighted_average_diverged = false;
  double byz_coordinate_median_auc = 0.0;
  double byz_trimmed_mean_auc = 0.0;
  bool byz_pass = false;
  // Part 6: adversarial arms race (defenses vs smarter attackers).
  double ar_multi_krum_auc = 0.0;
  bool ar_multi_krum_tracks = false;
  double ar_detector_precision = 0.0;
  double ar_detector_recall = 0.0;
  double ar_reputation_auc = 0.0;
  double ar_reputation_recovered = 0.0;  // fraction of the wa gap won back
  double ar_clip_norm = 0.0;             // calibrated norm_clipped_mean knob
  double ar_oblivious_clip_auc = 0.0;    // kScaled vs norm_clipped_mean
  double ar_adaptive_clip_auc = 0.0;     // kAdaptiveScaled vs the same rule
  double ar_adaptive_gap = 0.0;          // oblivious - adaptive AUC
  bool ar_pass = false;
  // Part 5: profiler overhead on the K = 1000 federation.
  double prof_disabled_eps = 0.0;   // sim events/sec, profiler off
  double prof_enabled_eps = 0.0;    // sim events/sec, profiler on
  double prof_overhead_pct = 0.0;   // (off/on - 1) * 100
  bool prof_fingerprints_match = false;
  bool prof_pass = false;
  int distinct_phases = 0;          // phases with count > 0 in the report
  // Part 7: K = 100k streaming federation (flat-memory gate).
  double hk_construct_s = 0.0;      // fast-init fleet construction
  double hk_events_per_sec = 0.0;   // large-cohort round throughput
  double hk_small_hwm_mb = -1.0;    // VmHWM after the C = 128 round
  double hk_large_hwm_mb = -1.0;    // VmHWM after the C = 2048 round
  double hk_delta_mb = 0.0;         // large - small (flat-RSS gate)
  bool hk_pass = false;
};

int bench_thousand_clients(SimBenchSummary* summary) {
  constexpr std::size_t kK = 1000;
  constexpr int kCohort = 20;
  constexpr int kRounds = 3;
  ThousandOptions topts;
  topts.num_clients = kK;
  topts.cohort = kCohort;
  topts.rounds = kRounds;

  // O(threads) memory gate: the pooled run (client construction
  // included — its transient per-client init replays are serial) may
  // never hold more live models than pool workers + the caller.
  RoutabilityModel::reset_peak_instances();
  const std::int64_t budget =
      static_cast<std::int64_t>(ThreadPool::global().size()) + 1;

  Timer timer;
  const ThousandRun first = run_thousand(topts);
  const double host_s = timer.seconds();
  const std::int64_t peak_models = RoutabilityModel::peak_instances();
  const bool o_threads_memory = peak_models <= budget;

  const ThousandRun replay = run_thousand(topts);
  if (first.failed || replay.failed) {
    std::printf(
        "{\"bench\":\"thousand_clients\",\"pass\":false,\"error\":\"%s\"}\n",
        (first.failed ? first.error : replay.error).c_str());
    return 1;
  }

  // O(C) gate: every round bills exactly C deployments down and C
  // updates up, each a full fp32 model snapshot.
  const std::uint64_t model_bytes = raw_wire_bytes(first.finals.front());
  bool o_c_billing = first.comm.rounds.size() ==
                     static_cast<std::size_t>(kRounds);
  std::uint64_t bytes_per_round = 0;
  for (const RoundCommStats& r : first.comm.rounds) {
    o_c_billing = o_c_billing && r.downlink_messages == kCohort &&
                  r.uplink_messages == kCohort &&
                  r.downlink_bytes == kCohort * model_bytes &&
                  r.uplink_bytes == kCohort * model_bytes;
    bytes_per_round = r.downlink_bytes + r.uplink_bytes;
  }

  // Determinism gate: a replay with the same seeds is bit-identical.
  bool deterministic = first.finals.size() == replay.finals.size() &&
                       first.report.total_time_s == replay.report.total_time_s;
  deterministic = deterministic &&
                  bit_identical_params(first.finals.front(),
                                       replay.finals.front());

  const bool pass = o_c_billing && deterministic && o_threads_memory;
  const std::uint64_t fingerprint = finals_checksum({first.finals.front()});
  std::printf(
      "{\"bench\":\"thousand_clients\",\"clients\":%zu,\"cohort\":%d,"
      "\"rounds\":%d,\"bytes_per_round\":%llu,\"model_bytes\":%llu,"
      "\"sim_time_s\":%.1f,\"host_time_s\":%.1f,"
      "\"peak_model_instances\":%lld,\"model_instance_budget\":%lld,"
      "\"o_c_billing\":%s,\"o_threads_memory\":%s,"
      "\"deterministic\":%s,\"finals_fingerprint\":\"%016llx\",\"pass\":%s}\n",
      kK, kCohort, kRounds,
      static_cast<unsigned long long>(bytes_per_round),
      static_cast<unsigned long long>(model_bytes),
      first.report.total_time_s, host_s,
      static_cast<long long>(peak_models), static_cast<long long>(budget),
      o_c_billing ? "true" : "false", o_threads_memory ? "true" : "false",
      deterministic ? "true" : "false",
      static_cast<unsigned long long>(fingerprint), pass ? "true" : "false");

  if (summary != nullptr) {
    summary->thousand_host_s = host_s;
    summary->thousand_round_host_ms = host_s * 1e3 / kRounds;
    summary->thousand_sim_time_s = first.report.total_time_s;
    summary->thousand_bytes_per_round = bytes_per_round;
    summary->peak_model_instances = peak_models;
    summary->model_instance_budget = budget;
    summary->finals_fingerprint = fingerprint;
  }
  return pass ? 0 : 1;
}

// --- part 4: Byzantine clients vs robust aggregation -----------------

int bench_byzantine(SimBenchSummary* summary) {
  // K = 1000 fleet, C = 20 sampled per round, f = 10% sign-flip
  // attackers magnifying their reversed delta 10x — each sampled
  // attacker pulls the average a full honest-cohort step backwards.
  ThousandOptions base;
  base.rounds = 32;
  base.steps = 4;
  base.attack.kind = AttackKind::kSignFlip;
  base.attack.scale = 10.0;
  constexpr std::size_t kAttackers = 100;
  constexpr double kTolerance = 0.02;

  ThousandOptions clean = base;  // attack-free weighted_average baseline
  ThousandOptions poisoned_wa = base;
  poisoned_wa.attackers = kAttackers;
  ThousandOptions poisoned_median = poisoned_wa;
  poisoned_median.rule = "coordinate_median";
  ThousandOptions poisoned_trimmed = poisoned_wa;
  poisoned_trimmed.rule = "trimmed_mean";  // trims 4 of each tail at C=20

  const ThousandRun r_clean = run_thousand(clean);
  const ThousandRun r_wa = run_thousand(poisoned_wa);
  const ThousandRun r_median = run_thousand(poisoned_median);
  const ThousandRun r_trimmed = run_thousand(poisoned_trimmed);

  // The robust rules must track the attack-free trajectory; plain
  // weighted_average must not (either it drifts past the tolerance or
  // it blows up into the aggregation layer's non-finite guard — the
  // loud failure this PR's bugfix installs).
  const bool clean_ok = !r_clean.failed;
  const bool wa_diverged =
      r_wa.failed || std::abs(r_wa.final_auc - r_clean.final_auc) > kTolerance;
  const bool median_tracks =
      !r_median.failed &&
      std::abs(r_median.final_auc - r_clean.final_auc) <= kTolerance;
  const bool trimmed_tracks =
      !r_trimmed.failed &&
      std::abs(r_trimmed.final_auc - r_clean.final_auc) <= kTolerance;
  const bool pass = clean_ok && wa_diverged && median_tracks && trimmed_tracks;

  std::printf(
      "{\"bench\":\"byzantine\",\"clients\":%zu,\"cohort\":%d,\"rounds\":%d,"
      "\"attackers\":%zu,\"attack\":\"%s\",\"attack_scale\":%.1f,"
      "\"clean_auc\":%.4f,\"weighted_average_auc\":%.4f,"
      "\"weighted_average_diverged\":%s,\"coordinate_median_auc\":%.4f,"
      "\"trimmed_mean_auc\":%.4f,\"tolerance\":%.3f,\"pass\":%s}\n",
      base.num_clients, base.cohort, base.rounds, kAttackers,
      to_string(base.attack.kind), base.attack.scale, r_clean.final_auc,
      r_wa.final_auc, wa_diverged ? "true" : "false", r_median.final_auc,
      r_trimmed.final_auc, kTolerance, pass ? "true" : "false");
  if (r_wa.failed) {
    std::printf(
        "{\"bench\":\"byzantine\",\"note\":\"weighted_average run aborted by "
        "the aggregation guard\",\"error\":\"%s\"}\n",
        r_wa.error.c_str());
  }

  if (summary != nullptr) {
    summary->byz_clients = base.num_clients;
    summary->byz_cohort = base.cohort;
    summary->byz_attack = to_string(base.attack.kind);
    summary->byz_attackers = kAttackers;
    summary->byz_tolerance = kTolerance;
    summary->byz_clean_auc = r_clean.final_auc;
    summary->byz_weighted_average_auc = r_wa.final_auc;
    summary->byz_weighted_average_diverged = wa_diverged;
    summary->byz_coordinate_median_auc = r_median.final_auc;
    summary->byz_trimmed_mean_auc = r_trimmed.final_auc;
    summary->byz_pass = pass;
  }
  return pass ? 0 : 1;
}

// --- part 6: adversarial arms race -----------------------------------

// Defenses vs smarter attackers on the part-4 fleet (K = 1000, C = 20,
// 10% attackers, 32 rounds). Reuses part 4's clean weighted_average
// AUC from the summary as the multi_krum target, then adds:
//   multi_krum   — distance-based selection must track the clean
//                  trajectory under the 10x sign-flip (within 0.02);
//   detection    — the AnomalyDetector must reach >= 0.8 precision AND
//                  >= 0.8 recall on the stock sign-flip scenario
//                  (per-scoring-event, against the oracle attacker set);
//   reputation   — reputation_weighted sampling under plain
//                  weighted_average must win back at least half of the
//                  AUC gap the uniform-sampled poisoned run loses;
//   adaptive     — kAdaptiveScaled (reversed delta sized to the
//                  estimated tolerance) must cost norm_clipped_mean at
//                  least 0.05 AUC more than the oblivious kScaled
//                  attacker, whose oversized update the clip neuters.
// The clip knob is calibrated from a short clean probe: clip_norm =
// 5x the detector's EMA of cohort median delta norms — deliberately
// looser than AnomalyConfig::norm_factor's 3x flagging threshold, the
// way production clips are set so honest heterogeneity tails are never
// trimmed. That slack is exactly what the adaptive attacker farms.
int bench_arms_race(SimBenchSummary* summary) {
  ThousandOptions base;
  base.rounds = 32;
  base.steps = 4;
  base.attack.kind = AttackKind::kSignFlip;
  base.attack.scale = 10.0;
  base.attackers = 100;
  constexpr double kTolerance = 0.02;

  const double clean_auc = summary->byz_clean_auc;

  // multi_krum{f=4, m=10}: selection over n - f - 2 = 14 nearest
  // neighbors at C = 20, averaging the 10 lowest-scored — attackers
  // would need an 11-of-20 cohort majority to reach the model.
  ThousandOptions krum = base;
  krum.rule = "multi_krum";
  krum.krum_f = 4;
  krum.krum_m = 10;
  const ThousandRun r_krum = run_thousand(krum);
  const bool krum_tracks =
      !r_krum.failed && std::abs(r_krum.final_auc - clean_auc) <= kTolerance;

  // Detection precision/recall on the stock sign-flip run. The rule is
  // trimmed_mean so the run survives to score all 32 cohorts; the
  // detector is a pure observer, so the rule choice cannot change what
  // it sees. Ground truth comes from rebuilding the same deterministic
  // attacker layout the run used.
  AnomalyDetector detector{[] {
    AnomalyConfig config;
    config.enabled = true;
    return config;
  }()};
  ThousandOptions det = base;
  det.rule = "trimmed_mean";
  det.anomaly = true;
  det.detector = &detector;
  const ThousandRun r_det = run_thousand(det);
  SimConfig truth = SimConfig::heterogeneous(base.num_clients, /*seed=*/5);
  add_attackers(truth, base.attackers, base.attack);
  double tp = 0.0, fp = 0.0, fn = 0.0;
  for (std::size_t k = 0; k < base.num_clients; ++k) {
    const bool is_attacker = truth.profile(k).attack.kind != AttackKind::kNone;
    const double flags = static_cast<double>(detector.flagged(k));
    const double scored = static_cast<double>(detector.scored(k));
    if (is_attacker) {
      tp += flags;
      fn += scored - flags;
    } else {
      fp += flags;
    }
  }
  const double precision = tp / std::max(tp + fp, 1.0);
  const double recall = tp / std::max(tp + fn, 1.0);
  const bool detect_ok =
      !r_det.failed && precision >= 0.8 && recall >= 0.8;

  // Reputation-weighted sampling under the same weighted_average the
  // uniform run lost with: detector flags feed the book, flagged
  // clients fall toward the weight floor, and late rounds are nearly
  // attacker-free. The loop is coverage-limited — an attacker poisons
  // at least once before its first verdict — so the trio (clean /
  // uniform / reputation, sharing every other knob) runs at C = 50,
  // where the detector meets the whole 100-attacker pool well inside
  // the horizon, and the book's first flag drops a client straight to
  // the weight floor: one verdict benches an attacker for the run.
  ThousandOptions rep_base = base;
  rep_base.cohort = 50;
  ThousandOptions rep_clean = rep_base;
  rep_clean.attackers = 0;
  ThousandOptions rep_uniform = rep_base;
  ReputationBook book{[] {
    ReputationConfig config;
    config.flag_penalty = config.floor;  // one flag -> the floor
    return config;
  }()};
  ThousandOptions rep = rep_base;
  rep.participation = ParticipationKind::kReputationWeighted;
  rep.anomaly = true;
  rep.reputation = &book;
  const ThousandRun r_rep_clean = run_thousand(rep_clean);
  const ThousandRun r_rep_uniform = run_thousand(rep_uniform);
  const ThousandRun r_rep = run_thousand(rep);
  const double rep_clean_auc = r_rep_clean.final_auc;
  const double rep_uniform_auc = r_rep_uniform.final_auc;
  const double wa_gap = rep_clean_auc - rep_uniform_auc;
  const double recovered =
      wa_gap > 0.0 ? (r_rep.final_auc - rep_uniform_auc) / wa_gap : 0.0;
  const bool rep_ok =
      !r_rep_clean.failed && !r_rep.failed && wa_gap > 0.0 && recovered >= 0.5;

  // Adaptive vs oblivious against norm_clipped_mean. Calibrate the
  // clip from a short clean probe, then run the oblivious 10x-scaled
  // attacker (its inflated update is clipped back to an honest-sized
  // step in the honest direction) and the adaptive one (reversed delta
  // sized to its tolerance estimate — inside the clip, fully counted).
  // The pair runs a mid-training horizon: the adaptive attack is a
  // convergence-rate tax (it cancels part of every cohort step), so the
  // AUC separation is widest before both trajectories plateau.
  AnomalyDetector probe{[] {
    AnomalyConfig config;
    config.enabled = true;
    return config;
  }()};
  ThousandOptions probe_opts;
  probe_opts.rounds = 4;
  probe_opts.steps = base.steps;
  probe_opts.anomaly = true;
  probe_opts.detector = &probe;
  const ThousandRun r_probe = run_thousand(probe_opts);
  const double clip = 5.0 * probe.baseline_norm();

  ThousandOptions oblivious = base;
  oblivious.rounds = 8;
  oblivious.rule = "norm_clipped_mean";
  oblivious.clip_norm = clip;
  oblivious.attack.kind = AttackKind::kScaled;
  oblivious.attack.scale = 10.0;
  ThousandOptions adaptive = oblivious;
  adaptive.attack.kind = AttackKind::kAdaptiveScaled;
  // The tolerance estimate is an EMA of the global step, which the
  // attack itself shrinks as it bites; 8x that self-dampened estimate
  // keeps the reversed delta pinned at the clip allowance instead of
  // fading with its own success (the rule clips any overshoot back to
  // the allowance, so the attacker loses nothing by aiming high).
  adaptive.attack.scale = 8.0;
  const ThousandRun r_oblivious = run_thousand(oblivious);
  const ThousandRun r_adaptive = run_thousand(adaptive);
  const double adaptive_gap = r_oblivious.final_auc - r_adaptive.final_auc;
  const bool adaptive_ok = !r_probe.failed && clip > 0.0 &&
                           !r_oblivious.failed && !r_adaptive.failed &&
                           adaptive_gap >= 0.05;

  const bool pass = krum_tracks && detect_ok && rep_ok && adaptive_ok;
  std::printf(
      "{\"bench\":\"arms_race\",\"clients\":%zu,\"cohort\":%d,\"rounds\":%d,"
      "\"attackers\":%zu,\"multi_krum_auc\":%.4f,\"multi_krum_tracks\":%s,"
      "\"detector_precision\":%.4f,\"detector_recall\":%.4f,"
      "\"reputation_cohort\":%d,\"reputation_clean_auc\":%.4f,"
      "\"reputation_uniform_auc\":%.4f,\"reputation_auc\":%.4f,"
      "\"reputation_recovered\":%.3f,"
      "\"clip_norm\":%.4f,\"clip_rounds\":%d,\"oblivious_clip_auc\":%.4f,"
      "\"adaptive_clip_auc\":%.4f,\"adaptive_gap\":%.4f,\"pass\":%s}\n",
      base.num_clients, base.cohort, base.rounds, base.attackers,
      r_krum.final_auc, krum_tracks ? "true" : "false", precision, recall,
      rep_base.cohort, rep_clean_auc, rep_uniform_auc, r_rep.final_auc,
      recovered, clip, oblivious.rounds, r_oblivious.final_auc,
      r_adaptive.final_auc, adaptive_gap, pass ? "true" : "false");

  if (summary != nullptr) {
    summary->ar_multi_krum_auc = r_krum.final_auc;
    summary->ar_multi_krum_tracks = krum_tracks;
    summary->ar_detector_precision = precision;
    summary->ar_detector_recall = recall;
    summary->ar_reputation_auc = r_rep.final_auc;
    summary->ar_reputation_recovered = recovered;
    summary->ar_clip_norm = clip;
    summary->ar_oblivious_clip_auc = r_oblivious.final_auc;
    summary->ar_adaptive_clip_auc = r_adaptive.final_auc;
    summary->ar_adaptive_gap = adaptive_gap;
    summary->ar_pass = pass;
  }
  return pass ? 0 : 1;
}

// --- part 5: profiler overhead on the K = 1000 federation ------------

// Median-of-3 simulated-events/sec of the standard thousand-client run
// in the given profiler mode, plus the fingerprint of the first run's
// finals. Median (not mean) so one scheduler hiccup cannot fail the
// gate.
double thousand_events_per_sec(bool profiler_enabled,
                               std::uint64_t* fingerprint) {
  Profiler::set_enabled(profiler_enabled);
  ThousandOptions topts;
  std::array<double, 3> host{};
  std::uint64_t events = 0;
  for (int i = 0; i < 3; ++i) {
    Timer timer;
    const ThousandRun run = run_thousand(topts);
    host[static_cast<std::size_t>(i)] = timer.seconds();
    if (run.failed) return 0.0;  // gate fails loudly downstream
    events = run.report.events_processed;
    if (i == 0) *fingerprint = finals_checksum({run.finals.front()});
  }
  std::sort(host.begin(), host.end());
  return static_cast<double>(events) / host[1];
}

int bench_profiler_overhead(SimBenchSummary* summary) {
  std::uint64_t fp_disabled = 0;
  std::uint64_t fp_enabled = 0;
  const double eps_disabled = thousand_events_per_sec(false, &fp_disabled);
  const double eps_enabled = thousand_events_per_sec(true, &fp_enabled);
  // Leaves the profiler on for the rest of the process (the embedded
  // per-phase report wants the instrumented mode).

  const double overhead_pct =
      eps_enabled > 0.0 ? (eps_disabled / eps_enabled - 1.0) * 100.0 : 1e9;
  const bool fingerprints_match =
      fp_disabled == fp_enabled && fp_disabled != 0;
  const bool within_budget = eps_enabled >= 0.95 * eps_disabled;
  const bool pass = fingerprints_match && within_budget;

  std::printf(
      "{\"bench\":\"profiler_overhead\",\"disabled_events_per_sec\":%.0f,"
      "\"enabled_events_per_sec\":%.0f,\"overhead_pct\":%.2f,"
      "\"fingerprints_match\":%s,\"within_5pct\":%s,\"pass\":%s}\n",
      eps_disabled, eps_enabled, overhead_pct,
      fingerprints_match ? "true" : "false", within_budget ? "true" : "false",
      pass ? "true" : "false");

  if (summary != nullptr) {
    summary->prof_disabled_eps = eps_disabled;
    summary->prof_enabled_eps = eps_enabled;
    summary->prof_overhead_pct = overhead_pct;
    summary->prof_fingerprints_match = fingerprints_match;
    summary->prof_pass = pass;
  }
  return pass ? 0 : 1;
}

// --- part 7: K = 100k streaming federation ---------------------------

// The million-client architecture, demonstrated at K = 100k on the
// bench budget: fast-init client construction (ClientInitSchema::
// kFastInit skips the per-client model-init replay, so building the
// fleet is O(K) cheap struct work, not O(K) model constructions) and
// the streaming sharded aggregation path (FLEDA_STREAMING's
// programmatic form), which folds each decoded upload into per-lane
// accumulators instead of materializing the cohort. The flat-memory
// gate runs a C = 128 round first, then a 16x larger C = 2048 round in
// the same process: VmHWM is monotone, so the second round's peak-RSS
// delta is exactly what the bigger cohort cost the server — with
// streaming it must stay within a fixed margin instead of growing with
// C x model size.
int bench_hundred_k(SimBenchSummary* summary) {
  constexpr std::size_t kK = 100'000;
  constexpr int kSmallCohort = 128;
  constexpr int kLargeCohort = 2048;
  constexpr double kFlatMarginMb = 32.0;

  const std::vector<ClientDataset>& shared_data = nine_shared_datasets();
  ModelFactory factory = make_model_factory(ModelKind::kFLNet, 2);
  auto pool = std::make_shared<ModelPool>(factory);
  Rng rng(4242);
  Timer construct_timer;
  std::vector<Client> clients;
  clients.reserve(kK);
  for (std::size_t k = 0; k < kK; ++k) {
    clients.emplace_back(static_cast<int>(k) + 1, &shared_data[k % 9], pool,
                         rng.fork(k), ClientInitSchema::kFastInit);
  }
  const double construct_s = construct_timer.seconds();

  FLRunOptions opts;
  opts.rounds = 1;
  opts.client.steps = 1;
  opts.client.batch_size = 2;
  opts.client.learning_rate = 1e-3;
  opts.client.mu = 0.0;
  opts.seed = 99;
  opts.participation.kind = ParticipationKind::kUniformSample;
  opts.participation.seed = 31337;
  opts.aggregation.streaming = true;
  opts.sim = SimConfig::heterogeneous(kK, /*seed=*/5);

  FedAvg algo;
  bool failed = false;
  std::string error;
  SimReport report;
  auto run_once = [&](int cohort) {
    opts.participation.sample_size = cohort;
    opts.sim_report = &report;
    Timer timer;
    try {
      algo.run(clients, factory, opts);
    } catch (const std::exception& e) {
      failed = true;
      error = e.what();
    }
    return timer.seconds();
  };
  run_once(kSmallCohort);
  const double hwm_small = peak_rss_mb();
  const double large_host_s = run_once(kLargeCohort);
  const double hwm_large = peak_rss_mb();

  const double delta_mb =
      (hwm_small >= 0.0 && hwm_large >= 0.0) ? hwm_large - hwm_small : 0.0;
  // No /proc (hwm < 0): the memory gate is unobservable, don't fail it.
  const bool flat_rss = hwm_small < 0.0 || delta_mb <= kFlatMarginMb;
  const double events_per_sec =
      large_host_s > 0.0
          ? static_cast<double>(report.events_processed) / large_host_s
          : 0.0;
  const bool pass = !failed && flat_rss && events_per_sec > 0.0;

  std::printf(
      "{\"bench\":\"hundred_k\",\"clients\":%zu,\"small_cohort\":%d,"
      "\"large_cohort\":%d,\"construct_s\":%.3f,\"events_per_sec\":%.0f,"
      "\"small_peak_rss_mb\":%.1f,\"large_peak_rss_mb\":%.1f,"
      "\"delta_mb\":%.1f,\"flat_margin_mb\":%.1f,\"flat_rss\":%s,"
      "\"pass\":%s}\n",
      kK, kSmallCohort, kLargeCohort, construct_s, events_per_sec, hwm_small,
      hwm_large, delta_mb, kFlatMarginMb, flat_rss ? "true" : "false",
      pass ? "true" : "false");
  if (failed) {
    std::printf("{\"bench\":\"hundred_k\",\"error\":\"%s\"}\n",
                error.c_str());
  }

  if (summary != nullptr) {
    summary->hk_construct_s = construct_s;
    summary->hk_events_per_sec = events_per_sec;
    summary->hk_small_hwm_mb = hwm_small;
    summary->hk_large_hwm_mb = hwm_large;
    summary->hk_delta_mb = delta_mb;
    summary->hk_pass = pass;
  }
  return pass ? 0 : 1;
}

// The machine-readable perf trajectory: one JSON object per run, so a
// future PR can diff events/sec, round time, and the memory budget
// against this one's CI artifact.
void write_bench_json(const SimBenchSummary& summary,
                      const ProfileReport& profile) {
  std::FILE* f = std::fopen("BENCH_sim.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "micro_sim: cannot write BENCH_sim.json\n");
    return;
  }
  std::fprintf(
      f,
      "{\"bench\":\"micro_sim\",\"events_per_sec\":%.0f,"
      "\"events_per_sec_profiled\":%.0f,"
      "\"thousand_clients\":{\"clients\":1000,\"cohort\":20,\"rounds\":3,"
      "\"host_time_s\":%.3f,\"round_host_ms\":%.1f,\"sim_time_s\":%.3f,"
      "\"bytes_per_round\":%llu,\"peak_model_instances\":%lld,"
      "\"model_instance_budget\":%lld,"
      "\"finals_fingerprint\":\"%016llx\"},"
      "\"byzantine\":{\"clients\":%zu,\"cohort\":%d,\"attackers\":%zu,"
      "\"attack\":\"%s\",\"tolerance\":%.3f,\"clean_auc\":%.4f,"
      "\"weighted_average_auc\":%.4f,\"weighted_average_diverged\":%s,"
      "\"coordinate_median_auc\":%.4f,\"trimmed_mean_auc\":%.4f,"
      "\"pass\":%s},"
      "\"arms_race\":{\"multi_krum_auc\":%.4f,\"multi_krum_tracks\":%s,"
      "\"detector_precision\":%.4f,\"detector_recall\":%.4f,"
      "\"reputation_auc\":%.4f,\"reputation_recovered\":%.3f,"
      "\"clip_norm\":%.4f,\"oblivious_clip_auc\":%.4f,"
      "\"adaptive_clip_auc\":%.4f,\"adaptive_gap\":%.4f,\"pass\":%s},"
      "\"profiler_overhead\":{\"disabled_events_per_sec\":%.0f,"
      "\"enabled_events_per_sec\":%.0f,\"overhead_pct\":%.2f,"
      "\"fingerprints_match\":%s,\"pass\":%s},"
      "\"hundred_k\":{\"clients\":100000,\"small_cohort\":128,"
      "\"large_cohort\":2048,\"construct_s\":%.3f,\"events_per_sec\":%.0f,"
      "\"small_peak_rss_mb\":%.1f,\"large_peak_rss_mb\":%.1f,"
      "\"delta_mb\":%.1f,\"pass\":%s},"
      "\"distinct_phases\":%d,\"profile\":%s,"
      "\"threads\":%zu,\"peak_rss_mb\":%.1f}\n",
      summary.events_per_sec, summary.events_per_sec_profiled,
      summary.thousand_host_s,
      summary.thousand_round_host_ms, summary.thousand_sim_time_s,
      static_cast<unsigned long long>(summary.thousand_bytes_per_round),
      static_cast<long long>(summary.peak_model_instances),
      static_cast<long long>(summary.model_instance_budget),
      static_cast<unsigned long long>(summary.finals_fingerprint),
      summary.byz_clients, summary.byz_cohort, summary.byz_attackers,
      summary.byz_attack, summary.byz_tolerance, summary.byz_clean_auc,
      summary.byz_weighted_average_auc,
      summary.byz_weighted_average_diverged ? "true" : "false",
      summary.byz_coordinate_median_auc, summary.byz_trimmed_mean_auc,
      summary.byz_pass ? "true" : "false",
      summary.ar_multi_krum_auc,
      summary.ar_multi_krum_tracks ? "true" : "false",
      summary.ar_detector_precision, summary.ar_detector_recall,
      summary.ar_reputation_auc, summary.ar_reputation_recovered,
      summary.ar_clip_norm, summary.ar_oblivious_clip_auc,
      summary.ar_adaptive_clip_auc, summary.ar_adaptive_gap,
      summary.ar_pass ? "true" : "false",
      summary.prof_disabled_eps, summary.prof_enabled_eps,
      summary.prof_overhead_pct,
      summary.prof_fingerprints_match ? "true" : "false",
      summary.prof_pass ? "true" : "false",
      summary.hk_construct_s, summary.hk_events_per_sec,
      summary.hk_small_hwm_mb, summary.hk_large_hwm_mb, summary.hk_delta_mb,
      summary.hk_pass ? "true" : "false",
      summary.distinct_phases, profile.to_json().c_str(),
      ThreadPool::global().size(), summary.rss_mb);
  std::fclose(f);
}

int main_impl() {
  SimBenchSummary summary;
  // FLEDA_SIM_PART=thousand runs only the K = 1000 federation part —
  // the TSan CI smoke wants the full concurrent train/aggregate path
  // without paying for the (slow under TSan) throughput and robustness
  // sweeps. Filtered runs skip BENCH_sim.json: the trajectory artifact
  // only makes sense for the complete bench.
  const char* part = std::getenv("FLEDA_SIM_PART");
  if (part != nullptr && std::string(part) == "thousand") {
    Profiler::set_enabled(true);
    Profiler::reset();
    return bench_thousand_clients(&summary);
  }
  // FLEDA_SIM_PART=arms_race runs only the adversarial parts (4 and 6;
  // part 6 needs part 4's clean/poisoned baselines) — the fast loop for
  // tuning attack and defense knobs.
  if (part != nullptr && std::string(part) == "arms_race") {
    Profiler::set_enabled(true);
    Profiler::reset();
    const int byz_rc = bench_byzantine(&summary);
    const int arms_rc = bench_arms_race(&summary);
    return byz_rc != 0 ? byz_rc : arms_rc;
  }
  // FLEDA_SIM_PART=hundred_k runs only the K = 100k streaming
  // federation (fast-init fleet + flat peak-RSS gate) — the CI step
  // that guards the million-client architecture.
  if (part != nullptr && std::string(part) == "hundred_k") {
    Profiler::set_enabled(true);
    Profiler::reset();
    return bench_hundred_k(&summary);
  }
  // Raw loop both ways. The headline events_per_sec stays the
  // uninstrumented number (comparable with pre-profiler trajectory
  // artifacts); the profiled line shows the worst case (span around a
  // no-op body).
  Profiler::set_enabled(false);
  summary.events_per_sec = bench_event_loop(1'000'000, false);
  Profiler::set_enabled(true);
  Profiler::reset();
  summary.events_per_sec_profiled = bench_event_loop(1'000'000, true);
  const int straggler_rc = bench_straggler();
  const int thousand_rc = bench_thousand_clients(&summary);
  const int overhead_rc = bench_profiler_overhead(&summary);
  const int byzantine_rc = bench_byzantine(&summary);
  const int arms_race_rc = bench_arms_race(&summary);
  const int hundred_k_rc = bench_hundred_k(&summary);
  summary.rss_mb = peak_rss_mb();

  // The merged per-phase profile of everything since the reset above.
  // The federation parts must have lit up the whole instrumented
  // surface (train fwd/bwd/opt, codec both ways, aggregate, dispatch,
  // pool) — a missing phase means an instrumentation regression.
  const ProfileReport profile = Profiler::report();
  for (const PhaseReport& p : profile.phases) {
    if (p.count > 0) ++summary.distinct_phases;
  }
  const bool profile_ok = summary.distinct_phases >= 6;
  std::printf("{\"bench\":\"profile\",\"distinct_phases\":%d,\"pass\":%s}\n",
              summary.distinct_phases, profile_ok ? "true" : "false");

  write_bench_json(summary, profile);
  if (straggler_rc != 0) return straggler_rc;
  if (thousand_rc != 0) return thousand_rc;
  if (overhead_rc != 0) return overhead_rc;
  if (byzantine_rc != 0) return byzantine_rc;
  if (arms_race_rc != 0) return arms_race_rc;
  if (hundred_k_rc != 0) return hundred_k_rc;
  return profile_ok ? 0 : 1;
}

}  // namespace
}  // namespace fleda

int main() { return fleda::main_impl(); }
