// Microbenchmark for the src/comm/ parameter-exchange subsystem.
//
// Part 1 measures encode/decode throughput (MB/s of fp32-equivalent
// payload) and compression ratio for every codec on a realistic FLNet
// snapshot. Part 2 runs the same FedProx experiment end-to-end through
// an Fp32 channel and an Int8Quant channel and reports the upload-byte
// reduction plus the final-model test AUC of both runs (which should
// agree within noise).
//
// Output is one JSON object per line, easy to diff/collect in CI:
//   {"bench":"codec","name":"int8",...}
//   {"bench":"e2e","codec":"int8",...}
// plus a machine-readable BENCH_comm.json (codec throughput and
// compression ratios, e2e upload reduction, and the merged per-phase
// profile) for the perf trajectory — future PRs diff it against this
// run's CI artifact.
//
// The codec timings are ProfileScope spans (the profiler is
// force-enabled for the whole bench), so the MB/s columns and the
// embedded profile's codec/encode + codec/decode phases come from the
// same clock and the same measurements.
//
// Honors FLEDA_SCALE (default smoke — this is a bandwidth bench, not
// an accuracy bench) and FLEDA_CACHE_DIR like the table benches.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "comm/channel.hpp"
#include "comm/codec.hpp"
#include "core/experiment.hpp"
#include "models/registry.hpp"
#include "obs/profiler.hpp"
#include "phys/features.hpp"

namespace fleda {
namespace {

struct CodecRow {
  std::string name;
  double compression = 0.0;
  double encode_mb_per_s = 0.0;
  double decode_mb_per_s = 0.0;
};

ModelParameters paper_snapshot(std::uint64_t seed) {
  Rng rng(seed);
  RoutabilityModelPtr model =
      make_model(ModelKind::kFLNet, kNumFeatureChannels, rng);
  return ModelParameters::from_model(*model);
}

CodecRow bench_codec(const ParameterCodec& codec,
                     const ModelParameters& params,
                     const ModelParameters& reference, int repeats) {
  // Warm-up + size probe.
  ByteBuffer blob = codec.encode(params, &reference);
  const double raw_mb = static_cast<double>(raw_wire_bytes(params)) / 1e6;

  // The timing spans double as profiler phases: the codec/encode and
  // codec/decode rows of the embedded report are these exact loops.
  double encode_s = 0.0;
  {
    ProfileScope scope(phase::kCodecEncode);
    for (int i = 0; i < repeats; ++i) {
      ByteBuffer b = codec.encode(params, &reference);
    }
    encode_s = scope.seconds();
  }

  double decode_s = 0.0;
  {
    ProfileScope scope(phase::kCodecDecode);
    for (int i = 0; i < repeats; ++i) {
      ModelParameters p = codec.decode(blob, &reference);
    }
    decode_s = scope.seconds();
  }

  CodecRow row;
  row.name = codec.name();
  row.compression = static_cast<double>(raw_wire_bytes(params)) /
                    static_cast<double>(blob.size());
  row.encode_mb_per_s = raw_mb * repeats / encode_s;
  row.decode_mb_per_s = raw_mb * repeats / decode_s;
  std::printf(
      "{\"bench\":\"codec\",\"name\":\"%s\",\"raw_mb\":%.3f,"
      "\"encoded_mb\":%.3f,\"compression\":%.2f,"
      "\"encode_mb_per_s\":%.1f,\"decode_mb_per_s\":%.1f}\n",
      row.name.c_str(), raw_mb, static_cast<double>(blob.size()) / 1e6,
      row.compression, row.encode_mb_per_s, row.decode_mb_per_s);
  return row;
}

struct E2EResult {
  double upload_mb = 0.0;
  double avg_auc = 0.0;
  double sim_latency_s = 0.0;
};

E2EResult run_e2e(Experiment& exp, CodecKind uplink) {
  // Mutating the comm config between runs is the whole point of the
  // bench; everything else (data, seeds) stays fixed.
  ExperimentConfig cfg = exp.config();
  cfg.comm.uplink = uplink;
  Experiment run(cfg);
  run.prepare_data();
  MethodResult row = run.run_method(TrainingMethod::kFedProx);
  E2EResult r;
  r.upload_mb = row.comm.uplink_mb();
  r.avg_auc = row.average;
  r.sim_latency_s = row.comm.simulated_latency_s;
  return r;
}

void write_bench_json(const std::vector<CodecRow>& codecs,
                      const E2EResult& fp32, const E2EResult& int8,
                      double reduction, const ProfileReport& profile,
                      int distinct_phases) {
  std::FILE* f = std::fopen("BENCH_comm.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "micro_comm: cannot write BENCH_comm.json\n");
    return;
  }
  std::fprintf(f, "{\"bench\":\"micro_comm\",\"codecs\":[");
  for (std::size_t i = 0; i < codecs.size(); ++i) {
    std::fprintf(
        f,
        "%s{\"name\":\"%s\",\"compression\":%.2f,\"encode_mb_per_s\":%.1f,"
        "\"decode_mb_per_s\":%.1f}",
        i == 0 ? "" : ",", codecs[i].name.c_str(), codecs[i].compression,
        codecs[i].encode_mb_per_s, codecs[i].decode_mb_per_s);
  }
  std::fprintf(
      f,
      "],\"e2e\":{\"fp32_upload_mb\":%.3f,\"int8_upload_mb\":%.3f,"
      "\"upload_reduction\":%.2f,\"auc_delta\":%.4f},"
      "\"distinct_phases\":%d,\"profile\":%s}\n",
      fp32.upload_mb, int8.upload_mb, reduction, int8.avg_auc - fp32.avg_auc,
      distinct_phases, profile.to_json().c_str());
  std::fclose(f);
}

int main_impl() {
  // Force the instrumented mode regardless of FLEDA_PROFILE: the codec
  // MB/s columns are profiler spans, so without it there is no bench.
  Profiler::set_enabled(true);
  Profiler::reset();

  const ModelParameters params = paper_snapshot(1);
  const ModelParameters reference = paper_snapshot(2);
  const int repeats = 20;

  std::vector<CodecRow> codec_rows;
  for (CodecKind kind : {CodecKind::kFp32, CodecKind::kFp16,
                         CodecKind::kInt8Quant, CodecKind::kTopKDelta}) {
    std::unique_ptr<ParameterCodec> codec = make_codec(kind, 0.05);
    codec_rows.push_back(bench_codec(*codec, params, reference, repeats));
  }

  // End-to-end: FedProx through fp32 vs int8 uplinks.
  ExperimentConfig cfg;
  cfg.model = ModelKind::kFLNet;
  const char* scale = std::getenv("FLEDA_SCALE");
  cfg.scale = resolve_scale(scale == nullptr ? "smoke" : scale);
  const char* cache = std::getenv("FLEDA_CACHE_DIR");
  cfg.cache_dir = cache != nullptr ? cache : ".fleda-cache";
  Experiment exp(cfg);

  const E2EResult fp32 = run_e2e(exp, CodecKind::kFp32);
  const E2EResult int8 = run_e2e(exp, CodecKind::kInt8Quant);
  const double reduction =
      int8.upload_mb > 0.0 ? fp32.upload_mb / int8.upload_mb : 0.0;

  std::printf(
      "{\"bench\":\"e2e\",\"codec\":\"fp32\",\"upload_mb\":%.3f,"
      "\"avg_auc\":%.4f,\"sim_latency_s\":%.1f}\n",
      fp32.upload_mb, fp32.avg_auc, fp32.sim_latency_s);
  std::printf(
      "{\"bench\":\"e2e\",\"codec\":\"int8\",\"upload_mb\":%.3f,"
      "\"avg_auc\":%.4f,\"sim_latency_s\":%.1f,"
      "\"upload_reduction_vs_fp32\":%.2f,\"auc_delta\":%.4f}\n",
      int8.upload_mb, int8.avg_auc, int8.sim_latency_s, reduction,
      int8.avg_auc - fp32.avg_auc);

  // The merged per-phase profile: the codec loops above plus the two
  // end-to-end FedProx runs (training, channel codecs, aggregation,
  // dispatch, pool). Fewer than 6 live phases means an instrumentation
  // regression somewhere in the library.
  const ProfileReport profile = Profiler::report();
  int distinct_phases = 0;
  for (const PhaseReport& p : profile.phases) {
    if (p.count > 0) ++distinct_phases;
  }
  const bool profile_ok = distinct_phases >= 6;
  std::printf("{\"bench\":\"profile\",\"distinct_phases\":%d,\"pass\":%s}\n",
              distinct_phases, profile_ok ? "true" : "false");

  write_bench_json(codec_rows, fp32, int8, reduction, profile,
                   distinct_phases);
  return reduction >= 3.5 && profile_ok ? 0 : 1;
}

}  // namespace
}  // namespace fleda

int main() { return fleda::main_impl(); }
