// SimTrace timeline artifacts: runs three stock K = 1000 scenarios
// with tracing enabled and renders each SimTrace through
// obs/trace_html into a self-contained HTML Gantt —
//
//   TRACE_straggler.html  full-participation sync FedAvg with one 20x
//                         straggler (the long compute bar every round
//                         waits for),
//   TRACE_dropout.html    AsyncFedAvg under periodic offline windows
//                         (gray availability bands, red crosses where
//                         in-flight uploads were lost),
//   TRACE_byzantine.html  sampled sync FedAvg with 10% sign-flip
//                         attackers (tinted lanes).
//
// Each render is gated on the markers it exists to show (compute
// spans, offline bands + drop markers, attacker lanes); CI uploads the
// three files next to the BENCH_*.json trajectory.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "fl/async_fedavg.hpp"
#include "fl/fedavg.hpp"
#include "fl/synthetic.hpp"
#include "models/pool.hpp"
#include "models/registry.hpp"
#include "obs/trace_html.hpp"
#include "sim/profile.hpp"
#include "util/rng.hpp"

namespace fleda {
namespace {

constexpr std::size_t kK = 1000;

// The micro_sim fleet: K clients sharing 9 synthetic datasets through
// one scratch pool.
struct Fleet {
  std::vector<ClientDataset> data;
  ModelFactory factory;
  std::shared_ptr<ModelPool> pool;
  std::vector<Client> clients;
};

Fleet make_fleet() {
  Fleet fleet;
  for (int d = 0; d < 9; ++d) {
    fleet.data.push_back(make_synthetic_client(
        d + 1, 0.35f + 0.04f * static_cast<float>(d), 1000 + d));
  }
  fleet.factory = make_model_factory(ModelKind::kFLNet, 2);
  fleet.pool = std::make_shared<ModelPool>(fleet.factory);
  Rng rng(4242);
  fleet.clients.reserve(kK);
  for (std::size_t k = 0; k < kK; ++k) {
    fleet.clients.emplace_back(static_cast<int>(k) + 1, &fleet.data[k % 9],
                               fleet.pool, rng.fork(k));
  }
  return fleet;
}

FLRunOptions base_options() {
  FLRunOptions opts;
  opts.client.steps = 2;
  opts.client.batch_size = 2;
  opts.client.learning_rate = 1e-3;
  opts.client.mu = 0.0;
  opts.seed = 99;
  opts.trace = true;
  return opts;
}

std::size_t count_kind(const SimReport& report, SimEventKind kind) {
  std::size_t n = 0;
  for (const SimTraceEntry& e : report.trace) {
    if (e.kind == kind) ++n;
  }
  return n;
}

bool write_html(const char* path, const std::string& html) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "trace_viz: cannot write %s\n", path);
    return false;
  }
  out << html;
  return true;
}

bool contains(const std::string& haystack, const char* needle) {
  return haystack.find(needle) != std::string::npos;
}

// Valid self-contained page with a timeline in it.
bool html_well_formed(const std::string& html) {
  return contains(html, "<!DOCTYPE html>") && contains(html, "<svg") &&
         contains(html, "</svg>") && contains(html, "</html>");
}

int scenario_straggler() {
  Fleet fleet = make_fleet();
  FLRunOptions opts = base_options();
  opts.rounds = 2;
  opts.sim = SimConfig::with_straggler(kK, /*idx=*/7, /*slowdown=*/20.0);
  opts.sim.step_time_s = 0.05;
  SimReport report;
  opts.sim_report = &report;
  FedAvg algo;
  algo.run(fleet.clients, fleet.factory, opts);

  TraceVizOptions viz;
  viz.title = "fleda SimTrace: K=1000 sync FedAvg, one 20x straggler";
  viz.lane_height_px = 4;
  const std::string html = render_trace_html(report, opts.sim, kK, viz);
  const bool ok = html_well_formed(html) && contains(html, "class=\"compute\"") &&
                  contains(html, "class=\"up\"") &&
                  count_kind(report, SimEventKind::kRoundEnd) > 0 &&
                  write_html("TRACE_straggler.html", html);
  std::printf(
      "{\"bench\":\"trace_viz\",\"scenario\":\"straggler\",\"clients\":%zu,"
      "\"trace_events\":%zu,\"html_bytes\":%zu,\"pass\":%s}\n",
      kK, report.trace.size(), html.size(), ok ? "true" : "false");
  return ok ? 0 : 1;
}

int scenario_dropout() {
  Fleet fleet = make_fleet();
  FLRunOptions opts = base_options();
  opts.rounds = 10;  // async: server aggregations
  opts.sim = SimConfig::uniform(kK);
  // One local step = 1 simulated second, so a dispatched chain takes
  // ~2.1 s; clients 0..29 go offline during [~1, ~6) and twice more —
  // their first upload of each cycle is in flight when the window
  // opens, so it is dropped and retried after rejoin.
  opts.sim.step_time_s = 1.0;
  for (std::size_t i = 0; i < 30; ++i) {
    add_periodic_dropout(opts.sim, i, /*phase=*/1.0 + 0.1 * double(i),
                         /*period=*/8.0, /*duration=*/5.0, /*repeats=*/3);
  }
  SimReport report;
  opts.sim_report = &report;
  AsyncConfig async;
  async.buffer_size = 20;
  async.max_in_flight = 50;
  AsyncFedAvg algo(async);
  algo.run(fleet.clients, fleet.factory, opts);

  TraceVizOptions viz;
  viz.title =
      "fleda SimTrace: K=1000 AsyncFedAvg, periodic dropout on 30 clients";
  viz.lane_height_px = 6;
  const std::string html = render_trace_html(report, opts.sim, kK, viz);
  const std::size_t drops = count_kind(report, SimEventKind::kDropped);
  const bool ok = html_well_formed(html) && drops > 0 &&
                  contains(html, "class=\"offline\"") &&
                  contains(html, "class=\"drop\"") &&
                  contains(html, "class=\"agg\"") &&
                  write_html("TRACE_dropout.html", html);
  std::printf(
      "{\"bench\":\"trace_viz\",\"scenario\":\"dropout\",\"clients\":%zu,"
      "\"trace_events\":%zu,\"dropped_updates\":%zu,\"html_bytes\":%zu,"
      "\"pass\":%s}\n",
      kK, report.trace.size(), drops, html.size(), ok ? "true" : "false");
  return ok ? 0 : 1;
}

int scenario_byzantine() {
  Fleet fleet = make_fleet();
  FLRunOptions opts = base_options();
  opts.rounds = 3;
  opts.participation.kind = ParticipationKind::kUniformSample;
  opts.participation.sample_size = 20;
  opts.participation.seed = 31337;
  AttackSpec attack;
  attack.kind = AttackKind::kSignFlip;
  attack.scale = 10.0;
  opts.sim = SimConfig::with_attackers(kK, /*num_attackers=*/100, attack);
  opts.sim.step_time_s = 0.05;
  SimReport report;
  opts.sim_report = &report;
  FedAvg algo;
  algo.run(fleet.clients, fleet.factory, opts);

  TraceVizOptions viz;
  viz.title =
      "fleda SimTrace: K=1000 sync FedAvg (C=20), 10% sign-flip attackers";
  const std::string html = render_trace_html(report, opts.sim, kK, viz);
  const bool ok = html_well_formed(html) &&
                  contains(html, "class=\"attacker-bg\"") &&
                  contains(html, "lane-label attacker") &&
                  write_html("TRACE_byzantine.html", html);
  std::printf(
      "{\"bench\":\"trace_viz\",\"scenario\":\"byzantine\",\"clients\":%zu,"
      "\"trace_events\":%zu,\"html_bytes\":%zu,\"pass\":%s}\n",
      kK, report.trace.size(), html.size(), ok ? "true" : "false");
  return ok ? 0 : 1;
}

int main_impl() {
  const int straggler_rc = scenario_straggler();
  const int dropout_rc = scenario_dropout();
  const int byzantine_rc = scenario_byzantine();
  if (straggler_rc != 0) return straggler_rc;
  if (dropout_rc != 0) return dropout_rc;
  return byzantine_rc;
}

}  // namespace
}  // namespace fleda

int main() { return fleda::main_impl(); }
