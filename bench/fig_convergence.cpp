// Supplementary convergence bench. Figures 1 and 2 of the paper are
// architecture diagrams, not measured plots; this bench exercises the
// round loop they depict and reports average test AUC per round for
// FedAvg vs FedProx (the heterogeneity-robustness story behind the
// paper's choice of FedProx), printed as a plottable series.
#include "bench_common.hpp"

int main() {
  using namespace fleda;
  ExperimentConfig cfg = bench::make_config(ModelKind::kFLNet);
  std::printf("== Fig (supplementary): round-by-round convergence, FLNet ==\n");
  Timer total;
  Experiment exp(cfg);
  exp.prepare_data();

  auto fedavg = exp.run_convergence(TrainingMethod::kFedAvg);
  auto fedprox = exp.run_convergence(TrainingMethod::kFedProx);

  AsciiTable t("Average test ROC AUC per round");
  t.set_header({"Round", "FedAvg", "FedProx"});
  for (std::size_t r = 0; r < fedprox.size(); ++r) {
    t.add_row({std::to_string(r + 1),
               r < fedavg.size() ? AsciiTable::fmt(fedavg[r].average_auc, 3)
                                 : "-",
               AsciiTable::fmt(fedprox[r].average_auc, 3)});
  }
  t.print();
  std::printf("total time %.1fs\n\n", total.seconds());
  return 0;
}
