// MetricsRegistry: named counters, gauges, and fixed-bucket histograms
// with a JSON snapshot — the structured, always-cheap complement to the
// scoped profiler (which answers "where did the time go"; metrics
// answer "how much of everything happened").
//
// Naming scheme: "fleda.<subsystem>.<metric>", lowercase, dot-
// separated — e.g. fleda.comm.uplink_bytes, fleda.pool.acquires,
// fleda.agg.nonfinite_guard_trips. Registration (the name -> metric
// lookup) takes a mutex; the returned references are stable for the
// registry's lifetime, so hot call sites cache them in a local static
// and every subsequent update is a handful of relaxed atomics.
//
// Counters are sharded across cache lines by thread-id hash so eight
// pool workers incrementing the same counter do not serialize on one
// cache line; value() sums the shards. Gauges are a single atomic
// double. Histograms keep one atomic count per bucket plus a CAS-added
// sum. reset() zeroes values but never unregisters metrics — cached
// references stay valid forever.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace fleda {

inline constexpr std::size_t kMetricShards = 8;

// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t delta = 1);
  std::uint64_t value() const;
  void reset();

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> value{0};
  };
  std::array<Shard, kMetricShards> shards_;
};

// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

// Fixed-bucket histogram: bucket i counts observations <= bounds[i],
// with one implicit overflow bucket above the last bound.
class Histogram {
 public:
  // `upper_bounds` must be non-empty and strictly ascending.
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double value);

  struct Snapshot {
    std::vector<double> bounds;         // the configured upper bounds
    std::vector<std::uint64_t> counts;  // bounds.size() + 1 buckets
    std::uint64_t count = 0;
    double sum = 0.0;
  };
  Snapshot snapshot() const;
  void reset();

  const std::vector<double>& bounds() const { return bounds_; }

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;
  ~MetricsRegistry();

  // The process-wide registry the library's built-in metrics live in.
  static MetricsRegistry& global();

  // Find-or-create by name. The returned reference is valid for the
  // registry's lifetime. Creating a name twice with different kinds
  // throws std::invalid_argument; histogram bounds are fixed by the
  // first registration.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name,
                       std::vector<double> upper_bounds);

  // All registered names, sorted.
  std::vector<std::string> names() const;

  // {"counters":{...},"gauges":{...},"histograms":{...}} with sorted
  // names and fixed formatting.
  std::string snapshot_json() const;

  // Zeroes every metric's value; registrations (and references) stay.
  void reset();

 private:
  struct Impl;
  Impl* impl() const;
  // Lazily created via an acquire/CAS publish: counter()/gauge()/
  // histogram() may race on a fresh registry, and a plain pointer here
  // was a genuine data race (two threads could both observe nullptr,
  // both allocate, and leak/tear the pointer).
  mutable std::atomic<Impl*> impl_{nullptr};
};

}  // namespace fleda
