#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <stdexcept>
#include <thread>

#include "util/thread_safety.hpp"

namespace fleda {

namespace {

// Stable per-thread shard index: hash the thread id once, cache it.
std::size_t thread_shard() {
  thread_local const std::size_t shard =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) % kMetricShards;
  return shard;
}

void atomic_add_double(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed,
                                       std::memory_order_relaxed)) {
  }
}

// %.6g keeps gauges/sums readable and byte-stable across runs with the
// same inputs (no locale, no trailing-zero drift).
void append_double(std::string& out, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  out += buf;
}

void append_u64(std::string& out, std::uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(value));
  out += buf;
}

}  // namespace

void Counter::add(std::uint64_t delta) {
  shards_[thread_shard()].value.fetch_add(delta, std::memory_order_relaxed);
}

std::uint64_t Counter::value() const {
  std::uint64_t sum = 0;
  for (const Shard& shard : shards_) {
    sum += shard.value.load(std::memory_order_relaxed);
  }
  return sum;
}

void Counter::reset() {
  for (Shard& shard : shards_) {
    shard.value.store(0, std::memory_order_relaxed);
  }
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      buckets_(bounds_.size() + 1) {
  if (bounds_.empty()) {
    throw std::invalid_argument("Histogram requires at least one bound");
  }
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (bounds_[i] <= bounds_[i - 1]) {
      throw std::invalid_argument("Histogram bounds must be ascending");
    }
  }
}

void Histogram::observe(double value) {
  std::size_t bucket = bounds_.size();  // overflow bucket by default
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    if (value <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add_double(sum_, value);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot snap;
  snap.bounds = bounds_;
  snap.counts.reserve(buckets_.size());
  for (const auto& bucket : buckets_) {
    snap.counts.push_back(bucket.load(std::memory_order_relaxed));
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

void Histogram::reset() {
  for (auto& bucket : buckets_) {
    bucket.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

// unique_ptr-valued maps: references returned to callers stay pinned
// while the maps rehash under new registrations. The mutex guards the
// map structure only — the metrics themselves are internally atomic,
// so cached references update them without ever touching the lock.
struct MetricsRegistry::Impl {
  mutable Mutex mutex;
  std::map<std::string, std::unique_ptr<Counter>> counters
      FLEDA_GUARDED_BY(mutex);
  std::map<std::string, std::unique_ptr<Gauge>> gauges
      FLEDA_GUARDED_BY(mutex);
  std::map<std::string, std::unique_ptr<Histogram>> histograms
      FLEDA_GUARDED_BY(mutex);

  bool name_taken_elsewhere(const std::string& name, int kind) const
      FLEDA_REQUIRES(mutex) {
    // kind: 0=counter, 1=gauge, 2=histogram
    return (kind != 0 && counters.count(name) != 0) ||
           (kind != 1 && gauges.count(name) != 0) ||
           (kind != 2 && histograms.count(name) != 0);
  }
};

MetricsRegistry::Impl* MetricsRegistry::impl() const {
  Impl* im = impl_.load(std::memory_order_acquire);
  if (im != nullptr) return im;
  // First use may race: publish with a CAS and discard the loser so
  // every caller agrees on one Impl (fixes the lazy-init data race a
  // plain pointer check had).
  Impl* fresh = new Impl();
  if (impl_.compare_exchange_strong(im, fresh, std::memory_order_acq_rel,
                                    std::memory_order_acquire)) {
    return fresh;
  }
  delete fresh;
  return im;
}

MetricsRegistry::~MetricsRegistry() {
  delete impl_.load(std::memory_order_acquire);
}

MetricsRegistry& MetricsRegistry::global() {
  // Leaked so metrics recorded from detached/exiting threads during
  // static destruction never touch a dead registry.
  static MetricsRegistry* g = new MetricsRegistry();
  return *g;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  Impl& im = *impl();
  MutexLock lock(im.mutex);
  if (im.name_taken_elsewhere(name, 0)) {
    throw std::invalid_argument("metric '" + name +
                                "' already registered with another kind");
  }
  auto& slot = im.counters[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  Impl& im = *impl();
  MutexLock lock(im.mutex);
  if (im.name_taken_elsewhere(name, 1)) {
    throw std::invalid_argument("metric '" + name +
                                "' already registered with another kind");
  }
  auto& slot = im.gauges[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> upper_bounds) {
  Impl& im = *impl();
  MutexLock lock(im.mutex);
  if (im.name_taken_elsewhere(name, 2)) {
    throw std::invalid_argument("metric '" + name +
                                "' already registered with another kind");
  }
  auto& slot = im.histograms[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>(std::move(upper_bounds));
  }
  return *slot;
}

std::vector<std::string> MetricsRegistry::names() const {
  Impl& im = *impl();
  MutexLock lock(im.mutex);
  std::vector<std::string> out;
  out.reserve(im.counters.size() + im.gauges.size() + im.histograms.size());
  for (const auto& [name, _] : im.counters) out.push_back(name);
  for (const auto& [name, _] : im.gauges) out.push_back(name);
  for (const auto& [name, _] : im.histograms) out.push_back(name);
  std::sort(out.begin(), out.end());
  return out;
}

std::string MetricsRegistry::snapshot_json() const {
  Impl& im = *impl();
  MutexLock lock(im.mutex);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : im.counters) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += name;
    out += "\":";
    append_u64(out, counter->value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, gauge] : im.gauges) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += name;
    out += "\":";
    append_double(out, gauge->value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, histogram] : im.histograms) {
    if (!first) out += ',';
    first = false;
    const Histogram::Snapshot snap = histogram->snapshot();
    out += '"';
    out += name;
    out += "\":{\"bounds\":[";
    for (std::size_t i = 0; i < snap.bounds.size(); ++i) {
      if (i != 0) out += ',';
      append_double(out, snap.bounds[i]);
    }
    out += "],\"counts\":[";
    for (std::size_t i = 0; i < snap.counts.size(); ++i) {
      if (i != 0) out += ',';
      append_u64(out, snap.counts[i]);
    }
    out += "],\"count\":";
    append_u64(out, snap.count);
    out += ",\"sum\":";
    append_double(out, snap.sum);
    out += '}';
  }
  out += "}}";
  return out;
}

void MetricsRegistry::reset() {
  Impl& im = *impl();
  MutexLock lock(im.mutex);
  for (auto& [_, counter] : im.counters) counter->reset();
  for (auto& [_, gauge] : im.gauges) gauge->reset();
  for (auto& [_, histogram] : im.histograms) histogram->reset();
}

}  // namespace fleda
