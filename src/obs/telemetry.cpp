#include "obs/telemetry.hpp"

#include <cstdlib>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/profiler.hpp"

namespace fleda {

namespace {

const char* const kGuardTripCounter = "fleda.agg.nonfinite_guard_trips";

}  // namespace

void StalenessHistogram::observe(int staleness) {
  int bucket;
  if (staleness <= 0) {
    bucket = 0;
  } else if (staleness == 1) {
    bucket = 1;
  } else if (staleness == 2) {
    bucket = 2;
  } else if (staleness <= 4) {
    bucket = 3;
  } else if (staleness <= 8) {
    bucket = 4;
  } else {
    bucket = 5;
  }
  counts[static_cast<std::size_t>(bucket)] += 1;
}

std::uint64_t StalenessHistogram::total() const {
  std::uint64_t sum = 0;
  for (std::uint64_t c : counts) sum += c;
  return sum;
}

const char* StalenessHistogram::bucket_label(int bucket) {
  static const char* const kLabels[kBuckets] = {"0", "1", "2",
                                                "3-4", "5-8", "9+"};
  return (bucket >= 0 && bucket < kBuckets) ? kLabels[bucket] : "?";
}

std::string RoundTelemetry::to_json() const {
  char buf[512];
  std::string out;
  std::snprintf(buf, sizeof(buf),
                "{\"round\":%d,\"sim_time_s\":%.6f,\"cohort_size\":%d,"
                "\"attackers_true\":%d,\"attackers_detected\":%d,"
                "\"uplink_bytes\":%llu,"
                "\"downlink_bytes\":%llu,\"staleness\":{",
                round, sim_time_s, cohort_size, attackers_true,
                attackers_detected,
                static_cast<unsigned long long>(uplink_bytes),
                static_cast<unsigned long long>(downlink_bytes));
  out += buf;
  for (int i = 0; i < StalenessHistogram::kBuckets; ++i) {
    std::snprintf(buf, sizeof(buf), "%s\"%s\":%llu", i == 0 ? "" : ",",
                  StalenessHistogram::bucket_label(i),
                  static_cast<unsigned long long>(
                      staleness.counts[static_cast<std::size_t>(i)]));
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "},\"aggregate_ms\":%.3f,\"guard_trips\":%llu}", aggregate_ms,
                static_cast<unsigned long long>(guard_trips));
  out += buf;
  return out;
}

TelemetrySink::TelemetrySink() { capture_baselines(); }

TelemetrySink::TelemetrySink(const std::string& jsonl_path) {
  if (!jsonl_path.empty()) {
    file_ = std::fopen(jsonl_path.c_str(), "a");
    if (file_ == nullptr) {
      throw std::runtime_error("TelemetrySink: cannot open '" + jsonl_path +
                               "' for append");
    }
  }
  capture_baselines();
}

TelemetrySink::~TelemetrySink() {
  if (file_ != nullptr) std::fclose(file_);
}

void TelemetrySink::capture_baselines() {
  aggregate_total_ms_ = Profiler::report().total_seconds(phase::kAggregate) *
                        1e3;
  guard_trips_total_ =
      MetricsRegistry::global().counter(kGuardTripCounter).value();
}

void TelemetrySink::record_cohort(int size, int attackers) {
  open_.cohort_size += size;
  open_.attackers_true += attackers;
}

void TelemetrySink::record_detected(int count) {
  open_.attackers_detected += count;
}

void TelemetrySink::record_staleness(int staleness) {
  open_.staleness.observe(staleness);
}

void TelemetrySink::close_round(int round, double sim_time_s,
                                std::uint64_t uplink_bytes,
                                std::uint64_t downlink_bytes) {
  open_.round = round;
  open_.sim_time_s = sim_time_s;
  open_.uplink_bytes = uplink_bytes;
  open_.downlink_bytes = downlink_bytes;

  // aggregate_ms is 0.0 when FLEDA_PROFILE=0 — documented behavior;
  // the phase total only advances while the profiler records spans.
  const double agg_total =
      Profiler::report().total_seconds(phase::kAggregate) * 1e3;
  open_.aggregate_ms = agg_total > aggregate_total_ms_
                           ? agg_total - aggregate_total_ms_
                           : 0.0;
  aggregate_total_ms_ = agg_total;

  const std::uint64_t trips =
      MetricsRegistry::global().counter(kGuardTripCounter).value();
  open_.guard_trips = trips - guard_trips_total_;
  guard_trips_total_ = trips;

  if (file_ != nullptr) {
    const std::string line = open_.to_json();
    std::fwrite(line.data(), 1, line.size(), file_);
    std::fputc('\n', file_);
    std::fflush(file_);
  }
  rounds_.push_back(open_);
  open_ = RoundTelemetry{};
}

std::string TelemetrySink::env_path() {
  const char* env = std::getenv("FLEDA_TELEMETRY_FILE");
  return env != nullptr ? std::string(env) : std::string();
}

}  // namespace fleda
