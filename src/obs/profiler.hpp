// Scoped profiler: the always-on, low-overhead time breakdown every
// bench and telemetry consumer reads. ProfileScope is a thread-local
// RAII span keyed by a *static* phase-name string (pointer identity on
// the hot path — pass the phase:: constants or another static string,
// never a temporary). Each thread owns a fixed-size slab of phase
// slots, so recording a span is lock-free: one linear-probe lookup in
// thread-local storage plus two steady-clock reads. Slabs register
// themselves once (cold path, mutexed) and Profiler::report() merges
// them into per-phase count / total / min / max / self-time.
//
// Nesting is tracked through a thread-local scope stack: a child span's
// elapsed time is charged to its parent's child-time accumulator, so
// self = total - child is exact (same integer nanoseconds on both
// sides), with no double counting across levels.
//
// Profiling is enabled by default; FLEDA_PROFILE=0 in the environment
// (or Profiler::set_enabled(false)) disables it, at which point
// ProfileScope construction is a single relaxed atomic load — no clock
// reads, no allocation, nothing written.
//
// StopWatch is the one steady-clock wrapper in the codebase; the
// profiler spans and the historical util/timer.hpp Timer (now a thin
// alias) both read it, so bench wall-clock prints and profiler phase
// totals can never disagree about what a second is.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace fleda {

// Monotonic wall-clock wrapper (steady_clock, nanosecond ticks).
class StopWatch {
 public:
  StopWatch() : start_(now_ns()) {}

  void reset() { start_ = now_ns(); }

  double seconds() const {
    return static_cast<double>(now_ns() - start_) * 1e-9;
  }

  double millis() const { return seconds() * 1e3; }

  // Nanoseconds since an arbitrary (per-process) epoch.
  static std::int64_t now_ns() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

 private:
  std::int64_t start_;
};

// Static phase names for the instrumented hot paths. ProfileScope keys
// by pointer, so call sites must use these constants (or their own
// static-storage strings) — two spellings of the same text in
// different translation units merge at report time by name.
namespace phase {
inline constexpr const char* kTrainForward = "train/forward";
inline constexpr const char* kTrainBackward = "train/backward";
inline constexpr const char* kTrainOptimizer = "train/optimizer";
inline constexpr const char* kCodecEncode = "codec/encode";
inline constexpr const char* kCodecDecode = "codec/decode";
inline constexpr const char* kAggregate = "agg/aggregate";
inline constexpr const char* kEventDispatch = "sim/dispatch";
inline constexpr const char* kPoolAcquire = "pool/acquire";
inline constexpr const char* kKernelPlan = "kernel/plan";
inline constexpr const char* kKernelPack = "kernel/pack";
inline constexpr const char* kBenchTotal = "bench/total";
}  // namespace phase

// One merged phase of a ProfileReport.
struct PhaseReport {
  std::string name;
  std::uint64_t count = 0;
  double total_ms = 0.0;
  double self_ms = 0.0;  // total minus time spent in nested scopes
  double min_ms = 0.0;
  double max_ms = 0.0;
};

struct ProfileReport {
  std::vector<PhaseReport> phases;  // sorted by name

  // The phase named `name`, or nullptr when it never ran.
  const PhaseReport* find(std::string_view name) const;
  // Convenience: total seconds of `name` (0.0 when it never ran).
  double total_seconds(std::string_view name) const;

  // {"phases":[{"name":...,"count":...,"total_ms":...,...},...]} with
  // fixed field order and %.3f millisecond formatting — stable enough
  // to embed in the BENCH_*.json trajectory files.
  std::string to_json() const;
};

class Profiler {
 public:
  // Default: enabled unless the environment says FLEDA_PROFILE=0.
  static bool enabled();
  static void set_enabled(bool enabled);

  // Merges every thread's slab into one per-phase report. Safe to call
  // at any time, but the totals are only quiescent-consistent — call it
  // between phases, not while workers are mid-span, for exact numbers.
  static ProfileReport report();

  // Zeroes every slab. Call only while no ProfileScope is live.
  static void reset();
};

// RAII span. `name` MUST point at static-storage characters (the
// phase:: constants); the profiler stores the pointer, not a copy.
class ProfileScope {
 public:
  explicit ProfileScope(const char* name);
  ~ProfileScope();

  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

  // Elapsed seconds since construction; 0.0 while profiling is
  // disabled (no clock was read). Benches that need the number
  // unconditionally keep a StopWatch next to the scope.
  double seconds() const;

 private:
  void* slot_ = nullptr;  // internal PhaseSlot*, null when disabled
  std::int64_t start_ = 0;
  std::int64_t child_ns_ = 0;  // filled by nested scopes as they end
  ProfileScope* parent_ = nullptr;
};

}  // namespace fleda
