// Per-round telemetry: one structured record per federated round,
// accumulated by a TelemetrySink that the round loops feed as the
// round unfolds (cohort composition, staleness of each applied
// update) and close after the Channel bills the round's traffic.
//
// Closing a round also samples two cross-cutting sources: the scoped
// profiler (the "agg/aggregate" phase total, so aggregate_ms is the
// wall time the rule actually spent this round) and the metrics
// registry ("fleda.agg.nonfinite_guard_trips", so guard_trips counts
// rejected non-finite updates this round). Both are deltas against the
// previous close, which makes records self-contained.
//
// The sink is driven from the simulation's coordinator thread (event
// handlers and round loops are single-threaded); it is not itself
// thread-safe. When constructed with a path — or when
// FLEDA_TELEMETRY_FILE names one — every closed round is also appended
// to that file as one JSON object per line.
#pragma once

#include <array>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace fleda {

// Six fixed buckets: staleness 0, 1, 2, 3-4, 5-8, 9+. Sync rounds put
// everything in bucket zero; async buffers spread across the tail.
struct StalenessHistogram {
  static constexpr int kBuckets = 6;
  std::array<std::uint64_t, kBuckets> counts{};

  void observe(int staleness);
  std::uint64_t total() const;
  // "0", "1", "2", "3-4", "5-8", "9+"
  static const char* bucket_label(int bucket);
};

struct RoundTelemetry {
  int round = 0;
  double sim_time_s = 0.0;       // simulated clock at round close
  int cohort_size = 0;           // updates that reached the aggregator
  // Oracle knowledge vs server inference, kept apart so detection
  // precision/recall is measurable from the records alone:
  // attackers_true counts cohort members with a ground-truth attack
  // profile (what the simulator knows), attackers_detected counts the
  // updates the AnomalyDetector flagged (what the server inferred).
  int attackers_true = 0;
  int attackers_detected = 0;
  std::uint64_t uplink_bytes = 0;
  std::uint64_t downlink_bytes = 0;
  StalenessHistogram staleness;
  // Host time spent in AggregationRule::aggregate since the previous
  // close (profiler delta; 0.0 when FLEDA_PROFILE=0). Synchronous
  // loops aggregate *after* the barrier closes the round, so there the
  // timing lands on the following round's record (one-round lag);
  // async closes after aggregating, so it is exact.
  double aggregate_ms = 0.0;
  std::uint64_t guard_trips = 0; // non-finite updates rejected

  // One-line JSON object with fixed field order (JSONL-friendly).
  std::string to_json() const;
};

class TelemetrySink {
 public:
  // In-memory only.
  TelemetrySink();
  // Also appends each closed round to `jsonl_path` as a JSON line.
  explicit TelemetrySink(const std::string& jsonl_path);
  ~TelemetrySink();

  TelemetrySink(const TelemetrySink&) = delete;
  TelemetrySink& operator=(const TelemetrySink&) = delete;

  // Called once per round with the cohort handed to the aggregator;
  // `attackers` is the ground truth (cohort members carrying an attack
  // profile).
  void record_cohort(int size, int attackers);
  // Called by the AnomalyDetector path with the number of updates it
  // flagged this round (the server's inference).
  void record_detected(int count);
  // Called once per applied update with its staleness in versions.
  void record_staleness(int staleness);

  // Finalizes the open record: stores the identifiers and traffic the
  // caller passes, samples aggregate-time and guard-trip deltas, emits
  // the JSON line (if streaming), and starts the next open record.
  void close_round(int round, double sim_time_s, std::uint64_t uplink_bytes,
                   std::uint64_t downlink_bytes);

  const std::vector<RoundTelemetry>& rounds() const { return rounds_; }

  // Value of FLEDA_TELEMETRY_FILE, or "" when unset.
  static std::string env_path();

 private:
  void capture_baselines();

  RoundTelemetry open_;
  std::vector<RoundTelemetry> rounds_;
  std::FILE* file_ = nullptr;
  double aggregate_total_ms_ = 0.0;   // profiler phase total at last close
  std::uint64_t guard_trips_total_ = 0;
};

}  // namespace fleda
