// SimTrace timeline visualizer: renders a SimReport's typed event
// trace as one self-contained HTML page with an inline SVG Gantt —
// one lane per client, colored spans for download / compute / upload,
// gray bands for the client's offline windows, red cross markers for
// dropped in-flight updates, tinted lanes for Byzantine clients, and
// vertical rules at every aggregation and round barrier.
//
// Span reconstruction walks the trace in processing order: a client's
// chain is anchored at its kDispatch note (async) or at the previous
// round barrier (sync, whose schedules carry only the *Done events),
// and each kDownlinkDone / kComputeDone / kUplinkDone closes one span
// from the anchor. The output is byte-stable for a fixed trace: fixed
// float formatting, ordered iteration, no timestamps — the obs tests
// golden-file it.
#pragma once

#include <cstddef>
#include <string>

#include "sim/engine.hpp"
#include "sim/profile.hpp"

namespace fleda {

struct TraceVizOptions {
  std::string title = "fleda SimTrace";
  int width_px = 1400;     // total SVG width, including label margin
  int lane_height_px = 8;  // per-client lane height
  // Hide clients with no trace events, no offline windows, and no
  // attack profile (a K=1000 sampled-cohort run touches only dozens of
  // clients per round); the header reports how many were hidden.
  bool collapse_idle = true;
};

// Renders `report.trace` (which may be empty) against the scenario's
// client profiles. `num_clients` bounds the lane set; profiles beyond
// `config.profiles` are the default honest/online profile.
std::string render_trace_html(const SimReport& report, const SimConfig& config,
                              std::size_t num_clients,
                              const TraceVizOptions& opts = {});

}  // namespace fleda
