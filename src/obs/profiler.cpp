#include "obs/profiler.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <map>
#include <memory>

#include "util/thread_safety.hpp"

namespace fleda {
namespace {

// One phase's accumulator inside a thread slab. Written by exactly one
// thread; report() reads cross-thread (quiescent-consistent by
// contract, see the header).
struct PhaseSlot {
  const char* name = nullptr;  // static-storage phase name, the key
  std::uint64_t count = 0;
  std::int64_t total_ns = 0;
  std::int64_t child_ns = 0;
  std::int64_t min_ns = std::numeric_limits<std::int64_t>::max();
  std::int64_t max_ns = 0;
};

// Fixed-capacity open-addressing table keyed by pointer identity. 64
// slots is an order of magnitude above the instrumented phase count;
// a full table drops further (new-phase) spans rather than allocating.
struct ThreadSlab {
  static constexpr std::size_t kCapacity = 64;
  PhaseSlot slots[kCapacity];

  PhaseSlot* find_or_insert(const char* name) {
    std::size_t i =
        (reinterpret_cast<std::uintptr_t>(name) >> 3) % kCapacity;
    for (std::size_t probe = 0; probe < kCapacity; ++probe) {
      PhaseSlot& slot = slots[i];
      if (slot.name == name) return &slot;
      if (slot.name == nullptr) {
        slot.name = name;
        return &slot;
      }
      i = (i + 1) % kCapacity;
    }
    return nullptr;  // table full: drop the span
  }
};

struct SlabRegistry {
  Mutex mutex;
  // shared_ptr keeps slabs alive past thread exit so report() still
  // sees the work finished threads recorded. The mutex guards the
  // vector of slab pointers only; slab *contents* are written lock-free
  // by their owning thread and read quiescent-consistently by report()
  // (see the header contract).
  std::vector<std::shared_ptr<ThreadSlab>> slabs FLEDA_GUARDED_BY(mutex);
};

SlabRegistry& registry() {
  static SlabRegistry* r = new SlabRegistry();
  return *r;
}

ThreadSlab& thread_slab() {
  thread_local std::shared_ptr<ThreadSlab> slab = [] {
    auto s = std::make_shared<ThreadSlab>();
    SlabRegistry& r = registry();
    MutexLock lock(r.mutex);
    r.slabs.push_back(s);
    return s;
  }();
  return *slab;
}

bool initial_enabled() {
  const char* env = std::getenv("FLEDA_PROFILE");
  return env == nullptr || std::strcmp(env, "0") != 0;
}

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag{initial_enabled()};
  return flag;
}

// The innermost live scope on this thread, for self-time accounting.
thread_local ProfileScope* t_current_scope = nullptr;

double to_ms(std::int64_t ns) { return static_cast<double>(ns) * 1e-6; }

}  // namespace

bool Profiler::enabled() {
  return enabled_flag().load(std::memory_order_relaxed);
}

void Profiler::set_enabled(bool enabled) {
  enabled_flag().store(enabled, std::memory_order_relaxed);
}

ProfileReport Profiler::report() {
  struct Merged {
    std::uint64_t count = 0;
    std::int64_t total_ns = 0;
    std::int64_t child_ns = 0;
    std::int64_t min_ns = std::numeric_limits<std::int64_t>::max();
    std::int64_t max_ns = 0;
  };
  std::map<std::string, Merged> merged;  // sorted output for free
  SlabRegistry& r = registry();
  {
    MutexLock lock(r.mutex);
    for (const auto& slab : r.slabs) {
      for (const PhaseSlot& slot : slab->slots) {
        if (slot.name == nullptr || slot.count == 0) continue;
        Merged& m = merged[slot.name];
        m.count += slot.count;
        m.total_ns += slot.total_ns;
        m.child_ns += slot.child_ns;
        m.min_ns = std::min(m.min_ns, slot.min_ns);
        m.max_ns = std::max(m.max_ns, slot.max_ns);
      }
    }
  }
  ProfileReport report;
  report.phases.reserve(merged.size());
  for (const auto& [name, m] : merged) {
    PhaseReport p;
    p.name = name;
    p.count = m.count;
    p.total_ms = to_ms(m.total_ns);
    p.self_ms = to_ms(std::max<std::int64_t>(0, m.total_ns - m.child_ns));
    p.min_ms = to_ms(m.min_ns);
    p.max_ms = to_ms(m.max_ns);
    report.phases.push_back(std::move(p));
  }
  return report;
}

void Profiler::reset() {
  SlabRegistry& r = registry();
  MutexLock lock(r.mutex);
  for (const auto& slab : r.slabs) {
    for (PhaseSlot& slot : slab->slots) {
      if (slot.name == nullptr) continue;
      slot.count = 0;
      slot.total_ns = 0;
      slot.child_ns = 0;
      slot.min_ns = std::numeric_limits<std::int64_t>::max();
      slot.max_ns = 0;
    }
  }
}

ProfileScope::ProfileScope(const char* name) {
  if (!Profiler::enabled()) return;  // disabled: no clock, no slab
  slot_ = thread_slab().find_or_insert(name);
  if (slot_ == nullptr) return;
  parent_ = t_current_scope;
  t_current_scope = this;
  start_ = StopWatch::now_ns();
}

ProfileScope::~ProfileScope() {
  if (slot_ == nullptr) return;
  const std::int64_t elapsed = StopWatch::now_ns() - start_;
  PhaseSlot& slot = *static_cast<PhaseSlot*>(slot_);
  slot.count += 1;
  slot.total_ns += elapsed;
  slot.child_ns += child_ns_;
  slot.min_ns = std::min(slot.min_ns, elapsed);
  slot.max_ns = std::max(slot.max_ns, elapsed);
  if (parent_ != nullptr) parent_->child_ns_ += elapsed;
  t_current_scope = parent_;
}

double ProfileScope::seconds() const {
  if (slot_ == nullptr) return 0.0;
  return static_cast<double>(StopWatch::now_ns() - start_) * 1e-9;
}

const PhaseReport* ProfileReport::find(std::string_view name) const {
  for (const PhaseReport& p : phases) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

double ProfileReport::total_seconds(std::string_view name) const {
  const PhaseReport* p = find(name);
  return p != nullptr ? p->total_ms * 1e-3 : 0.0;
}

std::string ProfileReport::to_json() const {
  std::string out = "{\"phases\":[";
  char buf[256];
  for (std::size_t i = 0; i < phases.size(); ++i) {
    const PhaseReport& p = phases[i];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"name\":\"%s\",\"count\":%llu,\"total_ms\":%.3f,"
                  "\"self_ms\":%.3f,\"min_ms\":%.3f,\"max_ms\":%.3f}",
                  i == 0 ? "" : ",", p.name.c_str(),
                  static_cast<unsigned long long>(p.count), p.total_ms,
                  p.self_ms, p.min_ms, p.max_ms);
    out += buf;
  }
  out += "]}";
  return out;
}

}  // namespace fleda
