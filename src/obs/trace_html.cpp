#include "obs/trace_html.hpp"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <vector>

namespace fleda {

namespace {

struct Span {
  double begin = 0.0;
  double end = 0.0;
  const char* cls = nullptr;  // "down" / "compute" / "up" / "lost"
  int round = -1;
};

struct Marker {  // a dropped in-flight update
  double time = 0.0;
  int round = -1;
};

struct Lane {
  int client = -1;
  bool attacker = false;
  std::vector<Span> spans;
  std::vector<Marker> drops;
};

struct Rule {  // server-side vertical line
  double time = 0.0;
  SimEventKind kind = SimEventKind::kAggregate;
  int round = -1;
};

void appendf(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out += buf;
}

std::string escape_html(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

const char* kStyle =
    "body{font:13px/1.45 system-ui,sans-serif;margin:16px;color:#263238}"
    "h1{font-size:17px;margin:0 0 4px}"
    ".meta{color:#607d8b;margin:0 0 10px}"
    ".legend{margin:0 0 10px}"
    ".legend span{display:inline-block;margin-right:14px}"
    ".legend i{display:inline-block;width:12px;height:9px;margin-right:4px;"
    "border-radius:1px}"
    ".wrap{overflow:auto;border:1px solid #cfd8dc;max-height:82vh}"
    "svg{display:block}"
    ".down{fill:#64b5f6}.compute{fill:#81c784}.up{fill:#ffb74d}"
    ".lost{fill:#ef9a9a}"
    ".offline{fill:#b0bec5;fill-opacity:.55}"
    ".attacker-bg{fill:#c62828;fill-opacity:.10}"
    ".lane-bg{fill:#eceff1}"
    ".drop{stroke:#c62828;stroke-width:1.6}"
    ".agg{stroke:#7b1fa2;stroke-width:1}"
    ".round{stroke:#90a4ae;stroke-width:1;stroke-dasharray:3 3}"
    ".axis{stroke:#90a4ae;stroke-width:1}"
    ".tick{fill:#607d8b;font-size:10px}"
    ".lane-label{fill:#455a64;font-size:9px}"
    ".lane-label.attacker{fill:#c62828;font-weight:600}";

}  // namespace

std::string render_trace_html(const SimReport& report, const SimConfig& config,
                              std::size_t num_clients,
                              const TraceVizOptions& opts) {
  // --- reconstruct per-client spans from the trace -----------------
  struct ClientState {
    double anchor = 0.0;
    bool has_chain = false;
    bool seen = false;
  };
  const double t0 = report.trace_start_s;
  std::vector<ClientState> state(num_clients);
  std::vector<Lane> lanes(num_clients);
  for (std::size_t k = 0; k < num_clients; ++k) {
    lanes[k].client = static_cast<int>(k);
    lanes[k].attacker = config.profile(k).attack.kind != AttackKind::kNone;
    state[k].anchor = t0;
  }
  std::vector<Rule> rules;
  double last_barrier = t0;
  double t_max = report.total_time_s;
  for (const SimTraceEntry& e : report.trace) {
    t_max = std::max(t_max, e.time);
    if (e.client < 0) {
      rules.push_back({e.time, e.kind, e.round});
      if (e.kind == SimEventKind::kRoundEnd ||
          e.kind == SimEventKind::kAggregate) {
        last_barrier = e.time;
      }
      continue;
    }
    const auto k = static_cast<std::size_t>(e.client);
    if (k >= num_clients) continue;
    ClientState& cs = state[k];
    Lane& lane = lanes[k];
    lane.spans.reserve(8);
    cs.seen = true;
    switch (e.kind) {
      case SimEventKind::kDispatch:
        cs.anchor = e.time;
        cs.has_chain = true;
        break;
      case SimEventKind::kDownlinkDone:
        if (!cs.has_chain) cs.anchor = std::min(last_barrier, e.time);
        lane.spans.push_back({cs.anchor, e.time, "down", e.round});
        cs.anchor = e.time;
        cs.has_chain = true;
        break;
      case SimEventKind::kComputeDone:
        if (!cs.has_chain) cs.anchor = std::min(last_barrier, e.time);
        lane.spans.push_back({cs.anchor, e.time, "compute", e.round});
        cs.anchor = e.time;
        cs.has_chain = true;
        break;
      case SimEventKind::kUplinkDone:
        if (!cs.has_chain) cs.anchor = std::min(last_barrier, e.time);
        lane.spans.push_back({cs.anchor, e.time, "up", e.round});
        cs.anchor = e.time;
        cs.has_chain = false;
        break;
      case SimEventKind::kDropped:
        if (cs.has_chain && e.time > cs.anchor) {
          lane.spans.push_back({cs.anchor, e.time, "lost", e.round});
        }
        lane.drops.push_back({e.time, e.round});
        cs.anchor = e.time;
        cs.has_chain = false;
        break;
      default:
        cs.anchor = e.time;
        break;
    }
  }

  // --- choose the visible lanes ------------------------------------
  std::vector<const Lane*> visible;
  std::size_t hidden = 0;
  for (std::size_t k = 0; k < num_clients; ++k) {
    const Lane& lane = lanes[k];
    const bool has_offline = !config.profile(k).offline.empty();
    const bool idle = lane.spans.empty() && lane.drops.empty() &&
                      !lane.attacker && !has_offline;
    if (opts.collapse_idle && idle) {
      ++hidden;
      continue;
    }
    visible.push_back(&lane);
  }

  // --- geometry ----------------------------------------------------
  const double margin_left = 56.0;
  const double margin_right = 12.0;
  const double margin_top = 8.0;
  const double axis_height = 22.0;
  const double lane_h = static_cast<double>(std::max(3, opts.lane_height_px));
  const double lane_gap = lane_h >= 6.0 ? 1.0 : 0.0;
  const double plot_w =
      std::max(100.0, static_cast<double>(opts.width_px) - margin_left -
                          margin_right);
  if (t_max <= t0) t_max = t0 + 1.0;
  const double span_s = t_max - t0;
  auto x = [&](double t) {
    double clamped = std::min(std::max(t, t0), t_max);
    return margin_left + (clamped - t0) / span_s * plot_w;
  };
  const double plot_h =
      static_cast<double>(visible.size()) * (lane_h + lane_gap);
  const double svg_w = margin_left + plot_w + margin_right;
  const double svg_h = margin_top + plot_h + axis_height;
  // Label only as many lanes as stay readable; attackers always get one.
  const std::size_t label_stride =
      visible.size() <= 40 ? 1 : (visible.size() + 39) / 40;

  // --- emit --------------------------------------------------------
  std::string out;
  out.reserve(1 << 16);
  out += "<!DOCTYPE html>\n<html>\n<head>\n<meta charset=\"utf-8\">\n<title>";
  out += escape_html(opts.title);
  out += "</title>\n<style>";
  out += kStyle;
  out += "</style>\n</head>\n<body>\n<h1>";
  out += escape_html(opts.title);
  out += "</h1>\n<p class=\"meta\">";
  appendf(out,
          "%zu clients (%zu shown, %zu idle hidden) &middot; %zu trace "
          "events &middot; %llu events processed &middot; sim time %.6g s",
          num_clients, visible.size(), hidden, report.trace.size(),
          static_cast<unsigned long long>(report.events_processed),
          report.total_time_s);
  if (report.trace_start_s > 0.0) {
    appendf(out,
            " &middot; <b>tracing enabled at t=%.6g s — earlier events were "
            "not recorded</b>",
            report.trace_start_s);
  }
  out += "</p>\n<p class=\"legend\">"
         "<span><i class=\"down\"></i>download</span>"
         "<span><i class=\"compute\"></i>compute</span>"
         "<span><i class=\"up\"></i>upload</span>"
         "<span><i class=\"lost\"></i>lost in-flight (&#x2715; = dropped)</span>"
         "<span><i class=\"offline\"></i>offline window</span>"
         "<span><i class=\"attacker-bg\"></i>Byzantine client</span>"
         "<span><i style=\"background:#7b1fa2\"></i>aggregate</span>"
         "<span><i style=\"background:#90a4ae\"></i>round barrier</span>"
         "</p>\n<div class=\"wrap\">\n";
  appendf(out,
          "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%.0f\" "
          "height=\"%.0f\" viewBox=\"0 0 %.0f %.0f\">\n",
          svg_w, svg_h, svg_w, svg_h);

  // Lane backgrounds, offline bands, spans, drop markers.
  for (std::size_t i = 0; i < visible.size(); ++i) {
    const Lane& lane = *visible[i];
    const double y = margin_top + static_cast<double>(i) * (lane_h + lane_gap);
    appendf(out,
            "<rect class=\"%s\" x=\"%.2f\" y=\"%.2f\" width=\"%.2f\" "
            "height=\"%.2f\"/>\n",
            lane.attacker ? "attacker-bg" : "lane-bg", margin_left, y, plot_w,
            lane_h);
    const ClientProfile& profile =
        config.profile(static_cast<std::size_t>(lane.client));
    for (const OfflineWindow& w : profile.offline) {
      if (w.end <= t0 || w.begin >= t_max) continue;
      const double x0 = x(w.begin);
      const double x1 = x(w.end);
      appendf(out,
              "<rect class=\"offline\" x=\"%.2f\" y=\"%.2f\" width=\"%.2f\" "
              "height=\"%.2f\"><title>client %d offline [%.6g, %.6g)"
              "</title></rect>\n",
              x0, y, std::max(0.5, x1 - x0), lane_h, lane.client, w.begin,
              w.end);
    }
    for (const Span& s : lane.spans) {
      const double x0 = x(s.begin);
      const double x1 = x(s.end);
      appendf(out,
              "<rect class=\"%s\" x=\"%.2f\" y=\"%.2f\" width=\"%.2f\" "
              "height=\"%.2f\"><title>client %d %s [%.6g, %.6g] round %d"
              "</title></rect>\n",
              s.cls, x0, y + 0.5, std::max(0.5, x1 - x0), lane_h - 1.0,
              lane.client, s.cls, s.begin, s.end, s.round);
    }
    for (const Marker& m : lane.drops) {
      const double cx = x(m.time);
      const double cy = y + lane_h * 0.5;
      const double r = std::min(4.0, lane_h * 0.5);
      appendf(out,
              "<g class=\"dropg\"><line class=\"drop\" x1=\"%.2f\" "
              "y1=\"%.2f\" x2=\"%.2f\" y2=\"%.2f\"/><line class=\"drop\" "
              "x1=\"%.2f\" y1=\"%.2f\" x2=\"%.2f\" y2=\"%.2f\"/>"
              "<title>client %d update dropped at t=%.6g (round %d)</title>"
              "</g>\n",
              cx - r, cy - r, cx + r, cy + r, cx - r, cy + r, cx + r, cy - r,
              lane.client, m.time, m.round);
    }
    if (i % label_stride == 0 || lane.attacker) {
      appendf(out,
              "<text class=\"lane-label%s\" x=\"%.2f\" y=\"%.2f\" "
              "text-anchor=\"end\">%d%s</text>\n",
              lane.attacker ? " attacker" : "", margin_left - 4.0,
              y + lane_h * 0.5 + 3.0, lane.client, lane.attacker ? "!" : "");
    }
  }

  // Server-side rules: aggregations (solid) and round barriers (dashed).
  for (const Rule& rule : rules) {
    const bool agg = rule.kind == SimEventKind::kAggregate;
    const double rx = x(rule.time);
    appendf(out,
            "<line class=\"%s\" x1=\"%.2f\" y1=\"%.2f\" x2=\"%.2f\" "
            "y2=\"%.2f\"><title>%s %d at t=%.6g</title></line>\n",
            agg ? "agg" : "round", rx, margin_top, rx, margin_top + plot_h,
            agg ? "aggregate" : "round end", rule.round, rule.time);
  }

  // Time axis.
  const double axis_y = margin_top + plot_h + 4.0;
  appendf(out,
          "<line class=\"axis\" x1=\"%.2f\" y1=\"%.2f\" x2=\"%.2f\" "
          "y2=\"%.2f\"/>\n",
          margin_left, axis_y, margin_left + plot_w, axis_y);
  const int num_ticks = 10;
  for (int i = 0; i <= num_ticks; ++i) {
    const double t = t0 + span_s * static_cast<double>(i) / num_ticks;
    const double tx = x(t);
    appendf(out,
            "<line class=\"axis\" x1=\"%.2f\" y1=\"%.2f\" x2=\"%.2f\" "
            "y2=\"%.2f\"/>\n",
            tx, axis_y, tx, axis_y + 3.0);
    appendf(out,
            "<text class=\"tick\" x=\"%.2f\" y=\"%.2f\" "
            "text-anchor=\"middle\">%.4g</text>\n",
            tx, axis_y + 13.0, t);
  }

  out += "</svg>\n</div>\n</body>\n</html>\n";
  return out;
}

}  // namespace fleda
