#include "core/paper_tables.hpp"

#include <stdexcept>

namespace fleda {

AsciiTable render_table2(const std::vector<ClientSpec>& specs,
                         const std::vector<ClientDataset>& realized) {
  AsciiTable table("Table 2: Experiment Data Setup for Each Client");
  table.set_header({"Clients", "Training Designs (Placements)",
                    "Testing Designs (Placements)", "Suite",
                    "Realized Train", "Realized Test"});
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const ClientSpec& s = specs[i];
    std::string realized_train = "-", realized_test = "-";
    if (i < realized.size()) {
      realized_train = std::to_string(realized[i].num_train());
      realized_test = std::to_string(realized[i].num_test());
    }
    table.add_row({"Client " + std::to_string(s.id),
                   std::to_string(s.train_designs) + " designs (" +
                       std::to_string(s.train_placements) + ")",
                   std::to_string(s.test_designs) + " designs (" +
                       std::to_string(s.test_placements) + ")",
                   to_string(s.suite), realized_train, realized_test});
  }
  return table;
}

AsciiTable render_accuracy_table(const std::string& title,
                                 const std::vector<MethodResult>& rows) {
  if (rows.empty()) throw std::invalid_argument("render_accuracy_table: empty");
  const std::size_t K = rows[0].client_auc.size();
  AsciiTable table(title);
  std::vector<std::string> header = {"Method"};
  for (std::size_t k = 1; k <= K; ++k) {
    header.push_back("Client " + std::to_string(k));
  }
  header.push_back("Average");
  table.set_header(std::move(header));
  for (const MethodResult& row : rows) {
    std::vector<std::string> cells = {row.method};
    for (double auc : row.client_auc) cells.push_back(AsciiTable::fmt(auc));
    cells.push_back(AsciiTable::fmt(row.average));
    table.add_row(std::move(cells));
  }
  return table;
}

AsciiTable render_headline_summary(const std::vector<MethodResult>& rows) {
  auto find = [&](const std::string& needle) -> const MethodResult* {
    for (const MethodResult& r : rows) {
      if (r.method.find(needle) != std::string::npos) return &r;
    }
    return nullptr;
  };
  const MethodResult* local = find("Local Average");
  const MethodResult* central = find("Centrally");
  const MethodResult* fedprox = find("FedProx");
  const MethodResult* finetune = find("Fine-tuning");

  AsciiTable table("Headline claims (paper S5.2)");
  table.set_header({"Claim", "Paper", "Measured"});
  if (local != nullptr && fedprox != nullptr) {
    table.add_row({"FedProx - Local (absolute AUC)", "+0.06",
                   AsciiTable::fmt(fedprox->average - local->average, 3)});
  }
  if (local != nullptr && finetune != nullptr) {
    table.add_row({"Fine-tuning - Local (absolute AUC)", "+0.08",
                   AsciiTable::fmt(finetune->average - local->average, 3)});
    const double rel =
        local->average > 0.0
            ? (finetune->average - local->average) / local->average * 100.0
            : 0.0;
    table.add_row({"Fine-tuning vs Local (relative)", "+11%",
                   AsciiTable::fmt(rel, 1) + "%"});
  }
  if (central != nullptr && finetune != nullptr) {
    table.add_row({"Central - Fine-tuning (gap to upper limit)", "~0.01",
                   AsciiTable::fmt(central->average - finetune->average, 3)});
  }
  return table;
}

AsciiTable render_comm_table(const std::vector<MethodResult>& rows) {
  AsciiTable table(
      "Communication accounting (parameter-exchange channel + sim clock)");
  table.set_header({"Method", "Part.", "Up MB", "Down MB", "Msgs", "Up comp.",
                    "Down comp.", "Rounds s", "Sim clock s"});
  for (const MethodResult& row : rows) {
    const ChannelStats& c = row.comm;
    if (c.uplink_messages == 0 && c.downlink_messages == 0) continue;
    table.add_row({row.method,
                   row.participation.empty() ? "-" : row.participation,
                   AsciiTable::fmt(c.uplink_mb()),
                   AsciiTable::fmt(c.downlink_mb()),
                   std::to_string(c.uplink_messages + c.downlink_messages),
                   AsciiTable::fmt(c.uplink_compression()) + "x",
                   AsciiTable::fmt(c.downlink_compression()) + "x",
                   AsciiTable::fmt(c.simulated_latency_s, 1),
                   AsciiTable::fmt(row.sim_time_s, 1)});
  }
  return table;
}

}  // namespace fleda
