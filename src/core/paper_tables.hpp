// Rendering of experiment results in the paper's table layout
// (Tables 2-5), used by the bench harness.
#pragma once

#include <string>
#include <vector>

#include "core/evaluation.hpp"
#include "data/generator.hpp"
#include "util/table.hpp"

namespace fleda {

// Table 2: the experiment data setup (design/placement counts). Pass
// the realized datasets to report both paper-scale and realized counts.
AsciiTable render_table2(const std::vector<ClientSpec>& specs,
                         const std::vector<ClientDataset>& realized);

// Tables 3-5 layout: method rows x (client 1..K, Average) columns.
AsciiTable render_accuracy_table(const std::string& title,
                                 const std::vector<MethodResult>& rows);

// Headline-claims summary (paper abstract / §5.2 numbers): FL vs local
// gain, fine-tuning vs local gain (the "11%" figure), gap to central.
AsciiTable render_headline_summary(const std::vector<MethodResult>& rows);

// Communication accounting per method: cumulative uplink/downlink MB,
// message counts, compression ratio vs fp32, and simulated transfer
// latency. Non-federated baselines (all-zero stats) are skipped.
AsciiTable render_comm_table(const std::vector<MethodResult>& rows);

}  // namespace fleda
