#include "core/evaluation.hpp"

#include <stdexcept>

#include "util/thread_pool.hpp"

namespace fleda {
namespace {

double average(const std::vector<double>& v) {
  double s = 0.0;
  for (double x : v) s += x;
  return v.empty() ? 0.0 : s / static_cast<double>(v.size());
}

}  // namespace

MethodResult evaluate_per_client(const std::string& method,
                                 std::vector<Client>& clients,
                                 const std::vector<ModelParameters>& finals) {
  if (clients.size() != finals.size()) {
    throw std::invalid_argument("evaluate_per_client: size mismatch");
  }
  MethodResult result;
  result.method = method;
  result.client_auc.resize(clients.size());
  parallel_for(clients.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t k = begin; k < end; ++k) {
      result.client_auc[k] = clients[k].evaluate_test_auc(finals[k]);
    }
  });
  result.average = average(result.client_auc);
  return result;
}

MethodResult evaluate_shared(const std::string& method,
                             std::vector<Client>& clients,
                             const ModelParameters& model) {
  return evaluate_per_client(
      method, clients,
      std::vector<ModelParameters>(clients.size(), model));
}

}  // namespace fleda
