#include "core/experiment.hpp"

#include <stdexcept>

#include "data/serialization.hpp"
#include "fl/baselines.hpp"
#include "obs/telemetry.hpp"
#include "phys/features.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

namespace fleda {

std::string to_string(TrainingMethod method) {
  return display_name(registry_name(method));
}

std::string registry_name(TrainingMethod method) {
  switch (method) {
    case TrainingMethod::kLocal:
      return "local";
    case TrainingMethod::kCentral:
      return "central";
    case TrainingMethod::kFedAvg:
      return "fedavg";
    case TrainingMethod::kFedProx:
      return "fedprox";
    case TrainingMethod::kFedProxLG:
      return "fedprox_lg";
    case TrainingMethod::kIFCA:
      return "ifca";
    case TrainingMethod::kFedProxFineTune:
      return "fedprox_finetune";
    case TrainingMethod::kAssignedClustering:
      return "assigned_clustering";
    case TrainingMethod::kAlphaPortionSync:
      return "alpha_sync";
    case TrainingMethod::kAsyncFedAvg:
      return "async_fedavg";
  }
  return "?";
}

std::string display_name(std::string_view name) {
  // The paper's table labels for the built-in methods; anything
  // registered downstream is shown under its registry name.
  if (name == "local") return "Local Average (b1 to b9)";
  if (name == "central") return "Training Centrally on All Data";
  if (name == "fedavg") return "FedAvg";
  if (name == "fedprox") return "FedProx";
  if (name == "fedprox_lg") return "FedProx-LG";
  if (name == "ifca") return "IFCA";
  if (name == "fedprox_finetune") return "FedProx + Fine-tuning";
  if (name == "assigned_clustering") return "Assigned Clustering";
  if (name == "alpha_sync") return "FedProx + a-Portion Sync";
  if (name == "async_fedavg") return "AsyncFedAvg";
  return std::string(name);
}

std::vector<TrainingMethod> paper_table_methods() {
  return {
      TrainingMethod::kLocal,
      TrainingMethod::kCentral,
      TrainingMethod::kFedProx,
      TrainingMethod::kFedProxLG,
      TrainingMethod::kIFCA,
      TrainingMethod::kFedProxFineTune,
      TrainingMethod::kAssignedClustering,
      TrainingMethod::kAlphaPortionSync,
  };
}

Experiment::Experiment(const ExperimentConfig& config)
    : config_(config),
      factory_(make_model_factory(config.model, kNumFeatureChannels)),
      pool_(std::make_shared<ModelPool>(factory_)) {}

void Experiment::prepare_data() {
  if (!data_.empty()) return;
  const std::string cache =
      config_.cache_dir.empty()
          ? ""
          : config_.cache_dir + "/grid" + std::to_string(config_.scale.grid) +
                "_frac" +
                std::to_string(static_cast<int>(
                    config_.scale.placement_fraction * 1000)) +
                "_seed" + std::to_string(config_.data_seed);
  if (!cache.empty()) {
    data_ = try_load_all_clients(cache, config_.hparams.num_clients);
    if (!data_.empty()) {
      FLEDA_LOG_INFO("loaded cached dataset from %s", cache.c_str());
      return;
    }
  }

  Timer timer;
  DatasetGenOptions gen;
  gen.grid = config_.scale.grid;
  gen.placement_fraction = config_.scale.placement_fraction;
  gen.seed = config_.data_seed;
  data_ = generate_paper_dataset(gen);
  FLEDA_LOG_INFO("generated dataset (%d clients) in %.1fs",
                 static_cast<int>(data_.size()), timer.seconds());
  if (!cache.empty()) {
    save_all_clients(cache, data_);
    FLEDA_LOG_INFO("cached dataset at %s", cache.c_str());
  }
}

std::vector<Client> Experiment::make_clients() {
  if (data_.empty()) {
    throw std::logic_error("Experiment: call prepare_data() first");
  }
  Rng rng(config_.train_seed);
  std::vector<Client> clients;
  clients.reserve(data_.size());
  for (const ClientDataset& ds : data_) {
    clients.emplace_back(ds.client_id, &ds, pool_,
                         rng.fork(static_cast<std::uint64_t>(ds.client_id)));
  }
  return clients;
}

ClientTrainConfig Experiment::make_client_config() const {
  ClientTrainConfig cfg;
  cfg.steps = config_.scale.steps_per_round;
  cfg.batch_size = config_.scale.batch_size;
  cfg.learning_rate = config_.hparams.learning_rate;
  cfg.l2_regularization = config_.hparams.l2_regularization;
  cfg.mu = config_.hparams.fedprox_mu;
  cfg.reset_optimizer = config_.reset_optimizer;
  return cfg;
}

FLRunOptions Experiment::make_run_options() const {
  FLRunOptions opts;
  opts.rounds = config_.scale.rounds;
  opts.client = make_client_config();
  opts.seed = config_.train_seed;
  opts.comm = config_.comm;
  opts.sim = config_.sim;
  opts.participation = config_.participation;
  opts.aggregation = config_.aggregation;
  opts.anomaly = config_.anomaly;
  return opts;
}

AlgorithmOptions Experiment::make_algorithm_options() const {
  AlgorithmOptions options;
  options.num_clusters = config_.hparams.num_clusters;
  options.finetune_steps = config_.scale.finetune_steps;
  options.alpha_portion = config_.hparams.alpha_portion;
  options.async = config_.async;
  return options;
}

std::unique_ptr<FederatedAlgorithm> Experiment::make_algorithm(
    std::string_view name) const {
  return AlgorithmRegistry::global().create(name, make_algorithm_options());
}

MethodResult Experiment::run_method(TrainingMethod method) {
  return run_method(registry_name(method));
}

MethodResult Experiment::run_method(std::string_view name) {
  std::vector<Client> clients = make_clients();
  Timer timer;
  MethodResult result;
  const std::string label = display_name(name);

  if (name == "local") {
    BaselineOptions bopts;
    bopts.total_steps = config_.scale.rounds * config_.scale.steps_per_round;
    bopts.client = make_client_config();
    bopts.seed = config_.train_seed;
    std::vector<ModelParameters> locals =
        train_local_baselines(clients, factory_, bopts);
    result = evaluate_per_client(label, clients, locals);
  } else if (name == "central") {
    BaselineOptions bopts;
    // Equal-compute upper bound: federated training performs R*S steps
    // on each of the K clients, so the centralized reference gets the
    // same total number of gradient steps over the pooled data.
    bopts.total_steps = config_.scale.rounds * config_.scale.steps_per_round *
                        config_.hparams.num_clients;
    bopts.client = make_client_config();
    bopts.seed = config_.train_seed;
    ModelParameters central = train_centralized(data_, factory_, bopts);
    result = evaluate_shared(label, clients, central);
  } else {
    std::unique_ptr<FederatedAlgorithm> algo = make_algorithm(name);
    ChannelStats comm;
    SimReport sim;
    // Streams to FLEDA_TELEMETRY_FILE when set; always collects the
    // per-round records into the result row.
    TelemetrySink telemetry(TelemetrySink::env_path());
    FLRunOptions opts = make_run_options();
    opts.comm_stats = &comm;
    opts.sim_report = &sim;
    opts.telemetry = &telemetry;
    std::vector<ModelParameters> finals = algo->run(clients, factory_, opts);
    result = evaluate_per_client(label, clients, finals);
    result.comm = std::move(comm);
    result.sim_time_s = sim.total_time_s;
    result.sim_events = sim.events_processed;
    result.round_telemetry = telemetry.rounds();
    // Event-driven methods ignore the sync participation policy; do
    // not claim sampling was applied to them.
    result.participation = algo->uses_participation()
                               ? to_string(config_.participation.kind)
                               : "event-driven";
  }

  FLEDA_LOG_INFO(
      "%s [%s]: avg AUC %.3f (%.1fs; comm up %.2f MB / down %.2f MB, "
      "sim clock %.1fs)",
      label.c_str(), to_string(config_.model).c_str(), result.average,
      timer.seconds(), result.comm.uplink_mb(), result.comm.downlink_mb(),
      result.sim_time_s);
  return result;
}

std::vector<MethodResult> Experiment::run_paper_table() {
  std::vector<MethodResult> rows;
  for (TrainingMethod method : paper_table_methods()) {
    rows.push_back(run_method(method));
  }
  return rows;
}

std::vector<Experiment::ConvergencePoint> Experiment::run_convergence(
    TrainingMethod method) {
  return run_convergence(registry_name(method));
}

std::vector<Experiment::ConvergencePoint> Experiment::run_convergence(
    std::string_view name) {
  std::vector<Client> clients = make_clients();
  std::vector<ConvergencePoint> series;

  if (name == "local" || name == "central") {
    throw std::invalid_argument("run_convergence: federated methods only");
  }
  std::unique_ptr<FederatedAlgorithm> algo = make_algorithm(name);
  ChannelStats comm;
  FLRunOptions opts = make_run_options();
  opts.comm_stats = &comm;
  opts.on_round = [&](int round, const std::vector<ModelParameters>& models) {
    MethodResult r = evaluate_per_client("round", clients, models);
    series.push_back({round, r.average, 0.0});
  };
  algo->run(clients, factory_, opts);
  // Channel round i closes when round i's exchange completes; its
  // cumulative latency is the simulated wall-clock at that point.
  double elapsed = 0.0;
  for (std::size_t i = 0; i < series.size(); ++i) {
    if (i < comm.rounds.size()) elapsed += comm.rounds[i].simulated_latency_s;
    series[i].sim_time_s = elapsed;
  }
  return series;
}

}  // namespace fleda
