// Evaluation of trained models in the paper's reporting format: ROC
// AUC per client (each model evaluated on that client's private test
// data) plus the across-client average — one row of Tables 3-5.
#pragma once

#include <string>
#include <vector>

#include "comm/channel.hpp"
#include "fl/client.hpp"
#include "obs/telemetry.hpp"

namespace fleda {

struct MethodResult {
  std::string method;
  std::vector<double> client_auc;  // AUC on client k's test data
  double average = 0.0;
  // Cumulative channel accounting for the run that produced this row
  // (all-zero for non-federated baselines, which exchange nothing).
  ChannelStats comm;
  // Simulated wall-clock of the run on the virtual federation clock
  // (transfers + local compute + availability; zero for baselines,
  // which never touch the engine).
  double sim_time_s = 0.0;
  std::uint64_t sim_events = 0;
  // Participation policy the run used ("full", "uniform_sample", ...);
  // empty for the non-federated baselines.
  std::string participation;
  // One record per channel round (cohort, traffic, staleness, guard
  // trips — see obs/telemetry.hpp); empty for baselines.
  std::vector<RoundTelemetry> round_telemetry;
};

// Evaluates per-client final models: finals[k] on clients[k].
MethodResult evaluate_per_client(const std::string& method,
                                 std::vector<Client>& clients,
                                 const std::vector<ModelParameters>& finals);

// Evaluates one shared model on every client's test data.
MethodResult evaluate_shared(const std::string& method,
                             std::vector<Client>& clients,
                             const ModelParameters& model);

}  // namespace fleda
