// fleda::Experiment — the library's top-level API. One Experiment owns
// a Table-2-replica dataset and can run any registered training method
// on any of the three models, returning table rows (per-client ROC AUC
// + average). The benches for Tables 3/4/5 are thin wrappers over this
// class, and downstream users drive the whole system from here:
//
//   ExperimentConfig cfg;
//   cfg.model = ModelKind::kFLNet;
//   Experiment exp(cfg);
//   exp.prepare_data();
//   MethodResult row = exp.run_method("fedprox_finetune");
//
// Methods are looked up by registry name (AlgorithmRegistry::global(),
// plus the "local" / "central" baselines); the TrainingMethod enum
// below survives as a thin deprecated shim over those names so
// paper_table_methods() and the existing benches keep compiling.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/evaluation.hpp"
#include "data/generator.hpp"
#include "fl/registry.hpp"
#include "fl/trainer.hpp"
#include "models/pool.hpp"
#include "models/registry.hpp"
#include "util/config.hpp"

namespace fleda {

// DEPRECATED enum dispatch: kept only so existing callers compile.
// Each value maps onto a registry name via registry_name(); new code
// should pass names to Experiment::run_method(std::string_view).
enum class TrainingMethod {
  kLocal,               // Local Average (b_1..b_9)
  kCentral,             // Training Centrally on All Data
  kFedAvg,              // plain FedAvg (supplementary)
  kFedProx,             //
  kFedProxLG,           //
  kIFCA,                //
  kFedProxFineTune,     // FedProx + Fine-tuning
  kAssignedClustering,  //
  kAlphaPortionSync,    // FedProx + alpha-Portion Sync
  kAsyncFedAvg,         // staleness-aware buffered async (extension)
};

std::string to_string(TrainingMethod method);
// The AlgorithmRegistry key for an enum value ("local" / "central" for
// the two baselines, which are not federated algorithms).
std::string registry_name(TrainingMethod method);
// The paper's table label for a registry name (falls back to the name
// itself for methods registered downstream).
std::string display_name(std::string_view name);
// The eight rows of Tables 3-5, in the paper's order.
std::vector<TrainingMethod> paper_table_methods();

struct ExperimentConfig {
  ModelKind model = ModelKind::kFLNet;
  RunScale scale;                 // grid / rounds / steps / fractions
  PaperHyperParams hparams;       // paper §5.1 verbatim values
  std::uint64_t data_seed = 20220203;
  std::uint64_t train_seed = 7;
  // Parameter-exchange transport (codecs + simulated link) used by all
  // federated methods; defaults to lossless fp32 both ways.
  CommConfig comm;
  // Client heterogeneity and compute-time model for the simulated
  // federation clock (default: homogeneous, always-online clients).
  SimConfig sim;
  // Per-round cohort selection for the synchronous methods (full
  // participation, uniform sampling, availability-aware skipping).
  ParticipationConfig participation;
  // Aggregation-rule selection by AggregationRegistry name (empty =
  // each algorithm's historical default); "coordinate_median" /
  // "trimmed_mean" / "norm_clipped_mean" harden any method against
  // Byzantine clients.
  AggregationConfig aggregation;
  // Server-side attacker detection / reputation loop (fl/anomaly.hpp);
  // disabled by default, a pure observer when enabled.
  AnomalyConfig anomaly;
  // AsyncFedAvg knobs (buffer size, staleness discount, max_in_flight
  // dispatch gate).
  AsyncConfig async;
  // Restart local Adam moments from zero at every deployment (the
  // paper's behavior); false carries each client's moments across
  // rounds (serialized AdamMoments, see ClientTrainConfig).
  bool reset_optimizer = true;
  // Optional directory for caching the generated dataset across runs.
  std::string cache_dir;
};

class Experiment {
 public:
  explicit Experiment(const ExperimentConfig& config);

  // Generates (or loads from cache) the 9-client dataset.
  void prepare_data();

  // Runs one training method end-to-end and evaluates it. Requires
  // prepare_data() first. `name` is an AlgorithmRegistry key, or the
  // "local" / "central" baselines.
  MethodResult run_method(std::string_view name);
  // Deprecated enum shim over the name-keyed overload.
  MethodResult run_method(TrainingMethod method);

  // All eight table rows, in paper order.
  std::vector<MethodResult> run_paper_table();

  // Round-by-round average test AUC (for the convergence bench), with
  // the simulated wall-clock at which each round completed.
  struct ConvergencePoint {
    int round = 0;
    double average_auc = 0.0;
    double sim_time_s = 0.0;
  };
  std::vector<ConvergencePoint> run_convergence(std::string_view name);
  std::vector<ConvergencePoint> run_convergence(TrainingMethod method);

  const std::vector<ClientDataset>& data() const { return data_; }
  const ExperimentConfig& config() const { return config_; }

 private:
  std::vector<Client> make_clients();
  FLRunOptions make_run_options() const;
  ClientTrainConfig make_client_config() const;
  // Registry options derived from this experiment's scale / hparams.
  AlgorithmOptions make_algorithm_options() const;
  std::unique_ptr<FederatedAlgorithm> make_algorithm(
      std::string_view name) const;

  ExperimentConfig config_;
  ModelFactory factory_;
  // Scratch models shared by every client this experiment creates:
  // memory stays O(threads) regardless of the client count.
  std::shared_ptr<ModelPool> pool_;
  std::vector<ClientDataset> data_;
};

}  // namespace fleda
