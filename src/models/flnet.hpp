// FLNet — the paper's federated-learning-customized routability model
// (Table 1): two convolution layers with large 9x9 kernels, 64 hidden
// filters, ReLU in between, no BatchNorm, no output activation. The
// deliberately low parameter count and absence of normalization state
// make it robust to the parameter averaging of decentralized training.
#pragma once

#include "models/model.hpp"
#include "nn/activations.hpp"
#include "nn/conv2d.hpp"

namespace fleda {

struct FLNetOptions {
  std::int64_t in_channels = 6;
  std::int64_t hidden_filters = 64;  // Table 1: 64
  std::int64_t kernel = 9;           // Table 1: 9x9 for both layers
};

class FLNet : public RoutabilityModel {
 public:
  FLNet(const FLNetOptions& opts, Rng& rng);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;
  std::string describe() const override;
  std::string model_name() const override { return "flnet"; }
  std::int64_t in_channels() const override { return opts_.in_channels; }

 private:
  FLNetOptions opts_;
  Conv2d input_conv_;
  ReLU relu_;
  Conv2d output_conv_;
};

}  // namespace fleda
