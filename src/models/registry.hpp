// Model factory. FL algorithms need to create many architecturally
// identical instances (one per client, per cluster, plus the global
// model); they do so through a ModelFactory bound to a model kind and
// input channel count.
#pragma once

#include <functional>
#include <string>

#include "models/model.hpp"
#include "util/rng.hpp"

namespace fleda {

enum class ModelKind {
  kFLNet,
  kRouteNet,
  kPROS,
};

// "flnet" | "routenet" | "pros"; throws std::invalid_argument otherwise.
ModelKind parse_model_kind(const std::string& name);
std::string to_string(ModelKind kind);

// Creates a freshly initialized model of the given kind.
RoutabilityModelPtr make_model(ModelKind kind, std::int64_t in_channels,
                               Rng& rng);

// A reusable factory closure; every call yields a new instance whose
// initialization is drawn from the provided rng.
using ModelFactory = std::function<RoutabilityModelPtr(Rng&)>;
ModelFactory make_model_factory(ModelKind kind, std::int64_t in_channels);

}  // namespace fleda
