// Common interface for routability estimators. A model maps an
// [N, c, H, W] placement feature tensor to an [N, 1, H, W] hotspot
// score map (raw scores; the paper's Eq. 1 regresses them onto the
// binary DRC map with MSE, and ROC AUC is threshold-free).
//
// Models are Modules, so FL code can flatten parameters()/buffers()
// uniformly. New instances with identical architecture are created
// through the registry (models/registry.hpp); FL algorithms copy
// parameter *values* between instances rather than cloning objects.
#pragma once

#include <string>

#include "nn/module.hpp"

namespace fleda {

class RoutabilityModel : public Module {
 public:
  // Stable identifier ("flnet", "routenet", "pros").
  virtual std::string model_name() const = 0;

  // Number of input feature channels the model was built for.
  virtual std::int64_t in_channels() const = 0;
};

using RoutabilityModelPtr = std::unique_ptr<RoutabilityModel>;

}  // namespace fleda
