// Common interface for routability estimators. A model maps an
// [N, c, H, W] placement feature tensor to an [N, 1, H, W] hotspot
// score map (raw scores; the paper's Eq. 1 regresses them onto the
// binary DRC map with MSE, and ROC AUC is threshold-free).
//
// Models are Modules, so FL code can flatten parameters()/buffers()
// uniformly. New instances with identical architecture are created
// through the registry (models/registry.hpp); FL algorithms copy
// parameter *values* between instances rather than cloning objects.
#pragma once

#include <atomic>
#include <string>

#include "nn/module.hpp"

namespace fleda {

class RoutabilityModel : public Module {
 public:
  RoutabilityModel() { count_construction(); }
  RoutabilityModel(const RoutabilityModel&) { count_construction(); }
  RoutabilityModel& operator=(const RoutabilityModel&) = default;
  ~RoutabilityModel() override { live_.fetch_sub(1, std::memory_order_relaxed); }

  // Stable identifier ("flnet", "routenet", "pros").
  virtual std::string model_name() const = 0;

  // Number of input feature channels the model was built for.
  virtual std::int64_t in_channels() const = 0;

  // Process-wide instance accounting. The scratch-model pool keeps a
  // thousand-client federation at O(threads) live models; these
  // counters are how tests and benches assert that invariant.
  static std::int64_t live_instances() {
    return live_.load(std::memory_order_relaxed);
  }
  static std::int64_t peak_instances() {
    return peak_.load(std::memory_order_relaxed);
  }
  // Restarts the high-water mark from the current live count (e.g.
  // after a setup phase whose transient instances should not count
  // against a training run's O(threads) budget).
  static void reset_peak_instances() {
    peak_.store(live_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
  }

 private:
  static void count_construction() {
    const std::int64_t now = live_.fetch_add(1, std::memory_order_relaxed) + 1;
    std::int64_t seen = peak_.load(std::memory_order_relaxed);
    while (seen < now &&
           !peak_.compare_exchange_weak(seen, now, std::memory_order_relaxed,
                                        std::memory_order_relaxed)) {
    }
  }

  inline static std::atomic<std::int64_t> live_{0};
  inline static std::atomic<std::int64_t> peak_{0};
};

using RoutabilityModelPtr = std::unique_ptr<RoutabilityModel>;

}  // namespace fleda
