// ModelPool: a shared pool of scratch {model, Adam} pairs that keeps a
// K-client federation at O(threads) live model instances instead of
// O(K).
//
// Clients do not own models anymore — their persistent state is the
// lightweight ModelParameters they exchange (plus, when
// reset_optimizer == false, serialized AdamMoments). For the duration
// of one local_update / fine_tune / evaluate call a client borrows a
// scratch instance via acquire(), loads its parameters into it with
// ModelParameters::apply_to, and returns it when the lease goes out of
// scope. Because at most `ThreadPool::global().size() + 1` threads can
// be inside client work at once (pool workers plus the caller, which
// participates in parallel_for), the pool never holds more resident
// scratch instances than that — a thousand-client run trains on a
// handful of warm models whose weight/grad/moment buffers are reused
// round after round.
//
// Leases are handed out LIFO, so the hottest scratch instance (weights,
// gradients and Adam moments all recently touched) is reused first.
// All pool operations are thread-safe; the scratch model's weights are
// unspecified between leases (every borrower must apply_to before use,
// which the Client layer always does).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "models/registry.hpp"
#include "nn/optimizer.hpp"
#include "util/thread_safety.hpp"

namespace fleda {

class ModelPool;

// Versioned contract for how a client's rng stream is initialized
// against the pool. kReplayInit replays one factory construction per
// client (consume_init_stream), keeping every per-client stream
// bit-identical to the seed implementation where each client built and
// kept its own model — the default, and what every recorded fingerprint
// assumes. kFastInit skips the replay entirely, making client
// construction O(1) instead of one full model init each: the per-client
// streams differ from kReplayInit, so results are valid but on a
// different (still deterministic) rng schedule. The enum is explicitly
// numbered so the schema can be recorded/compared across runs.
enum class ClientInitSchema : int {
  kReplayInit = 1,
  kFastInit = 2,
};

// One borrowable scratch unit: a model plus the Adam optimizer bound to
// its parameters (built lazily on the first training lease and kept
// warm across leases).
struct ModelScratch {
  RoutabilityModelPtr model;
  std::unique_ptr<Adam> adam;
};

// Move-only RAII handle for one scratch instance; returns it to the
// pool on destruction.
class ModelLease {
 public:
  ModelLease() = default;
  ModelLease(ModelLease&& other) noexcept;
  ModelLease& operator=(ModelLease&& other) noexcept;
  ModelLease(const ModelLease&) = delete;
  ModelLease& operator=(const ModelLease&) = delete;
  ~ModelLease();

  explicit operator bool() const { return scratch_ != nullptr; }
  RoutabilityModel& model() const;

  // The scratch optimizer, (re)configured with `opts`. Moment buffers
  // carry whatever the previous lease left — callers reset_state() or
  // import_moments() before stepping.
  Adam& adam(const AdamOptions& opts) const;

 private:
  friend class ModelPool;
  ModelLease(ModelPool* pool, std::unique_ptr<ModelScratch> scratch)
      : pool_(pool), scratch_(std::move(scratch)) {}

  ModelPool* pool_ = nullptr;
  std::unique_ptr<ModelScratch> scratch_;
};

class ModelPool {
 public:
  // `max_resident` caps how many idle scratch instances the pool keeps
  // between leases; 0 resolves dynamically to
  // ThreadPool::global().size() + 1 (workers + the participating
  // caller). Leases themselves are never blocked by the cap — a release
  // beyond it simply destroys the instance.
  explicit ModelPool(ModelFactory factory, std::size_t max_resident = 0);

  ModelPool(const ModelPool&) = delete;
  ModelPool& operator=(const ModelPool&) = delete;

  // Borrows a scratch instance (reusing a warm one when available).
  ModelLease acquire();

  // Replays one factory construction against `rng` and discards the
  // instance. Client construction calls this so the per-client rng
  // streams stay bit-identical to the seed implementation, where every
  // client built (and kept) its own model from its rng.
  void consume_init_stream(Rng& rng) const;

  const ModelFactory& factory() const { return factory_; }

  // Idle scratch instances currently held.
  std::size_t resident() const;
  // Resolved resident cap (threads + 1 unless overridden).
  std::size_t capacity() const;
  // Total scratch instances ever constructed by this pool.
  std::uint64_t created() const;
  // Destroys all idle scratch instances (outstanding leases unaffected).
  void trim();

 private:
  friend class ModelLease;
  void release(std::unique_ptr<ModelScratch> scratch);

  ModelFactory factory_;
  std::size_t max_resident_ = 0;  // 0: dynamic threads + 1

  mutable Mutex mutex_;
  std::vector<std::unique_ptr<ModelScratch>> idle_ FLEDA_GUARDED_BY(mutex_);
  std::uint64_t created_ FLEDA_GUARDED_BY(mutex_) = 0;
  // Private stream for scratch construction; scratch weights are
  // overwritten by apply_to before use, so this never affects results.
  Rng scratch_rng_ FLEDA_GUARDED_BY(mutex_){0x73637261746368ull};
};

}  // namespace fleda
