#include "models/routenet.hpp"

#include "tensor/ops.hpp"

namespace fleda {
namespace {

Conv2dOptions conv_opts(std::int64_t cin, std::int64_t cout,
                        std::int64_t kernel) {
  Conv2dOptions c;
  c.in_channels = cin;
  c.out_channels = cout;
  c.kernel = kernel;
  return c.same_padding();
}

ConvTranspose2dOptions deconv_opts(std::int64_t cin, std::int64_t cout) {
  ConvTranspose2dOptions o;
  o.in_channels = cin;
  o.out_channels = cout;
  o.kernel = 4;
  o.stride = 2;
  o.padding = 1;  // exactly doubles H and W
  return o;
}

}  // namespace

RouteNet::RouteNet(const RouteNetOptions& opts, Rng& rng)
    : opts_(opts),
      conv1_("conv1", conv_opts(opts.in_channels, opts.base_filters, 9), rng),
      relu1_("relu1"),
      conv2_("conv2", conv_opts(opts.base_filters, 2 * opts.base_filters, 7),
             rng),
      relu2_("relu2"),
      pool_("pool", MaxPool2dOptions{2, 2}),
      conv3_("conv3", conv_opts(2 * opts.base_filters, opts.base_filters, 9),
             rng),
      relu3_("relu3"),
      conv4_("conv4", conv_opts(opts.base_filters, opts.base_filters, 7), rng),
      relu4_("relu4"),
      deconv_("deconv", deconv_opts(opts.base_filters, opts.base_filters),
              rng),
      relu5_("relu5"),
      output_conv_("output_conv", conv_opts(opts.base_filters, 1, 5), rng) {}

Tensor RouteNet::forward(const Tensor& input, bool training) {
  // Encoder with a full-resolution skip from the first activation.
  Tensor a = relu1_.forward(conv1_.forward(input, training), training);
  Tensor b = relu2_.forward(conv2_.forward(a, training), training);
  Tensor p = pool_.forward(b, training);
  Tensor c = relu3_.forward(conv3_.forward(p, training), training);
  Tensor d = relu4_.forward(conv4_.forward(c, training), training);
  Tensor u = relu5_.forward(deconv_.forward(d, training), training);
  // Additive shortcut: decoder output + first-block features.
  Tensor s = add(u, a);
  return output_conv_.forward(s, training);
}

Tensor RouteNet::backward(const Tensor& grad_output) {
  Tensor gs = output_conv_.backward(grad_output);
  // gs flows into both the decoder path (u) and the shortcut (a).
  Tensor gu = relu5_.backward(gs);
  gu = deconv_.backward(gu);
  gu = relu4_.backward(gu);
  gu = conv4_.backward(gu);
  gu = relu3_.backward(gu);
  gu = conv3_.backward(gu);
  gu = pool_.backward(gu);
  gu = relu2_.backward(gu);
  Tensor ga = conv2_.backward(gu);
  add_inplace(ga, gs);  // shortcut gradient joins at conv1's activation
  ga = relu1_.backward(ga);
  return conv1_.backward(ga);
}

std::vector<Parameter*> RouteNet::parameters() {
  std::vector<Parameter*> params;
  for (Conv2d* conv : {&conv1_, &conv2_, &conv3_, &conv4_, &output_conv_}) {
    for (Parameter* p : conv->parameters()) params.push_back(p);
  }
  for (Parameter* p : deconv_.parameters()) params.push_back(p);
  return params;
}

std::string RouteNet::describe() const {
  return "RouteNet { conv(9)->conv(7)->pool->conv(9)->conv(7)->deconv(x2)"
         "+shortcut->conv(5), F=" +
         std::to_string(opts_.base_filters) + " }";
}

}  // namespace fleda
