// PROS (Chen et al., ICCAD'20) re-implementation — the second baseline
// estimator. An encoder-decoder FCN with the advanced components the
// paper attributes to it: stride-2 convolution encoder, dilated
// convolution blocks (Yu & Koltun 2015) at reduced resolution,
// sub-pixel (PixelShuffle) upsampling blocks, and refinement blocks;
// BatchNorm after every convolution. Its depth, non-linearity, and
// BatchNorm running statistics are what make it the most fragile of
// the three models under federated aggregation (paper Table 5).
#pragma once

#include "models/model.hpp"
#include "nn/sequential.hpp"
#include "util/rng.hpp"

namespace fleda {

struct PROSOptions {
  std::int64_t in_channels = 6;
  std::int64_t base_filters = 32;
  // Dilation factors of the context aggregation blocks.
  std::vector<std::int64_t> dilations = {1, 2, 4};
};

class PROS : public RoutabilityModel {
 public:
  PROS(const PROSOptions& opts, Rng& rng);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;
  std::vector<NamedBuffer> buffers() override;
  std::string describe() const override;
  std::string model_name() const override { return "pros"; }
  std::int64_t in_channels() const override { return opts_.in_channels; }

 private:
  PROSOptions opts_;
  Sequential net_;
};

}  // namespace fleda
