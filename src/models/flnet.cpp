#include "models/flnet.hpp"

namespace fleda {
namespace {

Conv2dOptions input_conv_opts(const FLNetOptions& o) {
  Conv2dOptions c;
  c.in_channels = o.in_channels;
  c.out_channels = o.hidden_filters;
  c.kernel = o.kernel;
  return c.same_padding();
}

Conv2dOptions output_conv_opts(const FLNetOptions& o) {
  Conv2dOptions c;
  c.in_channels = o.hidden_filters;
  c.out_channels = 1;
  c.kernel = o.kernel;
  return c.same_padding();
}

}  // namespace

FLNet::FLNet(const FLNetOptions& opts, Rng& rng)
    : opts_(opts),
      input_conv_("input_conv", input_conv_opts(opts), rng),
      relu_("relu"),
      output_conv_("output_conv", output_conv_opts(opts), rng) {}

Tensor FLNet::forward(const Tensor& input, bool training) {
  Tensor x = input_conv_.forward(input, training);
  x = relu_.forward(x, training);
  return output_conv_.forward(x, training);
}

Tensor FLNet::backward(const Tensor& grad_output) {
  Tensor g = output_conv_.backward(grad_output);
  g = relu_.backward(g);
  return input_conv_.backward(g);
}

std::vector<Parameter*> FLNet::parameters() {
  std::vector<Parameter*> params = input_conv_.parameters();
  for (Parameter* p : output_conv_.parameters()) params.push_back(p);
  return params;
}

std::string FLNet::describe() const {
  return "FLNet { " + input_conv_.describe() + ", ReLU, " +
         output_conv_.describe() + " }";
}

}  // namespace fleda
