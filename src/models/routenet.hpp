// RouteNet (Xie et al., ICCAD'18) re-implementation — the earlier of
// the two baseline routability estimators the paper compares against.
// A fully convolutional network with large-kernel convolutions, one
// max-pool downsample, a transposed-convolution upsample, and an
// additive shortcut from the first convolution block to the decoder
// output (no BatchNorm). Considerably deeper and larger than FLNet,
// which is exactly what makes it fragile under federated parameter
// aggregation (paper Table 4).
#pragma once

#include "models/model.hpp"
#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "nn/conv_transpose2d.hpp"
#include "nn/pooling.hpp"

namespace fleda {

struct RouteNetOptions {
  std::int64_t in_channels = 6;
  std::int64_t base_filters = 32;  // width of the shortcut path
};

class RouteNet : public RoutabilityModel {
 public:
  RouteNet(const RouteNetOptions& opts, Rng& rng);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;
  std::string describe() const override;
  std::string model_name() const override { return "routenet"; }
  std::int64_t in_channels() const override { return opts_.in_channels; }

 private:
  RouteNetOptions opts_;
  // Encoder
  Conv2d conv1_;  // c -> F, 9x9
  ReLU relu1_;
  Conv2d conv2_;  // F -> 2F, 7x7
  ReLU relu2_;
  MaxPool2d pool_;  // /2
  // Bottleneck
  Conv2d conv3_;  // 2F -> F, 9x9
  ReLU relu3_;
  Conv2d conv4_;  // F -> F, 7x7
  ReLU relu4_;
  // Decoder
  ConvTranspose2d deconv_;  // F -> F, x2
  ReLU relu5_;
  // Head (after shortcut add with conv1 activation)
  Conv2d output_conv_;  // F -> 1, 5x5
};

}  // namespace fleda
