#include "models/pros.hpp"

#include "nn/activations.hpp"
#include "nn/batchnorm2d.hpp"
#include "nn/conv2d.hpp"
#include "nn/pixel_shuffle.hpp"

namespace fleda {
namespace {

Conv2dOptions conv_opts(std::int64_t cin, std::int64_t cout,
                        std::int64_t kernel, std::int64_t stride = 1,
                        std::int64_t dilation = 1) {
  Conv2dOptions c;
  c.in_channels = cin;
  c.out_channels = cout;
  c.kernel = kernel;
  c.stride = stride;
  c.dilation = dilation;
  c.same_padding();
  return c;
}

void add_conv_bn_relu(Sequential& net, const std::string& name,
                      const Conv2dOptions& copts, Rng& rng) {
  net.emplace<Conv2d>(name, copts, rng);
  net.emplace<BatchNorm2d>(name + "_bn",
                           BatchNorm2dOptions{copts.out_channels});
  net.emplace<ReLU>(name + "_relu");
}

}  // namespace

PROS::PROS(const PROSOptions& opts, Rng& rng) : opts_(opts), net_("pros") {
  const std::int64_t F = opts.base_filters;

  // Encoder: two stride-2 conv blocks, H -> H/4.
  add_conv_bn_relu(net_, "enc1", conv_opts(opts.in_channels, F, 3, 2), rng);
  add_conv_bn_relu(net_, "enc2", conv_opts(F, 2 * F, 3, 2), rng);

  // Dilated context aggregation blocks at H/4.
  for (std::size_t i = 0; i < opts.dilations.size(); ++i) {
    add_conv_bn_relu(
        net_, "dil" + std::to_string(i + 1),
        conv_opts(2 * F, 2 * F, 3, 1, opts.dilations[i]), rng);
  }

  // Sub-pixel upsampling block 1: H/4 -> H/2 with F channels.
  net_.emplace<Conv2d>("up1", conv_opts(2 * F, F * 4, 3), rng);
  net_.emplace<PixelShuffle>("up1_shuffle", 2);
  net_.emplace<BatchNorm2d>("up1_bn", BatchNorm2dOptions{F});
  net_.emplace<ReLU>("up1_relu");
  // Refinement block 1.
  add_conv_bn_relu(net_, "refine1", conv_opts(F, F, 3), rng);

  // Sub-pixel upsampling block 2: H/2 -> H with F/2 channels.
  net_.emplace<Conv2d>("up2", conv_opts(F, (F / 2) * 4, 3), rng);
  net_.emplace<PixelShuffle>("up2_shuffle", 2);
  net_.emplace<BatchNorm2d>("up2_bn", BatchNorm2dOptions{F / 2});
  net_.emplace<ReLU>("up2_relu");
  // Refinement block 2.
  add_conv_bn_relu(net_, "refine2", conv_opts(F / 2, F / 2, 3), rng);

  // Prediction head (kept Conv-only so FedProx-LG's "output layer"
  // split has a well-defined local part).
  net_.emplace<Conv2d>("output_conv", conv_opts(F / 2, 1, 3), rng);
}

Tensor PROS::forward(const Tensor& input, bool training) {
  return net_.forward(input, training);
}

Tensor PROS::backward(const Tensor& grad_output) {
  return net_.backward(grad_output);
}

std::vector<Parameter*> PROS::parameters() { return net_.parameters(); }

std::vector<NamedBuffer> PROS::buffers() { return net_.buffers(); }

std::string PROS::describe() const {
  return "PROS { stride-2 encoder, " +
         std::to_string(opts_.dilations.size()) +
         " dilated blocks, 2x sub-pixel upsampling + refinement, BN "
         "throughout, F=" +
         std::to_string(opts_.base_filters) + " }";
}

}  // namespace fleda
