#include "models/pool.hpp"

#include <stdexcept>
#include <utility>

#include "obs/profiler.hpp"
#include "util/thread_pool.hpp"

namespace fleda {

ModelLease::ModelLease(ModelLease&& other) noexcept
    : pool_(other.pool_), scratch_(std::move(other.scratch_)) {
  other.pool_ = nullptr;
}

ModelLease& ModelLease::operator=(ModelLease&& other) noexcept {
  if (this != &other) {
    if (pool_ != nullptr && scratch_ != nullptr) {
      pool_->release(std::move(scratch_));
    }
    pool_ = other.pool_;
    scratch_ = std::move(other.scratch_);
    other.pool_ = nullptr;
  }
  return *this;
}

ModelLease::~ModelLease() {
  if (pool_ != nullptr && scratch_ != nullptr) {
    pool_->release(std::move(scratch_));
  }
}

RoutabilityModel& ModelLease::model() const {
  if (scratch_ == nullptr) {
    throw std::logic_error("ModelLease: accessing an empty lease");
  }
  return *scratch_->model;
}

Adam& ModelLease::adam(const AdamOptions& opts) const {
  if (scratch_ == nullptr) {
    throw std::logic_error("ModelLease: accessing an empty lease");
  }
  if (scratch_->adam == nullptr) {
    scratch_->adam =
        std::make_unique<Adam>(scratch_->model->parameters(), opts);
  } else {
    scratch_->adam->set_options(opts);
  }
  return *scratch_->adam;
}

ModelPool::ModelPool(ModelFactory factory, std::size_t max_resident)
    : factory_(std::move(factory)), max_resident_(max_resident) {
  if (!factory_) {
    throw std::invalid_argument("ModelPool: empty factory");
  }
}

ModelLease ModelPool::acquire() {
  // The span separates cheap reuse hits from cold model constructions
  // (max_ms surfaces the cold-start cost; count x min_ms the steady
  // state).
  ProfileScope prof(phase::kPoolAcquire);
  Rng build_rng(0);
  {
    MutexLock lock(mutex_);
    if (!idle_.empty()) {
      std::unique_ptr<ModelScratch> scratch = std::move(idle_.back());
      idle_.pop_back();
      return ModelLease(this, std::move(scratch));
    }
    ++created_;
    build_rng = scratch_rng_.fork(created_);
  }
  // Construct outside the lock: a cold start on many threads shouldn't
  // serialize on the pool mutex.
  auto scratch = std::make_unique<ModelScratch>();
  scratch->model = factory_(build_rng);
  return ModelLease(this, std::move(scratch));
}

void ModelPool::consume_init_stream(Rng& rng) const {
  // Build-and-discard: only the rng side effect survives, keeping the
  // client's downstream draws (batch samplers, forks) bit-identical to
  // the implementation where the client kept this instance for life.
  RoutabilityModelPtr transient = factory_(rng);
  (void)transient;
}

std::size_t ModelPool::resident() const {
  MutexLock lock(mutex_);
  return idle_.size();
}

std::size_t ModelPool::capacity() const {
  if (max_resident_ > 0) return max_resident_;
  // Workers plus the caller, which participates in parallel_for.
  return ThreadPool::global().size() + 1;
}

std::uint64_t ModelPool::created() const {
  MutexLock lock(mutex_);
  return created_;
}

void ModelPool::trim() {
  MutexLock lock(mutex_);
  idle_.clear();
}

void ModelPool::release(std::unique_ptr<ModelScratch> scratch) {
  const std::size_t cap = capacity();
  MutexLock lock(mutex_);
  if (idle_.size() < cap) {
    idle_.push_back(std::move(scratch));
  }
  // Beyond the cap the instance is simply destroyed (e.g. after a
  // ThreadPool::reset_global to a smaller size).
}

}  // namespace fleda
