#include "models/registry.hpp"

#include <stdexcept>

#include "models/flnet.hpp"
#include "models/pros.hpp"
#include "models/routenet.hpp"

namespace fleda {

ModelKind parse_model_kind(const std::string& name) {
  if (name == "flnet") return ModelKind::kFLNet;
  if (name == "routenet") return ModelKind::kRouteNet;
  if (name == "pros") return ModelKind::kPROS;
  throw std::invalid_argument("unknown model kind: " + name);
}

std::string to_string(ModelKind kind) {
  switch (kind) {
    case ModelKind::kFLNet:
      return "flnet";
    case ModelKind::kRouteNet:
      return "routenet";
    case ModelKind::kPROS:
      return "pros";
  }
  return "?";
}

RoutabilityModelPtr make_model(ModelKind kind, std::int64_t in_channels,
                               Rng& rng) {
  switch (kind) {
    case ModelKind::kFLNet: {
      FLNetOptions o;
      o.in_channels = in_channels;
      return std::make_unique<FLNet>(o, rng);
    }
    case ModelKind::kRouteNet: {
      RouteNetOptions o;
      o.in_channels = in_channels;
      return std::make_unique<RouteNet>(o, rng);
    }
    case ModelKind::kPROS: {
      PROSOptions o;
      o.in_channels = in_channels;
      return std::make_unique<PROS>(o, rng);
    }
  }
  throw std::logic_error("make_model: unreachable");
}

ModelFactory make_model_factory(ModelKind kind, std::int64_t in_channels) {
  return [kind, in_channels](Rng& rng) {
    return make_model(kind, in_channels, rng);
  };
}

}  // namespace fleda
