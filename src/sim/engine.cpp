#include "sim/engine.hpp"

#include <stdexcept>
#include <utility>

namespace fleda {

const char* to_string(SimEventKind kind) {
  switch (kind) {
    case SimEventKind::kDispatch:
      return "dispatch";
    case SimEventKind::kDownlinkDone:
      return "downlink_done";
    case SimEventKind::kComputeDone:
      return "compute_done";
    case SimEventKind::kUplinkDone:
      return "uplink_done";
    case SimEventKind::kDropped:
      return "dropped";
    case SimEventKind::kAggregate:
      return "aggregate";
    case SimEventKind::kRoundEnd:
      return "round_end";
  }
  return "?";
}

SimEngine::SimEngine(const SimConfig& config, const CommConfig& comm,
                     std::size_t num_clients)
    : config_(config),
      num_clients_(num_clients),
      default_link_(ClientLink{}.with_defaults(comm)) {
  if (config_.step_time_s < 0.0) {
    throw std::invalid_argument("SimEngine: step_time_s < 0");
  }
  resolved_links_.reserve(config_.profiles.size());
  for (const ClientProfile& p : config_.profiles) {
    if (p.compute_multiplier <= 0.0) {
      throw std::invalid_argument("SimEngine: compute_multiplier <= 0");
    }
    resolved_links_.push_back(p.link.with_defaults(comm));
  }
}

const ClientProfile& SimEngine::profile(std::size_t k) const {
  return config_.profile(k);
}

void SimEngine::schedule(double time, SimEventKind kind, int client, int round,
                         EventFn fn) {
  queue_.schedule(time, [this, time, kind, client, round,
                         fn = std::move(fn)] {
    if (trace_enabled_) trace_.push_back({time, kind, client, round});
    if (fn) fn();
  });
}

void SimEngine::note(SimEventKind kind, int client, int round) {
  if (trace_enabled_) trace_.push_back({clock_.now(), kind, client, round});
}

void SimEngine::run_all() { queue_.run_all(clock_); }

const ClientLink& SimEngine::resolved_link(std::size_t k) const {
  return k < resolved_links_.size() ? resolved_links_[k] : default_link_;
}

double SimEngine::download_duration(std::size_t k, std::uint64_t messages,
                                    std::uint64_t bytes) const {
  const ClientLink& l = resolved_link(k);
  return static_cast<double>(messages) * l.per_message_latency_s +
         static_cast<double>(bytes) / l.downlink_bytes_per_sec;
}

double SimEngine::upload_duration(std::size_t k, std::uint64_t messages,
                                  std::uint64_t bytes) const {
  const ClientLink& l = resolved_link(k);
  return static_cast<double>(messages) * l.per_message_latency_s +
         static_cast<double>(bytes) / l.uplink_bytes_per_sec;
}

double SimEngine::compute_duration(std::size_t k, int steps) const {
  return static_cast<double>(steps) * config_.step_time_s *
         profile(k).compute_multiplier;
}

SimReport SimEngine::report() const {
  SimReport report;
  report.total_time_s = clock_.now();
  report.events_processed = queue_.processed();
  report.trace_start_s = trace_started_at_;
  report.trace = trace_;
  return report;
}

}  // namespace fleda
