// ClientProfile: the heterogeneity model of the simulated federation.
// Each client has a compute speed multiplier (how much longer than the
// reference device one local step takes), optional per-client link
// overrides (0 / negative = inherit the channel's CommConfig rates),
// and a list of offline windows during which it neither starts
// transfers nor delivers updates. SimConfig bundles the per-client
// profiles with the global compute-time model and provides the stock
// scenarios used by tests and benches: uniform, single straggler,
// seeded heterogeneous, periodic dropout.
#pragma once

#include <cstdint>
#include <vector>

#include "comm/channel.hpp"

namespace fleda {

struct OfflineWindow {
  double begin = 0.0;
  double end = 0.0;  // half-open [begin, end)
};

struct ClientProfile {
  // One local step takes compute_multiplier times the reference
  // SimConfig::step_time_s. 10.0 models a device 10x slower.
  double compute_multiplier = 1.0;
  // Per-client link overrides; the ClientLink sentinels (<= 0 rate,
  // < 0 latency) inherit the CommConfig shared rates.
  ClientLink link;
  // Windows of unavailability on the simulated clock.
  std::vector<OfflineWindow> offline;

  bool is_online(double t) const;
  // Earliest time >= t at which the client is online. Windows may
  // overlap or abut; the scan restarts until a stable point is found.
  double next_online(double t) const;
};

struct SimConfig {
  // Simulated seconds one local training step takes on the reference
  // (multiplier 1.0) device.
  double step_time_s = 0.02;
  // Per-client profiles; clients beyond the vector (or an empty
  // vector) get the default homogeneous profile.
  std::vector<ClientProfile> profiles;

  const ClientProfile& profile(std::size_t k) const;

  // Stock scenarios ------------------------------------------------
  // n identical reference clients.
  static SimConfig uniform(std::size_t n);
  // One straggler `idx` computing `slowdown` times slower than the
  // other n-1 reference clients.
  static SimConfig with_straggler(std::size_t n, std::size_t idx,
                                  double slowdown);
  // Seeded diversity: log-uniform compute multipliers in
  // [1, max_slowdown] and uplink/downlink rates scattered around the
  // channel defaults.
  static SimConfig heterogeneous(std::size_t n, std::uint64_t seed,
                                 double max_slowdown = 8.0);
};

// Adds periodic offline windows to client `idx` of `config`: offline
// during [phase + i*period, phase + i*period + duration) for
// i = 0..repeats-1.
void add_periodic_dropout(SimConfig& config, std::size_t idx, double phase,
                          double period, double duration, int repeats);

}  // namespace fleda
