// ClientProfile: the heterogeneity model of the simulated federation.
// Each client has a compute speed multiplier (how much longer than the
// reference device one local step takes), optional per-client link
// overrides (0 / negative = inherit the channel's CommConfig rates),
// a list of offline windows during which it neither starts transfers
// nor delivers updates, and an optional Byzantine behavior (AttackSpec)
// applied to every update the client sends before it enters the
// Channel. SimConfig bundles the per-client profiles with the global
// compute-time model and provides the stock scenarios used by tests
// and benches: uniform, single straggler, seeded heterogeneous,
// periodic dropout, and Byzantine attacker cohorts.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "comm/channel.hpp"

namespace fleda {

class ModelParameters;

struct OfflineWindow {
  double begin = 0.0;
  double end = 0.0;  // half-open [begin, end)
};

// Byzantine client behaviors: what a compromised client does to its
// trained update before uploading it. All attacks are expressed on the
// DELTA between the trained update and the model the client received
// this round, which makes them meaningful for both the synchronous
// barrier (full-parameter uploads) and the async delta buffers.
enum class AttackKind : std::uint8_t {
  kNone = 0,
  // delta <- -scale * delta: push the global model backwards along the
  // client's own honest gradient direction.
  kSignFlip = 1,
  // delta <- scale * delta: an otherwise-honest update magnified to
  // dominate the average.
  kScaled = 2,
  // update <- update + N(0, noise_stddev^2) per coordinate, from a
  // deterministic per-(seed, client, nonce) stream.
  kGaussianNoise = 3,
  // Adaptive tolerance probing: the attacker watches the broadcast
  // model trajectory (AttackState), estimates the norm of the step the
  // server actually admits per aggregation, and uploads its honest
  // delta REVERSED at scale * that estimate — large enough to hurt,
  // small enough that a norm-clip/trim defense tuned to honest
  // magnitudes never reacts. Before the first trajectory observation
  // it falls back to the honest delta's own norm.
  kAdaptiveScaled = 4,
  // Colluding attackers: every kCollusion client with the same spec
  // seed uploads the SAME unit poison direction (drawn once from
  // seed, independent of client/nonce), magnitude scale * its honest
  // delta norm — the coordinated drift that per-client defenses miss.
  kCollusion = 5,
};

const char* to_string(AttackKind kind);

struct AttackSpec {
  AttackKind kind = AttackKind::kNone;
  // kSignFlip / kScaled delta multiplier; for kAdaptiveScaled the
  // fraction of the estimated admitted-step norm the attacker uses
  // (1.0 = right at the estimated tolerance); for kCollusion the
  // multiple of the honest delta norm sent along the shared direction.
  double scale = 1.0;
  double noise_stddev = 1.0;  // kGaussianNoise per-coordinate sigma
  // Root seed of the attacker's noise stream; apply_attack forks a
  // per-(client, nonce) sub-stream so runs replay bit-identically
  // regardless of host thread count. kCollusion derives the SHARED
  // direction from this seed alone — same seed, same poison.
  std::uint64_t seed = 0xBADF00Dull;
};

// Per-client state an adaptive attacker carries across its own sends:
// the previously observed broadcast reference and an EMA of the norm
// of successive reference steps — the attacker's estimate of how big
// an update the server's defense admits. Owned by the simulation
// (FederationSim hands each client its slot); only the owning client
// touches it, so parallel cohort loops stay race-free.
struct AttackState {
  AttackState();
  ~AttackState();
  AttackState(AttackState&&) noexcept;
  AttackState& operator=(AttackState&&) noexcept;

  std::unique_ptr<ModelParameters> prev_reference;
  double step_norm_ema = 0.0;
  std::uint64_t observations = 0;
};

// Applies `spec` to a client's outgoing update. `reference` is the
// model the client received this round (the delta anchor); `nonce`
// disambiguates repeated sends by one client (round index for the
// sync barrier, dispatched model version for async chains). kNone
// returns the update unchanged. `state` carries the adaptive
// attacker's trajectory memory — kAdaptiveScaled reads and updates it
// (null: the attacker falls back to its honest delta norm every
// send); the other kinds ignore it. Throws std::invalid_argument on a
// non-finite/negative scale or negative/non-finite noise_stddev.
ModelParameters apply_attack(const AttackSpec& spec, ModelParameters update,
                             const ModelParameters& reference,
                             std::size_t client, std::uint64_t nonce,
                             AttackState* state);
ModelParameters apply_attack(const AttackSpec& spec, ModelParameters update,
                             const ModelParameters& reference,
                             std::size_t client, std::uint64_t nonce);

struct ClientProfile {
  // One local step takes compute_multiplier times the reference
  // SimConfig::step_time_s. 10.0 models a device 10x slower.
  double compute_multiplier = 1.0;
  // Per-client link overrides; the ClientLink sentinels (<= 0 rate,
  // < 0 latency) inherit the CommConfig shared rates.
  ClientLink link;
  // Windows of unavailability on the simulated clock.
  std::vector<OfflineWindow> offline;
  // Byzantine behavior applied to every update this client uploads
  // (default: honest).
  AttackSpec attack;

  bool is_online(double t) const;
  // Earliest time >= t at which the client is online. Windows may
  // overlap or abut; the scan restarts until a stable point is found.
  double next_online(double t) const;
};

struct SimConfig {
  // Simulated seconds one local training step takes on the reference
  // (multiplier 1.0) device.
  double step_time_s = 0.02;
  // Per-client profiles; clients beyond the vector (or an empty
  // vector) get the default homogeneous profile.
  std::vector<ClientProfile> profiles;

  const ClientProfile& profile(std::size_t k) const;

  // Stock scenarios ------------------------------------------------
  // n identical reference clients.
  static SimConfig uniform(std::size_t n);
  // One straggler `idx` computing `slowdown` times slower than the
  // other n-1 reference clients.
  static SimConfig with_straggler(std::size_t n, std::size_t idx,
                                  double slowdown);
  // Seeded diversity: log-uniform compute multipliers in
  // [1, max_slowdown] and uplink/downlink rates scattered around the
  // channel defaults.
  static SimConfig heterogeneous(std::size_t n, std::uint64_t seed,
                                 double max_slowdown = 8.0);
  // n reference clients of which `num_attackers` are Byzantine with
  // `spec`, spread evenly over the index range (a uniform scenario
  // plus add_attackers).
  static SimConfig with_attackers(std::size_t n, std::size_t num_attackers,
                                  const AttackSpec& spec);
  // Diurnal time-zone availability waves: n reference clients spread
  // round-robin over `zones` equal time-zone cohorts; zone z is
  // offline ("night") for night_fraction of every day_s-second day,
  // with the window phased z/zones of a day later per zone, repeated
  // for `days` days. Requires day_s > 0 finite, zones >= 1,
  // night_fraction in [0, 1), days >= 0.
  static SimConfig diurnal(std::size_t n, double day_s, int zones,
                           double night_fraction, int days);
};

// Adds periodic offline windows to client `idx` of `config`: offline
// during [phase + i*period, phase + i*period + duration) for
// i = 0..repeats-1. Requires finite inputs, phase >= 0,
// 0 < duration <= period, and repeats >= 0 (descriptive errors — a
// negative phase or period used to build silent-nonsense scenarios).
void add_periodic_dropout(SimConfig& config, std::size_t idx, double phase,
                          double period, double duration, int repeats);

// Marks `num_attackers` of config's clients as Byzantine with `spec`,
// spread evenly over the index range (so samplers and cluster
// assignments both see attackers). Requires num_attackers <= #profiles
// and a valid spec (finite scale, non-negative finite noise_stddev).
void add_attackers(SimConfig& config, std::size_t num_attackers,
                   const AttackSpec& spec);

}  // namespace fleda
