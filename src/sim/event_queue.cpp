#include "sim/event_queue.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "obs/profiler.hpp"

namespace fleda {

void SimClock::advance_to(double t) {
  if (t < now_) {
    throw std::logic_error("SimClock: time would go backwards (" +
                           std::to_string(t) + " < " + std::to_string(now_) +
                           ")");
  }
  now_ = t;
}

void EventQueue::schedule(double time, EventFn fn) {
  if (!(time >= 0.0) || !std::isfinite(time)) {
    throw std::invalid_argument("EventQueue: non-finite or negative time " +
                                std::to_string(time));
  }
  heap_.push_back(Entry{time, next_seq_++, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), After{});
}

double EventQueue::next_time() const {
  if (heap_.empty()) throw std::logic_error("EventQueue: empty");
  return heap_.front().time;
}

bool EventQueue::run_next(SimClock& clock) {
  if (heap_.empty()) return false;
  std::pop_heap(heap_.begin(), heap_.end(), After{});
  Entry entry = std::move(heap_.back());
  heap_.pop_back();
  clock.advance_to(entry.time);
  ++processed_;
  // The callback may schedule further events; it runs after the pop so
  // the heap is consistent during reentrant schedule() calls. The
  // dispatch span covers the callback — nested phases (training, codec
  // work triggered by the event) subtract out as child time.
  ProfileScope dispatch(phase::kEventDispatch);
  if (entry.fn) entry.fn();
  return true;
}

void EventQueue::run_all(SimClock& clock, std::uint64_t max_events) {
  const std::uint64_t start = processed_;
  while (run_next(clock)) {
    if (processed_ - start > max_events) {
      throw std::runtime_error(
          "EventQueue: exceeded " + std::to_string(max_events) +
          " events — runaway self-scheduling loop?");
    }
  }
}

}  // namespace fleda
