#include "sim/federation.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "fl/anomaly.hpp"
#include "obs/telemetry.hpp"

namespace fleda {

void FederationSim::close_telemetry_round() {
  if (telemetry_ == nullptr) return;
  const std::vector<RoundCommStats>& rounds = channel_.stats().rounds;
  if (rounds.empty()) return;  // nothing billed yet
  const RoundCommStats& r = rounds.back();
  telemetry_->close_round(r.round, engine_.now(), r.uplink_bytes,
                          r.downlink_bytes);
}

void FederationSim::set_anomaly(AnomalyDetector* detector,
                                ReputationBook* reputation) {
  detector_ = detector;
  reputation_ = reputation;
}

void FederationSim::observe_cohort_updates(
    const std::vector<std::size_t>& cohort,
    const std::vector<ModelParameters>& updates,
    const std::vector<const ModelParameters*>& references) {
  if (detector_ == nullptr) return;
  if (cohort.size() != updates.size() || cohort.size() != references.size()) {
    throw std::invalid_argument(
        "FederationSim::observe_cohort_updates: cohort/updates/references "
        "size mismatch");
  }
  std::vector<ModelParameters> deltas(cohort.size());
  std::vector<const ModelParameters*> delta_ptrs(cohort.size());
  for (std::size_t i = 0; i < cohort.size(); ++i) {
    deltas[i] = updates[i];
    if (references[i] != nullptr &&
        deltas[i].structurally_equal(*references[i])) {
      deltas[i].add_scaled(*references[i], -1.0);
    }
    delta_ptrs[i] = &deltas[i];
  }
  observe_cohort_deltas(cohort, delta_ptrs);
}

void FederationSim::observe_cohort_deltas(
    const std::vector<std::size_t>& clients,
    const std::vector<const ModelParameters*>& deltas) {
  if (detector_ == nullptr) return;
  const std::vector<UpdateVerdict> verdicts =
      detector_->score_cohort(clients, deltas);
  int detected = 0;
  for (const UpdateVerdict& v : verdicts) {
    if (v.flagged) ++detected;
    if (reputation_ != nullptr) reputation_->observe(v.client, v.flagged);
  }
  if (telemetry_ != nullptr && detected > 0) {
    telemetry_->record_detected(detected);
  }
}

AttackState* FederationSim::attack_state(std::size_t client) {
  while (attack_states_.size() <= client) attack_states_.emplace_back();
  return &attack_states_[client];
}

std::vector<ClientLink> links_from_profiles(const SimConfig& config,
                                            std::size_t num_clients) {
  std::vector<ClientLink> links(num_clients);
  for (std::size_t k = 0; k < num_clients; ++k) {
    links[k] = config.profile(k).link;
  }
  return links;
}

void FederationSim::finish_sync_round(int steps) {
  const std::size_t n =
      std::max(engine_.num_clients(), channel_.round_traffic().size());
  std::vector<std::size_t> everyone(n);
  for (std::size_t k = 0; k < n; ++k) everyone[k] = k;
  finish_sync_round(steps, everyone);
}

void FederationSim::finish_sync_round(int steps,
                                      const std::vector<std::size_t>& cohort) {
  const double t0 = engine_.now();
  const int round = round_index_++;
  const std::vector<ClientRoundTraffic>& traffic = channel_.round_traffic();
  double barrier = t0;
  for (std::size_t k : cohort) {
    const ClientRoundTraffic t =
        k < traffic.size() ? traffic[k] : ClientRoundTraffic{};
    const bool exchanged = t.downlink_messages + t.uplink_messages > 0;
    if (!exchanged && steps <= 0) continue;
    const int ki = static_cast<int>(k);
    // The client only starts once it is online; the sync barrier then
    // waits for it (dropout stretches the round for everyone — that is
    // the cost async aggregation removes).
    const double start = engine_.profile(k).next_online(t0);
    if (!std::isfinite(start)) {
      throw std::invalid_argument(
          "FederationSim: client " + std::to_string(k) +
          " is permanently offline from t=" + std::to_string(t0) +
          " — the sync barrier would never release (use AsyncFedAvg or a "
          "finite offline window)");
    }
    const double down_done =
        start + engine_.download_duration(k, t.downlink_messages,
                                          t.downlink_bytes);
    const double compute_done = down_done + engine_.compute_duration(k, steps);
    const double up_done =
        compute_done +
        engine_.upload_duration(k, t.uplink_messages, t.uplink_bytes);
    engine_.schedule(down_done, SimEventKind::kDownlinkDone, ki, round);
    engine_.schedule(compute_done, SimEventKind::kComputeDone, ki, round);
    engine_.schedule(up_done, SimEventKind::kUplinkDone, ki, round);
    barrier = std::max(barrier, up_done);
  }
  engine_.schedule(barrier, SimEventKind::kRoundEnd, /*client=*/-1, round);
  engine_.run_all();
  channel_.end_round(engine_.now() - t0);
  close_telemetry_round();
}

void FederationSim::finish_local_round(int steps) {
  const double t0 = engine_.now();
  const int round = round_index_++;
  double barrier = t0;
  for (std::size_t k = 0; k < engine_.num_clients(); ++k) {
    const double start = engine_.profile(k).next_online(t0);
    if (!std::isfinite(start)) {
      throw std::invalid_argument(
          "FederationSim: client " + std::to_string(k) +
          " is permanently offline from t=" + std::to_string(t0) +
          " — the local round would never complete");
    }
    const double done = start + engine_.compute_duration(k, steps);
    engine_.schedule(done, SimEventKind::kComputeDone, static_cast<int>(k),
                     round);
    barrier = std::max(barrier, done);
  }
  engine_.schedule(barrier, SimEventKind::kRoundEnd, /*client=*/-1, round);
  engine_.run_all();
}

}  // namespace fleda
