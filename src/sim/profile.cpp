#include "sim/profile.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "fl/parameters.hpp"
#include "util/rng.hpp"

namespace fleda {

const char* to_string(AttackKind kind) {
  switch (kind) {
    case AttackKind::kNone:
      return "none";
    case AttackKind::kSignFlip:
      return "sign_flip";
    case AttackKind::kScaled:
      return "scaled";
    case AttackKind::kGaussianNoise:
      return "gaussian_noise";
  }
  return "?";
}

namespace {

void validate_attack(const AttackSpec& spec) {
  if (!std::isfinite(spec.scale)) {
    throw std::invalid_argument("AttackSpec: scale must be finite");
  }
  if (!std::isfinite(spec.noise_stddev) || spec.noise_stddev < 0.0) {
    throw std::invalid_argument(
        "AttackSpec: noise_stddev must be finite and >= 0");
  }
}

}  // namespace

ModelParameters apply_attack(const AttackSpec& spec, ModelParameters update,
                             const ModelParameters& reference,
                             std::size_t client, std::uint64_t nonce) {
  if (spec.kind == AttackKind::kNone) return update;
  validate_attack(spec);
  switch (spec.kind) {
    case AttackKind::kSignFlip:
    case AttackKind::kScaled: {
      // delta = update - reference, transformed and re-anchored.
      ModelParameters delta = std::move(update);
      delta.add_scaled(reference, -1.0);
      const double factor =
          spec.kind == AttackKind::kSignFlip ? -spec.scale : spec.scale;
      ModelParameters attacked = reference;
      attacked.add_scaled(delta, factor);
      return attacked;
    }
    case AttackKind::kGaussianNoise: {
      // Own sub-stream per (seed, client, nonce): applications from
      // different clients or rounds never share draws, so the attack
      // replays bit-identically whatever the host thread count.
      Rng root(spec.seed);
      Rng per_client = root.fork(client);
      Rng stream = per_client.fork(nonce);
      for (ParameterEntry& e : update.mutable_entries()) {
        float* d = e.value.data();
        const std::int64_t n = e.value.numel();
        for (std::int64_t i = 0; i < n; ++i) {
          d[i] += static_cast<float>(stream.normal(0.0, spec.noise_stddev));
        }
      }
      return update;
    }
    case AttackKind::kNone:
      break;
  }
  return update;
}

bool ClientProfile::is_online(double t) const {
  for (const OfflineWindow& w : offline) {
    if (t >= w.begin && t < w.end) return false;
  }
  return true;
}

double ClientProfile::next_online(double t) const {
  // Re-scan until no window covers t: windows may overlap or chain
  // (end of one inside another), and the list is not required to be
  // sorted. Each pass either leaves t unchanged (online) or moves it
  // strictly forward, so this terminates after at most |offline| moves.
  bool moved = true;
  while (moved) {
    moved = false;
    for (const OfflineWindow& w : offline) {
      if (t >= w.begin && t < w.end) {
        t = w.end;
        moved = true;
      }
    }
  }
  return t;
}

const ClientProfile& SimConfig::profile(std::size_t k) const {
  static const ClientProfile kDefault;
  return k < profiles.size() ? profiles[k] : kDefault;
}

SimConfig SimConfig::uniform(std::size_t n) {
  SimConfig config;
  config.profiles.assign(n, ClientProfile{});
  return config;
}

SimConfig SimConfig::with_straggler(std::size_t n, std::size_t idx,
                                    double slowdown) {
  if (idx >= n) throw std::invalid_argument("with_straggler: idx >= n");
  if (slowdown < 1.0) {
    throw std::invalid_argument("with_straggler: slowdown < 1");
  }
  SimConfig config = uniform(n);
  config.profiles[idx].compute_multiplier = slowdown;
  return config;
}

SimConfig SimConfig::heterogeneous(std::size_t n, std::uint64_t seed,
                                   double max_slowdown) {
  if (max_slowdown < 1.0) {
    throw std::invalid_argument("heterogeneous: max_slowdown < 1");
  }
  SimConfig config = uniform(n);
  Rng rng(seed);
  for (ClientProfile& p : config.profiles) {
    // Log-uniform in [1, max_slowdown]: most devices near the
    // reference, a heavy-ish tail of slow ones.
    p.compute_multiplier = std::exp(rng.uniform(0.0, std::log(max_slowdown)));
    // Link rates scattered 0.5x–2x around the channel defaults; 0 keeps
    // "inherit", so scatter is expressed as explicit rates off the
    // CommConfig default link.
    const CommConfig defaults;
    const double up_scale = std::exp(rng.uniform(std::log(0.5), std::log(2.0)));
    const double down_scale =
        std::exp(rng.uniform(std::log(0.5), std::log(2.0)));
    p.link.uplink_bytes_per_sec = defaults.uplink_bytes_per_sec * up_scale;
    p.link.downlink_bytes_per_sec =
        defaults.downlink_bytes_per_sec * down_scale;
  }
  return config;
}

SimConfig SimConfig::with_attackers(std::size_t n, std::size_t num_attackers,
                                    const AttackSpec& spec) {
  SimConfig config = uniform(n);
  add_attackers(config, num_attackers, spec);
  return config;
}

void add_attackers(SimConfig& config, std::size_t num_attackers,
                   const AttackSpec& spec) {
  validate_attack(spec);
  const std::size_t n = config.profiles.size();
  if (num_attackers > n) {
    throw std::invalid_argument("add_attackers: more attackers than clients");
  }
  if (num_attackers == 0) return;
  // Evenly spread over [0, n): attacker a sits at floor(a * n / f), so
  // uniform samplers and modular cluster assignments both see the
  // configured fraction instead of one contiguous poisoned block.
  for (std::size_t a = 0; a < num_attackers; ++a) {
    config.profiles[a * n / num_attackers].attack = spec;
  }
}

void add_periodic_dropout(SimConfig& config, std::size_t idx, double phase,
                          double period, double duration, int repeats) {
  if (idx >= config.profiles.size()) {
    throw std::invalid_argument("add_periodic_dropout: idx out of range");
  }
  if (period <= 0.0 || duration <= 0.0 || duration > period) {
    throw std::invalid_argument(
        "add_periodic_dropout: need 0 < duration <= period");
  }
  for (int i = 0; i < repeats; ++i) {
    const double begin = phase + static_cast<double>(i) * period;
    config.profiles[idx].offline.push_back({begin, begin + duration});
  }
}

}  // namespace fleda
