#include "sim/profile.hpp"

#include <cmath>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

#include "fl/parameters.hpp"
#include "util/rng.hpp"

namespace fleda {

const char* to_string(AttackKind kind) {
  switch (kind) {
    case AttackKind::kNone:
      return "none";
    case AttackKind::kSignFlip:
      return "sign_flip";
    case AttackKind::kScaled:
      return "scaled";
    case AttackKind::kGaussianNoise:
      return "gaussian_noise";
    case AttackKind::kAdaptiveScaled:
      return "adaptive_scaled";
    case AttackKind::kCollusion:
      return "collusion";
  }
  return "?";
}

AttackState::AttackState() = default;
AttackState::~AttackState() = default;
AttackState::AttackState(AttackState&&) noexcept = default;
AttackState& AttackState::operator=(AttackState&&) noexcept = default;

namespace {

void validate_attack(const AttackSpec& spec) {
  if (!std::isfinite(spec.scale) || spec.scale < 0.0) {
    throw std::invalid_argument(
        "AttackSpec: scale must be finite and >= 0 (a negative scale "
        "silently inverted the attack's meaning — use kSignFlip for a "
        "reversed delta)");
  }
  if (!std::isfinite(spec.noise_stddev) || spec.noise_stddev < 0.0) {
    throw std::invalid_argument(
        "AttackSpec: noise_stddev must be finite and >= 0");
  }
}

// Feeds this send's broadcast reference into the adaptive attacker's
// trajectory memory: step_norm_ema tracks ||ref_now - ref_prev|| over
// the client's successive sends, the attacker's view of how far the
// server's admitted aggregate moves the model between its downloads.
void observe_trajectory(AttackState& state, const ModelParameters& reference) {
  if (state.prev_reference != nullptr &&
      state.prev_reference->structurally_equal(reference)) {
    const double step =
        std::sqrt(state.prev_reference->squared_l2_distance(reference));
    if (std::isfinite(step) && step > 0.0) {
      state.step_norm_ema = state.observations == 0
                                ? step
                                : 0.5 * state.step_norm_ema + 0.5 * step;
      ++state.observations;
    }
    *state.prev_reference = reference;
  } else {
    state.prev_reference = std::make_unique<ModelParameters>(reference);
  }
}

}  // namespace

ModelParameters apply_attack(const AttackSpec& spec, ModelParameters update,
                             const ModelParameters& reference,
                             std::size_t client, std::uint64_t nonce,
                             AttackState* state) {
  if (spec.kind == AttackKind::kNone) return update;
  validate_attack(spec);
  switch (spec.kind) {
    case AttackKind::kSignFlip:
    case AttackKind::kScaled: {
      // delta = update - reference, transformed and re-anchored.
      ModelParameters delta = std::move(update);
      delta.add_scaled(reference, -1.0);
      const double factor =
          spec.kind == AttackKind::kSignFlip ? -spec.scale : spec.scale;
      ModelParameters attacked = reference;
      attacked.add_scaled(delta, factor);
      return attacked;
    }
    case AttackKind::kGaussianNoise: {
      // Own sub-stream per (seed, client, nonce): applications from
      // different clients or rounds never share draws, so the attack
      // replays bit-identically whatever the host thread count.
      Rng root(spec.seed);
      Rng per_client = root.fork(client);
      Rng stream = per_client.fork(nonce);
      for (ParameterEntry& e : update.mutable_entries()) {
        float* d = e.value.data();
        const std::int64_t n = e.value.numel();
        for (std::int64_t i = 0; i < n; ++i) {
          d[i] += static_cast<float>(stream.normal(0.0, spec.noise_stddev));
        }
      }
      return update;
    }
    case AttackKind::kAdaptiveScaled: {
      if (state != nullptr) observe_trajectory(*state, reference);
      ModelParameters delta = std::move(update);
      delta.add_scaled(reference, -1.0);
      const double honest_norm = std::sqrt(delta.squared_l2_norm());
      // Tolerance estimate: the EMA of observed server steps once the
      // trajectory has been seen, else the honest delta's own norm —
      // an adaptive attacker with no information degrades to a plain
      // sign flip at honest magnitude (which clipping cannot punish).
      const double tolerance =
          (state != nullptr && state->observations > 0)
              ? state->step_norm_ema
              : honest_norm;
      const double magnitude = spec.scale * tolerance;
      ModelParameters attacked = reference;
      if (honest_norm > 0.0 && std::isfinite(honest_norm)) {
        // Reversed honest direction, magnitude just inside what the
        // defense is believed to admit.
        attacked.add_scaled(delta, -magnitude / honest_norm);
      }
      return attacked;
    }
    case AttackKind::kCollusion: {
      ModelParameters delta = std::move(update);
      delta.add_scaled(reference, -1.0);
      const double honest_norm = std::sqrt(delta.squared_l2_norm());
      // The shared direction depends on the spec seed only — every
      // colluder with this spec pushes the model the same way, every
      // send. (Deliberately NOT forked per client/nonce: coordination
      // is the attack.)
      Rng stream(spec.seed);
      ModelParameters direction = reference;
      double dir_norm_sq = 0.0;
      for (ParameterEntry& e : direction.mutable_entries()) {
        float* d = e.value.data();
        const std::int64_t n = e.value.numel();
        for (std::int64_t i = 0; i < n; ++i) {
          d[i] = static_cast<float>(stream.normal(0.0, 1.0));
          dir_norm_sq += static_cast<double>(d[i]) * d[i];
        }
      }
      ModelParameters attacked = reference;
      if (dir_norm_sq > 0.0 && honest_norm > 0.0 &&
          std::isfinite(honest_norm)) {
        attacked.add_scaled(direction, spec.scale * honest_norm /
                                           std::sqrt(dir_norm_sq));
      }
      return attacked;
    }
    case AttackKind::kNone:
      break;
  }
  return update;
}

ModelParameters apply_attack(const AttackSpec& spec, ModelParameters update,
                             const ModelParameters& reference,
                             std::size_t client, std::uint64_t nonce) {
  return apply_attack(spec, std::move(update), reference, client, nonce,
                      /*state=*/nullptr);
}

bool ClientProfile::is_online(double t) const {
  for (const OfflineWindow& w : offline) {
    if (t >= w.begin && t < w.end) return false;
  }
  return true;
}

double ClientProfile::next_online(double t) const {
  // Re-scan until no window covers t: windows may overlap or chain
  // (end of one inside another), and the list is not required to be
  // sorted. Each pass either leaves t unchanged (online) or moves it
  // strictly forward, so this terminates after at most |offline| moves.
  bool moved = true;
  while (moved) {
    moved = false;
    for (const OfflineWindow& w : offline) {
      if (t >= w.begin && t < w.end) {
        t = w.end;
        moved = true;
      }
    }
  }
  return t;
}

const ClientProfile& SimConfig::profile(std::size_t k) const {
  static const ClientProfile kDefault;
  return k < profiles.size() ? profiles[k] : kDefault;
}

SimConfig SimConfig::uniform(std::size_t n) {
  SimConfig config;
  config.profiles.assign(n, ClientProfile{});
  return config;
}

SimConfig SimConfig::with_straggler(std::size_t n, std::size_t idx,
                                    double slowdown) {
  if (idx >= n) throw std::invalid_argument("with_straggler: idx >= n");
  if (slowdown < 1.0) {
    throw std::invalid_argument("with_straggler: slowdown < 1");
  }
  SimConfig config = uniform(n);
  config.profiles[idx].compute_multiplier = slowdown;
  return config;
}

SimConfig SimConfig::heterogeneous(std::size_t n, std::uint64_t seed,
                                   double max_slowdown) {
  if (max_slowdown < 1.0) {
    throw std::invalid_argument("heterogeneous: max_slowdown < 1");
  }
  SimConfig config = uniform(n);
  Rng rng(seed);
  for (ClientProfile& p : config.profiles) {
    // Log-uniform in [1, max_slowdown]: most devices near the
    // reference, a heavy-ish tail of slow ones.
    p.compute_multiplier = std::exp(rng.uniform(0.0, std::log(max_slowdown)));
    // Link rates scattered 0.5x–2x around the channel defaults; 0 keeps
    // "inherit", so scatter is expressed as explicit rates off the
    // CommConfig default link.
    const CommConfig defaults;
    const double up_scale = std::exp(rng.uniform(std::log(0.5), std::log(2.0)));
    const double down_scale =
        std::exp(rng.uniform(std::log(0.5), std::log(2.0)));
    p.link.uplink_bytes_per_sec = defaults.uplink_bytes_per_sec * up_scale;
    p.link.downlink_bytes_per_sec =
        defaults.downlink_bytes_per_sec * down_scale;
  }
  return config;
}

SimConfig SimConfig::with_attackers(std::size_t n, std::size_t num_attackers,
                                    const AttackSpec& spec) {
  SimConfig config = uniform(n);
  add_attackers(config, num_attackers, spec);
  return config;
}

void add_attackers(SimConfig& config, std::size_t num_attackers,
                   const AttackSpec& spec) {
  validate_attack(spec);
  const std::size_t n = config.profiles.size();
  if (num_attackers > n) {
    throw std::invalid_argument("add_attackers: more attackers than clients");
  }
  if (num_attackers == 0) return;
  // Evenly spread over [0, n): attacker a sits at floor(a * n / f), so
  // uniform samplers and modular cluster assignments both see the
  // configured fraction instead of one contiguous poisoned block.
  for (std::size_t a = 0; a < num_attackers; ++a) {
    config.profiles[a * n / num_attackers].attack = spec;
  }
}

SimConfig SimConfig::diurnal(std::size_t n, double day_s, int zones,
                             double night_fraction, int days) {
  if (!std::isfinite(day_s) || day_s <= 0.0) {
    throw std::invalid_argument("diurnal: day_s must be finite and > 0");
  }
  if (zones < 1) {
    throw std::invalid_argument("diurnal: zones must be >= 1");
  }
  if (!std::isfinite(night_fraction) || night_fraction < 0.0 ||
      night_fraction >= 1.0) {
    throw std::invalid_argument(
        "diurnal: night_fraction must be in [0, 1) — a full-day night "
        "would make a zone permanently offline");
  }
  if (days < 0) {
    throw std::invalid_argument("diurnal: days must be >= 0");
  }
  SimConfig config = uniform(n);
  if (night_fraction == 0.0 || days == 0) return config;
  const double night_s = night_fraction * day_s;
  for (std::size_t k = 0; k < n; ++k) {
    // Round-robin zone assignment; zone z's night starts z/zones of a
    // day later, so at any instant roughly night_fraction of the fleet
    // is dark — the availability wave the sampler and the async gate
    // must ride out.
    const int z = static_cast<int>(k % static_cast<std::size_t>(zones));
    const double zone_phase =
        day_s * static_cast<double>(z) / static_cast<double>(zones);
    add_periodic_dropout(config, k, zone_phase, day_s, night_s, days);
  }
  return config;
}

void add_periodic_dropout(SimConfig& config, std::size_t idx, double phase,
                          double period, double duration, int repeats) {
  if (idx >= config.profiles.size()) {
    throw std::invalid_argument("add_periodic_dropout: idx out of range");
  }
  if (!std::isfinite(phase) || phase < 0.0) {
    throw std::invalid_argument(
        "add_periodic_dropout: phase " + std::to_string(phase) +
        " must be finite and >= 0 (windows before t=0 never fire and "
        "used to shift the whole schedule silently)");
  }
  if (!std::isfinite(period) || !std::isfinite(duration) || period <= 0.0 ||
      duration <= 0.0 || duration > period) {
    throw std::invalid_argument(
        "add_periodic_dropout: need finite 0 < duration <= period (got "
        "period=" + std::to_string(period) +
        ", duration=" + std::to_string(duration) + ")");
  }
  if (repeats < 0) {
    throw std::invalid_argument(
        "add_periodic_dropout: repeats " + std::to_string(repeats) +
        " must be >= 0");
  }
  for (int i = 0; i < repeats; ++i) {
    const double begin = phase + static_cast<double>(i) * period;
    config.profiles[idx].offline.push_back({begin, begin + duration});
  }
}

}  // namespace fleda
