// SimEngine: the deterministic virtual-clock event engine the
// federated round loops run on. It owns the SimClock and EventQueue,
// knows every client's ClientProfile and link rates (per-client
// overrides falling back to the CommConfig shared defaults), converts
// message sizes and local-step counts into simulated durations, and
// records a typed event trace — the artifact the determinism tests
// compare bit-for-bit across thread-pool sizes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "comm/channel.hpp"
#include "sim/event_queue.hpp"
#include "sim/profile.hpp"

namespace fleda {

enum class SimEventKind : std::uint8_t {
  kDispatch = 0,      // server hands a model to a client
  kDownlinkDone = 1,  // client finished downloading
  kComputeDone = 2,   // client finished local training
  kUplinkDone = 3,    // server received the client's update
  kDropped = 4,       // update lost (client offline at delivery)
  kAggregate = 5,     // server produced a new global/cluster model
  kRoundEnd = 6,      // sync barrier released
};

const char* to_string(SimEventKind kind);

struct SimTraceEntry {
  double time = 0.0;
  SimEventKind kind = SimEventKind::kDispatch;
  int client = -1;  // -1: server-side event
  int round = -1;   // round / aggregation index, -1 if n/a

  bool operator==(const SimTraceEntry& other) const {
    return time == other.time && kind == other.kind &&
           client == other.client && round == other.round;
  }
};

// Summary of one simulated run, exported through FLRunOptions.
struct SimReport {
  double total_time_s = 0.0;
  std::uint64_t events_processed = 0;
  // Clock time at which tracing was (last) switched on. 0.0 when it was
  // enabled before the run; a positive value flags that `trace` has no
  // record of anything earlier — the gap is declared, not silent.
  double trace_start_s = 0.0;
  std::vector<SimTraceEntry> trace;  // empty unless tracing was enabled
};

class SimEngine {
 public:
  SimEngine(const SimConfig& config, const CommConfig& comm,
            std::size_t num_clients);

  double now() const { return clock_.now(); }
  std::size_t num_clients() const { return num_clients_; }
  const SimConfig& config() const { return config_; }
  const ClientProfile& profile(std::size_t k) const;

  // Schedules a traced event: when it fires, the (time, kind, client,
  // round) tuple is appended to the trace (if enabled) and `fn` — which
  // may be empty for pure bookkeeping marks — runs.
  void schedule(double time, SimEventKind kind, int client, int round,
                EventFn fn = {});

  // Appends a trace entry at the current clock time without scheduling
  // an event — for actions taken inside another event's callback
  // (a dispatch decision, an aggregation).
  void note(SimEventKind kind, int client, int round);

  // Drains the queue, advancing the clock through every event.
  void run_all();
  bool run_next() { return queue_.run_next(clock_); }
  bool idle() const { return queue_.empty(); }

  // Simulated durations -------------------------------------------
  // msgs * per-message latency + bytes / rate, with client k's link
  // overrides resolved against the CommConfig defaults (once, at
  // construction, through ClientLink::with_defaults).
  double download_duration(std::size_t k, std::uint64_t messages,
                           std::uint64_t bytes) const;
  double upload_duration(std::size_t k, std::uint64_t messages,
                         std::uint64_t bytes) const;
  // steps * step_time_s * compute_multiplier(k).
  double compute_duration(std::size_t k, int steps) const;

  // Trace ----------------------------------------------------------
  // Enabling mid-run starts recording from the current clock time; the
  // moment is stamped into SimReport::trace_start_s so consumers (and
  // the HTML visualizer) can tell a partial trace from a full one.
  void set_trace_enabled(bool enabled) {
    if (enabled && !trace_enabled_) trace_started_at_ = clock_.now();
    trace_enabled_ = enabled;
  }
  const std::vector<SimTraceEntry>& trace() const { return trace_; }
  std::uint64_t events_processed() const { return queue_.processed(); }
  SimReport report() const;

 private:
  const ClientLink& resolved_link(std::size_t k) const;

  SimConfig config_;
  std::size_t num_clients_ = 0;
  // Per-client links with the CommConfig defaults already filled in.
  std::vector<ClientLink> resolved_links_;
  ClientLink default_link_;
  SimClock clock_;
  EventQueue queue_;
  bool trace_enabled_ = false;
  double trace_started_at_ = 0.0;
  std::vector<SimTraceEntry> trace_;
};

}  // namespace fleda
