// Deterministic discrete-event core of the federated simulation
// engine. SimClock is a monotone virtual clock (seconds of simulated
// wall time, unrelated to host time); EventQueue is a priority queue of
// timestamped callbacks. Ties are broken by insertion order, so for a
// fixed schedule the execution order — and therefore everything the
// events compute — is reproducible bit-for-bit, independent of host
// thread count or load. Every other part of src/sim is built on these
// two types.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace fleda {

class SimClock {
 public:
  double now() const { return now_; }

  // Moves the clock forward. Throws std::logic_error on an attempt to
  // move it backwards — a scheduling bug, never a legal schedule.
  void advance_to(double t);

 private:
  double now_ = 0.0;
};

using EventFn = std::function<void()>;

class EventQueue {
 public:
  // Enqueues `fn` to run at virtual time `time` (>= the time of the
  // event currently executing; enforced by run via SimClock).
  void schedule(double time, EventFn fn);

  bool empty() const { return heap_.empty(); }
  std::size_t pending() const { return heap_.size(); }
  std::uint64_t processed() const { return processed_; }

  // Timestamp of the earliest pending event. Requires !empty().
  double next_time() const;

  // Pops the earliest event (ties in insertion order), advances the
  // clock to its timestamp and runs it. Returns false when no event
  // was pending.
  bool run_next(SimClock& clock);

  // Drains the queue. `max_events` bounds runaway self-scheduling
  // loops; exceeding it throws std::runtime_error.
  void run_all(SimClock& clock, std::uint64_t max_events = 100'000'000ull);

 private:
  struct Entry {
    double time = 0.0;
    std::uint64_t seq = 0;  // insertion order, the deterministic tiebreak
    EventFn fn;
  };
  struct After {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  // A std::vector-based heap instead of std::priority_queue so the
  // callback can be moved out of the popped entry.
  std::vector<Entry> heap_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace fleda
