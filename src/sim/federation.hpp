// FederationSim: binds the metered Channel to the SimEngine for one
// training run. Algorithms exchange parameters through channel() —
// which bills bytes per client — and close each round through a
// scheduling policy that turns the billed traffic into events on the
// virtual clock:
//
//   finish_sync_round  — the barrier policy used by every synchronous
//     algorithm: per cohort member, schedule download-complete,
//     compute-complete and upload-complete events (waiting out offline
//     windows), release the barrier at the slowest member's upload,
//     and close the channel round with the resulting duration. Clients
//     outside the cohort are neither scheduled nor billed — under a
//     sampling ParticipationPolicy a round costs O(|cohort|), and an
//     AvailabilityAware cohort skips offline clients instead of
//     stalling the barrier on them.
//   finish_local_round — compute-only (FineTune's client-side
//     personalization): advances the clock past the slowest client's
//     local steps without touching the channel.
//
// Asynchronous algorithms (fl/async_fedavg.cpp) bypass these policies
// and schedule their own per-message events directly on engine().
#pragma once

#include "comm/channel.hpp"
#include "sim/engine.hpp"

namespace fleda {

class TelemetrySink;

// ClientProfile link overrides, as Channel link entries.
std::vector<ClientLink> links_from_profiles(const SimConfig& config,
                                            std::size_t num_clients);

class FederationSim {
 public:
  FederationSim(Channel& channel, SimEngine& engine)
      : channel_(channel), engine_(engine) {}

  Channel& channel() { return channel_; }
  SimEngine& engine() { return engine_; }
  double now() const { return engine_.now(); }

  // Optional per-round telemetry (obs/telemetry.hpp). The round loops
  // record cohort composition into the sink; close_telemetry_round()
  // finalizes one record from the channel's latest round entry — the
  // sync barrier calls it itself, event-driven algorithms call it after
  // their own Channel::end_round. Null sink: all hooks are no-ops.
  void set_telemetry(TelemetrySink* sink) { telemetry_ = sink; }
  TelemetrySink* telemetry() const { return telemetry_; }
  void close_telemetry_round();

  // Sync barrier over a cohort: schedules each member's (download ->
  // `steps` local steps -> upload) chain from the traffic billed this
  // round, runs the events, and closes the channel round at the
  // slowest member. The no-cohort overload keeps the historical
  // full-participation barrier (every client with billed traffic).
  void finish_sync_round(int steps);
  void finish_sync_round(int steps, const std::vector<std::size_t>& cohort);

  // Compute-only phase, no exchange and no channel round entry.
  void finish_local_round(int steps);

 private:
  Channel& channel_;
  SimEngine& engine_;
  TelemetrySink* telemetry_ = nullptr;
  int round_index_ = 0;
};

}  // namespace fleda
