// FederationSim: binds the metered Channel to the SimEngine for one
// training run. Algorithms exchange parameters through channel() —
// which bills bytes per client — and close each round through a
// scheduling policy that turns the billed traffic into events on the
// virtual clock:
//
//   finish_sync_round  — the barrier policy used by every synchronous
//     algorithm: per cohort member, schedule download-complete,
//     compute-complete and upload-complete events (waiting out offline
//     windows), release the barrier at the slowest member's upload,
//     and close the channel round with the resulting duration. Clients
//     outside the cohort are neither scheduled nor billed — under a
//     sampling ParticipationPolicy a round costs O(|cohort|), and an
//     AvailabilityAware cohort skips offline clients instead of
//     stalling the barrier on them.
//   finish_local_round — compute-only (FineTune's client-side
//     personalization): advances the clock past the slowest client's
//     local steps without touching the channel.
//
// Asynchronous algorithms (fl/async_fedavg.cpp) bypass these policies
// and schedule their own per-message events directly on engine().
#pragma once

#include <deque>

#include "comm/channel.hpp"
#include "sim/engine.hpp"

namespace fleda {

class AnomalyDetector;
class ModelParameters;
class ReputationBook;
class TelemetrySink;

// ClientProfile link overrides, as Channel link entries.
std::vector<ClientLink> links_from_profiles(const SimConfig& config,
                                            std::size_t num_clients);

class FederationSim {
 public:
  FederationSim(Channel& channel, SimEngine& engine)
      : channel_(channel), engine_(engine) {}

  Channel& channel() { return channel_; }
  SimEngine& engine() { return engine_; }
  double now() const { return engine_.now(); }

  // Optional per-round telemetry (obs/telemetry.hpp). The round loops
  // record cohort composition into the sink; close_telemetry_round()
  // finalizes one record from the channel's latest round entry — the
  // sync barrier calls it itself, event-driven algorithms call it after
  // their own Channel::end_round. Null sink: all hooks are no-ops.
  void set_telemetry(TelemetrySink* sink) { telemetry_ = sink; }
  TelemetrySink* telemetry() const { return telemetry_; }
  void close_telemetry_round();

  // Optional server-side defense hooks (fl/anomaly.hpp). Both pointers
  // are caller-owned and may be null independently: a detector alone
  // records verdicts into telemetry; adding a book turns verdicts into
  // reputation updates. Pure observers — wiring them changes no model
  // math. Coordinator thread only.
  void set_anomaly(AnomalyDetector* detector, ReputationBook* reputation);
  AnomalyDetector* anomaly_detector() const { return detector_; }
  ReputationBook* reputation() const { return reputation_; }

  // Scores one cohort's updates against the references each client
  // trained from (deltas = update - reference, computed here), feeds
  // verdicts to the reputation book and the telemetry sink. No-op when
  // no detector is set. `references[i]` is the model deployed to
  // cohort[i]; `updates[i]` its returned parameters.
  void observe_cohort_updates(const std::vector<std::size_t>& cohort,
                              const std::vector<ModelParameters>& updates,
                              const std::vector<const ModelParameters*>& references);
  // Same, for callers that already hold deltas (async buffers).
  void observe_cohort_deltas(const std::vector<std::size_t>& clients,
                             const std::vector<const ModelParameters*>& deltas);

  // Per-client adaptive-attack state (sim/profile.hpp AttackState),
  // created lazily. Backed by a deque so references stay stable while
  // the table grows; each slot is only ever touched by its owning
  // client's apply_attack call, so handing slot pointers to a
  // parallel-for over distinct clients is race-free.
  AttackState* attack_state(std::size_t client);

  // Sync barrier over a cohort: schedules each member's (download ->
  // `steps` local steps -> upload) chain from the traffic billed this
  // round, runs the events, and closes the channel round at the
  // slowest member. The no-cohort overload keeps the historical
  // full-participation barrier (every client with billed traffic).
  void finish_sync_round(int steps);
  void finish_sync_round(int steps, const std::vector<std::size_t>& cohort);

  // Compute-only phase, no exchange and no channel round entry.
  void finish_local_round(int steps);

 private:
  Channel& channel_;
  SimEngine& engine_;
  TelemetrySink* telemetry_ = nullptr;
  AnomalyDetector* detector_ = nullptr;
  ReputationBook* reputation_ = nullptr;
  std::deque<AttackState> attack_states_;
  int round_index_ = 0;
};

}  // namespace fleda
