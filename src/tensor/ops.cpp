#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fleda {
namespace {

void check_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  if (a.shape() != b.shape()) {
    throw std::invalid_argument(std::string(op) + ": shape mismatch " +
                                a.shape().to_string() + " vs " +
                                b.shape().to_string());
  }
}

template <typename F>
Tensor map_unary(const Tensor& a, F f) {
  Tensor out(a.shape());
  const float* pa = a.data();
  float* po = out.data();
  const std::int64_t n = a.numel();
  for (std::int64_t i = 0; i < n; ++i) po[i] = f(pa[i]);
  return out;
}

template <typename F>
Tensor map_binary(const Tensor& a, const Tensor& b, F f, const char* op) {
  check_same_shape(a, b, op);
  Tensor out(a.shape());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  const std::int64_t n = a.numel();
  for (std::int64_t i = 0; i < n; ++i) po[i] = f(pa[i], pb[i]);
  return out;
}

}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  return map_binary(a, b, [](float x, float y) { return x + y; }, "add");
}
Tensor sub(const Tensor& a, const Tensor& b) {
  return map_binary(a, b, [](float x, float y) { return x - y; }, "sub");
}
Tensor mul(const Tensor& a, const Tensor& b) {
  return map_binary(a, b, [](float x, float y) { return x * y; }, "mul");
}

void add_inplace(Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "add_inplace");
  float* pa = a.data();
  const float* pb = b.data();
  const std::int64_t n = a.numel();
  for (std::int64_t i = 0; i < n; ++i) pa[i] += pb[i];
}

void sub_inplace(Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "sub_inplace");
  float* pa = a.data();
  const float* pb = b.data();
  const std::int64_t n = a.numel();
  for (std::int64_t i = 0; i < n; ++i) pa[i] -= pb[i];
}

void mul_inplace(Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "mul_inplace");
  float* pa = a.data();
  const float* pb = b.data();
  const std::int64_t n = a.numel();
  for (std::int64_t i = 0; i < n; ++i) pa[i] *= pb[i];
}

void scale_inplace(Tensor& a, float s) {
  float* pa = a.data();
  const std::int64_t n = a.numel();
  for (std::int64_t i = 0; i < n; ++i) pa[i] *= s;
}

void axpy(Tensor& y, float alpha, const Tensor& x) {
  check_same_shape(y, x, "axpy");
  float* py = y.data();
  const float* px = x.data();
  const std::int64_t n = y.numel();
  for (std::int64_t i = 0; i < n; ++i) py[i] += alpha * px[i];
}

Tensor scale(const Tensor& a, float s) {
  return map_unary(a, [s](float x) { return x * s; });
}

Tensor add_scalar(const Tensor& a, float s) {
  return map_unary(a, [s](float x) { return x + s; });
}

Tensor relu(const Tensor& a) {
  return map_unary(a, [](float x) { return x > 0.0f ? x : 0.0f; });
}

Tensor sigmoid(const Tensor& a) {
  return map_unary(a, [](float x) { return 1.0f / (1.0f + std::exp(-x)); });
}

Tensor clamp(const Tensor& a, float lo, float hi) {
  return map_unary(a, [lo, hi](float x) { return std::clamp(x, lo, hi); });
}

Tensor abs(const Tensor& a) {
  return map_unary(a, [](float x) { return std::fabs(x); });
}

float sum(const Tensor& a) {
  double acc = 0.0;
  const float* p = a.data();
  const std::int64_t n = a.numel();
  for (std::int64_t i = 0; i < n; ++i) acc += p[i];
  return static_cast<float>(acc);
}

float mean(const Tensor& a) {
  if (a.numel() == 0) return 0.0f;
  return sum(a) / static_cast<float>(a.numel());
}

float min_value(const Tensor& a) {
  if (a.numel() == 0) throw std::invalid_argument("min_value: empty tensor");
  return *std::min_element(a.data(), a.data() + a.numel());
}

float max_value(const Tensor& a) {
  if (a.numel() == 0) throw std::invalid_argument("max_value: empty tensor");
  return *std::max_element(a.data(), a.data() + a.numel());
}

double squared_norm(const Tensor& a) {
  double acc = 0.0;
  const float* p = a.data();
  const std::int64_t n = a.numel();
  for (std::int64_t i = 0; i < n; ++i) acc += static_cast<double>(p[i]) * p[i];
  return acc;
}

double dot(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "dot");
  double acc = 0.0;
  const float* pa = a.data();
  const float* pb = b.data();
  const std::int64_t n = a.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    acc += static_cast<double>(pa[i]) * pb[i];
  }
  return acc;
}

float max_abs_diff(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "max_abs_diff");
  float m = 0.0f;
  const float* pa = a.data();
  const float* pb = b.data();
  const std::int64_t n = a.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    m = std::max(m, std::fabs(pa[i] - pb[i]));
  }
  return m;
}

bool allclose(const Tensor& a, const Tensor& b, float rtol, float atol) {
  if (a.shape() != b.shape()) return false;
  const float* pa = a.data();
  const float* pb = b.data();
  const std::int64_t n = a.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    if (std::fabs(pa[i] - pb[i]) > atol + rtol * std::fabs(pb[i])) {
      return false;
    }
  }
  return true;
}

Tensor normalize01(const Tensor& a) {
  if (a.numel() == 0) return a;
  float lo = min_value(a);
  float hi = max_value(a);
  if (hi - lo < 1e-12f) return Tensor::zeros(a.shape());
  float inv = 1.0f / (hi - lo);
  return map_unary(a, [lo, inv](float x) { return (x - lo) * inv; });
}

}  // namespace fleda
