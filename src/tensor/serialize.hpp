// Binary (de)serialization of tensors, used for model checkpoints and
// cached datasets. Format: magic "FLT1", rank (u32), dims (i64 each),
// then raw little-endian float32 payload.
#pragma once

#include <iosfwd>
#include <string>

#include "tensor/tensor.hpp"

namespace fleda {

void write_tensor(std::ostream& out, const Tensor& t);
Tensor read_tensor(std::istream& in);

// Rebuilds a Shape from deserialized rank/dims, validating rank <=
// Shape::kMaxRank and dims >= 0; throws std::runtime_error otherwise.
// Shared by the FLT1 tensor reader and the comm FLC1 wire format.
Shape shape_from_dims(std::uint32_t rank, const std::int64_t* dims);

// File convenience wrappers; throw std::runtime_error on I/O failure.
void save_tensor(const std::string& path, const Tensor& t);
Tensor load_tensor(const std::string& path);

}  // namespace fleda
