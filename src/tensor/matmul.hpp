// Threaded dense matrix multiply kernels. Matrices are row-major
// float buffers described by (rows, cols); these are the hot kernels
// behind im2col-based convolution, so they avoid Tensor overhead and
// work on raw pointers.
#pragma once

#include <cstdint>

#include "tensor/tensor.hpp"

namespace fleda {

// C[m,n] = A[m,k] * B[k,n].  If accumulate is true, adds into C
// instead of overwriting.
void matmul(const float* a, const float* b, float* c, std::int64_t m,
            std::int64_t k, std::int64_t n, bool accumulate = false);

// C[m,n] = A^T[m,k] * B[k,n] where A is stored as [k,m].
void matmul_at(const float* a, const float* b, float* c, std::int64_t m,
               std::int64_t k, std::int64_t n, bool accumulate = false);

// C[m,n] = A[m,k] * B^T[k,n] where B is stored as [n,k].
void matmul_bt(const float* a, const float* b, float* c, std::int64_t m,
               std::int64_t k, std::int64_t n, bool accumulate = false);

// Tensor convenience wrapper: a is [m,k], b is [k,n], returns [m,n].
Tensor matmul(const Tensor& a, const Tensor& b);

}  // namespace fleda
