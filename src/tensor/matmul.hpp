// Threaded dense matrix multiply kernels. Matrices are row-major
// float buffers described by (rows, cols); these are the hot kernels
// behind im2col-based convolution, so they avoid Tensor overhead and
// work on raw pointers.
//
// The public matmul / matmul_at / matmul_bt entry points dispatch
// through the shape-keyed KernelPlanCache (tensor/plan.hpp): skinny
// shapes run the historical axpy kernels, fat shapes run the packed
// cache-blocked GEMM. The *_reference variants are the historical
// kernels verbatim — the planner's baseline strategy, also exposed for
// equivalence tests and the micro_kernels bench.
#pragma once

#include <cstdint>

#include "tensor/tensor.hpp"

namespace fleda {

// C[m,n] = A[m,k] * B[k,n].  If accumulate is true, adds into C
// instead of overwriting.
void matmul(const float* a, const float* b, float* c, std::int64_t m,
            std::int64_t k, std::int64_t n, bool accumulate = false);

// C[m,n] = A^T[m,k] * B[k,n] where A is stored as [k,m].
void matmul_at(const float* a, const float* b, float* c, std::int64_t m,
               std::int64_t k, std::int64_t n, bool accumulate = false);

// C[m,n] = A[m,k] * B^T[k,n] where B is stored as [n,k].
void matmul_bt(const float* a, const float* b, float* c, std::int64_t m,
               std::int64_t k, std::int64_t n, bool accumulate = false);

// The historical unblocked kernels, bypassing the planner.
void matmul_reference(const float* a, const float* b, float* c,
                      std::int64_t m, std::int64_t k, std::int64_t n,
                      bool accumulate = false);
void matmul_at_reference(const float* a, const float* b, float* c,
                         std::int64_t m, std::int64_t k, std::int64_t n,
                         bool accumulate = false);
void matmul_bt_reference(const float* a, const float* b, float* c,
                         std::int64_t m, std::int64_t k, std::int64_t n,
                         bool accumulate = false);

// Tensor convenience wrapper: a is [m,k], b is [k,n], returns [m,n].
Tensor matmul(const Tensor& a, const Tensor& b);

}  // namespace fleda
