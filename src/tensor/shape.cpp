#include "tensor/shape.hpp"

#include <sstream>
#include <stdexcept>

namespace fleda {

Shape::Shape(std::initializer_list<std::int64_t> dims) {
  if (dims.size() > static_cast<std::size_t>(kMaxRank)) {
    throw std::invalid_argument("Shape: rank > 4 not supported");
  }
  rank_ = static_cast<int>(dims.size());
  int i = 0;
  for (std::int64_t d : dims) {
    if (d < 0) throw std::invalid_argument("Shape: negative dimension");
    dims_[i++] = d;
  }
}

Shape Shape::of(std::int64_t d0) { return Shape{d0}; }
Shape Shape::of(std::int64_t d0, std::int64_t d1) { return Shape{d0, d1}; }
Shape Shape::of(std::int64_t d0, std::int64_t d1, std::int64_t d2) {
  return Shape{d0, d1, d2};
}
Shape Shape::of(std::int64_t d0, std::int64_t d1, std::int64_t d2,
                std::int64_t d3) {
  return Shape{d0, d1, d2, d3};
}

std::int64_t Shape::dim(int axis) const {
  if (axis < 0 || axis >= rank_) {
    throw std::out_of_range("Shape::dim: axis out of range");
  }
  return dims_[axis];
}

std::int64_t Shape::numel() const {
  std::int64_t n = 1;
  for (int i = 0; i < rank_; ++i) n *= dims_[i];
  return n;
}

bool Shape::operator==(const Shape& other) const {
  if (rank_ != other.rank_) return false;
  for (int i = 0; i < rank_; ++i) {
    if (dims_[i] != other.dims_[i]) return false;
  }
  return true;
}

std::string Shape::to_string() const {
  std::ostringstream out;
  out << "[";
  for (int i = 0; i < rank_; ++i) {
    if (i > 0) out << ", ";
    out << dims_[i];
  }
  out << "]";
  return out.str();
}

}  // namespace fleda
