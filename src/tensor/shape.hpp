// Shape: the dimension vector of a Tensor (up to 4 axes, NCHW order
// for images). Kept as a small fixed-capacity value type so shape
// manipulation never allocates.
#pragma once

#include <array>
#include <cstdint>
#include <initializer_list>
#include <string>

namespace fleda {

class Shape {
 public:
  static constexpr int kMaxRank = 4;

  Shape() = default;
  Shape(std::initializer_list<std::int64_t> dims);

  // Named constructors for the common ranks.
  static Shape of(std::int64_t d0);
  static Shape of(std::int64_t d0, std::int64_t d1);
  static Shape of(std::int64_t d0, std::int64_t d1, std::int64_t d2);
  static Shape of(std::int64_t d0, std::int64_t d1, std::int64_t d2,
                  std::int64_t d3);

  int rank() const { return rank_; }
  std::int64_t dim(int axis) const;
  std::int64_t operator[](int axis) const { return dim(axis); }

  // Total element count (1 for rank-0).
  std::int64_t numel() const;

  bool operator==(const Shape& other) const;
  bool operator!=(const Shape& other) const { return !(*this == other); }

  // "[2, 3, 32, 32]"
  std::string to_string() const;

 private:
  int rank_ = 0;
  std::array<std::int64_t, kMaxRank> dims_{};
};

}  // namespace fleda
