#include "tensor/im2col.hpp"

#include <cstring>

namespace fleda {

void im2col(const float* image, const ConvGeometry& g, float* cols) {
  const std::int64_t OH = g.out_height();
  const std::int64_t OW = g.out_width();
  const std::int64_t HW = g.height * g.width;

  std::int64_t row = 0;
  for (std::int64_t c = 0; c < g.channels; ++c) {
    const float* chan = image + c * HW;
    for (std::int64_t kh = 0; kh < g.kernel_h; ++kh) {
      for (std::int64_t kw = 0; kw < g.kernel_w; ++kw, ++row) {
        float* out_row = cols + row * (OH * OW);
        const std::int64_t ih0 = kh * g.dilation_h - g.pad_h;
        const std::int64_t iw0 = kw * g.dilation_w - g.pad_w;
        for (std::int64_t oh = 0; oh < OH; ++oh) {
          const std::int64_t ih = ih0 + oh * g.stride_h;
          float* dst = out_row + oh * OW;
          if (ih < 0 || ih >= g.height) {
            std::memset(dst, 0, sizeof(float) * OW);
            continue;
          }
          const float* src = chan + ih * g.width;
          for (std::int64_t ow = 0; ow < OW; ++ow) {
            const std::int64_t iw = iw0 + ow * g.stride_w;
            dst[ow] = (iw >= 0 && iw < g.width) ? src[iw] : 0.0f;
          }
        }
      }
    }
  }
}

void col2im(const float* cols, const ConvGeometry& g, float* image) {
  const std::int64_t OH = g.out_height();
  const std::int64_t OW = g.out_width();
  const std::int64_t HW = g.height * g.width;

  std::int64_t row = 0;
  for (std::int64_t c = 0; c < g.channels; ++c) {
    float* chan = image + c * HW;
    for (std::int64_t kh = 0; kh < g.kernel_h; ++kh) {
      for (std::int64_t kw = 0; kw < g.kernel_w; ++kw, ++row) {
        const float* in_row = cols + row * (OH * OW);
        const std::int64_t ih0 = kh * g.dilation_h - g.pad_h;
        const std::int64_t iw0 = kw * g.dilation_w - g.pad_w;
        for (std::int64_t oh = 0; oh < OH; ++oh) {
          const std::int64_t ih = ih0 + oh * g.stride_h;
          if (ih < 0 || ih >= g.height) continue;
          const float* src = in_row + oh * OW;
          float* dst = chan + ih * g.width;
          for (std::int64_t ow = 0; ow < OW; ++ow) {
            const std::int64_t iw = iw0 + ow * g.stride_w;
            if (iw >= 0 && iw < g.width) dst[iw] += src[ow];
          }
        }
      }
    }
  }
}

}  // namespace fleda
