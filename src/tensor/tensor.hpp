// Tensor: a dense float32 array with value semantics (copy-on-copy,
// move-aware) used throughout fleda for feature maps, model
// parameters, and gradients. Layout is row-major; image tensors use
// NCHW. This is deliberately a plain data container — all math lives
// in free functions (tensor/ops.hpp, tensor/matmul.hpp) and the nn
// layer implementations.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/shape.hpp"

namespace fleda {

class Tensor {
 public:
  Tensor() = default;

  // Allocates a zero-initialized tensor of the given shape.
  explicit Tensor(const Shape& shape);

  // Allocates and fills with `value`.
  Tensor(const Shape& shape, float value);

  // Wraps existing data (copied). data.size() must equal shape.numel().
  Tensor(const Shape& shape, std::vector<float> data);

  static Tensor zeros(const Shape& shape) { return Tensor(shape); }
  static Tensor full(const Shape& shape, float value) {
    return Tensor(shape, value);
  }
  static Tensor ones(const Shape& shape) { return full(shape, 1.0f); }

  const Shape& shape() const { return shape_; }
  std::int64_t numel() const { return static_cast<std::int64_t>(data_.size()); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float& operator[](std::int64_t i) { return data_[static_cast<std::size_t>(i)]; }
  float operator[](std::int64_t i) const {
    return data_[static_cast<std::size_t>(i)];
  }

  // NCHW element accessors (rank-4) and HW accessors (rank-2); bounds
  // are checked in debug builds via assert-style checks.
  float& at(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w);
  float at(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w) const;
  float& at(std::int64_t h, std::int64_t w);
  float at(std::int64_t h, std::int64_t w) const;

  // Reinterprets the buffer with a new shape of equal numel.
  Tensor reshaped(const Shape& new_shape) const;

  // Sets every element to `value`.
  void fill(float value);

  // Deep equality (exact float compare); mostly for tests.
  bool equals(const Tensor& other) const;

  std::string to_string(int max_elems = 16) const;

 private:
  Shape shape_;
  std::vector<float> data_;
};

}  // namespace fleda
