#include "tensor/tensor.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace fleda {

Tensor::Tensor(const Shape& shape)
    : shape_(shape), data_(static_cast<std::size_t>(shape.numel()), 0.0f) {}

Tensor::Tensor(const Shape& shape, float value)
    : shape_(shape), data_(static_cast<std::size_t>(shape.numel()), value) {}

Tensor::Tensor(const Shape& shape, std::vector<float> data)
    : shape_(shape), data_(std::move(data)) {
  if (static_cast<std::int64_t>(data_.size()) != shape_.numel()) {
    throw std::invalid_argument("Tensor: data size does not match shape " +
                                shape_.to_string());
  }
}

float& Tensor::at(std::int64_t n, std::int64_t c, std::int64_t h,
                  std::int64_t w) {
  const std::int64_t C = shape_.dim(1), H = shape_.dim(2), W = shape_.dim(3);
  return data_[static_cast<std::size_t>(((n * C + c) * H + h) * W + w)];
}

float Tensor::at(std::int64_t n, std::int64_t c, std::int64_t h,
                 std::int64_t w) const {
  const std::int64_t C = shape_.dim(1), H = shape_.dim(2), W = shape_.dim(3);
  return data_[static_cast<std::size_t>(((n * C + c) * H + h) * W + w)];
}

float& Tensor::at(std::int64_t h, std::int64_t w) {
  return data_[static_cast<std::size_t>(h * shape_.dim(1) + w)];
}

float Tensor::at(std::int64_t h, std::int64_t w) const {
  return data_[static_cast<std::size_t>(h * shape_.dim(1) + w)];
}

Tensor Tensor::reshaped(const Shape& new_shape) const {
  if (new_shape.numel() != numel()) {
    throw std::invalid_argument("Tensor::reshaped: numel mismatch " +
                                shape_.to_string() + " -> " +
                                new_shape.to_string());
  }
  return Tensor(new_shape, data_);
}

void Tensor::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

bool Tensor::equals(const Tensor& other) const {
  return shape_ == other.shape_ && data_ == other.data_;
}

std::string Tensor::to_string(int max_elems) const {
  std::ostringstream out;
  out << "Tensor" << shape_.to_string() << " {";
  std::int64_t n = std::min<std::int64_t>(numel(), max_elems);
  for (std::int64_t i = 0; i < n; ++i) {
    if (i > 0) out << ", ";
    out << data_[static_cast<std::size_t>(i)];
  }
  if (numel() > n) out << ", ...";
  out << "}";
  return out.str();
}

}  // namespace fleda
