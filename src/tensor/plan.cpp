#include "tensor/plan.hpp"

#include <atomic>
#include <cstdlib>
#include <deque>

#include "obs/profiler.hpp"
#include "util/thread_safety.hpp"

namespace fleda {
namespace {

// Cost-model cache sizes. Deliberately compile-time constants (not
// probed from the host) so a plan — and therefore every result bit —
// is a pure function of the GEMM shape.
constexpr std::int64_t kL1Bytes = 32 * 1024;
constexpr std::int64_t kL2Bytes = 1024 * 1024;

std::int64_t round_up(std::int64_t v, std::int64_t to) {
  return (v + to - 1) / to * to;
}

std::int64_t round_down(std::int64_t v, std::int64_t to) {
  return v / to * to;
}

std::atomic<int> g_plan_mode{-1};  // -1 = not yet read from env

PlanMode mode_from_env() {
  const char* env = std::getenv("FLEDA_PLAN");
  if (env != nullptr && std::string(env) == "reference") {
    return PlanMode::kReference;
  }
  return PlanMode::kAuto;  // default; unknown values fall back to auto
}

}  // namespace

const char* to_string(GemmOp op) {
  switch (op) {
    case GemmOp::kNN:
      return "nn";
    case GemmOp::kAT:
      return "at";
    case GemmOp::kBT:
      return "bt";
  }
  return "?";
}

const char* to_string(GemmStrategy strategy) {
  switch (strategy) {
    case GemmStrategy::kReference:
      return "reference";
    case GemmStrategy::kPacked:
      return "packed";
  }
  return "?";
}

PlanMode plan_mode() {
  int mode = g_plan_mode.load(std::memory_order_relaxed);
  if (mode < 0) {
    mode = static_cast<int>(mode_from_env());
    g_plan_mode.store(mode, std::memory_order_relaxed);
  }
  return static_cast<PlanMode>(mode);
}

void set_plan_mode(PlanMode mode) {
  g_plan_mode.store(static_cast<int>(mode), std::memory_order_relaxed);
}

std::string GemmPlan::to_string() const {
  std::string s = "gemm(";
  s += fleda::to_string(shape.op);
  s += ", m=" + std::to_string(shape.m) + ", k=" + std::to_string(shape.k) +
       ", n=" + std::to_string(shape.n) + ") -> ";
  s += fleda::to_string(strategy);
  if (strategy == GemmStrategy::kPacked) {
    s += "{mc=" + std::to_string(mc) + ", kc=" + std::to_string(kc) +
         ", nc=" + std::to_string(nc) + "}";
  }
  return s;
}

GemmPlan make_gemm_plan(GemmOp op, std::int64_t m, std::int64_t k,
                        std::int64_t n) {
  GemmPlan plan;
  plan.shape = GemmShape{op, m, k, n};
  plan.flops = 2.0 * static_cast<double>(m) * static_cast<double>(k) *
               static_cast<double>(n);

  // Packing pays for itself only when the B panels are reused across
  // several MR row-panels and the accumulator tile runs long enough in
  // k. Skinny shapes (vector-matrix products, rank-1 updates, tiny
  // tails) stay on the reference axpy/dot kernels, which stream those
  // shapes at close to memory speed already — and at k < ~48 the
  // reference kernels keep the whole B slab L1-resident per output row,
  // which packing cannot beat (measured: the k=32 deconv GEMM runs
  // 20% faster on reference).
  const bool fat = m >= 2 * kGemmMR && n >= 2 * kGemmNR && k >= 48 &&
                   m * k * n >= 32 * 1024;
  if (!fat) {
    plan.strategy = GemmStrategy::kReference;
    return plan;
  }

  plan.strategy = GemmStrategy::kPacked;
  // KC: one A micro-panel (MR*kc) plus one B micro-panel (NR*kc) of
  // floats should fit in L1 with room to spare for the C tile and the
  // streamed cache lines.
  const std::int64_t kc_budget =
      kL1Bytes / (static_cast<std::int64_t>(sizeof(float)) *
                  (kGemmMR + kGemmNR));
  plan.kc = std::min<std::int64_t>(k, round_down(kc_budget, 8));
  if (plan.kc < 8) plan.kc = std::min<std::int64_t>(k, 8);
  // NC: the packed B block (kc x nc floats) should occupy at most half
  // of L2, so it survives the sweep over all row panels.
  std::int64_t nc_budget =
      (kL2Bytes / 2) / (static_cast<std::int64_t>(sizeof(float)) * plan.kc);
  nc_budget = round_down(nc_budget, kGemmNR);
  if (nc_budget < kGemmNR) nc_budget = kGemmNR;
  plan.nc = std::min<std::int64_t>(round_up(n, kGemmNR), nc_budget);
  // MC: the row-panel span handed to one parallel_for chunk; MR-aligned
  // so partitions never split a micro-panel.
  plan.mc = std::min<std::int64_t>(round_up(m, kGemmMR), 96);
  return plan;
}

// --------------------------------------------------------------------
// KernelPlanCache

namespace {

constexpr std::size_t kNumShards = 8;

std::size_t shard_index(const GemmShape& s) {
  // FNV-1a over the shape fields; shard by the low bits.
  std::uint64_t h = 1469598103934665603ull;
  const std::uint64_t fields[4] = {
      static_cast<std::uint64_t>(s.op), static_cast<std::uint64_t>(s.m),
      static_cast<std::uint64_t>(s.k), static_cast<std::uint64_t>(s.n)};
  for (std::uint64_t f : fields) {
    h ^= f;
    h *= 1099511628211ull;
  }
  return static_cast<std::size_t>(h % kNumShards);
}

// Per-thread memo of the most recent plans: the per-sample GEMM loops
// of a conv layer hit the same handful of shapes thousands of times,
// and this keeps even the shared-lock acquisition off that path. The
// epoch invalidates every memo when a cache is cleared.
struct PlanMemoEntry {
  const void* cache = nullptr;
  std::uint64_t epoch = 0;
  GemmShape shape;
  GemmPlan plan;
  bool valid = false;
};

constexpr std::size_t kMemoSlots = 4;

thread_local PlanMemoEntry t_plan_memo[kMemoSlots];
thread_local std::size_t t_plan_memo_next = 0;

std::atomic<std::uint64_t> g_plan_epoch{1};

}  // namespace

struct KernelPlanCache::Shard {
  mutable SharedMutex mutex;
  // Insertion-ordered (deque front = oldest) for FIFO eviction; linear
  // search is fine at these sizes (a run holds tens of shapes).
  std::deque<std::pair<GemmShape, GemmPlan>> entries FLEDA_GUARDED_BY(mutex);
  // Stats are atomics precisely so the read paths can bump them under
  // only the shared (reader) lock.
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> misses{0};
  std::atomic<std::uint64_t> evictions{0};
};

KernelPlanCache::KernelPlanCache(std::size_t capacity_per_shard)
    : shards_(new Shard[kNumShards]),
      capacity_per_shard_(capacity_per_shard > 0 ? capacity_per_shard : 1) {}

KernelPlanCache::~KernelPlanCache() {
  delete[] shards_;
  // A later cache may reuse this address; the epoch bump keeps stale
  // thread-local memo entries from answering for it.
  g_plan_epoch.fetch_add(1, std::memory_order_acq_rel);
}

KernelPlanCache& KernelPlanCache::global() {
  static KernelPlanCache cache;
  return cache;
}

GemmPlan KernelPlanCache::lookup_or_plan(const GemmShape& shape) {
  Shard& shard = shards_[shard_index(shape)];
  {
    SharedReaderLock lock(shard.mutex);
    for (const auto& entry : shard.entries) {
      if (entry.first == shape) {
        shard.hits.fetch_add(1, std::memory_order_relaxed);
        return entry.second;
      }
    }
  }
  // Miss: plan outside any lock (the cost model is pure), then insert
  // under the exclusive lock, rechecking for a racing inserter.
  shard.misses.fetch_add(1, std::memory_order_relaxed);
  GemmPlan plan;
  {
    ProfileScope planning(phase::kKernelPlan);
    plan = make_gemm_plan(shape.op, shape.m, shape.k, shape.n);
  }
  SharedWriterLock lock(shard.mutex);
  for (const auto& entry : shard.entries) {
    if (entry.first == shape) return entry.second;
  }
  shard.entries.emplace_back(shape, plan);
  while (shard.entries.size() > capacity_per_shard_) {
    shard.entries.pop_front();
    shard.evictions.fetch_add(1, std::memory_order_relaxed);
  }
  return plan;
}

GemmPlan KernelPlanCache::plan_for(GemmOp op, std::int64_t m, std::int64_t k,
                                   std::int64_t n) {
  if (plan_mode() == PlanMode::kReference) {
    GemmPlan plan;
    plan.shape = GemmShape{op, m, k, n};
    plan.strategy = GemmStrategy::kReference;
    plan.flops = 2.0 * static_cast<double>(m) * static_cast<double>(k) *
                 static_cast<double>(n);
    return plan;
  }
  const GemmShape shape{op, m, k, n};
  const std::uint64_t epoch = g_plan_epoch.load(std::memory_order_acquire);
  for (const PlanMemoEntry& memo : t_plan_memo) {
    if (memo.valid && memo.cache == this && memo.epoch == epoch &&
        memo.shape == shape) {
      // A memo hit is logically a cache hit; one relaxed add keeps the
      // stats honest without taking any lock.
      memo_hits_.fetch_add(1, std::memory_order_relaxed);
      return memo.plan;
    }
  }
  GemmPlan plan = lookup_or_plan(shape);
  PlanMemoEntry& slot = t_plan_memo[t_plan_memo_next];
  t_plan_memo_next = (t_plan_memo_next + 1) % kMemoSlots;
  slot.cache = this;
  slot.epoch = epoch;
  slot.shape = shape;
  slot.plan = plan;
  slot.valid = true;
  return plan;
}

PlanCacheStats KernelPlanCache::stats() const {
  PlanCacheStats stats;
  stats.hits = memo_hits_.load(std::memory_order_relaxed);
  for (std::size_t s = 0; s < kNumShards; ++s) {
    const Shard& shard = shards_[s];
    stats.hits += shard.hits.load(std::memory_order_relaxed);
    stats.misses += shard.misses.load(std::memory_order_relaxed);
    stats.evictions += shard.evictions.load(std::memory_order_relaxed);
    SharedReaderLock lock(shard.mutex);
    stats.entries += shard.entries.size();
  }
  return stats;
}

void KernelPlanCache::clear() {
  for (std::size_t s = 0; s < kNumShards; ++s) {
    Shard& shard = shards_[s];
    SharedWriterLock lock(shard.mutex);
    shard.entries.clear();
    shard.hits.store(0, std::memory_order_relaxed);
    shard.misses.store(0, std::memory_order_relaxed);
    shard.evictions.store(0, std::memory_order_relaxed);
  }
  memo_hits_.store(0, std::memory_order_relaxed);
  g_plan_epoch.fetch_add(1, std::memory_order_acq_rel);
}

}  // namespace fleda
