#include "tensor/serialize.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace fleda {
namespace {

constexpr char kMagic[4] = {'F', 'L', 'T', '1'};

}  // namespace

Shape shape_from_dims(std::uint32_t rank, const std::int64_t* dims) {
  if (rank > static_cast<std::uint32_t>(Shape::kMaxRank)) {
    throw std::runtime_error("shape_from_dims: bad rank");
  }
  for (std::uint32_t i = 0; i < rank; ++i) {
    if (dims[i] < 0) throw std::runtime_error("shape_from_dims: bad dim");
  }
  switch (rank) {
    case 0:
      return Shape{};
    case 1:
      return Shape::of(dims[0]);
    case 2:
      return Shape::of(dims[0], dims[1]);
    case 3:
      return Shape::of(dims[0], dims[1], dims[2]);
    default:
      return Shape::of(dims[0], dims[1], dims[2], dims[3]);
  }
}

void write_tensor(std::ostream& out, const Tensor& t) {
  out.write(kMagic, 4);
  std::uint32_t rank = static_cast<std::uint32_t>(t.shape().rank());
  out.write(reinterpret_cast<const char*>(&rank), sizeof(rank));
  for (int i = 0; i < t.shape().rank(); ++i) {
    std::int64_t d = t.shape().dim(i);
    out.write(reinterpret_cast<const char*>(&d), sizeof(d));
  }
  out.write(reinterpret_cast<const char*>(t.data()),
            static_cast<std::streamsize>(t.numel() * sizeof(float)));
  if (!out) throw std::runtime_error("write_tensor: stream failure");
}

Tensor read_tensor(std::istream& in) {
  char magic[4];
  in.read(magic, 4);
  if (!in || std::memcmp(magic, kMagic, 4) != 0) {
    throw std::runtime_error("read_tensor: bad magic");
  }
  std::uint32_t rank = 0;
  in.read(reinterpret_cast<char*>(&rank), sizeof(rank));
  if (!in || rank > static_cast<std::uint32_t>(Shape::kMaxRank)) {
    throw std::runtime_error("read_tensor: bad rank");
  }
  std::int64_t dims[Shape::kMaxRank] = {0, 0, 0, 0};
  for (std::uint32_t i = 0; i < rank; ++i) {
    in.read(reinterpret_cast<char*>(&dims[i]), sizeof(std::int64_t));
    if (!in || dims[i] < 0) throw std::runtime_error("read_tensor: bad dim");
  }
  Tensor t(shape_from_dims(rank, dims));
  in.read(reinterpret_cast<char*>(t.data()),
          static_cast<std::streamsize>(t.numel() * sizeof(float)));
  if (!in) throw std::runtime_error("read_tensor: truncated payload");
  return t;
}

void save_tensor(const std::string& path, const Tensor& t) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("save_tensor: cannot open " + path);
  write_tensor(out, t);
}

Tensor load_tensor(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_tensor: cannot open " + path);
  return read_tensor(in);
}

}  // namespace fleda
