// im2col / col2im for strided, padded, dilated 2D convolution.
//
// im2col lowers a [C,H,W] image into a [C*kh*kw, OH*OW] column matrix
// so convolution becomes a matmul with the [Cout, C*kh*kw] weight
// matrix; col2im is its exact adjoint (scatter-add), used both for
// conv backward-data and for ConvTranspose2d forward.
#pragma once

#include <cstdint>

namespace fleda {

struct ConvGeometry {
  std::int64_t channels = 0;
  std::int64_t height = 0;
  std::int64_t width = 0;
  std::int64_t kernel_h = 0;
  std::int64_t kernel_w = 0;
  std::int64_t pad_h = 0;
  std::int64_t pad_w = 0;
  std::int64_t stride_h = 1;
  std::int64_t stride_w = 1;
  std::int64_t dilation_h = 1;
  std::int64_t dilation_w = 1;

  std::int64_t out_height() const {
    std::int64_t eff_k = dilation_h * (kernel_h - 1) + 1;
    return (height + 2 * pad_h - eff_k) / stride_h + 1;
  }
  std::int64_t out_width() const {
    std::int64_t eff_k = dilation_w * (kernel_w - 1) + 1;
    return (width + 2 * pad_w - eff_k) / stride_w + 1;
  }
  std::int64_t col_rows() const { return channels * kernel_h * kernel_w; }
  std::int64_t col_cols() const { return out_height() * out_width(); }
};

// image: [C,H,W] contiguous. cols: [col_rows, col_cols] contiguous,
// fully overwritten (padding positions become 0).
void im2col(const float* image, const ConvGeometry& g, float* cols);

// Adjoint of im2col: scatter-adds cols back into image. The image
// buffer must be zeroed by the caller if overwrite semantics are
// desired.
void col2im(const float* cols, const ConvGeometry& g, float* image);

}  // namespace fleda
