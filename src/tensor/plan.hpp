// Shape-keyed kernel planner for the dense GEMM family.
//
// Every matmul / matmul_at / matmul_bt call consults a KernelPlanCache
// keyed by (op, m, k, n): the first call for a shape runs a small cost
// model (shape vs the L1/L2 working sets) and decides between the
// historical axpy kernels ("reference" — best for skinny shapes) and a
// packed cache-blocked GEMM ("packed" — B panels packed into aligned
// scratch, a register-tiled MR x NR micro-kernel, and MC/KC/NC cache
// blocking). The decision is cached and reused for the rest of the
// process, which is the poplibs ConvPlan/ConvReuse pattern: conv layer
// shapes never change across a federated run, so the planning cost is
// paid once per shape, not once per step.
//
// Determinism contract: a plan is a pure function of the shape (never
// of the thread-pool size), the packed kernel partitions rows into
// fixed MR panels, and every C element accumulates its KC blocks in
// ascending order — so results are bit-identical across thread-pool
// sizes, exactly like the reference kernels. Packed and reference
// *summation orders* differ, so the two strategies agree only to
// floating-point tolerance; FLEDA_PLAN=reference forces the historical
// kernels everywhere when bit-compatibility with old runs matters.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace fleda {

// Which logical GEMM a plan serves. The operand layout is implied:
//   kNN: C[m,n] = A[m,k]   * B[k,n]    (A row-major [m,k], B [k,n])
//   kAT: C[m,n] = A^T      * B[k,n]    (A stored [k,m],    B [k,n])
//   kBT: C[m,n] = A[m,k]   * B^T       (A row-major [m,k], B stored [n,k])
enum class GemmOp : std::uint8_t { kNN = 0, kAT = 1, kBT = 2 };
const char* to_string(GemmOp op);

enum class GemmStrategy : std::uint8_t { kReference = 0, kPacked = 1 };
const char* to_string(GemmStrategy strategy);

// FLEDA_PLAN=reference forces the historical kernels for every shape;
// FLEDA_PLAN=auto (the default) lets the cost model choose.
enum class PlanMode : std::uint8_t { kAuto = 0, kReference = 1 };
PlanMode plan_mode();
void set_plan_mode(PlanMode mode);  // overrides the environment

// Register micro-tile of the packed kernel: MR rows x NR columns of C
// held in accumulators across a whole KC block.
inline constexpr std::int64_t kGemmMR = 4;
inline constexpr std::int64_t kGemmNR = 8;

struct GemmShape {
  GemmOp op = GemmOp::kNN;
  std::int64_t m = 0;
  std::int64_t k = 0;
  std::int64_t n = 0;

  bool operator==(const GemmShape& other) const {
    return op == other.op && m == other.m && k == other.k && n == other.n;
  }
};

struct GemmPlan {
  GemmShape shape;
  GemmStrategy strategy = GemmStrategy::kReference;
  // Cache blocking (packed strategy only). mc/nc are MR/NR multiples;
  // kc is the unrolled depth of one packed panel pass.
  std::int64_t mc = 0;
  std::int64_t kc = 0;
  std::int64_t nc = 0;
  double flops = 0.0;  // 2*m*k*n, for bench reporting

  std::string to_string() const;
};

// The cost model: pure function of shape (and compile-time cache-size
// constants), never of thread count or environment. Exposed so tests
// and benches can force strategies without going through the cache.
GemmPlan make_gemm_plan(GemmOp op, std::int64_t m, std::int64_t k,
                        std::int64_t n);

struct PlanCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;
};

// Sharded, read-mostly plan cache. Lookups take a shared lock on one
// shard (readers never serialize each other) after a thread-local memo
// of the most recent shapes, so the per-matmul overhead in a
// parallel_for worker is a handful of loads. Plans are returned by
// value — eviction can never dangle a caller's plan.
class KernelPlanCache {
 public:
  // `capacity_per_shard` bounds each shard; the oldest entry is evicted
  // (FIFO) when a shard overflows. The default is far above what any
  // real model needs (a run has tens of distinct GEMM shapes).
  explicit KernelPlanCache(std::size_t capacity_per_shard = 64);
  ~KernelPlanCache();

  KernelPlanCache(const KernelPlanCache&) = delete;
  KernelPlanCache& operator=(const KernelPlanCache&) = delete;

  static KernelPlanCache& global();

  // The plan for a shape under the current PlanMode: kReference mode
  // short-circuits to a reference plan without touching the cache;
  // kAuto consults the cache and runs the cost model on a miss (inside
  // a kernel/plan profiler span).
  GemmPlan plan_for(GemmOp op, std::int64_t m, std::int64_t k,
                    std::int64_t n);

  PlanCacheStats stats() const;

  // Drops every entry and zeroes the stats; invalidates the per-thread
  // memos via an epoch bump. Not for hot paths.
  void clear();

 private:
  struct Shard;
  GemmPlan lookup_or_plan(const GemmShape& shape);

  Shard* shards_;
  std::size_t capacity_per_shard_;
  std::atomic<std::uint64_t> memo_hits_{0};
};

// ---------------------------------------------------------------------
// Packed kernel entry points (gemm_packed.cpp). All of them require
// plan.strategy == kPacked and operate on the layouts implied by
// plan.shape.op.

// Elements (floats) of a fully packed A operand for `plan` — the
// zero-padded MR micro-panel layout reused across many GEMM calls
// (conv packs its weight matrix once per step and shares the panels
// across the whole batch).
std::size_t packed_a_elems(const GemmPlan& plan);

// Packs the whole A operand into `apack` (packed_a_elems floats,
// ideally 64-byte aligned). Rows beyond m inside the last MR panel are
// zero-filled.
void pack_a(const GemmPlan& plan, const float* a, float* apack);

// C = A*B (+C when accumulate) under `plan`. Packs B panels into the
// calling thread's aligned scratch and A micro-panels on the fly.
void gemm_packed(const GemmPlan& plan, const float* a, const float* b,
                 float* c, bool accumulate);

// Same, but A was packed up front with pack_a (shared, read-only —
// safe to use concurrently from batch-parallel workers).
void gemm_packed_prepacked_a(const GemmPlan& plan, const float* apack,
                             const float* b, float* c, bool accumulate);

}  // namespace fleda
