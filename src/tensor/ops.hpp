// Elementwise and reduction operations on Tensor. All functions are
// shape-checked and either return a new tensor or mutate an explicit
// output parameter (suffix _inplace / axpy-style names).
#pragma once

#include "tensor/tensor.hpp"

namespace fleda {

// ---- elementwise (shapes must match) ----
Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);

void add_inplace(Tensor& a, const Tensor& b);        // a += b
void sub_inplace(Tensor& a, const Tensor& b);        // a -= b
void mul_inplace(Tensor& a, const Tensor& b);        // a *= b
void scale_inplace(Tensor& a, float s);              // a *= s
void axpy(Tensor& y, float alpha, const Tensor& x);  // y += alpha * x

Tensor scale(const Tensor& a, float s);
Tensor add_scalar(const Tensor& a, float s);

// ---- nonlinearities used outside nn layers (feature post-processing) ----
Tensor relu(const Tensor& a);
Tensor sigmoid(const Tensor& a);
Tensor clamp(const Tensor& a, float lo, float hi);
Tensor abs(const Tensor& a);

// ---- reductions ----
float sum(const Tensor& a);
float mean(const Tensor& a);
float min_value(const Tensor& a);
float max_value(const Tensor& a);
// Squared L2 norm of all elements.
double squared_norm(const Tensor& a);
// Dot product of equally-shaped tensors.
double dot(const Tensor& a, const Tensor& b);

// ---- comparisons ----
// max |a_i - b_i|; shapes must match.
float max_abs_diff(const Tensor& a, const Tensor& b);
// true iff all |a_i - b_i| <= atol + rtol * |b_i|.
bool allclose(const Tensor& a, const Tensor& b, float rtol = 1e-5f,
              float atol = 1e-7f);

// ---- normalization helpers for feature maps ----
// Linearly rescales to [0, 1]; constant tensors map to all-zeros.
Tensor normalize01(const Tensor& a);

}  // namespace fleda
