#include "tensor/matmul.hpp"

#include <cstring>
#include <stdexcept>

#include "tensor/plan.hpp"
#include "util/thread_pool.hpp"

namespace fleda {
namespace {

// Inner kernel: crow[0..n) += sum_{t<4} a_t * b_t[0..n). Processing
// four B rows per pass quarters the store traffic relative to a plain
// saxpy loop, which is what limits throughput on wide rows.
inline void axpy4(float* crow, const float* a4, const float* b0,
                  const float* b1, const float* b2, const float* b3,
                  std::int64_t n) {
  const float a0 = a4[0], a1 = a4[1], a2 = a4[2], a3 = a4[3];
  for (std::int64_t j = 0; j < n; ++j) {
    crow[j] += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
  }
}

// No a == 0 shortcut: 0 * NaN must stay NaN. Skipping the row would
// silently drop non-finite values arriving through B, and the planner's
// strategies must agree exactly on which inputs poison the output.
inline void axpy1(float* crow, float a, const float* brow, std::int64_t n) {
  for (std::int64_t j = 0; j < n; ++j) crow[j] += a * brow[j];
}

}  // namespace

void matmul_reference(const float* a, const float* b, float* c,
                      std::int64_t m, std::int64_t k, std::int64_t n,
                      bool accumulate) {
  parallel_for(
      static_cast<std::size_t>(m),
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          float* crow = c + i * n;
          if (!accumulate) std::memset(crow, 0, sizeof(float) * n);
          const float* arow = a + i * k;
          std::int64_t p = 0;
          for (; p + 4 <= k; p += 4) {
            axpy4(crow, arow + p, b + p * n, b + (p + 1) * n, b + (p + 2) * n,
                  b + (p + 3) * n, n);
          }
          for (; p < k; ++p) axpy1(crow, arow[p], b + p * n, n);
        }
      },
      /*grain=*/4);
}

void matmul_at_reference(const float* a, const float* b, float* c,
                         std::int64_t m, std::int64_t k, std::int64_t n,
                         bool accumulate) {
  // C[i,j] = sum_p A[p,i] * B[p,j] with A stored [k,m].
  parallel_for(
      static_cast<std::size_t>(m),
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          float* crow = c + i * n;
          if (!accumulate) std::memset(crow, 0, sizeof(float) * n);
          std::int64_t p = 0;
          for (; p + 4 <= k; p += 4) {
            const float a4[4] = {
                a[p * m + static_cast<std::int64_t>(i)],
                a[(p + 1) * m + static_cast<std::int64_t>(i)],
                a[(p + 2) * m + static_cast<std::int64_t>(i)],
                a[(p + 3) * m + static_cast<std::int64_t>(i)]};
            axpy4(crow, a4, b + p * n, b + (p + 1) * n, b + (p + 2) * n,
                  b + (p + 3) * n, n);
          }
          for (; p < k; ++p) {
            axpy1(crow, a[p * m + static_cast<std::int64_t>(i)], b + p * n, n);
          }
        }
      },
      /*grain=*/4);
}

void matmul_bt_reference(const float* a, const float* b, float* c,
                         std::int64_t m, std::int64_t k, std::int64_t n,
                         bool accumulate) {
  // C[i,j] = sum_p A[i,p] * B[j,p]; contiguous dot products with four
  // independent accumulators for instruction-level parallelism.
  parallel_for(
      static_cast<std::size_t>(m),
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          const float* arow = a + i * k;
          float* crow = c + i * n;
          for (std::int64_t j = 0; j < n; ++j) {
            const float* brow = b + j * k;
            float acc0 = 0.0f, acc1 = 0.0f, acc2 = 0.0f, acc3 = 0.0f;
            std::int64_t p = 0;
            for (; p + 4 <= k; p += 4) {
              acc0 += arow[p] * brow[p];
              acc1 += arow[p + 1] * brow[p + 1];
              acc2 += arow[p + 2] * brow[p + 2];
              acc3 += arow[p + 3] * brow[p + 3];
            }
            float acc = (acc0 + acc1) + (acc2 + acc3);
            for (; p < k; ++p) acc += arow[p] * brow[p];
            if (accumulate) {
              crow[j] += acc;
            } else {
              crow[j] = acc;
            }
          }
        }
      },
      /*grain=*/4);
}

// Planner dispatch: one cached-plan lookup, then the strategy the cost
// model picked for this shape.

void matmul(const float* a, const float* b, float* c, std::int64_t m,
            std::int64_t k, std::int64_t n, bool accumulate) {
  const GemmPlan plan =
      KernelPlanCache::global().plan_for(GemmOp::kNN, m, k, n);
  if (plan.strategy == GemmStrategy::kPacked) {
    gemm_packed(plan, a, b, c, accumulate);
    return;
  }
  matmul_reference(a, b, c, m, k, n, accumulate);
}

void matmul_at(const float* a, const float* b, float* c, std::int64_t m,
               std::int64_t k, std::int64_t n, bool accumulate) {
  const GemmPlan plan =
      KernelPlanCache::global().plan_for(GemmOp::kAT, m, k, n);
  if (plan.strategy == GemmStrategy::kPacked) {
    gemm_packed(plan, a, b, c, accumulate);
    return;
  }
  matmul_at_reference(a, b, c, m, k, n, accumulate);
}

void matmul_bt(const float* a, const float* b, float* c, std::int64_t m,
               std::int64_t k, std::int64_t n, bool accumulate) {
  const GemmPlan plan =
      KernelPlanCache::global().plan_for(GemmOp::kBT, m, k, n);
  if (plan.strategy == GemmStrategy::kPacked) {
    gemm_packed(plan, a, b, c, accumulate);
    return;
  }
  matmul_bt_reference(a, b, c, m, k, n, accumulate);
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  if (a.shape().rank() != 2 || b.shape().rank() != 2) {
    throw std::invalid_argument("matmul: expects rank-2 tensors");
  }
  std::int64_t m = a.shape().dim(0);
  std::int64_t k = a.shape().dim(1);
  if (b.shape().dim(0) != k) {
    throw std::invalid_argument("matmul: inner dimension mismatch " +
                                a.shape().to_string() + " x " +
                                b.shape().to_string());
  }
  std::int64_t n = b.shape().dim(1);
  Tensor c(Shape::of(m, n));
  matmul(a.data(), b.data(), c.data(), m, k, n, /*accumulate=*/false);
  return c;
}

}  // namespace fleda
