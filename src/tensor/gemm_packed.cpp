// Packed cache-blocked GEMM — the planner's "fat shape" strategy.
//
// Classic three-loop blocking (the BLIS/poplibs structure, scalar C++
// left to the compiler's vectorizer):
//
//   for jc over n in NC columns:                 L2-resident B block
//     for pc over k in KC depth slices:
//       pack B(pc:kc, jc:nc) into NR-wide micro-panels (aligned scratch)
//       parallel_for over MR row panels:         deterministic partition
//         pack A(panel, pc:kc) into an MR-wide micro-panel
//         for each B micro-panel: MR x NR register tile over kc,
//           then store (pc == 0) or accumulate (pc > 0) into C
//
// Determinism: the row partition is by fixed MR panels (independent of
// the thread count), every C element sees its KC slices in ascending pc
// order, and the micro-kernel's accumulation order is a function of the
// plan only — so results are bit-identical across thread-pool sizes.
//
// Zero-padding contract: the packing routines zero-fill the MR/NR
// tails, so the micro-kernel always runs full tiles; only the valid
// mr x nr region is written back to C.
#include <algorithm>
#include <cstring>

#include "obs/profiler.hpp"
#include "tensor/plan.hpp"
#include "util/scratch.hpp"
#include "util/thread_pool.hpp"

namespace fleda {
namespace {

constexpr std::int64_t MR = kGemmMR;
constexpr std::int64_t NR = kGemmNR;

// A(i, p) under the plan's A layout.
inline std::int64_t a_index(GemmOp op, std::int64_t m, std::int64_t k,
                            std::int64_t i, std::int64_t p) {
  return op == GemmOp::kAT ? p * m + i : i * k + p;
}

// Packs A rows [i0, i0 + mr) x depth [pc, pc + kc) into an MR-wide
// micro-panel: dst[p * MR + r] = A(i0 + r, pc + p), zero-padded rows.
void pack_a_panel(GemmOp op, const float* a, std::int64_t m, std::int64_t k,
                  std::int64_t i0, std::int64_t mr, std::int64_t pc,
                  std::int64_t kc, float* dst) {
  if (op == GemmOp::kAT) {
    // A stored [k, m]: one contiguous MR run per depth step.
    for (std::int64_t p = 0; p < kc; ++p) {
      const float* src = a + (pc + p) * m + i0;
      float* out = dst + p * MR;
      std::int64_t r = 0;
      for (; r < mr; ++r) out[r] = src[r];
      for (; r < MR; ++r) out[r] = 0.0f;
    }
    return;
  }
  // A stored [m, k]: one contiguous kc run per row.
  for (std::int64_t r = 0; r < mr; ++r) {
    const float* src = a + (i0 + r) * k + pc;
    for (std::int64_t p = 0; p < kc; ++p) dst[p * MR + r] = src[p];
  }
  for (std::int64_t r = mr; r < MR; ++r) {
    for (std::int64_t p = 0; p < kc; ++p) dst[p * MR + r] = 0.0f;
  }
}

// Packs B depth [pc, pc + kc) x columns [j0, j0 + nr) into an NR-wide
// micro-panel: dst[p * NR + j] = B(pc + p, j0 + j), zero-padded cols.
void pack_b_panel(GemmOp op, const float* b, std::int64_t k, std::int64_t n,
                  std::int64_t pc, std::int64_t kc, std::int64_t j0,
                  std::int64_t nr, float* dst) {
  if (op == GemmOp::kBT) {
    // B stored [n, k]: one contiguous kc run per column.
    for (std::int64_t j = 0; j < nr; ++j) {
      const float* src = b + (j0 + j) * k + pc;
      for (std::int64_t p = 0; p < kc; ++p) dst[p * NR + j] = src[p];
    }
    for (std::int64_t j = nr; j < NR; ++j) {
      for (std::int64_t p = 0; p < kc; ++p) dst[p * NR + j] = 0.0f;
    }
    return;
  }
  // B stored [k, n]: one contiguous NR run per depth step.
  (void)k;
  for (std::int64_t p = 0; p < kc; ++p) {
    const float* src = b + (pc + p) * n + j0;
    float* out = dst + p * NR;
    std::int64_t j = 0;
    for (; j < nr; ++j) out[j] = src[j];
    for (; j < NR; ++j) out[j] = 0.0f;
  }
}

// MR x NR register tile: acc += sum_p apanel[p][*] (x) bpanel[p][*],
// then stored or accumulated into the valid mr x nr region of C.
inline void micro_kernel(const float* __restrict ap,
                         const float* __restrict bp, std::int64_t kc,
                         float* __restrict c, std::int64_t ldc,
                         std::int64_t mr, std::int64_t nr, bool accumulate) {
  float acc[MR * NR] = {};
  for (std::int64_t p = 0; p < kc; ++p) {
    const float* __restrict arow = ap + p * MR;
    const float* __restrict brow = bp + p * NR;
    for (std::int64_t r = 0; r < MR; ++r) {
      const float av = arow[r];
      float* __restrict accrow = acc + r * NR;
      for (std::int64_t j = 0; j < NR; ++j) accrow[j] += av * brow[j];
    }
  }
  for (std::int64_t r = 0; r < mr; ++r) {
    float* crow = c + r * ldc;
    const float* accrow = acc + r * NR;
    if (accumulate) {
      for (std::int64_t j = 0; j < nr; ++j) crow[j] += accrow[j];
    } else {
      for (std::int64_t j = 0; j < nr; ++j) crow[j] = accrow[j];
    }
  }
}

void gemm_packed_impl(const GemmPlan& plan, const float* a,
                      const float* apack_full, const float* b, float* c,
                      bool accumulate) {
  const GemmOp op = plan.shape.op;
  const std::int64_t m = plan.shape.m;
  const std::int64_t k = plan.shape.k;
  const std::int64_t n = plan.shape.n;
  const std::int64_t kc_max = plan.kc;
  const std::int64_t nc_max = plan.nc;

  // Shared packed-B block: panels are written disjointly by the packing
  // parallel_for and read-only during compute, all through the calling
  // thread's persistent aligned scratch.
  const std::size_t bpack_elems = static_cast<std::size_t>(
      ((nc_max + NR - 1) / NR) * NR * kc_max);
  float* bpack = thread_scratch_aligned(ScratchSlot::kPackB, bpack_elems);

  const std::int64_t mpanels = (m + MR - 1) / MR;
  const std::size_t mc_grain =
      static_cast<std::size_t>(std::max<std::int64_t>(1, plan.mc / MR));

  for (std::int64_t jc = 0; jc < n; jc += nc_max) {
    const std::int64_t nc = std::min(nc_max, n - jc);
    const std::int64_t npanels = (nc + NR - 1) / NR;
    for (std::int64_t pc = 0; pc < k; pc += kc_max) {
      const std::int64_t kc = std::min(kc_max, k - pc);
      {
        ProfileScope pack(phase::kKernelPack);
        parallel_for(
            static_cast<std::size_t>(npanels),
            [&](std::size_t begin, std::size_t end) {
              for (std::size_t jp = begin; jp < end; ++jp) {
                const std::int64_t j0 =
                    jc + static_cast<std::int64_t>(jp) * NR;
                pack_b_panel(op, b, k, n, pc, kc, j0,
                             std::min<std::int64_t>(NR, jc + nc - j0),
                             bpack + static_cast<std::int64_t>(jp) * kc * NR);
              }
            },
            /*grain=*/4);
      }
      const bool acc_c = accumulate || pc > 0;
      parallel_for(
          static_cast<std::size_t>(mpanels),
          [&](std::size_t begin, std::size_t end) {
            float* apanel = thread_scratch_aligned(
                ScratchSlot::kPackA, static_cast<std::size_t>(kc_max * MR));
            for (std::size_t ip = begin; ip < end; ++ip) {
              const std::int64_t i0 = static_cast<std::int64_t>(ip) * MR;
              const std::int64_t mr = std::min<std::int64_t>(MR, m - i0);
              const float* ap;
              if (apack_full != nullptr) {
                ap = apack_full + static_cast<std::int64_t>(ip) * k * MR +
                     pc * MR;
              } else {
                pack_a_panel(op, a, m, k, i0, mr, pc, kc, apanel);
                ap = apanel;
              }
              for (std::int64_t jp = 0; jp < npanels; ++jp) {
                const std::int64_t j0 = jc + jp * NR;
                micro_kernel(ap, bpack + jp * kc * NR, kc, c + i0 * n + j0,
                             n, mr, std::min<std::int64_t>(NR, jc + nc - j0),
                             acc_c);
              }
            }
          },
          mc_grain);
    }
  }
}

}  // namespace

std::size_t packed_a_elems(const GemmPlan& plan) {
  const std::int64_t mpanels = (plan.shape.m + MR - 1) / MR;
  return static_cast<std::size_t>(mpanels * plan.shape.k * MR);
}

void pack_a(const GemmPlan& plan, const float* a, float* apack) {
  const std::int64_t m = plan.shape.m;
  const std::int64_t k = plan.shape.k;
  const std::int64_t mpanels = (m + MR - 1) / MR;
  ProfileScope pack(phase::kKernelPack);
  parallel_for(
      static_cast<std::size_t>(mpanels),
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t ip = begin; ip < end; ++ip) {
          const std::int64_t i0 = static_cast<std::int64_t>(ip) * MR;
          pack_a_panel(plan.shape.op, a, m, k, i0,
                       std::min<std::int64_t>(MR, m - i0), 0, k,
                       apack + static_cast<std::int64_t>(ip) * k * MR);
        }
      },
      /*grain=*/4);
}

void gemm_packed(const GemmPlan& plan, const float* a, const float* b,
                 float* c, bool accumulate) {
  gemm_packed_impl(plan, a, /*apack_full=*/nullptr, b, c, accumulate);
}

void gemm_packed_prepacked_a(const GemmPlan& plan, const float* apack,
                             const float* b, float* c, bool accumulate) {
  gemm_packed_impl(plan, /*a=*/nullptr, apack, b, c, accumulate);
}

}  // namespace fleda
