// Binary (de)serialization of client datasets so that expensive
// generation can be cached between bench runs.
#pragma once

#include <string>
#include <vector>

#include "data/dataset.hpp"

namespace fleda {

void save_client_dataset(const std::string& path, const ClientDataset& ds);
ClientDataset load_client_dataset(const std::string& path);

void save_all_clients(const std::string& dir,
                      const std::vector<ClientDataset>& clients);
// Returns an empty vector if the directory/files are missing.
std::vector<ClientDataset> try_load_all_clients(const std::string& dir,
                                                int num_clients);

}  // namespace fleda
