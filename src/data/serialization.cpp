#include "data/serialization.hpp"

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "tensor/serialize.hpp"

namespace fleda {
namespace {

constexpr std::uint32_t kMagic = 0xF1EDA001;

void write_u32(std::ostream& out, std::uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint32_t read_u32(std::istream& in) {
  std::uint32_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in) throw std::runtime_error("dataset read: truncated");
  return v;
}

void write_string(std::ostream& out, const std::string& s) {
  write_u32(out, static_cast<std::uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::istream& in) {
  std::uint32_t n = read_u32(in);
  if (n > (1u << 20)) throw std::runtime_error("dataset read: bad string");
  std::string s(n, '\0');
  in.read(s.data(), n);
  if (!in) throw std::runtime_error("dataset read: truncated string");
  return s;
}

void write_designs(std::ostream& out, const std::vector<DesignInfo>& designs) {
  write_u32(out, static_cast<std::uint32_t>(designs.size()));
  for (const DesignInfo& d : designs) {
    write_string(out, d.name);
    write_u32(out, static_cast<std::uint32_t>(d.suite));
    write_u32(out, static_cast<std::uint32_t>(d.num_placements));
  }
}

std::vector<DesignInfo> read_designs(std::istream& in) {
  std::uint32_t n = read_u32(in);
  std::vector<DesignInfo> designs(n);
  for (auto& d : designs) {
    d.name = read_string(in);
    d.suite = static_cast<BenchmarkSuite>(read_u32(in));
    d.num_placements = read_u32(in);
  }
  return designs;
}

void write_samples(std::ostream& out, const std::vector<Sample>& samples) {
  write_u32(out, static_cast<std::uint32_t>(samples.size()));
  for (const Sample& s : samples) {
    write_tensor(out, s.features);
    write_tensor(out, s.label);
  }
}

std::vector<Sample> read_samples(std::istream& in) {
  std::uint32_t n = read_u32(in);
  std::vector<Sample> samples(n);
  for (auto& s : samples) {
    s.features = read_tensor(in);
    s.label = read_tensor(in);
  }
  return samples;
}

}  // namespace

void save_client_dataset(const std::string& path, const ClientDataset& ds) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("save_client_dataset: cannot open " + path);
  write_u32(out, kMagic);
  write_u32(out, static_cast<std::uint32_t>(ds.client_id));
  write_u32(out, static_cast<std::uint32_t>(ds.suite));
  write_designs(out, ds.train_designs);
  write_designs(out, ds.test_designs);
  write_samples(out, ds.train);
  write_samples(out, ds.test);
  if (!out) throw std::runtime_error("save_client_dataset: write failure");
}

ClientDataset load_client_dataset(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_client_dataset: cannot open " + path);
  if (read_u32(in) != kMagic) {
    throw std::runtime_error("load_client_dataset: bad magic in " + path);
  }
  ClientDataset ds;
  ds.client_id = static_cast<int>(read_u32(in));
  ds.suite = static_cast<BenchmarkSuite>(read_u32(in));
  ds.train_designs = read_designs(in);
  ds.test_designs = read_designs(in);
  ds.train = read_samples(in);
  ds.test = read_samples(in);
  return ds;
}

void save_all_clients(const std::string& dir,
                      const std::vector<ClientDataset>& clients) {
  std::filesystem::create_directories(dir);
  for (const ClientDataset& ds : clients) {
    save_client_dataset(dir + "/client" + std::to_string(ds.client_id) + ".bin",
                        ds);
  }
}

std::vector<ClientDataset> try_load_all_clients(const std::string& dir,
                                                int num_clients) {
  std::vector<ClientDataset> clients;
  for (int id = 1; id <= num_clients; ++id) {
    const std::string path = dir + "/client" + std::to_string(id) + ".bin";
    if (!std::filesystem::exists(path)) return {};
    clients.push_back(load_client_dataset(path));
  }
  return clients;
}

}  // namespace fleda
