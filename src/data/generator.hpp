// Dataset generator replicating Table 2 of the paper: 9 clients, each
// holding designs from exactly one benchmark suite, with the paper's
// per-client design and placement counts (placement counts are scaled
// by RunScale::placement_fraction for CPU budgets). Every design is a
// distinct synthetic netlist; every placement of a design is an
// independent placer run with its own seed (the paper's "multiple
// placement solutions generated with different settings").
#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.hpp"
#include "phys/technology.hpp"

namespace fleda {

// One row of Table 2.
struct ClientSpec {
  int id = 0;
  BenchmarkSuite suite = BenchmarkSuite::kIscas89;
  int train_designs = 0;
  int test_designs = 0;
  int train_placements = 0;  // paper count, before scaling
  int test_placements = 0;
};

// The verbatim Table 2 assignment (K = 9 clients, 74 designs, 7131
// placements).
std::vector<ClientSpec> paper_client_specs();

struct DatasetGenOptions {
  std::int64_t grid = 32;
  double placement_fraction = 0.12;  // scales Table 2 placement counts
  std::uint64_t seed = 20220203;     // root seed (DAC'22 vintage)
  Technology tech = default_technology();
  // Placer effort (moves per cell); lower = noisier placements.
  double placer_moves_per_cell = 3.0;
};

// Generates all K client datasets. Deterministic in `options.seed`;
// placements are generated in parallel across the thread pool.
std::vector<ClientDataset> generate_paper_dataset(
    const DatasetGenOptions& options);

// Generates a single client's dataset (used by tests and examples).
ClientDataset generate_client_dataset(const ClientSpec& spec,
                                      const DatasetGenOptions& options);

}  // namespace fleda
