// Client datasets and batching.
//
// Mirrors the paper's problem formulation (§3): K clients, each with
// private training samples {X_i, Y_i}_k and testing samples generated
// from *different designs* of the same benchmark suite; no design
// appears in two clients and no design contributes to both train and
// test (no information leakage).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "phys/suite_profile.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace fleda {

struct Sample {
  Tensor features;  // [C, H, W]
  Tensor label;     // [1, H, W]
};

struct DesignInfo {
  std::string name;
  BenchmarkSuite suite = BenchmarkSuite::kIscas89;
  std::int64_t num_placements = 0;
};

struct ClientDataset {
  int client_id = 0;  // 1-based, as in Table 2
  BenchmarkSuite suite = BenchmarkSuite::kIscas89;
  std::vector<DesignInfo> train_designs;
  std::vector<DesignInfo> test_designs;
  std::vector<Sample> train;
  std::vector<Sample> test;

  std::int64_t num_train() const { return static_cast<std::int64_t>(train.size()); }
  std::int64_t num_test() const { return static_cast<std::int64_t>(test.size()); }
};

// Stacks the selected samples into batch tensors [N,C,H,W] / [N,1,H,W].
struct Batch {
  Tensor x;
  Tensor y;
  std::int64_t size() const { return x.shape().rank() == 4 ? x.shape().dim(0) : 0; }
};

Batch make_batch(const std::vector<Sample>& samples,
                 const std::vector<std::size_t>& indices);

// Epoch-shuffled mini-batch index stream over a sample vector.
class BatchSampler {
 public:
  BatchSampler(std::size_t dataset_size, std::size_t batch_size, Rng rng);

  // Next mini-batch of indices (size <= batch_size; reshuffles between
  // epochs). Throws if the dataset is empty.
  std::vector<std::size_t> next();

  std::size_t dataset_size() const { return order_.size(); }
  std::size_t batch_size() const { return batch_size_; }

 private:
  std::size_t batch_size_;
  std::vector<std::size_t> order_;
  std::size_t cursor_ = 0;
  Rng rng_;
};

// Aggregate helpers used by evaluation and dataset statistics.
double dataset_hotspot_rate(const std::vector<Sample>& samples);

}  // namespace fleda
