#include "data/generator.hpp"

#include <algorithm>
#include <cmath>

#include "phys/drc.hpp"
#include "phys/features.hpp"
#include "phys/global_router.hpp"
#include "phys/netlist.hpp"
#include "phys/placer.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace fleda {

std::vector<ClientSpec> paper_client_specs() {
  using S = BenchmarkSuite;
  return {
      {1, S::kItc99, 4, 2, 462, 230},   //
      {2, S::kItc99, 2, 1, 231, 114},   //
      {3, S::kItc99, 2, 2, 231, 232},   //
      {4, S::kIscas89, 7, 3, 812, 348}, //
      {5, S::kIscas89, 7, 3, 812, 348}, //
      {6, S::kIscas89, 6, 3, 697, 348}, //
      {7, S::kIwls05, 6, 3, 656, 280},  //
      {8, S::kIwls05, 7, 3, 742, 329},  //
      {9, S::kIspd15, 9, 4, 175, 84},   //
  };
}

namespace {

int scaled_count(int paper_count, int num_designs, double fraction) {
  const int scaled = static_cast<int>(
      std::lround(paper_count * fraction));
  // At least one placement per design so every design contributes.
  return std::max(scaled, num_designs);
}

// Generates all placements of one design set (train or test half).
std::vector<Sample> generate_samples(
    const std::vector<NetlistPtr>& designs,
    const std::vector<double>& design_capacity_scale, int total_placements,
    const DatasetGenOptions& opts, Rng& rng) {
  const int num_designs = static_cast<int>(designs.size());
  // Distribute placements round-robin across designs.
  std::vector<int> per_design(static_cast<std::size_t>(num_designs), 0);
  for (int i = 0; i < total_placements; ++i) {
    ++per_design[static_cast<std::size_t>(i % num_designs)];
  }

  struct Job {
    int design = 0;
    std::uint64_t seed = 0;
  };
  std::vector<Job> jobs;
  for (int d = 0; d < num_designs; ++d) {
    for (int p = 0; p < per_design[static_cast<std::size_t>(d)]; ++p) {
      jobs.push_back({d, rng.next_u64()});
    }
  }

  std::vector<Sample> samples(jobs.size());
  parallel_for(jobs.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t j = begin; j < end; ++j) {
      Rng job_rng(jobs[j].seed);
      const NetlistPtr& netlist = designs[static_cast<std::size_t>(jobs[j].design)];

      PlacerOptions popts;
      popts.grid_w = opts.grid;
      popts.grid_h = opts.grid;
      popts.tech = opts.tech;
      // Placement-setting diversity: vary SA effort per solution.
      popts.moves_per_cell =
          opts.placer_moves_per_cell * job_rng.uniform(0.6, 1.4);
      Placement pl = place(netlist, popts, job_rng);

      RouterOptions ropts;
      ropts.tech = opts.tech;
      // Per-gcell routing demand grows linearly with the grid side
      // (more cells, longer routes per gcell), so track capacity is
      // normalized to the 32x32 grid the technology was calibrated on.
      ropts.capacity_scale =
          design_capacity_scale[static_cast<std::size_t>(jobs[j].design)] *
          (static_cast<double>(opts.grid) / 32.0);
      RoutingResult routing = route(pl, ropts, job_rng);

      DrcOptions dopts;
      dopts.threshold = opts.tech.drc_overflow_ratio;
      samples[j] = [&] {
        FeatureSample fs = extract_features(pl, routing, opts.tech, dopts);
        return Sample{std::move(fs.features), std::move(fs.label)};
      }();
    }
  });
  return samples;
}

}  // namespace

ClientDataset generate_client_dataset(const ClientSpec& spec,
                                      const DatasetGenOptions& opts) {
  // Independent, reproducible stream per client.
  Rng rng(opts.seed ^ (0x5851F42D4C957F2Dull * static_cast<std::uint64_t>(spec.id)));
  const SuiteProfile profile = profile_for(spec.suite);

  ClientDataset ds;
  ds.client_id = spec.id;
  ds.suite = spec.suite;

  auto make_designs = [&](int count, const char* tag,
                          std::vector<DesignInfo>& infos,
                          std::vector<double>& capacity_scales) {
    std::vector<NetlistPtr> designs;
    for (int d = 0; d < count; ++d) {
      NetlistGenParams params;
      params.profile = profile;
      params.grid_w = opts.grid;
      params.grid_h = opts.grid;
      params.gcell_cell_capacity = opts.tech.gcell_cell_capacity;
      params.name = to_string(spec.suite) + "/client" +
                    std::to_string(spec.id) + "/" + tag + std::to_string(d);
      designs.push_back(generate_netlist(params, rng));
      // Per-design routing-resource jitter: different metal stacks /
      // floorplans across designs of one suite.
      capacity_scales.push_back(profile.capacity_scale *
                                rng.uniform(0.92, 1.08));
      infos.push_back({params.name, spec.suite, 0});
    }
    return designs;
  };

  std::vector<double> train_caps, test_caps;
  std::vector<NetlistPtr> train_designs =
      make_designs(spec.train_designs, "train", ds.train_designs, train_caps);
  std::vector<NetlistPtr> test_designs =
      make_designs(spec.test_designs, "test", ds.test_designs, test_caps);

  const int train_count =
      scaled_count(spec.train_placements, spec.train_designs,
                   opts.placement_fraction);
  const int test_count = scaled_count(
      spec.test_placements, spec.test_designs, opts.placement_fraction);

  ds.train = generate_samples(train_designs, train_caps, train_count, opts, rng);
  ds.test = generate_samples(test_designs, test_caps, test_count, opts, rng);

  // Record realized placement counts.
  for (std::size_t d = 0; d < ds.train_designs.size(); ++d) {
    ds.train_designs[d].num_placements =
        static_cast<std::int64_t>(ds.train.size() / ds.train_designs.size());
  }
  for (std::size_t d = 0; d < ds.test_designs.size(); ++d) {
    ds.test_designs[d].num_placements =
        static_cast<std::int64_t>(ds.test.size() / ds.test_designs.size());
  }

  FLEDA_LOG_DEBUG("client %d (%s): %zu train / %zu test samples, "
                  "hotspot rate %.3f / %.3f",
                  spec.id, to_string(spec.suite).c_str(), ds.train.size(),
                  ds.test.size(), dataset_hotspot_rate(ds.train),
                  dataset_hotspot_rate(ds.test));
  return ds;
}

std::vector<ClientDataset> generate_paper_dataset(
    const DatasetGenOptions& opts) {
  std::vector<ClientSpec> specs = paper_client_specs();
  std::vector<ClientDataset> clients;
  clients.reserve(specs.size());
  for (const ClientSpec& spec : specs) {
    clients.push_back(generate_client_dataset(spec, opts));
  }
  return clients;
}

}  // namespace fleda
