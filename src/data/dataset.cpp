#include "data/dataset.hpp"

#include <cstring>
#include <numeric>
#include <stdexcept>

namespace fleda {

Batch make_batch(const std::vector<Sample>& samples,
                 const std::vector<std::size_t>& indices) {
  if (indices.empty()) throw std::invalid_argument("make_batch: no indices");
  const Sample& first = samples.at(indices[0]);
  const Shape& fs = first.features.shape();
  const Shape& ls = first.label.shape();
  if (fs.rank() != 3 || ls.rank() != 3) {
    throw std::invalid_argument("make_batch: samples must be rank-3");
  }
  const std::int64_t N = static_cast<std::int64_t>(indices.size());
  Batch batch;
  batch.x = Tensor(Shape::of(N, fs.dim(0), fs.dim(1), fs.dim(2)));
  batch.y = Tensor(Shape::of(N, ls.dim(0), ls.dim(1), ls.dim(2)));
  const std::int64_t xs = fs.numel();
  const std::int64_t ys = ls.numel();
  for (std::int64_t n = 0; n < N; ++n) {
    const Sample& s = samples.at(indices[static_cast<std::size_t>(n)]);
    if (s.features.shape() != fs || s.label.shape() != ls) {
      throw std::invalid_argument("make_batch: inhomogeneous samples");
    }
    std::memcpy(batch.x.data() + n * xs, s.features.data(),
                static_cast<std::size_t>(xs) * sizeof(float));
    std::memcpy(batch.y.data() + n * ys, s.label.data(),
                static_cast<std::size_t>(ys) * sizeof(float));
  }
  return batch;
}

BatchSampler::BatchSampler(std::size_t dataset_size, std::size_t batch_size,
                           Rng rng)
    : batch_size_(batch_size), order_(dataset_size), rng_(rng) {
  if (batch_size == 0) {
    throw std::invalid_argument("BatchSampler: zero batch size");
  }
  std::iota(order_.begin(), order_.end(), std::size_t{0});
  rng_.shuffle(order_);
}

std::vector<std::size_t> BatchSampler::next() {
  if (order_.empty()) throw std::logic_error("BatchSampler: empty dataset");
  std::vector<std::size_t> batch;
  batch.reserve(batch_size_);
  while (batch.size() < batch_size_) {
    if (cursor_ >= order_.size()) {
      rng_.shuffle(order_);
      cursor_ = 0;
      if (!batch.empty()) break;  // do not mix epochs within a batch
    }
    batch.push_back(order_[cursor_++]);
  }
  return batch;
}

double dataset_hotspot_rate(const std::vector<Sample>& samples) {
  double pos = 0.0, total = 0.0;
  for (const Sample& s : samples) {
    for (std::int64_t i = 0; i < s.label.numel(); ++i) {
      pos += s.label[i] > 0.5f ? 1.0 : 0.0;
    }
    total += static_cast<double>(s.label.numel());
  }
  return total > 0.0 ? pos / total : 0.0;
}

}  // namespace fleda
