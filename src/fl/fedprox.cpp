#include "fl/fedprox.hpp"

namespace fleda {

std::vector<ModelParameters> FedProx::run_rounds(std::vector<Client>& clients,
                                                 const ModelFactory& factory,
                                                 const FLRunOptions& opts,
                                                 FederationSim& sim) {
  Rng rng(opts.seed);
  RoutabilityModelPtr init = factory(rng);
  ModelParameters global = ModelParameters::from_model(*init);

  const std::vector<double> weights = Server::client_weights(clients);
  for (int r = 0; r < opts.rounds; ++r) {
    std::vector<const ModelParameters*> deployed(clients.size(), &global);
    std::vector<ModelParameters> updates =
        parallel_local_updates(clients, deployed, opts.client, sim);
    global = Server::aggregate(updates, weights);
    if (opts.on_round) {
      opts.on_round(r, std::vector<ModelParameters>(clients.size(), global));
    }
  }
  global_ = global;
  return std::vector<ModelParameters>(clients.size(), global);
}

}  // namespace fleda
