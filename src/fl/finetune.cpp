#include "fl/finetune.hpp"

#include "util/thread_pool.hpp"

namespace fleda {

std::vector<ModelParameters> FineTune::run_rounds(std::vector<Client>& clients,
                                                  const ModelFactory& factory,
                                                  const FLRunOptions& opts,
                                                  Channel& channel) {
  std::vector<ModelParameters> finals =
      run_rounds_of(*base_, clients, factory, opts, channel);

  parallel_for(clients.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t k = begin; k < end; ++k) {
      finals[k] = clients[k].fine_tune(finals[k], finetune_steps_,
                                       opts.client);
    }
  });
  return finals;
}

}  // namespace fleda
