#include "fl/finetune.hpp"

#include "util/thread_pool.hpp"

namespace fleda {

std::vector<ModelParameters> FineTune::run_rounds(
    std::vector<Client>& clients, const ModelFactory& factory,
    const FLRunOptions& opts, FederationSim& sim,
    ParticipationPolicy& participation) {
  std::vector<ModelParameters> finals =
      run_rounds_of(*base_, clients, factory, opts, sim, participation);

  // Personalization is per-client and local: every client fine-tunes
  // its final model, whether or not it was sampled in the last round.
  parallel_for(clients.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t k = begin; k < end; ++k) {
      finals[k] = clients[k].fine_tune(finals[k], finetune_steps_,
                                       opts.client);
    }
  });
  // No exchange, but the personalization steps still take simulated
  // compute time.
  sim.finish_local_round(finetune_steps_);
  return finals;
}

}  // namespace fleda
