#include "fl/checkpoint.hpp"

#include <cstdint>
#include <fstream>
#include <stdexcept>

#include "tensor/serialize.hpp"

namespace fleda {
namespace {

constexpr std::uint32_t kMagic = 0xF1EDAC4Au;

void write_u32(std::ostream& out, std::uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint32_t read_u32(std::istream& in) {
  std::uint32_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in) throw std::runtime_error("checkpoint: truncated");
  return v;
}

}  // namespace

void write_checkpoint(std::ostream& out, const ModelParameters& params) {
  write_u32(out, kMagic);
  write_u32(out, static_cast<std::uint32_t>(params.entries().size()));
  for (const ParameterEntry& e : params.entries()) {
    write_u32(out, static_cast<std::uint32_t>(e.name.size()));
    out.write(e.name.data(), static_cast<std::streamsize>(e.name.size()));
    write_u32(out, e.is_buffer ? 1u : 0u);
    write_tensor(out, e.value);
  }
  if (!out) throw std::runtime_error("checkpoint: write failure");
}

ModelParameters read_checkpoint(std::istream& in) {
  if (read_u32(in) != kMagic) {
    throw std::runtime_error("checkpoint: bad magic");
  }
  const std::uint32_t count = read_u32(in);
  if (count > (1u << 20)) throw std::runtime_error("checkpoint: bad count");

  ModelParameters params;
  params.mutable_entries().reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t name_len = read_u32(in);
    if (name_len > (1u << 16)) throw std::runtime_error("checkpoint: name");
    ParameterEntry entry;
    entry.name.resize(name_len);
    in.read(entry.name.data(), name_len);
    if (!in) throw std::runtime_error("checkpoint: truncated name");
    entry.is_buffer = read_u32(in) != 0;
    entry.value = read_tensor(in);
    params.mutable_entries().push_back(std::move(entry));
  }
  return params;
}

void save_checkpoint(const std::string& path, const ModelParameters& params) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("save_checkpoint: cannot open " + path);
  write_checkpoint(out, params);
}

ModelParameters load_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_checkpoint: cannot open " + path);
  return read_checkpoint(in);
}

}  // namespace fleda
