#include "fl/participation.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <string>

#include "fl/anomaly.hpp"

namespace fleda {

namespace {

// Weighted sampling without replacement, shared by ReputationWeighted
// and ImportanceSample: C prefix-sum walks over the live weights,
// zeroing each pick. O(C * K) on the coordinator thread, and the rng
// advances exactly C draws, so the cohort sequence depends only on
// (seed, round, weights). `total` must be the sum of `weights` and
// strictly positive; every weight must be finite and non-negative
// (callers validate — this loop's draw schedule is frozen, any guard
// added here would change recorded cohort sequences).
std::vector<std::size_t> weighted_sample_without_replacement(
    std::vector<double> weights, double total, std::size_t c, Rng& rng) {
  const std::size_t n = weights.size();
  std::vector<std::size_t> cohort;
  cohort.reserve(c);
  for (std::size_t i = 0; i < c; ++i) {
    double target = rng.uniform(0.0, total);
    std::size_t pick = n;  // fallback: last nonzero weight
    for (std::size_t k = 0; k < n; ++k) {
      if (weights[k] <= 0.0) continue;
      pick = k;
      target -= weights[k];
      if (target < 0.0) break;
    }
    // total > 0 is guaranteed by the caller, so a pick always exists
    // while fewer than n are taken.
    cohort.push_back(pick);
    total -= weights[pick];
    weights[pick] = 0.0;
  }
  std::sort(cohort.begin(), cohort.end());
  return cohort;
}

}  // namespace

std::vector<std::size_t> FullParticipation::select(
    const ParticipationContext& ctx) {
  std::vector<std::size_t> cohort(ctx.num_clients);
  std::iota(cohort.begin(), cohort.end(), std::size_t{0});
  return cohort;
}

UniformSample::UniformSample(int sample_size, std::uint64_t seed)
    : sample_size_(sample_size), rng_(seed) {
  // Historically a non-positive C silently degenerated to full
  // participation — a config typo (C = 0) then ran a full-cost round
  // per "sampled" round without a hint. Only >= num_clients is the
  // documented full-participation degeneration.
  if (sample_size <= 0) {
    throw std::invalid_argument(
        "UniformSample: sample_size " + std::to_string(sample_size) +
        " must be positive (use FullParticipation to run every client)");
  }
}

std::string UniformSample::name() const {
  return "uniform_sample(" + std::to_string(sample_size_) + ")";
}

std::vector<std::size_t> UniformSample::select(
    const ParticipationContext& ctx) {
  std::vector<std::size_t> all(ctx.num_clients);
  std::iota(all.begin(), all.end(), std::size_t{0});
  if (static_cast<std::size_t>(sample_size_) >= ctx.num_clients) {
    return all;  // C >= K: documented full-participation degeneration
  }
  const std::size_t c = static_cast<std::size_t>(sample_size_);
  // Partial Fisher-Yates: the first c entries become the sample. The
  // rng advances by exactly c draws per round, so the cohort sequence
  // depends only on (seed, round), never on thread scheduling.
  for (std::size_t i = 0; i < c; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(rng_.uniform_int(ctx.num_clients - i));
    std::swap(all[i], all[j]);
  }
  all.resize(c);
  std::sort(all.begin(), all.end());
  return all;
}

AvailabilityAware::AvailabilityAware(
    std::unique_ptr<ParticipationPolicy> base)
    : base_(std::move(base)) {}

std::string AvailabilityAware::name() const {
  return base_ ? "availability(" + base_->name() + ")" : "availability";
}

std::vector<std::size_t> AvailabilityAware::select(
    const ParticipationContext& ctx) {
  std::vector<std::size_t> cohort;
  if (base_) {
    cohort = base_->select(ctx);
  } else {
    cohort.resize(ctx.num_clients);
    std::iota(cohort.begin(), cohort.end(), std::size_t{0});
  }
  if (ctx.sim == nullptr) return cohort;  // no profiles: everyone online
  std::vector<std::size_t> online;
  online.reserve(cohort.size());
  for (std::size_t k : cohort) {
    if (ctx.sim->profile(k).is_online(ctx.now)) online.push_back(k);
  }
  return online;
}

ReputationWeighted::ReputationWeighted(int sample_size,
                                       const ReputationBook* book,
                                       std::uint64_t seed)
    : sample_size_(sample_size), book_(book), rng_(seed) {
  if (sample_size <= 0) {
    throw std::invalid_argument(
        "ReputationWeighted: sample_size " + std::to_string(sample_size) +
        " must be positive");
  }
  if (book == nullptr) {
    throw std::invalid_argument(
        "ReputationWeighted: null ReputationBook — without a book the "
        "policy would silently sample uniformly (enable anomaly "
        "detection or pass FLRunOptions::reputation)");
  }
}

std::string ReputationWeighted::name() const {
  return "reputation_weighted(" + std::to_string(sample_size_) + ")";
}

std::vector<std::size_t> ReputationWeighted::select(
    const ParticipationContext& ctx) {
  const std::size_t n = ctx.num_clients;
  if (static_cast<std::size_t>(sample_size_) >= n) {
    std::vector<std::size_t> all(n);
    std::iota(all.begin(), all.end(), std::size_t{0});
    return all;  // C >= K: documented full-participation degeneration
  }
  // total > 0 is guaranteed here: book weights are floored above zero.
  std::vector<double> weights(n);
  double total = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    weights[k] = book_->weight(k);
    total += weights[k];
  }
  return weighted_sample_without_replacement(
      std::move(weights), total, static_cast<std::size_t>(sample_size_),
      rng_);
}

ImportanceSample::ImportanceSample(int sample_size, WeightProvider weights,
                                   std::uint64_t seed)
    : sample_size_(sample_size), weights_(std::move(weights)), rng_(seed) {
  if (sample_size <= 0) {
    throw std::invalid_argument(
        "ImportanceSample: sample_size " + std::to_string(sample_size) +
        " must be positive");
  }
  if (!weights_) {
    throw std::invalid_argument(
        "ImportanceSample: empty WeightProvider — without importance "
        "weights the policy would silently sample uniformly (use "
        "UniformSample, or let FederatedAlgorithm::run derive weights "
        "from client sample counts)");
  }
}

std::string ImportanceSample::name() const {
  return "importance_sample(" + std::to_string(sample_size_) + ")";
}

std::vector<std::size_t> ImportanceSample::select(
    const ParticipationContext& ctx) {
  const std::size_t n = ctx.num_clients;
  if (static_cast<std::size_t>(sample_size_) >= n) {
    std::vector<std::size_t> all(n);
    std::iota(all.begin(), all.end(), std::size_t{0});
    return all;  // C >= K: documented full-participation degeneration
  }
  std::vector<double> weights(n);
  double total = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    const double w = weights_(k);
    if (!std::isfinite(w) || w < 0.0) {
      throw std::invalid_argument(
          "ImportanceSample: provider returned weight " + std::to_string(w) +
          " for client " + std::to_string(k) +
          " (weights must be finite and non-negative)");
    }
    weights[k] = w;
    total += w;
  }
  if (total <= 0.0) {
    throw std::invalid_argument(
        "ImportanceSample: all importance weights are zero — nothing to "
        "sample from (round " + std::to_string(ctx.round) + ")");
  }
  return weighted_sample_without_replacement(
      std::move(weights), total, static_cast<std::size_t>(sample_size_),
      rng_);
}

std::string to_string(ParticipationKind kind) {
  switch (kind) {
    case ParticipationKind::kFull:
      return "full";
    case ParticipationKind::kUniformSample:
      return "uniform_sample";
    case ParticipationKind::kAvailabilityAware:
      return "availability_aware";
    case ParticipationKind::kReputationWeighted:
      return "reputation_weighted";
    case ParticipationKind::kImportanceSample:
      return "importance_sample";
  }
  return "?";
}

std::unique_ptr<ParticipationPolicy> make_participation_policy(
    const ParticipationConfig& config, const ReputationBook* reputation,
    ImportanceSample::WeightProvider importance) {
  switch (config.kind) {
    case ParticipationKind::kFull:
      return std::make_unique<FullParticipation>();
    case ParticipationKind::kUniformSample:
      return std::make_unique<UniformSample>(config.sample_size, config.seed);
    case ParticipationKind::kAvailabilityAware: {
      std::unique_ptr<ParticipationPolicy> base;
      if (config.sample_size > 0) {
        base = std::make_unique<UniformSample>(config.sample_size,
                                               config.seed);
      }
      return std::make_unique<AvailabilityAware>(std::move(base));
    }
    case ParticipationKind::kReputationWeighted:
      return std::make_unique<ReputationWeighted>(config.sample_size,
                                                  reputation, config.seed);
    case ParticipationKind::kImportanceSample:
      // The ImportanceSample ctor rejects an empty provider with its
      // own descriptive error.
      return std::make_unique<ImportanceSample>(
          config.sample_size, std::move(importance), config.seed);
  }
  throw std::invalid_argument("make_participation_policy: unknown kind");
}

}  // namespace fleda
