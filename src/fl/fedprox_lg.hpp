// FedProx-LG (after Liang et al. 2020, "think locally, act globally"):
// the model is split into a global part g (aggregated every round) and
// a local part l_k kept private on each client (paper Fig. 2a). Per
// the paper's setup, the local part is each model's output layer and
// the rest is global.
#pragma once

#include "fl/trainer.hpp"

namespace fleda {

class FedProxLG : public FederatedAlgorithm {
 public:
  // `is_local` decides which parameter names stay private; defaults to
  // the paper's output-layer split.
  explicit FedProxLG(
      std::function<bool(const std::string&)> is_local = is_output_layer_param)
      : is_local_(std::move(is_local)) {}

  std::string name() const override { return "FedProx-LG"; }

 protected:
  std::vector<ModelParameters> run_rounds(
      std::vector<Client>& clients, const ModelFactory& factory,
      const FLRunOptions& opts, FederationSim& sim,
      ParticipationPolicy& participation) override;

 private:
  std::function<bool(const std::string&)> is_local_;
};

}  // namespace fleda
