#include "fl/fedprox_lg.hpp"

namespace fleda {

std::vector<ModelParameters> FedProxLG::run_rounds(
    std::vector<Client>& clients, const ModelFactory& factory,
    const FLRunOptions& opts, FederationSim& sim) {
  Rng rng(opts.seed);
  RoutabilityModelPtr init = factory(rng);
  ModelParameters global = ModelParameters::from_model(*init);

  // Each client's full parameter state; the aggregated global part is
  // spliced in at deployment, the local part persists across rounds.
  std::vector<ModelParameters> client_state(clients.size(), global);
  auto is_global = [this](const std::string& n) { return !is_local_(n); };

  const std::vector<double> weights = Server::client_weights(clients);
  for (int r = 0; r < opts.rounds; ++r) {
    // Deploy: client k starts from {G^r, l_k^r}.
    std::vector<ModelParameters> deployed_storage;
    deployed_storage.reserve(clients.size());
    for (std::size_t k = 0; k < clients.size(); ++k) {
      deployed_storage.push_back(client_state[k].merged_with(global, is_global));
    }
    std::vector<const ModelParameters*> deployed;
    for (const auto& d : deployed_storage) deployed.push_back(&d);

    std::vector<ModelParameters> updates =
        parallel_local_updates(clients, deployed, opts.client, sim);

    // Server aggregates only the global part; local parts stay put.
    ModelParameters aggregate = Server::aggregate(updates, weights);
    global = global.merged_with(aggregate, is_global);
    client_state = std::move(updates);

    if (opts.on_round) {
      std::vector<ModelParameters> snapshot;
      for (std::size_t k = 0; k < clients.size(); ++k) {
        snapshot.push_back(client_state[k].merged_with(global, is_global));
      }
      opts.on_round(r, snapshot);
    }
  }

  // Final per-client models: {G^R, l_k^R}.
  std::vector<ModelParameters> finals;
  finals.reserve(clients.size());
  for (std::size_t k = 0; k < clients.size(); ++k) {
    finals.push_back(client_state[k].merged_with(global, is_global));
  }
  return finals;
}

}  // namespace fleda
