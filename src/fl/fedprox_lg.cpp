#include "fl/fedprox_lg.hpp"

namespace fleda {

std::vector<ModelParameters> FedProxLG::run_rounds(
    std::vector<Client>& clients, const ModelFactory& factory,
    const FLRunOptions& opts, FederationSim& sim,
    ParticipationPolicy& participation) {
  Rng rng(opts.seed);
  ModelParameters global = initial_model_parameters(factory, rng);

  // Each client's full parameter state; the aggregated global part is
  // spliced in at deployment, the local part persists across rounds.
  std::vector<ModelParameters> client_state(clients.size(), global);
  auto is_global = [this](const std::string& n) { return !is_local_(n); };

  const std::vector<double> weights = Server::client_weights(clients);
  const std::unique_ptr<AggregationRule> rule = sync_aggregation_rule(opts);
  for (int r = 0; r < opts.rounds; ++r) {
    const std::vector<std::size_t> cohort =
        select_cohort(participation, r, clients.size(), opts, sim);
    // Deploy: cohort member k starts from {G^r, l_k^r}; clients outside
    // the cohort keep their state untouched this round.
    std::vector<ModelParameters> deployed_storage;
    deployed_storage.reserve(cohort.size());
    for (std::size_t k : cohort) {
      deployed_storage.push_back(client_state[k].merged_with(global, is_global));
    }
    std::vector<const ModelParameters*> deployed;
    for (const auto& d : deployed_storage) deployed.push_back(&d);

    std::vector<ModelParameters> updates =
        cohort_local_updates(clients, cohort, deployed, opts.client, sim);

    // Server aggregates only the cohort's global parts; local parts
    // stay put on every client.
    ModelParameters aggregate = Server::aggregate(
        *rule, global, updates, Server::cohort_weights(weights, cohort),
        cohort);
    global = global.merged_with(aggregate, is_global);
    for (std::size_t i = 0; i < cohort.size(); ++i) {
      client_state[cohort[i]] = std::move(updates[i]);
    }

    if (opts.on_round) {
      std::vector<ModelParameters> snapshot;
      for (std::size_t k = 0; k < clients.size(); ++k) {
        snapshot.push_back(client_state[k].merged_with(global, is_global));
      }
      opts.on_round(r, snapshot);
    }
  }

  // Final per-client models: {G^R, l_k^R}.
  std::vector<ModelParameters> finals;
  finals.reserve(clients.size());
  for (std::size_t k = 0; k < clients.size(); ++k) {
    finals.push_back(client_state[k].merged_with(global, is_global));
  }
  return finals;
}

}  // namespace fleda
