// FedProx + alpha-portion sync (paper Fig. 2d): instead of one global
// model, the developer aggregates a *customized* model per client
//
//   W_k^{r+1} = alpha * w_k^r + (1 - alpha) * sum_{k' != k} n_k'/(n - n_k) * w_k'^r
//
// i.e. each client's own parameters get a fixed alpha share and the
// remaining clients split (1 - alpha) by sample count. alpha = n_k/n
// recovers FedProx; larger alpha personalizes harder.
#pragma once

#include "fl/trainer.hpp"

namespace fleda {

class AlphaPortionSync : public FederatedAlgorithm {
 public:
  explicit AlphaPortionSync(double alpha) : alpha_(alpha) {}

  std::string name() const override { return "FedProx + alpha-Portion Sync"; }

 protected:
  std::vector<ModelParameters> run_rounds(
      std::vector<Client>& clients, const ModelFactory& factory,
      const FLRunOptions& opts, FederationSim& sim,
      ParticipationPolicy& participation) override;

 private:
  double alpha_;
};

}  // namespace fleda
