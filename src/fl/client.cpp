#include "fl/client.hpp"

#include <stdexcept>

#include "metrics/roc_auc.hpp"
#include "nn/loss.hpp"

namespace fleda {

Client::Client(int id, const ClientDataset* data, const ModelFactory& factory,
               Rng rng)
    : id_(id), data_(data), rng_(rng) {
  if (data_ == nullptr || data_->train.empty() || data_->test.empty()) {
    throw std::invalid_argument("Client: empty dataset for client " +
                                std::to_string(id));
  }
  model_ = factory(rng_);
}

ModelParameters Client::train_steps(const ModelParameters& start, int steps,
                                    const ClientTrainConfig& cfg,
                                    const ModelParameters* anchor) {
  start.apply_to(*model_);

  AdamOptions aopts;
  aopts.lr = cfg.learning_rate;
  aopts.weight_decay = cfg.l2_regularization;
  Adam optimizer(model_->parameters(), aopts);

  BatchSampler sampler(data_->train.size(),
                       static_cast<std::size_t>(cfg.batch_size),
                       rng_.fork(0x6261746368ull));

  // Anchor values aligned with the model's parameter order (buffers
  // are not part of the proximal term).
  std::vector<const Tensor*> anchor_values;
  if (anchor != nullptr) {
    const auto params = model_->parameters();
    std::size_t i = 0;
    for (const ParameterEntry& e : anchor->entries()) {
      if (e.is_buffer) continue;
      if (i >= params.size() || params[i]->name != e.name) {
        throw std::invalid_argument("Client: anchor/model mismatch at " +
                                    e.name);
      }
      ++i;
    }
  }

  double loss_acc = 0.0;
  for (int step = 0; step < steps; ++step) {
    Batch batch = make_batch(data_->train, sampler.next());
    optimizer.zero_grad();
    Tensor pred = model_->forward(batch.x, /*training=*/true);
    LossResult loss = mse_loss(pred, batch.y);
    loss_acc += loss.value;
    model_->backward(loss.grad);
    if (anchor != nullptr && cfg.mu > 0.0) {
      // grad += mu * (w - W^r)
      const auto params = model_->parameters();
      std::size_t i = 0;
      for (const ParameterEntry& e : anchor->entries()) {
        if (e.is_buffer) continue;
        Parameter* p = params[i++];
        const float mu = static_cast<float>(cfg.mu);
        float* g = p->grad.data();
        const float* w = p->value.data();
        const float* a = e.value.data();
        const std::int64_t n = p->value.numel();
        for (std::int64_t j = 0; j < n; ++j) g[j] += mu * (w[j] - a[j]);
      }
    }
    optimizer.step();
  }
  last_train_loss_ = steps > 0 ? static_cast<float>(loss_acc / steps) : 0.0f;
  return ModelParameters::from_model(*model_);
}

ModelParameters Client::local_update(const ModelParameters& start,
                                     const ClientTrainConfig& cfg) {
  return train_steps(start, cfg.steps, cfg, &start);
}

ModelParameters Client::fine_tune(const ModelParameters& start, int steps,
                                  const ClientTrainConfig& cfg) {
  return train_steps(start, steps, cfg, /*anchor=*/nullptr);
}

double Client::evaluate_train_loss(const ModelParameters& params,
                                   int max_batches) {
  params.apply_to(*model_);
  BatchSampler sampler(data_->train.size(), 8, rng_.fork(0x6c6f7373ull));
  double acc = 0.0;
  int batches = 0;
  for (int b = 0; b < max_batches; ++b) {
    Batch batch = make_batch(data_->train, sampler.next());
    Tensor pred = model_->forward(batch.x, /*training=*/false);
    acc += mse_loss(pred, batch.y).value;
    ++batches;
  }
  return batches > 0 ? acc / batches : 0.0;
}

double Client::evaluate_test_auc(const ModelParameters& params) {
  params.apply_to(*model_);
  AucAccumulator auc;
  // Evaluate in small batches to bound activation memory.
  const std::size_t chunk = 8;
  for (std::size_t begin = 0; begin < data_->test.size(); begin += chunk) {
    std::vector<std::size_t> idx;
    for (std::size_t i = begin;
         i < std::min(begin + chunk, data_->test.size()); ++i) {
      idx.push_back(i);
    }
    Batch batch = make_batch(data_->test, idx);
    Tensor pred = model_->forward(batch.x, /*training=*/false);
    auc.add(pred, batch.y);
  }
  return auc.auc();
}

}  // namespace fleda
