#include "fl/client.hpp"

#include <stdexcept>
#include <utility>

#include "metrics/roc_auc.hpp"
#include "nn/loss.hpp"
#include "obs/profiler.hpp"

namespace fleda {

Client::Client(int id, const ClientDataset* data,
               std::shared_ptr<ModelPool> pool, Rng rng,
               ClientInitSchema schema)
    : id_(id),
      data_(data),
      pool_(std::move(pool)),
      rng_(rng),
      init_schema_(schema) {
  if (data_ == nullptr || data_->train.empty() || data_->test.empty()) {
    throw std::invalid_argument("Client: empty dataset for client " +
                                std::to_string(id));
  }
  if (pool_ == nullptr) {
    throw std::invalid_argument("Client: null model pool for client " +
                                std::to_string(id));
  }
  if (init_schema_ == ClientInitSchema::kReplayInit) {
    // Keep the rng stream bit-identical to the per-client-model seed
    // implementation, which constructed (and kept) a model here.
    // kFastInit skips the replay: construction is O(1), the client's
    // rng stream starts directly at its first training draw.
    pool_->consume_init_stream(rng_);
  }
}

Client::Client(int id, const ClientDataset* data, const ModelFactory& factory,
               Rng rng, ClientInitSchema schema)
    : Client(id, data, std::make_shared<ModelPool>(factory), std::move(rng),
             schema) {}

ModelParameters Client::train_steps(const ModelParameters& start, int steps,
                                    const ClientTrainConfig& cfg,
                                    const ModelParameters* anchor) {
  ModelLease lease = pool_->acquire();
  RoutabilityModel& model = lease.model();
  start.apply_to(model);

  AdamOptions aopts;
  aopts.lr = cfg.learning_rate;
  aopts.weight_decay = cfg.l2_regularization;
  Adam& optimizer = lease.adam(aopts);
  if (cfg.reset_optimizer || adam_moments_.empty()) {
    // Fresh moments, exactly like constructing a new Adam each round.
    optimizer.reset_state();
  } else {
    optimizer.import_moments(adam_moments_);
  }

  BatchSampler sampler(data_->train.size(),
                       static_cast<std::size_t>(cfg.batch_size),
                       rng_.fork(0x6261746368ull));

  // Validate the anchor against the model's parameter order up front
  // (buffers are not part of the proximal term; the mu-gradient loop
  // below walks anchor->entries() directly).
  if (anchor != nullptr) {
    const auto params = model.parameters();
    std::size_t i = 0;
    for (const ParameterEntry& e : anchor->entries()) {
      if (e.is_buffer) continue;
      if (i >= params.size() || params[i]->name != e.name) {
        throw std::invalid_argument("Client: anchor/model mismatch at " +
                                    e.name);
      }
      ++i;
    }
  }

  double loss_acc = 0.0;
  for (int step = 0; step < steps; ++step) {
    Batch batch = make_batch(data_->train, sampler.next());
    optimizer.zero_grad();
    LossResult loss;
    {
      ProfileScope fwd(phase::kTrainForward);
      Tensor pred = model.forward(batch.x, /*training=*/true);
      loss = mse_loss(pred, batch.y);
    }
    loss_acc += loss.value;
    {
      ProfileScope bwd(phase::kTrainBackward);
      model.backward(loss.grad);
      if (anchor != nullptr && cfg.mu > 0.0) {
        // grad += mu * (w - W^r)
        const auto params = model.parameters();
        std::size_t i = 0;
        for (const ParameterEntry& e : anchor->entries()) {
          if (e.is_buffer) continue;
          Parameter* p = params[i++];
          const float mu = static_cast<float>(cfg.mu);
          float* g = p->grad.data();
          const float* w = p->value.data();
          const float* a = e.value.data();
          const std::int64_t n = p->value.numel();
          for (std::int64_t j = 0; j < n; ++j) g[j] += mu * (w[j] - a[j]);
        }
      }
    }
    ProfileScope opt(phase::kTrainOptimizer);
    optimizer.step();
  }
  last_train_loss_ = steps > 0 ? static_cast<float>(loss_acc / steps) : 0.0f;

  if (cfg.reset_optimizer) {
    adam_moments_.clear();
  } else {
    // The scratch optimizer goes back to the pool; the moments are the
    // client's to keep.
    adam_moments_ = optimizer.export_moments();
  }
  return ModelParameters::from_model(model);
}

ModelParameters Client::local_update(const ModelParameters& start,
                                     const ClientTrainConfig& cfg) {
  return train_steps(start, cfg.steps, cfg, &start);
}

ModelParameters Client::fine_tune(const ModelParameters& start, int steps,
                                  const ClientTrainConfig& cfg) {
  return train_steps(start, steps, cfg, /*anchor=*/nullptr);
}

double Client::evaluate_train_loss(const ModelParameters& params,
                                   int max_batches) {
  ModelLease lease = pool_->acquire();
  RoutabilityModel& model = lease.model();
  params.apply_to(model);
  BatchSampler sampler(data_->train.size(), 8, rng_.fork(0x6c6f7373ull));
  double acc = 0.0;
  int batches = 0;
  for (int b = 0; b < max_batches; ++b) {
    Batch batch = make_batch(data_->train, sampler.next());
    Tensor pred = model.forward(batch.x, /*training=*/false);
    acc += mse_loss(pred, batch.y).value;
    ++batches;
  }
  return batches > 0 ? acc / batches : 0.0;
}

double Client::evaluate_test_auc(const ModelParameters& params) {
  ModelLease lease = pool_->acquire();
  RoutabilityModel& model = lease.model();
  params.apply_to(model);
  AucAccumulator auc;
  // Evaluate in small batches to bound activation memory.
  const std::size_t chunk = 8;
  for (std::size_t begin = 0; begin < data_->test.size(); begin += chunk) {
    std::vector<std::size_t> idx;
    for (std::size_t i = begin;
         i < std::min(begin + chunk, data_->test.size()); ++i) {
      idx.push_back(i);
    }
    Batch batch = make_batch(data_->test, idx);
    Tensor pred = model.forward(batch.x, /*training=*/false);
    auc.add(pred, batch.y);
  }
  return auc.auc();
}

}  // namespace fleda
