#include "fl/trainer.hpp"

#include <stdexcept>

#include "util/thread_pool.hpp"

namespace fleda {

std::vector<ModelParameters> FederatedAlgorithm::parallel_local_updates(
    std::vector<Client>& clients,
    const std::vector<const ModelParameters*>& deployed,
    const ClientTrainConfig& cfg) {
  if (clients.size() != deployed.size()) {
    throw std::invalid_argument("parallel_local_updates: size mismatch");
  }
  std::vector<ModelParameters> updates(clients.size());
  parallel_for(clients.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t k = begin; k < end; ++k) {
      updates[k] = clients[k].local_update(*deployed[k], cfg);
    }
  });
  return updates;
}

}  // namespace fleda
