#include "fl/trainer.hpp"

#include <memory>
#include <stdexcept>
#include <utility>

#include "obs/telemetry.hpp"
#include "util/thread_pool.hpp"

namespace fleda {

std::vector<ModelParameters> FederatedAlgorithm::run(
    std::vector<Client>& clients, const ModelFactory& factory,
    const FLRunOptions& opts) {
  Channel channel(opts.comm);
  channel.set_links(links_from_profiles(opts.sim, clients.size()));
  SimEngine engine(opts.sim, opts.comm, clients.size());
  engine.set_trace_enabled(opts.trace);
  FederationSim sim(channel, engine);
  // Direct algo.run() callers get FLEDA_TELEMETRY_FILE streaming even
  // without wiring a sink themselves; an explicit sink wins.
  std::unique_ptr<TelemetrySink> env_sink;
  TelemetrySink* telemetry = opts.telemetry;
  if (telemetry == nullptr) {
    const std::string path = TelemetrySink::env_path();
    if (!path.empty()) {
      env_sink = std::make_unique<TelemetrySink>(path);
      telemetry = env_sink.get();
    }
  }
  sim.set_telemetry(telemetry);
  // Defense wiring: an explicit detector/book wins; otherwise run()
  // creates private ones when the config calls for them. The book only
  // fills when a detector feeds it, so reputation-weighted sampling
  // without either is a silent uniform fallback — rejected instead.
  std::unique_ptr<AnomalyDetector> own_detector;
  AnomalyDetector* detector = opts.detector;
  if (detector == nullptr && opts.anomaly.enabled) {
    own_detector = std::make_unique<AnomalyDetector>(opts.anomaly);
    detector = own_detector.get();
  }
  std::unique_ptr<ReputationBook> own_book;
  ReputationBook* reputation = opts.reputation;
  const bool wants_reputation =
      opts.participation.kind == ParticipationKind::kReputationWeighted;
  if (reputation == nullptr && wants_reputation) {
    if (detector == nullptr) {
      throw std::invalid_argument(
          "FederatedAlgorithm::run: kReputationWeighted participation "
          "needs verdicts to weight by — set FLRunOptions::anomaly.enabled "
          "(or pass detector/reputation explicitly)");
    }
    own_book = std::make_unique<ReputationBook>();
    reputation = own_book.get();
  }
  sim.set_anomaly(detector, reputation);
  // Importance weights for kImportanceSample: each client's sample
  // count (more data = more informative per round), optionally scaled
  // by (1 + last training loss) so clients whose local objective is
  // still high are revisited sooner. Evaluated at select time on the
  // coordinator thread; `clients` outlives the policy.
  ImportanceSample::WeightProvider importance;
  if (opts.participation.kind == ParticipationKind::kImportanceSample) {
    const bool by_loss = opts.participation.loss_weighted;
    importance = [&clients, by_loss](std::size_t k) {
      double w = static_cast<double>(clients[k].num_train());
      if (by_loss) {
        w *= 1.0 + static_cast<double>(clients[k].last_train_loss());
      }
      return w;
    };
  }
  std::unique_ptr<ParticipationPolicy> participation =
      make_participation_policy(opts.participation, reputation,
                                std::move(importance));
  std::vector<ModelParameters> finals =
      run_rounds(clients, factory, opts, sim, *participation);
  if (opts.comm_stats != nullptr) *opts.comm_stats = channel.stats();
  if (opts.sim_report != nullptr) *opts.sim_report = engine.report();
  return finals;
}

std::vector<ModelParameters> FederatedAlgorithm::run_rounds_of(
    FederatedAlgorithm& algo, std::vector<Client>& clients,
    const ModelFactory& factory, const FLRunOptions& opts,
    FederationSim& sim, ParticipationPolicy& participation) {
  return algo.run_rounds(clients, factory, opts, sim, participation);
}

std::unique_ptr<AggregationRule> FederatedAlgorithm::sync_aggregation_rule(
    const FLRunOptions& opts) {
  if (opts.aggregation.rule.empty()) {
    return std::make_unique<WeightedAverage>();
  }
  std::unique_ptr<AggregationRule> rule =
      make_aggregation_rule(opts.aggregation);
  if (rule->folds_into_current()) {
    // A mixing rule treats its cohort as deltas; fed the sync
    // barrier's full-parameter updates it would compound the model
    // geometrically (global += mix * avg(full models)) and "diverge"
    // with no attacker in sight.
    throw std::invalid_argument(
        "aggregation rule '" + rule->name() +
        "' folds deltas into the current model and cannot aggregate a "
        "synchronous round's full-parameter updates (use it with "
        "AsyncFedAvg, or pick an averaging rule)");
  }
  return rule;
}

std::vector<std::size_t> FederatedAlgorithm::select_cohort(
    ParticipationPolicy& participation, int round, std::size_t num_clients,
    const FLRunOptions& opts, const FederationSim& sim) {
  ParticipationContext ctx;
  ctx.round = round;
  ctx.num_clients = num_clients;
  ctx.now = sim.now();
  ctx.sim = &opts.sim;
  return participation.select(ctx);
}

std::vector<ModelParameters> FederatedAlgorithm::parallel_local_updates(
    std::vector<Client>& clients,
    const std::vector<const ModelParameters*>& deployed,
    const ClientTrainConfig& cfg) {
  if (clients.size() != deployed.size()) {
    throw std::invalid_argument("parallel_local_updates: size mismatch");
  }
  std::vector<ModelParameters> updates(clients.size());
  parallel_for(clients.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t k = begin; k < end; ++k) {
      updates[k] = clients[k].local_update(*deployed[k], cfg);
    }
  });
  return updates;
}

std::vector<ModelParameters> FederatedAlgorithm::parallel_local_updates(
    std::vector<Client>& clients,
    const std::vector<const ModelParameters*>& deployed,
    const ClientTrainConfig& cfg, FederationSim& sim) {
  if (clients.size() != deployed.size()) {
    throw std::invalid_argument("parallel_local_updates: size mismatch");
  }
  std::vector<std::size_t> everyone(clients.size());
  for (std::size_t k = 0; k < everyone.size(); ++k) everyone[k] = k;
  return cohort_local_updates(clients, everyone, deployed, cfg, sim);
}

namespace {

// Shared by the dense and streaming round bodies. The channel's
// parallel encode/decode touches per-client state (error-feedback
// residuals, downlink references), which is only safe for distinct
// indices — require the policies' strictly ascending order instead of
// racing on duplicates.
void validate_cohort(const char* where, std::size_t num_clients,
                     const std::vector<std::size_t>& cohort) {
  for (std::size_t i = 0; i < cohort.size(); ++i) {
    if (cohort[i] >= num_clients) {
      throw std::out_of_range(std::string(where) + ": client index " +
                              std::to_string(cohort[i]) + " >= " +
                              std::to_string(num_clients));
    }
    if (i > 0 && cohort[i] <= cohort[i - 1]) {
      throw std::invalid_argument(
          std::string(where) +
          ": cohort indices must be strictly ascending (got " +
          std::to_string(cohort[i]) + " after " +
          std::to_string(cohort[i - 1]) + ")");
    }
  }
}

// Adaptive attackers carry state (their trajectory estimate) across
// rounds. Slot pointers are gathered on the coordinator thread —
// growing the deque inside a parallel loop would race — and each slot
// is touched only by its owning client's iteration.
std::vector<AttackState*> gather_attack_states(
    FederationSim& sim, const std::vector<std::size_t>& cohort) {
  std::vector<AttackState*> states(cohort.size(), nullptr);
  for (std::size_t i = 0; i < cohort.size(); ++i) {
    if (sim.engine().profile(cohort[i]).attack.kind ==
        AttackKind::kAdaptiveScaled) {
      states[i] = sim.attack_state(cohort[i]);
    }
  }
  return states;
}

void record_cohort_telemetry(FederationSim& sim,
                             const std::vector<std::size_t>& cohort) {
  TelemetrySink* sink = sim.telemetry();
  if (sink == nullptr) return;
  int attackers = 0;
  for (std::size_t k : cohort) {
    if (sim.engine().profile(k).attack.kind != AttackKind::kNone) {
      ++attackers;
    }
  }
  sink->record_cohort(static_cast<int>(cohort.size()), attackers);
  // Every sync update is aggregated at the version it trained on.
  for (std::size_t i = 0; i < cohort.size(); ++i) {
    sink->record_staleness(0);
  }
}

}  // namespace

std::vector<ModelParameters> FederatedAlgorithm::cohort_local_updates(
    std::vector<Client>& clients, const std::vector<std::size_t>& cohort,
    const std::vector<const ModelParameters*>& deployed,
    const ClientTrainConfig& cfg, FederationSim& sim) {
  if (cohort.size() != deployed.size()) {
    throw std::invalid_argument("cohort_local_updates: size mismatch");
  }
  validate_cohort("cohort_local_updates", clients.size(), cohort);
  Channel& channel = sim.channel();
  // Downlink: cohort members train from what they decode, not from the
  // server-side snapshot — a lossy codec's error feeds into training.
  const std::vector<std::shared_ptr<const ModelParameters>> received =
      channel.broadcast(deployed, cohort);
  // Byzantine behaviors fire between training and upload: a
  // compromised client trains honestly (its rng stream is unchanged)
  // and corrupts what it sends. Completed channel rounds disambiguate
  // repeated attacks by the same client (the noise-stream nonce).
  const std::uint64_t round_nonce = channel.stats().rounds.size();
  std::vector<AttackState*> attack_states = gather_attack_states(sim, cohort);
  std::vector<ModelParameters> updates(cohort.size());
  parallel_for(cohort.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      const std::size_t k = cohort[i];
      updates[i] = clients[k].local_update(*received[i], cfg);
      const AttackSpec& attack = sim.engine().profile(k).attack;
      if (attack.kind != AttackKind::kNone) {
        updates[i] = apply_attack(attack, std::move(updates[i]), *received[i],
                                  k, round_nonce, attack_states[i]);
      }
    }
  });
  // Uplink: the decoded deployment is the shared reference for delta
  // codecs (both sides hold it).
  std::vector<const ModelParameters*> references;
  references.reserve(received.size());
  for (const auto& r : received) references.push_back(r.get());
  // Handing `updates` over lets the channel drop each raw update right
  // after its wire roundtrip — without the move the round briefly held
  // two full cohorts (raw + decoded), a 2x spike at exactly the
  // all-cohorts-resident peak.
  std::vector<ModelParameters> collected =
      channel.collect(std::move(updates), references, cohort);
  // Server-side detection sees exactly what the aggregator will see:
  // the collected (decoded) updates against the deployed references.
  sim.observe_cohort_updates(cohort, collected, references);
  record_cohort_telemetry(sim, cohort);
  // Barrier policy: the round's events run on the virtual clock and
  // the round closes at the slowest cohort member's upload.
  sim.finish_sync_round(cfg.steps, cohort);
  return collected;
}

bool FederatedAlgorithm::streaming_rounds(const FLRunOptions& opts,
                                          const AggregationRule& rule,
                                          const FederationSim& sim) {
  return opts.aggregation.streaming && !rule.requires_dense() &&
         sim.anomaly_detector() == nullptr;
}

ModelParameters FederatedAlgorithm::streaming_cohort_round(
    std::vector<Client>& clients, const std::vector<std::size_t>& cohort,
    const ModelParameters& global, const std::vector<double>& cohort_weights,
    const AggregationRule& rule, const AggregationConfig& agg,
    const ClientTrainConfig& cfg, FederationSim& sim) {
  if (cohort.size() != cohort_weights.size()) {
    throw std::invalid_argument("streaming_cohort_round: size mismatch");
  }
  validate_cohort("streaming_cohort_round", clients.size(), cohort);
  Channel& channel = sim.channel();
  const std::vector<const ModelParameters*> deployed(cohort.size(), &global);
  const std::vector<std::shared_ptr<const ModelParameters>> received =
      channel.broadcast(deployed, cohort);
  const std::uint64_t round_nonce = channel.stats().rounds.size();
  std::vector<AttackState*> attack_states = gather_attack_states(sim, cohort);
  std::vector<const ModelParameters*> references;
  references.reserve(received.size());
  for (const auto& r : received) references.push_back(r.get());
  ShardLayout layout;
  layout.cohort_size = cohort.size();
  layout.lanes = kFoldLanes;
  layout.shards = agg.shards;
  const std::vector<std::size_t> lanes =
      fold_lane_offsets(cohort.size(), layout.lanes);
  std::vector<std::unique_ptr<StreamingAccumulator>> accs(layout.lanes);
  for (std::size_t l = 0; l < accs.size(); ++l) {
    accs[l] = rule.accumulator(global, layout);
  }
  // Each cohort member trains inside its fold lane (produce), so lane
  // count is also the round's training parallelism; the decoded upload
  // folds into the lane's accumulator (consume) and is freed before
  // the lane's next member starts. At no point does more than
  // lanes x (1 update + 1 accumulator) live on the server.
  channel.collect_streaming(
      cohort, references, lanes,
      [&](std::size_t i) {
        const std::size_t k = cohort[i];
        ModelParameters update = clients[k].local_update(*received[i], cfg);
        const AttackSpec& attack = sim.engine().profile(k).attack;
        if (attack.kind != AttackKind::kNone) {
          update = apply_attack(attack, std::move(update), *received[i], k,
                                round_nonce, attack_states[i]);
        }
        return update;
      },
      [&](std::size_t lane, std::size_t i, ModelParameters&& decoded) {
        accs[lane]->fold(decoded, cohort_weights[i], /*staleness=*/0,
                         static_cast<int>(cohort[i]));
      });
  record_cohort_telemetry(sim, cohort);
  sim.finish_sync_round(cfg.steps, cohort);
  // Lane order is the merge order — part of the deterministic contract.
  for (std::size_t l = 1; l < accs.size(); ++l) {
    accs[0]->merge(*accs[l]);
  }
  return accs[0]->finish();
}

}  // namespace fleda
