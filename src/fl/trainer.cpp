#include "fl/trainer.hpp"

#include <stdexcept>

#include "util/thread_pool.hpp"

namespace fleda {

std::vector<ModelParameters> FederatedAlgorithm::run(
    std::vector<Client>& clients, const ModelFactory& factory,
    const FLRunOptions& opts) {
  Channel channel(opts.comm);
  channel.set_links(links_from_profiles(opts.sim, clients.size()));
  SimEngine engine(opts.sim, opts.comm, clients.size());
  engine.set_trace_enabled(opts.trace);
  FederationSim sim(channel, engine);
  std::vector<ModelParameters> finals =
      run_rounds(clients, factory, opts, sim);
  if (opts.comm_stats != nullptr) *opts.comm_stats = channel.stats();
  if (opts.sim_report != nullptr) *opts.sim_report = engine.report();
  return finals;
}

std::vector<ModelParameters> FederatedAlgorithm::run_rounds_of(
    FederatedAlgorithm& algo, std::vector<Client>& clients,
    const ModelFactory& factory, const FLRunOptions& opts,
    FederationSim& sim) {
  return algo.run_rounds(clients, factory, opts, sim);
}

std::vector<ModelParameters> FederatedAlgorithm::parallel_local_updates(
    std::vector<Client>& clients,
    const std::vector<const ModelParameters*>& deployed,
    const ClientTrainConfig& cfg) {
  if (clients.size() != deployed.size()) {
    throw std::invalid_argument("parallel_local_updates: size mismatch");
  }
  std::vector<ModelParameters> updates(clients.size());
  parallel_for(clients.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t k = begin; k < end; ++k) {
      updates[k] = clients[k].local_update(*deployed[k], cfg);
    }
  });
  return updates;
}

std::vector<ModelParameters> FederatedAlgorithm::parallel_local_updates(
    std::vector<Client>& clients,
    const std::vector<const ModelParameters*>& deployed,
    const ClientTrainConfig& cfg, FederationSim& sim) {
  if (clients.size() != deployed.size()) {
    throw std::invalid_argument("parallel_local_updates: size mismatch");
  }
  Channel& channel = sim.channel();
  // Downlink: clients train from what they decode, not from the
  // server-side snapshot — a lossy codec's error feeds into training.
  const std::vector<std::shared_ptr<const ModelParameters>> received =
      channel.broadcast(deployed);
  std::vector<ModelParameters> updates(clients.size());
  parallel_for(clients.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t k = begin; k < end; ++k) {
      updates[k] = clients[k].local_update(*received[k], cfg);
    }
  });
  // Uplink: the decoded deployment is the shared reference for delta
  // codecs (both sides hold it).
  std::vector<const ModelParameters*> references;
  references.reserve(received.size());
  for (const auto& r : received) references.push_back(r.get());
  std::vector<ModelParameters> collected =
      channel.collect(updates, references);
  // Barrier policy: the round's events run on the virtual clock and
  // the round closes at the slowest client's upload.
  sim.finish_sync_round(cfg.steps);
  return collected;
}

}  // namespace fleda
