// Non-federated baselines from the paper's tables:
//   - "Local Average (b_1 to b_9)": each client trains a model on its
//     own data only (traditional per-company commissioning).
//   - "Training Centrally on All Data": all clients' training data is
//     pooled on one machine (no privacy) — the empirical upper limit.
#pragma once

#include <vector>

#include "fl/client.hpp"

namespace fleda {

struct BaselineOptions {
  int total_steps = 5000;  // comparable budget to R * S
  ClientTrainConfig client;  // lr / batch / l2 reused; mu ignored
  std::uint64_t seed = 1;
};

// Trains b_k for every client (in parallel); returns one model per
// client, trained exclusively on that client's data.
std::vector<ModelParameters> train_local_baselines(
    std::vector<Client>& clients, const ModelFactory& factory,
    const BaselineOptions& opts);

// Trains one model on the union of all clients' training data.
ModelParameters train_centralized(const std::vector<ClientDataset>& clients,
                                  const ModelFactory& factory,
                                  const BaselineOptions& opts);

}  // namespace fleda
