// ModelParameters: a named snapshot of a model's state (trainable
// parameters + non-trainable buffers such as BatchNorm running
// statistics). This is the unit of communication in the decentralized
// training setting: clients send ModelParameters to the developer, the
// developer aggregates and sends ModelParameters back — never data.
//
// Buffers are included in aggregation on purpose: averaging BatchNorm
// running statistics across heterogeneous clients is precisely the
// instability the paper's FLNet design sidesteps.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "models/registry.hpp"
#include "nn/module.hpp"

namespace fleda {

struct ParameterEntry {
  std::string name;
  bool is_buffer = false;
  Tensor value;
};

class ModelParameters {
 public:
  ModelParameters() = default;

  // Snapshots a model's parameters and buffers (deep copy).
  static ModelParameters from_model(Module& model);

  // Writes values back into a model with identical architecture.
  // Throws std::invalid_argument on any name/shape mismatch.
  void apply_to(Module& model) const;

  // Weighted average of several snapshots; weights are normalized
  // internally. All snapshots must be structurally identical.
  static ModelParameters weighted_average(
      const std::vector<const ModelParameters*>& snapshots,
      const std::vector<double>& weights);

  // this += alpha * other (entrywise; structures must match).
  void add_scaled(const ModelParameters& other, double alpha);
  void scale(double alpha);

  // Sum over trainable entries of ||a - b||^2 (buffers excluded) —
  // the FedProx proximal distance.
  double squared_distance(const ModelParameters& other) const;

  // ||a - b||^2 over ALL entries (buffers included, like
  // squared_l2_norm) — the pairwise distance Krum-style rules score
  // on: a poisoned buffer must count against its sender too. Computed
  // without materializing the difference snapshot, so the O(n^2)
  // pairwise pass over a cohort allocates nothing.
  double squared_l2_distance(const ModelParameters& other) const;

  // <this, other> over ALL entries — the anomaly detector's cosine
  // ingredient. Accumulated in double; NaN/Inf operands propagate.
  double dot(const ModelParameters& other) const;

  // ||this||^2 over ALL entries (buffers included). Doubles as the
  // aggregation layer's finiteness probe: the sum is NaN/Inf iff some
  // value is, so one accumulation pass screens a whole update.
  double squared_l2_norm() const;

  // Merge: entries whose name satisfies `take_other` come from
  // `other`, the rest from *this. Used by FedProx-LG to combine the
  // aggregated global part with each client's private local part.
  ModelParameters merged_with(
      const ModelParameters& other,
      const std::function<bool(const std::string&)>& take_other) const;

  bool structurally_equal(const ModelParameters& other) const;
  std::int64_t numel() const;
  bool empty() const { return entries_.empty(); }
  const std::vector<ParameterEntry>& entries() const { return entries_; }
  // Mutable access for mechanisms that transform snapshots in place
  // (e.g. the DP Gaussian mechanism). Structure (names, shapes, order)
  // must not be changed.
  std::vector<ParameterEntry>& mutable_entries() { return entries_; }

 private:
  std::vector<ParameterEntry> entries_;
};

// Name predicate for the paper's FedProx-LG split: the models' output
// layer ("output_conv.*") is the private local part.
bool is_output_layer_param(const std::string& name);

// Builds one model instance from `factory`, snapshots it, and destroys
// it before returning. Round loops use this for their initial global /
// cluster parameters so no algorithm pins a whole model for the length
// of a run — the O(threads) live-instance budget belongs to the
// scratch-model pool.
ModelParameters initial_model_parameters(const ModelFactory& factory,
                                         Rng& rng);

}  // namespace fleda
