#include "fl/parameters.hpp"

#include <cmath>
#include <stdexcept>

#include "tensor/ops.hpp"

namespace fleda {

ModelParameters ModelParameters::from_model(Module& model) {
  // Hot path (called once per local_update): one virtual walk each for
  // parameters and buffers, entries reserved up front so the snapshot
  // vector never reallocates mid-extraction.
  const std::vector<Parameter*> params = model.parameters();
  const std::vector<NamedBuffer> buffers = model.buffers();
  ModelParameters snapshot;
  snapshot.entries_.reserve(params.size() + buffers.size());
  for (Parameter* p : params) {
    snapshot.entries_.push_back({p->name, false, p->value});
  }
  for (const NamedBuffer& b : buffers) {
    snapshot.entries_.push_back({b.name, true, *b.tensor});
  }
  return snapshot;
}

void ModelParameters::apply_to(Module& model) const {
  std::size_t i = 0;
  for (Parameter* p : model.parameters()) {
    if (i >= entries_.size() || entries_[i].name != p->name ||
        entries_[i].value.shape() != p->value.shape()) {
      throw std::invalid_argument("ModelParameters::apply_to: mismatch at " +
                                  p->name);
    }
    p->value = entries_[i].value;
    ++i;
  }
  for (const NamedBuffer& b : model.buffers()) {
    if (i >= entries_.size() || entries_[i].name != b.name ||
        entries_[i].value.shape() != b.tensor->shape()) {
      throw std::invalid_argument("ModelParameters::apply_to: mismatch at " +
                                  b.name);
    }
    *b.tensor = entries_[i].value;
    ++i;
  }
  if (i != entries_.size()) {
    throw std::invalid_argument(
        "ModelParameters::apply_to: model has fewer entries than snapshot");
  }
}

bool ModelParameters::structurally_equal(const ModelParameters& other) const {
  if (entries_.size() != other.entries_.size()) return false;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].name != other.entries_[i].name ||
        entries_[i].is_buffer != other.entries_[i].is_buffer ||
        entries_[i].value.shape() != other.entries_[i].value.shape()) {
      return false;
    }
  }
  return true;
}

ModelParameters ModelParameters::weighted_average(
    const std::vector<const ModelParameters*>& snapshots,
    const std::vector<double>& weights) {
  if (snapshots.empty()) {
    throw std::invalid_argument(
        "weighted_average: no snapshots — cannot average an empty cohort "
        "(did the participation policy sample only offline clients?)");
  }
  if (snapshots.size() != weights.size()) {
    throw std::invalid_argument(
        "weighted_average: " + std::to_string(snapshots.size()) +
        " snapshots but " + std::to_string(weights.size()) + " weights");
  }
  double total = 0.0;
  for (double w : weights) {
    if (!(w >= 0.0)) {  // negatives and NaNs both fail this
      throw std::invalid_argument(
          "weighted_average: weight " + std::to_string(w) +
          " is negative or non-finite");
    }
    total += w;
  }
  if (!(total > 0.0) || !std::isfinite(total)) {
    throw std::invalid_argument(
        "weighted_average: total weight " + std::to_string(total) +
        " — refusing to divide (would emit NaN parameters)");
  }

  ModelParameters result = *snapshots[0];
  result.scale(weights[0] / total);
  for (std::size_t s = 1; s < snapshots.size(); ++s) {
    if (!result.structurally_equal(*snapshots[s])) {
      throw std::invalid_argument("weighted_average: structure mismatch");
    }
    result.add_scaled(*snapshots[s], weights[s] / total);
  }
  return result;
}

void ModelParameters::add_scaled(const ModelParameters& other, double alpha) {
  if (!structurally_equal(other)) {
    throw std::invalid_argument("add_scaled: structure mismatch");
  }
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    axpy(entries_[i].value, static_cast<float>(alpha),
         other.entries_[i].value);
  }
}

void ModelParameters::scale(double alpha) {
  for (auto& e : entries_) scale_inplace(e.value, static_cast<float>(alpha));
}

double ModelParameters::squared_l2_norm() const {
  double acc = 0.0;
  for (const ParameterEntry& e : entries_) {
    const float* d = e.value.data();
    const std::int64_t n = e.value.numel();
    for (std::int64_t i = 0; i < n; ++i) {
      acc += static_cast<double>(d[i]) * d[i];
    }
  }
  return acc;
}

double ModelParameters::squared_distance(const ModelParameters& other) const {
  if (!structurally_equal(other)) {
    throw std::invalid_argument("squared_distance: structure mismatch");
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].is_buffer) continue;
    const Tensor& a = entries_[i].value;
    const Tensor& b = other.entries_[i].value;
    for (std::int64_t j = 0; j < a.numel(); ++j) {
      const double d = static_cast<double>(a[j]) - b[j];
      acc += d * d;
    }
  }
  return acc;
}

double ModelParameters::squared_l2_distance(
    const ModelParameters& other) const {
  if (!structurally_equal(other)) {
    throw std::invalid_argument("squared_l2_distance: structure mismatch");
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const float* a = entries_[i].value.data();
    const float* b = other.entries_[i].value.data();
    const std::int64_t n = entries_[i].value.numel();
    for (std::int64_t j = 0; j < n; ++j) {
      const double d = static_cast<double>(a[j]) - b[j];
      acc += d * d;
    }
  }
  return acc;
}

double ModelParameters::dot(const ModelParameters& other) const {
  if (!structurally_equal(other)) {
    throw std::invalid_argument("dot: structure mismatch");
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const float* a = entries_[i].value.data();
    const float* b = other.entries_[i].value.data();
    const std::int64_t n = entries_[i].value.numel();
    for (std::int64_t j = 0; j < n; ++j) {
      acc += static_cast<double>(a[j]) * b[j];
    }
  }
  return acc;
}

ModelParameters ModelParameters::merged_with(
    const ModelParameters& other,
    const std::function<bool(const std::string&)>& take_other) const {
  if (!structurally_equal(other)) {
    throw std::invalid_argument("merged_with: structure mismatch");
  }
  ModelParameters result = *this;
  for (std::size_t i = 0; i < result.entries_.size(); ++i) {
    if (take_other(result.entries_[i].name)) {
      result.entries_[i].value = other.entries_[i].value;
    }
  }
  return result;
}

std::int64_t ModelParameters::numel() const {
  std::int64_t n = 0;
  for (const auto& e : entries_) n += e.value.numel();
  return n;
}

bool is_output_layer_param(const std::string& name) {
  return name.rfind("output_conv", 0) == 0;
}

ModelParameters initial_model_parameters(const ModelFactory& factory,
                                         Rng& rng) {
  RoutabilityModelPtr init = factory(rng);
  return ModelParameters::from_model(*init);
}

}  // namespace fleda
