#include "fl/async_fedavg.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <memory>
#include <stdexcept>
#include <utility>

#include "obs/telemetry.hpp"

namespace fleda {
namespace {

// One buffered client update awaiting aggregation.
struct Buffered {
  ModelParameters delta;  // server view of (update - dispatched model)
  double weight = 0.0;    // n_k
  int dispatched_version = 0;
  int client = -1;  // sender, for aggregation-guard error messages
};

// Streaming mode keeps only this per arrival (the delta itself is
// folded into the interval's accumulator and freed on the spot).
struct PendingMeta {
  int client = -1;
  int staleness = 0;
};

}  // namespace

AsyncFedAvg::AsyncFedAvg(AsyncConfig config) : config_(config) {
  if (config_.buffer_size <= 0) {
    throw std::invalid_argument("AsyncFedAvg: buffer_size <= 0");
  }
  if (config_.max_in_flight < 0) {
    throw std::invalid_argument("AsyncFedAvg: max_in_flight < 0");
  }
  if (config_.staleness_gate_age < 0) {
    throw std::invalid_argument("AsyncFedAvg: staleness_gate_age < 0");
  }
  // Validates server_mix and the discount parameters.
  StalenessDiscountedMix(staleness_policy(config_), config_.server_mix);
}

StalenessPolicy AsyncFedAvg::staleness_policy(const AsyncConfig& config) {
  StalenessPolicy policy;
  policy.discount = config.discount;
  policy.poly_exponent = config.poly_exponent;
  policy.constant_factor = config.constant_factor;
  return policy;
}

double AsyncFedAvg::staleness_weight(const AsyncConfig& config,
                                     int staleness) {
  return staleness_policy(config).weight(staleness);
}

std::vector<ModelParameters> AsyncFedAvg::run_rounds(
    std::vector<Client>& clients, const ModelFactory& factory,
    const FLRunOptions& opts, FederationSim& sim,
    ParticipationPolicy& /*participation*/) {
  // Participation policies are a sync-barrier concept; the async loop
  // is availability-aware by construction (offline clients simply
  // rejoin when their window ends), so the policy is ignored here.
  Rng rng(opts.seed);
  ModelParameters global = initial_model_parameters(factory, rng);

  ClientTrainConfig cfg = opts.client;
  cfg.mu = 0.0;  // async FedAvg: plain local SGD, like FedAvg

  SimEngine& engine = sim.engine();
  Channel& channel = sim.channel();
  const std::vector<double> weights = Server::client_weights(clients);
  const StalenessPolicy staleness = staleness_policy(config_);
  // The configured aggregation rule; the empty default keeps the
  // historical AsyncConfig-derived StalenessDiscountedMix. NOTE: an
  // explicit rule name — including "staleness_mix" — is built from
  // AggregationConfig's own knobs (staleness / server_mix there), not
  // from this AsyncConfig; naming the rule means configuring it in
  // AggregationConfig.
  const std::unique_ptr<AggregationRule> rule =
      opts.aggregation.rule.empty()
          ? std::make_unique<StalenessDiscountedMix>(staleness,
                                                     config_.server_mix)
          : make_aggregation_rule(opts.aggregation);

  int version = 0;  // completed aggregations, the async "round" counter
  // Per-client upload counter, the Byzantine noise-stream nonce: a
  // fast client can upload twice at one model version, and each send
  // must draw fresh noise. Event callbacks run serially on the engine
  // thread, so the counters are deterministic.
  std::vector<std::uint64_t> attack_sends(clients.size(), 0);
  std::vector<Buffered> buffer;
  buffer.reserve(static_cast<std::size_t>(config_.buffer_size));
  double last_aggregate_time = 0.0;

  // Streaming mode: each delta folds into the interval's accumulator
  // the moment it arrives and is freed, so the server never holds the
  // buffer's deltas — only one accumulator plus per-arrival metadata.
  // Safe because an arrival's staleness (version - dispatched_version)
  // cannot change after it: `version` only advances in aggregate(),
  // which fires AT the buffer-filling arrival. Event callbacks run
  // serially on the engine thread, so a single lane suffices.
  const bool streaming = opts.aggregation.streaming &&
                         !rule->requires_dense() &&
                         sim.anomaly_detector() == nullptr;
  ShardLayout stream_layout;
  stream_layout.cohort_size = static_cast<std::size_t>(config_.buffer_size);
  stream_layout.lanes = 1;
  stream_layout.shards = opts.aggregation.shards;
  // Averaging rules combine the deltas around a zero anchor (FedBuff's
  // robust-consensus composition, exactly like the dense branch below);
  // mixing rules fold into the live global.
  ModelParameters zero_anchor;
  if (streaming && !rule->folds_into_current()) {
    zero_anchor = global;
    zero_anchor.scale(0.0);
  }
  std::unique_ptr<StreamingAccumulator> interval_acc;
  std::vector<PendingMeta> pending;
  pending.reserve(static_cast<std::size_t>(config_.buffer_size));

  auto aggregate = [&]() {
    if (streaming) {
      if (TelemetrySink* sink = sim.telemetry()) {
        int attackers = 0;
        for (const PendingMeta& m : pending) {
          if (m.client >= 0 &&
              engine.profile(static_cast<std::size_t>(m.client)).attack.kind !=
                  AttackKind::kNone) {
            ++attackers;
          }
        }
        sink->record_cohort(static_cast<int>(pending.size()), attackers);
        for (const PendingMeta& m : pending) {
          sink->record_staleness(m.staleness);
        }
      }
      if (rule->folds_into_current()) {
        // finish() fully builds the next model from the accumulator
        // before `global` (its anchor) is replaced.
        ModelParameters next = interval_acc->finish();
        interval_acc.reset();
        global = std::move(next);
      } else {
        const ModelParameters step = interval_acc->finish();
        interval_acc.reset();
        global.add_scaled(step, config_.server_mix);
      }
      pending.clear();
      ++version;
      engine.note(SimEventKind::kAggregate, /*client=*/-1, version - 1);
      channel.end_round(engine.now() - last_aggregate_time);
      last_aggregate_time = engine.now();
      sim.close_telemetry_round();
      if (opts.on_round) {
        opts.on_round(version - 1,
                      std::vector<ModelParameters>(clients.size(), global));
      }
      return;
    }
    // Mixing rules (the StalenessDiscountedMix default) fold the
    // buffered deltas into the model themselves: global += eta *
    // sum_i n_i s(tau_i) delta_i / sum_i n_i s(tau_i). An averaging
    // rule (coordinate_median, trimmed_mean, norm_clipped_mean, ...)
    // instead combines the deltas around a zero anchor into one robust
    // consensus delta, which the server folds in with its mixing rate
    // — FedBuff's robust-aggregation composition. The staleness
    // discount is applied through the weights, which only the
    // weight-sensitive rules (weighted_average, norm_clipped_mean)
    // consume; the rank-based rules ignore weights by design, so under
    // them stale deltas vote with full strength.
    std::vector<AggregationInput> cohort;
    cohort.reserve(buffer.size());
    for (const Buffered& b : buffer) {
      cohort.push_back({&b.delta, b.weight, version - b.dispatched_version,
                        b.client});
    }
    if (TelemetrySink* sink = sim.telemetry()) {
      int attackers = 0;
      for (const Buffered& b : buffer) {
        if (b.client >= 0 &&
            engine.profile(static_cast<std::size_t>(b.client)).attack.kind !=
                AttackKind::kNone) {
          ++attackers;
        }
      }
      sink->record_cohort(static_cast<int>(buffer.size()), attackers);
      for (const Buffered& b : buffer) {
        sink->record_staleness(version - b.dispatched_version);
      }
    }
    // Server-side detection scores the buffered deltas before they are
    // consumed (pure observer — no-op without a detector).
    if (sim.anomaly_detector() != nullptr) {
      std::vector<std::size_t> senders;
      std::vector<const ModelParameters*> deltas;
      senders.reserve(buffer.size());
      deltas.reserve(buffer.size());
      for (const Buffered& b : buffer) {
        if (b.client < 0) continue;
        senders.push_back(static_cast<std::size_t>(b.client));
        deltas.push_back(&b.delta);
      }
      sim.observe_cohort_deltas(senders, deltas);
    }
    if (rule->folds_into_current()) {
      global = rule->aggregate(global, cohort);
    } else {
      for (AggregationInput& in : cohort) {
        in.weight *= staleness.weight(in.staleness);
      }
      ModelParameters zero = global;
      zero.scale(0.0);
      const ModelParameters step = rule->aggregate(zero, cohort);
      global.add_scaled(step, config_.server_mix);
    }
    buffer.clear();
    ++version;
    engine.note(SimEventKind::kAggregate, /*client=*/-1, version - 1);
    // Channel round entry = one aggregation interval, so cumulative
    // per-round latency stays meaningful for time-to-target plots.
    channel.end_round(engine.now() - last_aggregate_time);
    last_aggregate_time = engine.now();
    sim.close_telemetry_round();
    if (opts.on_round) {
      opts.on_round(version - 1,
                    std::vector<ModelParameters>(clients.size(), global));
    }
  };

  // Dispatch gate (max_in_flight): at most `cap` clients hold a
  // dispatched model at once; the rest queue FIFO for a freed slot.
  // cap == 0 disables the gate and is event-for-event identical to the
  // ungated loop.
  const int cap = config_.max_in_flight;
  int in_flight = 0;
  std::deque<std::size_t> waiting;
  std::function<void(std::size_t)> start_chain;

  // The staleness-aware effective cap: when the oldest buffered update
  // is more than staleness_gate_age versions behind, shed one slot per
  // excess version (never below 1). With staleness_gate_age == 0 this
  // is exactly `cap`, so the run is event-for-event identical to the
  // fixed gate. All callers run serially on the engine thread.
  auto effective_cap = [&]() {
    if (cap <= 0 || config_.staleness_gate_age <= 0) return cap;
    int oldest = version;
    for (const Buffered& b : buffer) {
      oldest = std::min(oldest, b.dispatched_version);
    }
    // Streaming mode tracks arrivals as metadata; an entry's recorded
    // staleness is exact (version is frozen between aggregations), so
    // its dispatch version reconstructs as version - staleness.
    for (const PendingMeta& m : pending) {
      oldest = std::min(oldest, version - m.staleness);
    }
    const int excess = (version - oldest) - config_.staleness_gate_age;
    return excess > 0 ? std::max(1, cap - excess) : cap;
  };
  // Fills free slots from the FIFO queue. Under the fixed gate at most
  // one slot frees at a time (one iteration — the historical
  // behavior); after an aggregation the staleness gate can reopen
  // several slots at once, hence the loop.
  auto drain_waiting = [&]() {
    while (!waiting.empty() && version < opts.rounds &&
           in_flight < effective_cap()) {
      const std::size_t next = waiting.front();
      waiting.pop_front();
      ++in_flight;
      start_chain(next);
    }
  };

  // (Re)requests work for client k, taking a slot or queueing.
  auto request_dispatch = [&](std::size_t k) {
    if (version >= opts.rounds) return;  // run over: stop feeding work
    if (cap > 0 && in_flight >= effective_cap()) {
      waiting.push_back(k);
      return;
    }
    ++in_flight;
    start_chain(k);
  };
  // Client k's chain ended (delivered, lost, or permanently offline):
  // freed slots go to the longest-waiting clients.
  auto finish_chain = [&]() {
    --in_flight;
    drain_waiting();
  };

  // Dispatches the current global model to client k and schedules its
  // download -> train -> upload event chain. Invoked through
  // request_dispatch at t = 0 for every client and again from each
  // client's delivery (or drop) event.
  start_chain = [&](std::size_t k) {
    const double now = engine.now();
    const ClientProfile& profile = engine.profile(k);
    const double start = profile.next_online(now);
    if (!std::isfinite(start)) {
      // Permanently offline from here on: never rejoins the federation.
      engine.note(SimEventKind::kDropped, static_cast<int>(k), version);
      finish_chain();
      return;
    }
    std::uint64_t down_bytes = 0;
    std::shared_ptr<const ModelParameters> received =
        channel.send_down(k, global, &down_bytes);
    const int dispatched_version = version;
    engine.note(SimEventKind::kDispatch, static_cast<int>(k),
                dispatched_version);
    const double down_done =
        start + engine.download_duration(k, 1, down_bytes);
    engine.schedule(
        down_done, SimEventKind::kDownlinkDone, static_cast<int>(k),
        dispatched_version, [&, k, received, dispatched_version] {
          if (version >= opts.rounds) return;  // drain without training
          const double compute_done =
              engine.now() + engine.compute_duration(k, cfg.steps);
          engine.schedule(
              compute_done, SimEventKind::kComputeDone, static_cast<int>(k),
              dispatched_version, [&, k, received, dispatched_version] {
                if (version >= opts.rounds) return;
                // Train now, on what this client decoded at dispatch;
                // the client's rng advances in event order, which is
                // deterministic for a fixed schedule. A Byzantine
                // client corrupts its upload here (nonce = the
                // client's own send counter).
                ModelParameters update = clients[k].local_update(*received,
                                                                 cfg);
                const AttackSpec& attack = engine.profile(k).attack;
                if (attack.kind != AttackKind::kNone) {
                  // Event callbacks run serially on the engine thread,
                  // so the adaptive state deque is safe to grow here.
                  AttackState* state =
                      attack.kind == AttackKind::kAdaptiveScaled
                          ? sim.attack_state(k)
                          : nullptr;
                  update = apply_attack(attack, std::move(update), *received,
                                        k, attack_sends[k]++, state);
                }
                std::uint64_t up_bytes = 0;
                ModelParameters server_view =
                    channel.send_up(k, update, received.get(), &up_bytes);
                ModelParameters delta = std::move(server_view);
                delta.add_scaled(*received, -1.0);
                const double up_done =
                    engine.now() + engine.upload_duration(k, 1, up_bytes);
                const ClientProfile& p = engine.profile(k);
                if (!p.is_online(up_done)) {
                  // Dropout: the client goes offline before delivery —
                  // the update is lost; rejoin when the window ends.
                  engine.schedule(up_done, SimEventKind::kDropped,
                                  static_cast<int>(k), dispatched_version,
                                  [&, k] {
                                    finish_chain();
                                    request_dispatch(k);
                                  });
                  return;
                }
                engine.schedule(
                    up_done, SimEventKind::kUplinkDone, static_cast<int>(k),
                    dispatched_version,
                    [&, k, dispatched_version,
                     delta = std::move(delta)]() mutable {
                      if (version >= opts.rounds) return;
                      if (streaming) {
                        // Fold at arrival; the staleness recorded here
                        // equals what aggregate() would compute (the
                        // version only advances at the buffer-filling
                        // arrival, below this fold).
                        if (!interval_acc) {
                          interval_acc = rule->accumulator(
                              rule->folds_into_current() ? global
                                                         : zero_anchor,
                              stream_layout);
                        }
                        const int tau = version - dispatched_version;
                        double w = weights[k];
                        if (!rule->folds_into_current()) {
                          w *= staleness.weight(tau);
                        }
                        interval_acc->fold(delta, w, tau,
                                           static_cast<int>(k));
                        pending.push_back(
                            PendingMeta{static_cast<int>(k), tau});
                        delta = ModelParameters{};  // folded; free it now
                        if (static_cast<int>(pending.size()) >=
                            config_.buffer_size) {
                          aggregate();
                        }
                      } else {
                        buffer.push_back(Buffered{delta, weights[k],
                                                  dispatched_version,
                                                  static_cast<int>(k)});
                        if (static_cast<int>(buffer.size()) >=
                            config_.buffer_size) {
                          aggregate();
                        }
                      }
                      finish_chain();
                      request_dispatch(k);
                    });
              });
        });
  };

  for (std::size_t k = 0; k < clients.size(); ++k) request_dispatch(k);
  engine.run_all();

  if (version < opts.rounds) {
    throw std::runtime_error(
        "AsyncFedAvg: event queue drained after " + std::to_string(version) +
        "/" + std::to_string(opts.rounds) +
        " aggregations — not enough client updates (all clients "
        "permanently offline?)");
  }
  return std::vector<ModelParameters>(clients.size(), global);
}

}  // namespace fleda
