#include "fl/fedavg.hpp"

namespace fleda {

std::vector<ModelParameters> FedAvg::run_rounds(std::vector<Client>& clients,
                                                const ModelFactory& factory,
                                                const FLRunOptions& opts,
                                                FederationSim& sim) {
  Rng rng(opts.seed);
  RoutabilityModelPtr init = factory(rng);
  ModelParameters global = ModelParameters::from_model(*init);

  ClientTrainConfig cfg = opts.client;
  cfg.mu = 0.0;  // FedAvg: no proximal term

  const std::vector<double> weights = Server::client_weights(clients);
  for (int r = 0; r < opts.rounds; ++r) {
    std::vector<const ModelParameters*> deployed(clients.size(), &global);
    std::vector<ModelParameters> updates =
        parallel_local_updates(clients, deployed, cfg, sim);
    global = Server::aggregate(updates, weights);
    if (opts.on_round) {
      opts.on_round(r, std::vector<ModelParameters>(clients.size(), global));
    }
  }
  return std::vector<ModelParameters>(clients.size(), global);
}

}  // namespace fleda
