#include "fl/fedavg.hpp"

namespace fleda {

std::vector<ModelParameters> FedAvg::run_rounds(
    std::vector<Client>& clients, const ModelFactory& factory,
    const FLRunOptions& opts, FederationSim& sim,
    ParticipationPolicy& participation) {
  Rng rng(opts.seed);
  ModelParameters global = initial_model_parameters(factory, rng);

  ClientTrainConfig cfg = opts.client;
  cfg.mu = 0.0;  // FedAvg: no proximal term

  const std::vector<double> weights = Server::client_weights(clients);
  const std::unique_ptr<AggregationRule> rule = sync_aggregation_rule(opts);
  const bool streaming = streaming_rounds(opts, *rule, sim);
  for (int r = 0; r < opts.rounds; ++r) {
    const std::vector<std::size_t> cohort =
        select_cohort(participation, r, clients.size(), opts, sim);
    if (streaming) {
      global = streaming_cohort_round(
          clients, cohort, global, Server::cohort_weights(weights, cohort),
          *rule, opts.aggregation, cfg, sim);
    } else {
      std::vector<const ModelParameters*> deployed(cohort.size(), &global);
      std::vector<ModelParameters> updates =
          cohort_local_updates(clients, cohort, deployed, cfg, sim);
      global =
          Server::aggregate(*rule, global, updates,
                            Server::cohort_weights(weights, cohort), cohort);
    }
    if (opts.on_round) {
      opts.on_round(r, std::vector<ModelParameters>(clients.size(), global));
    }
  }
  return std::vector<ModelParameters>(clients.size(), global);
}

}  // namespace fleda
