// Server-side attacker detection and the reputation loop it feeds.
//
// AnomalyDetector scores each cohort's update deltas (update minus the
// dispatched reference) from two statistics every Byzantine behavior
// in sim/profile.hpp disturbs:
//   norm    — a delta far larger than the cohort's robust (median)
//             norm, cross-checked against an EMA baseline of previous
//             cohorts' medians (scaled/noise/naive sign-flip attacks);
//   cosine  — a delta pointing against the cohort's consensus
//             direction (sign-flip and adaptive reversed-delta
//             attacks, whose norms look honest).
// Flags are *inference*, recorded next to the ground-truth attacker
// count in RoundTelemetry so precision/recall is measurable, and they
// feed a persistent per-client ReputationBook: flagged clients lose
// sampling weight multiplicatively and recover slowly over clean
// observations. The ReputationWeighted participation policy
// (fl/participation.hpp) samples by those weights — the detect->react
// loop that down-samples suspected attackers instead of only
// absorbing their poison in a robust rule.
//
// Both classes are driven from the simulation's coordinator thread
// (round loops and event handlers are single-threaded) and are pure
// observers: enabling detection never changes the model math, so the
// clean-run fingerprint is untouched.
#pragma once

#include <cstdint>
#include <vector>

#include "fl/parameters.hpp"

namespace fleda {

struct AnomalyConfig {
  // Master switch: FLRunOptions carries this config by value and only
  // builds a detector when enabled (detection costs one O(cohort *
  // params) pass per round).
  bool enabled = false;
  // Flag when ||delta|| exceeds norm_factor times the norm reference
  // (the smaller of this cohort's median norm and the running EMA
  // baseline — the min guards against a majority-poisoned cohort
  // inflating its own median).
  double norm_factor = 3.0;
  // Flag when cos(delta, consensus) falls below this. The consensus is
  // the mean of the cohort's norm-clean deltas; honest heterogeneous
  // clients disagree (cosines well under 1) but do not point backwards.
  double cosine_threshold = -0.2;
  // EMA weight on history when folding a cohort's median norm into the
  // running baseline.
  double baseline_decay = 0.5;
  // Cohorts smaller than this are not scored — a crowd defines
  // "normal", two clients do not.
  int min_cohort = 4;
};

// One update's score card.
struct UpdateVerdict {
  std::size_t client = 0;
  double norm = 0.0;    // ||delta||
  double cosine = 1.0;  // vs the cohort consensus; 1.0 when unscored
  bool flagged = false;
};

class AnomalyDetector {
 public:
  explicit AnomalyDetector(AnomalyConfig config = {});

  const AnomalyConfig& config() const { return config_; }

  // Scores one cohort of update deltas; deltas[i] was sent by
  // federation client clients[i] (the two vectors must match in size).
  // Updates the running baseline and the per-client tallies, and
  // returns the verdicts in cohort order. Coordinator thread only;
  // deterministic (no randomness, order-independent statistics).
  std::vector<UpdateVerdict> score_cohort(
      const std::vector<std::size_t>& clients,
      const std::vector<const ModelParameters*>& deltas);

  // Cumulative tallies for precision/recall accounting: how often each
  // client was scored and how often it was flagged.
  std::uint64_t scored(std::size_t client) const;
  std::uint64_t flagged(std::size_t client) const;
  std::uint64_t total_scored() const { return total_scored_; }
  std::uint64_t total_flagged() const { return total_flagged_; }
  // EMA of cohort median delta norms (0 until the first scored cohort)
  // — doubles as a calibration probe for clip_norm-style knobs.
  double baseline_norm() const { return baseline_norm_; }

 private:
  AnomalyConfig config_;
  double baseline_norm_ = 0.0;
  bool has_baseline_ = false;
  std::vector<std::uint64_t> scored_;   // indexed by client
  std::vector<std::uint64_t> flagged_;  // indexed by client
  std::uint64_t total_scored_ = 0;
  std::uint64_t total_flagged_ = 0;
};

struct ReputationConfig {
  // Multiplicative weight penalty per flag (in (0, 1)).
  double flag_penalty = 0.25;
  // Per clean observation the weight recovers this fraction of its
  // remaining gap to 1.0 (in [0, 1]) — a false positive is forgiven
  // over tens of rounds, a repeat offender never climbs back.
  double clean_reward = 0.05;
  // Weight floor (in (0, 1]): nobody is silenced outright, so a
  // reformed or misjudged client keeps being re-examined occasionally.
  double floor = 0.02;
};

// Persistent per-client sampling weights driven by detector verdicts.
// Clients start at weight 1.0 and are tracked lazily — the book grows
// to the highest client index observed. Callers may keep one book
// across runs (FLRunOptions::reputation) to carry knowledge forward.
class ReputationBook {
 public:
  explicit ReputationBook(ReputationConfig config = {});

  const ReputationConfig& config() const { return config_; }

  // Folds one verdict into the client's weight.
  void observe(std::size_t client, bool flagged);

  // Sampling weight in [floor, 1]; unobserved clients weigh 1.0.
  double weight(std::size_t client) const;
  std::uint64_t flags(std::size_t client) const;
  std::size_t known_clients() const { return weights_.size(); }

 private:
  ReputationConfig config_;
  std::vector<double> weights_;
  std::vector<std::uint64_t> flags_;
};

}  // namespace fleda
