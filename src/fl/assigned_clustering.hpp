// Assigned clustering (paper Fig. 2c): like IFCA, but each client's
// cluster is fixed up front from prior knowledge of client similarity.
// The paper assigns {1,2,3}, {4,5,6}, {7,8}, {9} — i.e. one cluster
// per benchmark suite.
#pragma once

#include "fl/trainer.hpp"

namespace fleda {

class AssignedClustering : public FederatedAlgorithm {
 public:
  // assignment[k] = cluster index of client k (0-based clusters).
  explicit AssignedClustering(std::vector<int> assignment)
      : assignment_(std::move(assignment)) {}

  // The paper's 4-cluster suite-based assignment for K = 9.
  static AssignedClustering paper_assignment();

  std::string name() const override { return "Assigned Clustering"; }

 protected:
  std::vector<ModelParameters> run_rounds(
      std::vector<Client>& clients, const ModelFactory& factory,
      const FLRunOptions& opts, FederationSim& sim,
      ParticipationPolicy& participation) override;

 private:
  std::vector<int> assignment_;
};

}  // namespace fleda
