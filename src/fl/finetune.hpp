// FedProx + local fine-tuning (the paper's best personalization):
// train a generalized model with FedProx, then every client continues
// training it on its own data for S' steps without the decentralized
// constraint. Implemented as a wrapper usable over any base algorithm.
#pragma once

#include <memory>

#include "fl/trainer.hpp"

namespace fleda {

class FineTune : public FederatedAlgorithm {
 public:
  // Wraps `base`; after base.run(), each client fine-tunes its final
  // model for `finetune_steps` plain (mu = 0, no anchor) steps.
  FineTune(std::unique_ptr<FederatedAlgorithm> base, int finetune_steps)
      : base_(std::move(base)), finetune_steps_(finetune_steps) {}

  std::string name() const override {
    return base_->name() + " + Fine-tuning";
  }

 protected:
  // Runs the base algorithm's rounds on the shared simulation, then
  // each client fine-tunes locally (no further communication; the
  // personalization steps still advance the virtual clock).
  std::vector<ModelParameters> run_rounds(
      std::vector<Client>& clients, const ModelFactory& factory,
      const FLRunOptions& opts, FederationSim& sim,
      ParticipationPolicy& participation) override;

 private:
  std::unique_ptr<FederatedAlgorithm> base_;
  int finetune_steps_;
};

}  // namespace fleda
