#include "fl/alpha_sync.hpp"

#include <stdexcept>

namespace fleda {

std::vector<ModelParameters> AlphaPortionSync::run_rounds(
    std::vector<Client>& clients, const ModelFactory& factory,
    const FLRunOptions& opts, FederationSim& sim) {
  if (alpha_ < 0.0 || alpha_ > 1.0) {
    throw std::invalid_argument("AlphaPortionSync: alpha outside [0,1]");
  }
  Rng rng(opts.seed);
  RoutabilityModelPtr init = factory(rng);
  const ModelParameters initial = ModelParameters::from_model(*init);

  const std::vector<double> weights = Server::client_weights(clients);
  double total_weight = 0.0;
  for (double w : weights) total_weight += w;

  // Per-client deployed models W_k; all start from the common init.
  std::vector<ModelParameters> deployed(clients.size(), initial);

  for (int r = 0; r < opts.rounds; ++r) {
    std::vector<const ModelParameters*> deployed_ptrs;
    for (const auto& d : deployed) deployed_ptrs.push_back(&d);
    std::vector<ModelParameters> updates =
        parallel_local_updates(clients, deployed_ptrs, opts.client, sim);

    // Customized aggregation per client.
    for (std::size_t k = 0; k < clients.size(); ++k) {
      ModelParameters mixed = updates[k];
      mixed.scale(alpha_);
      const double others_total = total_weight - weights[k];
      for (std::size_t j = 0; j < clients.size(); ++j) {
        if (j == k) continue;
        const double share =
            others_total > 0.0
                ? (1.0 - alpha_) * weights[j] / others_total
                : 0.0;
        mixed.add_scaled(updates[j], share);
      }
      deployed[k] = std::move(mixed);
    }

    if (opts.on_round) opts.on_round(r, deployed);
  }
  return deployed;
}

}  // namespace fleda
