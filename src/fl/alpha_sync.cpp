#include "fl/alpha_sync.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

namespace fleda {

std::vector<ModelParameters> AlphaPortionSync::run_rounds(
    std::vector<Client>& clients, const ModelFactory& factory,
    const FLRunOptions& opts, FederationSim& sim,
    ParticipationPolicy& participation) {
  if (alpha_ < 0.0 || alpha_ > 1.0) {
    throw std::invalid_argument("AlphaPortionSync: alpha outside [0,1]");
  }
  Rng rng(opts.seed);
  const ModelParameters initial = initial_model_parameters(factory, rng);

  const std::vector<double> weights = Server::client_weights(clients);
  // With a configured rule, each member's (1 - alpha) share comes from
  // the rule applied to the OTHER cohort members' updates (a robust
  // consensus of the peers) instead of their plain weighted average.
  // Empty = the historical inline mixing, bit-for-bit.
  const std::unique_ptr<AggregationRule> rule =
      opts.aggregation.rule.empty() ? nullptr : sync_aggregation_rule(opts);

  // Per-client deployed models W_k; all start from the common init.
  std::vector<ModelParameters> deployed(clients.size(), initial);

  for (int r = 0; r < opts.rounds; ++r) {
    const std::vector<std::size_t> cohort =
        select_cohort(participation, r, clients.size(), opts, sim);
    std::vector<const ModelParameters*> deployed_ptrs;
    deployed_ptrs.reserve(cohort.size());
    for (std::size_t k : cohort) deployed_ptrs.push_back(&deployed[k]);
    std::vector<ModelParameters> updates =
        cohort_local_updates(clients, cohort, deployed_ptrs, opts.client, sim);

    // The mixing below bypasses the AggregationRule guards, so screen
    // the cohort's updates for non-finite values here — a poisoned
    // update must fail loudly in every algorithm.
    for (std::size_t i = 0; i < cohort.size(); ++i) {
      if (!std::isfinite(updates[i].squared_l2_norm())) {
        throw std::invalid_argument(
            "AlphaPortionSync: client " + std::to_string(cohort[i]) +
            " sent a non-finite update (NaN/Inf parameter values) — "
            "refusing to mix it into the cohort's models");
      }
    }

    // Customized aggregation per cohort member: its own update gets a
    // fixed alpha share, the *other cohort members* split (1 - alpha)
    // by sample count. Absent clients neither contribute nor receive a
    // new model this round.
    double cohort_total = 0.0;
    for (std::size_t k : cohort) cohort_total += weights[k];
    std::vector<ModelParameters> mixed(cohort.size());
    if (opts.aggregation.streaming && rule == nullptr) {
      // Streaming-era fast path for the default mix: one shared sum
      // S = sum_j w_j u_j turns each member's peer average into
      // (S - w_i u_i) / others_total, so the round is O(n) model adds
      // instead of the historical O(n^2) pairwise loop. Same mix up to
      // float reassociation — opt-in like every streaming path.
      ModelParameters sum;
      for (std::size_t j = 0; j < cohort.size(); ++j) {
        if (sum.empty()) {
          sum = updates[j];
          sum.scale(weights[cohort[j]]);
        } else {
          sum.add_scaled(updates[j], weights[cohort[j]]);
        }
      }
      for (std::size_t i = 0; i < cohort.size(); ++i) {
        const std::size_t k = cohort[i];
        const double others_total = cohort_total - weights[k];
        if (others_total <= 0.0) {
          mixed[i] = updates[i];
          continue;
        }
        // alpha u_i + (1 - alpha)(S - w_k u_i) / others_total
        const double peer_share = (1.0 - alpha_) / others_total;
        ModelParameters m = updates[i];
        m.scale(alpha_ - peer_share * weights[k]);
        m.add_scaled(sum, peer_share);
        mixed[i] = std::move(m);
      }
      for (std::size_t i = 0; i < cohort.size(); ++i) {
        deployed[cohort[i]] = std::move(mixed[i]);
      }
      if (opts.on_round) opts.on_round(r, deployed);
      continue;
    }
    for (std::size_t i = 0; i < cohort.size(); ++i) {
      const std::size_t k = cohort[i];
      const double others_total = cohort_total - weights[k];
      if (others_total <= 0.0) {
        // Single-member cohort: there is nobody to split (1 - alpha)
        // with, so the whole mass stays on the member's own update
        // (scaling by alpha alone would silently shrink the model).
        mixed[i] = updates[i];
        continue;
      }
      ModelParameters m = updates[i];
      m.scale(alpha_);
      if (rule != nullptr) {
        // Robust peer consensus: the configured rule over the other
        // members' updates, anchored at this member's previous model
        // (the delta reference for clipping rules).
        std::vector<AggregationInput> others;
        others.reserve(cohort.size() - 1);
        for (std::size_t j = 0; j < cohort.size(); ++j) {
          if (j == i) continue;
          others.push_back({&updates[j], weights[cohort[j]], 0,
                            static_cast<int>(cohort[j])});
        }
        m.add_scaled(rule->aggregate(deployed[k], others), 1.0 - alpha_);
      } else {
        for (std::size_t j = 0; j < cohort.size(); ++j) {
          if (j == i) continue;
          const double share =
              (1.0 - alpha_) * weights[cohort[j]] / others_total;
          m.add_scaled(updates[j], share);
        }
      }
      mixed[i] = std::move(m);
    }
    for (std::size_t i = 0; i < cohort.size(); ++i) {
      deployed[cohort[i]] = std::move(mixed[i]);
    }

    if (opts.on_round) opts.on_round(r, deployed);
  }
  return deployed;
}

}  // namespace fleda
