#include "fl/baselines.hpp"

#include "nn/loss.hpp"
#include "util/thread_pool.hpp"

namespace fleda {

std::vector<ModelParameters> train_local_baselines(
    std::vector<Client>& clients, const ModelFactory& factory,
    const BaselineOptions& opts) {
  // Common initialization for comparability across clients.
  Rng rng(opts.seed);
  const ModelParameters initial = initial_model_parameters(factory, rng);

  std::vector<ModelParameters> models(clients.size(), initial);
  parallel_for(clients.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t k = begin; k < end; ++k) {
      // Plain local training: fine_tune == no proximal anchor.
      models[k] = clients[k].fine_tune(initial, opts.total_steps, opts.client);
    }
  });
  return models;
}

ModelParameters train_centralized(const std::vector<ClientDataset>& clients,
                                  const ModelFactory& factory,
                                  const BaselineOptions& opts) {
  // Pool all training samples (this is exactly what the privacy
  // constraint forbids; it serves as the upper-limit reference).
  std::vector<Sample> pooled;
  for (const ClientDataset& c : clients) {
    for (const Sample& s : c.train) pooled.push_back(s);
  }

  Rng rng(opts.seed);
  RoutabilityModelPtr model = factory(rng);

  AdamOptions aopts;
  aopts.lr = opts.client.learning_rate;
  aopts.weight_decay = opts.client.l2_regularization;
  Adam optimizer(model->parameters(), aopts);

  BatchSampler sampler(pooled.size(),
                       static_cast<std::size_t>(opts.client.batch_size),
                       rng.fork(0x63656e74ull));
  for (int step = 0; step < opts.total_steps; ++step) {
    Batch batch = make_batch(pooled, sampler.next());
    optimizer.zero_grad();
    Tensor pred = model->forward(batch.x, /*training=*/true);
    LossResult loss = mse_loss(pred, batch.y);
    model->backward(loss.grad);
    optimizer.step();
  }
  return ModelParameters::from_model(*model);
}

}  // namespace fleda
