#include "fl/aggregation.hpp"

#include <cmath>
#include <stdexcept>

namespace fleda {
namespace {

// Shared cohort validation: every rule divides by the total weight, so
// the failure modes are caught once, with a message that points at the
// participation layer (the usual culprit under client sampling).
double checked_total_weight(const char* rule,
                            const std::vector<AggregationInput>& cohort,
                            bool apply_staleness,
                            const StalenessPolicy* staleness) {
  if (cohort.empty()) {
    throw std::invalid_argument(
        std::string(rule) +
        ": empty cohort — no client contributed this round (did the "
        "participation policy sample only offline clients?)");
  }
  double total = 0.0;
  for (const AggregationInput& in : cohort) {
    if (in.params == nullptr) {
      throw std::invalid_argument(std::string(rule) + ": null update");
    }
    if (!(in.weight >= 0.0)) {  // negatives and NaNs both fail this
      throw std::invalid_argument(
          std::string(rule) + ": weight " + std::to_string(in.weight) +
          " is negative or non-finite");
    }
    total += apply_staleness ? in.weight * staleness->weight(in.staleness)
                             : in.weight;
  }
  if (!(total > 0.0) || !std::isfinite(total)) {
    throw std::invalid_argument(
        std::string(rule) + ": total weight " + std::to_string(total) +
        " over " + std::to_string(cohort.size()) +
        " clients — refusing to divide (would emit NaN parameters)");
  }
  return total;
}

}  // namespace

ModelParameters WeightedAverage::aggregate(
    const ModelParameters& /*current*/,
    const std::vector<AggregationInput>& cohort) const {
  const double total =
      checked_total_weight("WeightedAverage", cohort, false, nullptr);
  ModelParameters result = *cohort[0].params;
  result.scale(cohort[0].weight / total);
  for (std::size_t i = 1; i < cohort.size(); ++i) {
    if (!result.structurally_equal(*cohort[i].params)) {
      throw std::invalid_argument("WeightedAverage: structure mismatch");
    }
    result.add_scaled(*cohort[i].params, cohort[i].weight / total);
  }
  return result;
}

double StalenessPolicy::weight(int staleness) const {
  if (staleness <= 0) return 1.0;
  switch (discount) {
    case StalenessDiscount::kPolynomial:
      return std::pow(1.0 + static_cast<double>(staleness), -poly_exponent);
    case StalenessDiscount::kConstant:
      return constant_factor;
  }
  return 1.0;
}

StalenessDiscountedMix::StalenessDiscountedMix(StalenessPolicy staleness,
                                               double server_mix)
    : staleness_(staleness), server_mix_(server_mix) {
  if (server_mix_ <= 0.0) {
    throw std::invalid_argument("StalenessDiscountedMix: server_mix <= 0");
  }
  if (staleness_.poly_exponent < 0.0 || staleness_.constant_factor <= 0.0) {
    throw std::invalid_argument(
        "StalenessDiscountedMix: discount must be positive");
  }
}

ModelParameters StalenessDiscountedMix::aggregate(
    const ModelParameters& current,
    const std::vector<AggregationInput>& cohort) const {
  const double total = checked_total_weight("StalenessDiscountedMix", cohort,
                                            true, &staleness_);
  // acc = sum_i n_i s(tau_i) delta_i
  ModelParameters acc;
  for (const AggregationInput& in : cohort) {
    const double u = in.weight * staleness_.weight(in.staleness);
    if (acc.empty()) {
      acc = *in.params;
      acc.scale(u);
    } else {
      acc.add_scaled(*in.params, u);
    }
  }
  acc.scale(server_mix_ / total);
  ModelParameters next = current;
  next.add_scaled(acc, 1.0);
  return next;
}

}  // namespace fleda
