#include "fl/aggregation.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/profiler.hpp"

namespace fleda {
namespace {

// "client 7" when the caller labeled the input, "cohort update #3"
// otherwise — validation errors must point at the sender of a poisoned
// update, not just say "something was NaN".
std::string who(const AggregationInput& in, std::size_t position) {
  if (in.client >= 0) return "client " + std::to_string(in.client);
  return "cohort update #" + std::to_string(position);
}

// Shared cohort validation: every rule divides by the total weight and
// folds the parameter values in, so both failure families are caught
// once — bad *weights* (the participation layer's usual bug) and
// non-finite *values* (a poisoned or diverged client update, which
// used to pass silently and corrupt every downstream round).
double checked_total_weight(const char* rule,
                            const std::vector<AggregationInput>& cohort,
                            bool apply_staleness,
                            const StalenessPolicy* staleness) {
  if (cohort.empty()) {
    throw std::invalid_argument(
        std::string(rule) +
        ": empty cohort — no client contributed this round (did the "
        "participation policy sample only offline clients?)");
  }
  double total = 0.0;
  for (std::size_t i = 0; i < cohort.size(); ++i) {
    const AggregationInput& in = cohort[i];
    if (in.params == nullptr) {
      throw std::invalid_argument(std::string(rule) + ": null update from " +
                                  who(in, i));
    }
    if (!(in.weight >= 0.0)) {  // negatives and NaNs both fail this
      throw std::invalid_argument(
          std::string(rule) + ": weight " + std::to_string(in.weight) +
          " from " + who(in, i) + " is negative or non-finite");
    }
    // One cheap norm accumulation per entry catches NaN and Inf alike
    // (either poisons the sum). Guards every rule, including plain
    // WeightedAverage — the historical hole this check closes.
    if (!std::isfinite(in.params->squared_l2_norm())) {
      static Counter& trips = MetricsRegistry::global().counter(
          "fleda.agg.nonfinite_guard_trips");
      trips.add(1);
      throw std::invalid_argument(
          std::string(rule) + ": " + who(in, i) +
          " sent a non-finite update (NaN/Inf parameter values) — "
          "refusing to aggregate it into the global model");
    }
    total += apply_staleness ? in.weight * staleness->weight(in.staleness)
                             : in.weight;
  }
  if (!(total > 0.0) || !std::isfinite(total)) {
    throw std::invalid_argument(
        std::string(rule) + ": total weight " + std::to_string(total) +
        " over " + std::to_string(cohort.size()) +
        " clients — refusing to divide (would emit NaN parameters)");
  }
  return total;
}

void check_structure(const char* rule, const ModelParameters& reference,
                     const AggregationInput& in, std::size_t position) {
  if (!reference.structurally_equal(*in.params)) {
    throw std::invalid_argument(std::string(rule) + ": structure mismatch at " +
                                who(in, position));
  }
}

}  // namespace

ModelParameters WeightedAverage::aggregate(
    const ModelParameters& /*current*/,
    const std::vector<AggregationInput>& cohort) const {
  ProfileScope prof(phase::kAggregate);
  const double total =
      checked_total_weight("WeightedAverage", cohort, false, nullptr);
  ModelParameters result = *cohort[0].params;
  result.scale(cohort[0].weight / total);
  for (std::size_t i = 1; i < cohort.size(); ++i) {
    check_structure("WeightedAverage", *cohort[0].params, cohort[i], i);
    result.add_scaled(*cohort[i].params, cohort[i].weight / total);
  }
  return result;
}

ModelParameters CoordinateMedian::aggregate(
    const ModelParameters& /*current*/,
    const std::vector<AggregationInput>& cohort) const {
  ProfileScope prof(phase::kAggregate);
  checked_total_weight("CoordinateMedian", cohort, false, nullptr);
  for (std::size_t i = 1; i < cohort.size(); ++i) {
    check_structure("CoordinateMedian", *cohort[0].params, cohort[i], i);
  }
  const std::size_t n = cohort.size();
  ModelParameters result = *cohort[0].params;
  std::vector<float> column(n);
  std::vector<const float*> sources(n);
  for (std::size_t e = 0; e < result.entries().size(); ++e) {
    Tensor& out = result.mutable_entries()[e].value;
    float* out_data = out.data();
    const std::int64_t numel = out.numel();
    for (std::size_t c = 0; c < n; ++c) {
      sources[c] = cohort[c].params->entries()[e].value.data();
    }
    for (std::int64_t i = 0; i < numel; ++i) {
      for (std::size_t c = 0; c < n; ++c) column[c] = sources[c][i];
      // The k-th order statistic is a value of the multiset, so the
      // result does not depend on the cohort's order — determinism
      // across participation shuffles comes for free.
      const std::size_t mid = n / 2;
      std::nth_element(column.begin(), column.begin() + mid, column.end());
      if (n % 2 == 1) {
        out_data[i] = column[mid];
      } else {
        const float hi = column[mid];
        const float lo =
            *std::max_element(column.begin(), column.begin() + mid);
        out_data[i] =
            static_cast<float>((static_cast<double>(lo) + hi) / 2.0);
      }
    }
  }
  return result;
}

TrimmedMean::TrimmedMean(double trim_fraction)
    : trim_fraction_(trim_fraction) {
  if (!(trim_fraction >= 0.0) || trim_fraction >= 0.5) {
    throw std::invalid_argument(
        "TrimmedMean: trim_fraction " + std::to_string(trim_fraction) +
        " outside [0, 0.5) — trimming half or more from each end leaves "
        "nothing to average");
  }
}

ModelParameters TrimmedMean::aggregate(
    const ModelParameters& /*current*/,
    const std::vector<AggregationInput>& cohort) const {
  ProfileScope prof(phase::kAggregate);
  checked_total_weight("TrimmedMean", cohort, false, nullptr);
  for (std::size_t i = 1; i < cohort.size(); ++i) {
    check_structure("TrimmedMean", *cohort[0].params, cohort[i], i);
  }
  const std::size_t n = cohort.size();
  // trim_fraction < 0.5 guarantees n - 2g >= 1 survivors.
  const std::size_t g =
      static_cast<std::size_t>(trim_fraction_ * static_cast<double>(n));
  ModelParameters result = *cohort[0].params;
  std::vector<float> column(n);
  std::vector<const float*> sources(n);
  for (std::size_t e = 0; e < result.entries().size(); ++e) {
    Tensor& out = result.mutable_entries()[e].value;
    float* out_data = out.data();
    const std::int64_t numel = out.numel();
    for (std::size_t c = 0; c < n; ++c) {
      sources[c] = cohort[c].params->entries()[e].value.data();
    }
    for (std::int64_t i = 0; i < numel; ++i) {
      for (std::size_t c = 0; c < n; ++c) column[c] = sources[c][i];
      std::sort(column.begin(), column.end());
      double acc = 0.0;
      for (std::size_t c = g; c < n - g; ++c) acc += column[c];
      out_data[i] = static_cast<float>(acc / static_cast<double>(n - 2 * g));
    }
  }
  return result;
}

NormClippedMean::NormClippedMean(double clip_norm) : clip_norm_(clip_norm) {
  if (!std::isfinite(clip_norm) || clip_norm <= 0.0) {
    throw std::invalid_argument("NormClippedMean: clip_norm " +
                                std::to_string(clip_norm) +
                                " must be finite and > 0");
  }
}

ModelParameters NormClippedMean::aggregate(
    const ModelParameters& current,
    const std::vector<AggregationInput>& cohort) const {
  ProfileScope prof(phase::kAggregate);
  const double total =
      checked_total_weight("NormClippedMean", cohort, false, nullptr);
  if (current.empty()) {
    throw std::invalid_argument(
        "NormClippedMean: empty `current` — the rule clips each update's "
        "delta against the server's model, so the caller must pass it "
        "(not an empty snapshot)");
  }
  ModelParameters result = current;
  for (std::size_t i = 0; i < cohort.size(); ++i) {
    check_structure("NormClippedMean", current, cohort[i], i);
    ModelParameters delta = *cohort[i].params;
    delta.add_scaled(current, -1.0);
    const double norm = std::sqrt(delta.squared_l2_norm());
    const double clip = norm > clip_norm_ ? clip_norm_ / norm : 1.0;
    result.add_scaled(delta, clip * cohort[i].weight / total);
  }
  return result;
}

Krum::Krum(int f) : f_(f) {
  if (f < 0) {
    throw std::invalid_argument("Krum: f " + std::to_string(f) +
                                " must be >= 0");
  }
}

std::vector<std::size_t> Krum::krum_order(
    const std::vector<AggregationInput>& cohort, const char* rule) const {
  checked_total_weight(rule, cohort, false, nullptr);
  const std::size_t n = cohort.size();
  for (std::size_t i = 1; i < n; ++i) {
    check_structure(rule, *cohort[0].params, cohort[i], i);
  }
  const std::size_t needed = 2 * static_cast<std::size_t>(f_) + 3;
  if (n < needed) {
    throw std::invalid_argument(
        std::string(rule) + ": cohort of " + std::to_string(n) +
        " cannot tolerate f=" + std::to_string(f_) +
        " Byzantine members — Krum scoring needs n >= 2f + 3 = " +
        std::to_string(needed) +
        " (sample a larger cohort or lower krum_f)");
  }
  // Pairwise squared distances, each pair computed once. n is a cohort
  // (tens), not the fleet, so the O(n^2) pass over full snapshots is
  // the aggregation cost, not a scaling wall.
  std::vector<double> dist(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double d = cohort[i].params->squared_l2_distance(*cohort[j].params);
      dist[i * n + j] = d;
      dist[j * n + i] = d;
    }
  }
  // score_i = sum of the n - f - 2 smallest distances to OTHERS.
  const std::size_t neighbors = n - static_cast<std::size_t>(f_) - 2;
  std::vector<double> score(n, 0.0);
  std::vector<double> row(n - 1);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t m = 0;
    for (std::size_t j = 0; j < n; ++j) {
      if (j != i) row[m++] = dist[i * n + j];
    }
    std::nth_element(row.begin(),
                     row.begin() + static_cast<std::ptrdiff_t>(neighbors - 1),
                     row.end());
    double acc = 0.0;
    for (std::size_t c = 0; c < neighbors; ++c) acc += row[c];
    score[i] = acc;
  }
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  // Ties break on the lower cohort index — selection is a pure
  // function of the multiset of updates plus their order, never of
  // thread scheduling.
  std::sort(order.begin(), order.end(),
            [&score](std::size_t a, std::size_t b) {
              if (score[a] != score[b]) return score[a] < score[b];
              return a < b;
            });
  return order;
}

ModelParameters Krum::aggregate(
    const ModelParameters& /*current*/,
    const std::vector<AggregationInput>& cohort) const {
  ProfileScope prof(phase::kAggregate);
  const std::vector<std::size_t> order = krum_order(cohort, "Krum");
  return *cohort[order.front()].params;
}

MultiKrum::MultiKrum(int f, int m) : Krum(f), m_(m) {
  if (m < 0) {
    throw std::invalid_argument("MultiKrum: m " + std::to_string(m) +
                                " must be >= 0 (0 = auto n - f - 2)");
  }
}

ModelParameters MultiKrum::aggregate(
    const ModelParameters& /*current*/,
    const std::vector<AggregationInput>& cohort) const {
  ProfileScope prof(phase::kAggregate);
  const std::vector<std::size_t> order = krum_order(cohort, "MultiKrum");
  const std::size_t n = cohort.size();
  const std::size_t max_m = n - static_cast<std::size_t>(f()) - 2;
  const std::size_t m = m_ == 0 ? max_m : static_cast<std::size_t>(m_);
  if (m > max_m) {
    throw std::invalid_argument(
        "MultiKrum: m=" + std::to_string(m) + " exceeds n - f - 2 = " +
        std::to_string(max_m) + " for a cohort of " + std::to_string(n) +
        " — the tail beyond that has no Byzantine-resilient score");
  }
  // Unweighted average of the m best-scored updates (rank-based family:
  // robustness comes from the selection, not the sample counts).
  ModelParameters result = *cohort[order[0]].params;
  result.scale(1.0 / static_cast<double>(m));
  for (std::size_t c = 1; c < m; ++c) {
    result.add_scaled(*cohort[order[c]].params, 1.0 / static_cast<double>(m));
  }
  return result;
}

double StalenessPolicy::weight(int staleness) const {
  if (staleness <= 0) return 1.0;
  switch (discount) {
    case StalenessDiscount::kPolynomial:
      return std::pow(1.0 + static_cast<double>(staleness), -poly_exponent);
    case StalenessDiscount::kConstant:
      return constant_factor;
  }
  return 1.0;
}

StalenessDiscountedMix::StalenessDiscountedMix(StalenessPolicy staleness,
                                               double server_mix)
    : staleness_(staleness), server_mix_(server_mix) {
  if (server_mix_ <= 0.0) {
    throw std::invalid_argument("StalenessDiscountedMix: server_mix <= 0");
  }
  if (staleness_.poly_exponent < 0.0 || staleness_.constant_factor <= 0.0) {
    throw std::invalid_argument(
        "StalenessDiscountedMix: discount must be positive");
  }
}

ModelParameters StalenessDiscountedMix::aggregate(
    const ModelParameters& current,
    const std::vector<AggregationInput>& cohort) const {
  ProfileScope prof(phase::kAggregate);
  const double total = checked_total_weight("StalenessDiscountedMix", cohort,
                                            true, &staleness_);
  // acc = sum_i n_i s(tau_i) delta_i
  ModelParameters acc;
  for (const AggregationInput& in : cohort) {
    const double u = in.weight * staleness_.weight(in.staleness);
    if (acc.empty()) {
      acc = *in.params;
      acc.scale(u);
    } else {
      acc.add_scaled(*in.params, u);
    }
  }
  acc.scale(server_mix_ / total);
  ModelParameters next = current;
  next.add_scaled(acc, 1.0);
  return next;
}

namespace {

void register_builtin_rules(AggregationRegistry& registry) {
  registry.add("weighted_average", [](const AggregationConfig&) {
    return std::make_unique<WeightedAverage>();
  });
  registry.add("coordinate_median", [](const AggregationConfig&) {
    return std::make_unique<CoordinateMedian>();
  });
  registry.add("trimmed_mean", [](const AggregationConfig& c) {
    return std::make_unique<TrimmedMean>(c.trim_fraction);
  });
  registry.add("norm_clipped_mean", [](const AggregationConfig& c) {
    return std::make_unique<NormClippedMean>(c.clip_norm);
  });
  registry.add("krum", [](const AggregationConfig& c) {
    return std::make_unique<Krum>(c.krum_f);
  });
  registry.add("multi_krum", [](const AggregationConfig& c) {
    return std::make_unique<MultiKrum>(c.krum_f, c.krum_m);
  });
  registry.add("staleness_mix", [](const AggregationConfig& c) {
    return std::make_unique<StalenessDiscountedMix>(c.staleness,
                                                    c.server_mix);
  });
}

}  // namespace

AggregationRegistry& AggregationRegistry::global() {
  static AggregationRegistry* registry = [] {
    auto* r = new AggregationRegistry();
    register_builtin_rules(*r);
    return r;
  }();
  return *registry;
}

void AggregationRegistry::add(std::string name, Factory factory) {
  if (name.empty()) {
    throw std::invalid_argument("AggregationRegistry::add: empty name");
  }
  if (!factory) {
    throw std::invalid_argument(
        "AggregationRegistry::add: null factory for '" + name + "'");
  }
  if (!factories_.emplace(std::move(name), std::move(factory)).second) {
    throw std::invalid_argument(
        "AggregationRegistry::add: duplicate registration");
  }
}

bool AggregationRegistry::contains(std::string_view name) const {
  return factories_.find(name) != factories_.end();
}

std::vector<std::string> AggregationRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) out.push_back(name);
  return out;  // std::map iterates sorted
}

std::unique_ptr<AggregationRule> AggregationRegistry::create(
    std::string_view name, const AggregationConfig& config) const {
  const auto it = factories_.find(name);
  if (it == factories_.end()) {
    std::string known;
    for (const std::string& n : names()) {
      if (!known.empty()) known += ", ";
      known += n;
    }
    throw std::invalid_argument("AggregationRegistry: unknown rule '" +
                                std::string(name) + "' (registered: " + known +
                                ")");
  }
  return it->second(config);
}

std::unique_ptr<AggregationRule> make_aggregation_rule(
    const AggregationConfig& config) {
  if (config.rule.empty()) {
    throw std::invalid_argument(
        "make_aggregation_rule: empty rule name — the algorithm default is "
        "chosen by the caller, not the registry");
  }
  return AggregationRegistry::global().create(config.rule, config);
}

}  // namespace fleda
