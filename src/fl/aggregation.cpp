#include "fl/aggregation.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "util/thread_pool.hpp"

namespace fleda {
namespace {

// "client 7" when the caller labeled the input, "cohort update #3"
// otherwise — validation errors must point at the sender of a poisoned
// update, not just say "something was NaN".
std::string who(const AggregationInput& in, std::size_t position) {
  if (in.client >= 0) return "client " + std::to_string(in.client);
  return "cohort update #" + std::to_string(position);
}

// Shared cohort validation: every rule divides by the total weight and
// folds the parameter values in, so both failure families are caught
// once — bad *weights* (the participation layer's usual bug) and
// non-finite *values* (a poisoned or diverged client update, which
// used to pass silently and corrupt every downstream round).
double checked_total_weight(const char* rule,
                            const std::vector<AggregationInput>& cohort,
                            bool apply_staleness,
                            const StalenessPolicy* staleness) {
  if (cohort.empty()) {
    throw std::invalid_argument(
        std::string(rule) +
        ": empty cohort — no client contributed this round (did the "
        "participation policy sample only offline clients?)");
  }
  double total = 0.0;
  for (std::size_t i = 0; i < cohort.size(); ++i) {
    const AggregationInput& in = cohort[i];
    if (in.params == nullptr) {
      throw std::invalid_argument(std::string(rule) + ": null update from " +
                                  who(in, i));
    }
    if (!(in.weight >= 0.0)) {  // negatives and NaNs both fail this
      throw std::invalid_argument(
          std::string(rule) + ": weight " + std::to_string(in.weight) +
          " from " + who(in, i) + " is negative or non-finite");
    }
    // One cheap norm accumulation per entry catches NaN and Inf alike
    // (either poisons the sum). Guards every rule, including plain
    // WeightedAverage — the historical hole this check closes.
    if (!std::isfinite(in.params->squared_l2_norm())) {
      static Counter& trips = MetricsRegistry::global().counter(
          "fleda.agg.nonfinite_guard_trips");
      trips.add(1);
      throw std::invalid_argument(
          std::string(rule) + ": " + who(in, i) +
          " sent a non-finite update (NaN/Inf parameter values) — "
          "refusing to aggregate it into the global model");
    }
    total += apply_staleness ? in.weight * staleness->weight(in.staleness)
                             : in.weight;
  }
  if (!(total > 0.0) || !std::isfinite(total)) {
    throw std::invalid_argument(
        std::string(rule) + ": total weight " + std::to_string(total) +
        " over " + std::to_string(cohort.size()) +
        " clients — refusing to divide (would emit NaN parameters)");
  }
  return total;
}

void check_structure(const char* rule, const ModelParameters& reference,
                     const AggregationInput& in, std::size_t position) {
  if (!reference.structurally_equal(*in.params)) {
    throw std::invalid_argument(std::string(rule) + ": structure mismatch at " +
                                who(in, position));
  }
}

}  // namespace

ModelParameters WeightedAverage::aggregate(
    const ModelParameters& /*current*/,
    const std::vector<AggregationInput>& cohort) const {
  ProfileScope prof(phase::kAggregate);
  const double total =
      checked_total_weight("WeightedAverage", cohort, false, nullptr);
  ModelParameters result = *cohort[0].params;
  result.scale(cohort[0].weight / total);
  for (std::size_t i = 1; i < cohort.size(); ++i) {
    check_structure("WeightedAverage", *cohort[0].params, cohort[i], i);
    result.add_scaled(*cohort[i].params, cohort[i].weight / total);
  }
  return result;
}

CoordinateMedian::CoordinateMedian(int sketch_bins, double sketch_span)
    : sketch_bins_(sketch_bins), sketch_span_(sketch_span) {
  if (sketch_bins < 2) {
    throw std::invalid_argument("CoordinateMedian: sketch_bins " +
                                std::to_string(sketch_bins) +
                                " must be >= 2");
  }
  if (!std::isfinite(sketch_span) || sketch_span <= 0.0) {
    throw std::invalid_argument("CoordinateMedian: sketch_span " +
                                std::to_string(sketch_span) +
                                " must be finite and > 0");
  }
}

ModelParameters CoordinateMedian::aggregate(
    const ModelParameters& /*current*/,
    const std::vector<AggregationInput>& cohort) const {
  ProfileScope prof(phase::kAggregate);
  checked_total_weight("CoordinateMedian", cohort, false, nullptr);
  for (std::size_t i = 1; i < cohort.size(); ++i) {
    check_structure("CoordinateMedian", *cohort[0].params, cohort[i], i);
  }
  const std::size_t n = cohort.size();
  ModelParameters result = *cohort[0].params;
  std::vector<float> column(n);
  std::vector<const float*> sources(n);
  for (std::size_t e = 0; e < result.entries().size(); ++e) {
    Tensor& out = result.mutable_entries()[e].value;
    float* out_data = out.data();
    const std::int64_t numel = out.numel();
    for (std::size_t c = 0; c < n; ++c) {
      sources[c] = cohort[c].params->entries()[e].value.data();
    }
    for (std::int64_t i = 0; i < numel; ++i) {
      for (std::size_t c = 0; c < n; ++c) column[c] = sources[c][i];
      // The k-th order statistic is a value of the multiset, so the
      // result does not depend on the cohort's order — determinism
      // across participation shuffles comes for free.
      const std::size_t mid = n / 2;
      std::nth_element(column.begin(), column.begin() + mid, column.end());
      if (n % 2 == 1) {
        out_data[i] = column[mid];
      } else {
        const float hi = column[mid];
        const float lo =
            *std::max_element(column.begin(), column.begin() + mid);
        out_data[i] =
            static_cast<float>((static_cast<double>(lo) + hi) / 2.0);
      }
    }
  }
  return result;
}

TrimmedMean::TrimmedMean(double trim_fraction, int sketch_bins,
                         double sketch_span)
    : trim_fraction_(trim_fraction),
      sketch_bins_(sketch_bins),
      sketch_span_(sketch_span) {
  if (!(trim_fraction >= 0.0) || trim_fraction >= 0.5) {
    throw std::invalid_argument(
        "TrimmedMean: trim_fraction " + std::to_string(trim_fraction) +
        " outside [0, 0.5) — trimming half or more from each end leaves "
        "nothing to average");
  }
  if (sketch_bins < 2) {
    throw std::invalid_argument("TrimmedMean: sketch_bins " +
                                std::to_string(sketch_bins) +
                                " must be >= 2");
  }
  if (!std::isfinite(sketch_span) || sketch_span <= 0.0) {
    throw std::invalid_argument("TrimmedMean: sketch_span " +
                                std::to_string(sketch_span) +
                                " must be finite and > 0");
  }
}

ModelParameters TrimmedMean::aggregate(
    const ModelParameters& /*current*/,
    const std::vector<AggregationInput>& cohort) const {
  ProfileScope prof(phase::kAggregate);
  checked_total_weight("TrimmedMean", cohort, false, nullptr);
  for (std::size_t i = 1; i < cohort.size(); ++i) {
    check_structure("TrimmedMean", *cohort[0].params, cohort[i], i);
  }
  const std::size_t n = cohort.size();
  // trim_fraction < 0.5 guarantees n - 2g >= 1 survivors.
  const std::size_t g =
      static_cast<std::size_t>(trim_fraction_ * static_cast<double>(n));
  ModelParameters result = *cohort[0].params;
  std::vector<float> column(n);
  std::vector<const float*> sources(n);
  for (std::size_t e = 0; e < result.entries().size(); ++e) {
    Tensor& out = result.mutable_entries()[e].value;
    float* out_data = out.data();
    const std::int64_t numel = out.numel();
    for (std::size_t c = 0; c < n; ++c) {
      sources[c] = cohort[c].params->entries()[e].value.data();
    }
    for (std::int64_t i = 0; i < numel; ++i) {
      for (std::size_t c = 0; c < n; ++c) column[c] = sources[c][i];
      std::sort(column.begin(), column.end());
      double acc = 0.0;
      for (std::size_t c = g; c < n - g; ++c) acc += column[c];
      out_data[i] = static_cast<float>(acc / static_cast<double>(n - 2 * g));
    }
  }
  return result;
}

NormClippedMean::NormClippedMean(double clip_norm) : clip_norm_(clip_norm) {
  if (!std::isfinite(clip_norm) || clip_norm <= 0.0) {
    throw std::invalid_argument("NormClippedMean: clip_norm " +
                                std::to_string(clip_norm) +
                                " must be finite and > 0");
  }
}

ModelParameters NormClippedMean::aggregate(
    const ModelParameters& current,
    const std::vector<AggregationInput>& cohort) const {
  ProfileScope prof(phase::kAggregate);
  const double total =
      checked_total_weight("NormClippedMean", cohort, false, nullptr);
  if (current.empty()) {
    throw std::invalid_argument(
        "NormClippedMean: empty `current` — the rule clips each update's "
        "delta against the server's model, so the caller must pass it "
        "(not an empty snapshot)");
  }
  ModelParameters result = current;
  for (std::size_t i = 0; i < cohort.size(); ++i) {
    check_structure("NormClippedMean", current, cohort[i], i);
    ModelParameters delta = *cohort[i].params;
    delta.add_scaled(current, -1.0);
    const double norm = std::sqrt(delta.squared_l2_norm());
    const double clip = norm > clip_norm_ ? clip_norm_ / norm : 1.0;
    result.add_scaled(delta, clip * cohort[i].weight / total);
  }
  return result;
}

Krum::Krum(int f) : f_(f) {
  if (f < 0) {
    throw std::invalid_argument("Krum: f " + std::to_string(f) +
                                " must be >= 0");
  }
}

std::vector<std::size_t> Krum::krum_order(
    const std::vector<AggregationInput>& cohort, const char* rule) const {
  checked_total_weight(rule, cohort, false, nullptr);
  const std::size_t n = cohort.size();
  for (std::size_t i = 1; i < n; ++i) {
    check_structure(rule, *cohort[0].params, cohort[i], i);
  }
  const std::size_t needed = 2 * static_cast<std::size_t>(f_) + 3;
  if (n < needed) {
    throw std::invalid_argument(
        std::string(rule) + ": cohort of " + std::to_string(n) +
        " cannot tolerate f=" + std::to_string(f_) +
        " Byzantine members — Krum scoring needs n >= 2f + 3 = " +
        std::to_string(needed) +
        " (sample a larger cohort or lower krum_f)");
  }
  // Pairwise squared distances, each pair computed once. n is a cohort
  // (tens), not the fleet, so the O(n^2) pass over full snapshots is
  // the aggregation cost, not a scaling wall.
  std::vector<double> dist(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double d = cohort[i].params->squared_l2_distance(*cohort[j].params);
      dist[i * n + j] = d;
      dist[j * n + i] = d;
    }
  }
  // score_i = sum of the n - f - 2 smallest distances to OTHERS.
  const std::size_t neighbors = n - static_cast<std::size_t>(f_) - 2;
  std::vector<double> score(n, 0.0);
  std::vector<double> row(n - 1);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t m = 0;
    for (std::size_t j = 0; j < n; ++j) {
      if (j != i) row[m++] = dist[i * n + j];
    }
    std::nth_element(row.begin(),
                     row.begin() + static_cast<std::ptrdiff_t>(neighbors - 1),
                     row.end());
    double acc = 0.0;
    for (std::size_t c = 0; c < neighbors; ++c) acc += row[c];
    score[i] = acc;
  }
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  // Ties break on the lower cohort index — selection is a pure
  // function of the multiset of updates plus their order, never of
  // thread scheduling.
  std::sort(order.begin(), order.end(),
            [&score](std::size_t a, std::size_t b) {
              if (score[a] != score[b]) return score[a] < score[b];
              return a < b;
            });
  return order;
}

ModelParameters Krum::aggregate(
    const ModelParameters& /*current*/,
    const std::vector<AggregationInput>& cohort) const {
  ProfileScope prof(phase::kAggregate);
  const std::vector<std::size_t> order = krum_order(cohort, "Krum");
  return *cohort[order.front()].params;
}

MultiKrum::MultiKrum(int f, int m) : Krum(f), m_(m) {
  if (m < 0) {
    throw std::invalid_argument("MultiKrum: m " + std::to_string(m) +
                                " must be >= 0 (0 = auto n - f - 2)");
  }
}

ModelParameters MultiKrum::aggregate(
    const ModelParameters& /*current*/,
    const std::vector<AggregationInput>& cohort) const {
  ProfileScope prof(phase::kAggregate);
  const std::vector<std::size_t> order = krum_order(cohort, "MultiKrum");
  const std::size_t n = cohort.size();
  const std::size_t max_m = n - static_cast<std::size_t>(f()) - 2;
  const std::size_t m = m_ == 0 ? max_m : static_cast<std::size_t>(m_);
  if (m > max_m) {
    throw std::invalid_argument(
        "MultiKrum: m=" + std::to_string(m) + " exceeds n - f - 2 = " +
        std::to_string(max_m) + " for a cohort of " + std::to_string(n) +
        " — the tail beyond that has no Byzantine-resilient score");
  }
  // Unweighted average of the m best-scored updates (rank-based family:
  // robustness comes from the selection, not the sample counts).
  ModelParameters result = *cohort[order[0]].params;
  result.scale(1.0 / static_cast<double>(m));
  for (std::size_t c = 1; c < m; ++c) {
    result.add_scaled(*cohort[order[c]].params, 1.0 / static_cast<double>(m));
  }
  return result;
}

double StalenessPolicy::weight(int staleness) const {
  if (staleness <= 0) return 1.0;
  switch (discount) {
    case StalenessDiscount::kPolynomial:
      return std::pow(1.0 + static_cast<double>(staleness), -poly_exponent);
    case StalenessDiscount::kConstant:
      return constant_factor;
  }
  return 1.0;
}

StalenessDiscountedMix::StalenessDiscountedMix(StalenessPolicy staleness,
                                               double server_mix)
    : staleness_(staleness), server_mix_(server_mix) {
  if (server_mix_ <= 0.0) {
    throw std::invalid_argument("StalenessDiscountedMix: server_mix <= 0");
  }
  if (staleness_.poly_exponent < 0.0 || staleness_.constant_factor <= 0.0) {
    throw std::invalid_argument(
        "StalenessDiscountedMix: discount must be positive");
  }
}

ModelParameters StalenessDiscountedMix::aggregate(
    const ModelParameters& current,
    const std::vector<AggregationInput>& cohort) const {
  ProfileScope prof(phase::kAggregate);
  const double total = checked_total_weight("StalenessDiscountedMix", cohort,
                                            true, &staleness_);
  // acc = sum_i n_i s(tau_i) delta_i
  ModelParameters acc;
  for (const AggregationInput& in : cohort) {
    const double u = in.weight * staleness_.weight(in.staleness);
    if (acc.empty()) {
      acc = *in.params;
      acc.scale(u);
    } else {
      acc.add_scaled(*in.params, u);
    }
  }
  acc.scale(server_mix_ / total);
  ModelParameters next = current;
  next.add_scaled(acc, 1.0);
  return next;
}

// ---------------------------------------------------------------------------
// Streaming accumulators
// ---------------------------------------------------------------------------

std::vector<std::size_t> fold_lane_offsets(std::size_t n, std::size_t lanes) {
  if (lanes == 0) lanes = 1;
  std::vector<std::size_t> offsets(lanes + 1);
  for (std::size_t l = 0; l <= lanes; ++l) offsets[l] = n * l / lanes;
  return offsets;
}

std::unique_ptr<StreamingAccumulator> AggregationRule::accumulator(
    const ModelParameters& /*current*/, const ShardLayout& /*layout*/) const {
  throw std::logic_error(
      name() +
      ": no streaming accumulator — this rule scores the cohort as a whole "
      "(requires_dense() == true); callers must keep the batch path");
}

namespace {

// Per-fold mirror of checked_total_weight's guards: same failure
// families, same counter, caught before the value ever touches a
// partial sum.
void check_fold(const char* rule, const ModelParameters& update, double weight,
                int client) {
  const std::string sender = client >= 0
                                 ? "client " + std::to_string(client)
                                 : std::string("a cohort update");
  if (update.empty()) {
    throw std::invalid_argument(std::string(rule) + ": empty update from " +
                                sender);
  }
  if (!(weight >= 0.0)) {  // negatives and NaNs both fail this
    throw std::invalid_argument(
        std::string(rule) + ": weight " + std::to_string(weight) + " from " +
        sender + " is negative or non-finite");
  }
  if (!std::isfinite(update.squared_l2_norm())) {
    static Counter& trips = MetricsRegistry::global().counter(
        "fleda.agg.nonfinite_guard_trips");
    trips.add(1);
    throw std::invalid_argument(
        std::string(rule) + ": " + sender +
        " sent a non-finite update (NaN/Inf parameter values) — "
        "refusing to fold it into the global model");
  }
}

void check_fold_structure(const char* rule, const ModelParameters& reference,
                          const ModelParameters& update, int client) {
  if (!reference.structurally_equal(update)) {
    const std::string sender = client >= 0
                                   ? "client " + std::to_string(client)
                                   : std::string("a cohort update");
    throw std::invalid_argument(std::string(rule) +
                                ": structure mismatch at " + sender);
  }
}

void check_finish_total(const char* rule, std::size_t folds, double total) {
  if (folds == 0) {
    throw std::invalid_argument(
        std::string(rule) +
        ": empty cohort — no client contributed this round (did the "
        "participation policy sample only offline clients?)");
  }
  if (!(total > 0.0) || !std::isfinite(total)) {
    throw std::invalid_argument(
        std::string(rule) + ": total weight " + std::to_string(total) +
        " over " + std::to_string(folds) +
        " clients — refusing to divide (would emit NaN parameters)");
  }
}

// Runs fn(begin, end) over `shards` contiguous slices of [0, total).
// Slices are a pure function of (total, shards) and every write inside
// fn targets its own slice, so the split parallelizes element-wise
// merge/finish work without affecting results. shards == 0 picks the
// pool size; nested use (inside an outer parallel_for) degrades to the
// serial path via the pool's non-reentrancy.
void for_each_shard(std::size_t total, std::size_t shards,
                    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (shards == 0) shards = ThreadPool::global().size();
  if (shards <= 1 || total < 4096) {
    fn(0, total);
    return;
  }
  parallel_for(shards, [&](std::size_t s_begin, std::size_t s_end) {
    for (std::size_t s = s_begin; s < s_end; ++s) {
      fn(total * s / shards, total * (s + 1) / shards);
    }
  });
}

// Per-entry double accumulation buffers shaped like a reference model.
// Folding in float updates at double precision keeps the running sum's
// error independent of the fold order's reassociation — the reason the
// streaming mean family matches the dense rules to float rounding.
struct DoubleSums {
  std::vector<std::vector<double>> acc;

  bool empty() const { return acc.empty(); }

  void init(const ModelParameters& shape) {
    acc.assign(shape.entries().size(), {});
    for (std::size_t e = 0; e < acc.size(); ++e) {
      acc[e].assign(
          static_cast<std::size_t>(shape.entries()[e].value.numel()), 0.0);
    }
  }

  // acc += scale * p
  void add_params(const ModelParameters& p, double scale) {
    for (std::size_t e = 0; e < acc.size(); ++e) {
      const float* src = p.entries()[e].value.data();
      double* dst = acc[e].data();
      const std::size_t n = acc[e].size();
      for (std::size_t i = 0; i < n; ++i) {
        dst[i] += scale * static_cast<double>(src[i]);
      }
    }
  }

  // acc += scale * (p - reference)
  void add_delta(const ModelParameters& p, const ModelParameters& reference,
                 double scale) {
    for (std::size_t e = 0; e < acc.size(); ++e) {
      const float* src = p.entries()[e].value.data();
      const float* ref = reference.entries()[e].value.data();
      double* dst = acc[e].data();
      const std::size_t n = acc[e].size();
      for (std::size_t i = 0; i < n; ++i) {
        dst[i] += scale * (static_cast<double>(src[i]) -
                           static_cast<double>(ref[i]));
      }
    }
  }

  // acc += other.acc, element-wise across shards.
  void add_sums(const DoubleSums& other, std::size_t shards) {
    for (std::size_t e = 0; e < acc.size(); ++e) {
      double* dst = acc[e].data();
      const double* src = other.acc[e].data();
      for_each_shard(acc[e].size(), shards,
                     [dst, src](std::size_t begin, std::size_t end) {
                       for (std::size_t i = begin; i < end; ++i) {
                         dst[i] += src[i];
                       }
                     });
    }
  }

  // result[e][i] = base (or base[e][i]) + acc[e][i] * scale, written
  // into a copy of `shape`.
  ModelParameters render(const ModelParameters& shape, double scale,
                         bool add_to_shape, std::size_t shards) const {
    ModelParameters result = shape;
    for (std::size_t e = 0; e < acc.size(); ++e) {
      float* out = result.mutable_entries()[e].value.data();
      const double* sums = acc[e].data();
      for_each_shard(
          acc[e].size(), shards,
          [out, sums, scale, add_to_shape](std::size_t begin,
                                           std::size_t end) {
            for (std::size_t i = begin; i < end; ++i) {
              const double folded = sums[i] * scale;
              out[i] = static_cast<float>(
                  add_to_shape ? static_cast<double>(out[i]) + folded
                               : folded);
            }
          });
    }
    return result;
  }
};

// weighted_average: acc = sum w_k p_k, finish = acc / total.
class MeanStreamAccumulator final : public StreamingAccumulator {
 public:
  explicit MeanStreamAccumulator(std::size_t shards) : shards_(shards) {}

  void fold(const ModelParameters& update, double weight, int /*staleness*/,
            int client) override {
    ProfileScope prof(phase::kAggregate);
    check_fold("WeightedAverage", update, weight, client);
    if (folds_ == 0) {
      shape_ = update;
      sums_.init(shape_);
    } else {
      check_fold_structure("WeightedAverage", shape_, update, client);
    }
    sums_.add_params(update, weight);
    total_ += weight;
    ++folds_;
  }

  void merge(StreamingAccumulator& other) override {
    ProfileScope prof(phase::kAggregate);
    auto* peer = dynamic_cast<MeanStreamAccumulator*>(&other);
    if (peer == nullptr) {
      throw std::invalid_argument(
          "WeightedAverage: merge with a different rule's accumulator");
    }
    if (peer->folds_ == 0) return;
    if (folds_ == 0) {
      shape_ = std::move(peer->shape_);
      sums_ = std::move(peer->sums_);
      total_ = peer->total_;
      folds_ = peer->folds_;
    } else {
      check_fold_structure("WeightedAverage", shape_, peer->shape_, -1);
      sums_.add_sums(peer->sums_, shards_);
      total_ += peer->total_;
      folds_ += peer->folds_;
    }
    *peer = MeanStreamAccumulator(shards_);
  }

  std::size_t folds() const override { return folds_; }

  ModelParameters finish() override {
    ProfileScope prof(phase::kAggregate);
    check_finish_total("WeightedAverage", folds_, total_);
    return sums_.render(shape_, 1.0 / total_, /*add_to_shape=*/false, shards_);
  }

 private:
  std::size_t shards_;
  ModelParameters shape_;
  DoubleSums sums_;
  double total_ = 0.0;
  std::size_t folds_ = 0;
};

// norm_clipped_mean: acc = sum w_k clip_k (p_k - current),
// finish = current + acc / total. Holds `current` by reference.
class ClippedStreamAccumulator final : public StreamingAccumulator {
 public:
  ClippedStreamAccumulator(const ModelParameters& current, double clip_norm,
                           std::size_t shards)
      : current_(&current), clip_norm_(clip_norm), shards_(shards) {
    sums_.init(current);
  }

  void fold(const ModelParameters& update, double weight, int /*staleness*/,
            int client) override {
    ProfileScope prof(phase::kAggregate);
    check_fold("NormClippedMean", update, weight, client);
    check_fold_structure("NormClippedMean", *current_, update, client);
    // Pass 1: the delta's norm (needs only this one update — the reason
    // clipping streams while Krum's pairwise scoring cannot).
    double norm2 = 0.0;
    for (std::size_t e = 0; e < update.entries().size(); ++e) {
      const float* u = update.entries()[e].value.data();
      const float* c = current_->entries()[e].value.data();
      const std::size_t n =
          static_cast<std::size_t>(update.entries()[e].value.numel());
      for (std::size_t i = 0; i < n; ++i) {
        const double d =
            static_cast<double>(u[i]) - static_cast<double>(c[i]);
        norm2 += d * d;
      }
    }
    const double norm = std::sqrt(norm2);
    const double clip = norm > clip_norm_ ? clip_norm_ / norm : 1.0;
    sums_.add_delta(update, *current_, clip * weight);
    total_ += weight;
    ++folds_;
  }

  void merge(StreamingAccumulator& other) override {
    ProfileScope prof(phase::kAggregate);
    auto* peer = dynamic_cast<ClippedStreamAccumulator*>(&other);
    if (peer == nullptr) {
      throw std::invalid_argument(
          "NormClippedMean: merge with a different rule's accumulator");
    }
    if (peer->folds_ == 0) return;
    sums_.add_sums(peer->sums_, shards_);
    total_ += peer->total_;
    folds_ += peer->folds_;
    *peer = ClippedStreamAccumulator(*peer->current_, clip_norm_, shards_);
  }

  std::size_t folds() const override { return folds_; }

  ModelParameters finish() override {
    ProfileScope prof(phase::kAggregate);
    check_finish_total("NormClippedMean", folds_, total_);
    return sums_.render(*current_, 1.0 / total_, /*add_to_shape=*/true,
                        shards_);
  }

 private:
  const ModelParameters* current_;
  double clip_norm_;
  std::size_t shards_;
  DoubleSums sums_;
  double total_ = 0.0;
  std::size_t folds_ = 0;
};

// staleness_mix: folds are DELTAS; acc = sum u_i d_i with
// u_i = w_i s(tau_i), finish = current + server_mix * acc / total.
class MixStreamAccumulator final : public StreamingAccumulator {
 public:
  MixStreamAccumulator(const ModelParameters& current,
                       const StalenessPolicy& staleness, double server_mix,
                       std::size_t shards)
      : current_(&current),
        staleness_(staleness),
        server_mix_(server_mix),
        shards_(shards) {
    sums_.init(current);
  }

  void fold(const ModelParameters& update, double weight, int staleness,
            int client) override {
    ProfileScope prof(phase::kAggregate);
    check_fold("StalenessDiscountedMix", update, weight, client);
    check_fold_structure("StalenessDiscountedMix", *current_, update, client);
    const double u = weight * staleness_.weight(staleness);
    sums_.add_params(update, u);
    total_ += u;
    ++folds_;
  }

  void merge(StreamingAccumulator& other) override {
    ProfileScope prof(phase::kAggregate);
    auto* peer = dynamic_cast<MixStreamAccumulator*>(&other);
    if (peer == nullptr) {
      throw std::invalid_argument(
          "StalenessDiscountedMix: merge with a different rule's accumulator");
    }
    if (peer->folds_ == 0) return;
    sums_.add_sums(peer->sums_, shards_);
    total_ += peer->total_;
    folds_ += peer->folds_;
    *peer = MixStreamAccumulator(*peer->current_, staleness_, server_mix_,
                                 shards_);
  }

  std::size_t folds() const override { return folds_; }

  ModelParameters finish() override {
    ProfileScope prof(phase::kAggregate);
    check_finish_total("StalenessDiscountedMix", folds_, total_);
    return sums_.render(*current_, server_mix_ / total_, /*add_to_shape=*/true,
                        shards_);
  }

 private:
  const ModelParameters* current_;
  StalenessPolicy staleness_;
  double server_mix_;
  std::size_t shards_;
  DoubleSums sums_;
  double total_ = 0.0;
  std::size_t folds_ = 0;
};

// Streaming quantile sketch for the rank-based rules: a fixed-bin
// histogram per coordinate over [current[c] - span, current[c] + span]
// (outliers clamp to the edge bins). Integer bin counts make merges
// exact and order-independent, so the sketch — unlike the double sums
// — is bit-identical across every lane/shard layout by construction.
// finish() walks each coordinate's bin ranks: the median reads the
// middle rank(s), the trimmed mean averages the mass of ranks
// [g, n - g), both answering with bucket midpoints (in-span error at
// most one bin width = 2 * span / bins).
class SketchStreamAccumulator final : public StreamingAccumulator {
 public:
  SketchStreamAccumulator(const char* rule, const ModelParameters& current,
                          int bins, double span, double trim_fraction,
                          std::size_t shards)
      : rule_(rule),
        current_(&current),
        bins_(static_cast<std::size_t>(bins)),
        span_(span),
        trim_fraction_(trim_fraction),
        shards_(shards) {
    counts_.assign(current.entries().size(), {});
    for (std::size_t e = 0; e < counts_.size(); ++e) {
      counts_[e].assign(
          static_cast<std::size_t>(current.entries()[e].value.numel()) * bins_,
          0);
    }
  }

  void fold(const ModelParameters& update, double weight, int /*staleness*/,
            int client) override {
    ProfileScope prof(phase::kAggregate);
    check_fold(rule_, update, weight, client);
    check_fold_structure(rule_, *current_, update, client);
    const double inv_width =
        static_cast<double>(bins_) / (2.0 * span_);
    for (std::size_t e = 0; e < counts_.size(); ++e) {
      const float* u = update.entries()[e].value.data();
      const float* c = current_->entries()[e].value.data();
      std::uint32_t* bins = counts_[e].data();
      const std::size_t n = counts_[e].size() / bins_;
      for (std::size_t i = 0; i < n; ++i) {
        const double rel =
            (static_cast<double>(u[i]) - static_cast<double>(c[i]) + span_) *
            inv_width;
        std::size_t b = rel <= 0.0 ? 0 : static_cast<std::size_t>(rel);
        if (b >= bins_) b = bins_ - 1;
        ++bins[i * bins_ + b];
      }
    }
    total_ += weight;
    ++folds_;
  }

  void merge(StreamingAccumulator& other) override {
    ProfileScope prof(phase::kAggregate);
    auto* peer = dynamic_cast<SketchStreamAccumulator*>(&other);
    if (peer == nullptr || peer->bins_ != bins_ || peer->span_ != span_) {
      throw std::invalid_argument(
          std::string(rule_) +
          ": merge with an incompatible sketch accumulator");
    }
    if (peer->folds_ == 0) return;
    for (std::size_t e = 0; e < counts_.size(); ++e) {
      std::uint32_t* dst = counts_[e].data();
      const std::uint32_t* src = peer->counts_[e].data();
      for_each_shard(counts_[e].size(), shards_,
                     [dst, src](std::size_t begin, std::size_t end) {
                       for (std::size_t i = begin; i < end; ++i) {
                         dst[i] += src[i];
                       }
                     });
    }
    total_ += peer->total_;
    folds_ += peer->folds_;
    *peer = SketchStreamAccumulator(rule_, *peer->current_,
                                    static_cast<int>(bins_), span_,
                                    trim_fraction_, shards_);
  }

  std::size_t folds() const override { return folds_; }

  ModelParameters finish() override {
    ProfileScope prof(phase::kAggregate);
    check_finish_total(rule_, folds_, total_);
    const std::size_t n = folds_;
    const std::size_t g = static_cast<std::size_t>(
        trim_fraction_ * static_cast<double>(n));
    const double width = 2.0 * span_ / static_cast<double>(bins_);
    const bool median = trim_fraction_ < 0.0;
    ModelParameters result = *current_;
    for (std::size_t e = 0; e < counts_.size(); ++e) {
      float* out = result.mutable_entries()[e].value.data();
      const std::uint32_t* bins = counts_[e].data();
      const std::size_t numel = counts_[e].size() / bins_;
      const std::size_t nbins = bins_;
      const double span = span_;
      for_each_shard(
          numel, shards_,
          [out, bins, numel, nbins, span, width, n, g,
           median](std::size_t begin, std::size_t end) {
            (void)numel;
            for (std::size_t i = begin; i < end; ++i) {
              const std::uint32_t* row = bins + i * nbins;
              const double base = static_cast<double>(out[i]) - span;
              if (median) {
                // Value(s) at the middle rank(s), bucket midpoints.
                const std::size_t hi_rank = n / 2;
                const std::size_t lo_rank = n % 2 == 1 ? hi_rank : hi_rank - 1;
                double lo = 0.0, hi = 0.0;
                std::size_t cum = 0;
                for (std::size_t b = 0; b < nbins; ++b) {
                  const std::size_t next = cum + row[b];
                  const double mid =
                      base + (static_cast<double>(b) + 0.5) * width;
                  if (cum <= lo_rank && lo_rank < next) lo = mid;
                  if (cum <= hi_rank && hi_rank < next) {
                    hi = mid;
                    break;
                  }
                  cum = next;
                }
                out[i] = static_cast<float>((lo + hi) / 2.0);
              } else {
                // Mass of ranks [g, n - g): each bin contributes the
                // overlap of its cumulative rank range, valued at its
                // midpoint.
                double acc = 0.0;
                std::size_t cum = 0;
                for (std::size_t b = 0; b < nbins && cum < n - g; ++b) {
                  const std::size_t next = cum + row[b];
                  const std::size_t lo = cum > g ? cum : g;
                  const std::size_t hi = next < n - g ? next : n - g;
                  if (hi > lo) {
                    acc += static_cast<double>(hi - lo) *
                           (base + (static_cast<double>(b) + 0.5) * width);
                  }
                  cum = next;
                }
                out[i] = static_cast<float>(
                    acc / static_cast<double>(n - 2 * g));
              }
            }
          });
    }
    return result;
  }

 private:
  const char* rule_;
  const ModelParameters* current_;
  std::size_t bins_;
  double span_;
  double trim_fraction_;  // < 0 = median mode
  std::size_t shards_;
  std::vector<std::vector<std::uint32_t>> counts_;
  double total_ = 0.0;
  std::size_t folds_ = 0;
};

void require_streaming_current(const char* rule,
                               const ModelParameters& current) {
  if (current.empty()) {
    throw std::invalid_argument(
        std::string(rule) +
        ": empty `current` — the streaming accumulator anchors on the "
        "server's model (delta reference / sketch center), so the caller "
        "must pass it");
  }
}

}  // namespace

std::unique_ptr<StreamingAccumulator> WeightedAverage::accumulator(
    const ModelParameters& /*current*/, const ShardLayout& layout) const {
  return std::make_unique<MeanStreamAccumulator>(layout.shards);
}

std::unique_ptr<StreamingAccumulator> NormClippedMean::accumulator(
    const ModelParameters& current, const ShardLayout& layout) const {
  require_streaming_current("NormClippedMean", current);
  return std::make_unique<ClippedStreamAccumulator>(current, clip_norm_,
                                                    layout.shards);
}

std::unique_ptr<StreamingAccumulator> StalenessDiscountedMix::accumulator(
    const ModelParameters& current, const ShardLayout& layout) const {
  require_streaming_current("StalenessDiscountedMix", current);
  return std::make_unique<MixStreamAccumulator>(current, staleness_,
                                                server_mix_, layout.shards);
}

std::unique_ptr<StreamingAccumulator> CoordinateMedian::accumulator(
    const ModelParameters& current, const ShardLayout& layout) const {
  require_streaming_current("CoordinateMedian", current);
  return std::make_unique<SketchStreamAccumulator>(
      "CoordinateMedian", current, sketch_bins_, sketch_span_,
      /*trim_fraction=*/-1.0, layout.shards);
}

std::unique_ptr<StreamingAccumulator> TrimmedMean::accumulator(
    const ModelParameters& current, const ShardLayout& layout) const {
  require_streaming_current("TrimmedMean", current);
  return std::make_unique<SketchStreamAccumulator>(
      "TrimmedMean", current, sketch_bins_, sketch_span_, trim_fraction_,
      layout.shards);
}

namespace {

void register_builtin_rules(AggregationRegistry& registry) {
  registry.add("weighted_average", [](const AggregationConfig&) {
    return std::make_unique<WeightedAverage>();
  });
  registry.add("coordinate_median", [](const AggregationConfig& c) {
    return std::make_unique<CoordinateMedian>(c.sketch_bins, c.sketch_span);
  });
  registry.add("trimmed_mean", [](const AggregationConfig& c) {
    return std::make_unique<TrimmedMean>(c.trim_fraction, c.sketch_bins,
                                         c.sketch_span);
  });
  registry.add("norm_clipped_mean", [](const AggregationConfig& c) {
    return std::make_unique<NormClippedMean>(c.clip_norm);
  });
  registry.add("krum", [](const AggregationConfig& c) {
    return std::make_unique<Krum>(c.krum_f);
  });
  registry.add("multi_krum", [](const AggregationConfig& c) {
    return std::make_unique<MultiKrum>(c.krum_f, c.krum_m);
  });
  registry.add("staleness_mix", [](const AggregationConfig& c) {
    return std::make_unique<StalenessDiscountedMix>(c.staleness,
                                                    c.server_mix);
  });
}

}  // namespace

AggregationRegistry& AggregationRegistry::global() {
  static AggregationRegistry* registry = [] {
    auto* r = new AggregationRegistry();
    register_builtin_rules(*r);
    return r;
  }();
  return *registry;
}

void AggregationRegistry::add(std::string name, Factory factory) {
  if (name.empty()) {
    throw std::invalid_argument("AggregationRegistry::add: empty name");
  }
  if (!factory) {
    throw std::invalid_argument(
        "AggregationRegistry::add: null factory for '" + name + "'");
  }
  if (!factories_.emplace(std::move(name), std::move(factory)).second) {
    throw std::invalid_argument(
        "AggregationRegistry::add: duplicate registration");
  }
}

bool AggregationRegistry::contains(std::string_view name) const {
  return factories_.find(name) != factories_.end();
}

std::vector<std::string> AggregationRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) out.push_back(name);
  return out;  // std::map iterates sorted
}

std::unique_ptr<AggregationRule> AggregationRegistry::create(
    std::string_view name, const AggregationConfig& config) const {
  const auto it = factories_.find(name);
  if (it == factories_.end()) {
    std::string known;
    for (const std::string& n : names()) {
      if (!known.empty()) known += ", ";
      known += n;
    }
    throw std::invalid_argument("AggregationRegistry: unknown rule '" +
                                std::string(name) + "' (registered: " + known +
                                ")");
  }
  return it->second(config);
}

std::unique_ptr<AggregationRule> make_aggregation_rule(
    const AggregationConfig& config) {
  if (config.rule.empty()) {
    throw std::invalid_argument(
        "make_aggregation_rule: empty rule name — the algorithm default is "
        "chosen by the caller, not the registry");
  }
  return AggregationRegistry::global().create(config.rule, config);
}

}  // namespace fleda
