// AsyncFedAvg: buffered asynchronous FedAvg in the FedBuff tradition
// (Nguyen et al. 2022), the staleness-aware aggregation the ROADMAP
// names on top of the metered Channel. There is no round barrier:
// every client runs its own download -> train -> upload loop as events
// on the simulation clock, the server buffers incoming updates, and
// once `buffer_size` updates are waiting it folds their
// staleness-discounted deltas into the global model and bumps the
// model version. Slow clients (stragglers) therefore delay nobody —
// their updates simply arrive with higher staleness and a smaller
// discount weight — and clients that drop offline mid-upload lose the
// update and rejoin when their window ends.
#pragma once

#include "fl/aggregation.hpp"
#include "fl/trainer.hpp"

namespace fleda {

// StalenessDiscount lives in fl/aggregation.hpp now (the discount math
// moved into the pluggable StalenessDiscountedMix rule); AsyncConfig
// keeps its flat fields as the user-facing knobs.

struct AsyncConfig {
  // Server aggregates once this many updates are buffered. 1 recovers
  // fully-async FedAsync; #clients approximates a soft sync round.
  int buffer_size = 3;
  // Server mixing rate eta on the discounted average delta. Below 1.0
  // damps the cohort-to-cohort oscillation a small buffer induces
  // (each aggregation sees only buffer_size of the clients).
  double server_mix = 0.5;
  StalenessDiscount discount = StalenessDiscount::kPolynomial;
  double poly_exponent = 1.0;    // kPolynomial
  double constant_factor = 0.3;  // kConstant
  // Dispatch gate: at most this many clients hold a dispatched model
  // (download -> train -> upload) at any instant; the rest wait FIFO
  // for a slot. The async analogue of cohort subsampling — a K = 1000
  // fleet no longer keeps all thousand clients busy (nor needs server
  // state for all of them at once). 0 = unlimited (every client loops).
  int max_in_flight = 0;
  // Staleness-aware tightening of the dispatch gate: when the oldest
  // buffered update is more than this many versions behind the current
  // model, the effective in-flight cap shrinks by one per excess
  // version (never below 1) — the server stops fanning out fresh work
  // it would mostly discount away, and the buffer catches up. Only
  // meaningful with max_in_flight > 0. 0 disables the tightening, and
  // the run is event-for-event identical to the fixed-cap gate.
  int staleness_gate_age = 0;
};

class AsyncFedAvg : public FederatedAlgorithm {
 public:
  explicit AsyncFedAvg(AsyncConfig config = {});

  std::string name() const override { return "AsyncFedAvg"; }
  // The event-driven loop is availability-aware by construction and
  // ignores the sync-barrier participation policy.
  bool uses_participation() const override { return false; }
  const AsyncConfig& config() const { return config_; }

  // Discount weight for an update trained on a model `staleness`
  // versions behind the current one (delegates to StalenessPolicy).
  static double staleness_weight(const AsyncConfig& config, int staleness);

  // The async knobs as an aggregation-layer StalenessPolicy.
  static StalenessPolicy staleness_policy(const AsyncConfig& config);

 protected:
  // opts.rounds counts server aggregations (the async analogue of a
  // round); opts.client.mu is forced to 0 like FedAvg's.
  std::vector<ModelParameters> run_rounds(
      std::vector<Client>& clients, const ModelFactory& factory,
      const FLRunOptions& opts, FederationSim& sim,
      ParticipationPolicy& participation) override;

 private:
  AsyncConfig config_;
};

}  // namespace fleda
