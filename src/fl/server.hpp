// Server (the "developer" in the paper): the only party besides the
// clients, which never sees data — it only aggregates ModelParameters
// weighted by each client's sample count (n_k / n), as in
// W^{r+1} = sum_k (n_k / n) w_k^r.
#pragma once

#include <vector>

#include "fl/client.hpp"
#include "fl/parameters.hpp"

namespace fleda {

class Server {
 public:
  // Sample-count weights n_k for a set of clients.
  static std::vector<double> client_weights(const std::vector<Client>& clients);

  // Weighted FedAvg aggregation of client updates.
  static ModelParameters aggregate(const std::vector<ModelParameters>& updates,
                                   const std::vector<double>& weights);

  // Aggregation over a subset (e.g. one cluster's members). `members`
  // are indices into updates/weights.
  static ModelParameters aggregate_subset(
      const std::vector<ModelParameters>& updates,
      const std::vector<double>& weights,
      const std::vector<std::size_t>& members);
};

}  // namespace fleda
