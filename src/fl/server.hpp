// Server (the "developer" in the paper): the only party besides the
// clients, which never sees data — it only aggregates ModelParameters
// weighted by each client's sample count (n_k / n), as in
// W^{r+1} = sum_k (n_k / n) w_k^r.
//
// The actual averaging math lives in fl/aggregation.hpp
// (WeightedAverage); these statics are the convenience facade the
// round loops use, now cohort-aware: under a ParticipationPolicy an
// algorithm aggregates `cohort_weights`-weighted updates from the
// sampled members only.
#pragma once

#include <vector>

#include "fl/aggregation.hpp"
#include "fl/client.hpp"
#include "fl/parameters.hpp"

namespace fleda {

class Server {
 public:
  // Sample-count weights n_k for a set of clients.
  static std::vector<double> client_weights(const std::vector<Client>& clients);

  // n_k for the cohort's members only, cohort-indexed (pairs with the
  // cohort-indexed updates cohort_local_updates returns).
  static std::vector<double> cohort_weights(
      const std::vector<double>& weights,
      const std::vector<std::size_t>& cohort);

  // Weighted FedAvg aggregation of client updates (WeightedAverage
  // rule). Throws a descriptive std::invalid_argument on an empty
  // update set or zero total weight — an all-offline sampled cohort
  // must fail loudly, not divide by zero.
  static ModelParameters aggregate(const std::vector<ModelParameters>& updates,
                                   const std::vector<double>& weights);

  // Rule-threaded form: aggregates the cohort-indexed updates under
  // `rule`, with `current` as the model being replaced (the delta
  // reference for clipping rules; plain averages ignore it). `cohort`
  // carries the true federation-level client indices so validation
  // errors name the poisoning client — pass an empty vector when the
  // caller has no cohort identity (errors then name positions).
  static ModelParameters aggregate(const AggregationRule& rule,
                                   const ModelParameters& current,
                                   const std::vector<ModelParameters>& updates,
                                   const std::vector<double>& weights,
                                   const std::vector<std::size_t>& cohort);

  // Aggregation over a subset (e.g. one cluster's members). `members`
  // are indices into updates/weights.
  static ModelParameters aggregate_subset(
      const std::vector<ModelParameters>& updates,
      const std::vector<double>& weights,
      const std::vector<std::size_t>& members);
};

}  // namespace fleda
