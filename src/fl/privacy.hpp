// Update-level privacy mechanisms (extension).
//
// The paper explicitly scopes out the privacy engineering it cites
// ([19] local/central DP, [21] representation defenses) as "not
// special in ML for EDA". This module implements the standard
// Gaussian-mechanism building blocks so the effect of DP noise on the
// paper's training flow can be studied: clip each client's parameter
// *delta* (update - deployed model) to a maximum L2 norm, then add
// isotropic Gaussian noise calibrated as sigma = noise_multiplier *
// clip_norm. Buffers (BatchNorm statistics) are clipped/noised along
// with parameters — they leak data statistics too.
#pragma once

#include "fl/parameters.hpp"
#include "util/rng.hpp"

namespace fleda {

struct DpOptions {
  double clip_norm = 1.0;         // max L2 norm of a client delta
  double noise_multiplier = 0.0;  // sigma / clip_norm; 0 = clip only
};

// L2 norm of (update - reference) over all entries.
double update_norm(const ModelParameters& update,
                   const ModelParameters& reference);

// Scales (update - reference) down to clip_norm if it exceeds it;
// returns the pre-clip norm.
double clip_update(ModelParameters& update, const ModelParameters& reference,
                   double clip_norm);

// Adds N(0, sigma^2) noise to every entry of `params`.
void add_gaussian_noise(ModelParameters& params, double sigma, Rng& rng);

// Applies the full mechanism to one client update in place:
// clip the delta, then add noise_multiplier * clip_norm Gaussian noise.
void privatize_update(ModelParameters& update,
                      const ModelParameters& reference, const DpOptions& opts,
                      Rng& rng);

}  // namespace fleda
