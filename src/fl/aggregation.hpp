// AggregationRule: the strategy that turns a cohort's updates into the
// next server-side model. The weighted-average math used to live in
// Server and the staleness-discount / server-mix math inside
// AsyncFedAvg's round loop; both are now pluggable rules, so a new
// aggregation scheme (median, trimmed mean, momentum server, ...)
// plugs into every algorithm instead of forking one.
//
// Two families ship:
//   Averaging rules (folds_into_current() == false) — combine the
//     cohort's snapshots; `current` is at most a reference point:
//       WeightedAverage   — W' = sum_k (n_k / n) w_k over the cohort
//                           (FedAvg/FedProx semantics; ignores
//                           `current` and staleness).
//       CoordinateMedian  — entrywise median of the cohort (rank-based,
//                           so sample counts are validated but do not
//                           weight the result). Robust to < 50%
//                           arbitrarily-corrupted clients.
//       TrimmedMean       — entrywise mean after dropping the
//                           floor(trim_fraction * n) largest and
//                           smallest values per coordinate.
//       NormClippedMean   — each update's delta against `current` is
//                           clipped to clip_norm in L2 before the
//                           weighted average; bounds any single
//                           client's pull on the global model.
//   Delta/mixing rules (folds_into_current() == true) — the cohort
//     entries are DELTAS and aggregate() returns `current` with them
//     folded in:
//       StalenessDiscountedMix — W' = W + eta * sum_i u_i d_i /
//                           sum_i u_i, u_i = n_i * s(tau_i)
//                           (AsyncFedAvg/FedBuff semantics).
//
// Every rule refuses an empty cohort, a zero total weight, or a
// non-finite update with a descriptive error — under partial
// participation an all-offline sampled cohort must fail loudly, and a
// single NaN/Inf client update must never reach the global model.
//
// Rules are constructible by name through AggregationRegistry (the
// aggregation-layer mirror of AlgorithmRegistry), parameterized by the
// declarative AggregationConfig that FLRunOptions/ExperimentConfig
// carry — so any algorithm swaps its rule without a code change.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "fl/parameters.hpp"

namespace fleda {

// One client's contribution to an aggregation step.
struct AggregationInput {
  // Full parameters for averaging rules; a delta against the dispatched
  // model for mixing rules. Never null.
  const ModelParameters* params = nullptr;
  double weight = 0.0;  // n_k, the client's sample count
  int staleness = 0;    // model versions behind the server; sync: 0
  // Federation-level client index, used only to name the culprit in
  // validation errors (a poisoned update should point at its sender).
  // Negative = unknown; errors then name the cohort position.
  int client = -1;
};

// Fixed fold-lane count of the streaming aggregation path. Lanes — not
// thread-pool chunks — are the unit of parallel folding: the cohort is
// partitioned into kFoldLanes contiguous blocks, each lane folds its
// block serially in cohort order into its own accumulator, and the
// coordinator merges the lanes in lane order. Because the partition and
// both fold/merge orders are pure functions of the cohort (never of
// thread scheduling), streaming results are bit-identical across
// thread-pool sizes.
inline constexpr std::size_t kFoldLanes = 8;

// How a streaming aggregation is laid out: how many folds to expect,
// how many parallel fold lanes feed partial accumulators, and how many
// parameter shards the (element-wise) merge/finish passes may split
// the model into. Shards only parallelize element-wise work, so the
// result is shard-count invariant by construction — FLEDA_AGG_SHARDS
// is a parallelism knob, not a semantics knob.
struct ShardLayout {
  std::size_t cohort_size = 0;    // expected folds; 0 = unknown
  std::size_t lanes = kFoldLanes; // partial accumulators folded in parallel
  std::size_t shards = 0;         // merge/finish parallelism; 0 = auto
};

// Half-open lane boundaries over [0, n): lanes + 1 offsets with lane l
// covering [offsets[l], offsets[l + 1]). Pure function of (n, lanes) —
// the streaming path's determinism rests on these bounds never
// depending on the thread pool.
std::vector<std::size_t> fold_lane_offsets(std::size_t n, std::size_t lanes);

// One partial accumulator of a streaming aggregation: updates are
// folded in one at a time (and can be freed by the caller immediately
// after), sibling lanes are merged in lane order, and finish() emits
// the aggregated model. Obtained from AggregationRule::accumulator();
// not thread-safe — each lane owns one, and merge()/finish() run on
// the coordinator after all folds complete. Server memory for a round
// becomes O(lanes x model) (plus O(shards x threads) transient scratch
// in finish), independent of cohort size.
class StreamingAccumulator {
 public:
  virtual ~StreamingAccumulator() = default;

  // Folds one client's contribution. Mirrors the dense rules' guards:
  // throws std::invalid_argument on a null-structure/NaN/Inf update, a
  // negative or non-finite weight, or a structure mismatch, naming
  // `client` (negative = unknown). `staleness` feeds mixing rules'
  // discount; synchronous callers pass 0.
  virtual void fold(const ModelParameters& update, double weight,
                    int staleness, int client) = 0;

  // Absorbs a sibling lane's partials (same rule, same layout). The
  // caller merges lanes in ascending lane order; `other` is left empty.
  virtual void merge(StreamingAccumulator& other) = 0;

  // Folds absorbed so far (own + merged) — lets callers skip finish()
  // for an empty group (e.g. a dead IFCA cluster) instead of tripping
  // the empty-cohort error.
  virtual std::size_t folds() const = 0;

  // The aggregated model. Throws like the dense rules on zero folds or
  // a zero/non-finite total weight. Call once, after all merges.
  virtual ModelParameters finish() = 0;
};

class AggregationRule {
 public:
  virtual ~AggregationRule() = default;

  virtual std::string name() const = 0;

  // Whether aggregate() folds the cohort (as deltas) into `current`
  // (mixing rules) rather than combining the cohort's snapshots alone
  // (averaging rules). Event-driven servers use this to decide how to
  // apply a rule to their buffered deltas.
  virtual bool folds_into_current() const { return false; }

  // Whether the rule needs the whole cohort materialized at once.
  // Krum-family rules score pairwise distances and keep the batch
  // path; rules with a streaming form (weighted_average,
  // norm_clipped_mean, staleness_mix natively; coordinate_median /
  // trimmed_mean via a histogram sketch) return false and implement
  // accumulator().
  virtual bool requires_dense() const { return true; }

  // A fresh partial accumulator for one fold lane. `current` is the
  // model being replaced (the delta/clipping reference; it must
  // outlive the accumulator — round loops keep the global model alive
  // across the round). Default: throws std::logic_error — callers must
  // check requires_dense() first.
  virtual std::unique_ptr<StreamingAccumulator> accumulator(
      const ModelParameters& current, const ShardLayout& layout) const;

  // Combines the cohort into the next model. `current` is the model
  // being replaced; plain averaging rules ignore it, clipping rules use
  // it as the delta reference, mixing rules fold into it. Throws
  // std::invalid_argument on an empty cohort, zero/non-finite total
  // weight, a non-finite update, or structure mismatch.
  virtual ModelParameters aggregate(
      const ModelParameters& current,
      const std::vector<AggregationInput>& cohort) const = 0;
};

// Sample-count weighted FedAvg average (paper Eq. W^{r+1}).
class WeightedAverage : public AggregationRule {
 public:
  std::string name() const override { return "weighted_average"; }
  bool requires_dense() const override { return false; }
  // Streaming form: per-coordinate double running sums of w_k * w^k
  // plus a scalar total weight; finish() scales by 1 / total. Exact up
  // to summation order (doubles absorb the reassociation), so it
  // matches the dense rule to float rounding, not bit-for-bit — which
  // is why streaming is opt-in.
  std::unique_ptr<StreamingAccumulator> accumulator(
      const ModelParameters& current, const ShardLayout& layout) const override;
  ModelParameters aggregate(
      const ModelParameters& current,
      const std::vector<AggregationInput>& cohort) const override;
};

// Entrywise (coordinate-wise) median over the cohort. Rank-based:
// sample-count weights are validated but do not influence the result,
// which is what makes a < 50% fraction of arbitrarily-corrupted
// clients unable to move any coordinate outside the honest range.
class CoordinateMedian : public AggregationRule {
 public:
  // sketch_bins / sketch_span parameterize ONLY the streaming sketch
  // (see accumulator()); the dense aggregate() stays exact.
  explicit CoordinateMedian(int sketch_bins = 32, double sketch_span = 0.25);

  std::string name() const override { return "coordinate_median"; }
  bool requires_dense() const override { return false; }
  // Streaming form: a per-coordinate fixed-bin histogram sketch over
  // [current[c] - span, current[c] + span] (values outside clamp to the
  // edge bins); finish() reads the median off the bin ranks, answering
  // with the bucket midpoint. Bounded error: within the span the
  // median is off by at most one bin width (2 * span / bins); integer
  // bin counts merge exactly, so the sketch stays deterministic across
  // lane/shard layouts.
  std::unique_ptr<StreamingAccumulator> accumulator(
      const ModelParameters& current, const ShardLayout& layout) const override;
  ModelParameters aggregate(
      const ModelParameters& current,
      const std::vector<AggregationInput>& cohort) const override;

 private:
  int sketch_bins_;
  double sketch_span_;
};

// Entrywise trimmed mean: per coordinate, the g = floor(trim_fraction
// * n) smallest and largest values are dropped and the surviving
// n - 2g values averaged (unweighted, like the median — robustness
// comes from the rank filter, not the sample counts). Tolerates up to
// g corrupted clients per coordinate.
class TrimmedMean : public AggregationRule {
 public:
  // trim_fraction in [0, 0.5); 0 recovers the unweighted mean.
  // sketch_bins / sketch_span parameterize only the streaming sketch.
  explicit TrimmedMean(double trim_fraction, int sketch_bins = 32,
                       double sketch_span = 0.25);

  std::string name() const override { return "trimmed_mean"; }
  double trim_fraction() const { return trim_fraction_; }
  bool requires_dense() const override { return false; }
  // Streaming form: the same histogram sketch as CoordinateMedian;
  // finish() averages the mass of ranks [g, n - g) per coordinate by
  // walking the bins' cumulative counts (bucket midpoints as values).
  std::unique_ptr<StreamingAccumulator> accumulator(
      const ModelParameters& current, const ShardLayout& layout) const override;
  ModelParameters aggregate(
      const ModelParameters& current,
      const std::vector<AggregationInput>& cohort) const override;

 private:
  double trim_fraction_;
  int sketch_bins_;
  double sketch_span_;
};

// Weighted average of delta-clipped updates: each cohort member's
// delta against `current` is scaled down to at most clip_norm in L2
// before the sample-count weighted average, so no single client —
// however scaled its update — can pull the global model further than
// clip_norm in one round. Requires a non-empty `current` (the server's
// model) as the clipping reference.
class NormClippedMean : public AggregationRule {
 public:
  explicit NormClippedMean(double clip_norm);  // must be finite and > 0

  std::string name() const override { return "norm_clipped_mean"; }
  double clip_norm() const { return clip_norm_; }
  bool requires_dense() const override { return false; }
  // Streaming form: fold computes the clipped delta against `current`
  // immediately (clip factor needs only the one update) and running-sums
  // w_k * clip_k * delta_k in doubles; finish() adds the scaled sum back
  // onto `current`. `current` must outlive the accumulator.
  std::unique_ptr<StreamingAccumulator> accumulator(
      const ModelParameters& current, const ShardLayout& layout) const override;
  ModelParameters aggregate(
      const ModelParameters& current,
      const std::vector<AggregationInput>& cohort) const override;

 private:
  double clip_norm_;
};

// Krum (Blanchard et al. 2017): distance-based selection. Each cohort
// member i is scored by the sum of its squared L2 distances to its
// n - f - 2 nearest neighbors; the member with the lowest score — the
// update sitting deepest inside the honest cluster — becomes the next
// model verbatim. Tolerates f Byzantine members but requires
// n >= 2f + 3 (enforced per aggregate() call with a descriptive
// error): with fewer honest neighbors the score is no longer
// Byzantine-resilient. Rank-based like the median: sample-count
// weights are validated but do not influence selection.
class Krum : public AggregationRule {
 public:
  explicit Krum(int f);  // assumed Byzantine count, must be >= 0

  std::string name() const override { return "krum"; }
  int f() const { return f_; }
  ModelParameters aggregate(
      const ModelParameters& current,
      const std::vector<AggregationInput>& cohort) const override;

 protected:
  // Cohort indices ordered ascending by (Krum score, index); callers
  // take the first m. Validates the cohort (shared guards + the
  // n >= 2f + 3 requirement). `rule` labels the thrown errors.
  std::vector<std::size_t> krum_order(
      const std::vector<AggregationInput>& cohort, const char* rule) const;

 private:
  int f_;
};

// MultiKrum{f, m}: the unweighted average of the m lowest-Krum-score
// updates — smoother than single Krum (m honest votes instead of one)
// while still discarding the far-out m..n tail. m must satisfy
// 1 <= m <= n - f - 2; m == 0 selects that maximum automatically per
// cohort (keep everything Krum considers scoreable).
class MultiKrum : public Krum {
 public:
  MultiKrum(int f, int m);  // m >= 0; 0 = auto (n - f - 2 at aggregate)

  std::string name() const override { return "multi_krum"; }
  int m() const { return m_; }
  ModelParameters aggregate(
      const ModelParameters& current,
      const std::vector<AggregationInput>& cohort) const override;

 private:
  int m_;
};

// Staleness discount s(tau) applied to buffered async updates.
enum class StalenessDiscount : std::uint8_t {
  // s(tau) = (1 + tau)^-exponent — FedBuff's polynomial discount.
  kPolynomial = 0,
  // s(0) = 1, s(tau >= 1) = constant_factor.
  kConstant = 1,
};

struct StalenessPolicy {
  StalenessDiscount discount = StalenessDiscount::kPolynomial;
  double poly_exponent = 1.0;    // kPolynomial
  double constant_factor = 0.3;  // kConstant

  // Discount weight for an update trained on a model `staleness`
  // versions behind the current one.
  double weight(int staleness) const;
};

// current + server_mix * (discounted weighted average of deltas).
class StalenessDiscountedMix : public AggregationRule {
 public:
  StalenessDiscountedMix(StalenessPolicy staleness, double server_mix);

  std::string name() const override { return "staleness_mix"; }
  bool folds_into_current() const override { return true; }
  bool requires_dense() const override { return false; }
  // Streaming form: folds are DELTAS (like aggregate()'s cohort);
  // running sum of u_i * d_i with u_i = weight * s(staleness); finish()
  // returns current + server_mix * sum / total_u.
  std::unique_ptr<StreamingAccumulator> accumulator(
      const ModelParameters& current, const ShardLayout& layout) const override;
  ModelParameters aggregate(
      const ModelParameters& current,
      const std::vector<AggregationInput>& cohort) const override;

 private:
  StalenessPolicy staleness_;
  double server_mix_;
};

// Declarative rule selection carried by FLRunOptions /
// ExperimentConfig: a registry key plus the knobs the built-in
// factories consult (bundled so registering a new rule never changes
// the factory signature).
struct AggregationConfig {
  // AggregationRegistry key. Empty = the algorithm's historical
  // default: WeightedAverage for the synchronous round loops,
  // StalenessDiscountedMix (from AsyncConfig's knobs) for AsyncFedAvg.
  // Synchronous loops reject delta-mixing rules ("staleness_mix") —
  // their cohorts are full parameters, not deltas.
  std::string rule;
  double trim_fraction = 0.1;  // "trimmed_mean"
  double clip_norm = 10.0;     // "norm_clipped_mean"
  int krum_f = 1;              // "krum" / "multi_krum": Byzantine budget
  int krum_m = 0;              // "multi_krum": selected count; 0 = n-f-2
  // Knobs for an EXPLICIT rule = "staleness_mix". They intentionally
  // take precedence over AsyncConfig's staleness/server_mix fields,
  // which apply only to the empty-rule default — naming the rule here
  // means configuring it here.
  StalenessPolicy staleness;
  double server_mix = 0.5;
  // Route round loops through the StreamingAccumulator path when the
  // rule supports it (requires_dense() == false). Off by default: the
  // streaming math reassociates sums (double partials), so results
  // match dense to float rounding but not bit-for-bit, and the dense
  // K = 1000 reference fingerprint must not move.
  bool streaming = false;
  // Merge/finish element-wise parallelism for the streaming path
  // (FLEDA_AGG_SHARDS). 0 = auto. Never changes results.
  std::size_t shards = 0;
  // Histogram-sketch resolution for streaming coordinate_median /
  // trimmed_mean: bins per coordinate and the half-width of the sketch
  // window around the current model. Worst-case in-span quantile error
  // is one bin width = 2 * sketch_span / sketch_bins.
  int sketch_bins = 32;
  double sketch_span = 0.25;
};

// String-keyed factory map over aggregation rules, mirroring
// AlgorithmRegistry: downstream code registers robust-aggregation
// variants without touching src/, and configs select them by name.
class AggregationRegistry {
 public:
  using Factory =
      std::function<std::unique_ptr<AggregationRule>(const AggregationConfig&)>;

  // The process-wide registry, with the built-in rules
  // ("weighted_average", "coordinate_median", "trimmed_mean",
  // "norm_clipped_mean", "krum", "multi_krum", "staleness_mix")
  // registered on first use.
  static AggregationRegistry& global();

  // Registers `factory` under `name`. Throws std::invalid_argument on
  // an empty name or a duplicate registration.
  void add(std::string name, Factory factory);

  bool contains(std::string_view name) const;
  // All registered names, sorted.
  std::vector<std::string> names() const;

  // Instantiates the rule registered under `name`. Throws
  // std::invalid_argument on an unknown name, listing what is
  // registered.
  std::unique_ptr<AggregationRule> create(
      std::string_view name, const AggregationConfig& config = {}) const;

 private:
  std::map<std::string, Factory, std::less<>> factories_;
};

// The rule `config` names, from the global registry. Throws on an
// empty name — "use the algorithm default" is the caller's decision,
// not the registry's.
std::unique_ptr<AggregationRule> make_aggregation_rule(
    const AggregationConfig& config);

}  // namespace fleda
