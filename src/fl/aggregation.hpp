// AggregationRule: the strategy that turns a cohort's updates into the
// next server-side model. The weighted-average math used to live in
// Server and the staleness-discount / server-mix math inside
// AsyncFedAvg's round loop; both are now pluggable rules, so a new
// aggregation scheme (median, trimmed mean, momentum server, ...)
// plugs into every algorithm instead of forking one.
//
// Two families ship:
//   Averaging rules (folds_into_current() == false) — combine the
//     cohort's snapshots; `current` is at most a reference point:
//       WeightedAverage   — W' = sum_k (n_k / n) w_k over the cohort
//                           (FedAvg/FedProx semantics; ignores
//                           `current` and staleness).
//       CoordinateMedian  — entrywise median of the cohort (rank-based,
//                           so sample counts are validated but do not
//                           weight the result). Robust to < 50%
//                           arbitrarily-corrupted clients.
//       TrimmedMean       — entrywise mean after dropping the
//                           floor(trim_fraction * n) largest and
//                           smallest values per coordinate.
//       NormClippedMean   — each update's delta against `current` is
//                           clipped to clip_norm in L2 before the
//                           weighted average; bounds any single
//                           client's pull on the global model.
//   Delta/mixing rules (folds_into_current() == true) — the cohort
//     entries are DELTAS and aggregate() returns `current` with them
//     folded in:
//       StalenessDiscountedMix — W' = W + eta * sum_i u_i d_i /
//                           sum_i u_i, u_i = n_i * s(tau_i)
//                           (AsyncFedAvg/FedBuff semantics).
//
// Every rule refuses an empty cohort, a zero total weight, or a
// non-finite update with a descriptive error — under partial
// participation an all-offline sampled cohort must fail loudly, and a
// single NaN/Inf client update must never reach the global model.
//
// Rules are constructible by name through AggregationRegistry (the
// aggregation-layer mirror of AlgorithmRegistry), parameterized by the
// declarative AggregationConfig that FLRunOptions/ExperimentConfig
// carry — so any algorithm swaps its rule without a code change.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "fl/parameters.hpp"

namespace fleda {

// One client's contribution to an aggregation step.
struct AggregationInput {
  // Full parameters for averaging rules; a delta against the dispatched
  // model for mixing rules. Never null.
  const ModelParameters* params = nullptr;
  double weight = 0.0;  // n_k, the client's sample count
  int staleness = 0;    // model versions behind the server; sync: 0
  // Federation-level client index, used only to name the culprit in
  // validation errors (a poisoned update should point at its sender).
  // Negative = unknown; errors then name the cohort position.
  int client = -1;
};

class AggregationRule {
 public:
  virtual ~AggregationRule() = default;

  virtual std::string name() const = 0;

  // Whether aggregate() folds the cohort (as deltas) into `current`
  // (mixing rules) rather than combining the cohort's snapshots alone
  // (averaging rules). Event-driven servers use this to decide how to
  // apply a rule to their buffered deltas.
  virtual bool folds_into_current() const { return false; }

  // Combines the cohort into the next model. `current` is the model
  // being replaced; plain averaging rules ignore it, clipping rules use
  // it as the delta reference, mixing rules fold into it. Throws
  // std::invalid_argument on an empty cohort, zero/non-finite total
  // weight, a non-finite update, or structure mismatch.
  virtual ModelParameters aggregate(
      const ModelParameters& current,
      const std::vector<AggregationInput>& cohort) const = 0;
};

// Sample-count weighted FedAvg average (paper Eq. W^{r+1}).
class WeightedAverage : public AggregationRule {
 public:
  std::string name() const override { return "weighted_average"; }
  ModelParameters aggregate(
      const ModelParameters& current,
      const std::vector<AggregationInput>& cohort) const override;
};

// Entrywise (coordinate-wise) median over the cohort. Rank-based:
// sample-count weights are validated but do not influence the result,
// which is what makes a < 50% fraction of arbitrarily-corrupted
// clients unable to move any coordinate outside the honest range.
class CoordinateMedian : public AggregationRule {
 public:
  std::string name() const override { return "coordinate_median"; }
  ModelParameters aggregate(
      const ModelParameters& current,
      const std::vector<AggregationInput>& cohort) const override;
};

// Entrywise trimmed mean: per coordinate, the g = floor(trim_fraction
// * n) smallest and largest values are dropped and the surviving
// n - 2g values averaged (unweighted, like the median — robustness
// comes from the rank filter, not the sample counts). Tolerates up to
// g corrupted clients per coordinate.
class TrimmedMean : public AggregationRule {
 public:
  // trim_fraction in [0, 0.5); 0 recovers the unweighted mean.
  explicit TrimmedMean(double trim_fraction);

  std::string name() const override { return "trimmed_mean"; }
  double trim_fraction() const { return trim_fraction_; }
  ModelParameters aggregate(
      const ModelParameters& current,
      const std::vector<AggregationInput>& cohort) const override;

 private:
  double trim_fraction_;
};

// Weighted average of delta-clipped updates: each cohort member's
// delta against `current` is scaled down to at most clip_norm in L2
// before the sample-count weighted average, so no single client —
// however scaled its update — can pull the global model further than
// clip_norm in one round. Requires a non-empty `current` (the server's
// model) as the clipping reference.
class NormClippedMean : public AggregationRule {
 public:
  explicit NormClippedMean(double clip_norm);  // must be finite and > 0

  std::string name() const override { return "norm_clipped_mean"; }
  double clip_norm() const { return clip_norm_; }
  ModelParameters aggregate(
      const ModelParameters& current,
      const std::vector<AggregationInput>& cohort) const override;

 private:
  double clip_norm_;
};

// Krum (Blanchard et al. 2017): distance-based selection. Each cohort
// member i is scored by the sum of its squared L2 distances to its
// n - f - 2 nearest neighbors; the member with the lowest score — the
// update sitting deepest inside the honest cluster — becomes the next
// model verbatim. Tolerates f Byzantine members but requires
// n >= 2f + 3 (enforced per aggregate() call with a descriptive
// error): with fewer honest neighbors the score is no longer
// Byzantine-resilient. Rank-based like the median: sample-count
// weights are validated but do not influence selection.
class Krum : public AggregationRule {
 public:
  explicit Krum(int f);  // assumed Byzantine count, must be >= 0

  std::string name() const override { return "krum"; }
  int f() const { return f_; }
  ModelParameters aggregate(
      const ModelParameters& current,
      const std::vector<AggregationInput>& cohort) const override;

 protected:
  // Cohort indices ordered ascending by (Krum score, index); callers
  // take the first m. Validates the cohort (shared guards + the
  // n >= 2f + 3 requirement). `rule` labels the thrown errors.
  std::vector<std::size_t> krum_order(
      const std::vector<AggregationInput>& cohort, const char* rule) const;

 private:
  int f_;
};

// MultiKrum{f, m}: the unweighted average of the m lowest-Krum-score
// updates — smoother than single Krum (m honest votes instead of one)
// while still discarding the far-out m..n tail. m must satisfy
// 1 <= m <= n - f - 2; m == 0 selects that maximum automatically per
// cohort (keep everything Krum considers scoreable).
class MultiKrum : public Krum {
 public:
  MultiKrum(int f, int m);  // m >= 0; 0 = auto (n - f - 2 at aggregate)

  std::string name() const override { return "multi_krum"; }
  int m() const { return m_; }
  ModelParameters aggregate(
      const ModelParameters& current,
      const std::vector<AggregationInput>& cohort) const override;

 private:
  int m_;
};

// Staleness discount s(tau) applied to buffered async updates.
enum class StalenessDiscount : std::uint8_t {
  // s(tau) = (1 + tau)^-exponent — FedBuff's polynomial discount.
  kPolynomial = 0,
  // s(0) = 1, s(tau >= 1) = constant_factor.
  kConstant = 1,
};

struct StalenessPolicy {
  StalenessDiscount discount = StalenessDiscount::kPolynomial;
  double poly_exponent = 1.0;    // kPolynomial
  double constant_factor = 0.3;  // kConstant

  // Discount weight for an update trained on a model `staleness`
  // versions behind the current one.
  double weight(int staleness) const;
};

// current + server_mix * (discounted weighted average of deltas).
class StalenessDiscountedMix : public AggregationRule {
 public:
  StalenessDiscountedMix(StalenessPolicy staleness, double server_mix);

  std::string name() const override { return "staleness_mix"; }
  bool folds_into_current() const override { return true; }
  ModelParameters aggregate(
      const ModelParameters& current,
      const std::vector<AggregationInput>& cohort) const override;

 private:
  StalenessPolicy staleness_;
  double server_mix_;
};

// Declarative rule selection carried by FLRunOptions /
// ExperimentConfig: a registry key plus the knobs the built-in
// factories consult (bundled so registering a new rule never changes
// the factory signature).
struct AggregationConfig {
  // AggregationRegistry key. Empty = the algorithm's historical
  // default: WeightedAverage for the synchronous round loops,
  // StalenessDiscountedMix (from AsyncConfig's knobs) for AsyncFedAvg.
  // Synchronous loops reject delta-mixing rules ("staleness_mix") —
  // their cohorts are full parameters, not deltas.
  std::string rule;
  double trim_fraction = 0.1;  // "trimmed_mean"
  double clip_norm = 10.0;     // "norm_clipped_mean"
  int krum_f = 1;              // "krum" / "multi_krum": Byzantine budget
  int krum_m = 0;              // "multi_krum": selected count; 0 = n-f-2
  // Knobs for an EXPLICIT rule = "staleness_mix". They intentionally
  // take precedence over AsyncConfig's staleness/server_mix fields,
  // which apply only to the empty-rule default — naming the rule here
  // means configuring it here.
  StalenessPolicy staleness;
  double server_mix = 0.5;
};

// String-keyed factory map over aggregation rules, mirroring
// AlgorithmRegistry: downstream code registers robust-aggregation
// variants without touching src/, and configs select them by name.
class AggregationRegistry {
 public:
  using Factory =
      std::function<std::unique_ptr<AggregationRule>(const AggregationConfig&)>;

  // The process-wide registry, with the built-in rules
  // ("weighted_average", "coordinate_median", "trimmed_mean",
  // "norm_clipped_mean", "krum", "multi_krum", "staleness_mix")
  // registered on first use.
  static AggregationRegistry& global();

  // Registers `factory` under `name`. Throws std::invalid_argument on
  // an empty name or a duplicate registration.
  void add(std::string name, Factory factory);

  bool contains(std::string_view name) const;
  // All registered names, sorted.
  std::vector<std::string> names() const;

  // Instantiates the rule registered under `name`. Throws
  // std::invalid_argument on an unknown name, listing what is
  // registered.
  std::unique_ptr<AggregationRule> create(
      std::string_view name, const AggregationConfig& config = {}) const;

 private:
  std::map<std::string, Factory, std::less<>> factories_;
};

// The rule `config` names, from the global registry. Throws on an
// empty name — "use the algorithm default" is the caller's decision,
// not the registry's.
std::unique_ptr<AggregationRule> make_aggregation_rule(
    const AggregationConfig& config);

}  // namespace fleda
