// AggregationRule: the strategy that turns a cohort's updates into the
// next server-side model. The weighted-average math used to live in
// Server and the staleness-discount / server-mix math inside
// AsyncFedAvg's round loop; both are now pluggable rules, so a new
// aggregation scheme (median, trimmed mean, momentum server, ...)
// plugs into every algorithm instead of forking one.
//
// Two families ship:
//   WeightedAverage       — W' = sum_k (n_k / n) w_k over the cohort
//                           (FedAvg/FedProx semantics; ignores
//                           `current` and staleness).
//   StalenessDiscountedMix — W' = W + eta * sum_i u_i d_i / sum_i u_i,
//                           u_i = n_i * s(tau_i), over buffered DELTAS
//                           (AsyncFedAvg/FedBuff semantics).
//
// Every rule refuses an empty cohort or a zero total weight with a
// descriptive error — under partial participation an all-offline
// sampled cohort must fail loudly, not divide by zero.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fl/parameters.hpp"

namespace fleda {

// One client's contribution to an aggregation step.
struct AggregationInput {
  // Full parameters for averaging rules; a delta against the dispatched
  // model for mixing rules. Never null.
  const ModelParameters* params = nullptr;
  double weight = 0.0;  // n_k, the client's sample count
  int staleness = 0;    // model versions behind the server; sync: 0
};

class AggregationRule {
 public:
  virtual ~AggregationRule() = default;

  virtual std::string name() const = 0;

  // Combines the cohort into the next model. `current` is the model
  // being replaced; averaging rules ignore it, delta rules fold into
  // it. Throws std::invalid_argument on an empty cohort, zero/non-
  // finite total weight, or structure mismatch.
  virtual ModelParameters aggregate(
      const ModelParameters& current,
      const std::vector<AggregationInput>& cohort) const = 0;
};

// Sample-count weighted FedAvg average (paper Eq. W^{r+1}).
class WeightedAverage : public AggregationRule {
 public:
  std::string name() const override { return "weighted_average"; }
  ModelParameters aggregate(
      const ModelParameters& current,
      const std::vector<AggregationInput>& cohort) const override;
};

// Staleness discount s(tau) applied to buffered async updates.
enum class StalenessDiscount : std::uint8_t {
  // s(tau) = (1 + tau)^-exponent — FedBuff's polynomial discount.
  kPolynomial = 0,
  // s(0) = 1, s(tau >= 1) = constant_factor.
  kConstant = 1,
};

struct StalenessPolicy {
  StalenessDiscount discount = StalenessDiscount::kPolynomial;
  double poly_exponent = 1.0;    // kPolynomial
  double constant_factor = 0.3;  // kConstant

  // Discount weight for an update trained on a model `staleness`
  // versions behind the current one.
  double weight(int staleness) const;
};

// current + server_mix * (discounted weighted average of deltas).
class StalenessDiscountedMix : public AggregationRule {
 public:
  StalenessDiscountedMix(StalenessPolicy staleness, double server_mix);

  std::string name() const override { return "staleness_mix"; }
  ModelParameters aggregate(
      const ModelParameters& current,
      const std::vector<AggregationInput>& cohort) const override;

 private:
  StalenessPolicy staleness_;
  double server_mix_;
};

}  // namespace fleda
