// FedAvg (McMahan et al. 2017): the baseline FL round loop of Fig. 1
// with plain local SGD/Adam training (no proximal term). Included for
// the convergence-comparison bench; the paper builds on FedProx.
#pragma once

#include "fl/trainer.hpp"

namespace fleda {

class FedAvg : public FederatedAlgorithm {
 public:
  std::string name() const override { return "FedAvg"; }

 protected:
  std::vector<ModelParameters> run_rounds(
      std::vector<Client>& clients, const ModelFactory& factory,
      const FLRunOptions& opts, FederationSim& sim,
      ParticipationPolicy& participation) override;
};

}  // namespace fleda
