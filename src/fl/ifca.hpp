// IFCA — Iterative Federated Clustering Algorithm (Ghosh et al. 2020),
// paper Fig. 2b. The developer maintains C cluster models; each round
// every client evaluates all C models on its training data, joins the
// lowest-loss cluster, trains that model, and the developer aggregates
// per cluster over that round's members. Clusters can die (no members)
// — their model is then carried over unchanged.
#pragma once

#include "fl/trainer.hpp"

namespace fleda {

class IFCA : public FederatedAlgorithm {
 public:
  explicit IFCA(int num_clusters, int selection_batches = 4)
      : num_clusters_(num_clusters), selection_batches_(selection_batches) {}

  std::string name() const override { return "IFCA"; }

  // Cluster chosen by each client in the final round.
  const std::vector<int>& final_assignment() const { return assignment_; }

 protected:
  std::vector<ModelParameters> run_rounds(
      std::vector<Client>& clients, const ModelFactory& factory,
      const FLRunOptions& opts, FederationSim& sim,
      ParticipationPolicy& participation) override;

 private:
  int num_clusters_;
  int selection_batches_;
  std::vector<int> assignment_;
};

}  // namespace fleda
