#include "fl/anomaly.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <stdexcept>

namespace fleda {

namespace {

void validate(const AnomalyConfig& config) {
  if (!(config.norm_factor > 1.0) || !std::isfinite(config.norm_factor)) {
    throw std::invalid_argument(
        "AnomalyConfig: norm_factor must be finite and > 1 (a factor at "
        "or below 1 flags the cohort's own median)");
  }
  if (!(config.cosine_threshold >= -1.0) || !(config.cosine_threshold < 1.0)) {
    throw std::invalid_argument(
        "AnomalyConfig: cosine_threshold must be in [-1, 1)");
  }
  if (!(config.baseline_decay >= 0.0) || !(config.baseline_decay < 1.0)) {
    throw std::invalid_argument(
        "AnomalyConfig: baseline_decay must be in [0, 1)");
  }
  if (config.min_cohort < 2) {
    throw std::invalid_argument("AnomalyConfig: min_cohort must be >= 2");
  }
}

void validate(const ReputationConfig& config) {
  if (!(config.flag_penalty > 0.0) || !(config.flag_penalty < 1.0)) {
    throw std::invalid_argument(
        "ReputationConfig: flag_penalty must be in (0, 1)");
  }
  if (!(config.clean_reward >= 0.0) || !(config.clean_reward <= 1.0)) {
    throw std::invalid_argument(
        "ReputationConfig: clean_reward must be in [0, 1]");
  }
  if (!(config.floor > 0.0) || !(config.floor <= 1.0)) {
    throw std::invalid_argument(
        "ReputationConfig: floor must be in (0, 1] (a zero floor silences "
        "a flagged client forever)");
  }
}

}  // namespace

AnomalyDetector::AnomalyDetector(AnomalyConfig config) : config_(config) {
  validate(config_);
}

std::uint64_t AnomalyDetector::scored(std::size_t client) const {
  return client < scored_.size() ? scored_[client] : 0;
}

std::uint64_t AnomalyDetector::flagged(std::size_t client) const {
  return client < flagged_.size() ? flagged_[client] : 0;
}

std::vector<UpdateVerdict> AnomalyDetector::score_cohort(
    const std::vector<std::size_t>& clients,
    const std::vector<const ModelParameters*>& deltas) {
  if (clients.size() != deltas.size()) {
    throw std::invalid_argument("AnomalyDetector: clients/deltas mismatch");
  }
  const std::size_t n = clients.size();
  std::vector<UpdateVerdict> verdicts(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (deltas[i] == nullptr) {
      throw std::invalid_argument("AnomalyDetector: null delta");
    }
    verdicts[i].client = clients[i];
  }
  if (n < static_cast<std::size_t>(config_.min_cohort)) return verdicts;

  // Pass 1 — norms. A non-finite delta is anomalous by definition (the
  // aggregation guard will reject it loudly; the detector's job is to
  // pin it on the sender's record too).
  std::vector<double> finite_norms;
  finite_norms.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double norm = std::sqrt(deltas[i]->squared_l2_norm());
    verdicts[i].norm = norm;
    if (std::isfinite(norm)) finite_norms.push_back(norm);
  }
  if (finite_norms.empty()) {
    for (UpdateVerdict& v : verdicts) v.flagged = true;
  } else {
    const std::size_t mid = finite_norms.size() / 2;
    std::nth_element(finite_norms.begin(),
                     finite_norms.begin() + static_cast<std::ptrdiff_t>(mid),
                     finite_norms.end());
    const double median = finite_norms[mid];
    // The norm reference: the smaller of this cohort's median and the
    // cross-round baseline, so a cohort that happens to be majority
    // attackers cannot launder its inflated median past the detector.
    const double reference =
        has_baseline_ ? std::min(median, baseline_norm_) : median;
    const double limit = config_.norm_factor * std::max(reference, 1e-12);
    for (UpdateVerdict& v : verdicts) {
      v.flagged = !std::isfinite(v.norm) || v.norm > limit;
    }
    baseline_norm_ = has_baseline_
                         ? config_.baseline_decay * baseline_norm_ +
                               (1.0 - config_.baseline_decay) * median
                         : median;
    has_baseline_ = true;

    // Pass 2 — consensus direction: the mean of the norm-clean deltas.
    // With the inflated updates excluded the mean is honest-dominated
    // for any sub-majority attack, so a reversed delta scores a
    // strongly negative cosine even at an honest-looking norm.
    ModelParameters consensus;
    for (std::size_t i = 0; i < n; ++i) {
      if (verdicts[i].flagged) continue;
      if (consensus.empty()) {
        consensus = *deltas[i];
      } else if (consensus.structurally_equal(*deltas[i])) {
        consensus.add_scaled(*deltas[i], 1.0);
      }
    }
    const double consensus_norm_sq =
        consensus.empty() ? 0.0 : consensus.squared_l2_norm();
    if (consensus_norm_sq > 1e-24 && std::isfinite(consensus_norm_sq)) {
      for (std::size_t i = 0; i < n; ++i) {
        UpdateVerdict& v = verdicts[i];
        if (!std::isfinite(v.norm) || v.norm <= 1e-12) continue;
        if (!consensus.structurally_equal(*deltas[i])) continue;
        const double cos = deltas[i]->dot(consensus) /
                           (v.norm * std::sqrt(consensus_norm_sq));
        if (std::isfinite(cos)) {
          v.cosine = cos;
          if (cos < config_.cosine_threshold) v.flagged = true;
        }
      }
    }
  }

  for (const UpdateVerdict& v : verdicts) {
    const std::size_t k = v.client;
    if (k >= scored_.size()) {
      scored_.resize(k + 1, 0);
      flagged_.resize(k + 1, 0);
    }
    ++scored_[k];
    ++total_scored_;
    if (v.flagged) {
      ++flagged_[k];
      ++total_flagged_;
    }
  }
  return verdicts;
}

ReputationBook::ReputationBook(ReputationConfig config) : config_(config) {
  validate(config_);
}

void ReputationBook::observe(std::size_t client, bool flagged) {
  if (client >= weights_.size()) {
    weights_.resize(client + 1, 1.0);
    flags_.resize(client + 1, 0);
  }
  double& w = weights_[client];
  if (flagged) {
    w = std::max(config_.floor, w * config_.flag_penalty);
    ++flags_[client];
  } else {
    w = std::min(1.0, w + config_.clean_reward * (1.0 - w));
  }
}

double ReputationBook::weight(std::size_t client) const {
  return client < weights_.size() ? weights_[client] : 1.0;
}

std::uint64_t ReputationBook::flags(std::size_t client) const {
  return client < flags_.size() ? flags_[client] : 0;
}

}  // namespace fleda
