#include "fl/synthetic.hpp"

namespace fleda {

ClientDataset make_synthetic_client(int id, float threshold,
                                    std::uint64_t seed, int train_samples,
                                    int test_samples) {
  Rng rng(seed);
  ClientDataset ds;
  ds.client_id = id;
  auto make_sample = [&]() {
    Sample s;
    s.features = Tensor(Shape{2, 8, 8});
    s.label = Tensor(Shape{1, 8, 8});
    for (std::int64_t i = 0; i < 64; ++i) {
      const float v = static_cast<float>(rng.uniform());
      s.features[i] = v;
      s.features[64 + i] = static_cast<float>(rng.uniform());
      s.label[i] = v > threshold ? 1.0f : 0.0f;
    }
    return s;
  };
  for (int i = 0; i < train_samples; ++i) ds.train.push_back(make_sample());
  for (int i = 0; i < test_samples; ++i) ds.test.push_back(make_sample());
  return ds;
}

SyntheticWorld make_synthetic_world(std::uint64_t seed,
                                    const SyntheticWorldOptions& options) {
  SyntheticWorld w;
  for (std::size_t k = 0; k < options.num_clients; ++k) {
    w.data.push_back(make_synthetic_client(
        static_cast<int>(k + 1),
        options.threshold_base +
            options.threshold_step * static_cast<float>(k),
        seed + k + 1, options.train_samples, options.test_samples));
  }
  w.factory = make_model_factory(ModelKind::kFLNet, 2);
  w.pool = std::make_shared<ModelPool>(w.factory);
  Rng rng(seed);
  for (std::size_t k = 0; k < w.data.size(); ++k) {
    w.clients.emplace_back(w.data[k].client_id, &w.data[k], w.pool,
                           rng.fork(k));
  }
  return w;
}

}  // namespace fleda
