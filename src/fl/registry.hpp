// AlgorithmRegistry: a string-keyed factory map over every federated
// training algorithm. The old dispatch was a hardcoded TrainingMethod
// enum plus a switch in Experiment::make_algorithm — adding an
// algorithm meant editing the enum, its to_string, and the switch in
// lockstep. The registry replaces that with one registration call:
//
//   AlgorithmRegistry::global().add("dp_fedprox",
//       [](const AlgorithmOptions& o) { return std::make_unique<DpFedProx>(...); });
//   auto algo = AlgorithmRegistry::global().create("dp_fedprox");
//
// Downstream code (benches, ablations, thousand-client sweeps) can
// register variants without touching src/; the TrainingMethod enum
// survives only as a thin deprecated shim mapped onto registry names
// (core/experiment.hpp).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "fl/async_fedavg.hpp"
#include "fl/trainer.hpp"

namespace fleda {

// The knobs any built-in factory may consult, bundled so registering a
// new algorithm never changes the factory signature. Defaults mirror
// the paper's §5.1 values.
struct AlgorithmOptions {
  int num_clusters = 4;          // IFCA / clustering C
  int selection_batches = 4;     // IFCA cluster-selection batches
  int finetune_steps = 200;      // personalization steps S'
  double alpha_portion = 0.5;    // alpha-portion sync mixing share
  // Assigned-clustering membership; empty = the paper's 9-client
  // suite-based assignment.
  std::vector<int> cluster_assignment;
  AsyncConfig async;             // AsyncFedAvg knobs
};

class AlgorithmRegistry {
 public:
  using Factory =
      std::function<std::unique_ptr<FederatedAlgorithm>(const AlgorithmOptions&)>;

  // The process-wide registry, with the built-in algorithms
  // ("fedavg", "fedprox", "fedprox_lg", "ifca", "fedprox_finetune",
  // "assigned_clustering", "alpha_sync", "async_fedavg") registered on
  // first use.
  static AlgorithmRegistry& global();

  // Registers `factory` under `name`. Throws std::invalid_argument on
  // an empty name or a duplicate registration.
  void add(std::string name, Factory factory);

  bool contains(std::string_view name) const;
  // All registered names, sorted.
  std::vector<std::string> names() const;

  // Instantiates the algorithm registered under `name`. Throws
  // std::invalid_argument on an unknown name, listing what is
  // registered.
  std::unique_ptr<FederatedAlgorithm> create(
      std::string_view name, const AlgorithmOptions& options = {}) const;

 private:
  std::map<std::string, Factory, std::less<>> factories_;
};

}  // namespace fleda
