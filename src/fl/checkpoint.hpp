// Model checkpointing: binary (de)serialization of ModelParameters so
// trained global/personalized models can be shipped exactly the way
// the paper's developer would deploy them to clients. Format: magic,
// entry count, then per entry name / buffer flag / tensor payload.
#pragma once

#include <iosfwd>
#include <string>

#include "fl/parameters.hpp"

namespace fleda {

void write_checkpoint(std::ostream& out, const ModelParameters& params);
ModelParameters read_checkpoint(std::istream& in);

// File wrappers; throw std::runtime_error on I/O failure.
void save_checkpoint(const std::string& path, const ModelParameters& params);
ModelParameters load_checkpoint(const std::string& path);

}  // namespace fleda
