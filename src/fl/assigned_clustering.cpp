#include "fl/assigned_clustering.hpp"

#include <algorithm>
#include <stdexcept>

namespace fleda {

AssignedClustering AssignedClustering::paper_assignment() {
  // Clients 1-3 (ITC'99), 4-6 (ISCAS'89), 7-8 (IWLS'05), 9 (ISPD'15).
  return AssignedClustering({0, 0, 0, 1, 1, 1, 2, 2, 3});
}

std::vector<ModelParameters> AssignedClustering::run_rounds(
    std::vector<Client>& clients, const ModelFactory& factory,
    const FLRunOptions& opts, FederationSim& sim,
    ParticipationPolicy& participation) {
  if (assignment_.size() != clients.size()) {
    throw std::invalid_argument(
        "AssignedClustering: assignment size != #clients");
  }
  const int num_clusters =
      1 + *std::max_element(assignment_.begin(), assignment_.end());

  Rng rng(opts.seed);
  std::vector<ModelParameters> cluster_models;
  cluster_models.reserve(static_cast<std::size_t>(num_clusters));
  for (int c = 0; c < num_clusters; ++c) {
    cluster_models.push_back(initial_model_parameters(factory, rng));
  }

  const std::vector<double> weights = Server::client_weights(clients);
  const std::unique_ptr<AggregationRule> rule = sync_aggregation_rule(opts);
  for (int r = 0; r < opts.rounds; ++r) {
    const std::vector<std::size_t> cohort =
        select_cohort(participation, r, clients.size(), opts, sim);
    std::vector<const ModelParameters*> deployed;
    deployed.reserve(cohort.size());
    for (std::size_t k : cohort) {
      deployed.push_back(
          &cluster_models[static_cast<std::size_t>(assignment_[k])]);
    }
    std::vector<ModelParameters> updates =
        cohort_local_updates(clients, cohort, deployed, opts.client, sim);

    // Per-cluster aggregation over this round's sampled members,
    // through the configured rule; a cluster with nobody sampled keeps
    // its model.
    for (int c = 0; c < num_clusters; ++c) {
      std::vector<AggregationInput> members;
      for (std::size_t i = 0; i < cohort.size(); ++i) {
        if (assignment_[cohort[i]] == c) {
          members.push_back({&updates[i], weights[cohort[i]], 0,
                             static_cast<int>(cohort[i])});
        }
      }
      if (members.empty()) continue;
      cluster_models[static_cast<std::size_t>(c)] = rule->aggregate(
          cluster_models[static_cast<std::size_t>(c)], members);
    }

    if (opts.on_round) {
      std::vector<ModelParameters> snapshot;
      for (std::size_t k = 0; k < clients.size(); ++k) {
        snapshot.push_back(
            cluster_models[static_cast<std::size_t>(assignment_[k])]);
      }
      opts.on_round(r, snapshot);
    }
  }

  std::vector<ModelParameters> finals;
  finals.reserve(clients.size());
  for (std::size_t k = 0; k < clients.size(); ++k) {
    finals.push_back(cluster_models[static_cast<std::size_t>(assignment_[k])]);
  }
  return finals;
}

}  // namespace fleda
