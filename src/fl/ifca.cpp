#include "fl/ifca.hpp"

#include <stdexcept>

#include "util/thread_pool.hpp"

namespace fleda {

std::vector<ModelParameters> IFCA::run_rounds(std::vector<Client>& clients,
                                              const ModelFactory& factory,
                                              const FLRunOptions& opts,
                                              FederationSim& sim) {
  if (num_clusters_ <= 0) throw std::invalid_argument("IFCA: C <= 0");
  Rng rng(opts.seed);

  // Independent initialization per cluster (the algorithm relies on
  // initial diversity for cluster identifiability).
  std::vector<ModelParameters> cluster_models;
  cluster_models.reserve(static_cast<std::size_t>(num_clusters_));
  for (int c = 0; c < num_clusters_; ++c) {
    RoutabilityModelPtr m = factory(rng);
    cluster_models.push_back(ModelParameters::from_model(*m));
  }

  const std::vector<double> weights = Server::client_weights(clients);
  assignment_.assign(clients.size(), 0);
  const std::size_t C = static_cast<std::size_t>(num_clusters_);

  for (int r = 0; r < opts.rounds; ++r) {
    // 1) Selection broadcast: IFCA ships ALL C cluster models to every
    // client each round (its dominant communication cost — billed as
    // K*C downlink messages, one wave per cluster model so each
    // client's C serial downloads count toward round latency). Clients
    // select on what they decode.
    std::vector<std::shared_ptr<const ModelParameters>> received;  // [c]
    received.reserve(C);
    for (std::size_t c = 0; c < C; ++c) {
      std::vector<const ModelParameters*> wave(clients.size(),
                                               &cluster_models[c]);
      received.push_back(sim.channel().broadcast(wave).front());
    }

    // 2) Cluster selection: lowest training loss among the C models.
    parallel_for(clients.size(), [&](std::size_t begin, std::size_t end) {
      for (std::size_t k = begin; k < end; ++k) {
        double best_loss = 1e300;
        int best_c = 0;
        for (std::size_t c = 0; c < C; ++c) {
          const double loss = clients[k].evaluate_train_loss(
              *received[c], selection_batches_);
          if (loss < best_loss) {
            best_loss = loss;
            best_c = static_cast<int>(c);
          }
        }
        assignment_[k] = best_c;
      }
    });

    // 3) Local training of the chosen cluster model — already on the
    // client from the selection broadcast, so no second download.
    std::vector<const ModelParameters*> deployed;
    deployed.reserve(clients.size());
    for (std::size_t k = 0; k < clients.size(); ++k) {
      deployed.push_back(
          received[static_cast<std::size_t>(assignment_[k])].get());
    }
    std::vector<ModelParameters> updates =
        parallel_local_updates(clients, deployed, opts.client);

    // 4) Uplink through the channel; the decoded deployment is the
    // shared delta reference, then the barrier policy prices the round
    // (each client's C serial downloads are in its billed traffic).
    updates = sim.channel().collect(updates, deployed);
    sim.finish_sync_round(opts.client.steps);

    // 5) Per-cluster aggregation over this round's members.
    for (int c = 0; c < num_clusters_; ++c) {
      std::vector<std::size_t> members;
      for (std::size_t k = 0; k < clients.size(); ++k) {
        if (assignment_[k] == c) members.push_back(k);
      }
      if (members.empty()) continue;  // dead cluster keeps its model
      cluster_models[static_cast<std::size_t>(c)] =
          Server::aggregate_subset(updates, weights, members);
    }

    if (opts.on_round) {
      std::vector<ModelParameters> snapshot;
      for (std::size_t k = 0; k < clients.size(); ++k) {
        snapshot.push_back(
            cluster_models[static_cast<std::size_t>(assignment_[k])]);
      }
      opts.on_round(r, snapshot);
    }
  }

  std::vector<ModelParameters> finals;
  finals.reserve(clients.size());
  for (std::size_t k = 0; k < clients.size(); ++k) {
    finals.push_back(cluster_models[static_cast<std::size_t>(assignment_[k])]);
  }
  return finals;
}

}  // namespace fleda
