#include "fl/ifca.hpp"

#include <stdexcept>
#include <utility>

#include "util/thread_pool.hpp"

namespace fleda {

std::vector<ModelParameters> IFCA::run_rounds(
    std::vector<Client>& clients, const ModelFactory& factory,
    const FLRunOptions& opts, FederationSim& sim,
    ParticipationPolicy& participation) {
  if (num_clusters_ <= 0) throw std::invalid_argument("IFCA: C <= 0");
  Rng rng(opts.seed);

  // Independent initialization per cluster (the algorithm relies on
  // initial diversity for cluster identifiability).
  std::vector<ModelParameters> cluster_models;
  cluster_models.reserve(static_cast<std::size_t>(num_clusters_));
  for (int c = 0; c < num_clusters_; ++c) {
    cluster_models.push_back(initial_model_parameters(factory, rng));
  }

  const std::vector<double> weights = Server::client_weights(clients);
  const std::unique_ptr<AggregationRule> rule = sync_aggregation_rule(opts);
  const bool streaming = streaming_rounds(opts, *rule, sim);
  assignment_.assign(clients.size(), 0);
  const std::size_t C = static_cast<std::size_t>(num_clusters_);

  for (int r = 0; r < opts.rounds; ++r) {
    const std::vector<std::size_t> cohort =
        select_cohort(participation, r, clients.size(), opts, sim);
    if (cohort.empty()) {
      // Nobody reachable: every cluster model carries over (same
      // semantics as a dead cluster), the round still closes.
      sim.finish_sync_round(opts.client.steps, cohort);
      if (opts.on_round) {
        std::vector<ModelParameters> snapshot;
        for (std::size_t k = 0; k < clients.size(); ++k) {
          snapshot.push_back(
              cluster_models[static_cast<std::size_t>(assignment_[k])]);
        }
        opts.on_round(r, snapshot);
      }
      continue;
    }

    // 1) Selection broadcast: IFCA ships ALL C cluster models to every
    // cohort member each round (its dominant communication cost —
    // billed as |cohort|*C downlink messages, one wave per cluster
    // model so each member's C serial downloads count toward round
    // latency). Members select on what they decode.
    std::vector<std::vector<std::shared_ptr<const ModelParameters>>>
        waves;  // [c][cohort position]
    waves.reserve(C);
    for (std::size_t c = 0; c < C; ++c) {
      std::vector<const ModelParameters*> wave(cohort.size(),
                                               &cluster_models[c]);
      waves.push_back(sim.channel().broadcast(wave, cohort));
    }

    // 2) Cluster selection: lowest training loss among the C models,
    // for this round's cohort; absent clients keep their assignment.
    parallel_for(cohort.size(), [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        double best_loss = 1e300;
        int best_c = 0;
        for (std::size_t c = 0; c < C; ++c) {
          const double loss = clients[cohort[i]].evaluate_train_loss(
              *waves[c][i], selection_batches_);
          if (loss < best_loss) {
            best_loss = loss;
            best_c = static_cast<int>(c);
          }
        }
        assignment_[cohort[i]] = best_c;
      }
    });

    // 3) Local training of the chosen cluster model — already on the
    // client from the selection broadcast, so no second download.
    std::vector<const ModelParameters*> deployed;
    deployed.reserve(cohort.size());
    for (std::size_t i = 0; i < cohort.size(); ++i) {
      deployed.push_back(
          waves[static_cast<std::size_t>(assignment_[cohort[i]])][i].get());
    }
    // Byzantine members corrupt their upload (nonce = completed
    // channel rounds, as in cohort_local_updates).
    const std::uint64_t round_nonce = sim.channel().stats().rounds.size();
    // Adaptive attackers' state slots, gathered on the coordinator
    // thread (deque growth must not race the parallel loop).
    std::vector<AttackState*> attack_states(cohort.size(), nullptr);
    for (std::size_t i = 0; i < cohort.size(); ++i) {
      if (sim.engine().profile(cohort[i]).attack.kind ==
          AttackKind::kAdaptiveScaled) {
        attack_states[i] = sim.attack_state(cohort[i]);
      }
    }
    if (streaming) {
      // Streaming steps 3-5 in one pass: each member trains inside its
      // fold lane and its decoded upload folds straight into the lane's
      // accumulator for the member's ASSIGNED cluster (each cluster's
      // own model is the accumulator's delta/sketch anchor), then is
      // freed. Per-cluster fold counts decide which clusters finish —
      // a dead cluster keeps its model, exactly like the dense path.
      ShardLayout layout;
      layout.cohort_size = cohort.size();
      layout.lanes = kFoldLanes;
      layout.shards = opts.aggregation.shards;
      const std::vector<std::size_t> lanes =
          fold_lane_offsets(cohort.size(), layout.lanes);
      std::vector<std::vector<std::unique_ptr<StreamingAccumulator>>> accs(
          layout.lanes);
      for (std::size_t l = 0; l < layout.lanes; ++l) {
        accs[l].reserve(C);
        for (std::size_t c = 0; c < C; ++c) {
          accs[l].push_back(rule->accumulator(cluster_models[c], layout));
        }
      }
      sim.channel().collect_streaming(
          cohort, deployed, lanes,
          [&](std::size_t i) {
            const std::size_t k = cohort[i];
            ModelParameters update =
                clients[k].local_update(*deployed[i], opts.client);
            const AttackSpec& attack = sim.engine().profile(k).attack;
            if (attack.kind != AttackKind::kNone) {
              update = apply_attack(attack, std::move(update), *deployed[i],
                                    k, round_nonce, attack_states[i]);
            }
            return update;
          },
          [&](std::size_t lane, std::size_t i, ModelParameters&& decoded) {
            const auto c =
                static_cast<std::size_t>(assignment_[cohort[i]]);
            accs[lane][c]->fold(decoded, weights[cohort[i]], /*staleness=*/0,
                                static_cast<int>(cohort[i]));
          });
      sim.finish_sync_round(opts.client.steps, cohort);
      for (std::size_t c = 0; c < C; ++c) {
        for (std::size_t l = 1; l < layout.lanes; ++l) {
          accs[0][c]->merge(*accs[l][c]);
        }
        if (accs[0][c]->folds() == 0) continue;  // dead cluster
        cluster_models[c] = accs[0][c]->finish();
      }
    } else {
      std::vector<ModelParameters> updates(cohort.size());
      parallel_for(cohort.size(), [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          const std::size_t k = cohort[i];
          updates[i] = clients[k].local_update(*deployed[i], opts.client);
          const AttackSpec& attack = sim.engine().profile(k).attack;
          if (attack.kind != AttackKind::kNone) {
            updates[i] = apply_attack(attack, std::move(updates[i]),
                                      *deployed[i], k, round_nonce,
                                      attack_states[i]);
          }
        }
      });

      // 4) Uplink through the channel; the decoded deployment is the
      // shared delta reference, then the barrier policy prices the round
      // (each member's C serial downloads are in its billed traffic).
      // Moving the raw updates lets the channel free each one at its
      // roundtrip instead of holding raw + decoded cohorts at once.
      updates = sim.channel().collect(std::move(updates), deployed, cohort);
      // Detection sees the server-side view: decoded update vs the
      // cluster model each member trained from.
      sim.observe_cohort_updates(cohort, updates, deployed);
      sim.finish_sync_round(opts.client.steps, cohort);

      // 5) Per-cluster aggregation over this round's members, through
      // the configured rule (the cluster's model is the delta reference
      // for clipping rules).
      for (int c = 0; c < num_clusters_; ++c) {
        std::vector<AggregationInput> members;
        for (std::size_t i = 0; i < cohort.size(); ++i) {
          if (assignment_[cohort[i]] == c) {
            members.push_back({&updates[i], weights[cohort[i]], 0,
                               static_cast<int>(cohort[i])});
          }
        }
        if (members.empty()) continue;  // dead cluster keeps its model
        cluster_models[static_cast<std::size_t>(c)] = rule->aggregate(
            cluster_models[static_cast<std::size_t>(c)], members);
      }
    }

    if (opts.on_round) {
      std::vector<ModelParameters> snapshot;
      for (std::size_t k = 0; k < clients.size(); ++k) {
        snapshot.push_back(
            cluster_models[static_cast<std::size_t>(assignment_[k])]);
      }
      opts.on_round(r, snapshot);
    }
  }

  std::vector<ModelParameters> finals;
  finals.reserve(clients.size());
  for (std::size_t k = 0; k < clients.size(); ++k) {
    finals.push_back(cluster_models[static_cast<std::size_t>(assignment_[k])]);
  }
  return finals;
}

}  // namespace fleda
