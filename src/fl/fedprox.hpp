// FedProx (Li et al. 2018): the paper's core decentralized training
// algorithm. Identical round structure to FedAvg, but each client's
// local objective carries the proximal term mu*||W^r - w_k||^2
// anchoring local models to the deployed aggregate, which counters the
// client-level heterogeneity of routability data (paper §4.1, Eq. 1).
#pragma once

#include "fl/trainer.hpp"

namespace fleda {

class FedProx : public FederatedAlgorithm {
 public:
  std::string name() const override { return "FedProx"; }

  // The final aggregated global model of the last run (useful for
  // personalization stages built on top of FedProx).
  const ModelParameters& global_model() const { return global_; }

 protected:
  std::vector<ModelParameters> run_rounds(
      std::vector<Client>& clients, const ModelFactory& factory,
      const FLRunOptions& opts, FederationSim& sim,
      ParticipationPolicy& participation) override;

 private:
  ModelParameters global_;
};

}  // namespace fleda
