#include "fl/privacy.hpp"

#include <cmath>
#include <stdexcept>

namespace fleda {

double update_norm(const ModelParameters& update,
                   const ModelParameters& reference) {
  return std::sqrt(update.squared_distance(reference));
}

double clip_update(ModelParameters& update, const ModelParameters& reference,
                   double clip_norm) {
  if (clip_norm <= 0.0) {
    throw std::invalid_argument("clip_update: clip_norm must be > 0");
  }
  const double norm = update_norm(update, reference);
  if (norm <= clip_norm || norm == 0.0) return norm;
  // update = reference + (update - reference) * clip/norm
  const double scale = clip_norm / norm;
  ModelParameters delta = update;
  delta.add_scaled(reference, -1.0);
  update = reference;
  update.add_scaled(delta, scale);
  return norm;
}

void add_gaussian_noise(ModelParameters& params, double sigma, Rng& rng) {
  if (sigma < 0.0) {
    throw std::invalid_argument("add_gaussian_noise: sigma must be >= 0");
  }
  if (sigma == 0.0) return;
  for (ParameterEntry& e : params.mutable_entries()) {
    for (std::int64_t i = 0; i < e.value.numel(); ++i) {
      e.value[i] += static_cast<float>(rng.normal(0.0, sigma));
    }
  }
}

void privatize_update(ModelParameters& update,
                      const ModelParameters& reference, const DpOptions& opts,
                      Rng& rng) {
  clip_update(update, reference, opts.clip_norm);
  if (opts.noise_multiplier > 0.0) {
    add_gaussian_noise(update, opts.noise_multiplier * opts.clip_norm, rng);
  }
}

}  // namespace fleda
