#include "fl/registry.hpp"

#include <stdexcept>
#include <utility>

#include "fl/alpha_sync.hpp"
#include "fl/assigned_clustering.hpp"
#include "fl/fedavg.hpp"
#include "fl/fedprox.hpp"
#include "fl/fedprox_lg.hpp"
#include "fl/finetune.hpp"
#include "fl/ifca.hpp"

namespace fleda {
namespace {

void register_builtins(AlgorithmRegistry& registry) {
  registry.add("fedavg", [](const AlgorithmOptions&) {
    return std::make_unique<FedAvg>();
  });
  registry.add("fedprox", [](const AlgorithmOptions&) {
    return std::make_unique<FedProx>();
  });
  registry.add("fedprox_lg", [](const AlgorithmOptions&) {
    return std::make_unique<FedProxLG>();
  });
  registry.add("ifca", [](const AlgorithmOptions& o) {
    return std::make_unique<IFCA>(o.num_clusters, o.selection_batches);
  });
  registry.add("fedprox_finetune", [](const AlgorithmOptions& o) {
    return std::make_unique<FineTune>(std::make_unique<FedProx>(),
                                      o.finetune_steps);
  });
  registry.add("assigned_clustering", [](const AlgorithmOptions& o) {
    if (o.cluster_assignment.empty()) {
      return std::make_unique<AssignedClustering>(
          AssignedClustering::paper_assignment());
    }
    return std::make_unique<AssignedClustering>(o.cluster_assignment);
  });
  registry.add("alpha_sync", [](const AlgorithmOptions& o) {
    return std::make_unique<AlphaPortionSync>(o.alpha_portion);
  });
  registry.add("async_fedavg", [](const AlgorithmOptions& o) {
    return std::make_unique<AsyncFedAvg>(o.async);
  });
}

}  // namespace

AlgorithmRegistry& AlgorithmRegistry::global() {
  static AlgorithmRegistry* registry = [] {
    auto* r = new AlgorithmRegistry();
    register_builtins(*r);
    return r;
  }();
  return *registry;
}

void AlgorithmRegistry::add(std::string name, Factory factory) {
  if (name.empty()) {
    throw std::invalid_argument("AlgorithmRegistry::add: empty name");
  }
  if (!factory) {
    throw std::invalid_argument("AlgorithmRegistry::add: null factory for '" +
                                name + "'");
  }
  if (!factories_.emplace(std::move(name), std::move(factory)).second) {
    throw std::invalid_argument(
        "AlgorithmRegistry::add: duplicate registration");
  }
}

bool AlgorithmRegistry::contains(std::string_view name) const {
  return factories_.find(name) != factories_.end();
}

std::vector<std::string> AlgorithmRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) out.push_back(name);
  return out;  // std::map iterates sorted
}

std::unique_ptr<FederatedAlgorithm> AlgorithmRegistry::create(
    std::string_view name, const AlgorithmOptions& options) const {
  const auto it = factories_.find(name);
  if (it == factories_.end()) {
    std::string known;
    for (const std::string& n : names()) {
      if (!known.empty()) known += ", ";
      known += n;
    }
    throw std::invalid_argument("AlgorithmRegistry: unknown algorithm '" +
                                std::string(name) + "' (registered: " + known +
                                ")");
  }
  return it->second(options);
}

}  // namespace fleda
