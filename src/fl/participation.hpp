// ParticipationPolicy: the strategy that decides *who takes part* in a
// synchronous round. Historically the round loop was frozen into every
// FederatedAlgorithm subclass as "all K clients, every round"; the
// policy factors that decision out so client sampling and availability
// handling compose with any algorithm instead of being re-implemented
// in each run_rounds body.
//
// A policy returns the round's cohort as ascending client indices.
// Algorithms deploy to, train, collect from and aggregate over exactly
// that cohort, and FederationSim::finish_sync_round only schedules and
// bills the cohort — per-round cost is O(|cohort|), not O(K), which is
// what makes thousand-client federations affordable.
//
// Policies are created per run (FederatedAlgorithm::run owns one) and
// are stateful: UniformSample advances its own Rng once per select, so
// a fixed seed replays the same cohort sequence regardless of host
// thread count.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/profile.hpp"
#include "util/rng.hpp"

namespace fleda {

class ReputationBook;

// Everything a policy may consult when picking a cohort.
struct ParticipationContext {
  int round = 0;               // round index within the run
  std::size_t num_clients = 0; // K
  double now = 0.0;            // virtual clock at round start
  // Client profiles (availability windows); may be null in direct,
  // engine-less use — policies must then treat every client as online.
  const SimConfig* sim = nullptr;
};

class ParticipationPolicy {
 public:
  virtual ~ParticipationPolicy() = default;

  virtual std::string name() const = 0;

  // The round's cohort, as strictly ascending client indices in
  // [0, ctx.num_clients). May be empty (nobody reachable) — the
  // aggregation layer then refuses the round with a descriptive error
  // rather than averaging zero clients.
  virtual std::vector<std::size_t> select(const ParticipationContext& ctx) = 0;
};

// Every client, every round — bit-identical to the pre-policy barrier.
class FullParticipation : public ParticipationPolicy {
 public:
  std::string name() const override { return "full"; }
  std::vector<std::size_t> select(const ParticipationContext& ctx) override;
};

// C clients drawn uniformly without replacement each round (FedAvg's
// classic client sampling). sample_size >= K degenerates to full
// participation; sample_size <= 0 is rejected at construction (a
// config typo must not silently run full-cost rounds). Deterministic
// for a fixed seed: the policy's own Rng advances once per round, on
// the caller's thread.
class UniformSample : public ParticipationPolicy {
 public:
  // Throws std::invalid_argument when sample_size <= 0.
  explicit UniformSample(int sample_size, std::uint64_t seed = 0x5A3D1EULL);

  std::string name() const override;
  std::vector<std::size_t> select(const ParticipationContext& ctx) override;

 private:
  int sample_size_;
  Rng rng_;
};

// Filters a base cohort (full participation by default, or a sampler)
// down to the clients whose ClientProfile is online at round start —
// the sync barrier *skips* unreachable clients instead of stalling on
// them until their offline window ends.
class AvailabilityAware : public ParticipationPolicy {
 public:
  // base == nullptr means filter the full client set.
  explicit AvailabilityAware(std::unique_ptr<ParticipationPolicy> base = nullptr);

  std::string name() const override;
  std::vector<std::size_t> select(const ParticipationContext& ctx) override;

 private:
  std::unique_ptr<ParticipationPolicy> base_;
};

// C clients sampled without replacement with probability proportional
// to their ReputationBook weight — the reactive half of the
// detect->react loop: clients the AnomalyDetector keeps flagging drop
// toward the book's weight floor and are sampled rarely, honest
// clients keep their uniform share. The book outlives the policy
// (caller-owned, typically by FederatedAlgorithm::run or a persistent
// caller); the policy only reads it at select time, on the
// coordinator thread, with its own Rng — determinism matches
// UniformSample's.
class ReputationWeighted : public ParticipationPolicy {
 public:
  // Throws std::invalid_argument when sample_size <= 0 or book is
  // null (an unreferenced book would silently degrade to uniform).
  ReputationWeighted(int sample_size, const ReputationBook* book,
                     std::uint64_t seed = 0x5A3D1EULL);

  std::string name() const override;
  std::vector<std::size_t> select(const ParticipationContext& ctx) override;

 private:
  int sample_size_;
  const ReputationBook* book_;
  Rng rng_;
};

// C clients sampled without replacement with probability proportional
// to a caller-supplied importance weight — classically the client's
// sample count (clients holding more data are more informative per
// round), optionally scaled by recent training loss so struggling
// clients are revisited sooner. Shares ReputationWeighted's exact
// sampler (same prefix-sum walk, same rng draw schedule), so the
// cohort sequence depends only on (seed, round, weights). The provider
// is consulted once per client per select, on the coordinator thread;
// it must return finite, non-negative weights (a negative or
// non-finite weight fails the round loudly, naming the client).
class ImportanceSample : public ParticipationPolicy {
 public:
  // Importance weight of client k at select time.
  using WeightProvider = std::function<double(std::size_t)>;

  // Throws std::invalid_argument when sample_size <= 0 or the provider
  // is empty (an absent provider would silently sample uniformly).
  ImportanceSample(int sample_size, WeightProvider weights,
                   std::uint64_t seed = 0x5A3D1EULL);

  std::string name() const override;
  std::vector<std::size_t> select(const ParticipationContext& ctx) override;

 private:
  int sample_size_;
  WeightProvider weights_;
  Rng rng_;
};

// Declarative form carried by FLRunOptions / ExperimentConfig.
enum class ParticipationKind : std::uint8_t {
  kFull = 0,
  kUniformSample = 1,
  // Online-filtered cohort; combined with sample_size > 0 the filter
  // applies to the sampled cohort (so a round can be smaller than C).
  kAvailabilityAware = 2,
  // Reputation-weighted sampling (requires a ReputationBook — see
  // make_participation_policy and FLRunOptions::reputation).
  kReputationWeighted = 3,
  // Importance sampling by caller-supplied weight (requires a
  // WeightProvider; FederatedAlgorithm::run derives one from each
  // client's sample count, optionally scaled by training loss — see
  // ParticipationConfig::loss_weighted).
  kImportanceSample = 4,
};

std::string to_string(ParticipationKind kind);

struct ParticipationConfig {
  ParticipationKind kind = ParticipationKind::kFull;
  // C for kUniformSample / kReputationWeighted (must be positive —
  // both samplers reject non-positive sizes) / kAvailabilityAware
  // (<= 0 = filter the full client set, no sampler).
  int sample_size = 0;
  // Seed of the cohort-sampling stream (independent of model init).
  std::uint64_t seed = 0x5A3D1EULL;
  // kImportanceSample only: scale each client's sample-count weight by
  // (1 + last_train_loss), so clients whose local objective is still
  // high are revisited sooner. Ignored by every other kind.
  bool loss_weighted = false;
};

// `reputation` is consulted only by kReputationWeighted and
// `importance` only by kImportanceSample; each throws a descriptive
// error when its dependency is missing — the caller (normally
// FederatedAlgorithm::run) owns both lifetimes.
std::unique_ptr<ParticipationPolicy> make_participation_policy(
    const ParticipationConfig& config,
    const ReputationBook* reputation = nullptr,
    ImportanceSample::WeightProvider importance = {});

}  // namespace fleda
