// Client: one data owner in the decentralized training setting. Owns
// a private dataset (never exposed through this interface beyond its
// size) and implements the FedProx local objective (paper Eq. 1):
//
//   L_Prox(w_k, W^r) = sum_i (w_k(X_i) - Y_i)^2 + mu * ||W^r - w_k||^2
//
// The proximal term's gradient mu*(w_k - W^r) is added to the MSE
// gradient each step (the constant factor 2 is absorbed into mu,
// matching the common FedProx implementation). mu = 0 recovers plain
// FedAvg local training.
//
// Clients do NOT own a model: for the duration of each local_update /
// fine_tune / evaluate call they borrow a scratch {model, Adam}
// instance from a ModelPool and load the caller's ModelParameters into
// it, so a K-client federation holds O(threads) model instances rather
// than O(K). Client-persistent state is limited to the dataset
// pointer, the rng stream, and — when reset_optimizer == false — the
// serialized Adam moments carried between rounds.
#pragma once

#include <memory>
#include <optional>

#include "data/dataset.hpp"
#include "fl/parameters.hpp"
#include "models/pool.hpp"
#include "models/registry.hpp"
#include "nn/optimizer.hpp"

namespace fleda {

struct ClientTrainConfig {
  int steps = 100;          // S: model update steps per round
  int batch_size = 8;
  double learning_rate = 2e-4;
  double l2_regularization = 1e-5;
  double mu = 1e-4;         // FedProx proximal strength (0 = FedAvg)
  // The paper restarts local optimization from the freshly deployed
  // aggregate each round; Adam moments are reset accordingly. With
  // false, the client's moments survive between calls (serialized as
  // AdamMoments — the pooled scratch optimizer itself is shared).
  bool reset_optimizer = true;
};

class Client {
 public:
  // Shares `pool`'s scratch models with every other client on it.
  // Under the default kReplayInit schema the client's rng consumes one
  // factory construction so its stream stays bit-identical to the seed
  // implementation (which built and kept a model per client);
  // kFastInit skips that replay, so constructing a 100k+ fleet is no
  // longer an O(K) wall of model inits (see ClientInitSchema).
  Client(int id, const ClientDataset* data, std::shared_ptr<ModelPool> pool,
         Rng rng, ClientInitSchema schema = ClientInitSchema::kReplayInit);

  // Convenience: a private single-client pool over `factory`. Memory
  // behaves like the seed implementation (at most one scratch model per
  // client); prefer the shared-pool constructor for large federations.
  Client(int id, const ClientDataset* data, const ModelFactory& factory,
         Rng rng, ClientInitSchema schema = ClientInitSchema::kReplayInit);

  // Movable (clients live in vectors), not copyable.
  Client(Client&&) = default;
  Client& operator=(Client&&) = default;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  int id() const { return id_; }
  std::int64_t num_train() const { return data_->num_train(); }
  std::int64_t num_test() const { return data_->num_test(); }
  const ClientDataset& dataset() const { return *data_; }
  const ModelPool& pool() const { return *pool_; }

  // Loads `start` into a borrowed scratch model, trains cfg.steps
  // mini-batch steps with the FedProx objective anchored at `start`,
  // and returns the resulting parameters. Mean training loss is
  // exposed through last_train_loss().
  ModelParameters local_update(const ModelParameters& start,
                               const ClientTrainConfig& cfg);

  // Continues training from `start` WITHOUT a proximal anchor — the
  // paper's local fine-tuning personalization (runs outside the
  // decentralized constraint, purely client-side).
  ModelParameters fine_tune(const ModelParameters& start, int steps,
                            const ClientTrainConfig& cfg);

  // Mean MSE of `params` on up to `max_batches` training batches —
  // IFCA's cluster-selection criterion.
  double evaluate_train_loss(const ModelParameters& params, int max_batches);

  // ROC AUC of `params` on this client's private test data.
  double evaluate_test_auc(const ModelParameters& params);

  float last_train_loss() const { return last_train_loss_; }
  ClientInitSchema init_schema() const { return init_schema_; }

 private:
  // Runs `steps` optimizer steps; anchor != nullptr enables the
  // proximal term.
  ModelParameters train_steps(const ModelParameters& start, int steps,
                              const ClientTrainConfig& cfg,
                              const ModelParameters* anchor);

  int id_ = 0;
  const ClientDataset* data_ = nullptr;
  std::shared_ptr<ModelPool> pool_;
  Rng rng_;
  ClientInitSchema init_schema_ = ClientInitSchema::kReplayInit;
  float last_train_loss_ = 0.0f;
  // Persisted optimizer state for reset_optimizer == false runs; empty
  // means "start from zero moments".
  AdamMoments adam_moments_;
};

}  // namespace fleda
