#include "fl/server.hpp"

#include <stdexcept>

namespace fleda {

std::vector<double> Server::client_weights(const std::vector<Client>& clients) {
  std::vector<double> weights;
  weights.reserve(clients.size());
  for (const Client& c : clients) {
    weights.push_back(static_cast<double>(c.num_train()));
  }
  return weights;
}

ModelParameters Server::aggregate(const std::vector<ModelParameters>& updates,
                                  const std::vector<double>& weights) {
  if (updates.size() != weights.size()) {
    throw std::invalid_argument(
        "Server::aggregate: " + std::to_string(updates.size()) +
        " updates but " + std::to_string(weights.size()) + " weights");
  }
  std::vector<const ModelParameters*> ptrs;
  ptrs.reserve(updates.size());
  for (const auto& u : updates) ptrs.push_back(&u);
  return ModelParameters::weighted_average(ptrs, weights);
}

ModelParameters Server::aggregate_subset(
    const std::vector<ModelParameters>& updates,
    const std::vector<double>& weights,
    const std::vector<std::size_t>& members) {
  if (members.empty()) {
    throw std::invalid_argument(
        "Server::aggregate_subset: empty member set — cannot average zero "
        "clients (did a cluster lose all its members?)");
  }
  if (updates.size() != weights.size()) {
    throw std::invalid_argument(
        "Server::aggregate_subset: " + std::to_string(updates.size()) +
        " updates but " + std::to_string(weights.size()) + " weights");
  }
  std::vector<const ModelParameters*> ptrs;
  std::vector<double> w;
  for (std::size_t m : members) {
    ptrs.push_back(&updates.at(m));
    w.push_back(weights.at(m));
  }
  return ModelParameters::weighted_average(ptrs, w);
}

}  // namespace fleda
