#include "fl/server.hpp"

#include <stdexcept>

namespace fleda {

std::vector<double> Server::client_weights(const std::vector<Client>& clients) {
  std::vector<double> weights;
  weights.reserve(clients.size());
  for (const Client& c : clients) {
    weights.push_back(static_cast<double>(c.num_train()));
  }
  return weights;
}

std::vector<double> Server::cohort_weights(
    const std::vector<double>& weights,
    const std::vector<std::size_t>& cohort) {
  std::vector<double> out;
  out.reserve(cohort.size());
  for (std::size_t k : cohort) out.push_back(weights.at(k));
  return out;
}

ModelParameters Server::aggregate(const std::vector<ModelParameters>& updates,
                                  const std::vector<double>& weights) {
  if (updates.size() != weights.size()) {
    throw std::invalid_argument(
        "Server::aggregate: " + std::to_string(updates.size()) +
        " updates but " + std::to_string(weights.size()) + " weights");
  }
  std::vector<AggregationInput> cohort;
  cohort.reserve(updates.size());
  for (std::size_t i = 0; i < updates.size(); ++i) {
    cohort.push_back({&updates[i], weights[i], 0});
  }
  return WeightedAverage().aggregate(ModelParameters{}, cohort);
}

ModelParameters Server::aggregate(const AggregationRule& rule,
                                  const ModelParameters& current,
                                  const std::vector<ModelParameters>& updates,
                                  const std::vector<double>& weights,
                                  const std::vector<std::size_t>& cohort) {
  if (updates.size() != weights.size()) {
    throw std::invalid_argument(
        "Server::aggregate: " + std::to_string(updates.size()) +
        " updates but " + std::to_string(weights.size()) + " weights");
  }
  if (!cohort.empty() && cohort.size() != updates.size()) {
    throw std::invalid_argument(
        "Server::aggregate: " + std::to_string(updates.size()) +
        " updates but " + std::to_string(cohort.size()) + " cohort indices");
  }
  std::vector<AggregationInput> inputs;
  inputs.reserve(updates.size());
  for (std::size_t i = 0; i < updates.size(); ++i) {
    const int client = cohort.empty() ? -1 : static_cast<int>(cohort[i]);
    inputs.push_back({&updates[i], weights[i], 0, client});
  }
  return rule.aggregate(current, inputs);
}

ModelParameters Server::aggregate_subset(
    const std::vector<ModelParameters>& updates,
    const std::vector<double>& weights,
    const std::vector<std::size_t>& members) {
  if (members.empty()) {
    throw std::invalid_argument(
        "Server::aggregate_subset: empty member set — cannot average zero "
        "clients (did a cluster lose all its members?)");
  }
  if (updates.size() != weights.size()) {
    throw std::invalid_argument(
        "Server::aggregate_subset: " + std::to_string(updates.size()) +
        " updates but " + std::to_string(weights.size()) + " weights");
  }
  std::vector<AggregationInput> cohort;
  cohort.reserve(members.size());
  for (std::size_t m : members) {
    cohort.push_back({&updates.at(m), weights.at(m), 0});
  }
  return WeightedAverage().aggregate(ModelParameters{}, cohort);
}

}  // namespace fleda
