// Tiny synthetic federated worlds for tests and microbenches: each
// client owns a handful of 2-channel 8x8 samples whose label map
// thresholds channel 0 at a per-client cutoff (heterogeneity across
// clients), paired with FLNet-shaped models. Cheap enough for
// seconds-long deterministic runs; NOT the paper dataset (that lives
// in src/data/generator.*).
#pragma once

#include <cstdint>
#include <vector>

#include "fl/client.hpp"
#include "models/registry.hpp"

namespace fleda {

struct SyntheticWorldOptions {
  std::size_t num_clients = 3;
  // Client k's label threshold: base + step * k.
  float threshold_base = 0.4f;
  float threshold_step = 0.05f;
  int train_samples = 6;
  int test_samples = 3;
};

// One client's dataset: `train/test` samples with label[i] =
// features0[i] > threshold.
ClientDataset make_synthetic_client(int id, float threshold,
                                    std::uint64_t seed, int train_samples = 6,
                                    int test_samples = 3);

// A ready-to-run federation. Client k is seeded with `seed + k + 1`
// and its model rng forked from Rng(seed); moving the struct is safe
// (clients point into the data vector's stable heap storage and share
// the heap-allocated model pool). All clients borrow scratch models
// from `pool`, so the world holds O(threads) model instances however
// many clients it has.
struct SyntheticWorld {
  std::vector<ClientDataset> data;
  std::vector<Client> clients;
  ModelFactory factory;
  std::shared_ptr<ModelPool> pool;
};

SyntheticWorld make_synthetic_world(std::uint64_t seed,
                                    const SyntheticWorldOptions& options = {});

}  // namespace fleda
