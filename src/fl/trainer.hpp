// FederatedAlgorithm: common interface for all decentralized training
// schemes in the paper (Fig. 1 round loop; Fig. 2 personalization
// variants). run() executes R rounds over a set of clients and returns
// one final model per client — for non-personalized algorithms all K
// entries are the same global model, for personalized ones they
// differ.
//
// Every run executes on the simulation engine (src/sim): parameter
// exchanges go through a metered Channel with per-client links, and
// round completion is a scheduling policy on the virtual clock — the
// synchronous algorithms use the FederationSim barrier policy, the
// asynchronous ones (AsyncFedAvg) schedule their own events. With
// default (homogeneous, always-online) profiles and a lossless
// channel, the sync path is bit-identical to a direct exchange — the
// engine only attaches simulated time to it.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "fl/anomaly.hpp"
#include "fl/client.hpp"
#include "fl/participation.hpp"
#include "fl/server.hpp"
#include "sim/federation.hpp"

namespace fleda {

class TelemetrySink;

struct FLRunOptions {
  int rounds = 50;  // R (for AsyncFedAvg: number of server aggregations)
  ClientTrainConfig client;
  std::uint64_t seed = 1;  // initialization seed for global model(s)
  // Who takes part in each synchronous round (full participation,
  // uniform client sampling, availability-aware skipping). The
  // event-driven asynchronous algorithms ignore this: every client
  // runs its own loop and offline clients simply rejoin later.
  ParticipationConfig participation;
  // How the cohort's updates become the next model, selected by
  // AggregationRegistry name. Empty rule = the algorithm's historical
  // default (WeightedAverage for sync loops, AsyncConfig-derived
  // StalenessDiscountedMix for AsyncFedAvg); a robust rule
  // ("coordinate_median", "trimmed_mean", "norm_clipped_mean") slots
  // into any algorithm by name.
  AggregationConfig aggregation;
  // Parameter-exchange transport: every deployment/upload of the round
  // loop goes through a Channel built from this config. The default
  // (Fp32 both ways) is lossless and bit-identical to a direct
  // exchange, only metered.
  CommConfig comm;
  // Client heterogeneity (compute speed, per-client links,
  // availability) and the compute-time model for the virtual clock.
  // Default: homogeneous, always-online reference clients.
  SimConfig sim;
  // Optional out-param: filled with the run's cumulative channel
  // statistics (bytes, messages, simulated latency) before run returns.
  ChannelStats* comm_stats = nullptr;
  // Optional out-param: the simulation summary (total virtual time,
  // event count, and — when `trace` is set — the full event trace).
  SimReport* sim_report = nullptr;
  bool trace = false;
  // Optional per-round telemetry sink (obs/telemetry.hpp): the round
  // loops record cohort size, attacker flags and staleness into it and
  // close one RoundTelemetry record per channel round. When null, run()
  // still honors FLEDA_TELEMETRY_FILE by streaming to a private sink.
  TelemetrySink* telemetry = nullptr;
  // Server-side attacker detection (fl/anomaly.hpp). When
  // anomaly.enabled, run() scores every cohort's update deltas and
  // records flags into telemetry — a pure observer: results are
  // bit-identical with detection on or off. `detector` / `reputation`
  // optionally supply caller-owned instances (to read tallies after
  // the run, or to carry a reputation book across runs); when null,
  // run() creates private ones as needed. kReputationWeighted
  // participation requires a book: either pass `reputation` or enable
  // the detector so run() can build the detect->react loop itself.
  AnomalyConfig anomaly;
  AnomalyDetector* detector = nullptr;
  ReputationBook* reputation = nullptr;
  // Optional progress hook: (round, per-client deployed parameters).
  std::function<void(int, const std::vector<ModelParameters>&)> on_round;
};

class FederatedAlgorithm {
 public:
  virtual ~FederatedAlgorithm() = default;

  virtual std::string name() const = 0;

  // Whether run_rounds consults the ParticipationPolicy. Event-driven
  // algorithms (AsyncFedAvg) return false: every client runs its own
  // loop, so reporting layers must not claim a sampling policy was
  // applied.
  virtual bool uses_participation() const { return true; }

  // Runs the full decentralized training; returns per-client final
  // models (size == clients.size()). Owns the simulation lifecycle
  // (template method): builds a Channel from opts.comm, a SimEngine
  // from opts.sim and a ParticipationPolicy from opts.participation,
  // hands the bound FederationSim and the policy to run_rounds, and
  // exports the cumulative channel stats / sim report afterwards — so
  // no algorithm can forget the accounting.
  std::vector<ModelParameters> run(std::vector<Client>& clients,
                                   const ModelFactory& factory,
                                   const FLRunOptions& opts);

 protected:
  // Algorithm body: R rounds of parameter exchange scheduled on `sim`,
  // each round's cohort drawn from `participation` (stateful per run).
  virtual std::vector<ModelParameters> run_rounds(
      std::vector<Client>& clients, const ModelFactory& factory,
      const FLRunOptions& opts, FederationSim& sim,
      ParticipationPolicy& participation) = 0;

  // Lets wrapper algorithms (FineTune) run their base algorithm's
  // rounds on the shared outer simulation despite protected access.
  static std::vector<ModelParameters> run_rounds_of(
      FederatedAlgorithm& algo, std::vector<Client>& clients,
      const ModelFactory& factory, const FLRunOptions& opts,
      FederationSim& sim, ParticipationPolicy& participation);

  // The rule opts.aggregation names, or the synchronous loops'
  // historical WeightedAverage default when no rule is named. Round
  // loops create one per run and aggregate through it.
  static std::unique_ptr<AggregationRule> sync_aggregation_rule(
      const FLRunOptions& opts);

  // The round's cohort from `participation`, evaluated at the current
  // virtual-clock time (one policy call per round, on this thread).
  static std::vector<std::size_t> select_cohort(
      ParticipationPolicy& participation, int round,
      std::size_t num_clients, const FLRunOptions& opts,
      const FederationSim& sim);

  // Runs local_update on every client in parallel (each client only
  // touches its own model and data). deployed[k] is what client k
  // starts from this round. This is the direct, unmetered path — kept
  // for baselines and as the reference the channel path is tested
  // against.
  static std::vector<ModelParameters> parallel_local_updates(
      std::vector<Client>& clients,
      const std::vector<const ModelParameters*>& deployed,
      const ClientTrainConfig& cfg);

  // Sync-barrier exchange round on the simulation engine, over the
  // full client set: broadcasts deployed[k] down the channel, trains
  // each client from what it decoded, collects the updates back up
  // (delta codecs encode against the decoded deployment), schedules
  // the per-client transfer/compute events and closes the round at the
  // slowest client. Returns the server-side view of the updates.
  static std::vector<ModelParameters> parallel_local_updates(
      std::vector<Client>& clients,
      const std::vector<const ModelParameters*>& deployed,
      const ClientTrainConfig& cfg, FederationSim& sim);

  // Cohort form of the sync exchange round: deployed[i] goes to client
  // cohort[i], only cohort members train, upload and are billed, and
  // the barrier closes at the slowest *member* — the building block
  // every synchronous algorithm now composes with a
  // ParticipationPolicy. Returns cohort-indexed server-side updates.
  static std::vector<ModelParameters> cohort_local_updates(
      std::vector<Client>& clients, const std::vector<std::size_t>& cohort,
      const std::vector<const ModelParameters*>& deployed,
      const ClientTrainConfig& cfg, FederationSim& sim);

  // Whether this run's synchronous rounds take the streaming
  // accumulator path: opted in (opts.aggregation.streaming), a rule
  // with a streaming form (requires_dense() == false), and no anomaly
  // detector (detection scores the materialized cohort, so it pins the
  // dense path). Evaluated once per run.
  static bool streaming_rounds(const FLRunOptions& opts,
                               const AggregationRule& rule,
                               const FederationSim& sim);

  // Streaming counterpart of cohort_local_updates + Server::aggregate
  // in one pass: broadcasts `global` to the cohort, trains each member
  // inside its fold lane, folds every decoded upload straight into a
  // per-lane accumulator from `rule` and frees it, then merges the
  // lanes in lane order and returns the aggregated next model — the
  // cohort is never materialized, so server memory stays O(lanes x
  // model) at any cohort size. cohort_weights[i] weights cohort[i].
  // Bit-identical across thread-pool sizes (the lane partition is a
  // pure function of the cohort), but NOT bit-identical to the dense
  // path (double partial sums reassociate) — which is why the caller
  // gates on streaming_rounds().
  static ModelParameters streaming_cohort_round(
      std::vector<Client>& clients, const std::vector<std::size_t>& cohort,
      const ModelParameters& global,
      const std::vector<double>& cohort_weights, const AggregationRule& rule,
      const AggregationConfig& agg, const ClientTrainConfig& cfg,
      FederationSim& sim);
};

}  // namespace fleda
