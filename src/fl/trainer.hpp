// FederatedAlgorithm: common interface for all decentralized training
// schemes in the paper (Fig. 1 round loop; Fig. 2 personalization
// variants). run() executes R rounds over a set of clients and returns
// one final model per client — for non-personalized algorithms all K
// entries are the same global model, for personalized ones they
// differ.
//
// Every run executes on the simulation engine (src/sim): parameter
// exchanges go through a metered Channel with per-client links, and
// round completion is a scheduling policy on the virtual clock — the
// synchronous algorithms use the FederationSim barrier policy, the
// asynchronous ones (AsyncFedAvg) schedule their own events. With
// default (homogeneous, always-online) profiles and a lossless
// channel, the sync path is bit-identical to a direct exchange — the
// engine only attaches simulated time to it.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "fl/client.hpp"
#include "fl/server.hpp"
#include "sim/federation.hpp"

namespace fleda {

struct FLRunOptions {
  int rounds = 50;  // R (for AsyncFedAvg: number of server aggregations)
  ClientTrainConfig client;
  std::uint64_t seed = 1;  // initialization seed for global model(s)
  // Parameter-exchange transport: every deployment/upload of the round
  // loop goes through a Channel built from this config. The default
  // (Fp32 both ways) is lossless and bit-identical to a direct
  // exchange, only metered.
  CommConfig comm;
  // Client heterogeneity (compute speed, per-client links,
  // availability) and the compute-time model for the virtual clock.
  // Default: homogeneous, always-online reference clients.
  SimConfig sim;
  // Optional out-param: filled with the run's cumulative channel
  // statistics (bytes, messages, simulated latency) before run returns.
  ChannelStats* comm_stats = nullptr;
  // Optional out-param: the simulation summary (total virtual time,
  // event count, and — when `trace` is set — the full event trace).
  SimReport* sim_report = nullptr;
  bool trace = false;
  // Optional progress hook: (round, per-client deployed parameters).
  std::function<void(int, const std::vector<ModelParameters>&)> on_round;
};

class FederatedAlgorithm {
 public:
  virtual ~FederatedAlgorithm() = default;

  virtual std::string name() const = 0;

  // Runs the full decentralized training; returns per-client final
  // models (size == clients.size()). Owns the simulation lifecycle
  // (template method): builds a Channel from opts.comm and a SimEngine
  // from opts.sim, hands the bound FederationSim to run_rounds, and
  // exports the cumulative channel stats / sim report afterwards — so
  // no algorithm can forget the accounting.
  std::vector<ModelParameters> run(std::vector<Client>& clients,
                                   const ModelFactory& factory,
                                   const FLRunOptions& opts);

 protected:
  // Algorithm body: R rounds of parameter exchange scheduled on `sim`.
  virtual std::vector<ModelParameters> run_rounds(
      std::vector<Client>& clients, const ModelFactory& factory,
      const FLRunOptions& opts, FederationSim& sim) = 0;

  // Lets wrapper algorithms (FineTune) run their base algorithm's
  // rounds on the shared outer simulation despite protected access.
  static std::vector<ModelParameters> run_rounds_of(
      FederatedAlgorithm& algo, std::vector<Client>& clients,
      const ModelFactory& factory, const FLRunOptions& opts,
      FederationSim& sim);

  // Runs local_update on every client in parallel (each client only
  // touches its own model and data). deployed[k] is what client k
  // starts from this round. This is the direct, unmetered path — kept
  // for baselines and as the reference the channel path is tested
  // against.
  static std::vector<ModelParameters> parallel_local_updates(
      std::vector<Client>& clients,
      const std::vector<const ModelParameters*>& deployed,
      const ClientTrainConfig& cfg);

  // Sync-barrier exchange round on the simulation engine. Broadcasts
  // deployed[k] down the channel, trains each client from what it
  // decoded, collects the updates back up (delta codecs encode against
  // the decoded deployment), schedules the per-client transfer/compute
  // events and closes the round at the slowest client. Returns the
  // server-side view of the updates.
  static std::vector<ModelParameters> parallel_local_updates(
      std::vector<Client>& clients,
      const std::vector<const ModelParameters*>& deployed,
      const ClientTrainConfig& cfg, FederationSim& sim);
};

}  // namespace fleda
