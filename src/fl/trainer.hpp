// FederatedAlgorithm: common interface for all decentralized training
// schemes in the paper (Fig. 1 round loop; Fig. 2 personalization
// variants). run() executes R rounds over a set of clients and returns
// one final model per client — for non-personalized algorithms all K
// entries are the same global model, for personalized ones they
// differ.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "fl/client.hpp"
#include "fl/server.hpp"

namespace fleda {

struct FLRunOptions {
  int rounds = 50;  // R
  ClientTrainConfig client;
  std::uint64_t seed = 1;  // initialization seed for global model(s)
  // Optional progress hook: (round, per-client deployed parameters).
  std::function<void(int, const std::vector<ModelParameters>&)> on_round;
};

class FederatedAlgorithm {
 public:
  virtual ~FederatedAlgorithm() = default;

  virtual std::string name() const = 0;

  // Runs the full decentralized training; returns per-client final
  // models (size == clients.size()).
  virtual std::vector<ModelParameters> run(std::vector<Client>& clients,
                                           const ModelFactory& factory,
                                           const FLRunOptions& opts) = 0;

 protected:
  // Runs local_update on every client in parallel (each client only
  // touches its own model and data). deployed[k] is what client k
  // starts from this round.
  static std::vector<ModelParameters> parallel_local_updates(
      std::vector<Client>& clients,
      const std::vector<const ModelParameters*>& deployed,
      const ClientTrainConfig& cfg);
};

}  // namespace fleda
