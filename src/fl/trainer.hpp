// FederatedAlgorithm: common interface for all decentralized training
// schemes in the paper (Fig. 1 round loop; Fig. 2 personalization
// variants). run() executes R rounds over a set of clients and returns
// one final model per client — for non-personalized algorithms all K
// entries are the same global model, for personalized ones they
// differ.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "comm/channel.hpp"
#include "fl/client.hpp"
#include "fl/server.hpp"

namespace fleda {

struct FLRunOptions {
  int rounds = 50;  // R
  ClientTrainConfig client;
  std::uint64_t seed = 1;  // initialization seed for global model(s)
  // Parameter-exchange transport: every deployment/upload of the round
  // loop goes through a Channel built from this config. The default
  // (Fp32 both ways) is lossless and bit-identical to a direct
  // exchange, only metered.
  CommConfig comm;
  // Optional out-param: filled with the run's cumulative channel
  // statistics (bytes, messages, simulated latency) before run returns.
  ChannelStats* comm_stats = nullptr;
  // Optional progress hook: (round, per-client deployed parameters).
  std::function<void(int, const std::vector<ModelParameters>&)> on_round;
};

class FederatedAlgorithm {
 public:
  virtual ~FederatedAlgorithm() = default;

  virtual std::string name() const = 0;

  // Runs the full decentralized training; returns per-client final
  // models (size == clients.size()). Owns the channel lifecycle
  // (template method): builds a Channel from opts.comm, hands it to
  // run_rounds, and exports its cumulative stats to opts.comm_stats —
  // so no algorithm can forget the accounting.
  std::vector<ModelParameters> run(std::vector<Client>& clients,
                                   const ModelFactory& factory,
                                   const FLRunOptions& opts);

 protected:
  // Algorithm body: R rounds of parameter exchange over `channel`.
  virtual std::vector<ModelParameters> run_rounds(
      std::vector<Client>& clients, const ModelFactory& factory,
      const FLRunOptions& opts, Channel& channel) = 0;

  // Lets wrapper algorithms (FineTune) run their base algorithm's
  // rounds on the shared outer channel despite protected access.
  static std::vector<ModelParameters> run_rounds_of(
      FederatedAlgorithm& algo, std::vector<Client>& clients,
      const ModelFactory& factory, const FLRunOptions& opts,
      Channel& channel);

  // Runs local_update on every client in parallel (each client only
  // touches its own model and data). deployed[k] is what client k
  // starts from this round. This is the direct, unmetered path — kept
  // for baselines and as the reference the channel path is tested
  // against.
  static std::vector<ModelParameters> parallel_local_updates(
      std::vector<Client>& clients,
      const std::vector<const ModelParameters*>& deployed,
      const ClientTrainConfig& cfg);

  // Channel path: one full exchange round. Broadcasts deployed[k] down
  // the channel, trains each client from what it decoded, collects the
  // updates back up (delta codecs encode against the decoded
  // deployment), closes the round's accounting entry, and returns the
  // server-side view of the updates.
  static std::vector<ModelParameters> parallel_local_updates(
      std::vector<Client>& clients,
      const std::vector<const ModelParameters*>& deployed,
      const ClientTrainConfig& cfg, Channel& channel);
};

}  // namespace fleda
