// Dense floating-point codecs: Fp32Codec (lossless baseline) and
// Fp16Codec (IEEE 754 binary16 with round-to-nearest-even).
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "comm/codec.hpp"
#include "comm/wire.hpp"

namespace fleda {

std::uint16_t float_to_half(float value) {
  std::uint32_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  const std::uint16_t sign = static_cast<std::uint16_t>((bits >> 16) & 0x8000u);
  const std::uint32_t exp32 = (bits >> 23) & 0xffu;
  std::uint32_t mant = bits & 0x007fffffu;

  if (exp32 == 0xffu) {  // inf / nan
    return sign | 0x7c00u | (mant != 0 ? 0x0200u : 0u);
  }
  const std::int32_t exp = static_cast<std::int32_t>(exp32) - 127 + 15;
  if (exp >= 31) return sign | 0x7c00u;  // overflow -> inf
  if (exp <= 0) {
    if (exp < -10) return sign;  // underflows to zero
    mant |= 0x00800000u;         // make the leading 1 explicit
    const int shift = 14 - exp;
    std::uint16_t half = static_cast<std::uint16_t>(mant >> shift);
    const std::uint32_t rem = mant & ((1u << shift) - 1);
    const std::uint32_t halfway = 1u << (shift - 1);
    if (rem > halfway || (rem == halfway && (half & 1))) ++half;
    return sign | half;
  }
  std::uint16_t half = static_cast<std::uint16_t>(
      sign | (static_cast<std::uint32_t>(exp) << 10) | (mant >> 13));
  const std::uint32_t rem = mant & 0x1fffu;
  // Round to nearest even; a carry correctly rolls into the exponent
  // (and saturates to inf at the top).
  if (rem > 0x1000u || (rem == 0x1000u && (half & 1))) ++half;
  return half;
}

float half_to_float(std::uint16_t half) {
  const std::uint32_t sign = static_cast<std::uint32_t>(half & 0x8000u) << 16;
  std::uint32_t exp = (half >> 10) & 0x1fu;
  std::uint32_t mant = half & 0x3ffu;
  std::uint32_t bits;
  if (exp == 0) {
    if (mant == 0) {
      bits = sign;  // signed zero
    } else {        // subnormal: renormalize
      exp = 127 - 15 + 1;
      while ((mant & 0x400u) == 0) {
        mant <<= 1;
        --exp;
      }
      mant &= 0x3ffu;
      bits = sign | (exp << 23) | (mant << 13);
    }
  } else if (exp == 31) {  // inf / nan
    bits = sign | 0x7f800000u | (mant << 13);
  } else {
    bits = sign | ((exp - 15 + 127) << 23) | (mant << 13);
  }
  float value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

ByteBuffer Fp32Codec::encode(const ModelParameters& params,
                             const ModelParameters* /*reference*/) const {
  ByteBuffer out;
  out.reserve(raw_wire_bytes(params));
  wire::Writer w{out};
  wire::write_preamble(w, static_cast<std::uint8_t>(kind()),
                       static_cast<std::uint32_t>(params.entries().size()));
  for (const ParameterEntry& e : params.entries()) {
    wire::write_entry_meta(w, e);
    w.bytes(e.value.data(), static_cast<std::size_t>(e.value.numel()) * 4);
  }
  return out;
}

ModelParameters Fp32Codec::decode(const ByteBuffer& blob,
                                  const ModelParameters* /*reference*/) const {
  wire::Reader r(blob);
  const std::uint32_t count =
      wire::read_preamble(r, static_cast<std::uint8_t>(kind()));
  ModelParameters params;
  params.mutable_entries().reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    ParameterEntry e = wire::read_entry_meta(r);
    r.bytes(e.value.data(), static_cast<std::size_t>(e.value.numel()) * 4);
    params.mutable_entries().push_back(std::move(e));
  }
  return params;
}

ByteBuffer Fp16Codec::encode(const ModelParameters& params,
                             const ModelParameters* /*reference*/) const {
  ByteBuffer out;
  wire::Writer w{out};
  wire::write_preamble(w, static_cast<std::uint8_t>(kind()),
                       static_cast<std::uint32_t>(params.entries().size()));
  for (const ParameterEntry& e : params.entries()) {
    wire::write_entry_meta(w, e);
    for (std::int64_t i = 0; i < e.value.numel(); ++i) {
      const std::uint16_t half = float_to_half(e.value[i]);
      // Like Int8QuantCodec: a diverged client's non-finite weight, or
      // one beyond the half range (|w| > 65504, saturating to inf),
      // would silently poison the aggregate — refuse instead.
      if ((half & 0x7c00u) == 0x7c00u) {
        throw std::invalid_argument(
            "Fp16Codec: non-finite or half-overflowing value in '" + e.name +
            "'");
      }
      w.pod<std::uint16_t>(half);
    }
  }
  return out;
}

ModelParameters Fp16Codec::decode(const ByteBuffer& blob,
                                  const ModelParameters* /*reference*/) const {
  wire::Reader r(blob);
  const std::uint32_t count =
      wire::read_preamble(r, static_cast<std::uint8_t>(kind()));
  ModelParameters params;
  params.mutable_entries().reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    ParameterEntry e = wire::read_entry_meta(r);
    for (std::int64_t j = 0; j < e.value.numel(); ++j) {
      e.value[j] = half_to_float(r.pod<std::uint16_t>());
    }
    params.mutable_entries().push_back(std::move(e));
  }
  return params;
}

}  // namespace fleda
