// Byte-level reader/writer for the FLC1 wire format shared by the
// codec implementations. Internal to src/comm/ — user code talks to
// ParameterCodec, never to these helpers.
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "fl/parameters.hpp"

namespace fleda {
namespace wire {

constexpr char kMagic[4] = {'F', 'L', 'C', '1'};

struct Writer {
  std::vector<std::uint8_t>& out;

  void bytes(const void* src, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(src);
    out.insert(out.end(), p, p + n);
  }
  template <typename T>
  void pod(T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    bytes(&value, sizeof(value));
  }
  void str(const std::string& s) {
    pod<std::uint32_t>(static_cast<std::uint32_t>(s.size()));
    bytes(s.data(), s.size());
  }
};

struct Reader {
  const std::uint8_t* cursor = nullptr;
  const std::uint8_t* end = nullptr;

  explicit Reader(const std::vector<std::uint8_t>& blob)
      : cursor(blob.data()), end(blob.data() + blob.size()) {}

  void bytes(void* dst, std::size_t n) {
    if (static_cast<std::size_t>(end - cursor) < n) {
      throw std::runtime_error("FLC1: truncated buffer");
    }
    std::memcpy(dst, cursor, n);
    cursor += n;
  }
  template <typename T>
  T pod() {
    static_assert(std::is_trivially_copyable_v<T>);
    T value;
    bytes(&value, sizeof(value));
    return value;
  }
  std::string str() {
    const std::uint32_t len = pod<std::uint32_t>();
    if (len > (1u << 16)) throw std::runtime_error("FLC1: bad string length");
    std::string s(len, '\0');
    bytes(s.data(), len);
    return s;
  }
};

// Magic + codec id + entry count.
void write_preamble(Writer& w, std::uint8_t codec_id, std::uint32_t entries);
// Verifies magic and that the blob was produced by `expected_codec`;
// returns the entry count.
std::uint32_t read_preamble(Reader& r, std::uint8_t expected_codec);

// Per-entry metadata: name, buffer flag, shape.
void write_entry_meta(Writer& w, const ParameterEntry& entry);
// Returns an entry with a zero-initialized tensor of the stored shape.
ParameterEntry read_entry_meta(Reader& r);

}  // namespace wire
}  // namespace fleda
