#include "comm/codec.hpp"

#include <cstring>
#include <stdexcept>

#include "comm/wire.hpp"
#include "tensor/serialize.hpp"

namespace fleda {
namespace wire {

void write_preamble(Writer& w, std::uint8_t codec_id, std::uint32_t entries) {
  w.bytes(kMagic, 4);
  w.pod<std::uint8_t>(codec_id);
  w.pod<std::uint32_t>(entries);
}

std::uint32_t read_preamble(Reader& r, std::uint8_t expected_codec) {
  char magic[4];
  r.bytes(magic, 4);
  if (std::memcmp(magic, kMagic, 4) != 0) {
    throw std::runtime_error("FLC1: bad magic");
  }
  const std::uint8_t codec = r.pod<std::uint8_t>();
  if (codec != expected_codec) {
    throw std::runtime_error("FLC1: blob encoded with codec " +
                             std::to_string(codec) + ", decoder expects " +
                             std::to_string(expected_codec));
  }
  const std::uint32_t entries = r.pod<std::uint32_t>();
  if (entries > (1u << 20)) throw std::runtime_error("FLC1: bad entry count");
  return entries;
}

void write_entry_meta(Writer& w, const ParameterEntry& entry) {
  w.str(entry.name);
  w.pod<std::uint8_t>(entry.is_buffer ? 1 : 0);
  w.pod<std::uint32_t>(static_cast<std::uint32_t>(entry.value.shape().rank()));
  for (int i = 0; i < entry.value.shape().rank(); ++i) {
    w.pod<std::int64_t>(entry.value.shape().dim(i));
  }
}

ParameterEntry read_entry_meta(Reader& r) {
  ParameterEntry entry;
  entry.name = r.str();
  entry.is_buffer = r.pod<std::uint8_t>() != 0;
  const std::uint32_t rank = r.pod<std::uint32_t>();
  if (rank > static_cast<std::uint32_t>(Shape::kMaxRank)) {
    throw std::runtime_error("FLC1: bad rank");
  }
  std::int64_t dims[Shape::kMaxRank] = {0, 0, 0, 0};
  for (std::uint32_t i = 0; i < rank; ++i) {
    dims[i] = r.pod<std::int64_t>();
  }
  entry.value = Tensor(shape_from_dims(rank, dims));
  return entry;
}

}  // namespace wire

std::string to_string(CodecKind kind) {
  switch (kind) {
    case CodecKind::kFp32:
      return "fp32";
    case CodecKind::kFp16:
      return "fp16";
    case CodecKind::kInt8Quant:
      return "int8";
    case CodecKind::kTopKDelta:
      return "topk";
  }
  return "?";
}

std::unique_ptr<ParameterCodec> make_codec(CodecKind kind,
                                           double topk_fraction) {
  switch (kind) {
    case CodecKind::kFp32:
      return std::make_unique<Fp32Codec>();
    case CodecKind::kFp16:
      return std::make_unique<Fp16Codec>();
    case CodecKind::kInt8Quant:
      return std::make_unique<Int8QuantCodec>();
    case CodecKind::kTopKDelta:
      return std::make_unique<TopKDeltaCodec>(topk_fraction);
  }
  throw std::invalid_argument("make_codec: unknown codec kind");
}

std::uint64_t raw_wire_bytes(const ModelParameters& params) {
  // Preamble + per-entry meta + raw fp32 payload (== Fp32Codec size).
  std::uint64_t bytes = 4 + 1 + 4;
  for (const ParameterEntry& e : params.entries()) {
    bytes += 4 + e.name.size() + 1 + 4 +
             8 * static_cast<std::uint64_t>(e.value.shape().rank());
    bytes += 4 * static_cast<std::uint64_t>(e.value.numel());
  }
  return bytes;
}

}  // namespace fleda
