// TopKDeltaCodec: sparsifies the update delta. The encoder computes
// d = params - reference (reference == nullptr means a delta against
// zeros), keeps the k = max(1, fraction * numel) largest-magnitude
// elements across the whole snapshot, and stores them as per-entry
// (index, value) pairs. The decoder scatters the pairs onto its copy of
// the reference — both sides already hold the deployed model, so only
// the sparse delta crosses the wire.
#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "comm/codec.hpp"
#include "comm/wire.hpp"

namespace fleda {

TopKDeltaCodec::TopKDeltaCodec(double fraction) : fraction_(fraction) {
  if (!(fraction > 0.0) || fraction > 1.0) {
    throw std::invalid_argument("TopKDeltaCodec: fraction must be in (0, 1]");
  }
}

std::string TopKDeltaCodec::name() const {
  return "topk(" + std::to_string(fraction_) + ")";
}

ByteBuffer TopKDeltaCodec::encode(const ModelParameters& params,
                                  const ModelParameters* reference) const {
  if (reference != nullptr && !params.structurally_equal(*reference)) {
    throw std::invalid_argument("TopKDeltaCodec: reference structure mismatch");
  }
  const auto& entries = params.entries();

  // Pass 1: magnitudes of the whole delta, to find the global k-th
  // largest as the selection threshold.
  std::vector<float> magnitudes;
  magnitudes.reserve(static_cast<std::size_t>(params.numel()));
  for (std::size_t n = 0; n < entries.size(); ++n) {
    const Tensor& v = entries[n].value;
    const Tensor* ref = reference ? &reference->entries()[n].value : nullptr;
    for (std::int64_t i = 0; i < v.numel(); ++i) {
      const float mag = std::fabs(v[i] - (ref ? (*ref)[i] : 0.0f));
      // NaN magnitudes would break nth_element's strict weak ordering
      // (UB) and then be silently dropped by the > threshold selection.
      if (!std::isfinite(mag)) {
        throw std::invalid_argument(
            "TopKDeltaCodec: non-finite delta in '" + entries[n].name + "'");
      }
      magnitudes.push_back(mag);
    }
  }
  const std::size_t total = magnitudes.size();
  const std::size_t k = std::min(
      total, static_cast<std::size_t>(std::max(
                 1.0, std::round(fraction_ * static_cast<double>(total)))));
  float threshold = 0.0f;
  std::size_t above = 0;  // count strictly above the threshold
  if (k > 0 && total > 0) {
    std::nth_element(magnitudes.begin(), magnitudes.begin() + (k - 1),
                     magnitudes.end(), std::greater<float>());
    threshold = magnitudes[k - 1];
    for (std::size_t i = 0; i < total; ++i) {
      if (magnitudes[i] > threshold) ++above;
    }
  }
  // Ties at the threshold share the remaining budget (first come first
  // served, deterministic in entry order).
  std::size_t tie_budget = k > above ? k - above : 0;

  ByteBuffer out;
  wire::Writer w{out};
  wire::write_preamble(w, static_cast<std::uint8_t>(kind()),
                       static_cast<std::uint32_t>(entries.size()));
  for (std::size_t n = 0; n < entries.size(); ++n) {
    const Tensor& v = entries[n].value;
    const Tensor* ref = reference ? &reference->entries()[n].value : nullptr;
    wire::write_entry_meta(w, entries[n]);

    std::vector<std::pair<std::uint32_t, float>> kept;
    for (std::int64_t i = 0; i < v.numel(); ++i) {
      const float d = v[i] - (ref ? (*ref)[i] : 0.0f);
      const float mag = std::fabs(d);
      if (mag > threshold) {
        kept.emplace_back(static_cast<std::uint32_t>(i), d);
      } else if (mag == threshold && tie_budget > 0 && mag > 0.0f) {
        kept.emplace_back(static_cast<std::uint32_t>(i), d);
        --tie_budget;
      }
    }
    w.pod<std::uint32_t>(static_cast<std::uint32_t>(kept.size()));
    for (const auto& [idx, d] : kept) {
      w.pod<std::uint32_t>(idx);
      w.pod<float>(d);
    }
  }
  return out;
}

ModelParameters TopKDeltaCodec::decode(const ByteBuffer& blob,
                                       const ModelParameters* reference) const {
  wire::Reader r(blob);
  const std::uint32_t count =
      wire::read_preamble(r, static_cast<std::uint8_t>(kind()));
  if (reference != nullptr && reference->entries().size() != count) {
    throw std::invalid_argument("TopKDeltaCodec: reference entry count");
  }
  ModelParameters params;
  params.mutable_entries().reserve(count);
  for (std::uint32_t n = 0; n < count; ++n) {
    ParameterEntry e = wire::read_entry_meta(r);
    if (reference != nullptr) {
      const Tensor& ref = reference->entries()[n].value;
      if (ref.shape() != e.value.shape()) {
        throw std::invalid_argument("TopKDeltaCodec: reference shape");
      }
      e.value = ref;
    }
    const std::uint32_t nnz = r.pod<std::uint32_t>();
    for (std::uint32_t i = 0; i < nnz; ++i) {
      const std::uint32_t idx = r.pod<std::uint32_t>();
      const float d = r.pod<float>();
      if (idx >= static_cast<std::uint32_t>(e.value.numel())) {
        throw std::runtime_error("TopKDeltaCodec: index out of range");
      }
      e.value[idx] += d;
    }
    params.mutable_entries().push_back(std::move(e));
  }
  return params;
}

}  // namespace fleda
