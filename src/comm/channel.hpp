// Channel: the metered transport every parameter exchange of the round
// loop goes through. The server broadcasts deployed snapshots down it
// and collects client updates up it; each message is encoded with the
// configured codec, byte/message counts are accumulated per round and
// cumulatively, and a simple latency model turns bytes into simulated
// wall-clock seconds.
//
// Latency model per round (documented, deliberately simple): each
// broadcast() call is one wave of parallel client downloads costing
// max(message bytes in the wave) / downlink_Bps; waves within a round
// are serial (a client that must fetch C models pays C waves). Uplink
// ingress at the developer is shared, so the round pays
// sum_k(bytes_k) / uplink_Bps, plus a fixed per_message_latency per
// direction.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "comm/codec.hpp"

namespace fleda {

struct CommConfig {
  CodecKind uplink = CodecKind::kFp32;    // client -> server updates
  CodecKind downlink = CodecKind::kFp32;  // server -> client deployments
  double topk_fraction = 0.05;            // TopKDeltaCodec keep fraction
  // Simulated transport parameters (defaults: 100 Mbit/s up,
  // 500 Mbit/s down, 50 ms fixed cost per direction).
  double uplink_bytes_per_sec = 12.5e6;
  double downlink_bytes_per_sec = 62.5e6;
  double per_message_latency_s = 0.05;
};

struct RoundCommStats {
  int round = 0;
  std::uint64_t uplink_bytes = 0;
  std::uint64_t downlink_bytes = 0;
  std::uint64_t uplink_messages = 0;
  std::uint64_t downlink_messages = 0;
  double simulated_latency_s = 0.0;
};

struct ChannelStats {
  std::uint64_t uplink_bytes = 0;
  std::uint64_t downlink_bytes = 0;
  // What the same exchanges would have cost uncompressed (fp32).
  std::uint64_t raw_uplink_bytes = 0;
  std::uint64_t raw_downlink_bytes = 0;
  std::uint64_t uplink_messages = 0;
  std::uint64_t downlink_messages = 0;
  double simulated_latency_s = 0.0;
  std::vector<RoundCommStats> rounds;

  double uplink_compression() const;    // raw / actual; 1.0 when idle
  double downlink_compression() const;
  double uplink_mb() const { return static_cast<double>(uplink_bytes) / 1e6; }
  double downlink_mb() const {
    return static_cast<double>(downlink_bytes) / 1e6;
  }
  double total_mb() const { return uplink_mb() + downlink_mb(); }
};

class Channel {
 public:
  explicit Channel(const CommConfig& config);

  // Server -> clients. deployed[k] is the snapshot addressed to client
  // k; repeated pointers (a shared global model) are encoded once but
  // billed per recipient, like a broadcast. Returns what each client
  // decodes — under a lossy codec this is what the client actually
  // trains from. Each distinct snapshot is decoded once and shared
  // across recipients (recipients must not mutate it).
  std::vector<std::shared_ptr<const ModelParameters>> broadcast(
      const std::vector<const ModelParameters*>& deployed);

  // Clients -> server. references[k] is the snapshot client k started
  // from this round (already held by both sides; delta codecs encode
  // against it). Encoding happens client-side and decoding server-side,
  // both in parallel on ThreadPool::global(). Returns the server-side
  // view of each update.
  std::vector<ModelParameters> collect(
      const std::vector<ModelParameters>& updates,
      const std::vector<const ModelParameters*>& references);

  // Closes the current round's accounting entry (called once per FL
  // round by the round loop).
  void end_round();

  const CommConfig& config() const { return config_; }
  const ChannelStats& stats() const { return stats_; }

 private:
  void bill_downlink(std::uint64_t bytes, std::uint64_t raw_bytes);
  void bill_uplink(std::uint64_t bytes, std::uint64_t raw_bytes);

  CommConfig config_;
  std::unique_ptr<ParameterCodec> uplink_codec_;
  std::unique_ptr<ParameterCodec> downlink_codec_;
  ChannelStats stats_;
  RoundCommStats current_round_;
  // Serial downlink bytes this round (sum over broadcast waves of the
  // largest message in the wave) and total uplink bytes (shared
  // ingress model).
  std::uint64_t round_downlink_serial_ = 0;
  std::uint64_t round_uplink_total_ = 0;
};

}  // namespace fleda
